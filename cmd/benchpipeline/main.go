// Command benchpipeline measures the end-to-end refinement pipeline
// and writes the results as JSON:
//
//	go run ./cmd/benchpipeline -o BENCH_pipeline.json
//
// It times three layers: the 3-D map transform (complex oracle vs the
// Hermitian real-input path, plus the simulated slab DFT), the
// streaming load→FFT→CTF→match pipeline against the batch path, and
// the per-view allocation/footprint profile of a streaming pass.
// Optional -cpuprofile/-memprofile flags capture pprof data for the
// whole run.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/benchutil"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/ctf"
	"repro/internal/fourier"
	"repro/internal/geom"
	"repro/internal/micrograph"
	"repro/internal/parfft"
	"repro/internal/phantom"
	"repro/internal/volume"
)

// Report is the schema of BENCH_pipeline.json. SchemaVersion covers
// the shared envelope (schema_version + run_meta); the measurement
// fields may grow between PRs.
type Report struct {
	SchemaVersion int               `json:"schema_version"`
	RunMeta       benchutil.RunMeta `json:"run_meta"`
	L             int               `json:"l"`
	Pad           int               `json:"pad"`
	Views         int               `json:"views"`

	// 3-D transform of the padded map (pad·l per side).
	NsDFT3DComplex  float64 `json:"ns_dft3d_complex"`
	NsDFT3DReal     float64 `json:"ns_dft3d_real"`
	DFT3DSpeedup    float64 `json:"dft3d_speedup"`
	SlabDFTNodes    int     `json:"slab_dft_nodes"`
	SlabDFTSimSecs  float64 `json:"slab_dft_sim_secs"`
	SlabDFTWallSecs float64 `json:"slab_dft_wall_secs"`

	// Per-view 2-D transform.
	NsView2DComplex float64 `json:"ns_view2d_complex"`
	NsView2DReal    float64 `json:"ns_view2d_real"`
	View2DSpeedup   float64 `json:"view2d_speedup"`

	// End-to-end refinement throughput.
	SearchMode           string  `json:"search_mode"`
	ViewsPerSecBatch     float64 `json:"views_per_sec_batch"`
	ViewsPerSecStream    float64 `json:"views_per_sec_stream"`
	DistanceEvalsPerView float64 `json:"distance_evals_per_view"`
	CutCacheHitRate      float64 `json:"cut_cache_hit_rate"`

	// Streaming-pass footprint.
	AllocsPerView    float64 `json:"allocs_per_view"`
	BytesPerView     float64 `json:"bytes_per_view"`
	PeakRSSProxy     uint64  `json:"peak_rss_proxy_bytes"`
	HeapInUseAfter   uint64  `json:"heap_inuse_after_bytes"`
	StreamFFTWorkers int     `json:"stream_fft_workers"`
	StreamRefiners   int     `json:"stream_refine_workers"`
	StreamDepth      int     `json:"stream_depth"`

	// History carries the file's prior runs forward, newest last, each
	// entry an earlier report with its own history stripped
	// (benchutil.LoadHistory) — reruns extend the perf trajectory
	// instead of erasing it.
	History []json.RawMessage `json:"history,omitempty"`
}

func main() {
	out := flag.String("o", "BENCH_pipeline.json", "output path")
	views := flag.Int("views", 24, "number of views to stream")
	search := flag.String("search", string(core.SearchAdaptive), "orientation search mode: adaptive or exhaustive")
	var of benchutil.Flags
	of.Register(flag.CommandLine)
	flag.Parse()

	stopObs, err := of.Start()
	if err != nil {
		fatal(err)
	}

	const l, pad = 32, 2
	truth := phantom.Asymmetric(l, 8, 1)
	truth.SphericalMask(13)
	ds := micrograph.Generate(truth, micrograph.GenParams{NumViews: *views, PixelA: 2.5, Seed: 2})

	rep := Report{
		SchemaVersion: benchutil.BenchSchemaVersion,
		RunMeta:       benchutil.CurrentRunMeta(),
		L:             l,
		Pad:           pad,
		Views:         *views,
	}

	// --- 3-D map transform: complex oracle vs Hermitian real path.
	cplx3d := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			//replint:allow oracleguard the benchmark's whole point is timing the complex oracle against the real path
			fourier.NewVolumeDFTComplex(truth, pad)
		}
	})
	real3d := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			fourier.NewVolumeDFTPadded(truth, pad)
		}
	})
	rep.NsDFT3DComplex = float64(cplx3d.NsPerOp())
	rep.NsDFT3DReal = float64(real3d.NsPerOp())
	rep.DFT3DSpeedup = rep.NsDFT3DComplex / rep.NsDFT3DReal

	// --- Simulated slab DFT (paper step a) on an SP2-like cluster.
	rep.SlabDFTNodes = 8
	wall := time.Now()
	res := parfft.Transform3D(cluster.New(rep.SlabDFTNodes, cluster.SP2), truth, 0)
	rep.SlabDFTWallSecs = time.Since(wall).Seconds()
	rep.SlabDFTSimSecs = res.Elapsed

	// --- Per-view 2-D transform: complex vs real-input path.
	im := ds.Views[0].Image
	cplx2d := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			//replint:allow oracleguard the benchmark's whole point is timing the complex oracle against the real path
			fourier.ImageDFTComplex(im)
		}
	})
	trans := fourier.NewViewTransformer(l)
	spec := volume.NewCImage(l)
	real2d := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			trans.Transform(im, spec)
		}
	})
	rep.NsView2DComplex = float64(cplx2d.NsPerOp())
	rep.NsView2DReal = float64(real2d.NsPerOp())
	rep.View2DSpeedup = rep.NsView2DComplex / rep.NsView2DReal

	// --- End-to-end throughput: batch vs streaming.
	dft := fourier.NewVolumeDFTPadded(truth, pad)
	cfg := core.DefaultConfig(l)
	cfg.Search = core.SearchMode(*search)
	rep.SearchMode = *search
	r, err := core.NewRefiner(dft, cfg)
	if err != nil {
		fatal(err)
	}
	images := make([]*volume.Image, *views)
	ctfs := make([]ctf.Params, *views)
	inits := make([]geom.Euler, *views)
	perturb := geom.Euler{Theta: 1.5, Phi: -1, Omega: 0.7}
	for i, v := range ds.Views {
		images[i] = v.Image
		ctfs[i] = v.CTF
		inits[i] = v.TrueOrient.Add(perturb)
	}
	src := core.SliceSource(images, ctfs, inits)

	batchSecs := timeRun(func() {
		pvs := make([]*core.View, *views)
		for i := range images {
			pv, err := r.PrepareView(images[i], ctfs[i])
			if err != nil {
				fatal(err)
			}
			pvs[i] = pv
		}
		results, err := r.RefineBatch(context.Background(), pvs, inits, 0)
		if err != nil {
			fatal(err)
		}
		var evals int
		for i := range results {
			evals += results[i].TotalMatchings()
		}
		rep.DistanceEvalsPerView = float64(evals) / float64(*views)
	})
	rep.ViewsPerSecBatch = float64(*views) / batchSecs

	opt := core.StreamOptions{}
	// Warm pipeline (plan caches, pools) before the measured pass.
	if _, err := r.RefineStream(context.Background(), *views, src, opt); err != nil {
		fatal(err)
	}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	streamSecs := timeRun(func() {
		if _, err := r.RefineStream(context.Background(), *views, src, opt); err != nil {
			fatal(err)
		}
	})
	runtime.ReadMemStats(&after)
	rep.ViewsPerSecStream = float64(*views) / streamSecs
	rep.AllocsPerView = float64(after.Mallocs-before.Mallocs) / float64(*views)
	rep.BytesPerView = float64(after.TotalAlloc-before.TotalAlloc) / float64(*views)
	rep.PeakRSSProxy = after.Sys
	rep.HeapInUseAfter = after.HeapInuse
	fftW, refW, depth := core.StreamShape(opt)
	rep.StreamFFTWorkers = fftW
	rep.StreamRefiners = refW
	rep.StreamDepth = depth
	if hits, misses := r.CutCacheStats(); hits+misses > 0 {
		rep.CutCacheHitRate = float64(hits) / float64(hits+misses)
	}

	if err := stopObs(); err != nil {
		fatal(err)
	}

	rep.History, err = benchutil.LoadHistory(*out, 0)
	if err != nil {
		fatal(err)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s: 3-D DFT %.1fx, view FFT %.1fx, %.2f views/sec streamed (%.0f allocs/view)\n",
		*out, rep.DFT3DSpeedup, rep.View2DSpeedup, rep.ViewsPerSecStream, rep.AllocsPerView)
}

func timeRun(fn func()) float64 {
	start := time.Now()
	fn()
	return time.Since(start).Seconds()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchpipeline:", err)
	os.Exit(1)
}
