// Command tables regenerates every table and figure of the paper's
// evaluation from the simulator. Each experiment id maps to one table
// or figure (see DESIGN.md for the index):
//
//	fig1b    calculated-view counts vs angular resolution
//	opcount  §4 multi-resolution vs flat operation counts
//	fig23    cross-sections of old- vs new-orientation reconstructions
//	fig5     Sindbis-like FSC comparison (includes the Fig. 4 split)
//	fig6     reo-like FSC comparison
//	table1   Sindbis-like per-step timing table
//	table2   reo-like per-step timing table
//	sliding  §5 sliding-window activation statistics
//	convergence  resolution/error trajectory across refine→reconstruct cycles
//	plateau  cycles-to-plateau of the multi-cycle outer loop (internal/cycle)
//	depth    §5's closing question: accuracy/cost vs schedule depth
//	cycle    §5 refinement vs reconstruction cycle shares
//	symdetect §6 symmetry-group detection
//	all      everything above
//
// Usage:
//
//	tables -exp fig5 [-scale 1] [-out results] [-p 16]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/volume"
	"repro/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tables: ")
	var (
		exp   = flag.String("exp", "all", "experiment id (see doc comment)")
		scale = flag.Float64("scale", 1, "shrink factor ≥1 for dataset size (quicker runs)")
		outD  = flag.String("out", "", "directory for image artifacts (fig23 sections)")
		p     = flag.Int("p", 16, "simulated processor count for timing tables")
	)
	flag.Parse()

	ids := strings.Split(*exp, ",")
	if *exp == "all" {
		ids = []string{"fig1b", "opcount", "fig5", "fig23", "fig6", "table1", "table2", "sliding", "cycle", "symdetect", "convergence", "plateau", "depth"}
	}

	// FSC experiments are shared between several ids; cache them.
	var sindbisFSC, reoFSC *workload.FSCExperiment
	getFSC := func(spec workload.DatasetSpec) *workload.FSCExperiment {
		cached := &sindbisFSC
		if spec.Name == "reo-like" {
			cached = &reoFSC
		}
		if *cached == nil {
			log.Printf("running FSC experiment for %s (this is the long part)...", spec.Name)
			e, err := workload.RunFSC(spec.Scaled(*scale), workload.FSCOptions{})
			if err != nil {
				log.Fatal(err)
			}
			*cached = e
		}
		return *cached
	}

	for _, id := range ids {
		fmt.Printf("==== %s ====\n", id)
		switch id {
		case "fig1b":
			must(workload.WriteViewCounts(os.Stdout, workload.ViewCounts([]float64{6, 3, 1, 0.1})))
		case "opcount":
			must(workload.WriteOpCount(os.Stdout, workload.OpCount(10, nil)))
		case "fig5":
			must(workload.WriteFSC(os.Stdout, getFSC(workload.SindbisSpec())))
		case "fig6":
			must(workload.WriteFSC(os.Stdout, getFSC(workload.ReoSpec())))
		case "fig23":
			e := getFSC(workload.SindbisSpec())
			writeSections(*outD, e)
		case "sliding":
			e := getFSC(workload.SindbisSpec())
			must(workload.WriteSliding(os.Stdout, e.Spec.Name, e.New.PerLevel))
		case "table1":
			runTiming(workload.SindbisSpec().Scaled(*scale), *p)
		case "table2":
			runTiming(workload.ReoSpec().Scaled(*scale), *p)
		case "cycle":
			t, err := workload.RunTiming(workload.SindbisSpec().Scaled(*scale*1.5), workload.TimingOptions{P: *p})
			if err != nil {
				log.Fatal(err)
			}
			cb := t.Cycle()
			fmt.Printf("paper-scale cycle: refinement %.4g s, reconstruction %.4g s (%.1f%% of cycle; §5 reports <5%%)\n",
				cb.RefinementSecs, cb.ReconstructionSecs, 100*cb.ReconstructionShare)
		case "symdetect":
			must(workload.WriteSymDetect(os.Stdout, workload.RunSymmetryDetection(32)))
		case "plateau":
			res, err := workload.RunCycleDriver(workload.SindbisSpec().Scaled(*scale*1.5), workload.CycleOptions{})
			if err != nil {
				log.Fatal(err)
			}
			must(workload.WritePlateau(os.Stdout, res))
		case "depth":
			spec := workload.SindbisSpec().Scaled(*scale * 1.5)
			rows, err := workload.DepthStudy(spec)
			if err != nil {
				log.Fatal(err)
			}
			must(workload.WriteDepthStudy(os.Stdout, spec, rows))
		case "convergence":
			res, err := workload.RunConvergence(workload.SindbisSpec().Scaled(*scale*1.5), workload.FSCOptions{}, 4)
			if err != nil {
				log.Fatal(err)
			}
			must(res.Write(os.Stdout))
			fmt.Printf("converged (Δcc < 0.01 between final cycles): %t\n", res.Converged(0.01))
		default:
			log.Fatalf("unknown experiment %q", id)
		}
		fmt.Println()
	}
}

// must aborts on a report-write error (the tables are the tool's
// entire output, so a failed write is fatal).
func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

func runTiming(spec workload.DatasetSpec, p int) {
	t, err := workload.RunTiming(spec, workload.TimingOptions{P: p})
	if err != nil {
		log.Fatal(err)
	}
	must(workload.WriteTiming(os.Stdout, t))
}

// writeSections exports the Figs. 2/3 artifacts: matched central
// cross-sections of the truth, old-orientation and new-orientation
// maps, plus summary statistics.
func writeSections(dir string, e *workload.FSCExperiment) {
	fmt.Printf("Figs. 2/3 — reconstructions with old vs new orientations (%s)\n", e.Spec.Name)
	fmt.Printf("map correlation vs ground truth: old %.4f, new %.4f\n", e.Old.TruthCC, e.New.TruthCC)
	if dir == "" {
		fmt.Println("(pass -out DIR to export PGM cross-sections)")
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		log.Fatal(err)
	}
	z := e.Truth.L / 2
	for _, item := range []struct {
		name string
		m    *volume.Grid
	}{
		{"truth", e.Truth}, {"old", e.Old.Map}, {"new", e.New.Map},
	} {
		path := filepath.Join(dir, fmt.Sprintf("fig2_%s_z%02d.pgm", item.name, z))
		f, err := os.Create(path)
		if err != nil {
			log.Fatal(err)
		}
		if err := item.m.ZSection(z).WritePGM(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", path)
	}
}
