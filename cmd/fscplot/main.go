// Command fscplot assesses the resolution of a set of orientations by
// the paper's Fig. 4 procedure: reconstruct two maps from the odd- and
// even-numbered views, compute the Fourier shell correlation between
// them, print the curve, and report the 0.5 crossing.
//
// Usage:
//
//	fscplot -data data/sindbis [-orients refined.txt] [-p workers]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/ctf"
	"repro/internal/fsc"
	"repro/internal/micrograph"
	"repro/internal/reconstruct"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fscplot: ")
	var (
		data    = flag.String("data", "", "dataset directory (required)")
		orients = flag.String("orients", "", "orientation file; empty uses ground truth")
		p       = flag.Int("p", 0, "worker count for reconstruction and FSC; 0 = GOMAXPROCS")
	)
	flag.Parse()
	if *data == "" {
		flag.Usage()
		os.Exit(2)
	}
	ds, err := micrograph.Load(*data)
	if err != nil {
		log.Fatal(err)
	}
	orientList := ds.TrueOrientations()
	var centers [][2]float64
	if *orients != "" {
		orientList, centers, err = micrograph.ReadOrientationList(*orients)
		if err != nil {
			log.Fatal(err)
		}
	}
	var ctfs []ctf.Params
	if ds.HasCTF {
		for _, v := range ds.Views {
			ctfs = append(ctfs, v.CTF)
		}
	}
	odd, even, err := reconstruct.SplitHalvesParallel(ds.Images(), orientList, centers, ctfs,
		reconstruct.ParallelOptions{Options: reconstruct.Options{WienerCTF: ds.HasCTF}, Workers: *p})
	if err != nil {
		log.Fatal(err)
	}
	curve, err := fsc.ComputeParallel(odd, even, ds.PixelA, *p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%6s %12s %10s\n", "shell", "res (Å)", "cc")
	for _, p := range curve.Points {
		fmt.Printf("%6d %12.2f %10.4f\n", p.Shell, p.ResolutionA, p.CC)
	}
	fmt.Printf("resolution at cc=0.5: %.2f Å   (mean cc %.4f)\n",
		curve.ResolutionAt(0.5), curve.MeanCC())
}
