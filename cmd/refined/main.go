// Command refined is the refinement job daemon: it exposes the
// internal/serve job service over HTTP and keeps a checkpoint journal
// so a killed daemon resumes interrupted refinements mid-schedule.
//
// Quickstart:
//
//	refined -addr 127.0.0.1:8080 -journal jobs.jsonl &
//	curl -s -X POST localhost:8080/jobs \
//	    -d '{"dataset":"asymmetric","scale":2.5,"views":6,"levels":2}'
//	curl -s localhost:8080/jobs/job-000001
//	curl -s localhost:8080/metrics
//
// SIGTERM/SIGINT drains gracefully: in-flight HTTP requests finish,
// running jobs stop at their next level checkpoint, and a restart
// with the same -journal resumes them bit-identically.
//
// The serve package itself is wall-clock-free (replint's simclock
// scope); everything here that touches real time — HTTP timeouts,
// signal handling, the artificial -level-delay used by the CI smoke —
// is deliberately confined to this command.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/serve"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	var (
		addr       = flag.String("addr", "127.0.0.1:8080", "listen address (use :0 for an ephemeral port)")
		addrFile   = flag.String("addr-file", "", "write the bound listen address to this file (for scripts using -addr :0)")
		journal    = flag.String("journal", "", "checkpoint journal path; empty disables persistence (jobs die with the process)")
		queue      = flag.Int("queue", 16, "admission queue depth; submits beyond it get HTTP 429")
		jobs       = flag.Int("jobs", 1, "concurrent job executors")
		fftW       = flag.Int("fft-workers", 0, "FFT-stage workers per job (0 = GOMAXPROCS)")
		refineW    = flag.Int("refine-workers", 0, "refine-stage workers per job (0 = GOMAXPROCS)")
		depth      = flag.Int("depth", 0, "stream channel depth per job (0 = derived)")
		levelDelay = flag.Duration("level-delay", 0, "artificial pause after each level checkpoint (smoke tests: widens the kill window)")
		cycleDelay = flag.Duration("cycle-delay", 0, "artificial pause after each cycle-map checkpoint (smoke tests: widens the mid-reconstruction kill window)")
		artifacts  = flag.String("artifact-dir", "", "directory for cycle map artifacts (default: the journal's directory)")
		eventsCap  = flag.Int("events-cap", 4096, "event ring capacity backing /events and /jobs/{id}/events (0 disables the event log)")
		eventsOut  = flag.String("events-out", "", "write the retained event log as JSONL to this file on drain")
		pprofOn    = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ (opt-in: profiling endpoints expose internals)")
	)
	flag.Parse()
	log.SetPrefix("refined: ")
	log.SetFlags(log.LstdFlags | log.Lmsgprefix)

	obs.SetEnabled(true)
	obs.StartTrace()
	var events *obs.EventLog
	if *eventsCap > 0 {
		events = obs.StartEvents(*eventsCap)
	}

	opt := serve.Options{
		QueueDepth: *queue,
		RunWorkers: *jobs,
		Stream:     core.StreamOptions{FFTWorkers: *fftW, RefineWorkers: *refineW, Depth: *depth},
		Logf:       log.Printf,
	}
	if *journal != "" {
		j, err := serve.OpenJournal(*journal)
		if err != nil {
			return err
		}
		defer func() {
			if err := j.Close(); err != nil {
				log.Printf("closing journal: %v", err)
			}
		}()
		opt.Journal = j
	}
	if *levelDelay > 0 {
		opt.OnLevel = func(id string, level int) { time.Sleep(*levelDelay) }
	}
	if *cycleDelay > 0 {
		opt.OnCycleMap = func(id string, c int) { time.Sleep(*cycleDelay) }
	}
	opt.ArtifactDir = *artifacts
	m, err := serve.NewManager(opt)
	if err != nil {
		return err
	}
	m.Start()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	log.Printf("listening on %s", ln.Addr())
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(ln.Addr().String()+"\n"), 0o644); err != nil {
			return fmt.Errorf("writing -addr-file: %w", err)
		}
	}

	var handler http.Handler = serve.NewHandler(m)
	if *pprofOn {
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = mux
		log.Printf("pprof mounted at /debug/pprof/")
	}
	srv := &http.Server{Handler: handler, ReadHeaderTimeout: 10 * time.Second}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		log.Printf("signal received; draining")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			log.Printf("http shutdown: %v", err)
		}
	}()
	if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	// HTTP is down; park running jobs at their next checkpoint so a
	// restart with the same journal resumes them.
	m.Drain()
	if events != nil && *eventsOut != "" {
		f, err := os.Create(*eventsOut)
		if err != nil {
			return fmt.Errorf("creating -events-out: %w", err)
		}
		werr := events.WriteJSONL(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return fmt.Errorf("writing -events-out: %w", werr)
		}
		log.Printf("wrote event log to %s", *eventsOut)
	}
	log.Printf("drained")
	return nil
}
