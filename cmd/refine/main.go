// Command refine runs the paper's sliding-window multi-resolution
// orientation refinement on a simulated dataset: it perturbs the
// ground-truth orientations to produce the rough initial estimates the
// algorithm expects, refines them against the reference map, and
// writes the refined orientation file plus an error report.
//
// With -p N the whole pass runs on the simulated N-node cluster — the
// parallel slab DFT of the map (steps a.1–a.6) followed by the
// distributed refinement (steps b–o) — and reports the simulated step
// times. With -trace the simulated timeline is written as a Chrome
// trace_event file (open in chrome://tracing or ui.perfetto.dev);
// tracing implies -p 4 unless -p is given, since the timeline renders
// the simulated cluster clock.
//
// Usage:
//
//	refine -data data/sindbis -out refined.txt [-init-err 2] [-levels 4]
//	       [-p 0] [-trace refine.trace.json] [-metrics -]
//	       [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"os"

	"repro/internal/benchutil"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/ctf"
	"repro/internal/fourier"
	"repro/internal/geom"
	"repro/internal/micrograph"
	"repro/internal/obs"
	"repro/internal/parfft"
	"repro/internal/volume"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("refine: ")
	var (
		data    = flag.String("data", "", "dataset directory from the simulate tool (required)")
		out     = flag.String("out", "refined.txt", "refined orientation file")
		initErr = flag.Float64("init-err", 2, "per-axis error (deg) of the initial orientations")
		levels  = flag.Int("levels", 4, "schedule depth: 1=1°, 2=+0.1°, 3=+0.01°, 4=+0.002°")
		workers = flag.Int("workers", 0, "refinement goroutines (0 = GOMAXPROCS)")
		pad     = flag.Int("pad", 2, "Fourier oversampling of the reference map")
		seed    = flag.Int64("seed", 7, "seed for the initial-orientation perturbation")
		nodes   = flag.Int("p", 0, "simulated cluster nodes (0 = shared-memory path; -trace defaults to 4)")
	)
	var of benchutil.Flags
	of.Register(flag.CommandLine)
	flag.Parse()
	if *data == "" {
		flag.Usage()
		os.Exit(2)
	}
	if *nodes == 0 && of.Trace != "" {
		*nodes = 4
	}
	stopObs, err := of.Start()
	if err != nil {
		log.Fatal(err)
	}
	ds, err := micrograph.Load(*data)
	if err != nil {
		log.Fatal(err)
	}
	if *levels < 1 || *levels > 4 {
		log.Fatalf("levels must be 1..4, got %d", *levels)
	}

	cfg := core.DefaultConfig(ds.L)
	cfg.Schedule = core.DefaultSchedule()[:*levels]
	if ds.HasCTF {
		cfg.CorrectCTF = true
		cfg.CTFMode = ctf.PhaseFlip
		cfg.CTFWeightCuts = true
	}
	inits := ds.PerturbedOrientations(*initErr, *seed)

	var results []core.Result
	if *nodes > 0 {
		results = refineOnCluster(ds, cfg, inits, *nodes, *pad)
	} else {
		dft := fourier.NewVolumeDFTPadded(ds.Truth, *pad)
		r, err := core.NewRefiner(dft, cfg)
		if err != nil {
			log.Fatal(err)
		}
		views := make([]*core.View, len(ds.Views))
		for i, v := range ds.Views {
			pv, err := r.PrepareView(v.Image, v.CTF)
			if err != nil {
				log.Fatal(err)
			}
			views[i] = pv
		}
		results, err = r.RefineAll(views, inits, *workers)
		if err != nil {
			log.Fatal(err)
		}
	}

	orients := make([]geom.Euler, len(results))
	centers := make([][2]float64, len(results))
	var angBefore, angAfter, cenAfter float64
	slides, matchings := 0, 0
	for i, res := range results {
		orients[i] = res.Orient
		centers[i] = res.Center
		angBefore += geom.AngularDistance(inits[i], ds.Views[i].TrueOrient)
		angAfter += geom.AngularDistance(res.Orient, ds.Views[i].TrueOrient)
		cenAfter += math.Hypot(res.Center[0]+ds.Views[i].TrueCenter[0],
			res.Center[1]+ds.Views[i].TrueCenter[1])
		slides += res.TotalSlides()
		matchings += res.TotalMatchings()
	}
	n := float64(len(results))
	if err := micrograph.WriteOrientationList(*out, orients, centers); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("refined %d views -> %s\n", len(results), *out)
	fmt.Printf("mean angular error: %.4f° -> %.4f°\n", angBefore/n, angAfter/n)
	fmt.Printf("mean centre error after refinement: %.4f px\n", cenAfter/n)
	fmt.Printf("matchings per view: %.0f   window slides total: %d\n", float64(matchings)/n, slides)
	if err := stopObs(); err != nil {
		log.Fatal(err)
	}
}

// refineOnCluster runs steps a–o on the simulated cluster: the slab
// DFT of the (padded) map, then the distributed refinement pass. The
// two phases are laid end-to-end on the trace timeline, and the
// parfft stage spans are reconciled against the cluster's own
// per-node totals before the trace is written.
func refineOnCluster(ds *micrograph.Dataset, cfg core.Config, inits []geom.Euler, p, pad int) []core.Result {
	cl := cluster.New(p, cluster.SP2)
	opt := core.DefaultParallelOptions()
	readSecs := 0.0
	if opt.ReadBytesPerSec > 0 {
		// The master reads the l³ map at the modeled sequential rate
		// (4-byte voxels).
		readSecs = float64(ds.L*ds.L*ds.L*4) / opt.ReadBytesPerSec
	}
	ft := parfft.Transform3DPadded(cl, ds.Truth, pad, readSecs)
	opt.DFT3DSecs = ft.Elapsed
	if tr := obs.ActiveTrace(); tr != nil {
		reconcileParfftSpans(tr, ft.Stats)
		// Start the refinement phase where the slab DFT ended.
		tr.SetTimeOffset(ft.Elapsed)
	}

	r, err := core.NewRefiner(ft.DFT, cfg)
	if err != nil {
		log.Fatal(err)
	}
	images := make([]*volume.Image, len(ds.Views))
	ctfs := make([]ctf.Params, len(ds.Views))
	for i, v := range ds.Views {
		images[i] = v.Image
		ctfs[i] = v.CTF
	}
	results, times, err := r.RefineOnCluster(cl, images, ctfs, inits, opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated %d-node step times (s): dft3d %.3f  read %.3f  fft %.3f  refine %.3f  total %.3f\n",
		p, times.DFT3D, times.ReadImages, times.FFTAnalysis, times.Refinement, times.Total)
	return results
}

// reconcileParfftSpans checks that the per-node parfft stage spans tile
// the simulated clock exactly: their durations sum to the node's
// reported Elapsed. The stage marks telescope, so the identity is
// exact, not approximate — any drift means the instrumentation lost a
// clock charge.
func reconcileParfftSpans(tr *obs.Trace, stats []cluster.Stats) {
	sums := make(map[int]float64)
	for _, e := range tr.Events() {
		if e.Cat == "parfft" && e.Phase == "X" {
			sums[e.Pid] += e.End - e.Start
		}
	}
	maxDelta := 0.0
	for _, st := range stats {
		d := math.Abs(sums[st.Rank] - st.Elapsed)
		if d > maxDelta {
			maxDelta = d
		}
	}
	fmt.Printf("trace: parfft stage spans vs cluster totals: max |Δ| = %.3g s over %d nodes\n",
		maxDelta, len(stats))
	if maxDelta > 1e-9 {
		log.Fatalf("trace reconciliation failed: parfft spans drift %.3g s from cluster totals", maxDelta)
	}
}
