// Command refine runs the paper's sliding-window multi-resolution
// orientation refinement on a simulated dataset: it perturbs the
// ground-truth orientations to produce the rough initial estimates the
// algorithm expects, refines them against the reference map, and
// writes the refined orientation file plus an error report.
//
// Usage:
//
//	refine -data data/sindbis -out refined.txt [-init-err 2] [-levels 4] [-p 0]
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"os"

	"repro/internal/core"
	"repro/internal/ctf"
	"repro/internal/fourier"
	"repro/internal/geom"
	"repro/internal/micrograph"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("refine: ")
	var (
		data    = flag.String("data", "", "dataset directory from the simulate tool (required)")
		out     = flag.String("out", "refined.txt", "refined orientation file")
		initErr = flag.Float64("init-err", 2, "per-axis error (deg) of the initial orientations")
		levels  = flag.Int("levels", 4, "schedule depth: 1=1°, 2=+0.1°, 3=+0.01°, 4=+0.002°")
		workers = flag.Int("workers", 0, "refinement goroutines (0 = GOMAXPROCS)")
		pad     = flag.Int("pad", 2, "Fourier oversampling of the reference map")
		seed    = flag.Int64("seed", 7, "seed for the initial-orientation perturbation")
	)
	flag.Parse()
	if *data == "" {
		flag.Usage()
		os.Exit(2)
	}
	ds, err := micrograph.Load(*data)
	if err != nil {
		log.Fatal(err)
	}
	if *levels < 1 || *levels > 4 {
		log.Fatalf("levels must be 1..4, got %d", *levels)
	}

	dft := fourier.NewVolumeDFTPadded(ds.Truth, *pad)
	cfg := core.DefaultConfig(ds.L)
	cfg.Schedule = core.DefaultSchedule()[:*levels]
	if ds.HasCTF {
		cfg.CorrectCTF = true
		cfg.CTFMode = ctf.PhaseFlip
		cfg.CTFWeightCuts = true
	}
	r, err := core.NewRefiner(dft, cfg)
	if err != nil {
		log.Fatal(err)
	}

	inits := ds.PerturbedOrientations(*initErr, *seed)
	views := make([]*core.View, len(ds.Views))
	for i, v := range ds.Views {
		pv, err := r.PrepareView(v.Image, v.CTF)
		if err != nil {
			log.Fatal(err)
		}
		views[i] = pv
	}
	results, err := r.RefineAll(views, inits, *workers)
	if err != nil {
		log.Fatal(err)
	}

	orients := make([]geom.Euler, len(results))
	centers := make([][2]float64, len(results))
	var angBefore, angAfter, cenAfter float64
	slides, matchings := 0, 0
	for i, res := range results {
		orients[i] = res.Orient
		centers[i] = res.Center
		angBefore += geom.AngularDistance(inits[i], ds.Views[i].TrueOrient)
		angAfter += geom.AngularDistance(res.Orient, ds.Views[i].TrueOrient)
		cenAfter += math.Hypot(res.Center[0]+ds.Views[i].TrueCenter[0],
			res.Center[1]+ds.Views[i].TrueCenter[1])
		slides += res.TotalSlides()
		matchings += res.TotalMatchings()
	}
	n := float64(len(results))
	if err := micrograph.WriteOrientationList(*out, orients, centers); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("refined %d views -> %s\n", len(results), *out)
	fmt.Printf("mean angular error: %.4f° -> %.4f°\n", angBefore/n, angAfter/n)
	fmt.Printf("mean centre error after refinement: %.4f px\n", cenAfter/n)
	fmt.Printf("matchings per view: %.0f   window slides total: %d\n", float64(matchings)/n, slides)
}
