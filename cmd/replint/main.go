// Command replint runs the project lint suite (internal/analysis)
// over the module: seven analyzers that mechanically enforce the
// repository's determinism, oracle-separation, hot-path and
// concurrency invariants — interprocedurally, over a whole-module
// static call graph.
//
// Usage:
//
//	replint [-json] [-sarif file] [-baseline file] [-write-baseline] [-list] [./...]
//
// With no arguments (or "./...") the whole module containing the
// current directory is analyzed. Findings print as
//
//	file:line:col: [analyzer] message
//
// and the exit status is 1 when any survive suppression and the
// baseline, so the command gates CI directly. Packages the loader has
// to skip (parse or type errors) are findings of the pseudo-analyzer
// "load" — a partial analysis never passes silently.
//
//	-json            emit findings as a JSON array
//	-sarif file      also write a SARIF 2.1.0 log ("-" for stdout)
//	-baseline file   drop findings recorded in the baseline file
//	                 (default replint.baseline at the module root,
//	                 when present)
//	-write-baseline  regenerate the baseline from current findings
//	                 and exit 0; CI diffs the result against the
//	                 checked-in copy
//	-list            print the suite, sorted by analyzer name
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/analysis"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array")
	list := flag.Bool("list", false, "list the analyzers of the suite and exit")
	sarifPath := flag.String("sarif", "", "write a SARIF 2.1.0 log to this file (\"-\" for stdout)")
	baselinePath := flag.String("baseline", "", "baseline file of grandfathered findings (default: replint.baseline at the module root, when present)")
	writeBaseline := flag.Bool("write-baseline", false, "regenerate the baseline file from current findings and exit")
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	findings, root, err := run()
	if err != nil {
		fmt.Fprintln(os.Stderr, "replint:", err)
		os.Exit(2)
	}

	bl := *baselinePath
	if bl == "" {
		if def := filepath.Join(root, "replint.baseline"); fileExists(def) || *writeBaseline {
			bl = def
		}
	}

	if *writeBaseline {
		if bl == "" {
			fmt.Fprintln(os.Stderr, "replint: -write-baseline needs a -baseline path")
			os.Exit(2)
		}
		if err := os.WriteFile(bl, analysis.WriteBaseline(findings, root), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "replint:", err)
			os.Exit(2)
		}
		fmt.Printf("replint: wrote %d finding(s) to %s\n", len(findings), bl)
		return
	}

	var absorbed []analysis.Finding
	if bl != "" {
		data, err := os.ReadFile(bl)
		if err != nil {
			fmt.Fprintln(os.Stderr, "replint:", err)
			os.Exit(2)
		}
		findings, absorbed = analysis.ApplyBaseline(findings, analysis.ParseBaseline(data), root)
	}

	if *sarifPath != "" {
		// The SARIF log carries the gating findings — what a reviewer
		// should see inline — not the baseline-absorbed legacy ones.
		data, err := analysis.SARIF(findings, analysis.All(), root)
		if err != nil {
			fmt.Fprintln(os.Stderr, "replint:", err)
			os.Exit(2)
		}
		if *sarifPath == "-" {
			fmt.Println(string(data))
		} else if err := os.WriteFile(*sarifPath, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "replint:", err)
			os.Exit(2)
		}
	}

	if *jsonOut {
		type jsonFinding struct {
			File     string `json:"file"`
			Line     int    `json:"line"`
			Col      int    `json:"col"`
			Analyzer string `json:"analyzer"`
			Message  string `json:"message"`
		}
		out := make([]jsonFinding, 0, len(findings))
		for _, f := range findings {
			out = append(out, jsonFinding{
				File: f.Pos.Filename, Line: f.Pos.Line, Col: f.Pos.Column,
				Analyzer: f.Analyzer, Message: f.Message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, "replint:", err)
			os.Exit(2)
		}
	} else {
		for _, f := range findings {
			fmt.Println(analysis.FormatBaselineLine(f, root))
		}
		if n := len(absorbed); n > 0 {
			fmt.Fprintf(os.Stderr, "replint: %d finding(s) absorbed by baseline %s\n", n, bl)
		}
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
}

func fileExists(path string) bool {
	_, err := os.Stat(path)
	return err == nil
}

func run() ([]analysis.Finding, string, error) {
	wd, err := os.Getwd()
	if err != nil {
		return nil, "", err
	}
	root, err := analysis.FindModuleRoot(wd)
	if err != nil {
		return nil, "", err
	}
	modPath, err := analysis.ModulePath(root)
	if err != nil {
		return nil, "", err
	}
	loader, err := analysis.NewLoader(root, modPath)
	if err != nil {
		return nil, "", err
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		return nil, "", err
	}
	findings := analysis.Run(loader.Fset, pkgs, analysis.All(), analysis.DefaultConfig())
	findings = append(findings, analysis.DiagnosticFindings(loader.Diagnostics())...)
	analysis.SortFindings(findings)
	return findings, root, nil
}
