// Command replint runs the project lint suite (internal/analysis)
// over the module: five analyzers that mechanically enforce the
// repository's determinism, oracle-separation and hot-path invariants.
//
// Usage:
//
//	replint [-json] [-list] [./...]
//
// With no arguments (or "./...") the whole module containing the
// current directory is analyzed. Findings print as
//
//	file:line:col: [analyzer] message
//
// and the exit status is 1 when any survive suppression, so the
// command gates CI directly. -json emits the findings as a JSON array
// instead; -list prints the suite and exits.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/analysis"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array")
	list := flag.Bool("list", false, "list the analyzers of the suite and exit")
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	findings, err := run()
	if err != nil {
		fmt.Fprintln(os.Stderr, "replint:", err)
		os.Exit(2)
	}

	if *jsonOut {
		type jsonFinding struct {
			File     string `json:"file"`
			Line     int    `json:"line"`
			Col      int    `json:"col"`
			Analyzer string `json:"analyzer"`
			Message  string `json:"message"`
		}
		out := make([]jsonFinding, 0, len(findings))
		for _, f := range findings {
			out = append(out, jsonFinding{
				File: f.Pos.Filename, Line: f.Pos.Line, Col: f.Pos.Column,
				Analyzer: f.Analyzer, Message: f.Message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, "replint:", err)
			os.Exit(2)
		}
	} else {
		for _, f := range findings {
			rel := f.Pos.Filename
			if wd, err := os.Getwd(); err == nil {
				if r, err := filepath.Rel(wd, f.Pos.Filename); err == nil {
					rel = r
				}
			}
			fmt.Printf("%s:%d:%d: [%s] %s\n", rel, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
		}
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
}

func run() ([]analysis.Finding, error) {
	wd, err := os.Getwd()
	if err != nil {
		return nil, err
	}
	root, err := analysis.FindModuleRoot(wd)
	if err != nil {
		return nil, err
	}
	modPath, err := analysis.ModulePath(root)
	if err != nil {
		return nil, err
	}
	loader, err := analysis.NewLoader(root, modPath)
	if err != nil {
		return nil, err
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		return nil, err
	}
	return analysis.Run(loader.Fset, pkgs, analysis.All(), analysis.DefaultConfig()), nil
}
