// Command benchreconstruct measures the sharded reconstruction kernel
// and writes the results as JSON, the perf record the insertion path
// is regressed against:
//
//	go run ./cmd/benchreconstruct -o BENCH_reconstruct.json
//
// It times the serial oracle insert, the fused sharded insert (both
// single-worker and at the requested worker count), and Finish, over
// the same l=32 CTF fixture as BenchmarkShardedInsertView, and records
// the correctness envelope alongside: max relative difference of the
// sharded map against the serial oracle, bit-identity of the output
// across worker counts {1, 4, 8}, and steady-state allocations per
// inserted view.
//
// With -smoke the command acts as a CI gate: it skips the timing
// loops and exits non-zero when the kernel drifts past 1e-12 of the
// oracle, when any worker count moves a bit of the output, or when a
// steady-state insert allocates.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"testing"

	"repro/internal/benchutil"
	"repro/internal/ctf"
	"repro/internal/micrograph"
	"repro/internal/phantom"
	"repro/internal/reconstruct"
	"repro/internal/volume"
)

// Report is the schema of BENCH_reconstruct.json. SchemaVersion covers
// the shared envelope (schema_version + run_meta); the measurement
// fields may grow between PRs.
type Report struct {
	SchemaVersion int               `json:"schema_version"`
	RunMeta       benchutil.RunMeta `json:"run_meta"`
	L             int               `json:"l"`
	Views         int               `json:"views"`
	Workers       int               `json:"workers"`
	Shards        int               `json:"shards"`
	WienerCTF     bool              `json:"wiener_ctf"`

	NsPerInsertViewSerial float64 `json:"ns_per_insert_view_serial"`
	NsPerInsertView1W     float64 `json:"ns_per_insert_view_1w"`
	NsPerInsertView       float64 `json:"ns_per_insert_view"`
	ViewsPerSec           float64 `json:"views_per_sec"`
	SpeedupVsSerial       float64 `json:"speedup_vs_serial"`
	ParallelSpeedup       float64 `json:"parallel_speedup"`
	NsFinish              float64 `json:"ns_finish"`
	AllocsPerInsert       float64 `json:"allocs_per_insert"`

	MaxRelDiffVsOracle        float64 `json:"max_rel_diff_vs_oracle"`
	BitIdenticalAcrossWorkers bool    `json:"bit_identical_across_workers"`

	// History carries the file's prior runs forward, newest last, each
	// entry an earlier report with its own history stripped
	// (benchutil.LoadHistory) — reruns extend the perf trajectory
	// instead of erasing it.
	History []json.RawMessage `json:"history,omitempty"`
}

func main() {
	out := flag.String("o", "BENCH_reconstruct.json", "output path")
	smoke := flag.Bool("smoke", false, "gate mode: skip the timing loops, check oracle equivalence, worker-count bit-identity and zero steady-state allocs, exit non-zero on failure")
	workers := flag.Int("p", 8, "worker count for the parallel timing pass")
	var of benchutil.Flags
	of.Register(flag.CommandLine)
	flag.Parse()

	stopObs, err := of.Start()
	if err != nil {
		fatal(err)
	}

	const l, nViews = 32, 64
	truth := phantom.Asymmetric(l, 8, 1)
	truth.SphericalMask(13)
	ds := micrograph.Generate(truth, micrograph.GenParams{
		NumViews: nViews, PixelA: 2.5, Seed: 7,
		CenterJitter: 2, ApplyCTF: true, DefocusGroups: 3,
	})
	views := ds.Images()
	orients := ds.TrueOrientations()
	centers := make([][2]float64, nViews)
	ctfs := make([]ctf.Params, nViews)
	for i, v := range ds.Views {
		centers[i] = [2]float64{-v.TrueCenter[0], -v.TrueCenter[1]}
		ctfs[i] = v.CTF
	}
	opt := reconstruct.Options{WienerCTF: true}
	popt := func(w int) reconstruct.ParallelOptions {
		return reconstruct.ParallelOptions{Options: opt, Workers: w}
	}

	rep := Report{
		SchemaVersion: benchutil.BenchSchemaVersion,
		RunMeta:       benchutil.CurrentRunMeta(),
		L:             l,
		Views:         nViews,
		Workers:       *workers,
		Shards:        reconstruct.DefaultShards,
		WienerCTF:     true,
	}

	// Correctness envelope, measured in both modes.
	//
	// Oracle equivalence: the sharded kernel regroups sums and
	// tabulates the phase ramp, so it is held to ≤1e-12 of the serial
	// reference, not bit-identity.
	oracle := reconstruct.New(l, opt)
	for i := range views {
		//replint:allow oracleguard the report's whole point is scoring the fused kernel against the serial reference insert
		if err := oracle.Insert(views[i], orients[i], centers[i], ctfs[i]); err != nil {
			fatal(err)
		}
	}
	serialMap := oracle.Finish()
	var perWorker []*volume.Grid
	for _, w := range []int{1, 4, 8} {
		m, err := reconstruct.FromViewsParallel(views, orients, centers, ctfs, popt(w))
		if err != nil {
			fatal(err)
		}
		perWorker = append(perWorker, m)
	}
	rep.MaxRelDiffVsOracle = maxRelDiff(serialMap, perWorker[0])
	rep.BitIdenticalAcrossWorkers = true
	for _, m := range perWorker[1:] {
		if !identical(perWorker[0], m) {
			rep.BitIdenticalAcrossWorkers = false
		}
	}

	// Steady-state allocations of the fused insert, after the shard
	// scratch is warm.
	warm := reconstruct.NewSharded(l, popt(1))
	for i := range views {
		if err := warm.Insert(views[i], orients[i], centers[i], ctfs[i]); err != nil {
			fatal(err)
		}
	}
	i := 0
	rep.AllocsPerInsert = testing.AllocsPerRun(64, func() {
		if err := warm.Insert(views[i%nViews], orients[i%nViews], centers[i%nViews], ctfs[i%nViews]); err != nil {
			fatal(err)
		}
		i++
	})

	if !*smoke {
		serial := testing.Benchmark(func(b *testing.B) {
			rec := reconstruct.New(l, opt)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				j := i % nViews
				//replint:allow oracleguard timing the serial reference insert is the report's baseline
				if err := rec.Insert(views[j], orients[j], centers[j], ctfs[j]); err != nil {
					fatal(err)
				}
			}
		})
		rep.NsPerInsertViewSerial = float64(serial.NsPerOp())

		fused := testing.Benchmark(func(b *testing.B) {
			rec := reconstruct.NewSharded(l, popt(1))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				j := i % nViews
				if err := rec.Insert(views[j], orients[j], centers[j], ctfs[j]); err != nil {
					fatal(err)
				}
			}
		})
		rep.NsPerInsertView1W = float64(fused.NsPerOp())

		// Batch pass at the requested worker count: whole-batch wall
		// time over the view count, the number a multi-cycle job sees.
		batch := func(w int) float64 {
			tasks := make([]reconstruct.ViewTask, nViews)
			for i := range tasks {
				tasks[i] = reconstruct.ViewTask{Image: views[i], Orient: orients[i], Center: centers[i], CTF: ctfs[i]}
			}
			res := testing.Benchmark(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					rec := reconstruct.NewSharded(l, popt(w))
					b.StartTimer()
					if err := rec.InsertViews(tasks); err != nil {
						fatal(err)
					}
				}
			})
			return float64(res.NsPerOp()) / float64(nViews)
		}
		rep.NsPerInsertView = batch(*workers)
		rep.ViewsPerSec = 1e9 / rep.NsPerInsertView
		if rep.NsPerInsertView > 0 {
			rep.SpeedupVsSerial = rep.NsPerInsertViewSerial / rep.NsPerInsertView
		}
		if one := batch(1); rep.NsPerInsertView > 0 {
			rep.ParallelSpeedup = one / rep.NsPerInsertView
		}

		finish := testing.Benchmark(func(b *testing.B) {
			rec := reconstruct.NewSharded(l, popt(*workers))
			tasks := make([]reconstruct.ViewTask, nViews)
			for i := range tasks {
				tasks[i] = reconstruct.ViewTask{Image: views[i], Orient: orients[i], Center: centers[i], CTF: ctfs[i]}
			}
			if err := rec.InsertViews(tasks); err != nil {
				fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rec.Finish()
			}
		})
		rep.NsFinish = float64(finish.NsPerOp())
	}

	if err := stopObs(); err != nil {
		fatal(err)
	}

	rep.History, err = benchutil.LoadHistory(*out, 0)
	if err != nil {
		fatal(err)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatal(err)
	}

	if *smoke {
		ok := true
		if rep.MaxRelDiffVsOracle > 1e-12 {
			fmt.Fprintf(os.Stderr, "benchreconstruct: max rel diff vs oracle %g > 1e-12\n", rep.MaxRelDiffVsOracle)
			ok = false
		}
		if !rep.BitIdenticalAcrossWorkers {
			fmt.Fprintln(os.Stderr, "benchreconstruct: output differs across worker counts {1,4,8}")
			ok = false
		}
		if rep.AllocsPerInsert != 0 {
			fmt.Fprintf(os.Stderr, "benchreconstruct: %g allocs per steady-state insert, want 0\n", rep.AllocsPerInsert)
			ok = false
		}
		if !ok {
			os.Exit(1)
		}
		fmt.Printf("smoke ok: %s — max rel diff %g, bit-identical across workers, %g allocs/insert\n",
			*out, rep.MaxRelDiffVsOracle, rep.AllocsPerInsert)
		return
	}

	fmt.Printf("wrote %s: serial %.0f ns/view, fused %.0f ns/view 1w, %.0f ns/view %dw (%.0f views/sec, %.2fx vs serial, %.2fx parallel), finish %.2f ms, %g allocs/insert\n",
		*out, rep.NsPerInsertViewSerial, rep.NsPerInsertView1W, rep.NsPerInsertView, rep.Workers,
		rep.ViewsPerSec, rep.SpeedupVsSerial, rep.ParallelSpeedup, rep.NsFinish/1e6, rep.AllocsPerInsert)
}

// maxRelDiff returns max|a−b| scaled by max|a|.
func maxRelDiff(a, b *volume.Grid) float64 {
	var scale, diff float64
	for i := range a.Data {
		if v := a.Data[i]; v > scale {
			scale = v
		} else if -v > scale {
			scale = -v
		}
		d := a.Data[i] - b.Data[i]
		if d < 0 {
			d = -d
		}
		if d > diff {
			diff = d
		}
	}
	if scale == 0 {
		return diff
	}
	return diff / scale
}

func identical(a, b *volume.Grid) bool {
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			return false
		}
	}
	return true
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchreconstruct:", err)
	os.Exit(1)
}
