// Command simulate synthesizes a single-particle dataset — a
// ground-truth virus density plus CTF/noise-corrupted projection views
// at random orientations — and writes it to a directory that the
// refine, reconstruct and fscplot tools consume.
//
// Usage:
//
//	simulate -dataset sindbis -out data/sindbis [-scale 1] [-views N] [-snr S] [-ctf]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("simulate: ")
	var (
		dataset = flag.String("dataset", "sindbis", "dataset spec: sindbis, reo or asymmetric")
		out     = flag.String("out", "", "output directory (required)")
		scale   = flag.Float64("scale", 1, "shrink factor ≥ 1 for box size and view count")
		views   = flag.Int("views", 0, "override view count")
		boxSize = flag.Int("l", 0, "override box size (pixels)")
		snr     = flag.Float64("snr", -1, "override signal-to-noise ratio (0 disables noise)")
		jitter  = flag.Float64("jitter", -1, "override centre jitter in pixels")
		useCTF  = flag.Bool("ctf", false, "corrupt views with the microscope CTF")
		seed    = flag.Int64("seed", 0, "override random seed")
	)
	flag.Parse()
	if *out == "" {
		flag.Usage()
		os.Exit(2)
	}
	spec, err := workload.SpecByName(*dataset)
	if err != nil {
		log.Fatal(err)
	}
	spec = spec.Scaled(*scale)
	if *views > 0 {
		spec.NumViews = *views
	}
	if *boxSize > 0 {
		spec.L = *boxSize
	}
	if *snr >= 0 {
		spec.SNR = *snr
	}
	if *jitter >= 0 {
		spec.CenterJitter = *jitter
	}
	if *useCTF {
		spec.ApplyCTF = true
		spec.DefocusGroups = 3
	}
	if *seed != 0 {
		spec.Seed = *seed
	}

	ds := spec.Build()
	if err := ds.Save(*out); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s: %d views of %d×%d px (%.2g Å/px, SNR %.2g, jitter %.2g px, CTF %t)\n",
		*out, len(ds.Views), ds.L, ds.L, ds.PixelA, spec.SNR, spec.CenterJitter, ds.HasCTF)
}
