package main

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/serve"
)

// TestCycleDetail pins the snapshot DETAIL column for cycle jobs.
func TestCycleDetail(t *testing.T) {
	cases := []struct {
		name string
		cs   serve.CycleStatus
		want string
	}{
		{"fresh", serve.CycleStatus{Max: 4}, "cycle 0/4, plateau 0"},
		{"mid-run", serve.CycleStatus{Done: 2, Max: 4, ResolutionA: 9.25, Plateau: 1},
			"cycle 2/4, FSC0.5 9.25 Å, plateau 1"},
		{"stopped", serve.CycleStatus{Done: 3, Max: 8, ResolutionA: 8.5, Plateau: 2, Stopped: "plateau"},
			"cycle 3/8, FSC0.5 8.50 Å, plateau 2, stopped: plateau"},
	}
	for _, tc := range cases {
		if got := cycleDetail(&tc.cs); got != tc.want {
			t.Errorf("%s: got %q, want %q", tc.name, got, tc.want)
		}
	}
}

// TestRenderSnapshotCycle: a cycle job's row carries the cycle detail
// and the multi-cycle (levels × cycles) progress bar.
func TestRenderSnapshotCycle(t *testing.T) {
	s := &sample{
		jobs: []serve.JobStatus{{
			ID: "job-000001", State: serve.StateRunning,
			LevelsDone: 3, LevelsTotal: 8,
			Cycle: &serve.CycleStatus{Done: 1, Max: 4, ResolutionA: 10.125, Plateau: 0},
		}},
		metrics: map[string]int64{},
	}
	out := renderSnapshot("127.0.0.1:8080", s, nil)
	for _, want := range []string{
		"[###.......] 3/8",
		"cycle 1/4, FSC0.5 10.12 Å, plateau 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("snapshot missing %q:\n%s", want, out)
		}
	}
}

// TestNarrateCycle feeds a canned event stream — the JSONL shape a
// -follow tail prints on stdout — through the narrator and pins the
// stderr-side rendering line for line.
func TestNarrateCycle(t *testing.T) {
	stream := []string{
		`{"seq":1,"logical_ts":0,"job":"job-000001","level":-1,"kind":"admit","fields":{"views":4}}`,
		`{"seq":2,"logical_ts":1,"job":"job-000001","level":-1,"kind":"cycle_start","fields":{"cycle":0,"max_cycles":4,"levels":2}}`,
		`{"seq":3,"logical_ts":2,"job":"job-000001","level":0,"kind":"level_end","fields":{"evals":100}}`,
		`{"seq":4,"logical_ts":3,"job":"job-000001","level":-1,"kind":"fsc","fields":{"cycle":0,"resolution_ma":10125,"mean_cc_ppm":731250,"plateau":0}}`,
		`{"seq":5,"logical_ts":4,"job":"job-000001","level":-1,"kind":"cycle_end","fields":{"cycle":0,"plateau":0,"improved":1,"stopped":0}}`,
		`{"seq":6,"logical_ts":5,"job":"job-000001","level":-1,"kind":"fsc","fields":{"cycle":1,"resolution_ma":-1,"plateau":1}}`,
		`{"seq":7,"logical_ts":6,"job":"job-000001","level":-1,"kind":"cycle_end","fields":{"cycle":1,"plateau":1,"improved":0,"stopped":1}}`,
		`{"seq":8,"logical_ts":7,"job":"job-000001","level":-1,"kind":"cycle_end","fields":{"cycle":2,"plateau":0,"improved":1,"stopped":2}}`,
		`{"seq":9,"logical_ts":8,"job":"job-000001","level":-1,"kind":"done","fields":{}}`,
	}
	want := strings.Join([]string{
		"repstat: job-000001 cycle 1/4 started (2 levels)",
		"repstat: job-000001 cycle 0 FSC0.5 10.12 Å, mean CC 0.731, plateau 0",
		"repstat: job-000001 cycle 0 end, improved",
		"repstat: job-000001 cycle 1 FSC has no 0.5 crossing, plateau 1",
		"repstat: job-000001 cycle 1 end, no improvement — stopping: plateau",
		"repstat: job-000001 cycle 2 end, improved — stopping: max cycles",
	}, "\n") + "\n"
	var w strings.Builder
	for _, line := range stream {
		var ev obs.EventRecord
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("canned stream line %q: %v", line, err)
		}
		w.WriteString(cycleNarration(ev))
	}
	if got := w.String(); got != want {
		t.Errorf("narration mismatch:\ngot:\n%swant:\n%s", got, want)
	}
}
