// Command repstat is the terminal-side view of a running refined
// daemon: a point-in-time status snapshot, a refreshing watch mode,
// and a live event tail.
//
//	repstat                          one status snapshot, then exit
//	repstat -watch                   refresh the snapshot every -interval
//	repstat -follow job-000001       tail the job's event stream (SSE)
//	repstat -follow job-000001 -poll same, via the long-poll fallback
//
// The snapshot renders the daemon's SLO gauges (queue depth, running
// jobs, journal size), latency quantiles derived client-side from the
// exported histogram buckets with the same estimator the server uses
// (obs.QuantileFromBuckets), and a progress bar per job. Follow mode
// prints one JSON object per line — exactly the event records' JSONL
// shape, so a captured tail is a valid event journal — and reconnects
// with Last-Event-ID after a dropped connection, so a daemon restart
// mid-tail costs nothing but a retry. Cycle-job lifecycle events
// (cycle_start, fsc, cycle_end) are additionally narrated in plain
// language on stderr, so a human watching a multi-cycle run sees its
// convergence without stdout losing its journal shape.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/serve"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "repstat:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr     = flag.String("addr", "127.0.0.1:8080", "refined daemon address")
		watch    = flag.Bool("watch", false, "refresh the status view every -interval until interrupted")
		interval = flag.Duration("interval", time.Second, "refresh (and reconnect) interval")
		follow   = flag.String("follow", "", "tail this job's event stream instead of showing status")
		poll     = flag.Bool("poll", false, "with -follow: use the long-poll fallback instead of SSE")
	)
	flag.Parse()
	c := &client{base: "http://" + *addr}
	if *follow != "" {
		if *poll {
			return c.followPoll(*follow)
		}
		return c.followSSE(*follow, *interval)
	}
	if !*watch {
		s, err := c.sample()
		if err != nil {
			return err
		}
		fmt.Print(renderSnapshot(*addr, s, nil))
		return nil
	}
	var prev *sample
	for {
		s, err := c.sample()
		if err != nil {
			return err
		}
		// Clear, home, then draw — one write so the repaint doesn't flicker.
		fmt.Print("\x1b[2J\x1b[H" + renderSnapshot(*addr, s, prev))
		prev = s
		time.Sleep(*interval)
	}
}

type client struct {
	base string
}

func (c *client) getJSON(path string, out any) error {
	resp, err := http.Get(c.base + path)
	if err != nil {
		return err
	}
	defer func() { _ = resp.Body.Close() }()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		var eb struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(data, &eb) == nil && eb.Error != "" {
			return fmt.Errorf("GET %s: %s", path, eb.Error)
		}
		return fmt.Errorf("GET %s: HTTP %d", path, resp.StatusCode)
	}
	return json.Unmarshal(data, out)
}

// sample is one scrape of the daemon: job list plus metric snapshot,
// stamped with the local receive time so watch mode can turn counter
// deltas into rates.
type sample struct {
	at      time.Time
	jobs    []serve.JobStatus
	metrics map[string]int64
}

func (c *client) sample() (*sample, error) {
	s := &sample{at: time.Now(), metrics: map[string]int64{}}
	if err := c.getJSON("/jobs", &s.jobs); err != nil {
		return nil, err
	}
	var doc struct {
		Metrics []struct {
			Name  string `json:"name"`
			Value int64  `json:"value"`
		} `json:"metrics"`
	}
	if err := c.getJSON("/metrics", &doc); err != nil {
		return nil, err
	}
	for _, m := range doc.Metrics {
		s.metrics[m.Name] = m.Value
	}
	return s, nil
}

// histBuckets reassembles a histogram's bucket vector from the flat
// metric snapshot (name.bucket[k] series, k contiguous from 0).
func histBuckets(metrics map[string]int64, name string) []int64 {
	var out []int64
	for k := 0; ; k++ {
		v, ok := metrics[name+".bucket["+strconv.Itoa(k)+"]"]
		if !ok {
			return out
		}
		out = append(out, v)
	}
}

// renderSnapshot formats one status view. It builds into a
// strings.Builder (whose writes cannot fail) so rendering needs no
// error plumbing; the caller decides where the text goes.
func renderSnapshot(addr string, s, prev *sample) string {
	var w strings.Builder
	line := func(format string, args ...any) {
		w.WriteString(fmt.Sprintf(format, args...))
	}
	line("refined at %s — %d job(s), queue %d, running %d, journal %s\n",
		addr, len(s.jobs), s.metrics["serve.queue.depth.now"],
		s.metrics["serve.jobs.running.now"], fmtBytes(s.metrics["serve.journal.bytes"]))
	if prev != nil {
		dt := s.at.Sub(prev.at).Seconds()
		if dt > 0 {
			de := s.metrics["core.match.distance_evals"] - prev.metrics["core.match.distance_evals"]
			dv := s.metrics["core.views_refined"] - prev.metrics["core.views_refined"]
			line("rates: %.0f evals/s, %.1f views/s\n", float64(de)/dt, float64(dv)/dt)
		}
	} else {
		line("totals: %d evals, %d views refined\n",
			s.metrics["core.match.distance_evals"], s.metrics["core.views_refined"])
	}

	line("\n%-22s %8s %8s\n", "latency (ticks)", "p50", "p99")
	for _, h := range []struct{ label, name string }{
		{"admit→start", "serve.latency.admit_to_start_ticks"},
		{"level", "serve.latency.level_ticks"},
	} {
		b := histBuckets(s.metrics, h.name)
		line("%-22s %8.1f %8.1f\n", h.label,
			obs.QuantileFromBuckets(b, 0.50), obs.QuantileFromBuckets(b, 0.99))
	}

	if len(s.jobs) == 0 {
		line("\nno jobs\n")
		return w.String()
	}
	jobs := append([]serve.JobStatus(nil), s.jobs...)
	sort.Slice(jobs, func(i, j int) bool { return jobs[i].ID < jobs[j].ID })
	line("\n%-12s %-9s %-18s %s\n", "JOB", "STATE", "PROGRESS", "DETAIL")
	for _, jb := range jobs {
		detail := ""
		switch {
		case jb.Error != "":
			detail = jb.Error
		case jb.Cycle != nil:
			detail = cycleDetail(jb.Cycle)
		case jb.Summary != nil:
			detail = fmt.Sprintf("mean err %.3f rad", jb.Summary.MeanAngularError)
		case jb.Resumed:
			detail = "resumed"
		}
		line("%-12s %-9s %-18s %s\n", jb.ID, jb.State,
			progressBar(jb.LevelsDone, jb.LevelsTotal), detail)
	}
	return w.String()
}

// cycleDetail renders a cycle job's outer-loop position: completed
// cycles, the last FSC 0.5 crossing, the plateau counter, and — once
// the loop has ended — why it stopped.
func cycleDetail(cs *serve.CycleStatus) string {
	s := fmt.Sprintf("cycle %d/%d", cs.Done, cs.Max)
	if cs.ResolutionA > 0 {
		s += fmt.Sprintf(", FSC0.5 %.2f Å", cs.ResolutionA)
	}
	s += fmt.Sprintf(", plateau %d", cs.Plateau)
	if cs.Stopped != "" {
		s += ", stopped: " + cs.Stopped
	}
	return s
}

// progressBar renders "[####......] 2/5"-style level progress.
func progressBar(done, total int) string {
	const width = 10
	if total <= 0 {
		return "[..........] 0/0"
	}
	filled := done * width / total
	return "[" + strings.Repeat("#", filled) + strings.Repeat(".", width-filled) +
		"] " + strconv.Itoa(done) + "/" + strconv.Itoa(total)
}

func fmtBytes(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(n)/(1<<10))
	default:
		return strconv.FormatInt(n, 10) + " B"
	}
}

// terminalKinds are the event kinds that end a -follow tail.
var terminalKinds = map[string]bool{
	string(serve.StateDone):      true,
	string(serve.StateFailed):    true,
	string(serve.StateCancelled): true,
}

// followSSE tails one job's SSE stream, printing each event's data
// payload as a JSONL line. A dropped connection (daemon restart, kill
// -9) retries after interval with Last-Event-ID, so the resumed stream
// continues exactly where the dead one stopped.
func (c *client) followSSE(id string, interval time.Duration) error {
	var last uint64
	for {
		done, err := c.streamOnce(id, &last)
		if done {
			return nil
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "repstat: stream lost after seq %d (%v); reconnecting\n", last, err)
			time.Sleep(interval)
			continue
		}
		// Clean EOF without a terminal event: the daemon shut down
		// mid-job. Reconnect and keep tailing.
		time.Sleep(interval)
	}
}

// streamOnce runs one SSE connection; done reports that the job's
// terminal event was printed.
func (c *client) streamOnce(id string, last *uint64) (done bool, err error) {
	req, err := http.NewRequest(http.MethodGet, c.base+"/jobs/"+id+"/events", nil)
	if err != nil {
		return false, err
	}
	if *last > 0 {
		req.Header.Set("Last-Event-ID", strconv.FormatUint(*last, 10))
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return false, err
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		data, rerr := io.ReadAll(resp.Body)
		msg := strings.TrimSpace(string(data))
		if rerr != nil {
			msg = rerr.Error()
		}
		return false, fmt.Errorf("HTTP %d: %s", resp.StatusCode, msg)
	}
	var (
		r       = bufio.NewReader(resp.Body)
		kind    string
		printed bool
	)
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			if err == io.EOF && printed {
				return terminalKinds[kind], nil
			}
			return false, err
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case strings.HasPrefix(line, "id: "):
			if seq, perr := strconv.ParseUint(line[len("id: "):], 10, 64); perr == nil {
				*last = seq
			}
		case strings.HasPrefix(line, "event: "):
			kind = line[len("event: "):]
		case strings.HasPrefix(line, "data: "):
			payload := line[len("data: "):]
			fmt.Println(payload)
			printed = true
			if kind == "gap" {
				fmt.Fprintln(os.Stderr, "repstat: event ring overflowed; tail has a gap")
			}
			var ev obs.EventRecord
			if json.Unmarshal([]byte(payload), &ev) == nil {
				if s := cycleNarration(ev); s != "" {
					fmt.Fprint(os.Stderr, s)
				}
			}
		case line == "":
			if terminalKinds[kind] {
				return true, nil
			}
		}
	}
}

// cycleNarration renders a one-line human reading of a cycle-lifecycle
// event, or "" for other kinds. Follow modes print it to stderr —
// stdout must stay a pure JSONL event journal.
func cycleNarration(ev obs.EventRecord) string {
	f := func(key string) int64 {
		for _, fld := range ev.Fields {
			if fld.Key == key {
				return fld.Value
			}
		}
		return 0
	}
	switch ev.Kind {
	case "cycle_start":
		return fmt.Sprintf("repstat: %s cycle %d/%d started (%d levels)\n",
			ev.Job, f("cycle")+1, f("max_cycles"), f("levels"))
	case "fsc":
		if ma := f("resolution_ma"); ma >= 0 {
			return fmt.Sprintf("repstat: %s cycle %d FSC0.5 %.2f Å, mean CC %.3f, plateau %d\n",
				ev.Job, f("cycle"), float64(ma)/1000, float64(f("mean_cc_ppm"))/1e6, f("plateau"))
		}
		return fmt.Sprintf("repstat: %s cycle %d FSC has no 0.5 crossing, plateau %d\n",
			ev.Job, f("cycle"), f("plateau"))
	case "cycle_end":
		s := fmt.Sprintf("repstat: %s cycle %d end", ev.Job, f("cycle"))
		if f("improved") != 0 {
			s += ", improved"
		} else {
			s += ", no improvement"
		}
		switch f("stopped") {
		case 1:
			s += " — stopping: plateau"
		case 2:
			s += " — stopping: max cycles"
		}
		return s + "\n"
	}
	return ""
}

// followPoll is the long-poll fallback: repeated ?poll=1 requests,
// each blocking server-side until events past the cursor exist.
func (c *client) followPoll(id string) error {
	var cursor uint64
	for {
		var body struct {
			Events  []obs.EventRecord `json:"events"`
			Dropped uint64            `json:"dropped"`
			Next    uint64            `json:"next"`
		}
		path := "/jobs/" + id + "/events?poll=1&since=" + strconv.FormatUint(cursor, 10)
		if err := c.getJSON(path, &body); err != nil {
			return err
		}
		if body.Dropped > 0 {
			fmt.Fprintf(os.Stderr, "repstat: %d event(s) dropped before cursor\n", body.Dropped)
		}
		for _, ev := range body.Events {
			data, err := json.Marshal(ev)
			if err != nil {
				return err
			}
			fmt.Println(string(data))
			if s := cycleNarration(ev); s != "" {
				fmt.Fprint(os.Stderr, s)
			}
			if ev.Job == id && terminalKinds[ev.Kind] {
				return nil
			}
		}
		if body.Next == cursor {
			return nil // daemon had nothing and the connection lapsed
		}
		cursor = body.Next
	}
}
