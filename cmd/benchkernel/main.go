// Command benchkernel measures the fused orientation-matching kernel
// and writes the results as JSON, giving subsequent changes a recorded
// perf trajectory to regress against:
//
//	go run ./cmd/benchkernel -o BENCH_kernel.json
//
// It times three layers: one matching operation (cut sampling +
// distance over the full band), one batched sliding-window evaluation
// (9×9×9 orientations), and one full multi-resolution refinement of a
// single view — the same fixtures as BenchmarkMatchKernel,
// BenchmarkDistanceWindow and BenchmarkRefineOneView in bench_test.go.
// The refinement runs twice, once with the default adaptive search and
// once through the exhaustive oracle, so the report prices the
// adaptive path against the flat scan it replaces
// (distance_evals_per_view, evals_saved_frac, cut_cache_hit_rate).
//
// With -smoke the command instead acts as a CI gate: it skips the
// timing loops, runs the adaptive path against the exhaustive oracle
// once, and exits non-zero when evals_saved_frac < 0.5, when the
// adaptive final error regresses against the oracle's, or when a
// seeded rerun is not bit-identical.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"testing"

	"repro/internal/benchutil"
	"repro/internal/core"
	"repro/internal/fourier"
	"repro/internal/geom"
	"repro/internal/micrograph"
	"repro/internal/phantom"
)

// Report is the schema of BENCH_kernel.json. SchemaVersion covers the
// shared envelope (schema_version + run_meta); the measurement fields
// may grow between PRs.
type Report struct {
	SchemaVersion int               `json:"schema_version"`
	RunMeta       benchutil.RunMeta `json:"run_meta"`
	L             int               `json:"l"`
	Pad           int               `json:"pad"`
	BandSize      int               `json:"band_size"`

	NsPerMatch     float64 `json:"ns_per_match"`
	MatchesPerSec  float64 `json:"matches_per_sec"`
	AllocsPerMatch float64 `json:"allocs_per_match"`

	WindowOrients     int     `json:"window_orients"`
	NsPerWindow       float64 `json:"ns_per_window"`
	NsPerWindowMatch  float64 `json:"ns_per_window_match"`
	AllocsPerWindow   float64 `json:"allocs_per_window"`
	NsPerRefineView   float64 `json:"ns_per_refine_view"`
	RefineFinalErrDeg float64 `json:"refine_final_err_deg"`

	// Adaptive-vs-exhaustive comparison: the refinement above runs the
	// default adaptive search; the exhaustive fields rerun the same
	// view through the flat-scan oracle.
	SearchMode                  string  `json:"search_mode"`
	DistanceEvalsPerView        float64 `json:"distance_evals_per_view"`
	ExhaustiveEvalsPerView      float64 `json:"exhaustive_evals_per_view"`
	EvalsSavedFrac              float64 `json:"evals_saved_frac"`
	CutCacheHitRate             float64 `json:"cut_cache_hit_rate"`
	NsPerRefineViewExhaustive   float64 `json:"ns_per_refine_view_exhaustive"`
	RefineFinalErrExhaustiveDeg float64 `json:"refine_final_err_exhaustive_deg"`

	// History carries the file's prior runs forward, newest last, each
	// entry an earlier report with its own history stripped
	// (benchutil.LoadHistory) — reruns extend the perf trajectory
	// instead of erasing it.
	History []json.RawMessage `json:"history,omitempty"`
}

func main() {
	out := flag.String("o", "BENCH_kernel.json", "output path")
	smoke := flag.Bool("smoke", false, "gate mode: skip the timing loops, compare the adaptive search against the exhaustive oracle and exit non-zero on regression")
	var of benchutil.Flags
	of.Register(flag.CommandLine)
	flag.Parse()

	stopObs, err := of.Start()
	if err != nil {
		fatal(err)
	}

	const l, pad = 32, 2
	truth := phantom.Asymmetric(l, 8, 1)
	truth.SphericalMask(13)
	ds := micrograph.Generate(truth, micrograph.GenParams{NumViews: 1, PixelA: 2.5, Seed: 2})
	dft := fourier.NewVolumeDFTPadded(truth, pad)
	r, err := core.NewRefiner(dft, core.DefaultConfig(l))
	if err != nil {
		fatal(err)
	}
	v := ds.Views[0]
	pv, err := r.PrepareView(v.Image, v.CTF)
	if err != nil {
		fatal(err)
	}

	rep := Report{
		SchemaVersion: benchutil.BenchSchemaVersion,
		RunMeta:       benchutil.CurrentRunMeta(),
		L:             l,
		Pad:           pad,
		BandSize:      r.BandSize(),
		SearchMode:    string(core.SearchAdaptive),
	}

	init := v.TrueOrient.Add(geom.Euler{Theta: 1.5, Phi: -1, Omega: 0.7})

	// Deterministic comparison pass, independent of the timing loops:
	// one adaptive refinement (plus a rerun for the bit-identity and
	// steady-state cache-hit checks) against the exhaustive oracle.
	resA := r.RefineView(mustPrepare(r, v), init)
	h0, m0 := r.CutCacheStats()
	resB := r.RefineView(mustPrepare(r, v), init)
	h1, m1 := r.CutCacheStats()
	identical := resA.Orient == resB.Orient && resA.Center == resB.Center && resA.Distance == resB.Distance

	rx, err := core.NewRefiner(dft, core.DefaultConfig(l))
	if err != nil {
		fatal(err)
	}
	//replint:allow oracleguard the report's whole point is scoring the adaptive search against the exhaustive reference scan
	resE := rx.ExhaustiveRefine(mustPrepare(rx, v), init)

	rep.RefineFinalErrDeg = geom.AngularDistance(resA.Orient, v.TrueOrient)
	rep.RefineFinalErrExhaustiveDeg = geom.AngularDistance(resE.Orient, v.TrueOrient)
	rep.DistanceEvalsPerView = float64(resA.TotalMatchings())
	rep.ExhaustiveEvalsPerView = float64(resE.TotalMatchings())
	if rep.ExhaustiveEvalsPerView > 0 {
		rep.EvalsSavedFrac = 1 - rep.DistanceEvalsPerView/rep.ExhaustiveEvalsPerView
	}
	// Hit rate of the second (warm-cache) refinement — the steady
	// state a multi-view job converges to.
	if dh, dm := h1-h0, m1-m0; dh+dm > 0 {
		rep.CutCacheHitRate = float64(dh) / float64(dh+dm)
	}

	if !*smoke {
		match := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			var acc float64
			for i := 0; i < b.N; i++ {
				acc += r.Distance(pv, v.TrueOrient)
			}
			_ = acc
		})
		rep.NsPerMatch = float64(match.NsPerOp())
		rep.MatchesPerSec = 1e9 / rep.NsPerMatch
		rep.AllocsPerMatch = float64(match.AllocsPerOp())

		w := geom.CenteredWindow(v.TrueOrient, 4, 1)
		orients := w.Orientations()
		dst := make([]float64, len(orients))
		rep.WindowOrients = len(orients)
		window := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				r.DistanceWindow(pv, orients, dst)
			}
		})
		rep.NsPerWindow = float64(window.NsPerOp())
		rep.NsPerWindowMatch = rep.NsPerWindow / float64(len(orients))
		rep.AllocsPerWindow = float64(window.AllocsPerOp())

		refine := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := r.RefineView(mustPrepare(r, v), init)
				if res.Orient != resA.Orient {
					fatal(fmt.Errorf("adaptive refinement diverged across reruns"))
				}
			}
		})
		rep.NsPerRefineView = float64(refine.NsPerOp())

		// The exhaustive timing uses the production SearchExhaustive
		// mode — the same code path the oracle forces.
		rex, err := core.NewRefiner(dft, exhaustiveConfig(l))
		if err != nil {
			fatal(err)
		}
		refineEx := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rex.RefineView(mustPrepare(rex, v), init)
			}
		})
		rep.NsPerRefineViewExhaustive = float64(refineEx.NsPerOp())
	}

	if err := stopObs(); err != nil {
		fatal(err)
	}

	rep.History, err = benchutil.LoadHistory(*out, 0)
	if err != nil {
		fatal(err)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatal(err)
	}

	if *smoke {
		// The CI gate: the adaptive search must stay cheap, accurate
		// and deterministic relative to the exhaustive oracle.
		ok := true
		if rep.EvalsSavedFrac < 0.5 {
			fmt.Fprintf(os.Stderr, "benchkernel: evals_saved_frac %.3f < 0.5 (adaptive %v vs exhaustive %v evals)\n",
				rep.EvalsSavedFrac, rep.DistanceEvalsPerView, rep.ExhaustiveEvalsPerView)
			ok = false
		}
		if rep.RefineFinalErrDeg > 1.10*rep.RefineFinalErrExhaustiveDeg+0.01 {
			fmt.Fprintf(os.Stderr, "benchkernel: adaptive final error %.4f° regresses against exhaustive %.4f°\n",
				rep.RefineFinalErrDeg, rep.RefineFinalErrExhaustiveDeg)
			ok = false
		}
		if !identical {
			fmt.Fprintln(os.Stderr, "benchkernel: seeded adaptive rerun was not bit-identical")
			ok = false
		}
		if !ok {
			os.Exit(1)
		}
		fmt.Printf("smoke ok: %s — adaptive %v evals vs exhaustive %v (saved %.1f%%), err %.4f° vs %.4f°, cache hit rate %.2f\n",
			*out, rep.DistanceEvalsPerView, rep.ExhaustiveEvalsPerView, 100*rep.EvalsSavedFrac,
			rep.RefineFinalErrDeg, rep.RefineFinalErrExhaustiveDeg, rep.CutCacheHitRate)
		return
	}

	fmt.Printf("wrote %s: %.0f ns/match (%.0f matches/sec, %g allocs), %.2f ms/refine (%.2f ms exhaustive, %.1f%% evals saved)\n",
		*out, rep.NsPerMatch, rep.MatchesPerSec, rep.AllocsPerMatch,
		rep.NsPerRefineView/1e6, rep.NsPerRefineViewExhaustive/1e6, 100*rep.EvalsSavedFrac)
}

// exhaustiveConfig is DefaultConfig with the flat window scan selected.
func exhaustiveConfig(l int) core.Config {
	cfg := core.DefaultConfig(l)
	cfg.Search = core.SearchExhaustive
	return cfg
}

// mustPrepare rebuilds fresh view state (refinement bakes centre
// shifts into the band, so each run needs its own).
func mustPrepare(r *core.Refiner, v *micrograph.View) *core.View {
	pv, err := r.PrepareView(v.Image, v.CTF)
	if err != nil {
		fatal(err)
	}
	return pv
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchkernel:", err)
	os.Exit(1)
}
