// Command benchkernel measures the fused orientation-matching kernel
// and writes the results as JSON, giving subsequent changes a recorded
// perf trajectory to regress against:
//
//	go run ./cmd/benchkernel -o BENCH_kernel.json
//
// It times three layers: one matching operation (cut sampling +
// distance over the full band), one batched sliding-window evaluation
// (9×9×9 orientations), and one full multi-resolution refinement of a
// single view — the same fixtures as BenchmarkMatchKernel,
// BenchmarkDistanceWindow and BenchmarkRefineOneView in bench_test.go.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"testing"

	"repro/internal/benchutil"
	"repro/internal/core"
	"repro/internal/fourier"
	"repro/internal/geom"
	"repro/internal/micrograph"
	"repro/internal/phantom"
)

// Report is the schema of BENCH_kernel.json. SchemaVersion covers the
// shared envelope (schema_version + run_meta); the measurement fields
// may grow between PRs.
type Report struct {
	SchemaVersion int               `json:"schema_version"`
	RunMeta       benchutil.RunMeta `json:"run_meta"`
	L             int               `json:"l"`
	Pad           int               `json:"pad"`
	BandSize      int               `json:"band_size"`

	NsPerMatch     float64 `json:"ns_per_match"`
	MatchesPerSec  float64 `json:"matches_per_sec"`
	AllocsPerMatch float64 `json:"allocs_per_match"`

	WindowOrients     int     `json:"window_orients"`
	NsPerWindow       float64 `json:"ns_per_window"`
	NsPerWindowMatch  float64 `json:"ns_per_window_match"`
	AllocsPerWindow   float64 `json:"allocs_per_window"`
	NsPerRefineView   float64 `json:"ns_per_refine_view"`
	RefineFinalErrDeg float64 `json:"refine_final_err_deg"`
}

func main() {
	out := flag.String("o", "BENCH_kernel.json", "output path")
	var of benchutil.Flags
	of.Register(flag.CommandLine)
	flag.Parse()

	stopObs, err := of.Start()
	if err != nil {
		fatal(err)
	}

	const l, pad = 32, 2
	truth := phantom.Asymmetric(l, 8, 1)
	truth.SphericalMask(13)
	ds := micrograph.Generate(truth, micrograph.GenParams{NumViews: 1, PixelA: 2.5, Seed: 2})
	dft := fourier.NewVolumeDFTPadded(truth, pad)
	r, err := core.NewRefiner(dft, core.DefaultConfig(l))
	if err != nil {
		fatal(err)
	}
	v := ds.Views[0]
	pv, err := r.PrepareView(v.Image, v.CTF)
	if err != nil {
		fatal(err)
	}

	rep := Report{
		SchemaVersion: benchutil.BenchSchemaVersion,
		RunMeta:       benchutil.CurrentRunMeta(),
		L:             l,
		Pad:           pad,
		BandSize:      r.BandSize(),
	}

	match := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		var acc float64
		for i := 0; i < b.N; i++ {
			acc += r.Distance(pv, v.TrueOrient)
		}
		_ = acc
	})
	rep.NsPerMatch = float64(match.NsPerOp())
	rep.MatchesPerSec = 1e9 / rep.NsPerMatch
	rep.AllocsPerMatch = float64(match.AllocsPerOp())

	w := geom.CenteredWindow(v.TrueOrient, 4, 1)
	orients := w.Orientations()
	dst := make([]float64, len(orients))
	rep.WindowOrients = len(orients)
	window := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			r.DistanceWindow(pv, orients, dst)
		}
	})
	rep.NsPerWindow = float64(window.NsPerOp())
	rep.NsPerWindowMatch = rep.NsPerWindow / float64(len(orients))
	rep.AllocsPerWindow = float64(window.AllocsPerOp())

	init := v.TrueOrient.Add(geom.Euler{Theta: 1.5, Phi: -1, Omega: 0.7})
	var finalErr float64
	refine := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			fresh, err := r.PrepareView(v.Image, v.CTF)
			if err != nil {
				fatal(err)
			}
			res := r.RefineView(fresh, init)
			finalErr = geom.AngularDistance(res.Orient, v.TrueOrient)
		}
	})
	rep.NsPerRefineView = float64(refine.NsPerOp())
	rep.RefineFinalErrDeg = finalErr

	if err := stopObs(); err != nil {
		fatal(err)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s: %.0f ns/match (%.0f matches/sec, %g allocs), %.2f ms/refine\n",
		*out, rep.NsPerMatch, rep.MatchesPerSec, rep.AllocsPerMatch, rep.NsPerRefineView/1e6)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchkernel:", err)
	os.Exit(1)
}
