// Command reconstruct builds a 3-D electron-density map from a
// dataset's views and an orientation file (refined or ground truth),
// writes the map, and exports central cross-sections as PGM images —
// the raw material of the paper's Figs. 2 and 3.
//
// Usage:
//
//	reconstruct -data data/sindbis -orients refined.txt -out map.vol [-sections dir]
//	            [-p workers] [-metrics -] [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/benchutil"
	"repro/internal/ctf"
	"repro/internal/micrograph"
	"repro/internal/reconstruct"
	"repro/internal/volume"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("reconstruct: ")
	var (
		data     = flag.String("data", "", "dataset directory (required)")
		orients  = flag.String("orients", "", "orientation file; empty uses ground truth")
		out      = flag.String("out", "map.vol", "output map file")
		sections = flag.String("sections", "", "directory for PGM cross-sections (optional)")
		truthCC  = flag.Bool("truthcc", true, "report correlation against the ground-truth map")
		p        = flag.Int("p", 0, "worker count for the insertion kernel; 0 = GOMAXPROCS")
	)
	var of benchutil.Flags
	of.Register(flag.CommandLine)
	flag.Parse()
	if *data == "" {
		flag.Usage()
		os.Exit(2)
	}
	stopObs, err := of.Start()
	if err != nil {
		log.Fatal(err)
	}
	ds, err := micrograph.Load(*data)
	if err != nil {
		log.Fatal(err)
	}

	orientList := ds.TrueOrientations()
	var centers [][2]float64
	if *orients != "" {
		orientList, centers, err = micrograph.ReadOrientationList(*orients)
		if err != nil {
			log.Fatal(err)
		}
		if len(orientList) != len(ds.Views) {
			log.Fatalf("%d orientations for %d views", len(orientList), len(ds.Views))
		}
	}

	var ctfs []ctf.Params
	if ds.HasCTF {
		for _, v := range ds.Views {
			ctfs = append(ctfs, v.CTF)
		}
	}
	m, err := reconstruct.FromViewsParallel(ds.Images(), orientList, centers, ctfs,
		reconstruct.ParallelOptions{Options: reconstruct.Options{WienerCTF: ds.HasCTF}, Workers: *p})
	if err != nil {
		log.Fatal(err)
	}

	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := m.WriteTo(f); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reconstructed %d views -> %s (%d³ voxels)\n", len(ds.Views), *out, m.L)

	if *truthCC {
		fmt.Printf("correlation vs ground truth: %.4f\n", volume.Correlation(ds.Truth, m))
	}
	if *sections != "" {
		if err := os.MkdirAll(*sections, 0o755); err != nil {
			log.Fatal(err)
		}
		for _, frac := range []float64{0.35, 0.5, 0.65} {
			z := int(frac * float64(m.L))
			path := filepath.Join(*sections, fmt.Sprintf("section_z%02d.pgm", z))
			sf, err := os.Create(path)
			if err != nil {
				log.Fatal(err)
			}
			if err := m.ZSection(z).WritePGM(sf); err != nil {
				log.Fatal(err)
			}
			if err := sf.Close(); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("wrote %s\n", path)
		}
	}
	if err := stopObs(); err != nil {
		log.Fatal(err)
	}
}
