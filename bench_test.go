package repro

// One benchmark per table and figure of the paper's evaluation, plus
// ablations of the design choices DESIGN.md calls out. The benchmarks
// run the real experiments at reduced scale and publish the headline
// numbers as custom metrics (resolutions in Å, correlation
// coefficients, operation counts), so `go test -bench=.` regenerates
// the full evaluation.

import (
	"testing"

	"repro/internal/baseline"
	"repro/internal/brick"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/ctf"
	"repro/internal/fourier"
	"repro/internal/fsc"
	"repro/internal/geom"
	"repro/internal/micrograph"
	"repro/internal/obs"
	"repro/internal/phantom"
	"repro/internal/reconstruct"
	"repro/internal/volume"
	"repro/internal/workload"
)

// benchScale shrinks the datasets so the whole suite finishes in
// minutes; the shapes being verified are scale-invariant.
const benchScale = 1.8

// BenchmarkFig1bViewCounts regenerates Fig. 1b / §3: calculated-view
// counts with and without icosahedral symmetry, and the asymmetric
// search-space blow-up.
func BenchmarkFig1bViewCounts(b *testing.B) {
	var rows []workload.ViewCountRow
	for i := 0; i < b.N; i++ {
		rows = workload.ViewCounts([]float64{6, 3, 1, 0.1})
	}
	last := rows[len(rows)-1]
	b.ReportMetric(float64(last.IcosAsymUnit), "icosViews@0.1deg")
	b.ReportMetric(last.AsymSearchSpace, "asymSearchSpace@0.1deg")
}

// BenchmarkOpCountMultiRes regenerates §4's operation-count claim:
// the multi-resolution ladder vs a flat fine search over a 10° domain.
func BenchmarkOpCountMultiRes(b *testing.B) {
	var rep workload.OpCountReport
	for i := 0; i < b.N; i++ {
		rep = workload.OpCount(10, nil)
	}
	b.ReportMetric(float64(rep.FlatPerAxis), "flat/axis")
	b.ReportMetric(float64(rep.MultiPerAxis), "multi/axis")
	b.ReportMetric(rep.SavingFactor, "saving")
}

// BenchmarkFig5SindbisFSC regenerates Fig. 5 (and the Fig. 2/3 maps
// and Fig. 4 split behind it): old vs new refinement on the
// Sindbis-like dataset, scored by the odd/even FSC.
func BenchmarkFig5SindbisFSC(b *testing.B) {
	benchmarkFSC(b, workload.SindbisSpec().Scaled(benchScale))
}

// BenchmarkFig6ReoFSC regenerates Fig. 6 for the reo-like dataset.
// The double-shelled reo particle needs a somewhat larger box than the
// Sindbis-like one to keep its shells resolved.
func BenchmarkFig6ReoFSC(b *testing.B) {
	benchmarkFSC(b, workload.ReoSpec().Scaled(benchScale*0.8))
}

func benchmarkFSC(b *testing.B, spec workload.DatasetSpec) {
	var exp *workload.FSCExperiment
	for i := 0; i < b.N; i++ {
		var err error
		exp, err = workload.RunFSC(spec, workload.FSCOptions{})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(exp.Old.ResolutionA, "oldResÅ")
	b.ReportMetric(exp.New.ResolutionA, "newResÅ")
	b.ReportMetric(exp.Old.MeanAngErr, "oldAngErr°")
	b.ReportMetric(exp.New.MeanAngErr, "newAngErr°")
	// Resolutions are read off discrete FSC shells; allow sub-shell
	// ties at benchmark scale.
	if exp.New.ResolutionA > 1.05*exp.Old.ResolutionA {
		b.Errorf("new method resolution %.2f Å clearly worse than old %.2f Å",
			exp.New.ResolutionA, exp.Old.ResolutionA)
	}
	if exp.New.MeanAngErr > exp.Old.MeanAngErr {
		b.Errorf("new method angular error %.2f° worse than old %.2f°",
			exp.New.MeanAngErr, exp.Old.MeanAngErr)
	}
}

// BenchmarkFig4SplitFSC regenerates the Fig. 4 resolution-assessment
// procedure in isolation: odd/even split, two reconstructions, FSC.
func BenchmarkFig4SplitFSC(b *testing.B) {
	spec := workload.SindbisSpec().Scaled(benchScale)
	ds := spec.Build()
	var res float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		odd, even, err := reconstruct.SplitHalves(ds.Images(), ds.TrueOrientations(), nil, nil, reconstruct.Options{})
		if err != nil {
			b.Fatal(err)
		}
		curve, err := fsc.Compute(odd, even, spec.PixelA)
		if err != nil {
			b.Fatal(err)
		}
		res = curve.ResolutionAt(0.5)
	}
	b.ReportMetric(res, "resÅ@truth")
}

// BenchmarkTable1Sindbis regenerates Table 1: per-step times of one
// refinement pass per angular resolution on the simulated cluster.
func BenchmarkTable1Sindbis(b *testing.B) {
	benchmarkTiming(b, workload.SindbisSpec())
}

// BenchmarkTable2Reo regenerates Table 2 for the reo-like dataset.
func BenchmarkTable2Reo(b *testing.B) {
	benchmarkTiming(b, workload.ReoSpec())
}

func benchmarkTiming(b *testing.B, spec workload.DatasetSpec) {
	spec = spec.Scaled(benchScale * 1.3)
	var table *workload.TimingTable
	for i := 0; i < b.N; i++ {
		var err error
		table, err = workload.RunTiming(spec, workload.TimingOptions{P: 16})
		if err != nil {
			b.Fatal(err)
		}
	}
	last := table.PaperRows[len(table.PaperRows)-1]
	b.ReportMetric(last.Refinement, "refineSecs@0.002°")
	b.ReportMetric(100*last.RefinementShare, "refineShare%")
	if last.RefinementShare < 0.9 {
		b.Errorf("refinement share %.2f at paper scale, expected ≥0.9 (the paper reports ~99%%)",
			last.RefinementShare)
	}
}

// BenchmarkSlidingWindowStats regenerates the §5 sliding-window
// observation: windows slide when the optimum lands on an edge,
// costing extra matchings beyond the base search range.
func BenchmarkSlidingWindowStats(b *testing.B) {
	spec := workload.SindbisSpec().Scaled(benchScale)
	ds := spec.Build()
	dft := fourier.NewVolumeDFTPadded(ds.Truth, 2)
	cfg := core.DefaultConfig(spec.L)
	cfg.Schedule = core.DefaultSchedule()[:2]
	r, err := core.NewRefiner(dft, cfg)
	if err != nil {
		b.Fatal(err)
	}
	inits := ds.PerturbedOrientations(spec.InitError, 3)
	var slides, matchings int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		slides, matchings = 0, 0
		for j, v := range ds.Views {
			pv, err := r.PrepareView(v.Image, v.CTF)
			if err != nil {
				b.Fatal(err)
			}
			res := r.RefineView(pv, inits[j])
			slides += res.TotalSlides()
			matchings += res.TotalMatchings()
		}
	}
	n := float64(len(ds.Views))
	b.ReportMetric(float64(slides)/n, "slides/view")
	b.ReportMetric(float64(matchings)/n, "matchings/view")
}

// BenchmarkCycleBreakdown regenerates the §5 claim that 3-D
// reconstruction is a small share of a refinement cycle.
func BenchmarkCycleBreakdown(b *testing.B) {
	spec := workload.SindbisSpec().Scaled(benchScale * 1.5)
	var cb workload.CycleBreakdown
	for i := 0; i < b.N; i++ {
		table, err := workload.RunTiming(spec, workload.TimingOptions{P: 16})
		if err != nil {
			b.Fatal(err)
		}
		cb = table.Cycle()
	}
	b.ReportMetric(100*cb.ReconstructionShare, "reconShare%")
}

// BenchmarkSymmetryDetection regenerates the §6 claim: the symmetry
// group of a refined map is recoverable.
func BenchmarkSymmetryDetection(b *testing.B) {
	var cases []workload.SymDetectCase
	for i := 0; i < b.N; i++ {
		cases = workload.RunSymmetryDetection(32)
	}
	correct := 0
	for _, c := range cases {
		if c.Correct() {
			correct++
		}
	}
	b.ReportMetric(float64(correct), "correctOf4")
	if correct != len(cases) {
		b.Errorf("symmetry detection got %d/%d cases", correct, len(cases))
	}
}

// ---- Ablations (DESIGN.md §5) ----

// ablationSetup builds a small noiseless dataset plus spectra at both
// paddings for the interpolation/padding ablations.
func ablationSetup(b *testing.B) (*micrograph.Dataset, *fourier.VolumeDFT, *fourier.VolumeDFT) {
	b.Helper()
	truth := phantom.Asymmetric(28, 8, 1)
	truth.SphericalMask(11)
	ds := micrograph.Generate(truth, micrograph.GenParams{NumViews: 12, PixelA: 2.5, Seed: 4})
	return ds, fourier.NewVolumeDFTPadded(truth, 2), fourier.NewVolumeDFT(truth)
}

func meanRefineError(b *testing.B, ds *micrograph.Dataset, dft *fourier.VolumeDFT, mutate func(*core.Config)) float64 {
	b.Helper()
	cfg := core.DefaultConfig(ds.L)
	cfg.Schedule = core.DefaultSchedule()[:2]
	if mutate != nil {
		mutate(&cfg)
	}
	r, err := core.NewRefiner(dft, cfg)
	if err != nil {
		b.Fatal(err)
	}
	inits := ds.PerturbedOrientations(2, 9)
	var sum float64
	for i, v := range ds.Views {
		pv, err := r.PrepareView(v.Image, v.CTF)
		if err != nil {
			b.Fatal(err)
		}
		res := r.RefineView(pv, inits[i])
		sum += geom.AngularDistance(res.Orient, v.TrueOrient)
	}
	return sum / float64(len(ds.Views))
}

// BenchmarkAblationInterp compares trilinear against nearest-neighbour
// cut interpolation: nearest is cheaper per sample but loses accuracy.
func BenchmarkAblationInterp(b *testing.B) {
	ds, dft, _ := ablationSetup(b)
	var errTri, errNear float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		errTri = meanRefineError(b, ds, dft, nil)
		errNear = meanRefineError(b, ds, dft, func(c *core.Config) { c.Interp = fourier.Nearest })
	}
	b.ReportMetric(errTri, "trilinearErr°")
	b.ReportMetric(errNear, "nearestErr°")
	if errTri > errNear {
		b.Errorf("trilinear (%.3f°) should beat nearest (%.3f°)", errTri, errNear)
	}
}

// BenchmarkAblationPadding compares 2x-oversampled matching spectra
// against unpadded ones: padding is the accuracy workhorse.
func BenchmarkAblationPadding(b *testing.B) {
	ds, padded, unpadded := ablationSetup(b)
	var errPad, errNoPad float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		errPad = meanRefineError(b, ds, padded, nil)
		errNoPad = meanRefineError(b, ds, unpadded, nil)
	}
	b.ReportMetric(errPad, "pad2Err°")
	b.ReportMetric(errNoPad, "pad1Err°")
}

// BenchmarkAblationSlidingWindow compares refinement with and without
// the sliding-window mechanism when the initial orientation falls
// outside the first window — the situation step i exists for.
func BenchmarkAblationSlidingWindow(b *testing.B) {
	ds, dft, _ := ablationSetup(b)
	offset := geom.Euler{Theta: 5, Phi: -6, Omega: 5}
	run := func(maxSlides int) float64 {
		cfg := core.DefaultConfig(ds.L)
		cfg.Schedule = []core.Level{{RAngular: 1, WindowHalf: 3}}
		cfg.MaxSlides = maxSlides
		r, err := core.NewRefiner(dft, cfg)
		if err != nil {
			b.Fatal(err)
		}
		var sum float64
		for _, v := range ds.Views {
			pv, err := r.PrepareView(v.Image, v.CTF)
			if err != nil {
				b.Fatal(err)
			}
			res := r.RefineView(pv, v.TrueOrient.Add(offset))
			sum += geom.AngularDistance(res.Orient, v.TrueOrient)
		}
		return sum / float64(len(ds.Views))
	}
	var with, without float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		with = run(10)
		without = run(0)
	}
	b.ReportMetric(with, "withSlidesErr°")
	b.ReportMetric(without, "noSlidesErr°")
	if with > without {
		b.Errorf("sliding window (%.2f°) should beat fixed window (%.2f°)", with, without)
	}
}

// BenchmarkAblationMultiRes compares the multi-resolution ladder
// against a flat search of equal final resolution over the same
// domain: similar accuracy, orders of magnitude fewer matchings.
func BenchmarkAblationMultiRes(b *testing.B) {
	ds, dft, _ := ablationSetup(b)
	var multiMatch, flatMatch int
	var multiErr, flatErr float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := core.DefaultConfig(ds.L)
		cfg.Schedule = core.DefaultSchedule()[:2]
		r, err := core.NewRefiner(dft, cfg)
		if err != nil {
			b.Fatal(err)
		}
		multiMatch, flatMatch = 0, 0
		multiErr, flatErr = 0, 0
		inits := ds.PerturbedOrientations(2, 9)
		for j, v := range ds.Views {
			pv, _ := r.PrepareView(v.Image, v.CTF)
			res := r.RefineView(pv, inits[j])
			multiMatch += res.TotalMatchings()
			multiErr += geom.AngularDistance(res.Orient, v.TrueOrient)

			best, n, err := baseline.FlatSearch(dft, v.Image, ctf.Params{}, inits[j], 2, 0.1, 0.8*float64(ds.L)/2)
			if err != nil {
				b.Fatal(err)
			}
			flatMatch += n
			flatErr += geom.AngularDistance(best, v.TrueOrient)
		}
	}
	nv := float64(len(ds.Views))
	b.ReportMetric(float64(multiMatch)/nv, "multiMatch/view")
	b.ReportMetric(float64(flatMatch)/nv, "flatMatch/view")
	b.ReportMetric(multiErr/nv, "multiErr°")
	b.ReportMetric(flatErr/nv, "flatErr°")
}

// BenchmarkAblationWeighting compares uniform band weights against
// the reference-spectrum (gated matched-filter) weighting.
func BenchmarkAblationWeighting(b *testing.B) {
	ds, dft, _ := ablationSetup(b)
	var uniform, spectral float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		uniform = meanRefineError(b, ds, dft, nil)
		spectral = meanRefineError(b, ds, dft, func(c *core.Config) { c.SpectralWeight = true })
	}
	b.ReportMetric(uniform, "uniformErr°")
	b.ReportMetric(spectral, "spectralErr°")
}

// BenchmarkAblationShellMask compares the full Fourier disc against an
// annulus excluding the lowest frequencies (§3's capsid-shell remark).
func BenchmarkAblationShellMask(b *testing.B) {
	ds, dft, _ := ablationSetup(b)
	var full, annulus float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		full = meanRefineError(b, ds, dft, nil)
		annulus = meanRefineError(b, ds, dft, func(c *core.Config) { c.RMin = 2 })
	}
	b.ReportMetric(full, "fullBandErr°")
	b.ReportMetric(annulus, "annulusErr°")
}

// BenchmarkAblationReplication measures the §6 design discussion on
// the simulator: replicating the 3-D DFT on every node (chosen by the
// paper) versus demand-paging bricks through an LRU cache
// (internal/brick, the strategy of the paper's ref [6]). The
// replicated all-gather pays once per pass; on-demand fetching pays a
// message per cache miss across the matching workload.
func BenchmarkAblationReplication(b *testing.B) {
	model := cluster.SP2
	truth := phantom.Asymmetric(24, 8, 1)
	dft := fourier.NewVolumeDFTPadded(truth, 2)
	store, err := brick.NewStore(dft, 8)
	if err != nil {
		b.Fatal(err)
	}
	var orients []geom.Euler
	for i := 0; i < 40; i++ {
		orients = append(orients, geom.Euler{Theta: float64(3 * i), Phi: float64(5 * i), Omega: float64(7 * i)})
	}
	var replicated, onDemand, hitRate float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Replicated: one all-gather of the full spectrum.
		replicated = model.MessageTime(len(dft.Data) * 16)
		// On demand: the same slice workload through a small cache.
		cl := cluster.New(1, model)
		cl.Run(func(n *cluster.Node) {
			c, err := brick.NewClient(store, n, model, 8)
			if err != nil {
				b.Fatal(err)
			}
			for _, o := range orients {
				c.ExtractSlice(o, 9, fourier.Trilinear)
			}
			onDemand = n.Clock()
			hitRate = c.HitRate()
		})
	}
	b.ReportMetric(replicated, "replicatedSecs")
	b.ReportMetric(onDemand, "onDemandSecs")
	b.ReportMetric(100*hitRate, "cacheHit%")
	if replicated > onDemand {
		b.Errorf("replication (%.3gs) should beat on-demand bricks (%.3gs)",
			replicated, onDemand)
	}
}

// BenchmarkParallelDFTScaling measures the slab-decomposed 3-D DFT on
// increasing simulated node counts (step a of the algorithm).
func BenchmarkParallelDFTScaling(b *testing.B) {
	// A map large enough that per-node FFT work dominates the
	// all-gather; small maps are communication-bound and show no
	// speedup (which parfft.ModelTime also predicts).
	g := phantom.SindbisLike(64)
	var t1, t8 float64
	for i := 0; i < b.N; i++ {
		r1 := core.Transform3DOnCluster(cluster.New(1, cluster.SP2), g, 0)
		r8 := core.Transform3DOnCluster(cluster.New(8, cluster.SP2), g, 0)
		t1, t8 = r1.Elapsed, r8.Elapsed
	}
	b.ReportMetric(t1, "P1secs")
	b.ReportMetric(t8, "P8secs")
	b.ReportMetric(t1/t8, "speedup")
	if t8 >= t1 {
		b.Errorf("8 nodes (%gs) not faster than 1 (%gs) on a compute-bound map", t8, t1)
	}
}

// BenchmarkRefineOneView is the kernel benchmark: one full
// multi-resolution refinement of a single view.
func BenchmarkRefineOneView(b *testing.B) {
	truth := phantom.Asymmetric(32, 8, 1)
	truth.SphericalMask(13)
	ds := micrograph.Generate(truth, micrograph.GenParams{NumViews: 1, PixelA: 2.5, Seed: 2})
	dft := fourier.NewVolumeDFTPadded(truth, 2)
	r, err := core.NewRefiner(dft, core.DefaultConfig(32))
	if err != nil {
		b.Fatal(err)
	}
	v := ds.Views[0]
	init := v.TrueOrient.Add(geom.Euler{Theta: 1.5, Phi: -1, Omega: 0.7})
	b.ReportAllocs()
	b.ResetTimer()
	var lastErr float64
	for i := 0; i < b.N; i++ {
		pv, err := r.PrepareView(v.Image, v.CTF)
		if err != nil {
			b.Fatal(err)
		}
		res := r.RefineView(pv, init)
		lastErr = geom.AngularDistance(res.Orient, v.TrueOrient)
	}
	b.ReportMetric(lastErr, "finalErr°")
}

// matchKernelSetup builds the refiner + prepared view used by the
// fused-kernel micro-benchmarks (same fixture as BenchmarkRefineOneView).
func matchKernelSetup(b *testing.B) (*core.Refiner, *core.View, geom.Euler) {
	b.Helper()
	truth := phantom.Asymmetric(32, 8, 1)
	truth.SphericalMask(13)
	ds := micrograph.Generate(truth, micrograph.GenParams{NumViews: 1, PixelA: 2.5, Seed: 2})
	dft := fourier.NewVolumeDFTPadded(truth, 2)
	r, err := core.NewRefiner(dft, core.DefaultConfig(32))
	if err != nil {
		b.Fatal(err)
	}
	v := ds.Views[0]
	pv, err := r.PrepareView(v.Image, v.CTF)
	if err != nil {
		b.Fatal(err)
	}
	return r, pv, v.TrueOrient
}

// BenchmarkMatchKernel times one fused matching operation — cut
// sampling over the full band plus the distance accumulation — the
// inner loop of the entire refinement. It must stay at 0 allocs/op.
func BenchmarkMatchKernel(b *testing.B) {
	r, pv, o := matchKernelSetup(b)
	b.ReportAllocs()
	b.ResetTimer()
	var acc float64
	for i := 0; i < b.N; i++ {
		acc += r.Distance(pv, o)
	}
	_ = acc
	b.ReportMetric(float64(r.BandSize()), "band")
}

// BenchmarkMatchKernelInstrumented is BenchmarkMatchKernel with full
// instrumentation enabled: the obs counters inside the kernel
// (sampler cut calls, distance evaluations) fire on every op, and the
// benchmark asserts the kernel still runs at 0 allocs/op — the
// pooled/atomic design's contract.
func BenchmarkMatchKernelInstrumented(b *testing.B) {
	r, pv, o := matchKernelSetup(b)
	prev := obs.SetEnabled(true)
	defer obs.SetEnabled(prev)
	b.ReportAllocs()
	b.ResetTimer()
	var acc float64
	for i := 0; i < b.N; i++ {
		acc += r.Distance(pv, o)
	}
	_ = acc
	b.StopTimer()
	if n := testing.AllocsPerRun(100, func() { acc += r.Distance(pv, o) }); n != 0 {
		b.Fatalf("instrumented match kernel allocates %v/op, want 0", n)
	}
}

// BenchmarkDistanceWindow times the batched sliding-window evaluation:
// a 9×9×9 grid of candidate orientations scored in one call.
func BenchmarkDistanceWindow(b *testing.B) {
	r, pv, o := matchKernelSetup(b)
	w := geom.CenteredWindow(o, 4, 1)
	orients := w.Orientations()
	dst := make([]float64, len(orients))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.DistanceWindow(pv, orients, dst)
	}
	b.ReportMetric(float64(len(orients)), "orients")
}

// BenchmarkReconstruction is the kernel benchmark for step C.
func BenchmarkReconstruction(b *testing.B) {
	truth := phantom.SindbisLike(32)
	ds := micrograph.Generate(truth, micrograph.GenParams{NumViews: 30, PixelA: 2.5, Seed: 3})
	b.ReportAllocs()
	b.ResetTimer()
	var cc float64
	for i := 0; i < b.N; i++ {
		rec, err := reconstruct.FromViews(ds.Images(), ds.TrueOrientations(), nil, nil, reconstruct.Options{})
		if err != nil {
			b.Fatal(err)
		}
		cc = volume.Correlation(truth, rec)
	}
	b.ReportMetric(cc, "truthCC")
}

// BenchmarkReconstructInsertView times one steady-state fused insert —
// the per-view cost a multi-cycle refinement job pays — on the full
// path: centre phase ramp, Wiener CTF weighting, trilinear scatter.
func BenchmarkReconstructInsertView(b *testing.B) {
	l := 32
	truth := phantom.SindbisLike(l)
	ds := micrograph.Generate(truth, micrograph.GenParams{
		NumViews: 16, PixelA: 2.5, Seed: 3,
		CenterJitter: 2, ApplyCTF: true, DefocusGroups: 3,
	})
	centers := make([][2]float64, len(ds.Views))
	ctfs := make([]ctf.Params, len(ds.Views))
	for i, v := range ds.Views {
		centers[i] = [2]float64{-v.TrueCenter[0], -v.TrueCenter[1]}
		ctfs[i] = v.CTF
	}
	rec := reconstruct.NewSharded(l, reconstruct.ParallelOptions{
		Options: reconstruct.Options{WienerCTF: true}, Workers: 1,
	})
	for i, v := range ds.Views {
		if err := rec.Insert(v.Image, v.TrueOrient, centers[i], ctfs[i]); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := i % len(ds.Views)
		if err := rec.Insert(ds.Views[j].Image, ds.Views[j].TrueOrient, centers[j], ctfs[j]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationNormalize compares the paper's raw distance formula
// against the least-squares gain-normalized variant on views whose
// intensity gain varies (as real micrographs' does).
func BenchmarkAblationNormalize(b *testing.B) {
	ds, dft, _ := ablationSetup(b)
	// Rescale every view by a different gain, as film/CCD exposure
	// variation would.
	scaled := make([]*volume.Image, len(ds.Views))
	for i, v := range ds.Views {
		im := v.Image.Clone()
		im.Scale(0.5 + 0.2*float64(i))
		scaled[i] = im
	}
	run := func(normalize bool) float64 {
		cfg := core.DefaultConfig(ds.L)
		cfg.Schedule = core.DefaultSchedule()[:2]
		cfg.NormalizeScale = normalize
		r, err := core.NewRefiner(dft, cfg)
		if err != nil {
			b.Fatal(err)
		}
		inits := ds.PerturbedOrientations(2, 9)
		var sum float64
		for i, v := range ds.Views {
			pv, err := r.PrepareView(scaled[i], v.CTF)
			if err != nil {
				b.Fatal(err)
			}
			res := r.RefineView(pv, inits[i])
			sum += geom.AngularDistance(res.Orient, v.TrueOrient)
		}
		return sum / float64(len(ds.Views))
	}
	var normErr, rawErr float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		normErr = run(true)
		rawErr = run(false)
	}
	b.ReportMetric(normErr, "normalizedErr°")
	b.ReportMetric(rawErr, "rawErr°")
	if normErr > rawErr {
		b.Errorf("gain normalization (%.3f°) should not lose to the raw formula (%.3f°) under gain variation", normErr, rawErr)
	}
}
