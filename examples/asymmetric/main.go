// Asymmetric-particle refinement and symmetry detection: the use case
// the paper's method was designed to unlock. A particle with no
// symmetry is refined without any symmetry assumption; then the same
// machinery is pointed at capsids whose symmetry is *unknown to it*,
// and the symmetry group is recovered from the refined map (paper §6:
// "if the virus exhibits any symmetry this method allows us to
// determine its symmetry group").
//
//	go run ./examples/asymmetric
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/fourier"
	"repro/internal/geom"
	"repro/internal/reconstruct"
	"repro/internal/volume"
	"repro/internal/workload"
)

func main() {
	log.SetFlags(0)

	// Part 1: refine an asymmetric particle. The search window roams
	// all of SO(3) — no asymmetric-unit restriction exists for C1.
	spec := workload.AsymmetricSpec()
	ds := spec.Build()
	fmt.Printf("asymmetric dataset: %d views of %d px, SNR %.2g\n", spec.NumViews, spec.L, spec.SNR)

	dft := fourier.NewVolumeDFTPadded(ds.Truth, 2)
	refiner, err := core.NewRefiner(dft, core.DefaultConfig(spec.L))
	if err != nil {
		log.Fatal(err)
	}
	inits := ds.PerturbedOrientations(spec.InitError, 3)
	views := make([]*core.View, len(ds.Views))
	for i, v := range ds.Views {
		views[i], err = refiner.PrepareView(v.Image, v.CTF)
		if err != nil {
			log.Fatal(err)
		}
	}
	results, err := refiner.RefineAll(views, inits, 0)
	if err != nil {
		log.Fatal(err)
	}
	var before, after float64
	orients := make([]geom.Euler, len(results))
	centers := make([][2]float64, len(results))
	for i, res := range results {
		before += geom.AngularDistance(inits[i], ds.Views[i].TrueOrient)
		after += geom.AngularDistance(res.Orient, ds.Views[i].TrueOrient)
		orients[i] = res.Orient
		centers[i] = res.Center
	}
	n := float64(len(results))
	fmt.Printf("mean angular error: %.3f° -> %.3f°\n", before/n, after/n)

	rec, err := reconstruct.FromViews(ds.Images(), orients, centers, nil, reconstruct.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reconstruction correlation vs ground truth: %.4f\n",
		volume.Correlation(ds.Truth, rec))

	// Part 2: symmetry detection. Hand maps of undisclosed symmetry
	// to the detector and let it name the group.
	fmt.Println("\nsymmetry-group detection:")
	for _, c := range workload.RunSymmetryDetection(32) {
		marker := "✓"
		if !c.Correct() {
			marker = "✗"
		}
		fmt.Printf("  %-22s -> %-3s (expected %-3s) %s\n", c.Name, c.Detected, c.Expected, marker)
	}
	det := workload.RunSymmetryDetectionOnMap(rec, 0.8)
	fmt.Printf("  refined asymmetric map -> %s\n", det.Detected)
}
