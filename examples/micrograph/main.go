// Micrograph pipeline: step A of the structure-determination procedure
// plus ab-initio orientation assignment. A synthetic micrograph field
// is laid out with virus particles at jittered positions; particles
// are boxed back out and pre-centred by centre of mass, then — with no
// initial orientation estimate at all — each boxed particle is
// assigned an orientation by coarse global search followed by the
// sliding-window multi-resolution refinement.
//
//	go run ./examples/micrograph
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/core"
	"repro/internal/fourier"
	"repro/internal/geom"
	"repro/internal/micrograph"
	"repro/internal/phantom"
	"repro/internal/volume"
)

func main() {
	log.SetFlags(0)
	const l = 32

	// A compact asymmetric particle, imaged 9 times.
	truth := phantom.Asymmetric(l, 10, 1)
	truth.SphericalMask(0.38 * l)
	ds := micrograph.Generate(truth, micrograph.GenParams{
		NumViews: 9, PixelA: 2.5, SNR: 6, Seed: 31,
	})

	// Step A: lay the views out on one big micrograph with positional
	// jitter, auto-detect the particles by matched filtering, and box
	// them at the detected positions.
	mg := micrograph.MakeMicrograph(ds, 3, 3, 1.5, 32)
	fmt.Printf("micrograph: %d×%d px, %d particles\n", mg.Field.L, mg.Field.L, len(mg.Nominal))
	// The asymmetric blob cluster is irregular, so match a template a
	// bit smaller than the bounding sphere and keep the threshold low.
	picks, err := micrograph.PickParticles(mg.Field, 0.6*l, 0.18, 0.9*l)
	if err != nil {
		log.Fatal(err)
	}
	recall, precision := micrograph.MatchPicks(picks, mg.Actual, 4)
	fmt.Printf("auto-picking: %d picks, recall %.0f%%, precision %.0f%%\n",
		len(picks), 100*recall, 100*precision)
	var images []*volume.Image
	var pickedViews []int
	for _, pk := range picks {
		im, err := mg.BoxParticle([2]int{int(math.Round(pk.X)), int(math.Round(pk.Y))})
		if err != nil {
			continue // too close to the field edge
		}
		// Identify which original view this pick corresponds to (for
		// ground-truth scoring only).
		bestI, bestD := -1, math.Inf(1)
		for i, a := range mg.Actual {
			if d := math.Hypot(pk.X-a[0], pk.Y-a[1]); d < bestD {
				bestI, bestD = i, d
			}
		}
		if bestD > 5 {
			continue
		}
		images = append(images, im)
		pickedViews = append(pickedViews, bestI)
	}
	fmt.Printf("boxed %d particles at picked positions\n", len(images))

	// Step B with no prior: global orientation search + refinement.
	dft := fourier.NewVolumeDFTPadded(truth, 2)
	cfg := core.DefaultConfig(l)
	cfg.Schedule = core.DefaultSchedule()[:3]
	refiner, err := core.NewRefiner(dft, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%4s %15s %14s\n", "box", "ab-initio err(°)", "centre fix(px)")
	var sum float64
	for i, im := range images {
		v := ds.Views[pickedViews[i]]
		pv, err := refiner.PrepareView(im, v.CTF)
		if err != nil {
			log.Fatal(err)
		}
		res, err := refiner.GlobalSearch(pv, core.DefaultGlobalSearchConfig())
		if err != nil {
			log.Fatal(err)
		}
		errDeg := geom.AngularDistance(res.Orient, v.TrueOrient)
		sum += errDeg
		fmt.Printf("%4d %15.2f %14.2f\n", i, errDeg, math.Hypot(res.Center[0], res.Center[1]))
	}
	fmt.Printf("mean ab-initio orientation error: %.2f°\n", sum/float64(len(images)))
}
