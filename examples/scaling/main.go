// Cluster-scaling study: the parallel behaviour behind the paper's
// Tables 1 and 2. One refinement pass runs on simulated
// distributed-memory machines of increasing size; the simulated
// per-step times show how view partitioning scales while the
// master-node I/O and the all-gather of the replicated 3-D DFT do not.
//
//	go run ./examples/scaling [-dataset sindbis] [-scale 2]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/cluster"
	"repro/internal/parfft"
	"repro/internal/workload"
)

func main() {
	log.SetFlags(0)
	dataset := flag.String("dataset", "sindbis", "sindbis, reo or asymmetric")
	scale := flag.Float64("scale", 2, "shrink factor ≥1")
	flag.Parse()

	var spec workload.DatasetSpec
	switch *dataset {
	case "sindbis":
		spec = workload.SindbisSpec()
	case "reo":
		spec = workload.ReoSpec()
	case "asymmetric":
		spec = workload.AsymmetricSpec()
	default:
		log.Fatalf("unknown dataset %q", *dataset)
	}
	spec = spec.Scaled(*scale)

	fmt.Printf("one refinement pass at 0.1°, %s (%d views of %d px), simulated SP2 nodes\n",
		spec.Name, spec.NumViews, spec.L)
	fmt.Printf("%4s %12s %12s %14s %12s %10s\n",
		"P", "3D DFT (s)", "read (s)", "refine (s)", "total (s)", "speedup")

	var base float64
	for _, p := range []int{1, 2, 4, 8, 16} {
		t, err := workload.RunTiming(spec, workload.TimingOptions{P: p})
		if err != nil {
			log.Fatal(err)
		}
		row := t.Rows[1] // the 0.1° pass
		if base == 0 {
			base = row.Total
		}
		fmt.Printf("%4d %12.4g %12.4g %14.4g %12.4g %9.2fx\n",
			p, row.DFT3D, row.ReadImages, row.Refinement, row.Total, base/row.Total)
	}

	fmt.Println("\nparallel 3-D DFT model at paper scale (l=221):")
	for _, p := range []int{1, 4, 16, 64} {
		fmt.Printf("  P=%-3d  %.4g s\n", p, parfft.ModelTime(cluster.SP2, 221, p, 0))
	}
}
