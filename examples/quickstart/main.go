// Quickstart: refine the orientation of a handful of simulated virus
// views against a reference map, end to end, in a few seconds.
//
//	go run ./examples/quickstart
//
// The program builds a small asymmetric test particle, projects it at
// random orientations with noise and centre jitter, perturbs the true
// orientations to simulate the rough initial estimates a real pipeline
// starts from, and runs the paper's sliding-window multi-resolution
// refinement. It prints the per-view improvement and the work done.
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/core"
	"repro/internal/fourier"
	"repro/internal/geom"
	"repro/internal/micrograph"
	"repro/internal/phantom"
)

func main() {
	log.SetFlags(0)
	const l = 32 // box size in pixels/voxels

	// 1. Ground truth: a compact asymmetric particle.
	truth := phantom.Asymmetric(l, 10, 1)
	truth.SphericalMask(0.4 * l)

	// 2. Simulated experimental views: noisy, off-centre projections.
	ds := micrograph.Generate(truth, micrograph.GenParams{
		NumViews:     8,
		PixelA:       2.5,
		SNR:          4,
		CenterJitter: 1,
		Seed:         1,
	})

	// 3. The reference spectrum the views are matched against:
	//    the centred, 2x oversampled 3-D DFT of the current map.
	dft := fourier.NewVolumeDFTPadded(truth, 2)

	// 4. A refiner with the paper's default multi-resolution schedule
	//    (1°, 0.1°, 0.01°, 0.002°).
	refiner, err := core.NewRefiner(dft, core.DefaultConfig(l))
	if err != nil {
		log.Fatal(err)
	}

	// 5. Rough initial orientations: truth perturbed by up to 2° per
	//    Euler angle.
	inits := ds.PerturbedOrientations(2, 7)

	fmt.Printf("%4s %12s %12s %14s %10s\n", "view", "init err(°)", "final err(°)", "centre err(px)", "matchings")
	var sumAng float64
	for i, v := range ds.Views {
		view, err := refiner.PrepareView(v.Image, v.CTF)
		if err != nil {
			log.Fatal(err)
		}
		res := refiner.RefineView(view, inits[i])

		angBefore := geom.AngularDistance(inits[i], v.TrueOrient)
		angAfter := geom.AngularDistance(res.Orient, v.TrueOrient)
		cenErr := math.Hypot(res.Center[0]+v.TrueCenter[0], res.Center[1]+v.TrueCenter[1])
		sumAng += angAfter
		fmt.Printf("%4d %12.3f %12.3f %14.3f %10d\n",
			i, angBefore, angAfter, cenErr, res.TotalMatchings())
	}
	fmt.Printf("mean refined angular error: %.3f°\n", sumAng/float64(len(ds.Views)))
}
