// Sindbis-like full pipeline: the experiment behind the paper's
// Figs. 2–5. An icosahedral alphavirus-like phantom is imaged into
// noisy views; the legacy symmetry-exploiting refinement ("old") and
// the paper's sliding-window multi-resolution refinement ("new")
// both iterate refine→reconstruct from the same rough starting
// orientations; the odd/even-split Fourier shell correlation then
// scores the two maps (Fig. 4's procedure).
//
//	go run ./examples/sindbis [-scale 2]
//
// Expect the run to take a couple of minutes at full scale; pass
// -scale 2 for a quick look.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/workload"
)

func main() {
	log.SetFlags(0)
	scale := flag.Float64("scale", 1, "shrink factor ≥1 for a faster run")
	flag.Parse()

	spec := workload.SindbisSpec().Scaled(*scale)
	fmt.Printf("dataset: %s, %d views of %d×%d px at %.2g Å/px, SNR %.2g\n",
		spec.Name, spec.NumViews, spec.L, spec.L, spec.PixelA, spec.SNR)
	fmt.Println("running old and new refinement (two refine→reconstruct cycles each)...")

	exp, err := workload.RunFSC(spec, workload.FSCOptions{})
	if err != nil {
		log.Fatal(err)
	}
	if err := workload.WriteFSC(os.Stdout, exp); err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	if err := workload.WriteSliding(os.Stdout, spec.Name, exp.New.PerLevel); err != nil {
		log.Fatal(err)
	}
}
