package volume

import (
	"fmt"
	"math/cmplx"
)

// CGrid is a cubic complex-valued lattice: the 3-D DFT D̂ of an
// electron-density map, stored in standard DFT layout (frequency 0 at
// index 0, negative frequencies wrapped to the top half).
type CGrid struct {
	L    int
	Data []complex128
}

// NewCGrid allocates a zeroed complex l³ grid.
func NewCGrid(l int) *CGrid {
	if l < 1 {
		panic(fmt.Sprintf("volume: invalid grid size %d", l))
	}
	return &CGrid{L: l, Data: make([]complex128, l*l*l)}
}

// Index returns the flat index of element (x, y, z).
func (g *CGrid) Index(x, y, z int) int { return (x*g.L+y)*g.L + z }

// At returns the element at (x, y, z).
func (g *CGrid) At(x, y, z int) complex128 { return g.Data[(x*g.L+y)*g.L+z] }

// Set stores v at (x, y, z).
func (g *CGrid) Set(x, y, z int, v complex128) { g.Data[(x*g.L+y)*g.L+z] = v }

// Add accumulates v into (x, y, z).
func (g *CGrid) Add(x, y, z int, v complex128) { g.Data[(x*g.L+y)*g.L+z] += v }

// Clone returns a deep copy.
func (g *CGrid) Clone() *CGrid {
	c := NewCGrid(g.L)
	copy(c.Data, g.Data)
	return c
}

// Real extracts the real part as a Grid, discarding imaginary
// residue (e.g. after an inverse DFT of Hermitian data).
func (g *CGrid) Real() *Grid {
	r := NewGrid(g.L)
	for i, v := range g.Data {
		r.Data[i] = real(v)
	}
	return r
}

// MaxImagAbs returns the largest |imag| component, a diagnostic for
// how Hermitian the data is.
func (g *CGrid) MaxImagAbs() float64 {
	m := 0.0
	for _, v := range g.Data {
		if im := imag(v); im > m {
			m = im
		} else if -im > m {
			m = -im
		}
	}
	return m
}

// Energy returns Σ|v|² over the grid.
func (g *CGrid) Energy() float64 {
	var e float64
	for _, v := range g.Data {
		e += real(v)*real(v) + imag(v)*imag(v)
	}
	return e
}

// Hermitianize enforces the conjugate symmetry G(−f) = conj(G(f)) that
// the DFT of a real map must satisfy, by averaging each element with
// the conjugate of its Friedel mate. Self-conjugate elements are
// forced real.
func (g *CGrid) Hermitianize() {
	l := g.L
	for x := 0; x < l; x++ {
		mx := (l - x) % l
		for y := 0; y < l; y++ {
			my := (l - y) % l
			for z := 0; z < l; z++ {
				mz := (l - z) % l
				i := g.Index(x, y, z)
				j := g.Index(mx, my, mz)
				if i < j {
					a, b := g.Data[i], g.Data[j]
					avg := (a + cmplx.Conj(b)) / 2
					g.Data[i] = avg
					g.Data[j] = cmplx.Conj(avg)
				} else if i == j {
					g.Data[i] = complex(real(g.Data[i]), 0)
				}
			}
		}
	}
}

// LowPass zeroes all Fourier coefficients with radius (in frequency
// index units, centred on frequency 0) above rmax — the paper's "keep
// only the subset of D̂ within a sphere of radius r_map".
func (g *CGrid) LowPass(rmax float64) {
	l := g.L
	r2 := rmax * rmax
	for x := 0; x < l; x++ {
		fx := float64(signedFreq(x, l))
		for y := 0; y < l; y++ {
			fy := float64(signedFreq(y, l))
			for z := 0; z < l; z++ {
				fz := float64(signedFreq(z, l))
				if fx*fx+fy*fy+fz*fz > r2 {
					g.Set(x, y, z, 0)
				}
			}
		}
	}
}

func signedFreq(k, n int) int {
	if k <= n/2 {
		return k
	}
	return k - n
}
