package volume

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randomGrid(r *rand.Rand, l int) *Grid {
	g := NewGrid(l)
	for i := range g.Data {
		g.Data[i] = r.NormFloat64()
	}
	return g
}

func randomImage(r *rand.Rand, l int) *Image {
	im := NewImage(l)
	for i := range im.Data {
		im.Data[i] = r.NormFloat64()
	}
	return im
}

func TestGridIndexing(t *testing.T) {
	g := NewGrid(5)
	g.Set(1, 2, 3, 42)
	if g.At(1, 2, 3) != 42 {
		t.Fatal("Set/At mismatch")
	}
	if g.Data[g.Index(1, 2, 3)] != 42 {
		t.Fatal("Index inconsistent with Set")
	}
	g.Add(1, 2, 3, 8)
	if g.At(1, 2, 3) != 50 {
		t.Fatal("Add failed")
	}
}

func TestGridInterpAtLatticePoints(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	g := randomGrid(r, 6)
	for x := 0; x < 6; x++ {
		for y := 0; y < 6; y++ {
			for z := 0; z < 6; z++ {
				if got := g.Interp(float64(x), float64(y), float64(z)); math.Abs(got-g.At(x, y, z)) > 1e-12 {
					t.Fatalf("Interp at lattice point (%d,%d,%d) = %g, want %g", x, y, z, got, g.At(x, y, z))
				}
			}
		}
	}
}

func TestGridInterpLinearFunction(t *testing.T) {
	// Trilinear interpolation reproduces affine functions exactly.
	g := NewGrid(8)
	f := func(x, y, z float64) float64 { return 2*x - 3*y + 0.5*z + 7 }
	for x := 0; x < 8; x++ {
		for y := 0; y < 8; y++ {
			for z := 0; z < 8; z++ {
				g.Set(x, y, z, f(float64(x), float64(y), float64(z)))
			}
		}
	}
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 200; i++ {
		x, y, z := r.Float64()*6, r.Float64()*6, r.Float64()*6
		if got := g.Interp(x, y, z); math.Abs(got-f(x, y, z)) > 1e-9 {
			t.Fatalf("Interp(%g,%g,%g) = %g, want %g", x, y, z, got, f(x, y, z))
		}
	}
}

func TestGridInterpOutsideIsZero(t *testing.T) {
	g := NewGrid(4)
	for i := range g.Data {
		g.Data[i] = 1
	}
	if g.Interp(-2, 1, 1) != 0 || g.Interp(1, 10, 1) != 0 {
		t.Fatal("points outside lattice must contribute zero")
	}
}

func TestSphericalMask(t *testing.T) {
	g := NewGrid(9)
	for i := range g.Data {
		g.Data[i] = 1
	}
	g.SphericalMask(2)
	c := g.Center()
	if g.At(c, c, c) != 1 {
		t.Error("centre voxel masked out")
	}
	if g.At(c+2, c, c) != 1 {
		t.Error("voxel at radius 2 masked out")
	}
	if g.At(c+3, c, c) != 0 || g.At(0, 0, 0) != 0 {
		t.Error("voxel beyond radius not masked")
	}
}

func TestCorrelationProperties(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	a := randomGrid(r, 6)
	if c := Correlation(a, a); math.Abs(c-1) > 1e-12 {
		t.Errorf("self-correlation = %g, want 1", c)
	}
	b := a.Clone()
	b.Scale(-2)
	if c := Correlation(a, b); math.Abs(c+1) > 1e-12 {
		t.Errorf("anti-correlation = %g, want -1", c)
	}
	// Correlation is invariant under affine rescaling.
	d := a.Clone()
	d.Scale(3.7)
	for i := range d.Data {
		d.Data[i] += 11
	}
	if c := Correlation(a, d); math.Abs(c-1) > 1e-12 {
		t.Errorf("affine-invariance violated: %g", c)
	}
}

func TestGridRoundTripIO(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	g := randomGrid(r, 7)
	var buf bytes.Buffer
	if _, err := g.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadGrid(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.L != g.L {
		t.Fatalf("size %d, want %d", got.L, g.L)
	}
	for i := range g.Data {
		if got.Data[i] != g.Data[i] {
			t.Fatalf("voxel %d: %g != %g", i, got.Data[i], g.Data[i])
		}
	}
}

func TestImageRoundTripIO(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	im := randomImage(r, 13)
	var buf bytes.Buffer
	if _, err := im.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadImage(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range im.Data {
		if got.Data[i] != im.Data[i] {
			t.Fatalf("pixel %d mismatch", i)
		}
	}
}

func TestReadGridRejectsGarbage(t *testing.T) {
	if _, err := ReadGrid(bytes.NewReader([]byte{1, 2, 3, 4, 5, 6, 7, 8})); err == nil {
		t.Fatal("bad magic accepted")
	}
	if _, err := ReadGrid(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestWritePGMHeader(t *testing.T) {
	im := NewImage(4)
	var buf bytes.Buffer
	if err := im.WritePGM(&buf); err != nil {
		t.Fatal(err)
	}
	want := "P5\n4 4\n255\n"
	if got := buf.String()[:len(want)]; got != want {
		t.Fatalf("PGM header %q, want %q", got, want)
	}
	if buf.Len() != len(want)+16 {
		t.Fatalf("PGM size %d, want %d", buf.Len(), len(want)+16)
	}
}

func TestImageNormalize(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	im := randomImage(r, 10)
	im.Scale(5)
	for i := range im.Data {
		im.Data[i] += 3
	}
	im.Normalize()
	_, _, mean, std := im.Stats()
	if math.Abs(mean) > 1e-12 || math.Abs(std-1) > 1e-12 {
		t.Fatalf("normalized stats mean=%g std=%g", mean, std)
	}
	flat := NewImage(3)
	flat.Normalize() // must not divide by zero
	if _, _, m, _ := flat.Stats(); m != 0 {
		t.Fatal("flat image normalize broken")
	}
}

func TestImageShiftRoundTrip(t *testing.T) {
	// Integer shifts of an interior feature are exactly reversible.
	im := NewImage(16)
	im.Set(8, 8, 1)
	im.Set(8, 9, 2)
	shifted := im.Shift(2, -3)
	if shifted.At(10, 5) != 1 || shifted.At(10, 6) != 2 {
		t.Fatal("integer shift misplaced pixels")
	}
	back := shifted.Shift(-2, 3)
	if ImageCorrelation(im, back) < 1-1e-12 {
		t.Fatal("shift round-trip lost data")
	}
}

func TestCenterOfMass(t *testing.T) {
	im := NewImage(17)
	im.Set(4, 11, 5)
	cx, cy := im.CenterOfMass()
	if math.Abs(cx-4) > 1e-9 || math.Abs(cy-11) > 1e-9 {
		t.Fatalf("centroid (%g,%g), want (4,11)", cx, cy)
	}
}

func TestHermitianize(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	g := NewCGrid(6)
	for i := range g.Data {
		g.Data[i] = complex(r.NormFloat64(), r.NormFloat64())
	}
	g.Hermitianize()
	l := g.L
	for x := 0; x < l; x++ {
		for y := 0; y < l; y++ {
			for z := 0; z < l; z++ {
				a := g.At(x, y, z)
				b := g.At((l-x)%l, (l-y)%l, (l-z)%l)
				if math.Abs(real(a)-real(b)) > 1e-12 || math.Abs(imag(a)+imag(b)) > 1e-12 {
					t.Fatalf("not Hermitian at (%d,%d,%d)", x, y, z)
				}
			}
		}
	}
}

func TestLowPass(t *testing.T) {
	g := NewCGrid(8)
	for i := range g.Data {
		g.Data[i] = 1
	}
	g.LowPass(2)
	if g.At(0, 0, 0) != 1 {
		t.Error("DC removed")
	}
	if g.At(2, 0, 0) != 1 || g.At(0, 6, 0) != 1 { // freq (0,-2,0)
		t.Error("in-band coefficient removed")
	}
	if g.At(3, 0, 0) != 0 || g.At(2, 2, 7) != 0 {
		t.Error("out-of-band coefficient kept")
	}
}

func TestCGridEnergyQuick(t *testing.T) {
	f := func(re, im float64) bool {
		// Fold arbitrary inputs into a safe range to avoid overflow.
		re, im = math.Mod(re, 1e6), math.Mod(im, 1e6)
		g := NewCGrid(2)
		g.Data[3] = complex(re, im)
		want := re*re + im*im
		return math.Abs(g.Energy()-want) <= 1e-12*math.Max(1, want)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestZSection(t *testing.T) {
	g := NewGrid(4)
	g.Set(1, 2, 3, 9)
	im := g.ZSection(3)
	if im.At(1, 2) != 9 {
		t.Fatal("ZSection misplaced voxel")
	}
	if im.At(1, 1) != 0 {
		t.Fatal("ZSection contaminated")
	}
}

func TestGridDownsample(t *testing.T) {
	g := NewGrid(8)
	for i := range g.Data {
		g.Data[i] = float64(i)
	}
	d := g.Downsample(2)
	if d.L != 4 {
		t.Fatalf("downsampled size %d, want 4", d.L)
	}
	// First output voxel averages the (0..1)³ block.
	var want float64
	for x := 0; x < 2; x++ {
		for y := 0; y < 2; y++ {
			for z := 0; z < 2; z++ {
				want += g.At(x, y, z)
			}
		}
	}
	want /= 8
	if math.Abs(d.At(0, 0, 0)-want) > 1e-12 {
		t.Fatalf("voxel (0,0,0) = %g, want %g", d.At(0, 0, 0), want)
	}
	// Mass is preserved under averaging x scale change.
	var sumIn, sumOut float64
	for _, v := range g.Data {
		sumIn += v
	}
	for _, v := range d.Data {
		sumOut += v
	}
	if math.Abs(sumOut*8-sumIn) > 1e-9*sumIn {
		t.Fatal("downsampling lost mass")
	}
}

func TestImageDownsample(t *testing.T) {
	im := NewImage(6)
	for i := range im.Data {
		im.Data[i] = 2
	}
	d := im.Downsample(3)
	if d.L != 2 {
		t.Fatalf("size %d, want 2", d.L)
	}
	for _, v := range d.Data {
		if math.Abs(v-2) > 1e-12 {
			t.Fatal("constant image not preserved")
		}
	}
}

func TestDownsampleRejectsBadFactor(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-divisor factor accepted")
		}
	}()
	NewGrid(9).Downsample(2)
}
