// Package volume provides the dense 3-D electron-density grids and 2-D
// particle images that the reconstruction pipeline operates on, in both
// real (float64) and Fourier (complex128) form, with flat row-major
// storage, slab views for the parallel 3-D DFT, radial masks, and a
// simple binary serialization format.
//
// Layout. A Grid of size l holds l³ voxels with z fastest: voxel
// (x, y, z) lives at (x*l+y)*l + z. An Image of size l holds l² pixels
// with the second index fastest: pixel (j, k) lives at j*l + k. The
// spatial origin (particle centre) of both is the voxel/pixel at
// index l/2 on every axis; Fourier-domain data uses the standard DFT
// layout (frequency 0 at index 0).
package volume

import (
	"fmt"
	"math"
)

// Grid is a cubic 3-D real-valued lattice of edge length L, the
// electron-density map D of the paper.
type Grid struct {
	L    int
	Data []float64
}

// NewGrid allocates a zeroed l³ grid.
func NewGrid(l int) *Grid {
	if l < 1 {
		panic(fmt.Sprintf("volume: invalid grid size %d", l))
	}
	return &Grid{L: l, Data: make([]float64, l*l*l)}
}

// Index returns the flat index of voxel (x, y, z).
func (g *Grid) Index(x, y, z int) int { return (x*g.L+y)*g.L + z }

// At returns the voxel value at (x, y, z).
func (g *Grid) At(x, y, z int) float64 { return g.Data[(x*g.L+y)*g.L+z] }

// Set stores v at voxel (x, y, z).
func (g *Grid) Set(x, y, z int, v float64) { g.Data[(x*g.L+y)*g.L+z] = v }

// Add accumulates v into voxel (x, y, z).
func (g *Grid) Add(x, y, z int, v float64) { g.Data[(x*g.L+y)*g.L+z] += v }

// Clone returns a deep copy of the grid.
func (g *Grid) Clone() *Grid {
	c := NewGrid(g.L)
	copy(c.Data, g.Data)
	return c
}

// Center returns the integer coordinate of the spatial origin, l/2.
func (g *Grid) Center() int { return g.L / 2 }

// Interp samples the grid at fractional coordinates by trilinear
// interpolation; points outside the lattice contribute zero.
func (g *Grid) Interp(x, y, z float64) float64 {
	l := g.L
	x0, y0, z0 := int(math.Floor(x)), int(math.Floor(y)), int(math.Floor(z))
	fx, fy, fz := x-float64(x0), y-float64(y0), z-float64(z0)
	var sum float64
	for dx := 0; dx <= 1; dx++ {
		wx := 1 - fx
		if dx == 1 {
			wx = fx
		}
		xi := x0 + dx
		if xi < 0 || xi >= l || wx == 0 {
			continue
		}
		for dy := 0; dy <= 1; dy++ {
			wy := 1 - fy
			if dy == 1 {
				wy = fy
			}
			yi := y0 + dy
			if yi < 0 || yi >= l || wy == 0 {
				continue
			}
			for dz := 0; dz <= 1; dz++ {
				wz := 1 - fz
				if dz == 1 {
					wz = fz
				}
				zi := z0 + dz
				if zi < 0 || zi >= l || wz == 0 {
					continue
				}
				sum += wx * wy * wz * g.At(xi, yi, zi)
			}
		}
	}
	return sum
}

// Stats returns the minimum, maximum, mean and standard deviation of
// the grid values.
func (g *Grid) Stats() (min, max, mean, std float64) {
	return stats(g.Data)
}

// Scale multiplies every voxel by s.
func (g *Grid) Scale(s float64) {
	for i := range g.Data {
		g.Data[i] *= s
	}
}

// AddGrid accumulates o into g; both must have the same size.
func (g *Grid) AddGrid(o *Grid) {
	if o.L != g.L {
		panic(fmt.Sprintf("volume: size mismatch %d vs %d", g.L, o.L))
	}
	for i := range g.Data {
		g.Data[i] += o.Data[i]
	}
}

// SphericalMask zeroes all voxels farther than radius voxels from the
// spatial centre.
func (g *Grid) SphericalMask(radius float64) {
	c := float64(g.Center())
	r2 := radius * radius
	for x := 0; x < g.L; x++ {
		dx := float64(x) - c
		for y := 0; y < g.L; y++ {
			dy := float64(y) - c
			for z := 0; z < g.L; z++ {
				dz := float64(z) - c
				if dx*dx+dy*dy+dz*dz > r2 {
					g.Set(x, y, z, 0)
				}
			}
		}
	}
}

// ZSection extracts the xy-plane at height z as an Image (a
// cross-section like the paper's Fig. 2).
func (g *Grid) ZSection(z int) *Image {
	im := NewImage(g.L)
	for x := 0; x < g.L; x++ {
		for y := 0; y < g.L; y++ {
			im.Set(x, y, g.At(x, y, z))
		}
	}
	return im
}

// Complex returns the grid as a complex volume suitable for a 3-D DFT.
func (g *Grid) Complex() *CGrid {
	c := NewCGrid(g.L)
	for i, v := range g.Data {
		c.Data[i] = complex(v, 0)
	}
	return c
}

// Correlation returns the Pearson cross-correlation coefficient of two
// equally sized grids — the global map-similarity measure used when
// comparing reconstructions.
func Correlation(a, b *Grid) float64 {
	if a.L != b.L {
		panic(fmt.Sprintf("volume: size mismatch %d vs %d", a.L, b.L))
	}
	return pearson(a.Data, b.Data)
}

func pearson(x, y []float64) float64 {
	n := float64(len(x))
	var sx, sy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
	}
	mx, my := sx/n, sy/n
	var num, dx2, dy2 float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		num += dx * dy
		dx2 += dx * dx
		dy2 += dy * dy
	}
	den := math.Sqrt(dx2 * dy2)
	if den == 0 {
		return 0
	}
	return num / den
}

func stats(data []float64) (min, max, mean, std float64) {
	if len(data) == 0 {
		return 0, 0, 0, 0
	}
	min, max = data[0], data[0]
	var sum float64
	for _, v := range data {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
		sum += v
	}
	mean = sum / float64(len(data))
	var ss float64
	for _, v := range data {
		d := v - mean
		ss += d * d
	}
	std = math.Sqrt(ss / float64(len(data)))
	return
}

// Downsample returns the grid binned by an integer factor: each output
// voxel averages a factor³ input block. The grid size must be
// divisible by the factor. Binning is the standard way to build the
// coarse maps used early in a resolution ladder.
func (g *Grid) Downsample(factor int) *Grid {
	if factor < 1 || g.L%factor != 0 {
		panic(fmt.Sprintf("volume: cannot downsample %d³ by %d", g.L, factor))
	}
	nl := g.L / factor
	out := NewGrid(nl)
	inv := 1 / float64(factor*factor*factor)
	for x := 0; x < nl; x++ {
		for y := 0; y < nl; y++ {
			for z := 0; z < nl; z++ {
				var s float64
				for dx := 0; dx < factor; dx++ {
					for dy := 0; dy < factor; dy++ {
						for dz := 0; dz < factor; dz++ {
							s += g.At(x*factor+dx, y*factor+dy, z*factor+dz)
						}
					}
				}
				out.Set(x, y, z, s*inv)
			}
		}
	}
	return out
}
