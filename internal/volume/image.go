package volume

import (
	"fmt"
	"math"
)

// Image is a square l×l real-valued image: an experimental particle
// view E_q extracted from a micrograph, or a computed projection.
type Image struct {
	L    int
	Data []float64
}

// NewImage allocates a zeroed l×l image.
func NewImage(l int) *Image {
	if l < 1 {
		panic(fmt.Sprintf("volume: invalid image size %d", l))
	}
	return &Image{L: l, Data: make([]float64, l*l)}
}

// Index returns the flat index of pixel (j, k).
func (im *Image) Index(j, k int) int { return j*im.L + k }

// At returns the pixel value at (j, k).
func (im *Image) At(j, k int) float64 { return im.Data[j*im.L+k] }

// Set stores v at pixel (j, k).
func (im *Image) Set(j, k int, v float64) { im.Data[j*im.L+k] = v }

// Add accumulates v into pixel (j, k).
func (im *Image) Add(j, k int, v float64) { im.Data[j*im.L+k] += v }

// Clone returns a deep copy.
func (im *Image) Clone() *Image {
	c := NewImage(im.L)
	copy(c.Data, im.Data)
	return c
}

// Center returns the integer coordinate of the image origin, l/2.
func (im *Image) Center() int { return im.L / 2 }

// Stats returns min, max, mean and standard deviation of pixel values.
func (im *Image) Stats() (min, max, mean, std float64) {
	return stats(im.Data)
}

// Scale multiplies every pixel by s.
func (im *Image) Scale(s float64) {
	for i := range im.Data {
		im.Data[i] *= s
	}
}

// Normalize shifts and scales the image to zero mean and unit standard
// deviation; a constant image becomes all zeros.
func (im *Image) Normalize() {
	_, _, mean, std := im.Stats()
	if std == 0 {
		for i := range im.Data {
			im.Data[i] = 0
		}
		return
	}
	for i := range im.Data {
		im.Data[i] = (im.Data[i] - mean) / std
	}
}

// Interp samples the image at fractional coordinates by bilinear
// interpolation; points outside contribute zero.
func (im *Image) Interp(x, y float64) float64 {
	l := im.L
	x0, y0 := int(math.Floor(x)), int(math.Floor(y))
	fx, fy := x-float64(x0), y-float64(y0)
	var sum float64
	for dx := 0; dx <= 1; dx++ {
		wx := 1 - fx
		if dx == 1 {
			wx = fx
		}
		xi := x0 + dx
		if xi < 0 || xi >= l || wx == 0 {
			continue
		}
		for dy := 0; dy <= 1; dy++ {
			wy := 1 - fy
			if dy == 1 {
				wy = fy
			}
			yi := y0 + dy
			if yi < 0 || yi >= l || wy == 0 {
				continue
			}
			sum += wx * wy * im.At(xi, yi)
		}
	}
	return sum
}

// Shift resamples the image translated by (dx, dy) pixels using
// bilinear interpolation: output(j,k) = input(j−dx, k−dy).
func (im *Image) Shift(dx, dy float64) *Image {
	out := NewImage(im.L)
	for j := 0; j < im.L; j++ {
		for k := 0; k < im.L; k++ {
			out.Set(j, k, im.Interp(float64(j)-dx, float64(k)-dy))
		}
	}
	return out
}

// CenterOfMass returns the intensity-weighted centroid of the image
// (using values offset by the image minimum so negative baselines do
// not corrupt the estimate).
func (im *Image) CenterOfMass() (cx, cy float64) {
	min, _, _, _ := im.Stats()
	var m, sx, sy float64
	for j := 0; j < im.L; j++ {
		for k := 0; k < im.L; k++ {
			w := im.At(j, k) - min
			m += w
			sx += w * float64(j)
			sy += w * float64(k)
		}
	}
	if m == 0 {
		c := float64(im.Center())
		return c, c
	}
	return sx / m, sy / m
}

// ImageCorrelation returns the Pearson cross-correlation of two
// equally sized images.
func ImageCorrelation(a, b *Image) float64 {
	if a.L != b.L {
		panic(fmt.Sprintf("volume: image size mismatch %d vs %d", a.L, b.L))
	}
	return pearson(a.Data, b.Data)
}

// CImage is a square complex-valued image: the 2-D DFT F_q of a view,
// or a central section C of a 3-D DFT, in standard DFT layout.
type CImage struct {
	L    int
	Data []complex128
}

// NewCImage allocates a zeroed complex l×l image.
func NewCImage(l int) *CImage {
	if l < 1 {
		panic(fmt.Sprintf("volume: invalid image size %d", l))
	}
	return &CImage{L: l, Data: make([]complex128, l*l)}
}

// Index returns the flat index of element (j, k).
func (im *CImage) Index(j, k int) int { return j*im.L + k }

// At returns the element at (j, k).
func (im *CImage) At(j, k int) complex128 { return im.Data[j*im.L+k] }

// Set stores v at (j, k).
func (im *CImage) Set(j, k int, v complex128) { im.Data[j*im.L+k] = v }

// Clone returns a deep copy.
func (im *CImage) Clone() *CImage {
	c := NewCImage(im.L)
	copy(c.Data, im.Data)
	return c
}

// Complex converts a real image to complex form.
func (im *Image) Complex() *CImage {
	c := NewCImage(im.L)
	for i, v := range im.Data {
		c.Data[i] = complex(v, 0)
	}
	return c
}

// Real extracts the real part of a complex image.
func (im *CImage) Real() *Image {
	r := NewImage(im.L)
	for i, v := range im.Data {
		r.Data[i] = real(v)
	}
	return r
}

// Energy returns Σ|v|² over the image.
func (im *CImage) Energy() float64 {
	var e float64
	for _, v := range im.Data {
		e += real(v)*real(v) + imag(v)*imag(v)
	}
	return e
}

// Downsample returns the image binned by an integer factor: each
// output pixel averages a factor² input block. The image size must be
// divisible by the factor.
func (im *Image) Downsample(factor int) *Image {
	if factor < 1 || im.L%factor != 0 {
		panic(fmt.Sprintf("volume: cannot downsample %d² by %d", im.L, factor))
	}
	nl := im.L / factor
	out := NewImage(nl)
	inv := 1 / float64(factor*factor)
	for j := 0; j < nl; j++ {
		for k := 0; k < nl; k++ {
			var s float64
			for dj := 0; dj < factor; dj++ {
				for dk := 0; dk < factor; dk++ {
					s += im.At(j*factor+dj, k*factor+dk)
				}
			}
			out.Set(j, k, s*inv)
		}
	}
	return out
}
