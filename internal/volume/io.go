package volume

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Binary serialization: a little-endian header (magic, size) followed
// by raw float64 samples. This stands in for the lab's map/image file
// formats; a master node reads whole files and distributes segments,
// exactly as §3 of the paper assumes.

const (
	gridMagic  = 0x4d504456 // "VDPM"
	imageMagic = 0x4d494456 // "VDIM"
)

// WriteGrid serializes g to w.
func (g *Grid) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	hdr := []uint32{gridMagic, uint32(g.L)}
	if err := binary.Write(bw, binary.LittleEndian, hdr); err != nil {
		return 0, err
	}
	if err := binary.Write(bw, binary.LittleEndian, g.Data); err != nil {
		return 0, err
	}
	n := int64(8 + 8*len(g.Data))
	return n, bw.Flush()
}

// ReadGrid deserializes a grid written by Grid.WriteTo.
func ReadGrid(r io.Reader) (*Grid, error) {
	br := bufio.NewReader(r)
	var hdr [2]uint32
	if err := binary.Read(br, binary.LittleEndian, &hdr); err != nil {
		return nil, fmt.Errorf("volume: reading grid header: %w", err)
	}
	if hdr[0] != gridMagic {
		return nil, fmt.Errorf("volume: bad grid magic %#x", hdr[0])
	}
	l := int(hdr[1])
	if l < 1 || l > 4096 {
		return nil, fmt.Errorf("volume: implausible grid size %d", l)
	}
	g := NewGrid(l)
	if err := binary.Read(br, binary.LittleEndian, g.Data); err != nil {
		return nil, fmt.Errorf("volume: reading grid data: %w", err)
	}
	return g, nil
}

// WriteTo serializes im to w.
func (im *Image) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	hdr := []uint32{imageMagic, uint32(im.L)}
	if err := binary.Write(bw, binary.LittleEndian, hdr); err != nil {
		return 0, err
	}
	if err := binary.Write(bw, binary.LittleEndian, im.Data); err != nil {
		return 0, err
	}
	n := int64(8 + 8*len(im.Data))
	return n, bw.Flush()
}

// ReadImage deserializes an image written by Image.WriteTo.
func ReadImage(r io.Reader) (*Image, error) {
	br := bufio.NewReader(r)
	var hdr [2]uint32
	if err := binary.Read(br, binary.LittleEndian, &hdr); err != nil {
		return nil, fmt.Errorf("volume: reading image header: %w", err)
	}
	if hdr[0] != imageMagic {
		return nil, fmt.Errorf("volume: bad image magic %#x", hdr[0])
	}
	l := int(hdr[1])
	if l < 1 || l > 65536 {
		return nil, fmt.Errorf("volume: implausible image size %d", l)
	}
	im := NewImage(l)
	if err := binary.Read(br, binary.LittleEndian, im.Data); err != nil {
		return nil, fmt.Errorf("volume: reading image data: %w", err)
	}
	return im, nil
}

// WritePGM renders the image as a binary 8-bit PGM, linearly mapping
// [min, max] to [0, 255]. Used to export density cross-sections like
// the paper's Fig. 2.
func (im *Image) WritePGM(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "P5\n%d %d\n255\n", im.L, im.L); err != nil {
		return err
	}
	min, max, _, _ := im.Stats()
	span := max - min
	if span == 0 {
		span = 1
	}
	for j := 0; j < im.L; j++ {
		for k := 0; k < im.L; k++ {
			v := (im.At(j, k) - min) / span
			b := byte(math.Round(255 * v))
			if err := bw.WriteByte(b); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}
