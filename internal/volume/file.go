package volume

import (
	"fmt"
	"os"
	"path/filepath"
)

// WriteGridFile atomically serializes g to path: the bytes are written
// to a temporary file in the same directory, fsynced, and renamed into
// place, so a crash mid-write never leaves a torn map where a resuming
// reader expects a complete one. The cycle journal records a map's
// content digest before the path is trusted, so the rename is the
// durability point, not a correctness requirement.
func WriteGridFile(path string, g *Grid) (err error) {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("volume: writing grid file: %w", err)
	}
	tmp := f.Name()
	defer func() {
		if err != nil {
			f.Close()
			os.Remove(tmp)
		}
	}()
	if _, err = g.WriteTo(f); err != nil {
		return fmt.Errorf("volume: writing grid file: %w", err)
	}
	if err = f.Sync(); err != nil {
		return fmt.Errorf("volume: syncing grid file: %w", err)
	}
	if err = f.Close(); err != nil {
		return fmt.Errorf("volume: closing grid file: %w", err)
	}
	if err = os.Rename(tmp, path); err != nil {
		return fmt.Errorf("volume: publishing grid file: %w", err)
	}
	return nil
}

// ReadGridFile deserializes a grid written by WriteGridFile.
func ReadGridFile(path string) (*Grid, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("volume: reading grid file: %w", err)
	}
	defer f.Close()
	return ReadGrid(f)
}
