package volume

// Rotate resamples the grid under the rotation m about the grid
// centre: out(x) = in(mᵀ·(x−c) + c), i.e. the returned map is the
// input rotated by m. m is a row-major rotation matrix (pass a
// geom.Mat3 by plain conversion). Trilinear sampling; voxels mapping
// outside the input are zero.
func (g *Grid) Rotate(m [3][3]float64) *Grid {
	l := g.L
	c := float64(l / 2)
	out := NewGrid(l)
	// Inverse rotation = transpose.
	for x := 0; x < l; x++ {
		dx := float64(x) - c
		for y := 0; y < l; y++ {
			dy := float64(y) - c
			for z := 0; z < l; z++ {
				dz := float64(z) - c
				sx := m[0][0]*dx + m[1][0]*dy + m[2][0]*dz + c
				sy := m[0][1]*dx + m[1][1]*dy + m[2][1]*dz + c
				sz := m[0][2]*dx + m[1][2]*dy + m[2][2]*dz + c
				out.Set(x, y, z, g.Interp(sx, sy, sz))
			}
		}
	}
	return out
}
