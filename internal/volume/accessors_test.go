package volume

import (
	"math"
	"math/rand"
	"testing"
)

func TestCGridAccessors(t *testing.T) {
	g := NewCGrid(4)
	g.Set(1, 2, 3, 2+3i)
	if g.At(1, 2, 3) != 2+3i {
		t.Fatal("Set/At mismatch")
	}
	g.Add(1, 2, 3, 1+1i)
	if g.At(1, 2, 3) != 3+4i {
		t.Fatal("Add failed")
	}
	if g.Data[g.Index(1, 2, 3)] != 3+4i {
		t.Fatal("Index inconsistent")
	}
	c := g.Clone()
	c.Set(0, 0, 0, 9)
	if g.At(0, 0, 0) == 9 {
		t.Fatal("Clone aliases original")
	}
	r := g.Real()
	if r.At(1, 2, 3) != 3 {
		t.Fatal("Real extracted wrong component")
	}
	if got := g.MaxImagAbs(); math.Abs(got-4) > 1e-12 {
		t.Fatalf("MaxImagAbs = %g, want 4", got)
	}
}

func TestImageAccessors(t *testing.T) {
	im := NewImage(5)
	im.Set(2, 3, 7)
	im.Add(2, 3, 1)
	if im.At(2, 3) != 8 {
		t.Fatal("Add failed")
	}
	if im.Data[im.Index(2, 3)] != 8 {
		t.Fatal("Index inconsistent")
	}
	if im.Center() != 2 {
		t.Fatalf("Center = %d", im.Center())
	}
	c := im.Clone()
	c.Set(0, 0, 5)
	if im.At(0, 0) == 5 {
		t.Fatal("Clone aliases original")
	}
}

func TestCImageAccessors(t *testing.T) {
	im := NewCImage(4)
	im.Set(1, 2, 5+6i)
	if im.At(1, 2) != 5+6i {
		t.Fatal("Set/At mismatch")
	}
	if im.Data[im.Index(1, 2)] != 5+6i {
		t.Fatal("Index inconsistent")
	}
	c := im.Clone()
	c.Set(0, 0, 1)
	if im.At(0, 0) == 1 {
		t.Fatal("Clone aliases original")
	}
	if got := im.Energy(); math.Abs(got-61) > 1e-12 {
		t.Fatalf("Energy = %g, want 61", got)
	}
	r := im.Real()
	if r.At(1, 2) != 5 {
		t.Fatal("Real extracted wrong component")
	}
}

func TestImageComplexRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(20))
	im := randomImage(r, 6)
	c := im.Complex()
	back := c.Real()
	for i := range im.Data {
		if back.Data[i] != im.Data[i] {
			t.Fatal("Complex/Real round trip lost data")
		}
	}
}

func TestAddGridAndScale(t *testing.T) {
	a := NewGrid(3)
	b := NewGrid(3)
	a.Set(1, 1, 1, 2)
	b.Set(1, 1, 1, 3)
	a.AddGrid(b)
	if a.At(1, 1, 1) != 5 {
		t.Fatal("AddGrid failed")
	}
	a.Scale(2)
	if a.At(1, 1, 1) != 10 {
		t.Fatal("Scale failed")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("size mismatch accepted")
		}
	}()
	a.AddGrid(NewGrid(4))
}

func TestRotateIdentityAndInverse(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	g := NewGrid(12)
	// Smooth content away from edges so rotation resampling is clean.
	for x := 3; x < 9; x++ {
		for y := 3; y < 9; y++ {
			for z := 3; z < 9; z++ {
				g.Set(x, y, z, r.Float64())
			}
		}
	}
	id := [3][3]float64{{1, 0, 0}, {0, 1, 0}, {0, 0, 1}}
	rot := g.Rotate(id)
	for i := range g.Data {
		if math.Abs(rot.Data[i]-g.Data[i]) > 1e-12 {
			t.Fatal("identity rotation changed the grid")
		}
	}
}

func TestNewGridPanicsOnBadSize(t *testing.T) {
	for _, f := range []func(){
		func() { NewGrid(0) },
		func() { NewCGrid(0) },
		func() { NewImage(0) },
		func() { NewCImage(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("bad size accepted")
				}
			}()
			f()
		}()
	}
}

func TestImageCorrelationMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("size mismatch accepted")
		}
	}()
	ImageCorrelation(NewImage(4), NewImage(5))
}

func TestGridStats(t *testing.T) {
	g := NewGrid(2)
	for i := range g.Data {
		g.Data[i] = float64(i)
	}
	min, max, mean, std := g.Stats()
	if min != 0 || max != 7 || math.Abs(mean-3.5) > 1e-12 {
		t.Fatalf("stats min=%g max=%g mean=%g", min, max, mean)
	}
	if std <= 0 {
		t.Fatal("zero std for varying data")
	}
}
