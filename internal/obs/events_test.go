package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestGaugeDisabledIsNoop(t *testing.T) {
	g := NewGauge("test.gauge.disabled")
	prev := SetEnabled(false)
	defer SetEnabled(prev)
	g.Set(7)
	g.Inc()
	if got := g.Value(); got != 0 {
		t.Fatalf("disabled gauge moved: %d", got)
	}
}

func TestGaugeMovesBothWays(t *testing.T) {
	g := NewGauge("test.gauge.basic")
	withEnabled(t, func() {
		g.Set(5)
		g.Add(3)
		g.Dec()
		g.Dec()
	})
	if got := g.Value(); got != 6 {
		t.Fatalf("gauge = %d, want 6", got)
	}
	if Values()["test.gauge.basic"] != 6 {
		t.Fatalf("snapshot missing gauge: %v", Values()["test.gauge.basic"])
	}
	ResetAll()
	if g.Value() != 0 {
		t.Fatal("reset left gauge value")
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram("test.hist.quantile", 8)
	withEnabled(t, func() {
		// 10 observations of 1 (bucket 1), 10 of 2 (bucket 2).
		for i := 0; i < 10; i++ {
			h.Observe(1)
			h.Observe(2)
		}
	})
	// Median sits exactly at the bucket-1/bucket-2 boundary.
	if got := h.Quantile(0.5); got < 1 || got > 2 {
		t.Errorf("p50 = %g, want within [1,2]", got)
	}
	// p25 interpolates inside bucket 1 ([1,2)); p99 inside bucket 2 ([2,4)).
	if got := h.Quantile(0.25); got < 1 || got >= 2 {
		t.Errorf("p25 = %g, want in [1,2)", got)
	}
	if got := h.Quantile(0.99); got < 2 || got > 4 {
		t.Errorf("p99 = %g, want in [2,4]", got)
	}
	// Monotone in q.
	last := -1.0
	for _, q := range []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
		v := h.Quantile(q)
		if v < last {
			t.Fatalf("quantile not monotone: q=%g gives %g after %g", q, v, last)
		}
		last = v
	}
}

func TestQuantileFromBucketsEdges(t *testing.T) {
	if got := QuantileFromBuckets(nil, 0.5); got != 0 {
		t.Errorf("empty buckets: %g", got)
	}
	if got := QuantileFromBuckets([]int64{0, 0, 0}, 0.9); got != 0 {
		t.Errorf("all-zero buckets: %g", got)
	}
	// Single populated bucket 0 (v <= 0): every quantile is 0.
	if got := QuantileFromBuckets([]int64{5}, 0.99); got != 0 {
		t.Errorf("zero-bucket distribution: %g", got)
	}
	// Out-of-range q clamps.
	b := []int64{0, 4}
	if got := QuantileFromBuckets(b, -1); got != QuantileFromBuckets(b, 0) {
		t.Error("q<0 did not clamp")
	}
	if got := QuantileFromBuckets(b, 2); got != QuantileFromBuckets(b, 1) {
		t.Errorf("q>1 did not clamp: %g", got)
	}
}

func TestEventLogRingAndCursor(t *testing.T) {
	l := NewEventLog(4)
	for i := 1; i <= 6; i++ {
		l.Emit("k", "job-1", i, float64(i), [EventFieldsMax]EventField{{Key: "n", Value: int64(i)}})
	}
	// Capacity 4, six emits: seqs 3..6 retained, 1..2 overwritten.
	evs, dropped := l.Since(0)
	if dropped != 2 {
		t.Fatalf("dropped = %d, want 2", dropped)
	}
	if len(evs) != 4 || evs[0].Seq != 3 || evs[3].Seq != 6 {
		t.Fatalf("retained window %+v", evs)
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq != evs[i-1].Seq+1 {
			t.Fatalf("non-contiguous seqs: %+v", evs)
		}
	}
	// A cursor inside the window reads gap-free.
	evs, dropped = l.Since(4)
	if dropped != 0 || len(evs) != 2 || evs[0].Seq != 5 {
		t.Fatalf("since(4): %d dropped, %+v", dropped, evs)
	}
	// A cursor at the head reads nothing.
	if evs, dropped = l.Since(6); len(evs) != 0 || dropped != 0 {
		t.Fatalf("since(head): %d dropped, %+v", dropped, evs)
	}
	if l.LastSeq() != 6 {
		t.Fatalf("LastSeq = %d", l.LastSeq())
	}
}

func TestEventLogWait(t *testing.T) {
	l := NewEventLog(8)
	// Already-satisfied wait: channel closed immediately.
	l.Emit("k", "", -1, 0, [EventFieldsMax]EventField{})
	select {
	case <-l.Wait(0):
	default:
		t.Fatal("Wait(0) not satisfied with one record present")
	}
	// Blocked wait wakes on the next emit.
	ch := l.Wait(1)
	select {
	case <-ch:
		t.Fatal("Wait(head) satisfied early")
	default:
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-ch
	}()
	l.Emit("k2", "", -1, 1, [EventFieldsMax]EventField{})
	wg.Wait()
	evs, _ := l.Since(1)
	if len(evs) != 1 || evs[0].Kind != "k2" {
		t.Fatalf("post-wait read: %+v", evs)
	}
}

func TestEventJSONLDeterministic(t *testing.T) {
	l := NewEventLog(8)
	l.Emit("admit", "job-000001", -1, 1, [EventFieldsMax]EventField{{Key: "queue_depth", Value: 1}})
	l.Emit("level_end", "job-000001", 0, 2.5, [EventFieldsMax]EventField{
		{Key: "evals", Value: 123}, {Key: "slides", Value: 4},
	})
	var a, b bytes.Buffer
	if err := l.WriteJSONL(&a); err != nil {
		t.Fatal(err)
	}
	if err := l.WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("re-export produced different bytes")
	}
	want := `{"seq":1,"logical_ts":1,"job":"job-000001","level":-1,"kind":"admit","fields":{"queue_depth":1}}
{"seq":2,"logical_ts":2.5,"job":"job-000001","level":0,"kind":"level_end","fields":{"evals":123,"slides":4}}
`
	if a.String() != want {
		t.Fatalf("JSONL:\n%s\nwant:\n%s", a.String(), want)
	}
}

func TestEventRecordJSONRoundTrip(t *testing.T) {
	in := EventRecord{Seq: 9, TS: 3.25, Job: "job-000002", Level: 1, Kind: "checkpoint",
		Fields: [EventFieldsMax]EventField{{Key: "journal_bytes", Value: 512}, {Key: "ticks", Value: 3}}}
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out EventRecord
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip: %+v vs %+v", out, in)
	}
	// Re-encoding the decoded record reproduces the original bytes —
	// field order survives.
	if again, _ := json.Marshal(out); !bytes.Equal(again, data) {
		t.Fatalf("re-encode %s vs %s", again, data)
	}
	// A process-level record (no job) round-trips too.
	in = EventRecord{Seq: 1, TS: 0, Level: -1, Kind: "boot"}
	data, _ = json.Marshal(in)
	out = EventRecord{}
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("jobless round trip: %+v vs %+v", out, in)
	}
}

func TestEmitInactiveIsNoop(t *testing.T) {
	if ActiveEvents() != nil {
		t.Fatal("event log unexpectedly active at test start")
	}
	Emit("k", "job", 0, 1, [EventFieldsMax]EventField{}) // must not panic
	l := StartEvents(16)
	Emit("k", "job", 0, 1, [EventFieldsMax]EventField{{Key: "a", Value: 1}})
	if got := StopEvents(); got != l {
		t.Fatal("StopEvents returned a different log")
	}
	if evs, _ := l.Since(0); len(evs) != 1 {
		t.Fatalf("active log missed the emit: %+v", evs)
	}
	Emit("k", "job", 0, 2, [EventFieldsMax]EventField{})
	if evs, _ := l.Since(0); len(evs) != 1 {
		t.Fatal("emit after StopEvents still recorded")
	}
}

func TestWritePromExposition(t *testing.T) {
	c := NewCounter("test.prom.counter")
	g := NewGauge("test.prom.gauge")
	h := NewHistogram("test.prom.hist", 4)
	v := NewCounterVec("test.prom.vec", 2)
	withEnabled(t, func() {
		c.Add(3)
		g.Set(-2)
		v.Inc(1)
		h.Observe(0) // bucket 0
		h.Observe(1) // bucket 1
		h.Observe(9) // clamps to bucket 3 (+Inf)
	})
	var buf bytes.Buffer
	if err := WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE test_prom_counter counter\ntest_prom_counter 3\n",
		"# TYPE test_prom_gauge gauge\ntest_prom_gauge -2\n",
		`test_prom_vec{cell="1"} 1`,
		`test_prom_hist_bucket{le="0"} 1`,
		`test_prom_hist_bucket{le="1"} 2`,
		`test_prom_hist_bucket{le="3"} 2`,
		`test_prom_hist_bucket{le="+Inf"} 3`,
		"test_prom_hist_sum 10",
		"test_prom_hist_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Deterministic: re-export must match exactly.
	var buf2 bytes.Buffer
	if err := WriteProm(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("re-export produced different bytes")
	}
}

// BenchmarkEmitDisabled is the alloc guard for the event log's
// disabled path: with no active log, an emit is one atomic load and
// zero allocations — the same contract as counters and spans.
func BenchmarkEmitDisabled(b *testing.B) {
	if ActiveEvents() != nil {
		b.Fatal("event log active")
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Emit("level_end", "job-000001", 2, 1.5, [EventFieldsMax]EventField{
			{Key: "evals", Value: int64(i)},
		})
	}
	if n := testing.AllocsPerRun(100, func() {
		Emit("level_end", "job-000001", 2, 1.5, [EventFieldsMax]EventField{
			{Key: "evals", Value: 7},
		})
	}); n != 0 {
		b.Fatalf("disabled emit allocates %v/op", n)
	}
}

// BenchmarkEmitEnabled records into a pre-sized ring; the notify
// channel replacement is the only allocation.
func BenchmarkEmitEnabled(b *testing.B) {
	StartEvents(1 << 16)
	defer StopEvents()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Emit("level_end", "job-000001", 2, 1.5, [EventFieldsMax]EventField{
			{Key: "evals", Value: int64(i)},
		})
	}
}
