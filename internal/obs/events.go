// Events: a bounded, ring-buffered structured event log for the job
// layer. Where counters aggregate and spans time, events *narrate*: one
// typed record per lifecycle edge (admit, dequeue, level start/end,
// checkpoint, terminal), stamped with the emitting layer's logical
// clock, carrying a fixed-width set of integer fields. The log is the
// backing store for the serve package's SSE/long-poll streaming
// endpoints: every record gets a monotonically increasing sequence
// number, readers keep a since-cursor, and a reader that fell behind
// the ring learns exactly how many records it lost.
//
// Activation mirrors the trace (trace.go): an atomic pointer to the
// active log, so the disabled path of Emit is one atomic load and zero
// allocations (BenchmarkEmitDisabled). Timestamps are logical-clock
// readings supplied by the caller — wall time never enters a record,
// which keeps event streams reproducible under the simulated clock.
package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"sync"
	"sync/atomic"
)

// EventField is one integer annotation on an event record. A zero Key
// means unset; set fields must be contiguous from index 0.
type EventField struct {
	Key   string
	Value int64
}

// EventFieldsMax is the fixed field capacity of one record — fixed so
// emission never allocates.
const EventFieldsMax = 4

// EventRecord is one structured log entry.
type EventRecord struct {
	// Seq is the record's 1-based sequence number, monotonically
	// increasing over the life of the log.
	Seq uint64
	// TS is the logical-clock reading the emitter stamped.
	TS float64
	// Job is the subject job ID ("" for process-level events).
	Job string
	// Level is the zero-based schedule level the event concerns, or -1
	// when the event is not level-scoped.
	Level int
	// Kind names the lifecycle edge ("admit", "level_end", ...).
	Kind string
	// Fields carries up to EventFieldsMax integer annotations.
	Fields [EventFieldsMax]EventField
}

// AppendJSON appends the record as one deterministic JSON object —
// fixed key order, fields as a nested object in emission order — and
// returns the extended slice. The same bytes back the JSONL export and
// the SSE data frames, so a stream capture *is* a valid JSONL journal.
func (e *EventRecord) AppendJSON(dst []byte) []byte {
	dst = append(dst, `{"seq":`...)
	dst = strconv.AppendUint(dst, e.Seq, 10)
	dst = append(dst, `,"logical_ts":`...)
	dst = strconv.AppendFloat(dst, e.TS, 'g', -1, 64)
	if e.Job != "" {
		dst = append(dst, `,"job":`...)
		dst = strconv.AppendQuote(dst, e.Job)
	}
	dst = append(dst, `,"level":`...)
	dst = strconv.AppendInt(dst, int64(e.Level), 10)
	dst = append(dst, `,"kind":`...)
	dst = strconv.AppendQuote(dst, e.Kind)
	dst = append(dst, `,"fields":{`...)
	for i, f := range e.Fields {
		if f.Key == "" {
			break
		}
		if i > 0 {
			dst = append(dst, ',')
		}
		dst = strconv.AppendQuote(dst, f.Key)
		dst = append(dst, ':')
		dst = strconv.AppendInt(dst, f.Value, 10)
	}
	dst = append(dst, `}}`...)
	return dst
}

// MarshalJSON implements encoding/json.Marshaler via AppendJSON, so a
// record embedded in a JSON envelope (the serve long-poll response)
// has the same shape as the JSONL export and the SSE data frames.
func (e EventRecord) MarshalJSON() ([]byte, error) { return e.AppendJSON(nil), nil }

// UnmarshalJSON decodes the AppendJSON shape, preserving field order —
// a decoded record re-encodes to the same bytes, which is what lets
// clients (repstat's poll fallback, the CI smoke) treat captured
// streams as journals.
func (e *EventRecord) UnmarshalJSON(data []byte) error {
	var aux struct {
		Seq    uint64          `json:"seq"`
		TS     float64         `json:"logical_ts"`
		Job    string          `json:"job"`
		Level  int             `json:"level"`
		Kind   string          `json:"kind"`
		Fields json.RawMessage `json:"fields"`
	}
	if err := json.Unmarshal(data, &aux); err != nil {
		return err
	}
	*e = EventRecord{Seq: aux.Seq, TS: aux.TS, Job: aux.Job, Level: aux.Level, Kind: aux.Kind}
	if len(aux.Fields) == 0 {
		return nil
	}
	// encoding/json's map decoding would scramble field order; walk the
	// object token by token instead.
	dec := json.NewDecoder(bytes.NewReader(aux.Fields))
	dec.UseNumber()
	if _, err := dec.Token(); err != nil { // opening '{'
		return err
	}
	for i := 0; dec.More(); i++ {
		if i >= EventFieldsMax {
			return fmt.Errorf("obs: event record with more than %d fields", EventFieldsMax)
		}
		keyTok, err := dec.Token()
		if err != nil {
			return err
		}
		key, ok := keyTok.(string)
		if !ok {
			return fmt.Errorf("obs: event field key %v is not a string", keyTok)
		}
		valTok, err := dec.Token()
		if err != nil {
			return err
		}
		num, ok := valTok.(json.Number)
		if !ok {
			return fmt.Errorf("obs: event field %q value %v is not a number", key, valTok)
		}
		v, err := num.Int64()
		if err != nil {
			return err
		}
		e.Fields[i] = EventField{Key: key, Value: v}
	}
	return nil
}

// EventLog is a bounded ring of EventRecords. All methods are safe for
// concurrent use. When the ring is full the oldest record is
// overwritten; readers that present a cursor older than the retained
// window are told how many records they missed.
type EventLog struct {
	mu     sync.Mutex
	ring   []EventRecord // grows to cap once, then overwrites in place
	next   uint64        // seq of the most recently emitted record
	notify chan struct{} // closed and replaced on every emit
}

// NewEventLog builds a log retaining the last capacity records
// (capacity <= 0 selects 4096).
func NewEventLog(capacity int) *EventLog {
	if capacity <= 0 {
		capacity = 4096
	}
	return &EventLog{
		ring:   make([]EventRecord, 0, capacity),
		notify: make(chan struct{}),
	}
}

// activeEvents is the currently recording log, or nil — the same
// activation shape as the trace, so event recording can run with or
// without metrics and tracing.
var activeEvents atomic.Pointer[EventLog]

// StartEvents installs a fresh log with the given ring capacity as the
// active recorder and returns it.
func StartEvents(capacity int) *EventLog {
	l := NewEventLog(capacity)
	activeEvents.Store(l)
	return l
}

// StopEvents stops recording and returns the log that was active, if
// any.
func StopEvents() *EventLog { return activeEvents.Swap(nil) }

// ActiveEvents returns the currently recording log, or nil.
func ActiveEvents() *EventLog { return activeEvents.Load() }

// Emit records one event on the active log, if any. With no active log
// it is one atomic load and zero allocations, so lifecycle call sites
// need no branch of their own. The fields array is passed by value —
// build it inline at the call site.
func Emit(kind, job string, level int, ts float64, fields [EventFieldsMax]EventField) {
	l := activeEvents.Load()
	if l == nil {
		return
	}
	l.Emit(kind, job, level, ts, fields)
}

// Emit appends one record, assigning the next sequence number, and
// wakes every blocked Wait channel.
func (l *EventLog) Emit(kind, job string, level int, ts float64, fields [EventFieldsMax]EventField) {
	l.mu.Lock()
	l.next++
	rec := EventRecord{Seq: l.next, TS: ts, Job: job, Level: level, Kind: kind, Fields: fields}
	if len(l.ring) < cap(l.ring) {
		l.ring = append(l.ring, rec)
	} else {
		l.ring[int((l.next-1)%uint64(cap(l.ring)))] = rec
	}
	close(l.notify)
	l.notify = make(chan struct{})
	l.mu.Unlock()
}

// LastSeq returns the sequence number of the most recent record (0
// when nothing has been emitted).
func (l *EventLog) LastSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.next
}

// Since returns a copy, in sequence order, of every retained record
// with Seq > after, plus the number of matching records that were
// already overwritten — dropped > 0 means the reader's cursor fell out
// of the ring and the stream has a gap.
func (l *EventLog) Since(after uint64) (evs []EventRecord, dropped uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.next <= after {
		return nil, 0
	}
	oldest := uint64(1)
	if n := uint64(len(l.ring)); l.next > n {
		oldest = l.next - n + 1
	}
	first := after + 1
	if first < oldest {
		dropped = oldest - first
		first = oldest
	}
	evs = make([]EventRecord, 0, l.next-first+1)
	for seq := first; seq <= l.next; seq++ {
		evs = append(evs, l.ring[int((seq-1)%uint64(cap(l.ring)))])
	}
	return evs, dropped
}

// Wait returns a channel that is closed once a record with Seq > after
// exists. If one already does, the returned channel is already closed —
// callers can select on it alongside a context without racing emits.
func (l *EventLog) Wait(after uint64) <-chan struct{} {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.next > after {
		return closedChan
	}
	return l.notify
}

// closedChan is the already-satisfied Wait result.
var closedChan = func() chan struct{} {
	ch := make(chan struct{})
	close(ch)
	return ch
}()

// WriteJSONL writes every retained record, oldest first, one JSON
// object per line. The export is deterministic: the same log contents
// produce byte-identical output.
func (l *EventLog) WriteJSONL(w io.Writer) error {
	evs, _ := l.Since(0)
	var buf bytes.Buffer
	scratch := make([]byte, 0, 256)
	for i := range evs {
		scratch = evs[i].AppendJSON(scratch[:0])
		buf.Write(scratch)
		buf.WriteByte('\n')
	}
	_, err := w.Write(buf.Bytes())
	return err
}
