// Package obs is the project's zero-dependency instrumentation layer:
// atomic counters, power-of-two-bucket histograms, and a simulated-clock
// span trace (trace.go). It is built for the repo's determinism
// contract — instruments only ever *read* the simulated cluster clock
// and bump atomics, so enabling full instrumentation leaves refinement
// output and simulated timings bit-identical (asserted in
// internal/core and internal/parfft tests).
//
// Cost model: every instrument call starts with one atomic load of the
// global enabled flag and returns immediately when it is false, so the
// disabled path compiles to near-nothing. The enabled path is a single
// atomic add per counter bump; spans come from a sync.Pool so the hot
// path stays alloc-free (proved by BenchmarkSpanDisabled/Enabled).
package obs

import (
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// enabled gates counters and histograms globally. The trace has its own
// activation (an atomic pointer to the active Trace) so that -trace can
// run without -metrics and vice versa; benchutil turns both on.
var enabled atomic.Bool

// SetEnabled turns metric collection on or off and returns the previous
// state, so tests can restore it.
func SetEnabled(on bool) bool { return enabled.Swap(on) }

// Enabled reports whether metric collection is on.
func Enabled() bool { return enabled.Load() }

// registry holds every instrument ever constructed. Instruments are
// package-level vars, so construction is init-time only; the mutex is
// never touched on the hot path.
var registry struct {
	sync.Mutex
	names map[string]bool
	insts []instrument
}

type instrument interface {
	// snapshot appends the instrument's current values, one Metric per
	// exported series, in a deterministic order.
	snapshot([]Metric) []Metric
	// reset zeroes the instrument.
	reset()
}

func register(name string, inst instrument) {
	registry.Lock()
	defer registry.Unlock()
	if registry.names == nil {
		registry.names = make(map[string]bool)
	}
	if registry.names[name] {
		panic("obs: duplicate instrument name " + name)
	}
	registry.names[name] = true
	registry.insts = append(registry.insts, inst)
}

// Metric is one exported series value in a snapshot.
type Metric struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// Snapshot returns every registered series sorted by name. Values are
// read with atomic loads; concurrent bumps may land between reads of
// different series, which is fine — snapshots are for reporting, not
// for the determinism contract.
func Snapshot() []Metric {
	registry.Lock()
	insts := make([]instrument, len(registry.insts))
	copy(insts, registry.insts)
	registry.Unlock()
	var ms []Metric
	for _, in := range insts {
		ms = in.snapshot(ms)
	}
	sort.Slice(ms, func(i, j int) bool { return ms[i].Name < ms[j].Name })
	return ms
}

// Values returns the snapshot as a name→value map, for tests that want
// delta assertions around a code region.
func Values() map[string]int64 {
	ms := Snapshot()
	m := make(map[string]int64, len(ms))
	for _, mt := range ms {
		m[mt.Name] = mt.Value
	}
	return m
}

// ResetAll zeroes every registered instrument.
func ResetAll() {
	registry.Lock()
	insts := make([]instrument, len(registry.insts))
	copy(insts, registry.insts)
	registry.Unlock()
	for _, in := range insts {
		in.reset()
	}
}

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	name string
	v    atomic.Int64
}

// NewCounter registers a counter. Call from package-level var
// initialisers only; duplicate names panic.
func NewCounter(name string) *Counter {
	c := &Counter{name: name}
	register(name, c)
	return c
}

// Inc adds 1 when instrumentation is enabled.
func (c *Counter) Inc() {
	if !enabled.Load() {
		return
	}
	c.v.Add(1)
}

// Add adds n when instrumentation is enabled.
func (c *Counter) Add(n int64) {
	if !enabled.Load() {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

func (c *Counter) snapshot(ms []Metric) []Metric {
	return append(ms, Metric{Name: c.name, Value: c.v.Load()})
}

func (c *Counter) reset() { c.v.Store(0) }

// CounterVec is a fixed-width vector of counters indexed by a small
// integer label (a cache shard, a resolution level). Cells export as
// name[i]; out-of-range indexes clamp to the last cell so callers never
// need a bounds check on the hot path.
type CounterVec struct {
	name  string
	cells []atomic.Int64
}

// NewCounterVec registers a counter vector with n cells.
func NewCounterVec(name string, n int) *CounterVec {
	if n <= 0 {
		panic("obs: CounterVec needs at least one cell: " + name)
	}
	v := &CounterVec{name: name, cells: make([]atomic.Int64, n)}
	register(name, v)
	return v
}

// Inc adds 1 to cell i when instrumentation is enabled.
func (v *CounterVec) Inc(i int) { v.Add(i, 1) }

// Add adds n to cell i when instrumentation is enabled.
func (v *CounterVec) Add(i int, n int64) {
	if !enabled.Load() {
		return
	}
	if i < 0 {
		i = 0
	} else if i >= len(v.cells) {
		i = len(v.cells) - 1
	}
	v.cells[i].Add(n)
}

// Value returns the current count of cell i (clamped like Add).
func (v *CounterVec) Value(i int) int64 {
	if i < 0 {
		i = 0
	} else if i >= len(v.cells) {
		i = len(v.cells) - 1
	}
	return v.cells[i].Load()
}

// Total returns the sum across all cells.
func (v *CounterVec) Total() int64 {
	var t int64
	for i := range v.cells {
		t += v.cells[i].Load()
	}
	return t
}

func (v *CounterVec) snapshot(ms []Metric) []Metric {
	for i := range v.cells {
		ms = append(ms, Metric{Name: vecName(v.name, i), Value: v.cells[i].Load()})
	}
	return ms
}

func (v *CounterVec) reset() {
	for i := range v.cells {
		v.cells[i].Store(0)
	}
}

// vecName formats name[i] without fmt (init-time and snapshot only, but
// keeping obs free of fmt keeps the package lean).
func vecName(name string, i int) string {
	digits := [20]byte{}
	p := len(digits)
	if i == 0 {
		p--
		digits[p] = '0'
	}
	for i > 0 {
		p--
		digits[p] = byte('0' + i%10)
		i /= 10
	}
	return name + "[" + string(digits[p:]) + "]"
}

// Gauge is a current-value instrument: unlike a Counter it moves in
// both directions and exports its instantaneous value, so it models
// occupancy (queue depth, running jobs, journal bytes) rather than
// throughput. Same cost contract as the other instruments: one atomic
// load on the disabled path, one atomic store/add when enabled.
type Gauge struct {
	name string
	v    atomic.Int64
}

// NewGauge registers a gauge. Call from package-level var initialisers
// only; duplicate names panic.
func NewGauge(name string) *Gauge {
	g := &Gauge{name: name}
	register(name, g)
	return g
}

// Set stores the current value when instrumentation is enabled.
func (g *Gauge) Set(v int64) {
	if !enabled.Load() {
		return
	}
	g.v.Store(v)
}

// Add moves the gauge by n (n may be negative) when instrumentation is
// enabled.
func (g *Gauge) Add(n int64) {
	if !enabled.Load() {
		return
	}
	g.v.Add(n)
}

// Inc adds 1 when instrumentation is enabled.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts 1 when instrumentation is enabled.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current gauge reading.
func (g *Gauge) Value() int64 { return g.v.Load() }

func (g *Gauge) snapshot(ms []Metric) []Metric {
	return append(ms, Metric{Name: g.name, Value: g.v.Load()})
}

func (g *Gauge) reset() { g.v.Store(0) }

// Histogram records a distribution in power-of-two buckets: bucket k
// counts observations v with 2^(k-1) <= v < 2^k (bucket 0 counts v <= 0
// and v == 1 lands in bucket 1). It also tracks count and sum so means
// survive the bucketing.
type Histogram struct {
	name    string
	buckets []atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
}

// NewHistogram registers a histogram with the given number of
// power-of-two buckets; observations beyond the last bucket clamp.
func NewHistogram(name string, buckets int) *Histogram {
	if buckets <= 0 {
		panic("obs: Histogram needs at least one bucket: " + name)
	}
	h := &Histogram{name: name, buckets: make([]atomic.Int64, buckets)}
	register(name, h)
	return h
}

// Observe records one observation when instrumentation is enabled.
func (h *Histogram) Observe(v int64) {
	if !enabled.Load() {
		return
	}
	k := 0
	if v > 0 {
		k = bits.Len64(uint64(v))
		if k >= len(h.buckets) {
			k = len(h.buckets) - 1
		}
	}
	h.buckets[k].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the running sum of observed values.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

func (h *Histogram) snapshot(ms []Metric) []Metric {
	ms = append(ms,
		Metric{Name: h.name + ".count", Value: h.count.Load()},
		Metric{Name: h.name + ".sum", Value: h.sum.Load()},
	)
	for i := range h.buckets {
		ms = append(ms, Metric{Name: vecName(h.name+".bucket", i), Value: h.buckets[i].Load()})
	}
	return ms
}

func (h *Histogram) reset() {
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
	h.count.Store(0)
	h.sum.Store(0)
}

// Buckets returns a snapshot copy of the per-bucket counts.
func (h *Histogram) Buckets() []int64 {
	out := make([]int64, len(h.buckets))
	for i := range h.buckets {
		out[i] = h.buckets[i].Load()
	}
	return out
}

// Quantile estimates the q-quantile (q in [0,1]) of the recorded
// distribution by linear interpolation inside the power-of-two bucket
// that holds the target rank. With no observations it returns 0.
func (h *Histogram) Quantile(q float64) float64 {
	return QuantileFromBuckets(h.Buckets(), q)
}

// BucketBounds returns the value range [lo, hi) that bucket k of a
// power-of-two histogram covers: bucket 0 holds v <= 0, bucket k >= 1
// holds 2^(k-1) <= v < 2^k. Exported so clients that reconstruct
// histograms from exported series (repstat, the prom exposition) agree
// with the in-process estimator about bucket geometry.
func BucketBounds(k int) (lo, hi float64) {
	if k <= 0 {
		return 0, 0
	}
	return float64(int64(1) << (k - 1)), float64(int64(1) << k)
}

// QuantileFromBuckets is the bucket-interpolated quantile estimator
// over a power-of-two bucket vector (the exact series a Histogram
// exports as name.bucket[k]). It is the single implementation behind
// Histogram.Quantile and the client-side quantiles in cmd/repstat, so
// the two always agree.
func QuantileFromBuckets(buckets []int64, q float64) float64 {
	var total int64
	for _, c := range buckets {
		total += c
	}
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	cum := 0.0
	for k, c := range buckets {
		if c == 0 {
			continue
		}
		if cum+float64(c) >= rank {
			lo, hi := BucketBounds(k)
			frac := 0.0
			if c > 0 {
				frac = (rank - cum) / float64(c)
			}
			if frac < 0 {
				frac = 0
			}
			return lo + frac*(hi-lo)
		}
		cum += float64(c)
	}
	// rank beyond the last populated bucket (only reachable through
	// floating-point edge cases): the last bucket's upper bound.
	_, hi := BucketBounds(len(buckets) - 1)
	return hi
}
