package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

// withEnabled runs f with metric collection forced to on, restoring
// the previous state after.
func withEnabled(t *testing.T, f func()) {
	t.Helper()
	prev := SetEnabled(true)
	defer SetEnabled(prev)
	f()
}

func TestCounterDisabledIsNoop(t *testing.T) {
	c := NewCounter("test.counter.disabled")
	prev := SetEnabled(false)
	defer SetEnabled(prev)
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 0 {
		t.Fatalf("disabled counter moved: %d", got)
	}
}

func TestCounterAndVec(t *testing.T) {
	c := NewCounter("test.counter.basic")
	v := NewCounterVec("test.vec.basic", 4)
	withEnabled(t, func() {
		c.Inc()
		c.Add(2)
		v.Inc(0)
		v.Add(3, 10)
		v.Add(99, 1) // clamps to last cell
		v.Add(-5, 1) // clamps to first cell
	})
	if got := c.Value(); got != 3 {
		t.Errorf("counter = %d, want 3", got)
	}
	if got := v.Value(0); got != 2 {
		t.Errorf("vec[0] = %d, want 2 (Inc + clamped -5)", got)
	}
	if got := v.Value(3); got != 11 {
		t.Errorf("vec[3] = %d, want 11 (Add 10 + clamped 99)", got)
	}
	if got := v.Total(); got != 13 {
		t.Errorf("vec total = %d, want 13", got)
	}
	vals := Values()
	if vals["test.vec.basic[3]"] != 11 {
		t.Errorf("snapshot vec cell = %d, want 11", vals["test.vec.basic[3]"])
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram("test.hist.basic", 6)
	withEnabled(t, func() {
		h.Observe(0)    // bucket 0
		h.Observe(1)    // bucket 1
		h.Observe(2)    // bucket 2
		h.Observe(3)    // bucket 2
		h.Observe(4)    // bucket 3
		h.Observe(1000) // clamps to bucket 5
	})
	if got := h.Count(); got != 6 {
		t.Errorf("count = %d, want 6", got)
	}
	if got := h.Sum(); got != 1010 {
		t.Errorf("sum = %d, want 1010", got)
	}
	vals := Values()
	wants := map[string]int64{
		"test.hist.basic.bucket[0]": 1,
		"test.hist.basic.bucket[1]": 1,
		"test.hist.basic.bucket[2]": 2,
		"test.hist.basic.bucket[3]": 1,
		"test.hist.basic.bucket[4]": 0,
		"test.hist.basic.bucket[5]": 1,
		"test.hist.basic.count":     6,
		"test.hist.basic.sum":       1010,
	}
	for name, want := range wants {
		if vals[name] != want {
			t.Errorf("%s = %d, want %d", name, vals[name], want)
		}
	}
}

func TestDuplicateNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate instrument name did not panic")
		}
	}()
	NewCounter("test.counter.dup")
	NewCounter("test.counter.dup")
}

func TestSnapshotSortedAndResettable(t *testing.T) {
	b := NewCounter("test.order.b")
	a := NewCounter("test.order.a")
	withEnabled(t, func() {
		a.Add(1)
		b.Add(2)
	})
	ms := Snapshot()
	for i := 1; i < len(ms); i++ {
		if ms[i-1].Name >= ms[i].Name {
			t.Fatalf("snapshot not strictly sorted: %q then %q", ms[i-1].Name, ms[i].Name)
		}
	}
	ResetAll()
	if a.Value() != 0 || b.Value() != 0 {
		t.Fatalf("ResetAll left values: a=%d b=%d", a.Value(), b.Value())
	}
}

func TestConcurrentCounters(t *testing.T) {
	c := NewCounter("test.counter.concurrent")
	withEnabled(t, func() {
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 1000; i++ {
					c.Inc()
				}
			}()
		}
		wg.Wait()
	})
	if got := c.Value(); got != 8000 {
		t.Fatalf("concurrent counter = %d, want 8000", got)
	}
}

func TestTraceSpanRecordingAndOrder(t *testing.T) {
	tr := StartTrace()
	defer EndTrace()
	// Recorded out of order on purpose; Events must sort.
	Span(1, 0, "late", "test", 2.0, 3.0)
	Span(0, 0, "b", "test", 1.0, 2.0)
	Span(0, 0, "a", "test", 0.0, 1.0)
	h := StartSpan(0, 1, "pooled", "test", 0.5)
	h.SetArg("view", 7)
	h.SetArg("matchings", 42)
	h.End(0.75)
	ev := tr.Events()
	if len(ev) != 4 {
		t.Fatalf("got %d events, want 4", len(ev))
	}
	wantOrder := []string{"a", "b", "pooled", "late"}
	for i, name := range wantOrder {
		if ev[i].Name != name {
			t.Fatalf("event %d = %q, want %q (order %v)", i, ev[i].Name, name, ev)
		}
	}
	p := ev[2]
	if p.Args[0] != (Arg{Key: "view", Value: 7}) || p.Args[1] != (Arg{Key: "matchings", Value: 42}) {
		t.Fatalf("pooled span args = %+v", p.Args)
	}
}

func TestTraceInactiveIsNoop(t *testing.T) {
	if ActiveTrace() != nil {
		t.Fatal("trace unexpectedly active at test start")
	}
	Span(0, 0, "x", "test", 0, 1)
	if h := StartSpan(0, 0, "x", "test", 0); h != nil {
		t.Fatal("StartSpan returned non-nil with no active trace")
	}
	var h *SpanHandle
	h.SetArg("k", 1) // must not panic
	h.End(1)         // must not panic
}

func TestTraceTimeOffset(t *testing.T) {
	tr := StartTrace()
	defer EndTrace()
	Span(0, 0, "first", "test", 0, 1)
	tr.SetTimeOffset(10)
	Span(0, 0, "second", "test", 0, 1)
	ev := tr.Events()
	if ev[0].Start != 0 || ev[1].Start != 10 || ev[1].End != 11 {
		t.Fatalf("offset not applied: %+v", ev)
	}
}

func TestWriteChromeTrace(t *testing.T) {
	tr := StartTrace()
	Span(0, 0, "a.3 fft2d", "parfft", 0, 0.5)
	Instant(1, 0, "slide", "refine", 0.25, [2]Arg{{Key: "count", Value: 3}})
	EndTrace()
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("exporter emitted invalid JSON: %v\n%s", err, buf.String())
	}
	// 2 metadata records (pids 0 and 1) + 2 events.
	if len(doc.TraceEvents) != 4 {
		t.Fatalf("got %d records, want 4: %s", len(doc.TraceEvents), buf.String())
	}
	var span, inst map[string]any
	for _, e := range doc.TraceEvents {
		switch e["ph"] {
		case "X":
			span = e
		case "i":
			inst = e
		}
	}
	if span == nil || inst == nil {
		t.Fatalf("missing span or instant: %s", buf.String())
	}
	if span["ts"] != float64(0) || span["dur"] != float64(500000) {
		t.Errorf("span ts/dur = %v/%v, want 0/500000", span["ts"], span["dur"])
	}
	if inst["args"].(map[string]any)["count"] != float64(3) {
		t.Errorf("instant args = %v", inst["args"])
	}
	// Deterministic bytes: re-export must match exactly.
	var buf2 bytes.Buffer
	if err := tr.WriteChromeTrace(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("re-export produced different bytes")
	}
}

func TestWriteTextAndJSON(t *testing.T) {
	c := NewCounter("test.export.counter")
	withEnabled(t, func() { c.Add(5) })
	var txt bytes.Buffer
	if err := WriteText(&txt); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(txt.String(), "test.export.counter 5\n") {
		t.Errorf("text export missing counter: %s", txt.String())
	}
	var js bytes.Buffer
	if err := WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	var doc metricsDoc
	if err := json.Unmarshal(js.Bytes(), &doc); err != nil {
		t.Fatalf("invalid metrics JSON: %v", err)
	}
	if doc.SchemaVersion != 1 {
		t.Errorf("schema_version = %d, want 1", doc.SchemaVersion)
	}
	found := false
	for _, m := range doc.Metrics {
		if m.Name == "test.export.counter" && m.Value == 5 {
			found = true
		}
	}
	if !found {
		t.Errorf("JSON export missing counter: %s", js.String())
	}
}

// BenchmarkCounterDisabled pins the disabled-path cost: one atomic
// load, no allocation.
func BenchmarkCounterDisabled(b *testing.B) {
	c := NewCounter("bench.counter.disabled")
	prev := SetEnabled(false)
	defer SetEnabled(prev)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterEnabled(b *testing.B) {
	c := NewCounter("bench.counter.enabled")
	prev := SetEnabled(true)
	defer SetEnabled(prev)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

// BenchmarkSpanDisabled proves bracketing a region with no active
// trace costs one atomic load and zero allocations.
func BenchmarkSpanDisabled(b *testing.B) {
	if ActiveTrace() != nil {
		b.Fatal("trace active")
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h := StartSpan(0, 0, "k", "bench", 0)
		h.End(1)
	}
	if n := testing.AllocsPerRun(100, func() {
		h := StartSpan(0, 0, "k", "bench", 0)
		h.End(1)
	}); n != 0 {
		b.Fatalf("disabled span allocates %v/op", n)
	}
}

// BenchmarkSpanEnabled proves the pooled span handle itself is
// alloc-free; only the trace's event slice grows (amortised append).
func BenchmarkSpanEnabled(b *testing.B) {
	tr := StartTrace()
	defer EndTrace()
	// Pre-size the event slice so the benchmark measures the span
	// machinery, not slice growth.
	tr.mu.Lock()
	tr.events = make([]Event, 0, b.N+101)
	tr.mu.Unlock()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h := StartSpan(0, 0, "k", "bench", 0)
		h.End(1)
	}
	if n := testing.AllocsPerRun(100, func() {
		h := StartSpan(0, 0, "k", "bench", 0)
		h.End(1)
	}); n != 0 {
		b.Fatalf("pooled span allocates %v/op", n)
	}
}
