// Trace: a timeline of spans on the *simulated* cluster clock,
// exported in the Chrome trace_event JSON format so a run can be opened
// in chrome://tracing or https://ui.perfetto.dev. Timestamps are
// simulated seconds (converted to microseconds on export), Pid is the
// simulated node rank and Tid a per-node row — wall-clock time never
// enters a trace, which is what keeps traces reproducible bit-for-bit.
package obs

import (
	"bytes"
	"errors"
	"io"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Event is one Chrome trace_event entry. Phase "X" is a complete span
// (Start..End), phase "i" an instant at Start.
type Event struct {
	Name  string
	Cat   string
	Phase string
	Pid   int
	Tid   int
	Start float64 // simulated seconds
	End   float64 // simulated seconds; == Start for instants
	Args  [2]Arg  // fixed-size so recording never allocates
}

// Arg is one key/value annotation on an event. A zero Key means unset.
type Arg struct {
	Key   string
	Value int64
}

// Trace accumulates events. All methods are safe for concurrent use by
// the simulated nodes' goroutines.
type Trace struct {
	mu     sync.Mutex
	events []Event
	offset float64
}

// active is the currently recording trace, or nil. A plain atomic
// pointer keeps the disabled-path cost of Span/StartSpan to one load.
var active atomic.Pointer[Trace]

// StartTrace installs a fresh trace as the active recorder and returns
// it. Passing nil to EndTrace semantics: call EndTrace to stop.
func StartTrace() *Trace {
	t := &Trace{}
	active.Store(t)
	return t
}

// EndTrace stops recording and returns the trace that was active, if
// any.
func EndTrace() *Trace {
	return active.Swap(nil)
}

// ActiveTrace returns the currently recording trace, or nil.
func ActiveTrace() *Trace { return active.Load() }

// SetTimeOffset shifts all subsequently recorded events by off
// simulated seconds. The driver uses it to lay successive simulation
// phases (slab FFT, then refinement) end-to-end on one timeline even
// though each phase's cluster clock starts at zero.
func (t *Trace) SetTimeOffset(off float64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.offset = off
	t.mu.Unlock()
}

func (t *Trace) record(e Event) {
	t.mu.Lock()
	e.Start += t.offset
	e.End += t.offset
	t.events = append(t.events, e)
	t.mu.Unlock()
}

// Events returns a copy of the recorded events sorted by
// (Pid, Tid, Start, End, Name) — a deterministic order regardless of
// the goroutine interleaving that recorded them.
func (t *Trace) Events() []Event {
	t.mu.Lock()
	ev := make([]Event, len(t.events))
	copy(ev, t.events)
	t.mu.Unlock()
	sort.Slice(ev, func(i, j int) bool {
		a, b := &ev[i], &ev[j]
		if a.Pid != b.Pid {
			return a.Pid < b.Pid
		}
		if a.Tid != b.Tid {
			return a.Tid < b.Tid
		}
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		if a.End != b.End {
			return a.End < b.End
		}
		return a.Name < b.Name
	})
	return ev
}

// Span records a complete span on the active trace, if one is
// recording. Times are simulated seconds. Safe to call unconditionally
// from hot sim paths: with no active trace it is one atomic load.
func Span(pid, tid int, name, cat string, start, end float64) {
	t := active.Load()
	if t == nil {
		return
	}
	t.record(Event{Name: name, Cat: cat, Phase: "X", Pid: pid, Tid: tid, Start: start, End: end})
}

// SpanArgs is Span with up to two integer annotations.
func SpanArgs(pid, tid int, name, cat string, start, end float64, args [2]Arg) {
	t := active.Load()
	if t == nil {
		return
	}
	t.record(Event{Name: name, Cat: cat, Phase: "X", Pid: pid, Tid: tid, Start: start, End: end, Args: args})
}

// Instant records a zero-duration marker on the active trace.
func Instant(pid, tid int, name, cat string, at float64, args [2]Arg) {
	t := active.Load()
	if t == nil {
		return
	}
	t.record(Event{Name: name, Cat: cat, Phase: "i", Pid: pid, Tid: tid, Start: at, End: at, Args: args})
}

// SpanHandle is a pooled in-flight span for callers that bracket a
// region: h := obs.StartSpan(...); ...; h.End(clockNow). The handle
// comes from a sync.Pool, so the begin/end pair allocates nothing, and
// a nil handle's End is a no-op — StartSpan returns nil when no trace
// is recording, so hot paths need no branch of their own.
type SpanHandle struct {
	t     *Trace
	name  string
	cat   string
	pid   int
	tid   int
	start float64
	args  [2]Arg
}

var spanPool = sync.Pool{New: func() any { return new(SpanHandle) }}

// StartSpan begins a pooled span at the given simulated time, or
// returns nil when no trace is recording.
func StartSpan(pid, tid int, name, cat string, start float64) *SpanHandle {
	t := active.Load()
	if t == nil {
		return nil
	}
	h := spanPool.Get().(*SpanHandle)
	h.t = t
	h.name, h.cat = name, cat
	h.pid, h.tid = pid, tid
	h.start = start
	h.args = [2]Arg{}
	return h
}

// SetArg attaches an integer annotation to the span (at most two; later
// calls overwrite the second slot). Nil-safe.
func (h *SpanHandle) SetArg(key string, v int64) {
	if h == nil {
		return
	}
	if h.args[0].Key == "" || h.args[0].Key == key {
		h.args[0] = Arg{Key: key, Value: v}
		return
	}
	h.args[1] = Arg{Key: key, Value: v}
}

// End records the span at the given simulated end time and returns the
// handle to the pool. Nil-safe; the handle must not be used after End.
func (h *SpanHandle) End(end float64) {
	if h == nil {
		return
	}
	h.t.record(Event{Name: h.name, Cat: h.cat, Phase: "X", Pid: h.pid, Tid: h.tid, Start: h.start, End: end, Args: h.args})
	*h = SpanHandle{}
	spanPool.Put(h)
}

// WriteChromeTrace writes the trace in Chrome trace_event JSON array
// format ({"traceEvents": [...]}), with timestamps in microseconds of
// simulated time and a metadata record naming each pid "node <rank>".
// Events are emitted in the deterministic Events() order, so the same
// run produces byte-identical files.
func (t *Trace) WriteChromeTrace(w io.Writer) error {
	if t == nil {
		return errors.New("obs: WriteChromeTrace on nil trace")
	}
	ev := t.Events()
	var bw bytes.Buffer
	put := func(s string) { bw.WriteString(s) }
	putInt := func(v int64) {
		var buf [20]byte
		bw.Write(strconv.AppendInt(buf[:0], v, 10))
	}
	put(`{"traceEvents":[`)
	first := true
	sep := func() {
		if !first {
			put(",")
		}
		first = false
		put("\n")
	}
	pids := map[int]bool{}
	for i := range ev {
		pids[ev[i].Pid] = true
	}
	ranks := make([]int, 0, len(pids))
	for pid := range pids {
		ranks = append(ranks, pid)
	}
	sort.Ints(ranks)
	for _, pid := range ranks {
		sep()
		put(`{"name":"process_name","ph":"M","pid":`)
		putInt(int64(pid))
		put(`,"tid":0,"args":{"name":"node `)
		putInt(int64(pid))
		put(`"}}`)
	}
	for i := range ev {
		e := &ev[i]
		sep()
		put(`{"name":`)
		put(strconv.Quote(e.Name))
		put(`,"cat":`)
		put(strconv.Quote(e.Cat))
		put(`,"ph":"`)
		put(e.Phase)
		put(`","pid":`)
		putInt(int64(e.Pid))
		put(`,"tid":`)
		putInt(int64(e.Tid))
		put(`,"ts":`)
		putInt(usec(e.Start))
		if e.Phase == "X" {
			put(`,"dur":`)
			putInt(usec(e.End) - usec(e.Start))
		}
		if e.Phase == "i" {
			put(`,"s":"t"`)
		}
		if e.Args[0].Key != "" {
			put(`,"args":{`)
			put(strconv.Quote(e.Args[0].Key))
			put(`:`)
			putInt(e.Args[0].Value)
			if e.Args[1].Key != "" {
				put(`,`)
				put(strconv.Quote(e.Args[1].Key))
				put(`:`)
				putInt(e.Args[1].Value)
			}
			put(`}`)
		}
		put(`}`)
	}
	put("\n]}\n")
	_, err := w.Write(bw.Bytes())
	return err
}

// usec converts simulated seconds to integer microseconds, the
// trace_event unit.
func usec(sec float64) int64 { return int64(sec * 1e6) }
