package obs

import (
	"bytes"
	"encoding/json"
	"io"
	"sort"
	"strconv"
)

// WriteText writes the current snapshot as "name value" lines, sorted
// by name — greppable and diffable between runs.
func WriteText(w io.Writer) error {
	var buf bytes.Buffer
	for _, m := range Snapshot() {
		buf.WriteString(m.Name)
		buf.WriteByte(' ')
		buf.WriteString(strconv.FormatInt(m.Value, 10))
		buf.WriteByte('\n')
	}
	_, err := w.Write(buf.Bytes())
	return err
}

// metricsDoc is the JSON snapshot envelope. The schema version covers
// the envelope shape, not the series set — new instruments may appear
// between PRs without a bump.
type metricsDoc struct {
	SchemaVersion int      `json:"schema_version"`
	Metrics       []Metric `json:"metrics"`
}

// WriteJSON writes the current snapshot as an indented JSON document.
func WriteJSON(w io.Writer) error {
	doc := metricsDoc{SchemaVersion: 1, Metrics: Snapshot()}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// WriteProm writes every registered instrument in the Prometheus text
// exposition format, version 0.0.4, stdlib only. The mapping:
//
//	Counter     → one `counter` sample
//	Gauge       → one `gauge` sample
//	CounterVec  → one `counter` family with a cell="<i>" label per cell
//	Histogram   → a classic `histogram` family: cumulative
//	              name_bucket{le="..."} series (le is the inclusive
//	              integer upper bound of each power-of-two bucket, the
//	              last bucket exporting as le="+Inf"), plus name_sum
//	              and name_count
//
// Metric names are the registry names with every non-[a-zA-Z0-9_:]
// byte replaced by '_'. Families are emitted sorted by name, each
// preceded by its # TYPE line, so the exposition is deterministic for
// a fixed snapshot.
func WriteProm(w io.Writer) error {
	registry.Lock()
	insts := make([]instrument, len(registry.insts))
	copy(insts, registry.insts)
	registry.Unlock()

	type family struct {
		name string
		body func(buf *bytes.Buffer, name string)
	}
	fams := make([]family, 0, len(insts))
	for _, in := range insts {
		switch v := in.(type) {
		case *Counter:
			fams = append(fams, family{promName(v.name), func(buf *bytes.Buffer, name string) {
				promType(buf, name, "counter")
				promSample(buf, name, "", v.Value())
			}})
		case *Gauge:
			fams = append(fams, family{promName(v.name), func(buf *bytes.Buffer, name string) {
				promType(buf, name, "gauge")
				promSample(buf, name, "", v.Value())
			}})
		case *CounterVec:
			fams = append(fams, family{promName(v.name), func(buf *bytes.Buffer, name string) {
				promType(buf, name, "counter")
				for i := range v.cells {
					promSample(buf, name, `{cell="`+strconv.Itoa(i)+`"}`, v.cells[i].Load())
				}
			}})
		case *Histogram:
			fams = append(fams, family{promName(v.name), func(buf *bytes.Buffer, name string) {
				promType(buf, name, "histogram")
				buckets := v.Buckets()
				var cum int64
				for k, c := range buckets {
					cum += c
					le := "+Inf"
					if k < len(buckets)-1 {
						// Inclusive integer upper bound of bucket k:
						// bucket 0 holds v <= 0, bucket k holds
						// 2^(k-1) <= v < 2^k, i.e. v <= 2^k - 1.
						if k == 0 {
							le = "0"
						} else {
							le = strconv.FormatInt(int64(1)<<k-1, 10)
						}
					}
					promSample(buf, name+"_bucket", `{le="`+le+`"}`, cum)
				}
				promSample(buf, name+"_sum", "", v.Sum())
				promSample(buf, name+"_count", "", v.Count())
			}})
		}
	}
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	var buf bytes.Buffer
	for _, f := range fams {
		f.body(&buf, f.name)
	}
	_, err := w.Write(buf.Bytes())
	return err
}

func promType(buf *bytes.Buffer, name, typ string) {
	buf.WriteString("# TYPE ")
	buf.WriteString(name)
	buf.WriteByte(' ')
	buf.WriteString(typ)
	buf.WriteByte('\n')
}

func promSample(buf *bytes.Buffer, name, labels string, v int64) {
	buf.WriteString(name)
	buf.WriteString(labels)
	buf.WriteByte(' ')
	buf.WriteString(strconv.FormatInt(v, 10))
	buf.WriteByte('\n')
}

// promName maps a registry name onto the Prometheus metric-name
// alphabet: every byte outside [a-zA-Z0-9_:] becomes '_'.
func promName(name string) string {
	out := []byte(name)
	for i, c := range out {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				out[i] = '_'
			}
		default:
			out[i] = '_'
		}
	}
	return string(out)
}
