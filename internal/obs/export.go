package obs

import (
	"bytes"
	"encoding/json"
	"io"
	"strconv"
)

// WriteText writes the current snapshot as "name value" lines, sorted
// by name — greppable and diffable between runs.
func WriteText(w io.Writer) error {
	var buf bytes.Buffer
	for _, m := range Snapshot() {
		buf.WriteString(m.Name)
		buf.WriteByte(' ')
		buf.WriteString(strconv.FormatInt(m.Value, 10))
		buf.WriteByte('\n')
	}
	_, err := w.Write(buf.Bytes())
	return err
}

// metricsDoc is the JSON snapshot envelope. The schema version covers
// the envelope shape, not the series set — new instruments may appear
// between PRs without a bump.
type metricsDoc struct {
	SchemaVersion int      `json:"schema_version"`
	Metrics       []Metric `json:"metrics"`
}

// WriteJSON writes the current snapshot as an indented JSON document.
func WriteJSON(w io.Writer) error {
	doc := metricsDoc{SchemaVersion: 1, Metrics: Snapshot()}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
