package brick

import (
	"math/cmplx"
	"testing"

	"repro/internal/cluster"
	"repro/internal/fourier"
	"repro/internal/geom"
	"repro/internal/phantom"
)

func testStore(t testing.TB, l, edge int) (*Store, *fourier.VolumeDFT) {
	t.Helper()
	g := phantom.Asymmetric(l, 6, 1)
	dft := fourier.NewVolumeDFTPadded(g, 2)
	s, err := NewStore(dft, edge)
	if err != nil {
		t.Fatal(err)
	}
	return s, dft
}

func TestClientSampleMatchesDirect(t *testing.T) {
	s, dft := testStore(t, 16, 8)
	c, err := NewClient(s, nil, cluster.SP2, 64)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []geom.Vec3{
		{}, {X: 1.5, Y: -2.25, Z: 0.75}, {X: -7, Y: 7, Z: -7}, {X: 3.1, Y: 0.2, Z: -1.9},
	} {
		want := dft.Sample(f, fourier.Trilinear)
		got := c.Sample(f, fourier.Trilinear)
		if cmplx.Abs(got-want) > 1e-12 {
			t.Fatalf("Sample(%v) = %v, want %v", f, got, want)
		}
		wantN := dft.Sample(f, fourier.Nearest)
		gotN := c.Sample(f, fourier.Nearest)
		if cmplx.Abs(gotN-wantN) > 1e-12 {
			t.Fatalf("Nearest Sample(%v) mismatch", f)
		}
	}
}

func TestClientSliceMatchesDirect(t *testing.T) {
	s, dft := testStore(t, 16, 8)
	c, _ := NewClient(s, nil, cluster.SP2, 128)
	o := geom.Euler{Theta: 40, Phi: 120, Omega: 30}
	want := dft.ExtractSlice(o, 6, fourier.Trilinear)
	got := c.ExtractSlice(o, 6, fourier.Trilinear)
	for i := range want.Data {
		if cmplx.Abs(got.Data[i]-want.Data[i]) > 1e-12 {
			t.Fatalf("slice element %d differs", i)
		}
	}
}

func TestCacheHitsAndEviction(t *testing.T) {
	s, _ := testStore(t, 16, 8)
	c, _ := NewClient(s, nil, cluster.SP2, 2)
	f := geom.Vec3{X: 1, Y: 1, Z: 1}
	c.Sample(f, fourier.Nearest)
	missesAfterFirst := c.Misses
	c.Sample(f, fourier.Nearest)
	if c.Misses != missesAfterFirst {
		t.Fatal("second identical sample missed the cache")
	}
	if c.Hits == 0 {
		t.Fatal("no hits recorded")
	}
	// Touch many distinct bricks to force eviction, then the original
	// must miss again.
	for x := -14; x <= 14; x += 7 {
		for y := -14; y <= 14; y += 7 {
			c.Sample(geom.Vec3{X: float64(x) / 2, Y: float64(y) / 2, Z: 3}, fourier.Nearest)
		}
	}
	before := c.Misses
	c.Sample(f, fourier.Nearest)
	if c.Misses == before {
		t.Fatal("LRU eviction did not happen with capacity 2")
	}
	if hr := c.HitRate(); hr <= 0 || hr >= 1 {
		t.Fatalf("hit rate %g out of (0,1)", hr)
	}
}

func TestMissChargesSimulatedTime(t *testing.T) {
	s, _ := testStore(t, 16, 8)
	cl := cluster.New(1, cluster.SP2)
	var elapsed float64
	var hitRate float64
	cl.Run(func(n *cluster.Node) {
		c, _ := NewClient(s, n, cluster.SP2, 64)
		// Two slices at the same orientation: the second is all hits.
		c.ExtractSlice(geom.Euler{Theta: 30}, 6, fourier.Trilinear)
		afterFirst := n.Clock()
		c.ExtractSlice(geom.Euler{Theta: 30}, 6, fourier.Trilinear)
		if n.Clock() != afterFirst {
			t.Error("cached slice charged communication time")
		}
		elapsed = n.Clock()
		hitRate = c.HitRate()
	})
	if elapsed <= 0 {
		t.Fatal("brick misses charged no simulated time")
	}
	if hitRate < 0.5 {
		t.Fatalf("hit rate %.2f unexpectedly low for repeated slices", hitRate)
	}
}

func TestReplicatedVsOnDemandTiming(t *testing.T) {
	// The paper's §6 design choice, measured: many windowed matchings
	// against a replicated spectrum (one all-gather up front) versus
	// demand-paged bricks with a small cache. Replication must win for
	// realistic matching workloads.
	s, dft := testStore(t, 24, 8)
	orients := []geom.Euler{}
	for i := 0; i < 30; i++ {
		orients = append(orients, geom.Euler{Theta: float64(i), Phi: float64(2 * i), Omega: float64(3 * i)})
	}
	model := cluster.SP2

	// Replicated: pay the all-gather of the full spectrum once.
	repl := float64(1) * model.MessageTime(len(dft.Data)*16)

	// On demand with a cache far smaller than the spectrum.
	cl := cluster.New(1, model)
	var onDemand float64
	cl.Run(func(n *cluster.Node) {
		c, _ := NewClient(s, n, model, 4)
		for _, o := range orients {
			c.ExtractSlice(o, 9, fourier.Trilinear)
		}
		onDemand = n.Clock()
	})
	if onDemand <= repl {
		t.Fatalf("on-demand bricks (%.4gs) beat replication (%.4gs) — cost model inverted?", onDemand, repl)
	}
}

func TestStoreValidation(t *testing.T) {
	_, dft := testStore(t, 16, 8)
	if _, err := NewStore(dft, 1); err == nil {
		t.Fatal("edge 1 accepted")
	}
	s, err := NewStore(dft, 1000) // clamps to lattice size
	if err != nil {
		t.Fatal(err)
	}
	if s.Edge != dft.L {
		t.Fatalf("oversized edge not clamped: %d", s.Edge)
	}
	if _, err := NewClient(s, nil, cluster.SP2, 0); err == nil {
		t.Fatal("capacity 0 accepted")
	}
}
