// Package brick implements the design alternative that §6 of the
// paper discusses and rejects: instead of replicating the 3-D DFT of
// the electron-density map on every node, "implement a shared virtual
// memory where 3D bricks of the electron density or its DFT are
// brought on demand in each node when they are needed" (the strategy
// of the paper's ref. [6]).
//
// A Store partitions the centred spectrum into cubic bricks; a Client
// on each simulated node fetches bricks on demand over the modeled
// network (one-sided gets) and keeps an LRU cache. Running the same
// central-section extractions through a Client and through a local
// replica turns the paper's qualitative communication-cost argument
// into a measured comparison (see BenchmarkAblationReplication).
package brick

import (
	"container/list"
	"fmt"
	"math"

	"repro/internal/cluster"
	"repro/internal/fourier"
	"repro/internal/geom"
	"repro/internal/volume"
)

// Store is the brick-partitioned view of a volume spectrum. It is
// read-only and shared by all clients.
type Store struct {
	dft *fourier.VolumeDFT
	// Edge is the brick edge length in lattice points.
	Edge int
	// nb is the number of bricks per axis.
	nb int
}

// NewStore partitions the spectrum into bricks of the given edge
// (clamped to the lattice size).
func NewStore(dft *fourier.VolumeDFT, edge int) (*Store, error) {
	if edge < 2 {
		return nil, fmt.Errorf("brick: edge must be ≥ 2, got %d", edge)
	}
	if edge > dft.L {
		edge = dft.L
	}
	nb := (dft.L + edge - 1) / edge
	return &Store{dft: dft, Edge: edge, nb: nb}, nil
}

// Bricks returns the number of bricks per axis.
func (s *Store) Bricks() int { return s.nb }

// BrickBytes is the serialized size of one brick.
func (s *Store) BrickBytes() int { return s.Edge * s.Edge * s.Edge * 16 }

// brickID identifies one brick by its per-axis indices.
type brickID struct{ x, y, z int }

// brickOf maps a lattice point to its brick.
func (s *Store) brickOf(x, y, z int) brickID {
	return brickID{x / s.Edge, y / s.Edge, z / s.Edge}
}

// fetch copies one brick's contents (zero-padded at lattice edges).
func (s *Store) fetch(id brickID) []complex128 {
	e := s.Edge
	out := make([]complex128, e*e*e)
	l := s.dft.L
	x0, y0, z0 := id.x*e, id.y*e, id.z*e
	for dx := 0; dx < e && x0+dx < l; dx++ {
		for dy := 0; dy < e && y0+dy < l; dy++ {
			srcBase := ((x0+dx)*l + y0 + dy) * l
			dstBase := (dx*e + dy) * e
			for dz := 0; dz < e && z0+dz < l; dz++ {
				out[dstBase+dz] = s.dft.Data[srcBase+z0+dz]
			}
		}
	}
	return out
}

// Client is one node's demand-paged window onto the store. Not safe
// for concurrent use (each simulated node owns one).
type Client struct {
	store *Store
	node  *cluster.Node
	model cluster.CostModel

	capacity int
	cache    map[brickID]*list.Element
	lru      *list.List // front = most recent

	// Hits and Misses count brick lookups.
	Hits, Misses int64
}

type cacheEntry struct {
	id   brickID
	data []complex128
}

// NewClient attaches a client with the given cache capacity (in
// bricks) to a simulated node; each miss charges the node the modeled
// one-sided fetch time of one brick.
func NewClient(s *Store, node *cluster.Node, model cluster.CostModel, capacity int) (*Client, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("brick: cache capacity must be ≥ 1, got %d", capacity)
	}
	return &Client{
		store:    s,
		node:     node,
		model:    model,
		capacity: capacity,
		cache:    map[brickID]*list.Element{},
		lru:      list.New(),
	}, nil
}

// brick returns the brick's data, fetching and caching on miss.
func (c *Client) brick(id brickID) []complex128 {
	if el, ok := c.cache[id]; ok {
		c.Hits++
		c.lru.MoveToFront(el)
		return el.Value.(*cacheEntry).data
	}
	c.Misses++
	if c.node != nil {
		c.node.ChargeComm(c.model.MessageTime(c.store.BrickBytes()))
	}
	data := c.store.fetch(id)
	el := c.lru.PushFront(&cacheEntry{id: id, data: data})
	c.cache[id] = el
	for c.lru.Len() > c.capacity {
		old := c.lru.Back()
		c.lru.Remove(old)
		delete(c.cache, old.Value.(*cacheEntry).id)
	}
	return data
}

// at reads one lattice point through the cache.
func (c *Client) at(x, y, z int) complex128 {
	id := c.store.brickOf(x, y, z)
	data := c.brick(id)
	e := c.store.Edge
	return data[((x%e)*e+y%e)*e+z%e]
}

// Sample interpolates the spectrum at a continuous image-frequency
// point, exactly like fourier.VolumeDFT.Sample but through the brick
// cache.
func (c *Client) Sample(f geom.Vec3, interp fourier.Interpolation) complex128 {
	dft := c.store.dft
	if pad := dft.Pad(); pad != 1 {
		s := float64(pad)
		f = geom.Vec3{X: f.X * s, Y: f.Y * s, Z: f.Z * s}
	}
	l := dft.L
	ny := float64(l) / 2
	if f.X < -ny || f.X > ny || f.Y < -ny || f.Y > ny || f.Z < -ny || f.Z > ny {
		return 0
	}
	if interp == fourier.Nearest {
		return c.at(wrap(int(math.Round(f.X)), l), wrap(int(math.Round(f.Y)), l), wrap(int(math.Round(f.Z)), l))
	}
	x0, y0, z0 := int(math.Floor(f.X)), int(math.Floor(f.Y)), int(math.Floor(f.Z))
	fx, fy, fz := f.X-float64(x0), f.Y-float64(y0), f.Z-float64(z0)
	var sum complex128
	for dx := 0; dx <= 1; dx++ {
		wx := 1 - fx
		if dx == 1 {
			wx = fx
		}
		if wx == 0 {
			continue
		}
		xi := wrap(x0+dx, l)
		for dy := 0; dy <= 1; dy++ {
			wy := 1 - fy
			if dy == 1 {
				wy = fy
			}
			if wy == 0 {
				continue
			}
			yi := wrap(y0+dy, l)
			for dz := 0; dz <= 1; dz++ {
				wz := 1 - fz
				if dz == 1 {
					wz = fz
				}
				if wz == 0 {
					continue
				}
				zi := wrap(z0+dz, l)
				sum += complex(wx*wy*wz, 0) * c.at(xi, yi, zi)
			}
		}
	}
	return sum
}

func wrap(f, l int) int {
	f %= l
	if f < 0 {
		f += l
	}
	return f
}

// ExtractSlice computes a central section through the brick cache —
// functionally identical to fourier.VolumeDFT.ExtractSlice, but every
// lattice access pays the demand-paging cost model.
func (c *Client) ExtractSlice(o geom.Euler, rmax float64, interp fourier.Interpolation) *volume.CImage {
	l := c.store.dft.SrcL
	out := volume.NewCImage(l)
	m := o.Matrix()
	xAxis, yAxis := m.Col(0), m.Col(1)
	rmax = math.Min(rmax, float64(l)/2)
	ri := int(rmax)
	r2 := rmax * rmax
	for h := -ri; h <= ri; h++ {
		fh := float64(h)
		for k := -ri; k <= ri; k++ {
			fk := float64(k)
			if fh*fh+fk*fk > r2 {
				continue
			}
			f := xAxis.Scale(fh).Add(yAxis.Scale(fk))
			out.Data[wrap(h, l)*l+wrap(k, l)] = c.Sample(f, interp)
		}
	}
	return out
}

// HitRate returns the cache hit fraction observed so far.
func (c *Client) HitRate() float64 {
	total := c.Hits + c.Misses
	if total == 0 {
		return 0
	}
	return float64(c.Hits) / float64(total)
}
