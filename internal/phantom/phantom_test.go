package phantom

import (
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/volume"
)

func TestRasterizeSingleBlob(t *testing.T) {
	l := 16
	g := Rasterize(l, []Blob{{Center: geom.Vec3{}, Sigma: 2, Amplitude: 3}})
	c := l / 2
	if math.Abs(g.At(c, c, c)-3) > 1e-9 {
		t.Fatalf("blob peak %g, want 3", g.At(c, c, c))
	}
	// One sigma away: 3·exp(−1/2).
	want := 3 * math.Exp(-0.5)
	if math.Abs(g.At(c+2, c, c)-want) > 1e-9 {
		t.Fatalf("blob at 1σ = %g, want %g", g.At(c+2, c, c), want)
	}
	// Far corner untouched (cutoff at 4σ).
	if g.At(0, 0, 0) != 0 {
		t.Fatal("blob leaked past cutoff")
	}
}

func TestRasterizeOffsetBlob(t *testing.T) {
	l := 16
	g := Rasterize(l, []Blob{{Center: geom.Vec3{X: 3, Y: -2, Z: 1}, Sigma: 1.5, Amplitude: 1}})
	c := l / 2
	if math.Abs(g.At(c+3, c-2, c+1)-1) > 1e-9 {
		t.Fatal("offset blob peak misplaced")
	}
}

func TestSymmetrizeOrbitCount(t *testing.T) {
	g := geom.Icosahedral()
	// A generic seed yields 60 copies.
	seeds := []Blob{{Center: geom.Vec3{X: 5, Y: 2, Z: 7}, Sigma: 1, Amplitude: 1}}
	out := Symmetrize(g, seeds)
	if len(out) != 60 {
		t.Fatalf("generic orbit size %d, want 60", len(out))
	}
	// A seed on a 5-fold axis collapses to 12 vertices.
	phi := (1 + math.Sqrt(5)) / 2
	axis := geom.Vec3{X: 0, Y: 1, Z: phi}.Unit().Scale(8)
	out = Symmetrize(g, []Blob{{Center: axis, Sigma: 1, Amplitude: 1}})
	if len(out) != 12 {
		t.Fatalf("five-fold-axis orbit size %d, want 12", len(out))
	}
}

func TestSindbisLikeIsIcosahedral(t *testing.T) {
	l := 32
	m := SindbisLike(l)
	g := geom.Icosahedral()
	// Rotating by any group element must leave the map essentially
	// unchanged (resampling error only).
	for _, idx := range []int{1, 17, 42} {
		rot := m.Rotate([3][3]float64(g.Elements[idx]))
		if cc := volume.Correlation(m, rot); cc < 0.95 {
			t.Fatalf("element %d: symmetry correlation %.4f", idx, cc)
		}
	}
	// Rotating by a non-group rotation must change it noticeably.
	rot := m.Rotate([3][3]float64(geom.RotZ(geom.DegToRad(37))))
	if cc := volume.Correlation(m, rot); cc > 0.9 {
		t.Fatalf("non-symmetry rotation left map invariant (cc=%.4f)", cc)
	}
}

func TestReoLikeHasTwoShells(t *testing.T) {
	l := 48
	m := ReoLike(l)
	c := l / 2
	// Radial mass profile must show density at both shell radii and a
	// gap between them.
	radial := make([]float64, l/2)
	counts := make([]int, l/2)
	for x := 0; x < l; x++ {
		for y := 0; y < l; y++ {
			for z := 0; z < l; z++ {
				dx, dy, dz := float64(x-c), float64(y-c), float64(z-c)
				r := int(math.Sqrt(dx*dx + dy*dy + dz*dz))
				if r < l/2 {
					radial[r] += m.At(x, y, z)
					counts[r]++
				}
			}
		}
	}
	for i := range radial {
		if counts[i] > 0 {
			radial[i] /= float64(counts[i])
		}
	}
	inner, outer := int(0.22*float64(l)), int(0.36*float64(l))
	mid := (inner + outer) / 2
	if radial[inner] <= radial[mid] || radial[outer] <= radial[mid] {
		t.Fatalf("no double-shell structure: inner=%g mid=%g outer=%g",
			radial[inner], radial[mid], radial[outer])
	}
}

func TestAsymmetricHasNoSymmetry(t *testing.T) {
	m := Asymmetric(32, 12, 3)
	g := geom.Icosahedral()
	for _, idx := range []int{1, 30} {
		rot := m.Rotate([3][3]float64(g.Elements[idx]))
		if cc := volume.Correlation(m, rot); cc > 0.8 {
			t.Fatalf("asymmetric phantom invariant under icosahedral element %d (cc=%.4f)", idx, cc)
		}
	}
}

func TestAsymmetricDeterministic(t *testing.T) {
	a := Asymmetric(16, 5, 7)
	b := Asymmetric(16, 5, 7)
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("phantom not deterministic for fixed seed")
		}
	}
	cdiff := Asymmetric(16, 5, 8)
	same := true
	for i := range a.Data {
		if a.Data[i] != cdiff.Data[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds gave identical phantoms")
	}
}

func TestCnSymmetric(t *testing.T) {
	m := CnSymmetric(32, 4, 5)
	// Invariant under 90° about Z.
	rot := m.Rotate([3][3]float64(geom.RotZ(math.Pi / 2)))
	if cc := volume.Correlation(m, rot); cc < 0.95 {
		t.Fatalf("C4 phantom not 4-fold symmetric (cc=%.4f)", cc)
	}
	// Not invariant under 45°.
	rot45 := m.Rotate([3][3]float64(geom.RotZ(math.Pi / 4)))
	if cc := volume.Correlation(m, rot45); cc > 0.9 {
		t.Fatalf("C4 phantom invariant under 45° (cc=%.4f)", cc)
	}
}

func TestParticleFitsInBox(t *testing.T) {
	for _, m := range []*volume.Grid{SindbisLike(32), ReoLike(32), Asymmetric(32, 10, 1)} {
		// Density at the box faces must be negligible relative to peak.
		_, max, _, _ := m.Stats()
		edgeMax := 0.0
		l := m.L
		for a := 0; a < l; a++ {
			for b := 0; b < l; b++ {
				for _, v := range []float64{m.At(0, a, b), m.At(l-1, a, b), m.At(a, 0, b), m.At(a, l-1, b), m.At(a, b, 0), m.At(a, b, l-1)} {
					if v > edgeMax {
						edgeMax = v
					}
				}
			}
		}
		if edgeMax > 0.05*max {
			t.Fatalf("particle touches box wall: edge %g vs peak %g", edgeMax, max)
		}
	}
}

func TestHelicalRod(t *testing.T) {
	l := 32
	rise, twist := 2.0, 36.0
	m := HelicalRod(l, rise, twist)
	// The rod must be invariant under its own screw operation:
	// rotate by the twist and shift by the rise along Z.
	rot := m.Rotate([3][3]float64(geom.RotZ(geom.DegToRad(twist))))
	// Shift rot up by `rise` voxels along Z and compare the overlap
	// region.
	var num, da, db float64
	for x := 0; x < l; x++ {
		for y := 0; y < l; y++ {
			for z := 0; z < l-int(rise); z++ {
				a := m.At(x, y, z+int(rise))
				b := rot.At(x, y, z)
				num += a * b
				da += a * a
				db += b * b
			}
		}
	}
	cc := num / math.Sqrt(da*db)
	if cc < 0.9 {
		t.Fatalf("screw-symmetry correlation %.3f", cc)
	}
	// But it must NOT be invariant under the twist alone.
	if cc2 := volume.Correlation(m, rot); cc2 > 0.9 {
		t.Fatalf("rod invariant under rotation without rise (cc=%.3f)", cc2)
	}
	// The rod is elongated: mass spread along Z exceeds spread in X.
	var mz, mx, tot float64
	c := float64(l / 2)
	for x := 0; x < l; x++ {
		for y := 0; y < l; y++ {
			for z := 0; z < l; z++ {
				v := m.At(x, y, z)
				tot += v
				mz += v * (float64(z) - c) * (float64(z) - c)
				mx += v * (float64(x) - c) * (float64(x) - c)
			}
		}
	}
	if mz/tot <= mx/tot {
		t.Fatal("rod not elongated along Z")
	}
}
