// Package phantom builds synthetic ground-truth electron-density maps
// that stand in for the paper's experimental virus structures. The
// real datasets (cryo-TEM micrographs of Sindbis and reovirus) are not
// reproducible, but the refinement algorithm only ever sees 2-D views
// of *some* density, so a known synthetic particle exercises the same
// code paths while additionally providing ground-truth orientations to
// score against.
//
// All particles are sums of Gaussian blobs. Capsid models replicate a
// handful of seed blobs under a point-symmetry group, which is how
// real capsids achieve genetic economy — many copies of identical
// subunits — and what gives the maps their detectable symmetry.
package phantom

import (
	"math"
	"math/rand"

	"repro/internal/geom"
	"repro/internal/volume"
)

// Blob is one Gaussian density unit. Center is in voxels relative to
// the grid centre.
type Blob struct {
	Center    geom.Vec3
	Sigma     float64
	Amplitude float64
}

// Rasterize renders blobs onto an l³ grid. Each blob only touches
// voxels within 4σ of its centre, so rendering is fast even for many
// subunits.
func Rasterize(l int, blobs []Blob) *volume.Grid {
	g := volume.NewGrid(l)
	c := float64(l / 2)
	for _, b := range blobs {
		cx, cy, cz := b.Center.X+c, b.Center.Y+c, b.Center.Z+c
		r := 4 * b.Sigma
		x0, x1 := clamp(int(math.Floor(cx-r)), l), clamp(int(math.Ceil(cx+r))+1, l)
		y0, y1 := clamp(int(math.Floor(cy-r)), l), clamp(int(math.Ceil(cy+r))+1, l)
		z0, z1 := clamp(int(math.Floor(cz-r)), l), clamp(int(math.Ceil(cz+r))+1, l)
		inv := 1 / (2 * b.Sigma * b.Sigma)
		r2 := r * r
		for x := x0; x < x1; x++ {
			dx := float64(x) - cx
			for y := y0; y < y1; y++ {
				dy := float64(y) - cy
				for z := z0; z < z1; z++ {
					dz := float64(z) - cz
					d2 := dx*dx + dy*dy + dz*dz
					if d2 > r2 {
						continue
					}
					g.Add(x, y, z, b.Amplitude*math.Exp(-d2*inv))
				}
			}
		}
	}
	return g
}

func clamp(v, max int) int {
	if v < 0 {
		return 0
	}
	if v > max {
		return max
	}
	return v
}

// Symmetrize replicates each seed blob under every rotation of the
// group, producing the full particle from its asymmetric unit.
// Orbit positions that coincide (seeds on a symmetry axis) are merged
// so amplitudes do not pile up.
func Symmetrize(g *geom.Group, seeds []Blob) []Blob {
	var out []Blob
	const mergeDist = 1e-6
	for _, s := range seeds {
		var orbit []Blob
		for _, e := range g.Elements {
			p := e.Apply(s.Center)
			dup := false
			for _, o := range orbit {
				if o.Center.Sub(p).Norm() < mergeDist {
					dup = true
					break
				}
			}
			if !dup {
				orbit = append(orbit, Blob{Center: p, Sigma: s.Sigma, Amplitude: s.Amplitude})
			}
		}
		out = append(out, orbit...)
	}
	return out
}

// shellSeeds deterministically places n seed blobs at the given radius
// with jittered positions drawn from rng, keeping them off symmetry
// axes so the orbit has full size.
func shellSeeds(rng *rand.Rand, n int, radius, sigma, amp float64) []Blob {
	seeds := make([]Blob, 0, n)
	for i := 0; i < n; i++ {
		// Quasi-random direction.
		var d geom.Vec3
		for d.Norm() < 1e-3 {
			d = geom.Vec3{X: rng.NormFloat64(), Y: rng.NormFloat64(), Z: rng.NormFloat64()}
		}
		seeds = append(seeds, Blob{
			Center:    d.Unit().Scale(radius),
			Sigma:     sigma,
			Amplitude: amp,
		})
	}
	return seeds
}

// SindbisLike builds an icosahedral single-shell particle with surface
// spikes, loosely modeled on an alphavirus like Sindbis: a capsid
// shell of symmetry-replicated subunits at ≈0.30·l radius plus spike
// clusters on the twelve five-fold vertices.
func SindbisLike(l int) *volume.Grid {
	rng := rand.New(rand.NewSource(1))
	g := geom.Icosahedral()
	shell := 0.30 * float64(l)
	// Subunit size is fixed in pixels, not proportional to the box:
	// real data is sampled so that protein detail sits near Nyquist,
	// and a larger box should resolve more detail, not bigger blobs.
	sigma := subunitSigma(l)
	seeds := shellSeeds(rng, 3, shell, sigma, 1.0)
	// Spikes on the 5-fold axes: one seed on the (0, 1, φ) axis;
	// coincident orbit copies merge to the 12 vertices.
	phi := (1 + math.Sqrt(5)) / 2
	spikeDir := geom.Vec3{X: 0, Y: 1, Z: phi}.Unit()
	seeds = append(seeds, Blob{
		Center:    spikeDir.Scale(0.40 * float64(l)),
		Sigma:     sigma,
		Amplitude: 1.2,
	})
	return Rasterize(l, Symmetrize(g, seeds))
}

// ReoLike builds an icosahedral double-shelled particle loosely
// modeled on mammalian orthoreovirus: an outer capsid at ≈0.36·l and
// an inner core at ≈0.22·l, each of symmetry-replicated subunits.
func ReoLike(l int) *volume.Grid {
	rng := rand.New(rand.NewSource(2))
	g := geom.Icosahedral()
	fl := float64(l)
	sigma := subunitSigma(l)
	seeds := shellSeeds(rng, 3, 0.36*fl, sigma, 1.0)
	seeds = append(seeds, shellSeeds(rng, 2, 0.22*fl, sigma*1.3, 0.8)...)
	return Rasterize(l, Symmetrize(g, seeds))
}

// Asymmetric builds a particle with no symmetry (C1): n random blobs
// within 0.35·l of the centre. It models the asymmetric objects whose
// structure determination motivates the paper's method.
func Asymmetric(l, n int, seed int64) *volume.Grid {
	rng := rand.New(rand.NewSource(seed))
	fl := float64(l)
	blobs := make([]Blob, 0, n)
	for i := 0; i < n; i++ {
		var d geom.Vec3
		for d.Norm() < 1e-3 {
			d = geom.Vec3{X: rng.NormFloat64(), Y: rng.NormFloat64(), Z: rng.NormFloat64()}
		}
		r := 0.35 * fl * math.Cbrt(rng.Float64())
		blobs = append(blobs, Blob{
			Center:    d.Unit().Scale(r),
			Sigma:     subunitSigma(l) * (0.9 + 0.8*rng.Float64()),
			Amplitude: 0.5 + rng.Float64(),
		})
	}
	return Rasterize(l, blobs)
}

// CnSymmetric builds a particle with exact C_n symmetry about the Z
// axis, used to exercise symmetry detection for cyclic groups.
func CnSymmetric(l, n int, seed int64) *volume.Grid {
	rng := rand.New(rand.NewSource(seed))
	g := geom.Cyclic(n)
	fl := float64(l)
	seeds := shellSeeds(rng, 4, 0.3*fl, math.Max(subunitSigma(l), 0.04*fl), 1.0)
	return Rasterize(l, Symmetrize(g, seeds))
}

// subunitSigma is the Gaussian radius of one protein subunit in
// pixels. It scales with the box so capsid shells stay smooth and
// connected (sharper blobs turn the shell into a speckle pattern whose
// rotational self-similarity creates spurious matching minima).
func subunitSigma(l int) float64 {
	return math.Max(0.9, 0.032*float64(l))
}

// HelicalRod builds a particle with helical symmetry about the Z
// axis, loosely modeled on rod viruses like TMV: subunits wound on a
// helix of the given rise (voxels per subunit along Z) and twist
// (degrees per subunit), spanning ≈70% of the box height. Helical
// particles motivate the reconstruction methods of the paper's ref
// [9]; here the phantom exercises orientation refinement on an
// elongated particle and symmetry detection's behaviour on
// non-point-group symmetry.
func HelicalRod(l int, rise, twistDeg float64) *volume.Grid {
	fl := float64(l)
	radius := 0.18 * fl
	sigma := subunitSigma(l)
	halfSpan := 0.35 * fl
	var blobs []Blob
	for i := 0; ; i++ {
		z := -halfSpan + float64(i)*rise
		if z > halfSpan {
			break
		}
		angle := geom.DegToRad(twistDeg * float64(i))
		blobs = append(blobs, Blob{
			Center: geom.Vec3{
				X: radius * math.Cos(angle),
				Y: radius * math.Sin(angle),
				Z: z,
			},
			Sigma:     sigma,
			Amplitude: 1,
		})
		// An inner strand models the packaged nucleic acid.
		blobs = append(blobs, Blob{
			Center: geom.Vec3{
				X: 0.4 * radius * math.Cos(angle+1.2),
				Y: 0.4 * radius * math.Sin(angle+1.2),
				Z: z,
			},
			Sigma:     sigma * 0.8,
			Amplitude: 0.5,
		})
	}
	return Rasterize(l, blobs)
}
