package cluster

import (
	"math"
	"sync/atomic"
	"testing"
)

func testModel() CostModel {
	return CostModel{LatencySec: 1e-5, BytesPerSec: 1e8, FlopsPerSec: 1e8}
}

func TestPointToPoint(t *testing.T) {
	c := New(2, testModel())
	stats := c.Run(func(n *Node) {
		if n.Rank == 0 {
			n.Send(1, 7, []float64{1, 2, 3}, 24)
		} else {
			got := n.Recv(0, 7).([]float64)
			if len(got) != 3 || got[2] != 3 {
				t.Error("payload corrupted")
			}
		}
	})
	// Receiver's clock must include latency + transfer time.
	want := testModel().MessageTime(24)
	if stats[1].Elapsed < want {
		t.Errorf("receiver elapsed %g < message time %g", stats[1].Elapsed, want)
	}
	if stats[0].BytesSent != 24 || stats[0].Messages != 1 {
		t.Errorf("sender stats: %+v", stats[0])
	}
}

func TestComputeAdvancesClock(t *testing.T) {
	c := New(1, testModel())
	stats := c.Run(func(n *Node) {
		n.Compute(1e8) // exactly one second at 1e8 flop/s
	})
	if math.Abs(stats[0].Elapsed-1) > 1e-12 {
		t.Fatalf("elapsed %g, want 1", stats[0].Elapsed)
	}
	if stats[0].ComputeTime != stats[0].Elapsed {
		t.Fatal("compute time not attributed")
	}
}

func TestBarrierSynchronizesClocks(t *testing.T) {
	c := New(4, testModel())
	stats := c.Run(func(n *Node) {
		n.Compute(float64(n.Rank) * 1e8) // rank r works r seconds
		n.Barrier("sync")
	})
	// All clocks must be ≥ the slowest rank (3 s).
	for _, s := range stats {
		if s.Elapsed < 3 {
			t.Fatalf("rank %d elapsed %g, want ≥3", s.Rank, s.Elapsed)
		}
	}
	// The slow rank's wait is attributed to comm on fast ranks.
	if stats[0].CommTime < 3-1e-9 {
		t.Errorf("rank 0 comm time %g, want ≈3", stats[0].CommTime)
	}
}

func TestBcast(t *testing.T) {
	c := New(5, testModel())
	c.Run(func(n *Node) {
		var v interface{}
		if n.Rank == 2 {
			v = "payload"
		}
		got := n.Bcast("b", 2, v, 8)
		if got.(string) != "payload" {
			t.Errorf("rank %d got %v", n.Rank, got)
		}
	})
}

func TestAllGather(t *testing.T) {
	c := New(4, testModel())
	c.Run(func(n *Node) {
		all := n.AllGather("ag", n.Rank*10, 8)
		for i, v := range all {
			if v.(int) != i*10 {
				t.Errorf("rank %d: slot %d = %v", n.Rank, i, v)
			}
		}
	})
}

func TestAllToAll(t *testing.T) {
	c := New(3, testModel())
	c.Run(func(n *Node) {
		parts := make([]interface{}, 3)
		for i := range parts {
			parts[i] = n.Rank*100 + i // destined for rank i
		}
		got := n.AllToAll("a2a", parts, 8)
		for src, v := range got {
			want := src*100 + n.Rank
			if v.(int) != want {
				t.Errorf("rank %d from %d: got %v want %d", n.Rank, src, v, want)
			}
		}
	})
}

func TestScatterGather(t *testing.T) {
	c := New(4, testModel())
	c.Run(func(n *Node) {
		var parts []interface{}
		if n.Rank == 0 {
			parts = []interface{}{"a", "b", "c", "d"}
		}
		mine := n.Scatter("s", 0, parts, 8).(string)
		want := string(rune('a' + n.Rank))
		if mine != want {
			t.Errorf("rank %d scattered %q, want %q", n.Rank, mine, want)
		}
		all := n.Gather("g", 0, mine+"!", 8)
		if n.Rank == 0 {
			for i, v := range all {
				if v.(string) != string(rune('a'+i))+"!" {
					t.Errorf("gather slot %d = %v", i, v)
				}
			}
		} else if all != nil {
			t.Errorf("non-root rank %d got gather result", n.Rank)
		}
	})
}

func TestReduceMaxSum(t *testing.T) {
	c := New(6, testModel())
	c.Run(func(n *Node) {
		if got := n.ReduceMax("m", float64(n.Rank)); got != 5 {
			t.Errorf("ReduceMax = %g", got)
		}
		if got := n.ReduceSum("s", 1); got != 6 {
			t.Errorf("ReduceSum = %g", got)
		}
	})
}

func TestCollectivesInLoop(t *testing.T) {
	// Repeated collectives under the same name must work via
	// generations.
	c := New(3, testModel())
	c.Run(func(n *Node) {
		for i := 0; i < 50; i++ {
			sum := n.ReduceSum("loop", float64(i))
			if sum != float64(3*i) {
				t.Errorf("iteration %d: sum %g", i, sum)
				return
			}
		}
	})
}

func TestAllRanksRun(t *testing.T) {
	var count int64
	c := New(8, testModel())
	c.Run(func(n *Node) {
		atomic.AddInt64(&count, 1)
	})
	if count != 8 {
		t.Fatalf("%d ranks ran, want 8", count)
	}
}

func TestScatterTimingMonotoneInRank(t *testing.T) {
	// The master-distributes model serves ranks sequentially: later
	// ranks wait longer.
	c := New(4, testModel())
	stats := c.Run(func(n *Node) {
		var parts []interface{}
		if n.Rank == 0 {
			parts = []interface{}{0, 1, 2, 3}
		}
		n.Scatter("st", 0, parts, 1000)
	})
	if !(stats[1].Elapsed < stats[2].Elapsed && stats[2].Elapsed < stats[3].Elapsed) {
		t.Fatalf("scatter service times not monotone: %v %v %v",
			stats[1].Elapsed, stats[2].Elapsed, stats[3].Elapsed)
	}
}

func TestMessageTimeModel(t *testing.T) {
	m := CostModel{LatencySec: 2, BytesPerSec: 10}
	if got := m.MessageTime(30); math.Abs(got-5) > 1e-12 {
		t.Fatalf("MessageTime = %g, want 5", got)
	}
}

func TestMaxElapsed(t *testing.T) {
	s := []Stats{{Elapsed: 1}, {Elapsed: 7}, {Elapsed: 3}}
	if MaxElapsed(s) != 7 {
		t.Fatal("MaxElapsed wrong")
	}
}

func TestSingleNodeCollectives(t *testing.T) {
	c := New(1, testModel())
	c.Run(func(n *Node) {
		n.Barrier("b")
		if got := n.Bcast("bc", 0, 42, 8).(int); got != 42 {
			t.Errorf("bcast on P=1: %d", got)
		}
		all := n.AllGather("ag", 9, 8)
		if len(all) != 1 || all[0].(int) != 9 {
			t.Errorf("allgather on P=1: %v", all)
		}
	})
}
