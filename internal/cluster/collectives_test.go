package cluster

import (
	"testing"
)

// partition mirrors parfft.Partition (kept local to avoid an import
// cycle): n items into p contiguous ranges, range i = [zs[i], zs[i+1]).
func partition(n, p int) []int {
	zs := make([]int, p+1)
	for i := 0; i <= p; i++ {
		zs[i] = i * n / p
	}
	return zs
}

// TestAllToAllUnevenPartitions drives the collective with the exact
// payload shape of the slab DFT's global exchange (step a.4) when l is
// not divisible by P: ranks own slabs of different sizes, so the
// blocks moving between each pair differ in length. Every element must
// land at the right rank in the right order.
func TestAllToAllUnevenPartitions(t *testing.T) {
	const l, p = 10, 4 // slabs of 2 or 3 planes
	zs := partition(l, p)
	c := New(p, testModel())
	c.Run(func(n *Node) {
		mine := zs[n.Rank+1] - zs[n.Rank]
		parts := make([]interface{}, p)
		for j := 0; j < p; j++ {
			theirs := zs[j+1] - zs[j]
			block := make([]complex128, mine*theirs)
			for i := range block {
				block[i] = complex(float64(n.Rank), float64(j*1000+i))
			}
			parts[j] = block
		}
		got := n.AllToAll("uneven", parts, 16*mine)
		for src := 0; src < p; src++ {
			srcN := zs[src+1] - zs[src]
			block := got[src].([]complex128)
			if len(block) != srcN*mine {
				t.Errorf("rank %d from %d: block length %d, want %d", n.Rank, src, len(block), srcN*mine)
				continue
			}
			for i, v := range block {
				if real(v) != float64(src) || imag(v) != float64(n.Rank*1000+i) {
					t.Errorf("rank %d from %d element %d corrupted: %v", n.Rank, src, i, v)
					break
				}
			}
		}
	})
}

// TestAllToAllMorePartsThanItems is the P > l degenerate case: some
// ranks own zero planes and exchange zero-length blocks. The
// collective must still complete and deliver empty (but non-nil)
// payloads.
func TestAllToAllMorePartsThanItems(t *testing.T) {
	const l, p = 3, 5
	zs := partition(l, p)
	c := New(p, testModel())
	c.Run(func(n *Node) {
		mine := zs[n.Rank+1] - zs[n.Rank]
		parts := make([]interface{}, p)
		for j := 0; j < p; j++ {
			block := make([]int, mine)
			for i := range block {
				block[i] = n.Rank*10 + j
			}
			parts[j] = block
		}
		got := n.AllToAll("degenerate", parts, 8*mine)
		for src := 0; src < p; src++ {
			srcN := zs[src+1] - zs[src]
			block := got[src].([]int)
			if len(block) != srcN {
				t.Errorf("rank %d from %d: %d items, want %d", n.Rank, src, len(block), srcN)
			}
			for _, v := range block {
				if v != src*10+n.Rank {
					t.Errorf("rank %d from %d: bad element %d", n.Rank, src, v)
				}
			}
		}
	})
}

// TestAllGatherUnevenContributions reassembles a full array from
// uneven per-rank slices — the step a.6 replication under uneven
// slabs — and checks order and completeness on every rank.
func TestAllGatherUnevenContributions(t *testing.T) {
	const l, p = 11, 3
	zs := partition(l, p)
	c := New(p, testModel())
	c.Run(func(n *Node) {
		mine := make([]int, zs[n.Rank+1]-zs[n.Rank])
		for i := range mine {
			mine[i] = zs[n.Rank] + i
		}
		slots := n.AllGather("uneven", mine, 8*len(mine))
		var full []int
		for _, s := range slots {
			full = append(full, s.([]int)...)
		}
		if len(full) != l {
			t.Fatalf("rank %d assembled %d items, want %d", n.Rank, len(full), l)
		}
		for i, v := range full {
			if v != i {
				t.Fatalf("rank %d: item %d = %d", n.Rank, i, v)
			}
		}
	})
}

// TestAllToAllAllGatherSingleNode: P = 1 collectives are pure
// self-delivery with no communication rounds charged.
func TestAllToAllAllGatherSingleNode(t *testing.T) {
	c := New(1, testModel())
	stats := c.Run(func(n *Node) {
		got := n.AllToAll("self", []interface{}{42}, 8)
		if len(got) != 1 || got[0].(int) != 42 {
			t.Errorf("single-node AllToAll: %v", got)
		}
		all := n.AllGather("self", "x", 8)
		if len(all) != 1 || all[0].(string) != "x" {
			t.Errorf("single-node AllGather: %v", all)
		}
	})
	// Ring algorithms cost P−1 = 0 rounds: no time, no messages.
	if s := stats[0]; s.CommTime != 0 || s.Messages != 0 || s.BytesSent != 0 {
		t.Fatalf("single-node collectives charged communication: %+v", s)
	}
}

// TestCollectiveTimingSynchronized: after an all-to-all, every rank's
// clock is the same analytic value — max entry time plus P−1 ring
// messages — regardless of which goroutine arrived last.
func TestCollectiveTimingSynchronized(t *testing.T) {
	const p = 4
	m := testModel()
	c := New(p, m)
	clocks := make([]float64, p)
	c.Run(func(n *Node) {
		// Stagger entry: rank r computes r "seconds" first.
		n.Sleep(float64(n.Rank))
		parts := make([]interface{}, p)
		for i := range parts {
			parts[i] = 0
		}
		n.AllToAll("sync", parts, 100)
		clocks[n.Rank] = n.Clock()
	})
	want := float64(p-1) + float64(p-1)*m.MessageTime(100)
	for r, got := range clocks {
		if diff := got - want; diff > 1e-12 || diff < -1e-12 {
			t.Fatalf("rank %d clock %g, want %g", r, got, want)
		}
	}
}

// TestScatterNonZeroRoot: the sequential root-service cost must follow
// rank distance from the root, wrapping modulo P.
func TestScatterNonZeroRoot(t *testing.T) {
	const p, root = 4, 2
	m := testModel()
	c := New(p, m)
	clocks := make([]float64, p)
	c.Run(func(n *Node) {
		var parts []interface{}
		if n.Rank == root {
			parts = make([]interface{}, p)
			for i := range parts {
				parts[i] = i * i
			}
		}
		got := n.Scatter("rooted", root, parts, 64).(int)
		if got != n.Rank*n.Rank {
			t.Errorf("rank %d scattered %d", n.Rank, got)
		}
		clocks[n.Rank] = n.Clock()
	})
	msg := m.MessageTime(64)
	for r := 0; r < p; r++ {
		pos := (r - root + p) % p
		want := float64(pos) * msg
		if pos == 0 {
			want = float64(p-1) * msg // root pays for serving everyone
		}
		if diff := clocks[r] - want; diff > 1e-12 || diff < -1e-12 {
			t.Fatalf("rank %d clock %g, want %g", r, clocks[r], want)
		}
	}
}

// TestAllToAllStatsAccounting: each rank sends P−1 messages of the
// declared size, and the exchanged byte count lands in Stats.
func TestAllToAllStatsAccounting(t *testing.T) {
	const p, bytesEach = 3, 128
	c := New(p, testModel())
	stats := c.Run(func(n *Node) {
		parts := make([]interface{}, p)
		for i := range parts {
			parts[i] = i
		}
		n.AllToAll("stats", parts, bytesEach)
	})
	for _, s := range stats {
		if s.Messages != p-1 {
			t.Errorf("rank %d sent %d messages, want %d", s.Rank, s.Messages, p-1)
		}
		if s.BytesSent != int64(bytesEach)*(p-1) {
			t.Errorf("rank %d sent %d bytes, want %d", s.Rank, s.BytesSent, int64(bytesEach)*(p-1))
		}
		if s.CommTime <= 0 || s.CommTime != s.Elapsed {
			t.Errorf("rank %d comm time %g of %g", s.Rank, s.CommTime, s.Elapsed)
		}
	}
}
