package cluster

import (
	"fmt"
	"math"
)

// Collectives. Every rank must call the same collective in the same
// order; calls are matched by an internal sequence name. Timing
// follows standard algorithm models: binomial trees for barrier and
// broadcast (⌈log₂P⌉ rounds), a ring for all-gather and all-to-all
// (P−1 rounds), and sequential root service for scatter/gather —
// consistent with the master-node I/O distribution scheme of §3 of
// the paper ("a master node typically reads an entire data file and
// distributes data segments to the nodes as needed").

func logRounds(p int) float64 {
	if p <= 1 {
		return 0
	}
	return math.Ceil(math.Log2(float64(p)))
}

// chargeComm advances the node clock by sec, attributing it to
// communication.
func (n *Node) chargeComm(sec float64) {
	n.clock += sec
	n.comm += sec
}

// syncTo raises the node clock to at least t, attributing the wait to
// communication.
func (n *Node) syncTo(t float64) {
	if t > n.clock {
		n.comm += t - n.clock
		n.clock = t
	}
}

// Barrier blocks until every rank arrives; clocks synchronize to the
// latest arrival plus a ⌈log₂P⌉-round latency cost.
func (n *Node) Barrier(name string) {
	_, max := n.exchange("barrier:"+name, nil)
	n.syncTo(max + logRounds(n.c.P)*n.c.Model.LatencySec)
}

// Bcast distributes the root's value to every rank. bytes is the
// serialized payload size. Returns the root's value on every rank.
func (n *Node) Bcast(name string, root int, value interface{}, bytes int) interface{} {
	slots, max := n.exchange("bcast:"+name, value)
	cost := logRounds(n.c.P) * n.c.Model.MessageTime(bytes)
	n.syncTo(max + cost)
	if n.Rank == root {
		n.sent += int64(bytes)
		n.nMsgs++
	}
	return slots[root]
}

// AllGather collects one value from every rank and returns the full
// slice, indexed by rank, on every rank. bytesEach is the per-rank
// contribution size; the ring algorithm costs (P−1) messages of that
// size.
func (n *Node) AllGather(name string, value interface{}, bytesEach int) []interface{} {
	slots, max := n.exchange("allgather:"+name, value)
	cost := float64(n.c.P-1) * n.c.Model.MessageTime(bytesEach)
	n.syncTo(max + cost)
	n.sent += int64(bytesEach) * int64(n.c.P-1)
	n.nMsgs += int64(n.c.P - 1)
	return slots
}

// AllToAll exchanges a distinct value with every rank: parts[i] goes
// to rank i, and the result's element i came from rank i. This is the
// "global exchange" of the slab-decomposed 3-D DFT (paper step a.4).
// bytesEach is the size of one part.
func (n *Node) AllToAll(name string, parts []interface{}, bytesEach int) []interface{} {
	if len(parts) != n.c.P {
		panic(fmt.Sprintf("cluster: AllToAll needs %d parts, got %d", n.c.P, len(parts)))
	}
	slots, max := n.exchange("alltoall:"+name, parts)
	cost := float64(n.c.P-1) * n.c.Model.MessageTime(bytesEach)
	n.syncTo(max + cost)
	n.sent += int64(bytesEach) * int64(n.c.P-1)
	n.nMsgs += int64(n.c.P - 1)
	out := make([]interface{}, n.c.P)
	for src, s := range slots {
		theirParts := s.([]interface{})
		out[src] = theirParts[n.Rank]
	}
	return out
}

// Scatter hands parts[i] (prepared on the root) to rank i. The root
// serves receivers sequentially, so rank i pays i+1 message times —
// the master-reads-and-distributes pattern of the paper. bytesEach is
// the size of one part.
func (n *Node) Scatter(name string, root int, parts []interface{}, bytesEach int) interface{} {
	if n.Rank == root && len(parts) != n.c.P {
		panic(fmt.Sprintf("cluster: Scatter needs %d parts, got %d", n.c.P, len(parts)))
	}
	var contrib interface{}
	if n.Rank == root {
		contrib = parts
	}
	slots, max := n.exchange("scatter:"+name, contrib)
	rootParts := slots[root].([]interface{})
	// Rank order relative to root determines service position.
	pos := (n.Rank - root + n.c.P) % n.c.P
	if pos == 0 {
		// Root pays for sending everything.
		n.syncTo(max + float64(n.c.P-1)*n.c.Model.MessageTime(bytesEach))
		n.sent += int64(bytesEach) * int64(n.c.P-1)
		n.nMsgs += int64(n.c.P - 1)
	} else {
		n.syncTo(max + float64(pos)*n.c.Model.MessageTime(bytesEach))
	}
	return rootParts[n.Rank]
}

// Gather collects one value from every rank onto the root, which
// receives them sequentially. Non-root ranks receive nil. bytesEach is
// the size of one contribution.
func (n *Node) Gather(name string, root int, value interface{}, bytesEach int) []interface{} {
	slots, max := n.exchange("gather:"+name, value)
	if n.Rank == root {
		n.syncTo(max + float64(n.c.P-1)*n.c.Model.MessageTime(bytesEach))
		return slots
	}
	n.chargeComm(n.c.Model.MessageTime(bytesEach))
	n.sent += int64(bytesEach)
	n.nMsgs++
	_ = max
	return nil
}

// ReduceMax returns the maximum of every rank's value on all ranks,
// with all-reduce (tree) timing.
func (n *Node) ReduceMax(name string, value float64) float64 {
	slots, max := n.exchange("reducemax:"+name, value)
	n.syncTo(max + 2*logRounds(n.c.P)*n.c.Model.LatencySec)
	out := math.Inf(-1)
	for _, s := range slots {
		if v := s.(float64); v > out {
			out = v
		}
	}
	return out
}

// ReduceSum returns the sum of every rank's value on all ranks.
func (n *Node) ReduceSum(name string, value float64) float64 {
	slots, max := n.exchange("reducesum:"+name, value)
	n.syncTo(max + 2*logRounds(n.c.P)*n.c.Model.LatencySec)
	var out float64
	for _, s := range slots {
		out += s.(float64)
	}
	return out
}
