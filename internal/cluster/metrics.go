package cluster

import "repro/internal/obs"

// Simulated-machine traffic. These count *simulated* events — messages
// and bytes the modeled machine would move, runs launched, rendezvous
// generations completed — never wall-clock anything; the simclock
// analyzer enforces that rule for this whole package.
var (
	clusterRuns        = obs.NewCounter("cluster.runs")
	clusterMessages    = obs.NewCounter("cluster.messages")
	clusterBytes       = obs.NewCounter("cluster.bytes")
	clusterOneSided    = obs.NewCounter("cluster.one_sided")
	clusterExchanges   = obs.NewCounter("cluster.exchanges")
	clusterMessageSize = obs.NewHistogram("cluster.message_bytes", 32)
)
