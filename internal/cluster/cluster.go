// Package cluster simulates the distributed-memory parallel machine
// the paper ran on (a 64-node IBM SP2 programmed with MPI). Nodes are
// goroutines, links are channels, and every communication and compute
// operation advances a per-node simulated clock through an analytic
// LogP-style cost model, so programs built on this package really run
// in parallel (data actually moves) while also reporting the timing a
// message-passing machine of the configured speed would exhibit.
//
// The simulated clock is what reproduces the *shape* of the paper's
// Tables 1 and 2 on modern hardware: wall-clock time of the host
// machine is irrelevant; the reported seconds come from the cost
// model.
package cluster

import (
	"fmt"
	"sync"
)

// CostModel describes the communication and computation speed of the
// simulated machine.
type CostModel struct {
	// LatencySec is the fixed per-message cost in seconds.
	LatencySec float64
	// BytesPerSec is the link bandwidth.
	BytesPerSec float64
	// FlopsPerSec is the per-node computation rate used by
	// Node.Compute.
	FlopsPerSec float64
}

// SP2 approximates one processor of a late-1990s IBM SP2 node: ~40 µs
// MPI latency, ~100 MB/s link bandwidth, ~200 Mflop/s sustained.
var SP2 = CostModel{LatencySec: 40e-6, BytesPerSec: 100e6, FlopsPerSec: 200e6}

// MessageTime returns the modeled time to move n bytes point-to-point.
func (m CostModel) MessageTime(bytes int) float64 {
	return m.LatencySec + float64(bytes)/m.BytesPerSec
}

// Cluster is a set of P simulated nodes. Create one with New, then
// Run an SPMD function on it.
type Cluster struct {
	P     int
	Model CostModel

	links []chan message // links[dst*P+src]
	rvs   map[string]*rendezvous
	mu    sync.Mutex
}

type message struct {
	tag     int
	data    interface{}
	arrival float64 // simulated time at which the message is available
}

// New creates a cluster of p nodes with the given cost model.
func New(p int, model CostModel) *Cluster {
	if p < 1 {
		panic(fmt.Sprintf("cluster: invalid node count %d", p))
	}
	c := &Cluster{P: p, Model: model, rvs: map[string]*rendezvous{}}
	c.links = make([]chan message, p*p)
	for i := range c.links {
		c.links[i] = make(chan message, 64)
	}
	return c
}

// Node is the per-rank handle passed to the SPMD function. It is owned
// by a single goroutine.
type Node struct {
	Rank int
	c    *Cluster

	clock   float64 // simulated seconds since Run started
	comm    float64 // portion of clock spent communicating
	sent    int64   // bytes sent
	nMsgs   int64
	stopped bool
}

// Stats summarizes one node's simulated execution.
type Stats struct {
	Rank        int
	Elapsed     float64 // total simulated seconds
	CommTime    float64 // simulated seconds in communication
	ComputeTime float64 // Elapsed − CommTime
	BytesSent   int64
	Messages    int64
}

// Run executes fn on every rank concurrently and returns per-node
// statistics. The simulated elapsed time of the program is the maximum
// Stats.Elapsed. Run may be called repeatedly; each call starts
// clocks at zero.
func (c *Cluster) Run(fn func(*Node)) []Stats {
	clusterRuns.Inc()
	stats := make([]Stats, c.P)
	var wg sync.WaitGroup
	for r := 0; r < c.P; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			n := &Node{Rank: rank, c: c}
			fn(n)
			stats[rank] = Stats{
				Rank:        rank,
				Elapsed:     n.clock,
				CommTime:    n.comm,
				ComputeTime: n.clock - n.comm,
				BytesSent:   n.sent,
				Messages:    n.nMsgs,
			}
		}(r)
	}
	wg.Wait()
	return stats
}

// MaxElapsed returns the simulated makespan of a Run result.
func MaxElapsed(stats []Stats) float64 {
	m := 0.0
	for _, s := range stats {
		if s.Elapsed > m {
			m = s.Elapsed
		}
	}
	return m
}

// Clock returns the node's current simulated time in seconds.
func (n *Node) Clock() float64 { return n.clock }

// Compute advances the node's clock by the time the modeled CPU needs
// for the given number of floating-point operations.
func (n *Node) Compute(flops float64) {
	n.clock += flops / n.c.Model.FlopsPerSec
}

// Sleep advances the node's clock by the given simulated seconds
// (e.g. modeled disk I/O time).
func (n *Node) Sleep(sec float64) { n.clock += sec }

// ChargeComm advances the node's clock by the given simulated seconds,
// attributing them to communication. It models one-sided remote
// accesses (get/put) that need no active peer — the primitive behind
// demand-paged "shared virtual memory" designs.
func (n *Node) ChargeComm(sec float64) {
	n.clock += sec
	n.comm += sec
	n.nMsgs++
	clusterOneSided.Inc()
}

// Send transmits data of the given serialized size to rank dst with a
// tag. Data is passed by reference — simulated programs must treat
// received slices as owned by the receiver and must not mutate shared
// buffers after sending, just as MPI programs must not reuse a buffer
// before the send completes.
func (n *Node) Send(dst, tag int, data interface{}, bytes int) {
	if dst < 0 || dst >= n.c.P {
		panic(fmt.Sprintf("cluster: send to invalid rank %d", dst))
	}
	cost := n.c.Model.MessageTime(bytes)
	n.clock += cost
	n.comm += cost
	n.sent += int64(bytes)
	n.nMsgs++
	clusterMessages.Inc()
	clusterBytes.Add(int64(bytes))
	clusterMessageSize.Observe(int64(bytes))
	n.c.links[dst*n.c.P+n.Rank] <- message{tag: tag, data: data, arrival: n.clock}
}

// Recv blocks until a message with the tag arrives from rank src and
// returns its payload, advancing the clock to the message arrival
// time if that is later than now.
func (n *Node) Recv(src, tag int) interface{} {
	if src < 0 || src >= n.c.P {
		panic(fmt.Sprintf("cluster: recv from invalid rank %d", src))
	}
	link := n.c.links[n.Rank*n.c.P+src]
	msg := <-link
	if msg.tag != tag {
		panic(fmt.Sprintf("cluster: rank %d expected tag %d from %d, got %d (out-of-order traffic on one link)",
			n.Rank, tag, src, msg.tag))
	}
	before := n.clock
	if msg.arrival > n.clock {
		n.clock = msg.arrival
	}
	n.comm += n.clock - before
	return msg.data
}

// rendezvous implements a reusable all-ranks synchronization point
// that exchanges one value per rank and the maximum entry clock.
type rendezvous struct {
	mu     sync.Mutex
	cond   *sync.Cond
	gen    int
	count  int
	slots  []interface{}
	clocks []float64
	// published results of the completed generation
	outSlots []interface{}
	outMax   float64
}

func (c *Cluster) rendezvousFor(name string) *rendezvous {
	c.mu.Lock()
	defer c.mu.Unlock()
	rv, ok := c.rvs[name]
	if !ok {
		rv = &rendezvous{slots: make([]interface{}, c.P), clocks: make([]float64, c.P)}
		rv.cond = sync.NewCond(&rv.mu)
		c.rvs[name] = rv
	}
	return rv
}

// exchange blocks until all P ranks have called it with the same name,
// then returns every rank's value and the maximum entry clock.
func (n *Node) exchange(name string, value interface{}) ([]interface{}, float64) {
	clusterExchanges.Inc()
	rv := n.c.rendezvousFor(name)
	rv.mu.Lock()
	defer rv.mu.Unlock()
	gen := rv.gen
	rv.slots[n.Rank] = value
	rv.clocks[n.Rank] = n.clock
	rv.count++
	if rv.count == n.c.P {
		// Last arrival publishes and opens the next generation.
		rv.outSlots = append([]interface{}(nil), rv.slots...)
		max := rv.clocks[0]
		for _, t := range rv.clocks[1:] {
			if t > max {
				max = t
			}
		}
		rv.outMax = max
		rv.count = 0
		rv.gen++
		rv.cond.Broadcast()
		return rv.outSlots, rv.outMax
	}
	for rv.gen == gen {
		rv.cond.Wait()
	}
	return rv.outSlots, rv.outMax
}
