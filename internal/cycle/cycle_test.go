package cycle

import (
	"context"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/ctf"
	"repro/internal/fsc"
	"repro/internal/micrograph"
	"repro/internal/phantom"
	"repro/internal/reconstruct"
	"repro/internal/volume"
)

// tinyRun is a dataset + config small enough to run a full multi-cycle
// job in test time.
func tinyRun(t testing.TB, ctfOn bool) (Dataset, Config) {
	t.Helper()
	l := 16
	truth := phantom.Asymmetric(l, 8, 1)
	truth.SphericalMask(0.4 * float64(l))
	gen := micrograph.GenParams{NumViews: 6, PixelA: 2, SNR: 2, CenterJitter: 0.5, Seed: 7}
	if ctfOn {
		gen.ApplyCTF = true
		gen.DefocusGroups = 2
	}
	mds := micrograph.Generate(truth, gen)
	ds := Dataset{Views: mds.Images(), Inits: mds.PerturbedOrientations(3, 8)}
	if ctfOn {
		ds.CTFs = make([]ctf.Params, len(mds.Views))
		for i, v := range mds.Views {
			ds.CTFs[i] = v.CTF
		}
	}
	cfg := Config{
		L: l, PixelA: gen.PixelA, Levels: 2, MaxCycles: 2, CTF: ctfOn,
		Stream: core.StreamOptions{FFTWorkers: 2, RefineWorkers: 2, Depth: 2},
	}
	return ds, cfg
}

// fingerprint condenses an outcome for bit-identity comparison.
func fingerprint(t *testing.T, out *Outcome) string {
	t.Helper()
	if out.Map == nil || out.Curve == nil {
		t.Fatal("outcome missing map or curve")
	}
	s := reconstruct.MapDigest(out.Map)
	for _, p := range out.Curve.Points {
		s += fmt.Sprintf("|%x", p.CC)
	}
	for _, rec := range out.History {
		s += fmt.Sprintf("|%d:%x:%x:%v:%d", rec.Cycle, rec.ResolutionA, rec.MeanCC, rec.Improved, rec.Plateau)
	}
	for _, res := range out.Results {
		s += fmt.Sprintf("|%x,%x,%x,%x,%x", res.Orient.Theta, res.Orient.Phi, res.Orient.Omega, res.Center[0], res.Center[1])
	}
	return s
}

// TestRunDeterministic: two identical runs produce bit-identical maps,
// curves, histories, and per-view results.
func TestRunDeterministic(t *testing.T) {
	ds, cfg := tinyRun(t, false)
	a, err := Run(context.Background(), ds, cfg, State{}, Hooks{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(context.Background(), ds, cfg, State{}, Hooks{})
	if err != nil {
		t.Fatal(err)
	}
	if fingerprint(t, a) != fingerprint(t, b) {
		t.Fatal("identical runs diverged")
	}
	if a.Stopped != StopPlateau && a.Stopped != StopMaxCycles {
		t.Fatalf("unexpected stop reason %q", a.Stopped)
	}
	if len(a.History) == 0 || len(a.History) > cfg.MaxCycles {
		t.Fatalf("history length %d outside 1..%d", len(a.History), cfg.MaxCycles)
	}
	// The refinement accumulated one PerLevel entry per global level.
	wantLevels := len(a.History) * cfg.Levels
	for i, res := range a.Results {
		if len(res.PerLevel) != wantLevels {
			t.Fatalf("view %d has %d PerLevel entries, want %d", i, len(res.PerLevel), wantLevels)
		}
	}
}

// TestRunHookOrder pins the hook sequence and the global level indices
// the serving layer journals.
func TestRunHookOrder(t *testing.T) {
	ds, cfg := tinyRun(t, false)
	var trace []string
	h := Hooks{
		OnCycleStart: func(c int) error { trace = append(trace, fmt.Sprintf("start%d", c)); return nil },
		OnLevelStart: func(c, g int) error { trace = append(trace, fmt.Sprintf("lstart%d.%d", c, g)); return nil },
		OnLevel: func(c, g int, results []core.Result) error {
			trace = append(trace, fmt.Sprintf("level%d.%d", c, g))
			return nil
		},
		OnMap: func(c int, m *volume.Grid) error { trace = append(trace, fmt.Sprintf("map%d", c)); return nil },
		OnCycleEnd: func(rec CycleFSC, curve *fsc.Curve, stopped string) error {
			trace = append(trace, fmt.Sprintf("end%d.%s", rec.Cycle, stopped))
			return nil
		},
	}
	out, err := Run(context.Background(), ds, cfg, State{}, h)
	if err != nil {
		t.Fatal(err)
	}
	var want []string
	for c := 0; c < len(out.History); c++ {
		want = append(want, fmt.Sprintf("start%d", c))
		for k := 0; k < cfg.Levels; k++ {
			g := c*cfg.Levels + k
			want = append(want, fmt.Sprintf("lstart%d.%d", c, g), fmt.Sprintf("level%d.%d", c, g))
		}
		stopped := ""
		if c == len(out.History)-1 {
			stopped = out.Stopped
		}
		want = append(want, fmt.Sprintf("map%d", c), fmt.Sprintf("end%d.%s", c, stopped))
	}
	if !reflect.DeepEqual(trace, want) {
		t.Fatalf("hook trace:\n got %v\nwant %v", trace, want)
	}
}

// TestRunResumeEveryCheckpoint is the tentpole resume pin: park the run
// at every drain-poll boundary (each refinement level of each cycle and
// each pre-reconstruction point), rebuild State exactly as a journal
// replay would (results, history, and the previous cycle's map — never
// the in-flight cycle's), resume, and demand a bit-identical final
// outcome.
func TestRunResumeEveryCheckpoint(t *testing.T) {
	ds, cfg := tinyRun(t, true) // CTF on: exercise the full path
	ref, err := Run(context.Background(), ds, cfg, State{}, Hooks{})
	if err != nil {
		t.Fatal(err)
	}
	refFP := fingerprint(t, ref)

	for park := 1; ; park++ {
		// Phase 1: run until the park-th drain poll, capturing what a
		// journal would hold.
		var (
			polls      int
			levelsDone int
			results    []core.Result
			history    []CycleFSC
			maps       = map[int]*volume.Grid{}
		)
		h := Hooks{
			Drain: func() bool { polls++; return polls >= park },
			OnLevel: func(c, g int, res []core.Result) error {
				levelsDone = g + 1
				results = append([]core.Result(nil), res...)
				return nil
			},
			OnMap: func(c int, m *volume.Grid) error { maps[c] = m.Clone(); return nil },
			OnCycleEnd: func(rec CycleFSC, curve *fsc.Curve, stopped string) error {
				history = append(history, rec)
				return nil
			},
		}
		out, err := Run(context.Background(), ds, cfg, State{}, h)
		if err != nil {
			t.Fatalf("park %d: %v", park, err)
		}
		if !out.Parked {
			// The run finished before the park point — drain polls are
			// exhausted; the sweep is complete.
			if fingerprint(t, out) != refFP {
				t.Fatalf("park %d: unparked run diverged from reference", park)
			}
			break
		}

		// Phase 2: resume from the captured state.
		st := State{LevelsDone: levelsDone, Results: results, History: append([]CycleFSC(nil), history...)}
		if c := len(history); c > 0 {
			m, ok := maps[c-1]
			if !ok {
				t.Fatalf("park %d: no map for completed cycle %d", park, c-1)
			}
			st.Ref = m
		}
		res, err := Run(context.Background(), ds, cfg, st, Hooks{})
		if err != nil {
			t.Fatalf("park %d resume: %v", park, err)
		}
		if got := fingerprint(t, res); got != refFP {
			t.Fatalf("park %d: resumed run diverged from uninterrupted reference", park)
		}
	}
}

// TestRunStateValidation: inconsistent resume states are rejected.
func TestRunStateValidation(t *testing.T) {
	ds, cfg := tinyRun(t, false)
	ctx := context.Background()
	cases := []struct {
		name string
		st   State
	}{
		{"levels without results", State{LevelsDone: 1}},
		{"results length mismatch", State{LevelsDone: 1, Results: make([]core.Result, 1)}},
		{"levels behind history", State{History: []CycleFSC{{Cycle: 0}}, LevelsDone: 1,
			Results: make([]core.Result, len(ds.Views))}},
		{"cycle 1 without reference", State{History: []CycleFSC{{Cycle: 0}}, LevelsDone: cfg.Levels,
			Results: make([]core.Result, len(ds.Views))}},
		{"past max cycles", State{History: []CycleFSC{{Cycle: 0}, {Cycle: 1}}, LevelsDone: 2 * cfg.Levels,
			Results: make([]core.Result, len(ds.Views))}},
	}
	for _, tc := range cases {
		if _, err := Run(ctx, ds, cfg, tc.st, Hooks{}); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

// TestRunConfigValidation: malformed configs and datasets are rejected
// before any work starts.
func TestRunConfigValidation(t *testing.T) {
	ds, cfg := tinyRun(t, false)
	ctx := context.Background()
	bad := []Config{}
	for _, mut := range []func(*Config){
		func(c *Config) { c.L = 0 },
		func(c *Config) { c.PixelA = 0 },
		func(c *Config) { c.Levels = 0 },
		func(c *Config) { c.Levels = len(core.DefaultSchedule()) + 1 },
		func(c *Config) { c.Pad = 9 },
		func(c *Config) { c.MaskFrac = 2 },
		func(c *Config) { c.MaxCycles = 0 },
		func(c *Config) { c.PlateauEps = -1 },
	} {
		c := cfg
		mut(&c)
		bad = append(bad, c)
	}
	for i, c := range bad {
		if _, err := Run(ctx, ds, c, State{}, Hooks{}); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	if _, err := Run(ctx, Dataset{Views: ds.Views[:1], Inits: ds.Inits[:1]}, cfg, State{}, Hooks{}); err == nil {
		t.Error("single-view dataset accepted")
	}
	if _, err := Run(ctx, Dataset{Views: ds.Views, Inits: ds.Inits[:2]}, cfg, State{}, Hooks{}); err == nil {
		t.Error("mismatched inits accepted")
	}
}

// TestRunContextCancel: a cancelled context aborts with its error.
func TestRunContextCancel(t *testing.T) {
	ds, cfg := tinyRun(t, false)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run(ctx, ds, cfg, State{}, Hooks{}); err == nil {
		t.Fatal("cancelled run returned no error")
	}
}

// TestRunHookErrorAborts: a hook error surfaces as the run error.
func TestRunHookErrorAborts(t *testing.T) {
	ds, cfg := tinyRun(t, false)
	boom := fmt.Errorf("journal full")
	_, err := Run(context.Background(), ds, cfg, State{}, Hooks{
		OnLevel: func(c, g int, results []core.Result) error { return boom },
	})
	if err == nil || err.Error() != boom.Error() {
		t.Fatalf("got %v, want %v", err, boom)
	}
}
