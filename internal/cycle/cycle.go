// Package cycle closes the paper's outer loop (structure-determination
// steps 6–7): alternate a full multi-resolution refinement pass over
// every view, a Fourier-inversion reconstruction from the refined
// orientations, and an odd/even half-map FSC, feeding each cycle's map
// back as the next cycle's reference D̂, "until the 3D electron density
// map cannot be further improved". The stopping rule is fsc.Plateau:
// the loop ends when the 0.5-crossing resolution has failed to improve
// by ε Å for K consecutive cycles, or at a hard max-cycles cap.
//
// The driver is deterministic and wall-clock-free (it is in the replint
// simclock scope): all scheduling state is explicit in State, all
// side effects go through Hooks, and a run resumed from a checkpoint —
// mid-refinement with the previous cycle's map reloaded, or
// mid-reconstruction with the current cycle's refinement complete —
// produces the final map and FSC curve bit-identically to an
// uninterrupted run. The serving layer (internal/serve) owns the
// journal and artifact store; this package owns only the state machine
//
//	refine level 0..Levels-1 → reconstruct full+halves → FSC → observe
//
// repeated per cycle.
package cycle

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/ctf"
	"repro/internal/fourier"
	"repro/internal/fsc"
	"repro/internal/geom"
	"repro/internal/reconstruct"
	"repro/internal/volume"
)

// Config shapes a multi-cycle run.
type Config struct {
	// L is the cubic box size of the views and maps.
	L int
	// PixelA is the pixel size in Å, labelling the FSC frequency axis.
	PixelA float64
	// Levels is how many levels of core.DefaultSchedule each cycle's
	// refinement pass runs (1..len(DefaultSchedule)).
	Levels int
	// Pad is the reference-map Fourier padding factor (0 selects 2).
	Pad int
	// MaskFrac scales the spherical mask applied to each cycle's
	// reference map before matching, as a fraction of L (0 selects
	// 0.45, the fraction the workload experiments use).
	MaskFrac float64
	// MaxCycles is the hard cap on cycles (≥1).
	MaxCycles int
	// PlateauEps is the minimum 0.5-crossing improvement (Å) that
	// counts as progress (0 selects 0.01).
	PlateauEps float64
	// PlateauWindow is how many consecutive non-improving cycles stop
	// the run (0 selects 2; <0 disables plateau stopping).
	PlateauWindow int
	// Search selects the orientation-search mode ("" selects adaptive);
	// SearchSeed seeds the adaptive probe streams.
	Search     core.SearchMode
	SearchSeed int64
	// CTF, when set, enables phase-flip correction and cut weighting
	// during refinement and Wiener weighting during reconstruction —
	// set it iff the dataset views carry CTF state.
	CTF bool
	// Stream shapes each refinement pass's pipeline.
	Stream core.StreamOptions
	// ReconWorkers/ReconShards shape the sharded reconstruction (0
	// selects the reconstruct defaults; shards change rounding, see
	// reconstruct.DefaultShards).
	ReconWorkers, ReconShards int
	// FSCWorkers bounds FSC concurrency (0 selects GOMAXPROCS; the
	// curve is bit-identical regardless).
	FSCWorkers int
}

// normalized validates cfg and fills defaults.
func (cfg Config) normalized() (Config, error) {
	if cfg.L < 2 {
		return cfg, fmt.Errorf("cycle: box size %d too small", cfg.L)
	}
	if cfg.PixelA <= 0 {
		return cfg, fmt.Errorf("cycle: non-positive pixel size %g", cfg.PixelA)
	}
	if max := len(core.DefaultSchedule()); cfg.Levels < 1 || cfg.Levels > max {
		return cfg, fmt.Errorf("cycle: levels %d outside 1..%d", cfg.Levels, max)
	}
	if cfg.Pad == 0 {
		cfg.Pad = 2
	}
	if cfg.Pad < 1 || cfg.Pad > 4 {
		return cfg, fmt.Errorf("cycle: pad %d outside 1..4", cfg.Pad)
	}
	if cfg.MaskFrac == 0 {
		cfg.MaskFrac = 0.45
	}
	if cfg.MaskFrac < 0 || cfg.MaskFrac > 1 {
		return cfg, fmt.Errorf("cycle: mask fraction %g outside [0, 1]", cfg.MaskFrac)
	}
	if cfg.MaxCycles < 1 {
		return cfg, fmt.Errorf("cycle: max cycles %d below 1", cfg.MaxCycles)
	}
	if cfg.PlateauEps < 0 {
		return cfg, fmt.Errorf("cycle: negative plateau epsilon %g", cfg.PlateauEps)
	}
	if cfg.PlateauEps == 0 {
		cfg.PlateauEps = 0.01
	}
	if cfg.PlateauWindow == 0 {
		cfg.PlateauWindow = 2
	}
	if cfg.PlateauWindow < 0 {
		cfg.PlateauWindow = 0 // plateau stopping disabled
	}
	if cfg.Search == "" {
		cfg.Search = core.SearchAdaptive
	}
	return cfg, nil
}

// Dataset is the view stack a cycle job refines. The driver never
// mutates it.
type Dataset struct {
	// Views are the experimental images E_q.
	Views []*volume.Image
	// CTFs carries per-view microscope state; nil when Config.CTF is
	// unset.
	CTFs []ctf.Params
	// Inits are the rough initial orientations O_q^init — also the
	// orientations the cycle-0 reference is reconstructed from.
	Inits []geom.Euler
}

// validate checks the dataset against the config.
func (ds Dataset) validate(cfg Config) error {
	if len(ds.Views) < 2 {
		return fmt.Errorf("cycle: %d views, need at least 2 for odd/even halves", len(ds.Views))
	}
	if len(ds.Inits) != len(ds.Views) {
		return fmt.Errorf("cycle: %d views but %d initial orientations", len(ds.Views), len(ds.Inits))
	}
	if cfg.CTF && len(ds.CTFs) != len(ds.Views) {
		return fmt.Errorf("cycle: %d views but %d CTF params", len(ds.Views), len(ds.CTFs))
	}
	for i, v := range ds.Views {
		if v.L != cfg.L {
			return fmt.Errorf("cycle: view %d size %d does not match box size %d", i, v.L, cfg.L)
		}
	}
	return nil
}

// CycleFSC summarizes one completed cycle — the record the journal
// persists and the event stream narrates.
type CycleFSC struct {
	// Cycle is the zero-based cycle index.
	Cycle int `json:"cycle"`
	// ResolutionA is the odd/even FSC 0.5 crossing in Å.
	ResolutionA float64 `json:"resolution_a"`
	// MeanCC is the curve's mean correlation over all shells.
	MeanCC float64 `json:"mean_cc"`
	// Improved reports that this cycle moved the best crossing by at
	// least the plateau epsilon.
	Improved bool `json:"improved"`
	// Plateau is the consecutive non-improving cycle count after this
	// cycle.
	Plateau int `json:"plateau"`
}

// Why the run stopped.
const (
	// StopPlateau: the 0.5 crossing failed to improve for the
	// configured window of cycles.
	StopPlateau = "plateau"
	// StopMaxCycles: the hard cycle cap was reached.
	StopMaxCycles = "max_cycles"
)

// State is the resumable position of a run — what the serving layer
// reconstructs from its journal. The zero value starts a fresh run.
type State struct {
	// LevelsDone is the number of globally completed refinement levels
	// (cycle·Levels + level within cycle).
	LevelsDone int
	// Results holds the per-view results after the last completed
	// level, with PerLevel chronological across cycles — exactly the
	// priors core.RefineStreamLevels replays. nil when LevelsDone is 0.
	Results []core.Result
	// History holds the completed cycles' FSC records in order; the
	// plateau rule is refolded from it on resume.
	History []CycleFSC
	// Ref is the reference map for the current cycle: the previous
	// cycle's reconstruction, or nil at the start of cycle 0 (the
	// driver rebuilds the initial reference from Dataset.Inits).
	Ref *volume.Grid
}

// Hooks are the driver's side-effect surface. Any hook may be nil; a
// non-nil hook returning an error aborts the run with that error. All
// hooks run on the calling goroutine, between pipeline stages.
type Hooks struct {
	// OnCycleStart fires when cycle c's refinement pass begins (not on
	// mid-cycle resume).
	OnCycleStart func(c int) error
	// OnLevelStart fires before each refinement level; global is the
	// journal-facing level index c·Levels + k.
	OnLevelStart func(c, global int) error
	// OnLevel fires after each completed refinement level with the
	// cumulative per-view results — the checkpoint hook.
	OnLevel func(c, global int, results []core.Result) error
	// OnMap fires after cycle c's full-map reconstruction, before the
	// FSC — the artifact hook. m is the map the next cycle will use as
	// its reference; the hook must not mutate it.
	OnMap func(c int, m *volume.Grid) error
	// OnCycleEnd fires after cycle c's FSC with the cycle record, the
	// full curve, and the stop reason ("" when the loop continues).
	OnCycleEnd func(rec CycleFSC, curve *fsc.Curve, stopped string) error
	// Drain, when non-nil, is polled at every checkpoint boundary;
	// returning true parks the run (Outcome.Parked) at that boundary.
	Drain func() bool
}

// Outcome is the final state of a run.
type Outcome struct {
	// Results are the per-view refined results after the last completed
	// level.
	Results []core.Result
	// Map and Curve are the last completed cycle's full reconstruction
	// and odd/even FSC (nil when no cycle completed).
	Map   *volume.Grid
	Curve *fsc.Curve
	// History holds every completed cycle's record.
	History []CycleFSC
	// Stopped is why the run ended: StopPlateau or StopMaxCycles
	// (empty when Parked).
	Stopped string
	// Parked reports that Hooks.Drain interrupted the run at a
	// checkpoint; State-equivalent fields in the hooks' keeping resume
	// it.
	Parked bool
}

// Run executes the outer loop from st to plateau, max-cycles, context
// cancellation, or a drain park. The zero State starts fresh; a State
// rebuilt from a journal resumes bit-identically, including inside a
// cycle's refinement pass (st.Ref then carries the previous cycle's
// map) and between a cycle's reconstruction and its FSC (st.LevelsDone
// a whole multiple of Levels past History).
func Run(ctx context.Context, ds Dataset, cfg Config, st State, h Hooks) (*Outcome, error) {
	cfg, err := cfg.normalized()
	if err != nil {
		return nil, err
	}
	if err := ds.validate(cfg); err != nil {
		return nil, err
	}
	n := len(ds.Views)

	startCycle := len(st.History)
	if startCycle >= cfg.MaxCycles {
		return nil, fmt.Errorf("cycle: resume at cycle %d past max cycles %d", startCycle, cfg.MaxCycles)
	}
	if st.LevelsDone < startCycle*cfg.Levels || st.LevelsDone > (startCycle+1)*cfg.Levels {
		return nil, fmt.Errorf("cycle: %d levels done inconsistent with %d completed cycles of %d levels",
			st.LevelsDone, startCycle, cfg.Levels)
	}
	results := st.Results
	if results == nil {
		if st.LevelsDone != 0 {
			return nil, fmt.Errorf("cycle: %d levels done but no results", st.LevelsDone)
		}
		results = make([]core.Result, n)
		for i := range results {
			results[i] = core.Result{Orient: ds.Inits[i]}
		}
	} else if len(results) != n {
		return nil, fmt.Errorf("cycle: %d views but %d resumed results", n, len(results))
	}

	// Refold the plateau rule from the journaled history so a resumed
	// run stops exactly where the uninterrupted one would.
	pl := &fsc.Plateau{Eps: cfg.PlateauEps, Window: cfg.PlateauWindow}
	for _, rec := range st.History {
		pl.Observe(rec.ResolutionA)
	}

	out := &Outcome{History: append([]CycleFSC(nil), st.History...)}
	ref := st.Ref

	for c := startCycle; c < cfg.MaxCycles; c++ {
		local := st.LevelsDone - c*cfg.Levels
		if local < 0 {
			local = 0
		}

		if local < cfg.Levels {
			if local == 0 && h.OnCycleStart != nil {
				if err := h.OnCycleStart(c); err != nil {
					return nil, err
				}
			}
			if ref == nil {
				if c > 0 {
					return nil, fmt.Errorf("cycle: resuming cycle %d at level %d without a reference map", c, local)
				}
				// Step A of cycle 0: the initial reference is
				// reconstructed from the rough initial orientations —
				// never from partially refined results, so a resume into
				// cycle 0 (at any level) rebuilds the identical reference.
				ref, err = fullMap(ds, initialResults(ds, n), cfg)
				if err != nil {
					return nil, fmt.Errorf("cycle: initial reference: %w", err)
				}
			}
			r, err := newRefiner(ref, cfg)
			if err != nil {
				return nil, err
			}
			src := core.SliceSource(ds.Views, ds.CTFs, ds.Inits)
			for k := local; k < cfg.Levels; k++ {
				if h.Drain != nil && h.Drain() {
					out.Results = results
					out.Parked = true
					return out, nil
				}
				global := c*cfg.Levels + k
				if h.OnLevelStart != nil {
					if err := h.OnLevelStart(c, global); err != nil {
						return nil, err
					}
				}
				res, err := r.RefineStreamLevels(ctx, n, src, results, k, k+1, cfg.Stream)
				if err != nil {
					return nil, err
				}
				results = res
				if h.OnLevel != nil {
					if err := h.OnLevel(c, global, results); err != nil {
						return nil, err
					}
				}
			}
		}
		// When local == Levels the resume landed between this cycle's
		// refinement and its reconstruction; no reference map is needed —
		// reconstruction depends only on the refined results.

		if h.Drain != nil && h.Drain() {
			out.Results = results
			out.Parked = true
			return out, nil
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}

		// Steps B–C: reconstruct the full map and the odd/even halves
		// from the refined orientations, then assess with the FSC.
		full, err := fullMap(ds, results, cfg)
		if err != nil {
			return nil, fmt.Errorf("cycle: cycle %d reconstruction: %w", c, err)
		}
		if h.OnMap != nil {
			if err := h.OnMap(c, full); err != nil {
				return nil, err
			}
		}
		odd, even, err := halfMaps(ds, results, cfg)
		if err != nil {
			return nil, fmt.Errorf("cycle: cycle %d half maps: %w", c, err)
		}
		curve, err := fsc.ComputeParallel(odd, even, cfg.PixelA, cfg.FSCWorkers)
		if err != nil {
			return nil, fmt.Errorf("cycle: cycle %d fsc: %w", c, err)
		}

		resA := curve.ResolutionAt(0.5)
		improved, stop := pl.Observe(resA)
		rec := CycleFSC{Cycle: c, ResolutionA: resA, MeanCC: curve.MeanCC(), Improved: improved, Plateau: pl.Count}
		stopped := ""
		switch {
		case stop:
			stopped = StopPlateau
		case c == cfg.MaxCycles-1:
			stopped = StopMaxCycles
		}
		out.History = append(out.History, rec)
		if h.OnCycleEnd != nil {
			if err := h.OnCycleEnd(rec, curve, stopped); err != nil {
				return nil, err
			}
		}

		out.Results = results
		out.Map = full
		out.Curve = curve
		if stopped != "" {
			out.Stopped = stopped
			return out, nil
		}
		// Step D: this cycle's map is the next cycle's reference.
		ref = full
		st.LevelsDone = (c + 1) * cfg.Levels
	}
	// Unreachable: the last loop iteration always sets a stop reason.
	return out, nil
}

// initialResults are the priors of a fresh cycle 0: the rough initial
// orientations with zero centre corrections.
func initialResults(ds Dataset, n int) []core.Result {
	results := make([]core.Result, n)
	for i := range results {
		results[i] = core.Result{Orient: ds.Inits[i]}
	}
	return results
}

// newRefiner builds cycle c's refiner over a masked, padded transform
// of the reference map. The reference is cloned first — masking must
// not corrupt the map the journal's digest describes.
func newRefiner(ref *volume.Grid, cfg Config) (*core.Refiner, error) {
	masked := ref.Clone()
	masked.SphericalMask(cfg.MaskFrac * float64(cfg.L))
	dft := fourier.NewVolumeDFTPadded(masked, cfg.Pad)
	ccfg := core.DefaultConfig(cfg.L)
	ccfg.Schedule = core.DefaultSchedule()[:cfg.Levels]
	ccfg.Search = cfg.Search
	ccfg.SearchSeed = cfg.SearchSeed
	if cfg.CTF {
		ccfg.CorrectCTF = true
		ccfg.CTFMode = ctf.PhaseFlip
		ccfg.CTFWeightCuts = true
	}
	r, err := core.NewRefiner(dft, ccfg)
	if err != nil {
		return nil, fmt.Errorf("cycle: building refiner: %w", err)
	}
	return r, nil
}

// reconOptions assembles the sharded-reconstruction options.
func reconOptions(cfg Config) reconstruct.ParallelOptions {
	return reconstruct.ParallelOptions{
		Options: reconstruct.Options{WienerCTF: cfg.CTF},
		Workers: cfg.ReconWorkers,
		Shards:  cfg.ReconShards,
	}
}

// fullMap reconstructs the full map from every view at the given
// results' orientations and accumulated centre corrections.
func fullMap(ds Dataset, results []core.Result, cfg Config) (*volume.Grid, error) {
	orients, centers := solutions(results)
	// reconstruct.Sharded.Finish stamps an optional wall-clock trace
	// span when instrumentation is active; the map bytes are unaffected.
	return reconstruct.FromViewsParallel(ds.Views, orients, centers, ds.CTFs, reconOptions(cfg)) //replint:allow simclock reconstruct's trace span reads wall time only for observability; map bytes are clock-independent
}

// halfMaps reconstructs the odd/even half maps (1-based view parity,
// as in the paper's Fig. 4 procedure).
func halfMaps(ds Dataset, results []core.Result, cfg Config) (*volume.Grid, *volume.Grid, error) {
	orients, centers := solutions(results)
	// Same trace-span waiver as fullMap.
	return reconstruct.SplitHalvesParallel(ds.Views, orients, centers, ds.CTFs, reconOptions(cfg)) //replint:allow simclock reconstruct's trace span reads wall time only for observability; map bytes are clock-independent
}

// solutions splits results into the orientation and centre slices the
// reconstruction API wants.
func solutions(results []core.Result) ([]geom.Euler, [][2]float64) {
	orients := make([]geom.Euler, len(results))
	centers := make([][2]float64, len(results))
	for i, res := range results {
		orients[i] = res.Orient
		centers[i] = res.Center
	}
	return orients, centers
}
