package benchutil

import (
	"encoding/json"
	"fmt"
	"os"
)

// Bench reports accumulate a trajectory instead of overwriting it:
// before a BENCH_*.json is rewritten, the file's current body (its own
// history stripped) is pushed onto a "history" array that the new
// report carries forward. Every entry keeps its run_meta, so a history
// spanning machines or Go versions still compares like with like.

// HistoryMax is the default cap on carried-forward entries; the oldest
// fall off first.
const HistoryMax = 20

// LoadHistory reads the report currently at path and returns the
// history array for the report about to replace it: the file's prior
// entries plus the file's own body appended as the newest entry,
// trimmed to the most recent max (HistoryMax when max <= 0). A missing
// file yields an empty history; an unreadable or unparseable one is an
// error so a corrupt trajectory is noticed rather than silently
// restarted.
func LoadHistory(path string, max int) ([]json.RawMessage, error) {
	if max <= 0 {
		max = HistoryMax
	}
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("parsing existing report %s: %w", path, err)
	}
	var history []json.RawMessage
	if raw, ok := doc["history"]; ok {
		if err := json.Unmarshal(raw, &history); err != nil {
			return nil, fmt.Errorf("parsing history in %s: %w", path, err)
		}
		delete(doc, "history")
	}
	body, err := json.Marshal(doc)
	if err != nil {
		return nil, err
	}
	history = append(history, body)
	if len(history) > max {
		history = history[len(history)-max:]
	}
	return history, nil
}
