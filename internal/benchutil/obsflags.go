package benchutil

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"

	"repro/internal/obs"
)

// Flags is the observability and profiling flag set shared by all four
// commands (cmd/refine, cmd/reconstruct, cmd/benchkernel,
// cmd/benchpipeline): register once, Start after flag.Parse, and call
// the returned stop function on the success path to flush outputs.
type Flags struct {
	CPUProfile string
	MemProfile string
	Metrics    string
	Trace      string
}

// Register installs the four flags on fs (use flag.CommandLine for the
// process-wide set).
func (f *Flags) Register(fs *flag.FlagSet) {
	fs.StringVar(&f.CPUProfile, "cpuprofile", "", "write a CPU profile to this file")
	fs.StringVar(&f.MemProfile, "memprofile", "", "write a heap profile to this file (after GC)")
	fs.StringVar(&f.Metrics, "metrics", "", "write a metrics snapshot to this file on exit (.json for JSON, \"-\" for stdout text)")
	fs.StringVar(&f.Trace, "trace", "", "write a Chrome trace_event timeline of the simulated cluster clock to this file (open in chrome://tracing or ui.perfetto.dev)")
}

// Active reports whether any observability or profiling output was
// requested.
func (f *Flags) Active() bool {
	return f.CPUProfile != "" || f.MemProfile != "" || f.Metrics != "" || f.Trace != ""
}

// Start turns on instrumentation and profiling according to the flags
// and returns a stop function that stops the CPU profile, writes the
// heap profile, metrics snapshot and trace file, and reports the first
// error. Instrumentation (counters and pprof stage labels) is enabled
// whenever any output is requested — CPU profiles want the stage
// labels even if no metrics file is written. The stop function is
// always non-nil.
func (f *Flags) Start() (func() error, error) {
	if f.Active() {
		obs.SetEnabled(true)
	}
	var tr *obs.Trace
	if f.Trace != "" {
		tr = obs.StartTrace()
	}
	stopProf, err := StartProfiles(f.CPUProfile, f.MemProfile)
	if err != nil {
		if tr != nil {
			obs.EndTrace()
		}
		return func() error { return nil }, err
	}
	stop := func() error {
		firstErr := stopProf()
		if tr != nil {
			obs.EndTrace()
			if err := writeTo(f.Trace, tr.WriteChromeTrace); err != nil && firstErr == nil {
				firstErr = fmt.Errorf("trace: %w", err)
			}
		}
		if f.Metrics != "" {
			if err := writeMetrics(f.Metrics); err != nil && firstErr == nil {
				firstErr = fmt.Errorf("metrics: %w", err)
			}
		}
		return firstErr
	}
	return stop, nil
}

// writeMetrics writes the global snapshot: "-" streams text to stdout,
// a .json path gets the JSON document, anything else the text form.
func writeMetrics(path string) error {
	if path == "-" {
		return obs.WriteText(os.Stdout)
	}
	if strings.HasSuffix(path, ".json") {
		return writeTo(path, obs.WriteJSON)
	}
	return writeTo(path, obs.WriteText)
}

// writeTo creates path, runs the writer, and closes it with the
// sticky-error close-keep-err pattern (internal/micrograph/io.go): the
// write error wins, but a failed Close after a clean write still fails
// the caller — buffered metrics or trace data that never reached disk
// is a truncated report, and on the error path the Close result is no
// longer silently dropped.
func writeTo(path string, write func(w io.Writer) error) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	return write(f)
}

// BenchSchemaVersion is the version of the BENCH_*.json report
// envelope. Bump when the shared fields change shape.
const BenchSchemaVersion = 2

// RunMeta pins the machine context a bench report was produced under,
// so the bench trajectory across PRs compares like with like.
type RunMeta struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
}

// CurrentRunMeta captures the running process's context.
func CurrentRunMeta() RunMeta {
	return RunMeta{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}
}
