package benchutil

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// fakeReport mimics a BENCH_*.json envelope.
type fakeReport struct {
	SchemaVersion int               `json:"schema_version"`
	RunMeta       RunMeta           `json:"run_meta"`
	NsPerOp       float64           `json:"ns_per_op"`
	History       []json.RawMessage `json:"history,omitempty"`
}

func writeReport(t *testing.T, path string, rep fakeReport) {
	t.Helper()
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestLoadHistoryAccumulates: successive rewrites stack prior bodies,
// oldest first, each entry stripped of its own history.
func TestLoadHistoryAccumulates(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_x.json")

	// First run: no file yet, empty history.
	h, err := LoadHistory(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(h) != 0 {
		t.Fatalf("fresh history has %d entries", len(h))
	}

	meta := CurrentRunMeta()
	for run := 1; run <= 3; run++ {
		h, err := LoadHistory(path, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(h) != run-1 {
			t.Fatalf("run %d: history has %d entries", run, len(h))
		}
		writeReport(t, path, fakeReport{SchemaVersion: BenchSchemaVersion, RunMeta: meta,
			NsPerOp: float64(run), History: h})
	}

	// The file now holds run 3 with runs 1 and 2 in order.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep fakeReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.NsPerOp != 3 || len(rep.History) != 2 {
		t.Fatalf("final report: ns %g, %d history entries", rep.NsPerOp, len(rep.History))
	}
	for i, want := range []float64{1, 2} {
		var old fakeReport
		if err := json.Unmarshal(rep.History[i], &old); err != nil {
			t.Fatal(err)
		}
		if old.NsPerOp != want {
			t.Fatalf("history[%d] ns %g, want %g", i, old.NsPerOp, want)
		}
		if old.History != nil {
			t.Fatalf("history[%d] carries nested history", i)
		}
		// run_meta survives inside each entry, keying it to its machine.
		if old.RunMeta != CurrentRunMeta() {
			t.Fatalf("history[%d] lost run_meta: %+v", i, old.RunMeta)
		}
	}
}

// TestLoadHistoryCap: entries beyond max fall off oldest-first.
func TestLoadHistoryCap(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_x.json")
	for run := 1; run <= 5; run++ {
		h, err := LoadHistory(path, 2)
		if err != nil {
			t.Fatal(err)
		}
		writeReport(t, path, fakeReport{NsPerOp: float64(run), History: h})
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep fakeReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.History) != 2 {
		t.Fatalf("capped history has %d entries", len(rep.History))
	}
	var oldest fakeReport
	if err := json.Unmarshal(rep.History[0], &oldest); err != nil {
		t.Fatal(err)
	}
	if oldest.NsPerOp != 3 {
		t.Fatalf("oldest retained entry is run %g, want 3", oldest.NsPerOp)
	}
}

// TestLoadHistoryCorrupt: a malformed existing report is an error, not
// a silent trajectory reset.
func TestLoadHistoryCorrupt(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_x.json")
	if err := os.WriteFile(path, []byte("{broken"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadHistory(path, 0); err == nil {
		t.Fatal("corrupt report loaded without error")
	}
}
