// Package benchutil holds small helpers shared by the bench commands
// (cmd/benchkernel, cmd/benchpipeline).
package benchutil

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartProfiles begins CPU profiling if cpuPath is non-empty and
// returns a stop function that ends the CPU profile and, if memPath is
// non-empty, writes a heap profile (after a GC, so it reflects live
// data rather than garbage). Either path may be empty; the stop
// function is always non-nil.
func StartProfiles(cpuPath, memPath string) (func() error, error) {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			//replint:allow errsink close error is subordinate to the StartCPUProfile error already being returned
			f.Close()
			return nil, fmt.Errorf("cpu profile: %w", err)
		}
		cpuFile = f
	}
	stop := func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("cpu profile: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("mem profile: %w", err)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("mem profile: %w", err)
			}
		}
		return nil
	}
	return stop, nil
}
