// Package benchutil holds small helpers shared by the bench commands
// (cmd/benchkernel, cmd/benchpipeline).
package benchutil

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartProfiles begins CPU profiling if cpuPath is non-empty and
// returns a stop function that ends the CPU profile and, if memPath is
// non-empty, writes a heap profile (after a GC, so it reflects live
// data rather than garbage). Either path may be empty; the stop
// function is always non-nil.
func StartProfiles(cpuPath, memPath string) (func() error, error) {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			//replint:allow errsink close error is subordinate to the StartCPUProfile error already being returned
			f.Close()
			return nil, fmt.Errorf("cpu profile: %w", err)
		}
		cpuFile = f
	}
	// writeHeapProfile snapshots the heap after a GC with the
	// close-keep-err pattern (internal/micrograph/io.go): a failed
	// Close on this write path is a truncated profile.
	writeHeapProfile := func(path string) (err error) {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer func() {
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}()
		runtime.GC()
		return pprof.WriteHeapProfile(f)
	}
	stop := func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("cpu profile: %w", err)
			}
		}
		if memPath != "" {
			if err := writeHeapProfile(memPath); err != nil {
				return fmt.Errorf("mem profile: %w", err)
			}
		}
		return nil
	}
	return stop, nil
}
