package core

import (
	"fmt"
	"runtime"

	"repro/internal/cluster"
	"repro/internal/ctf"
	"repro/internal/fourier"
	"repro/internal/geom"
	"repro/internal/obs"
	"repro/internal/parfft"
	"repro/internal/volume"
)

// StepTimes reports the simulated makespan of each phase of one
// refinement pass — the rows of the paper's Tables 1 and 2.
type StepTimes struct {
	// DFT3D is step a: the parallel 3-D DFT of the density map.
	DFT3D float64
	// ReadImages is steps b–c: the master reading views and initial
	// orientations and distributing them.
	ReadImages float64
	// FFTAnalysis is steps d–e: per-view 2-D DFT and CTF correction.
	FFTAnalysis float64
	// Refinement is steps f–l: the windowed matching and centre
	// refinement.
	Refinement float64
	// Total is the end-to-end simulated makespan.
	Total float64
}

// ParallelOptions configures a cluster refinement pass.
type ParallelOptions struct {
	// BytesPerPixel models view file storage (the paper uses 2).
	BytesPerPixel int
	// ReadBytesPerSec models the master's sequential file-read rate;
	// ≤0 disables modeled I/O time.
	ReadBytesPerSec float64
	// DFT3DSecs carries the simulated cost of step a when the map
	// transform was produced separately (e.g. by parfft.Transform3D);
	// it is copied into StepTimes.DFT3D.
	DFT3DSecs float64
}

// DefaultParallelOptions returns the paper's I/O assumptions: 2-byte
// pixels read at a 1999-era sequential disk rate.
func DefaultParallelOptions() ParallelOptions {
	return ParallelOptions{BytesPerPixel: 2, ReadBytesPerSec: 20e6}
}

// RefineOnCluster executes one full refinement pass (steps b–o) on the
// simulated cluster: the master distributes views and initial
// orientations round-robin, every node transforms and refines its
// share charging the cost model, nodes synchronize after every
// schedule level (step m), and results are gathered on the master
// (step o). It returns the per-view results in input order along with
// the per-step simulated times.
//
// The refiner's schedule is used as-is; to time a single angular
// resolution (one column of Tables 1–2) construct the Refiner with a
// one-level schedule.
func (r *Refiner) RefineOnCluster(
	cl *cluster.Cluster,
	views []*volume.Image,
	ctfs []ctf.Params,
	inits []geom.Euler,
	opt ParallelOptions,
) ([]Result, StepTimes, error) {
	m := len(views)
	if len(inits) != m {
		return nil, StepTimes{}, fmt.Errorf("core: %d views but %d orientations", m, len(inits))
	}
	if len(ctfs) != 0 && len(ctfs) != m {
		return nil, StepTimes{}, fmt.Errorf("core: %d views but %d CTF param sets", m, len(ctfs))
	}
	for i, v := range views {
		if v.L != r.m.l {
			return nil, StepTimes{}, fmt.Errorf("core: view %d size %d does not match map size %d", i, v.L, r.m.l)
		}
	}
	p := cl.P
	l := r.m.l
	results := make([]Result, m)
	var refineErr error

	// Per-step makespans, collected via max-reduction inside the run.
	type marks struct{ read, fft, refine float64 }
	nodeMarks := make([]marks, p)

	// Timeline span names, shared read-only by all node goroutines.
	// Spans and instants cost one atomic load when no trace records.
	levelNames := make([]string, len(r.cfg.Schedule))
	for li := range levelNames {
		levelNames[li] = fmt.Sprintf("refine L%d", li)
	}

	cl.Run(func(n *cluster.Node) {
		rank := n.Rank
		mark := n.Clock()
		stage := func(name string) {
			now := n.Clock()
			obs.Span(rank, 0, name, "refine", mark, now)
			mark = now
		}
		// Step b–c: master reads the image and orientation files and
		// distributes view indices round-robin (view q goes to rank
		// q mod P, keeping E_q and O_q^init together).
		viewBytes := l * l * opt.BytesPerPixel
		if rank == 0 && opt.ReadBytesPerSec > 0 {
			n.Sleep(float64(m*viewBytes) / opt.ReadBytesPerSec)
		}
		var myIdx []int
		for q := rank; q < m; q += p {
			myIdx = append(myIdx, q)
		}
		// Model the scatter of everyone else's share from the master.
		parts := make([]interface{}, p)
		if rank == 0 {
			for i := 0; i < p; i++ {
				parts[i] = i // placeholder; real data is shared read-only
			}
		}
		n.Scatter("views", 0, parts, len(myIdx)*viewBytes)
		nodeMarks[rank].read = n.Clock()
		stage("b-c read+scatter")

		// Steps d–e: 2-D DFT + CTF correction of owned views, on one
		// per-node transform scratch (spectrum buffer + real-input
		// plan) so preparing a node's share allocates only band-sized
		// view state.
		myViews := make([]*View, len(myIdx))
		trans := fourier.NewViewTransformer(l)
		fbuf := volume.NewCImage(l)
		for i, q := range myIdx {
			params := ctf.Params{}
			if len(ctfs) > 0 {
				params = ctfs[q]
			}
			v, err := r.prepareViewReuse(views[q], params, trans, fbuf)
			if err != nil {
				refineErr = err
				return
			}
			myViews[i] = v
			n.Compute(viewFFTFlops(l))
			if r.cfg.CorrectCTF {
				n.Compute(20 * float64(l*l))
			}
			sp := obs.StartSpan(rank, 0, "fft", "refine", mark)
			sp.SetArg("view", int64(q))
			mark = n.Clock()
			sp.End(mark)
		}
		n.Barrier("post-fft")
		nodeMarks[rank].fft = n.Clock()
		stage("post-fft barrier")

		// Steps f–n: refine each view through every level, with a
		// barrier per level (step m). Within a level the node's views
		// are independent, so they run on a real worker pool sized to
		// this node's share of the machine; the simulated clock is
		// charged afterwards in view order, so the cost model (and
		// therefore every simulated timing) is identical to the serial
		// schedule regardless of GOMAXPROCS.
		states := make([]Result, len(myIdx))
		for i, q := range myIdx {
			states[i] = Result{Orient: inits[q]}
		}
		band := len(r.m.band)
		nodeWorkers := runtime.GOMAXPROCS(0) / p
		if nodeWorkers < 1 {
			nodeWorkers = 1
		}
		nodeWorkers = poolWorkers(len(myIdx), nodeWorkers)
		scratches := make([]*matchScratch, nodeWorkers)
		for w := range scratches {
			scratches[w] = r.m.newScratch()
		}
		sts := make([]LevelStats, len(myIdx))
		for li, lv := range r.cfg.Schedule {
			lv := lv
			runIndexedLabeled("core.refine.level", len(myIdx), nodeWorkers, func(w, i int) {
				// Same (seed, level, entry-orientation) stream as the
				// serial path, so cluster refinement is bit-identical
				// to RefineView regardless of node count.
				rng := newSearchRNG(r.cfg.SearchSeed, li, states[i].Orient)
				sts[i] = r.refineLevel(myViews[i].vd, &states[i], lv, scratches[w], &rng, r.cfg.searchModeAt(li))
			})
			for i, q := range myIdx {
				st := sts[i]
				recordLevelStats(li, st)
				states[i].PerLevel = append(states[i].PerLevel, st)
				n.Compute(float64(st.Matchings) * flopsPerMatch(band))
				n.Compute(float64(st.CenterEvals) * 15 * float64(band))
				sp := obs.StartSpan(rank, 0, levelNames[li], "refine", mark)
				sp.SetArg("view", int64(q))
				sp.SetArg("matchings", int64(st.Matchings))
				mark = n.Clock()
				sp.End(mark)
				if st.Slides > 0 {
					obs.Instant(rank, 0, "slide", "refine", mark, [2]obs.Arg{
						{Key: "view", Value: int64(q)},
						{Key: "count", Value: int64(st.Slides)},
					})
				}
			}
			n.Barrier("level")
			stage("level barrier")
		}
		nodeMarks[rank].refine = n.Clock()

		// Step o: gather refined orientations on the master.
		n.Gather("results", 0, states, len(myIdx)*64)
		stage("gather")
		for i, q := range myIdx {
			results[q] = states[i]
		}
	})
	if refineErr != nil {
		return nil, StepTimes{}, refineErr
	}

	var times StepTimes
	times.DFT3D = opt.DFT3DSecs
	for _, mk := range nodeMarks {
		if mk.read > times.ReadImages {
			times.ReadImages = mk.read
		}
	}
	for _, mk := range nodeMarks {
		if d := mk.fft - times.ReadImages; d > times.FFTAnalysis {
			times.FFTAnalysis = d
		}
	}
	maxFFT := times.ReadImages + times.FFTAnalysis
	for _, mk := range nodeMarks {
		if d := mk.refine - maxFFT; d > times.Refinement {
			times.Refinement = d
		}
	}
	times.Total = times.DFT3D + times.ReadImages + times.FFTAnalysis + times.Refinement
	return results, times, nil
}

// Transform3DOnCluster is a convenience wrapper that runs the parallel
// 3-D DFT of the map (step a) on the cluster and returns both the
// spectrum and its simulated cost, ready to feed NewRefiner and
// ParallelOptions.DFT3DSecs.
func Transform3DOnCluster(cl *cluster.Cluster, g *volume.Grid, readSecs float64) (res parfft.Result) {
	return parfft.Transform3D(cl, g, readSecs)
}
