package core

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"testing"
	"time"

	"repro/internal/ctf"
	"repro/internal/fourier"
	"repro/internal/geom"
	"repro/internal/micrograph"
	"repro/internal/phantom"
	"repro/internal/volume"
)

func streamFixture(t testing.TB, m int) (*Refiner, *micrograph.Dataset) {
	t.Helper()
	const l = 16
	truth := phantom.Asymmetric(l, 5, 1)
	truth.SphericalMask(6)
	ds := micrograph.Generate(truth, micrograph.GenParams{NumViews: m, PixelA: 2.5, Seed: 7})
	dft := fourier.NewVolumeDFTPadded(truth, 2)
	cfg := DefaultConfig(l)
	cfg.Schedule = []Level{{RAngular: 1, WindowHalf: 2, CenterDelta: 1, CenterHalf: 1}}
	r, err := NewRefiner(dft, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r, ds
}

func datasetSource(ds *micrograph.Dataset, perturb geom.Euler) (int, StreamSource) {
	views := make([]*volume.Image, len(ds.Views))
	ctfs := make([]ctf.Params, len(ds.Views))
	inits := make([]geom.Euler, len(ds.Views))
	for i, v := range ds.Views {
		views[i] = v.Image
		ctfs[i] = v.CTF
		inits[i] = v.TrueOrient.Add(perturb)
	}
	return len(views), SliceSource(views, ctfs, inits)
}

// TestRefineStreamMatchesBatch: the streaming pipeline must produce
// bit-identical results to the prepare-everything-then-refine batch
// path, for several pipeline shapes.
func TestRefineStreamMatchesBatch(t *testing.T) {
	r, ds := streamFixture(t, 6)
	perturb := geom.Euler{Theta: 1.2, Phi: -0.8, Omega: 0.5}
	n, src := datasetSource(ds, perturb)

	views := make([]*View, n)
	inits := make([]geom.Euler, n)
	for i := 0; i < n; i++ {
		it, _ := src(i)
		v, err := r.PrepareView(it.Image, it.CTF)
		if err != nil {
			t.Fatal(err)
		}
		views[i] = v
		inits[i] = it.Init
	}
	want, err := r.RefineBatch(context.Background(), views, inits, 1)
	if err != nil {
		t.Fatal(err)
	}

	for _, opt := range []StreamOptions{
		{},
		{Depth: 1, FFTWorkers: 1, RefineWorkers: 1},
		{Depth: 2, FFTWorkers: 3, RefineWorkers: 2},
		{FFTWorkers: 8, RefineWorkers: 8},
	} {
		got, err := r.RefineStream(context.Background(), n, src, opt)
		if err != nil {
			t.Fatalf("opt %+v: %v", opt, err)
		}
		if len(got) != n {
			t.Fatalf("opt %+v: %d results, want %d", opt, len(got), n)
		}
		for i := range got {
			if got[i].Orient != want[i].Orient || got[i].Center != want[i].Center || got[i].Distance != want[i].Distance {
				t.Fatalf("opt %+v view %d: stream %+v vs batch %+v", opt, i, got[i], want[i])
			}
		}
	}
}

// TestRefineStreamPropagatesErrors: a failing source cancels the
// pipeline and surfaces the error; a size-mismatched view fails in the
// FFT stage the same way.
func TestRefineStreamPropagatesErrors(t *testing.T) {
	r, ds := streamFixture(t, 4)
	boom := errors.New("disk on fire")
	n, good := datasetSource(ds, geom.Euler{})
	_, err := r.RefineStream(context.Background(), n, func(i int) (StreamItem, error) {
		if i == 2 {
			return StreamItem{}, boom
		}
		return good(i)
	}, StreamOptions{})
	if !errors.Is(err, boom) {
		t.Fatalf("source error not propagated: %v", err)
	}

	_, err = r.RefineStream(context.Background(), 1, func(int) (StreamItem, error) {
		return StreamItem{Image: volume.NewImage(8)}, nil
	}, StreamOptions{})
	if err == nil {
		t.Fatal("size mismatch not surfaced")
	}
}

// TestRefineStreamEmpty: zero views is a no-op, not a deadlock.
func TestRefineStreamEmpty(t *testing.T) {
	r, _ := streamFixture(t, 1)
	res, err := r.RefineStream(context.Background(), 0, func(int) (StreamItem, error) {
		panic("source must not be called")
	}, StreamOptions{})
	if err != nil || res != nil {
		t.Fatalf("empty stream: %v %v", res, err)
	}
}

// TestRefineStreamCancelNoLeak: cancelling the context mid-stream
// aborts between views, surfaces ctx.Err(), and leaks no stage
// goroutine — every loader/FFT/refine worker must have exited by the
// time RefineStream returns.
func TestRefineStreamCancelNoLeak(t *testing.T) {
	r, ds := streamFixture(t, 8)
	n, src := datasetSource(ds, geom.Euler{Theta: 0.5})

	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	cancelling := func(i int) (StreamItem, error) {
		if i == 3 {
			cancel()
		}
		return src(i)
	}
	res, err := r.RefineStream(ctx, n, cancelling, StreamOptions{Depth: 1, FFTWorkers: 2, RefineWorkers: 2})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v (res %v)", err, res)
	}
	if res != nil {
		t.Fatalf("cancelled stream returned results: %v", res)
	}
	// RefineStream waits for its own goroutines before returning, so
	// any excess here would be a pipeline leak. Allow a short settle
	// for unrelated runtime goroutines.
	for i := 0; i < 100; i++ {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: before %d, after %d", before, runtime.NumGoroutine())
}

// TestRefineBatchCancel: a cancelled context makes RefineBatch return
// its error instead of results.
func TestRefineBatchCancel(t *testing.T) {
	r, ds := streamFixture(t, 3)
	views := make([]*View, len(ds.Views))
	inits := make([]geom.Euler, len(ds.Views))
	for i, v := range ds.Views {
		pv, err := r.PrepareView(v.Image, v.CTF)
		if err != nil {
			t.Fatal(err)
		}
		views[i] = pv
		inits[i] = v.TrueOrient
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := r.RefineBatch(ctx, views, inits, 2); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

// TestRefineStreamLevelsResume: running the schedule one level at a
// time through RefineStreamLevels — re-preparing each view from the
// raw image and replaying the recorded shift increments — must produce
// results bit-identical to one uninterrupted RefineStream over the
// full schedule. This is the property the serving layer's checkpoint
// resume rests on.
func TestRefineStreamLevelsResume(t *testing.T) {
	const l = 16
	truth := phantom.Asymmetric(l, 5, 1)
	truth.SphericalMask(6)
	ds := micrograph.Generate(truth, micrograph.GenParams{NumViews: 5, PixelA: 2.5, CenterJitter: 1.0, Seed: 9})
	dft := fourier.NewVolumeDFTPadded(truth, 2)
	cfg := DefaultConfig(l)
	cfg.Schedule = []Level{
		{RAngular: 1, WindowHalf: 2, CenterDelta: 1, CenterHalf: 1, RMapFrac: 0.5},
		{RAngular: 0.5, WindowHalf: 1, CenterDelta: 0.5, CenterHalf: 1},
		{RAngular: 0.1, WindowHalf: 0.2, CenterDelta: 0.1, CenterHalf: 1},
	}
	r, err := NewRefiner(dft, cfg)
	if err != nil {
		t.Fatal(err)
	}
	perturb := geom.Euler{Theta: 1.1, Phi: -0.7, Omega: 0.4}
	n, src := datasetSource(ds, perturb)
	ctx := context.Background()
	opt := StreamOptions{Depth: 2, FFTWorkers: 2, RefineWorkers: 2}

	want, err := r.RefineStream(ctx, n, src, opt)
	if err != nil {
		t.Fatal(err)
	}

	// Level at a time, as the job service runs it between checkpoints.
	priors := make([]Result, n)
	for i := 0; i < n; i++ {
		it, _ := src(i)
		priors[i] = Result{Orient: it.Init}
	}
	for k := 0; k < len(cfg.Schedule); k++ {
		priors, err = r.RefineStreamLevels(ctx, n, src, priors, k, k+1, opt)
		if err != nil {
			t.Fatalf("level %d: %v", k, err)
		}
	}
	if !reflect.DeepEqual(want, priors) {
		for i := range want {
			if !reflect.DeepEqual(want[i], priors[i]) {
				t.Errorf("view %d: full %+v vs level-wise %+v", i, want[i], priors[i])
			}
		}
		t.Fatal("level-wise resume diverged from uninterrupted run")
	}
	// The recorded shifts must account exactly for the final centre.
	for i, res := range want {
		var dx, dy float64
		for _, st := range res.PerLevel {
			for _, s := range st.Shifts {
				dx += s[0]
				dy += s[1]
			}
		}
		if dx != res.Center[0] || dy != res.Center[1] {
			t.Errorf("view %d: shifts sum to (%g, %g), Center is (%g, %g)", i, dx, dy, res.Center[0], res.Center[1])
		}
	}
}

// TestRefineStreamLevelsValidation: bad priors length and level ranges
// are rejected up front.
func TestRefineStreamLevelsValidation(t *testing.T) {
	r, ds := streamFixture(t, 2)
	n, src := datasetSource(ds, geom.Euler{})
	ctx := context.Background()
	if _, err := r.RefineStreamLevels(ctx, n, src, make([]Result, n+1), 0, 1, StreamOptions{}); err == nil {
		t.Fatal("priors length mismatch not rejected")
	}
	if _, err := r.RefineStreamLevels(ctx, n, src, make([]Result, n), 0, 99, StreamOptions{}); err == nil {
		t.Fatal("out-of-range level not rejected")
	}
	if _, err := r.RefineStreamLevels(ctx, n, src, make([]Result, n), -1, 1, StreamOptions{}); err == nil {
		t.Fatal("negative start level not rejected")
	}
}
