package core

import (
	"errors"
	"testing"

	"repro/internal/ctf"
	"repro/internal/fourier"
	"repro/internal/geom"
	"repro/internal/micrograph"
	"repro/internal/phantom"
	"repro/internal/volume"
)

func streamFixture(t testing.TB, m int) (*Refiner, *micrograph.Dataset) {
	t.Helper()
	const l = 16
	truth := phantom.Asymmetric(l, 5, 1)
	truth.SphericalMask(6)
	ds := micrograph.Generate(truth, micrograph.GenParams{NumViews: m, PixelA: 2.5, Seed: 7})
	dft := fourier.NewVolumeDFTPadded(truth, 2)
	cfg := DefaultConfig(l)
	cfg.Schedule = []Level{{RAngular: 1, WindowHalf: 2, CenterDelta: 1, CenterHalf: 1}}
	r, err := NewRefiner(dft, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r, ds
}

func datasetSource(ds *micrograph.Dataset, perturb geom.Euler) (int, StreamSource) {
	views := make([]*volume.Image, len(ds.Views))
	ctfs := make([]ctf.Params, len(ds.Views))
	inits := make([]geom.Euler, len(ds.Views))
	for i, v := range ds.Views {
		views[i] = v.Image
		ctfs[i] = v.CTF
		inits[i] = v.TrueOrient.Add(perturb)
	}
	return len(views), SliceSource(views, ctfs, inits)
}

// TestRefineStreamMatchesBatch: the streaming pipeline must produce
// bit-identical results to the prepare-everything-then-refine batch
// path, for several pipeline shapes.
func TestRefineStreamMatchesBatch(t *testing.T) {
	r, ds := streamFixture(t, 6)
	perturb := geom.Euler{Theta: 1.2, Phi: -0.8, Omega: 0.5}
	n, src := datasetSource(ds, perturb)

	views := make([]*View, n)
	inits := make([]geom.Euler, n)
	for i := 0; i < n; i++ {
		it, _ := src(i)
		v, err := r.PrepareView(it.Image, it.CTF)
		if err != nil {
			t.Fatal(err)
		}
		views[i] = v
		inits[i] = it.Init
	}
	want, err := r.RefineBatch(views, inits, 1)
	if err != nil {
		t.Fatal(err)
	}

	for _, opt := range []StreamOptions{
		{},
		{Depth: 1, FFTWorkers: 1, RefineWorkers: 1},
		{Depth: 2, FFTWorkers: 3, RefineWorkers: 2},
		{FFTWorkers: 8, RefineWorkers: 8},
	} {
		got, err := r.RefineStream(n, src, opt)
		if err != nil {
			t.Fatalf("opt %+v: %v", opt, err)
		}
		if len(got) != n {
			t.Fatalf("opt %+v: %d results, want %d", opt, len(got), n)
		}
		for i := range got {
			if got[i].Orient != want[i].Orient || got[i].Center != want[i].Center || got[i].Distance != want[i].Distance {
				t.Fatalf("opt %+v view %d: stream %+v vs batch %+v", opt, i, got[i], want[i])
			}
		}
	}
}

// TestRefineStreamPropagatesErrors: a failing source cancels the
// pipeline and surfaces the error; a size-mismatched view fails in the
// FFT stage the same way.
func TestRefineStreamPropagatesErrors(t *testing.T) {
	r, ds := streamFixture(t, 4)
	boom := errors.New("disk on fire")
	n, good := datasetSource(ds, geom.Euler{})
	_, err := r.RefineStream(n, func(i int) (StreamItem, error) {
		if i == 2 {
			return StreamItem{}, boom
		}
		return good(i)
	}, StreamOptions{})
	if !errors.Is(err, boom) {
		t.Fatalf("source error not propagated: %v", err)
	}

	_, err = r.RefineStream(1, func(int) (StreamItem, error) {
		return StreamItem{Image: volume.NewImage(8)}, nil
	}, StreamOptions{})
	if err == nil {
		t.Fatal("size mismatch not surfaced")
	}
}

// TestRefineStreamEmpty: zero views is a no-op, not a deadlock.
func TestRefineStreamEmpty(t *testing.T) {
	r, _ := streamFixture(t, 1)
	res, err := r.RefineStream(0, func(int) (StreamItem, error) {
		panic("source must not be called")
	}, StreamOptions{})
	if err != nil || res != nil {
		t.Fatalf("empty stream: %v %v", res, err)
	}
}
