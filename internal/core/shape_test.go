package core

import (
	"runtime"
	"testing"
)

// StreamShape boundary cases: the resolved pipeline shape drives both
// the serving layer's status reports and the channel sizing of every
// stream run, so its defaulting rules are pinned here — zero and
// negative worker hints select GOMAXPROCS, explicit depths pass
// through, defaulted depth is twice the larger worker count, and a
// single-CPU process degenerates to a 1/1/2 pipeline.

func TestStreamShapeDefaults(t *testing.T) {
	p := runtime.GOMAXPROCS(0)
	for _, hint := range []int{0, -1, -99} {
		fft, ref, depth := StreamShape(StreamOptions{FFTWorkers: hint, RefineWorkers: hint, Depth: hint})
		if fft != p || ref != p {
			t.Errorf("hint %d: workers (%d, %d), want (%d, %d)", hint, fft, ref, p, p)
		}
		if depth != 2*p {
			t.Errorf("hint %d: depth %d, want %d", hint, depth, 2*p)
		}
	}
}

func TestStreamShapeDepthClamping(t *testing.T) {
	// Defaulted depth follows the larger stage, whichever it is.
	if _, _, depth := StreamShape(StreamOptions{FFTWorkers: 2, RefineWorkers: 6}); depth != 12 {
		t.Errorf("depth %d, want 12 (2×max(2, 6))", depth)
	}
	if _, _, depth := StreamShape(StreamOptions{FFTWorkers: 6, RefineWorkers: 2}); depth != 12 {
		t.Errorf("depth %d, want 12 (2×max(6, 2))", depth)
	}
	// An explicit positive depth is never adjusted, even when smaller
	// than the worker counts suggest.
	if _, _, depth := StreamShape(StreamOptions{FFTWorkers: 8, RefineWorkers: 8, Depth: 1}); depth != 1 {
		t.Errorf("explicit depth overridden: got %d, want 1", depth)
	}
	// Depth zero and negative both mean "derive".
	if _, _, depth := StreamShape(StreamOptions{FFTWorkers: 3, RefineWorkers: 1, Depth: -5}); depth != 6 {
		t.Errorf("negative depth hint: got %d, want 6", depth)
	}
}

func TestStreamShapeExplicitWorkers(t *testing.T) {
	fft, ref, depth := StreamShape(StreamOptions{FFTWorkers: 5, RefineWorkers: 7, Depth: 3})
	if fft != 5 || ref != 7 || depth != 3 {
		t.Errorf("shape (%d, %d, %d), want (5, 7, 3)", fft, ref, depth)
	}
}

func TestStreamShapeSingleCPU(t *testing.T) {
	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)
	fft, ref, depth := StreamShape(StreamOptions{})
	if fft != 1 || ref != 1 || depth != 2 {
		t.Errorf("GOMAXPROCS=1 shape (%d, %d, %d), want (1, 1, 2)", fft, ref, depth)
	}
	// Explicit hints still win over the single-CPU default.
	fft, ref, _ = StreamShape(StreamOptions{FFTWorkers: 4, RefineWorkers: 2})
	if fft != 4 || ref != 2 {
		t.Errorf("GOMAXPROCS=1 explicit workers (%d, %d), want (4, 2)", fft, ref)
	}
}
