package core

import (
	"math"

	"repro/internal/geom"
)

// searchRNG drives the adaptive descent's random probes: a splitmix64
// stream seeded from the job-level search seed, the schedule level, and
// the exact bits of the orientation the level starts from. Seeding from
// the level-entry state rather than a view index makes every entry
// point — RefineView, RefineBatch, RefineStream(Levels),
// RefineOnCluster — produce bit-identical descents for the same view,
// including a resume from a checkpoint journal: the journal round-trips
// the entry orientation exactly, so the resumed level reconstructs the
// identical probe stream. The global math/rand is never touched (the
// replint simclock contract).
type searchRNG struct{ state uint64 }

// splitmix64 increment and finalizer multipliers (Steele, Lea &
// Flood, "Fast splittable pseudorandom number generators").
const (
	smGamma = 0x9e3779b97f4a7c15
	smMul1  = 0xbf58476d1ce4e5b9
	smMul2  = 0x94d049bb133111eb
)

// mix64 is the splitmix64 output finalizer.
func mix64(z uint64) uint64 {
	z ^= z >> 30
	z *= smMul1
	z ^= z >> 27
	z *= smMul2
	z ^= z >> 31
	return z
}

// newSearchRNG derives the probe stream for one (seed, level,
// level-entry orientation) triple.
func newSearchRNG(seed int64, level int, entry geom.Euler) searchRNG {
	s := mix64(uint64(seed) + smGamma)
	s = mix64(s + uint64(level)*smMul1)
	s = mix64(s + math.Float64bits(entry.Theta))
	s = mix64(s + math.Float64bits(entry.Phi))
	s = mix64(s + math.Float64bits(entry.Omega))
	return searchRNG{state: s}
}

func (r *searchRNG) next() uint64 {
	r.state += smGamma
	return mix64(r.state)
}

// offset draws a lattice offset uniformly from [-h, h]. The modulo bias
// is negligible at window-sized h and irrelevant for a search
// heuristic — determinism, not statistical purity, is the contract.
func (r *searchRNG) offset(h int64) int64 {
	return int64(r.next()%uint64(2*h+1)) - h
}
