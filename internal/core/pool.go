package core

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// poolWorkers resolves a requested worker count for n independent work
// items: non-positive requests select GOMAXPROCS, and the pool never
// exceeds the number of items.
func poolWorkers(n, workers int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// runIndexed executes fn(worker, i) for every i in [0, n) on a bounded
// pool of the given number of workers. Work is handed out through an
// atomic counter, so load balances dynamically, and each index is
// processed exactly once — callers get deterministic input-order
// results by having fn write only to slot i of a preallocated slice.
// The worker id (0 ≤ worker < workers) lets callers bind per-worker
// scratch without synchronization. runIndexed returns after all items
// complete.
func runIndexed(n, workers int, fn func(worker, i int)) {
	workers = poolWorkers(n, workers)
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(worker, i)
			}
		}(w)
	}
	wg.Wait()
}
