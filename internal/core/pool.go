package core

import "repro/internal/pool"

// poolWorkers and runIndexed are thin aliases for internal/pool, the
// shared deterministic worker-pool primitive (also used by the parallel
// slab DFT in internal/parfft). See that package for the determinism
// contract.

func poolWorkers(n, workers int) int { return pool.Workers(n, workers) }

func runIndexed(n, workers int, fn func(worker, i int)) { pool.RunIndexed(n, workers, fn) }

func runIndexedLabeled(stage string, n, workers int, fn func(worker, i int)) {
	pool.RunIndexedLabeled(stage, n, workers, fn)
}
