package core

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/ctf"
	"repro/internal/fourier"
	"repro/internal/geom"
	"repro/internal/micrograph"
	"repro/internal/phantom"
)

func matcherFixture(t testing.TB, cfg Config) (*Refiner, *micrograph.Dataset) {
	t.Helper()
	truth := phantom.Asymmetric(20, 6, 1)
	truth.SphericalMask(8)
	ds := micrograph.Generate(truth, micrograph.GenParams{NumViews: 2, PixelA: 2, Seed: 2})
	dft := fourier.NewVolumeDFTPadded(truth, 2)
	r, err := NewRefiner(dft, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r, ds
}

func TestDistanceNonNegative(t *testing.T) {
	r, ds := matcherFixture(t, DefaultConfig(20))
	pv, _ := r.PrepareView(ds.Views[0].Image, ds.Views[0].CTF)
	sc := r.m.newScratch()
	f := func(th, ph, om float64) bool {
		o := geom.Euler{
			Theta: math.Mod(math.Abs(th), 180),
			Phi:   math.Mod(math.Abs(ph), 360),
			Omega: math.Mod(math.Abs(om), 360),
		}
		return r.m.distance(pv.vd, o, len(r.m.band), sc) >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestDistanceRawVsNormalized(t *testing.T) {
	// The raw (paper-formula) distance at the true orientation must
	// be small for a noiseless view; the normalized distance must be
	// invariant under scaling the view intensity.
	cfgRaw := DefaultConfig(20)
	cfgRaw.NormalizeScale = false
	rRaw, ds := matcherFixture(t, cfgRaw)
	v := ds.Views[0]
	pv, _ := rRaw.PrepareView(v.Image, v.CTF)
	sc := rRaw.m.newScratch()
	dTruth := rRaw.m.distance(pv.vd, v.TrueOrient, len(rRaw.m.band), sc)
	dOff := rRaw.m.distance(pv.vd, v.TrueOrient.Add(geom.Euler{Theta: 5}), len(rRaw.m.band), sc)
	if dTruth >= dOff {
		t.Fatalf("raw distance at truth (%g) not below offset (%g)", dTruth, dOff)
	}

	rNorm, _ := matcherFixture(t, DefaultConfig(20))
	scaled := v.Image.Clone()
	scaled.Scale(7.5)
	pv1, _ := rNorm.PrepareView(v.Image, v.CTF)
	pv2, _ := rNorm.PrepareView(scaled, v.CTF)
	// Ranking of two orientations must be preserved under scaling.
	scn := rNorm.m.newScratch()
	a1 := rNorm.m.distance(pv1.vd, v.TrueOrient, len(rNorm.m.band), scn)
	b1 := rNorm.m.distance(pv1.vd, v.TrueOrient.Add(geom.Euler{Phi: 4}), len(rNorm.m.band), scn)
	a2 := rNorm.m.distance(pv2.vd, v.TrueOrient, len(rNorm.m.band), scn)
	b2 := rNorm.m.distance(pv2.vd, v.TrueOrient.Add(geom.Euler{Phi: 4}), len(rNorm.m.band), scn)
	if (a1 < b1) != (a2 < b2) {
		t.Fatal("normalized distance ranking changed under intensity scaling")
	}
}

func TestBandSortedByRadius(t *testing.T) {
	r, _ := matcherFixture(t, DefaultConfig(20))
	for i := 1; i < len(r.m.band); i++ {
		if r.m.band[i].radius < r.m.band[i-1].radius {
			t.Fatal("band not sorted by radius")
		}
	}
}

func TestPrefixLen(t *testing.T) {
	r, _ := matcherFixture(t, DefaultConfig(20))
	full := len(r.m.band)
	if got := r.m.prefixLen(1e9); got != full {
		t.Fatalf("prefixLen(inf) = %d, want %d", got, full)
	}
	if got := r.m.prefixLen(0); got > 1 {
		t.Fatalf("prefixLen(0) = %d", got)
	}
	half := r.m.prefixLen(4)
	if half <= 1 || half >= full {
		t.Fatalf("prefixLen(4) = %d of %d", half, full)
	}
	// Every entry below the cut is within radius, everything after is
	// beyond it.
	for i := 0; i < half; i++ {
		if r.m.band[i].radius > 4 {
			t.Fatal("prefix contains out-of-radius entry")
		}
	}
	if r.m.band[half].radius <= 4 {
		t.Fatal("prefix excluded an in-radius entry")
	}
}

func TestApplyShiftPreservesPrefixEnergyConsistency(t *testing.T) {
	r, ds := matcherFixture(t, DefaultConfig(20))
	pv, _ := r.PrepareView(ds.Views[0].Image, ds.Views[0].CTF)
	before := pv.vd.prefixE[len(pv.vd.prefixE)-1]
	r.m.applyShift(pv.vd, 1.3, -0.4)
	after := pv.vd.prefixE[len(pv.vd.prefixE)-1]
	// A phase ramp is unitary per coefficient: total band energy is
	// unchanged.
	if math.Abs(before-after) > 1e-9*before {
		t.Fatalf("shift changed band energy: %g -> %g", before, after)
	}
	// And prefix sums must remain monotone and consistent.
	for i := 1; i < len(pv.vd.prefixE); i++ {
		if pv.vd.prefixE[i] < pv.vd.prefixE[i-1] {
			t.Fatal("prefix energies not monotone")
		}
	}
}

func TestShiftedDistanceAgreesWithAppliedShift(t *testing.T) {
	r, ds := matcherFixture(t, DefaultConfig(20))
	v := ds.Views[0]
	pv, _ := r.PrepareView(v.Image, v.CTF)
	n := len(r.m.band)
	cut := make([]complex128, n)
	r.m.sampleCut(cut, pv.vd.refW, v.TrueOrient)
	want := r.m.shiftedDistance(pv.vd, cut, 0.7, -1.1)
	r.m.applyShift(pv.vd, 0.7, -1.1)
	got := r.m.shiftedDistance(pv.vd, cut, 0, 0)
	if math.Abs(want-got) > 1e-9*(1+want) {
		t.Fatalf("shiftedDistance %g != distance after applyShift %g", want, got)
	}
}

func TestWeightingAffectsDistanceOrdering(t *testing.T) {
	// A weighting that kills the high frequencies makes the distance
	// insensitive to fine mismatch: distances at small offsets shrink
	// relative to the unweighted metric.
	cfgW := DefaultConfig(20)
	cfgW.Weighting = func(radius float64) float64 {
		if radius > 3 {
			return 0
		}
		return 1
	}
	rw, ds := matcherFixture(t, cfgW)
	ru, _ := matcherFixture(t, DefaultConfig(20))
	if len(rw.m.band) >= len(ru.m.band) {
		t.Fatal("weighting did not prune the band")
	}
	v := ds.Views[0]
	pvw, _ := rw.PrepareView(v.Image, v.CTF)
	pvu, _ := ru.PrepareView(v.Image, v.CTF)
	// Both metrics must still prefer the truth over a large offset.
	off := v.TrueOrient.Add(geom.Euler{Theta: 8})
	scw, scu := rw.m.newScratch(), ru.m.newScratch()
	if rw.m.distance(pvw.vd, v.TrueOrient, len(rw.m.band), scw) >= rw.m.distance(pvw.vd, off, len(rw.m.band), scw) {
		t.Fatal("weighted metric lost discrimination entirely")
	}
	if ru.m.distance(pvu.vd, v.TrueOrient, len(ru.m.band), scu) >= ru.m.distance(pvu.vd, off, len(ru.m.band), scu) {
		t.Fatal("unweighted metric lost discrimination")
	}
}

func TestSpectralWeightGatesDeadShells(t *testing.T) {
	cfg := DefaultConfig(20)
	cfg.SpectralWeight = true
	r, _ := matcherFixture(t, cfg)
	// With the gate, weights at shells beyond the particle's spectral
	// support must be much smaller than at the strongest shells.
	maxW, minW := 0.0, math.Inf(1)
	for _, e := range r.m.band {
		if e.weight > maxW {
			maxW = e.weight
		}
		if e.weight < minW {
			minW = e.weight
		}
	}
	if minW >= maxW {
		t.Fatal("spectral weighting produced uniform weights")
	}
}

func TestEstimateMatchFlopsMonotone(t *testing.T) {
	if EstimateMatchFlops(100) >= EstimateMatchFlops(200) {
		t.Fatal("match flops not monotone in band size")
	}
	if EstimateViewFFTFlops(64) >= EstimateViewFFTFlops(128) {
		t.Fatal("view FFT flops not monotone in size")
	}
	if EstimateViewFFTFlops(1) != 0 {
		t.Fatal("degenerate FFT flops nonzero")
	}
}

func TestCTFCutWeightsShape(t *testing.T) {
	r, _ := matcherFixture(t, DefaultConfig(20))
	p := ctf.Typical(2.0)
	w := r.m.ctfCutWeights(p)
	if len(w) != len(r.m.band) {
		t.Fatal("weight length mismatch")
	}
	for i, v := range w {
		if v < 0 || v > 1.2 {
			t.Fatalf("weight %d = %g out of range", i, v)
		}
	}
}

func TestBandSizeScalesWithRadius(t *testing.T) {
	small := BandSize(64, Config{RMap: 8, Schedule: DefaultSchedule()})
	big := BandSize(64, Config{RMap: 16, Schedule: DefaultSchedule()})
	// Area scaling: 4x the coefficients for 2x the radius.
	ratio := float64(big) / float64(small)
	if ratio < 3.5 || ratio > 4.5 {
		t.Fatalf("band scaling ratio %g, want ≈4", ratio)
	}
}
