package core

import (
	"context"
	"fmt"
	"runtime/pprof"
	"sync"

	"repro/internal/ctf"
	"repro/internal/fourier"
	"repro/internal/geom"
	"repro/internal/obs"
	"repro/internal/volume"
)

// labeledStage runs body under a runtime/pprof goroutine label
// (key "stage") when instrumentation is enabled, so CPU profiles
// attribute samples to the pipeline stage; otherwise it calls body
// directly.
func labeledStage(stage string, body func()) {
	if obs.Enabled() {
		pprof.Do(context.Background(), pprof.Labels("stage", stage), func(context.Context) { body() })
		return
	}
	body()
}

// Streaming refinement. RefineBatch wants every view prepared up
// front, which materializes all m view spectra at once; on
// production-scale datasets (the paper's 4,422 views of 511² pixels)
// that is gigabytes of complex coefficients that exist only to be
// reduced to a band. RefineStream instead runs a bounded three-stage
// pipeline
//
//	load → 2-D FFT + CTF + band extraction → refine
//
// where stages are connected by channels of capacity Depth, every
// stage reuses per-worker scratch (the FFT stage owns one spectrum
// buffer and one real-input plan per worker; the refine stage owns one
// matching scratch per worker), and a view's full l² spectrum never
// outlives its band extraction. At any instant the pipeline holds at
// most Depth+FFTWorkers raw images and Depth+RefineWorkers band-sized
// views — independent of the dataset size.

// StreamItem is one view entering the streaming pipeline.
type StreamItem struct {
	// Image is the raw experimental view E_q.
	Image *volume.Image
	// CTF carries the microscope parameters consulted when the refiner
	// is configured for CTF correction or cut weighting.
	CTF ctf.Params
	// Init is the rough initial orientation O_q^init.
	Init geom.Euler
}

// StreamSource produces view i on demand (step b's "read the next
// view" made explicit). It is called sequentially from a single loader
// goroutine, in index order, so implementations may read from a file
// without locking.
type StreamSource func(i int) (StreamItem, error)

// SliceSource adapts already-materialized slices to a StreamSource —
// convenient for tests and benchmarks. ctfs may be nil or empty when
// no CTF state applies.
func SliceSource(views []*volume.Image, ctfs []ctf.Params, inits []geom.Euler) StreamSource {
	return func(i int) (StreamItem, error) {
		it := StreamItem{Image: views[i], Init: inits[i]}
		if len(ctfs) > 0 {
			it.CTF = ctfs[i]
		}
		return it, nil
	}
}

// StreamOptions configures the pipeline shape.
type StreamOptions struct {
	// Depth is the capacity of each inter-stage channel; it bounds how
	// many views sit between stages. ≤0 selects twice the larger
	// worker count.
	Depth int
	// FFTWorkers is the number of transform-stage workers (each owns a
	// reusable spectrum buffer and real-input plan). ≤0 selects
	// GOMAXPROCS.
	FFTWorkers int
	// RefineWorkers is the number of refinement-stage workers (each
	// owns one matching scratch). ≤0 selects GOMAXPROCS. Refinement
	// dominates end-to-end cost, so give it the cores when tuning.
	RefineWorkers int
}

// StreamShape resolves the effective pipeline shape the options would
// select for a large stream: FFT workers, refine workers, and channel
// depth after defaulting. Useful for reporting what a run actually
// used.
func StreamShape(opt StreamOptions) (fftWorkers, refineWorkers, depth int) {
	const many = 1 << 30 // don't let a small n clamp the answer
	fftWorkers = poolWorkers(many, opt.FFTWorkers)
	refineWorkers = poolWorkers(many, opt.RefineWorkers)
	depth = opt.Depth
	if depth <= 0 {
		depth = 2 * fftWorkers
		if 2*refineWorkers > depth {
			depth = 2 * refineWorkers
		}
	}
	return fftWorkers, refineWorkers, depth
}

// RefineStream refines n views pulled on demand from src through the
// bounded pipeline, returning results in input order. Results are
// bit-identical to RefineBatch over the same views: per-view
// refinement is deterministic and workers write only their own result
// slot, so pipeline scheduling cannot leak into the output. The first
// error (from src or from view preparation) cancels the pipeline and
// is returned.
//
// Cancelling ctx aborts the pipeline between views — the loader stops
// pulling, in-flight views finish their current stage, every stage
// goroutine exits before RefineStream returns, and the context's error
// is returned. ctx must be non-nil.
func (r *Refiner) RefineStream(ctx context.Context, n int, src StreamSource, opt StreamOptions) ([]Result, error) {
	return r.refineStreamRange(ctx, n, src, nil, 0, len(r.cfg.Schedule), opt)
}

// RefineStreamLevels runs schedule levels [start, stop) of the
// refinement through the streaming pipeline, continuing each view from
// priors[i] — the serving layer's checkpoint-resume entry point. The
// FFT stage prepares view i freshly from src and then replays every
// centre-shift increment recorded in priors[i].PerLevel (in order),
// which restores the band state of the original run bit-for-bit; the
// refine stage then continues from priors[i].Orient. Running the
// schedule one level at a time through this entry point — re-preparing
// and replaying at each level — therefore produces results
// bit-identical to one uninterrupted RefineStream over the full
// schedule. StreamItem.Init is ignored; priors supply the
// orientations. priors must have length n.
func (r *Refiner) RefineStreamLevels(ctx context.Context, n int, src StreamSource, priors []Result, start, stop int, opt StreamOptions) ([]Result, error) {
	if len(priors) != n {
		return nil, fmt.Errorf("core: %d views but %d prior results", n, len(priors))
	}
	if start < 0 || stop < start || stop > len(r.cfg.Schedule) {
		return nil, fmt.Errorf("core: level range [%d, %d) outside schedule of %d levels", start, stop, len(r.cfg.Schedule))
	}
	return r.refineStreamRange(ctx, n, src, priors, start, stop, opt)
}

// refineStreamRange is the shared pipeline behind RefineStream and
// RefineStreamLevels. priors == nil means "fresh run": each view
// starts from its StreamItem.Init and runs the whole [start, stop)
// range with no shift replay.
func (r *Refiner) refineStreamRange(ctx context.Context, n int, src StreamSource, priors []Result, start, stop int, opt StreamOptions) ([]Result, error) {
	if n < 0 {
		return nil, fmt.Errorf("core: negative view count %d", n)
	}
	if n == 0 {
		return nil, nil
	}
	fftWorkers := poolWorkers(n, opt.FFTWorkers)
	refineWorkers := poolWorkers(n, opt.RefineWorkers)
	depth := opt.Depth
	if depth <= 0 {
		depth = 2 * fftWorkers
		if 2*refineWorkers > depth {
			depth = 2 * refineWorkers
		}
	}

	type loadedView struct {
		i    int
		item StreamItem
	}
	type preparedView struct {
		i    int
		v    *View
		init geom.Euler
	}
	loaded := make(chan loadedView, depth)
	prepared := make(chan preparedView, depth)
	abort := make(chan struct{})
	var once sync.Once
	var firstErr error
	fail := func(err error) {
		once.Do(func() {
			firstErr = err
			close(abort)
		})
	}
	// cancelled reports (and latches) context cancellation; checked
	// between views in every stage so an abort never waits on a full
	// level of work.
	cancelled := func() bool {
		if err := ctx.Err(); err != nil {
			fail(err)
			return true
		}
		return false
	}

	// Stage 1: sequential loader.
	var loadWG sync.WaitGroup
	loadWG.Add(1)
	go labeledStage("core.stream.load", func() {
		defer loadWG.Done()
		defer close(loaded)
		for i := 0; i < n; i++ {
			if cancelled() {
				return
			}
			item, err := src(i)
			if err != nil {
				fail(fmt.Errorf("core: loading view %d: %w", i, err))
				return
			}
			select {
			case loaded <- loadedView{i: i, item: item}:
			case <-abort:
				return
			case <-ctx.Done():
				fail(ctx.Err())
				return
			}
		}
	})

	// Stage 2: 2-D FFT + CTF + band extraction on reusable scratch,
	// plus checkpoint shift replay when resuming from priors.
	var fftWG sync.WaitGroup
	for w := 0; w < fftWorkers; w++ {
		fftWG.Add(1)
		go labeledStage("core.stream.fft", func() {
			defer fftWG.Done()
			trans := fourier.NewViewTransformer(r.m.l)
			buf := volume.NewCImage(r.m.l)
			for lv := range loaded {
				if cancelled() {
					return
				}
				v, err := r.prepareViewReuse(lv.item.Image, lv.item.CTF, trans, buf)
				if err != nil {
					fail(fmt.Errorf("core: preparing view %d: %w", lv.i, err))
					return
				}
				init := lv.item.Init
				if priors != nil {
					for _, st := range priors[lv.i].PerLevel {
						for _, s := range st.Shifts {
							r.m.applyShift(v.vd, s[0], s[1])
						}
					}
					init = priors[lv.i].Orient
				}
				select {
				case prepared <- preparedView{i: lv.i, v: v, init: init}:
				case <-abort:
					return
				case <-ctx.Done():
					fail(ctx.Err())
					return
				}
			}
		})
	}
	go func() {
		fftWG.Wait()
		close(prepared)
	}()

	// Stage 3: refinement, one matching scratch per worker; results
	// land in input order by index.
	results := make([]Result, n)
	var refineWG sync.WaitGroup
	for w := 0; w < refineWorkers; w++ {
		refineWG.Add(1)
		go labeledStage("core.stream.refine", func() {
			defer refineWG.Done()
			sc := r.m.newScratch()
			for pv := range prepared {
				if cancelled() {
					return
				}
				prior := Result{Orient: pv.init}
				if priors != nil {
					prior = priors[pv.i]
					prior.Orient = pv.init
				}
				results[pv.i] = r.refineViewRange(pv.v, prior, start, stop, sc)
				streamViews.Inc()
			}
		})
	}
	refineWG.Wait()
	// The refine stage only exits after prepared is closed (fft workers
	// done) or a failure latched; wait for the loader too so no stage
	// goroutine outlives the call.
	loadWG.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return results, nil
}

// prepareViewReuse is PrepareView bound to caller-owned transform
// scratch: the spectrum lands in buf (overwritten) and only the
// band-sized view state is freshly allocated.
func (r *Refiner) prepareViewReuse(im *volume.Image, p ctf.Params, trans *fourier.ViewTransformer, buf *volume.CImage) (*View, error) {
	if im.L != r.m.l {
		return nil, fmt.Errorf("core: view size %d does not match map size %d", im.L, r.m.l)
	}
	trans.Transform(im, buf)
	if r.cfg.CorrectCTF {
		if err := ctf.Correct(buf, p, r.cfg.CTFMode); err != nil {
			return nil, err
		}
	}
	var refW []float64
	if r.cfg.CTFWeightCuts {
		refW = r.m.ctfCutWeights(p)
	}
	return &View{vd: r.m.prepareView(buf, refW)}, nil
}
