package core

import "repro/internal/obs"

// Matcher and refinement traffic. Kernel counters fire inside the
// //repro:hotpath entry points (a bump is one atomic add, and nothing
// when disabled); the per-resolution-level vectors are recorded once
// per completed level from the level's own LevelStats, outside any
// kernel. Levels beyond the vector width clamp into the last cell.
const maxLevelCells = 8

var (
	matchDistanceEvals = obs.NewCounter("core.match.distance_evals")
	matchShiftedEvals  = obs.NewCounter("core.match.shifted_evals")

	levelMatchings    = obs.NewCounterVec("core.level.matchings", maxLevelCells)
	levelSlides       = obs.NewCounterVec("core.level.slides", maxLevelCells)
	levelCenterEvals  = obs.NewCounterVec("core.level.center_evals", maxLevelCells)
	levelCenterSlides = obs.NewCounterVec("core.level.center_slides", maxLevelCells)
	levelDescentMoves = obs.NewCounterVec("core.level.descent_moves", maxLevelCells)

	viewsRefined = obs.NewCounter("core.views_refined")
	streamViews  = obs.NewCounter("core.stream.views")
)

// recordLevelStats folds one completed level's statistics into the
// per-level counters.
func recordLevelStats(li int, st LevelStats) {
	if !obs.Enabled() {
		return
	}
	levelMatchings.Add(li, int64(st.Matchings))
	levelSlides.Add(li, int64(st.Slides))
	levelCenterEvals.Add(li, int64(st.CenterEvals))
	levelCenterSlides.Add(li, int64(st.CenterSlides))
	levelDescentMoves.Add(li, int64(st.DescentMoves))
}
