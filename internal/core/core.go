// Package core implements the paper's primary contribution: a
// sliding-window, multi-resolution, Fourier-domain orientation
// refinement algorithm for virus particles of unknown symmetry
// (paper §4, steps a–o).
//
// Given the centred 3-D DFT D̂ of the current electron-density map and
// a set of experimental views with rough initial orientations, the
// refiner:
//
//  1. transforms each view (2-D DFT) and applies a CTF correction
//     (steps d, e);
//  2. for each view, walks a multi-resolution schedule of angular
//     resolutions (typically 1°, 0.1°, 0.01°, 0.002°); at each level it
//     evaluates the distance between the view transform and
//     central-section cuts of D̂ over a w_θ×w_φ×w_ω window of candidate
//     orientations (steps f–h);
//  3. slides the window whenever the best cut lands on its edge
//     (step i);
//  4. refines the particle centre on a shrinking grid of sub-pixel
//     shifts applied as Fourier phase ramps, with the same sliding-box
//     rule (steps k, l).
//
// No assumption is made about particle symmetry: the search window is
// free to wander anywhere on SO(3), which is what lets the method
// refine asymmetric particles and *discover* the symmetry of symmetric
// ones.
package core

import (
	"fmt"

	"repro/internal/ctf"
	"repro/internal/fourier"
	"repro/internal/geom"
)

// Level is one stage of the multi-resolution schedule.
type Level struct {
	// RAngular is the angular resolution r_angular in degrees: the
	// grid step of the search window.
	RAngular float64
	// WindowHalf is the window half-width in degrees per axis. The
	// number of cuts per axis is 2·(WindowHalf/RAngular)+1; the
	// paper's typical w_θ = w_φ = w_ω ≈ 10 corresponds to
	// WindowHalf ≈ 4.5·RAngular.
	WindowHalf float64
	// CenterDelta is the centre-refinement step δ_center in pixels.
	// Zero disables centre refinement at this level.
	CenterDelta float64
	// CenterHalf is the half-size of the centre search box in steps:
	// 1 gives the paper's 3×3 box (n_center = 9).
	CenterHalf int
	// RMapFrac restricts matching at this level to Fourier radii
	// ≤ RMapFrac·Config.RMap. Coarse levels match on low frequencies
	// only — they are insensitive to residual centre error and the
	// landscape is smooth — while fine levels use the full band.
	// Zero means 1.0 (full band).
	RMapFrac float64
}

// effRMapFrac resolves the zero-means-full default.
func (lv Level) effRMapFrac() float64 {
	if lv.RMapFrac == 0 {
		return 1
	}
	return lv.RMapFrac
}

// DefaultSchedule returns the paper's refinement schedule: angular
// resolutions 1°, 0.1°, 0.01° and 0.002°, with centre resolutions
// 1, 0.1, 0.01 and 0.001 pixels (§5), and 9 cuts per axis per window.
func DefaultSchedule() []Level {
	return []Level{
		{RAngular: 1, WindowHalf: 4, CenterDelta: 1, CenterHalf: 1, RMapFrac: 0.4},
		{RAngular: 0.1, WindowHalf: 0.4, CenterDelta: 0.1, CenterHalf: 1, RMapFrac: 0.7},
		{RAngular: 0.01, WindowHalf: 0.04, CenterDelta: 0.01, CenterHalf: 1},
		{RAngular: 0.002, WindowHalf: 0.008, CenterDelta: 0.001, CenterHalf: 1},
	}
}

// SearchMode selects how a schedule level's orientation window is
// searched.
type SearchMode string

const (
	// SearchExhaustive scores every orientation of the sliding window —
	// the paper's steps f–i verbatim. It is also what the zero value ""
	// resolves to, so hand-built Configs keep their historical
	// behaviour.
	SearchExhaustive SearchMode = "exhaustive"
	// SearchAdaptive replaces the flat scan with seeded stochastic
	// hill-climbing over the level's orientation lattice: only the
	// neighborhood of the current best (plus a few random probes) is
	// scored per move, cutting distance evaluations by an order of
	// magnitude once a view is converging. Results are deterministic —
	// the probe streams derive from Config.SearchSeed, never global
	// rand — and the flat scan remains available as the correctness
	// oracle (Refiner.ExhaustiveRefine).
	SearchAdaptive SearchMode = "adaptive"
)

// Config controls the refiner.
type Config struct {
	// RMap is the Fourier radius r_map (in frequency-index units):
	// only coefficients with h²+k² ≤ RMap² enter the distance, which
	// both band-limits the comparison and bounds its cost.
	RMap float64
	// RMin optionally excludes the lowest-frequency coefficients
	// (below it) from the distance; the paper notes that for capsids
	// one can compare only the shell that carries discriminating
	// signal.
	RMin float64
	// Schedule is the multi-resolution plan; nil selects
	// DefaultSchedule.
	Schedule []Level
	// Weighting optionally weights each Fourier coefficient by its
	// radius, "to give more weight to higher frequency components at
	// higher resolution"; nil means uniform weights.
	Weighting func(radius float64) float64
	// SpectralWeight additionally weights each coefficient by the
	// reference map's own radial power at that radius — a matched
	// filter that suppresses frequency shells where the particle has
	// no signal and experimental noise would otherwise dominate the
	// distance. This is the production realization of the paper's
	// wt(j,k) and is strongly recommended for noisy data.
	SpectralWeight bool
	// Interp selects the 3-D interpolation used to cut D̂.
	Interp fourier.Interpolation
	// MaxSlides bounds how many times a window or centre box may be
	// re-centred per level (n_window).
	MaxSlides int
	// ParabolicCenter enables sub-grid parabolic interpolation of the
	// centre-search minimum, removing the ±δ/2 quantization residue.
	// Production refinement wants this on; the legacy baseline turns
	// it off to reproduce grid-limited centre accuracy.
	ParabolicCenter bool
	// NormalizeScale, when set, scales each cut to the view by least
	// squares before the distance, making the metric insensitive to
	// the arbitrary intensity gain of experimental images. Disable to
	// use the paper's raw formula.
	NormalizeScale bool
	// CorrectCTF applies the given correction to view transforms
	// before matching (step e).
	CorrectCTF bool
	// CTFMode selects the correction used when CorrectCTF is set.
	CTFMode ctf.Correction
	// CTFWeightCuts additionally weights every reference cut by
	// |CTF(s)| for the view's microscope parameters — the matched-
	// filter comparison: a phase-flipped view retains the microscope's
	// amplitude attenuation, so the reference it is compared against
	// should be attenuated identically. Most effective together with
	// CorrectCTF + PhaseFlip.
	CTFWeightCuts bool
	// Search selects the per-level orientation search. The zero value
	// resolves to SearchExhaustive for backward compatibility;
	// DefaultConfig selects SearchAdaptive.
	Search SearchMode
	// SearchSeed seeds the adaptive descent's deterministic probe
	// streams (per level and per level-entry orientation). Two runs
	// with the same seed are bit-identical regardless of worker count.
	SearchSeed int64
	// SearchProbes is how many random lattice probes the adaptive
	// descent adds to each neighborhood batch (0 selects 2). More
	// probes escape shallow local minima at proportionally more
	// distance evaluations.
	SearchProbes int
	// ExhaustiveLevels forces the flat window scan on the first n
	// schedule levels even under SearchAdaptive, for callers whose
	// initial orientations are too rough to trust a descent. The
	// default 0 runs the descent everywhere — its virtual sliding
	// window (see DESIGN.md §12) already covers edge-chasing starts.
	ExhaustiveLevels int
}

// DefaultConfig returns a production configuration for maps of size l:
// r_map at 80% of Nyquist, trilinear cuts, least-squares scaling,
// the paper's schedule, adaptive orientation search, and at most 10
// window slides.
func DefaultConfig(l int) Config {
	return Config{
		RMap:            0.8 * float64(l) / 2,
		Schedule:        DefaultSchedule(),
		Interp:          fourier.Trilinear,
		MaxSlides:       10,
		NormalizeScale:  true,
		ParabolicCenter: true,
		Search:          SearchAdaptive,
	}
}

// searchModeAt resolves the orientation-search mode of schedule level
// li: adaptive configurations still run the flat scan on the first
// ExhaustiveLevels levels, and every other Search value — including
// the zero value — is the exhaustive scan.
func (c *Config) searchModeAt(li int) SearchMode {
	if c.Search == SearchAdaptive && li >= c.ExhaustiveLevels {
		return SearchAdaptive
	}
	return SearchExhaustive
}

// effSearchProbes resolves the zero-means-default probe count.
func (c *Config) effSearchProbes() int {
	if c.SearchProbes == 0 {
		return 2
	}
	return c.SearchProbes
}

// Validate reports configuration errors.
func (c *Config) Validate() error {
	if c.RMap <= 0 {
		return fmt.Errorf("core: RMap must be positive, got %g", c.RMap)
	}
	if c.RMin < 0 || c.RMin >= c.RMap {
		return fmt.Errorf("core: RMin %g out of range [0, RMap)", c.RMin)
	}
	for i, lv := range c.Schedule {
		if lv.RAngular <= 0 {
			return fmt.Errorf("core: level %d has non-positive RAngular", i)
		}
		if lv.WindowHalf < 0 {
			return fmt.Errorf("core: level %d has negative WindowHalf", i)
		}
		if lv.CenterDelta < 0 || lv.CenterHalf < 0 {
			return fmt.Errorf("core: level %d has negative centre parameters", i)
		}
		if lv.RMapFrac < 0 || lv.RMapFrac > 1 {
			return fmt.Errorf("core: level %d has RMapFrac %g outside [0, 1]", i, lv.RMapFrac)
		}
	}
	if c.MaxSlides < 0 {
		return fmt.Errorf("core: MaxSlides must be non-negative")
	}
	switch c.Search {
	case "", SearchExhaustive, SearchAdaptive:
	default:
		return fmt.Errorf("core: unknown search mode %q", c.Search)
	}
	if c.SearchProbes < 0 {
		return fmt.Errorf("core: SearchProbes must be non-negative")
	}
	if c.ExhaustiveLevels < 0 {
		return fmt.Errorf("core: ExhaustiveLevels must be non-negative")
	}
	return nil
}

// LevelStats counts the work done at one schedule level for one view.
type LevelStats struct {
	// Matchings is the number of distinct cut-distance evaluations
	// (each is one "matching operation": construct a cut, compute the
	// distance — paper §4).
	Matchings int
	// Slides is how many times the sliding window was re-centred. The
	// adaptive descent counts slides of its virtual window — each time
	// the best orientation wanders more than the window half-width from
	// the current centre — so the field means the same thing in both
	// search modes.
	Slides int
	// DescentMoves is how many times the adaptive descent moved its
	// best orientation (0 under the exhaustive scan).
	DescentMoves int
	// CenterEvals is the number of centre-shift distance evaluations.
	CenterEvals int
	// CenterSlides is how many times the centre box was re-centred.
	CenterSlides int
	// BandUsed is the number of Fourier coefficients per matching at
	// this level (the low-frequency prefix selected by RMapFrac).
	BandUsed int
	// Shifts records, in application order, every centre-shift
	// increment (dx, dy) baked into the view's band during this level
	// (one entry per refineLevel round that moved the centre). Replaying
	// the increments on a freshly prepared view — in PerLevel order,
	// via Refiner.ApplyShift — reproduces the view's band state
	// bit-identically, which is what lets a checkpointed refinement
	// resume mid-schedule with no numerical drift (see RefineStreamLevels).
	Shifts [][2]float64
}

// Result is the refined solution for one view (step n):
// O^refined = {θ_µ, φ_µ, ω_µ, x_center, y_center}.
type Result struct {
	// Orient is the refined orientation.
	Orient geom.Euler
	// Center is the refined particle-centre offset (dx, dy) in pixels
	// relative to the geometric image centre l/2.
	Center [2]float64
	// Distance is the final matching distance d(F, C_µ).
	Distance float64
	// PerLevel records the work done at each schedule level.
	PerLevel []LevelStats
}

// TotalMatchings sums matching operations across levels.
func (r *Result) TotalMatchings() int {
	n := 0
	for _, s := range r.PerLevel {
		n += s.Matchings
	}
	return n
}

// TotalSlides sums window slides across levels.
func (r *Result) TotalSlides() int {
	n := 0
	for _, s := range r.PerLevel {
		n += s.Slides
	}
	return n
}
