package core

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/cluster"
	"repro/internal/ctf"
	"repro/internal/geom"
	"repro/internal/micrograph"
	"repro/internal/obs"
	"repro/internal/volume"
)

// The determinism contract under instrumentation: enabling counters,
// pprof stage labels, trace recording and the structured event log
// must leave refinement output and simulated-clock totals
// bit-identical. Instruments only read the
// simulated clock and bump atomics — these tests pin that property
// (and run under -race in CI, exercising the concurrent bumps).

// clusterInputs splits a dataset into the parallel-pass argument
// slices with perturbed initial orientations.
func clusterInputs(ds *micrograph.Dataset, perturb geom.Euler) ([]*volume.Image, []ctf.Params, []geom.Euler) {
	images := make([]*volume.Image, len(ds.Views))
	ctfs := make([]ctf.Params, len(ds.Views))
	inits := make([]geom.Euler, len(ds.Views))
	for i, v := range ds.Views {
		images[i] = v.Image
		ctfs[i] = v.CTF
		inits[i] = v.TrueOrient.Add(perturb)
	}
	return images, ctfs, inits
}

func TestRefineBatchBitIdenticalUnderObs(t *testing.T) {
	r, ds := streamFixture(t, 4)
	perturb := geom.Euler{Theta: 0.8, Phi: -0.5, Omega: 0.3}

	run := func() []Result {
		views := make([]*View, len(ds.Views))
		inits := make([]geom.Euler, len(ds.Views))
		for i, v := range ds.Views {
			pv, err := r.PrepareView(v.Image, v.CTF)
			if err != nil {
				t.Fatal(err)
			}
			views[i] = pv
			inits[i] = v.TrueOrient.Add(perturb)
		}
		res, err := r.RefineBatch(context.Background(), views, inits, 3)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	prev := obs.SetEnabled(false)
	defer obs.SetEnabled(prev)
	plain := run()

	obs.SetEnabled(true)
	obs.StartTrace()
	obs.StartEvents(1024)
	instrumented := run()
	obs.EndTrace()
	obs.StopEvents()

	if !reflect.DeepEqual(plain, instrumented) {
		t.Fatalf("RefineBatch results differ under instrumentation:\n  plain        %+v\n  instrumented %+v",
			plain, instrumented)
	}
}

func TestRefineStreamBitIdenticalUnderObs(t *testing.T) {
	r, ds := streamFixture(t, 5)
	perturb := geom.Euler{Theta: -0.6, Phi: 0.4, Omega: 0.9}
	n, src := datasetSource(ds, perturb)
	opt := StreamOptions{Depth: 2, FFTWorkers: 2, RefineWorkers: 2}

	prev := obs.SetEnabled(false)
	defer obs.SetEnabled(prev)
	plain, err := r.RefineStream(context.Background(), n, src, opt)
	if err != nil {
		t.Fatal(err)
	}

	obs.SetEnabled(true)
	obs.StartEvents(1024)
	instrumented, err := r.RefineStream(context.Background(), n, src, opt)
	obs.StopEvents()
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(plain, instrumented) {
		t.Fatal("RefineStream results differ under instrumentation")
	}
}

// TestRefineOnClusterTimingsBitIdenticalUnderObs: the simulated-clock
// totals (per-step makespans and per-view results) must not move when
// the full instrumentation — counters, spans, stage labels — records
// the run.
func TestRefineOnClusterTimingsBitIdenticalUnderObs(t *testing.T) {
	r, ds := streamFixture(t, 6)
	perturb := geom.Euler{Theta: 0.7, Phi: 0.2, Omega: -0.4}
	images, ctfs, inits := clusterInputs(ds, perturb)
	opt := DefaultParallelOptions()

	run := func() ([]Result, StepTimes) {
		cl := cluster.New(3, cluster.SP2)
		res, times, err := r.RefineOnCluster(cl, images, ctfs, inits, opt)
		if err != nil {
			t.Fatal(err)
		}
		return res, times
	}

	prev := obs.SetEnabled(false)
	defer obs.SetEnabled(prev)
	plainRes, plainTimes := run()

	obs.SetEnabled(true)
	tr := obs.StartTrace()
	obs.StartEvents(1024)
	instRes, instTimes := run()
	obs.EndTrace()
	obs.StopEvents()

	if plainTimes != instTimes {
		t.Fatalf("simulated step times differ under instrumentation:\n  plain        %+v\n  instrumented %+v",
			plainTimes, instTimes)
	}
	if !reflect.DeepEqual(plainRes, instRes) {
		t.Fatal("RefineOnCluster results differ under instrumentation")
	}
	// And the trace actually recorded the refinement phases.
	cats := map[string]int{}
	for _, e := range tr.Events() {
		cats[e.Cat]++
	}
	if cats["refine"] == 0 {
		t.Fatal("trace recorded no refine-phase events")
	}
}

// TestLevelCountersRecord: one refinement moves the per-level counter
// vectors by exactly the LevelStats the result reports.
func TestLevelCountersRecord(t *testing.T) {
	r, ds := streamFixture(t, 1)
	prev := obs.SetEnabled(true)
	defer obs.SetEnabled(prev)

	before := levelMatchings.Value(0)
	beforeEvals := levelCenterEvals.Value(0)
	pv, err := r.PrepareView(ds.Views[0].Image, ds.Views[0].CTF)
	if err != nil {
		t.Fatal(err)
	}
	res := r.RefineView(pv, ds.Views[0].TrueOrient.Add(geom.Euler{Theta: 0.5}))
	if len(res.PerLevel) == 0 {
		t.Fatal("no per-level stats")
	}
	st := res.PerLevel[0]
	if got := levelMatchings.Value(0) - before; got != int64(st.Matchings) {
		t.Fatalf("level-0 matchings counter moved %d, LevelStats says %d", got, st.Matchings)
	}
	if got := levelCenterEvals.Value(0) - beforeEvals; got != int64(st.CenterEvals) {
		t.Fatalf("level-0 centre-eval counter moved %d, LevelStats says %d", got, st.CenterEvals)
	}
}
