package core

import (
	"context"
	"fmt"
	"math"
	"sync"

	"repro/internal/ctf"
	"repro/internal/fourier"
	"repro/internal/geom"
	"repro/internal/volume"
)

// Refiner refines view orientations against one reference map
// spectrum. It is safe for concurrent use by multiple goroutines: all
// shared matching state is read-only after construction, and mutable
// kernel buffers come from a per-call scratch pool.
type Refiner struct {
	m           *matcher
	cfg         Config
	scratchPool sync.Pool
}

// NewRefiner builds a refiner for the centred map spectrum dft.
// Oversampled spectra (fourier.NewVolumeDFTPadded) give markedly more
// accurate matching and are recommended.
func NewRefiner(dft *fourier.VolumeDFT, cfg Config) (*Refiner, error) {
	if cfg.Schedule == nil {
		cfg.Schedule = DefaultSchedule()
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.RMap > float64(dft.SrcL)/2 {
		cfg.RMap = float64(dft.SrcL) / 2
	}
	r := &Refiner{m: newMatcher(dft, cfg), cfg: cfg}
	r.scratchPool.New = func() interface{} { return r.m.newScratch() }
	return r, nil
}

// getScratch borrows worker scratch from the pool; returning it keeps
// the public matching entry points allocation-free at steady state.
func (r *Refiner) getScratch() *matchScratch {
	return r.scratchPool.Get().(*matchScratch)
}

func (r *Refiner) putScratch(sc *matchScratch) { r.scratchPool.Put(sc) }

// BandSize returns the number of Fourier coefficients per matching.
func (r *Refiner) BandSize() int { return len(r.m.band) }

// View is a prepared experimental view: transformed, CTF-corrected and
// reduced to the matcher's comparison band. Views are mutated by
// refinement (centre shifts are baked in), so refine each view once.
type View struct {
	vd *viewData
}

// PrepareView transforms an experimental image into matching state:
// centred 2-D DFT (step d), optional CTF correction (step e), band
// extraction. The CTF parameters are only consulted when
// Config.CorrectCTF or Config.CTFWeightCuts is set.
func (r *Refiner) PrepareView(im *volume.Image, p ctf.Params) (*View, error) {
	if im.L != r.m.l {
		return nil, fmt.Errorf("core: view size %d does not match map size %d", im.L, r.m.l)
	}
	f := fourier.ImageDFT(im)
	if r.cfg.CorrectCTF {
		if err := ctf.Correct(f, p, r.cfg.CTFMode); err != nil {
			return nil, err
		}
	}
	var refW []float64
	if r.cfg.CTFWeightCuts {
		refW = r.m.ctfCutWeights(p)
	}
	return &View{vd: r.m.prepareView(f, refW)}, nil
}

// Distance evaluates the configured matching distance d(F, C) between
// a prepared view and the reference cut at orientation o over the full
// band. It is allocation-free at steady state and safe for concurrent
// use.
func (r *Refiner) Distance(v *View, o geom.Euler) float64 {
	sc := r.getScratch()
	d := r.m.distance(v.vd, o, len(r.m.band), sc)
	r.putScratch(sc)
	return d
}

// DistanceWindow evaluates the matching distance at every orientation,
// writing dst[i] for orients[i] — the batched kernel behind the
// sliding-window search, exposed for callers scoring whole candidate
// grids. dst must have length len(orients).
func (r *Refiner) DistanceWindow(v *View, orients []geom.Euler, dst []float64) {
	if len(dst) != len(orients) {
		panic(fmt.Sprintf("core: DistanceWindow dst length %d, orients length %d", len(dst), len(orients)))
	}
	sc := r.getScratch()
	r.m.distanceWindow(v.vd, orients, len(r.m.band), sc, dst)
	r.putScratch(sc)
}

// orientKey quantizes an orientation to the level grid for caching
// distance evaluations across window slides.
type orientKey [3]int64

func keyOf(o geom.Euler, step float64) orientKey {
	return orientKey{
		int64(math.Round(o.Theta / step)),
		int64(math.Round(o.Phi / step)),
		int64(math.Round(o.Omega / step)),
	}
}

// RefineView runs the full multi-resolution refinement (steps f–n) for
// one prepared view starting from the initial orientation. It returns
// the refined orientation, centre offset and per-level statistics.
func (r *Refiner) RefineView(v *View, init geom.Euler) Result {
	sc := r.getScratch()
	res := r.refineViewWith(v, init, sc)
	r.putScratch(sc)
	return res
}

// refineViewWith is RefineView bound to caller-owned scratch (one per
// worker in the batch paths).
func (r *Refiner) refineViewWith(v *View, init geom.Euler, sc *matchScratch) Result {
	return r.refineViewRange(v, Result{Orient: init}, 0, len(r.cfg.Schedule), sc)
}

// refineViewRange runs schedule levels [start, stop) for one view,
// continuing from the accumulated result res. The view's band must
// already reflect every shift recorded in res.PerLevel (true trivially
// for a fresh view with an empty prior, and restored for a checkpointed
// view by replaying res.PerLevel[...].Shifts through ApplyShift).
// res.PerLevel is cloned before appending so priors shared across runs
// are never mutated.
func (r *Refiner) refineViewRange(v *View, res Result, start, stop int, sc *matchScratch) Result {
	viewsRefined.Inc()
	res.PerLevel = append([]LevelStats(nil), res.PerLevel...)
	for li := start; li < stop; li++ {
		st := r.refineLevel(v.vd, &res, r.cfg.Schedule[li], sc)
		recordLevelStats(li, st)
		res.PerLevel = append(res.PerLevel, st)
	}
	return res
}

// ApplyShift bakes an additional centre shift into a prepared view's
// band coefficients — the exported form of the step-l correction, used
// to restore a checkpointed view: replaying a result's recorded
// LevelStats.Shifts in order reproduces the band state of the original
// run bit-for-bit (phase ramps are applied incrementally, so the replay
// performs the identical float operations).
func (r *Refiner) ApplyShift(v *View, dx, dy float64) {
	r.m.applyShift(v.vd, dx, dy)
}

// refineLevel performs one schedule level, updating res in place.
// Orientation search (steps f–j) and centre refinement (steps k–l)
// are coupled — a mis-centred view biases the orientation search and
// vice versa — so the level alternates the two until neither moves
// (at most maxLevelIters rounds).
//
//repro:hotpath
func (r *Refiner) refineLevel(vd *viewData, res *Result, lv Level, sc *matchScratch) LevelStats {
	const maxLevelIters = 4
	var st LevelStats
	n := r.m.prefixLen(lv.effRMapFrac() * r.cfg.RMap)
	if n == 0 {
		n = len(r.m.band)
	}
	st.BandUsed = n
	for k := range sc.cache {
		delete(sc.cache, k)
	}

	for iter := 0; iter < maxLevelIters; iter++ {
		// Steps k–l first within each round: a mis-centred view
		// decorrelates every cut and derails the orientation search,
		// while the centre landscape stays well-formed even a few
		// degrees off — so fix the centre against the current best
		// orientation before searching orientations.
		shifted := false
		if lv.CenterDelta > 0 && lv.CenterHalf > 0 {
			dx, dy, d := r.refineCenter(vd, res.Orient, lv, n, &st, sc)
			if dx != 0 || dy != 0 {
				r.m.applyShift(vd, dx, dy)
				//replint:allow hotpathalloc shift increments must be recorded for checkpoint replay; at most maxLevelIters tiny entries per level
				st.Shifts = append(st.Shifts, [2]float64{dx, dy})
				res.Center[0] += dx
				res.Center[1] += dy
				res.Distance = d
				// Only a shift big enough to matter at this level
				// justifies re-searching orientations; sub-quarter-step
				// parabolic adjustments barely perturb the distances
				// and would otherwise cause endless alternation.
				if math.Hypot(dx, dy) >= 0.25*lv.CenterDelta {
					shifted = true
					for k := range sc.cache {
						delete(sc.cache, k)
					}
				}
			}
		}

		// Steps f–i: sliding-window orientation search. Each window is
		// scored as one batched kernel call over the orientations not
		// already in the level cache; the argmin then walks the window
		// in grid order, so the selected orientation is identical to a
		// scalar orientation-at-a-time scan.
		w := geom.CenteredWindow(res.Orient, lv.WindowHalf, lv.RAngular)
		best, bestD := res.Orient, math.Inf(1)
		for {
			sc.orients = w.AppendOrientations(sc.orients[:0])
			sc.pending = sc.pending[:0]
			for _, o := range sc.orients {
				k := keyOf(o, lv.RAngular)
				if _, ok := sc.cache[k]; !ok {
					sc.cache[k] = math.NaN() // claimed; value lands below
					//replint:allow hotpathalloc sc.pending is worker-owned scratch that reaches steady-state capacity after the first window of a run
					sc.pending = append(sc.pending, o)
				}
			}
			if cap(sc.dists) < len(sc.pending) {
				sc.dists = make([]float64, len(sc.pending))
			}
			dists := sc.dists[:len(sc.pending)]
			r.m.distanceWindow(vd, sc.pending, n, sc, dists)
			for i, o := range sc.pending {
				sc.cache[keyOf(o, lv.RAngular)] = dists[i]
			}
			st.Matchings += len(sc.pending)
			for _, o := range sc.orients {
				if d := sc.cache[keyOf(o, lv.RAngular)]; d < bestD {
					bestD = d
					best = o
				}
			}
			if !w.OnEdge(best) || st.Slides >= r.cfg.MaxSlides {
				break
			}
			w = w.Recenter(best)
			st.Slides++
		}
		moved := geom.AngularDistance(best, res.Orient) > lv.RAngular/2
		res.Orient = best
		res.Distance = bestD

		// Without centre refinement the view never changes, so one
		// pass of the (sliding) window search is complete; with it,
		// alternate until neither the centre nor the orientation
		// moves.
		if lv.CenterDelta <= 0 || lv.CenterHalf <= 0 || (!shifted && !moved) {
			break
		}
	}
	return st
}

// refineCenter performs the sliding-box centre search (step k) against
// the cut at orientation o, returning the best shift and its distance.
func (r *Refiner) refineCenter(vd *viewData, o geom.Euler, lv Level, n int, st *LevelStats, sc *matchScratch) (float64, float64, float64) {
	cut := sc.centerCut[:n]
	r.m.sampleCut(cut, vd.refW, o)
	bestDx, bestDy := 0.0, 0.0
	bestD := r.m.shiftedDistance(vd, cut, 0, 0)
	st.CenterEvals++
	for {
		cx, cy := bestDx, bestDy
		improved := false
		for i := -lv.CenterHalf; i <= lv.CenterHalf; i++ {
			for j := -lv.CenterHalf; j <= lv.CenterHalf; j++ {
				if i == 0 && j == 0 {
					continue
				}
				dx := cx + float64(i)*lv.CenterDelta
				dy := cy + float64(j)*lv.CenterDelta
				d := r.m.shiftedDistance(vd, cut, dx, dy)
				st.CenterEvals++
				if d < bestD {
					bestD, bestDx, bestDy = d, dx, dy
					improved = true
				}
			}
		}
		onEdge := math.Abs(bestDx-cx) >= float64(lv.CenterHalf)*lv.CenterDelta-1e-12 ||
			math.Abs(bestDy-cy) >= float64(lv.CenterHalf)*lv.CenterDelta-1e-12
		if !improved || !onEdge || st.CenterSlides >= r.cfg.MaxSlides {
			break
		}
		st.CenterSlides++
	}
	// Sub-grid parabolic interpolation of the minimum: the distance is
	// locally quadratic in the shift, so a three-point vertex fit per
	// axis removes the ±δ/2 quantization residue that would otherwise
	// bias the next orientation search.
	if r.cfg.ParabolicCenter && bestD < math.Inf(1) {
		delta := lv.CenterDelta
		refineAxis := func(dxOff, dyOff float64) float64 {
			dm := r.m.shiftedDistance(vd, cut, bestDx-dxOff*delta, bestDy-dyOff*delta)
			dp := r.m.shiftedDistance(vd, cut, bestDx+dxOff*delta, bestDy+dyOff*delta)
			st.CenterEvals += 2
			den := dm - 2*bestD + dp
			if den <= 0 {
				return 0
			}
			off := 0.5 * (dm - dp) / den * delta
			return math.Max(-delta/2, math.Min(delta/2, off))
		}
		ox := refineAxis(1, 0)
		oy := refineAxis(0, 1)
		if ox != 0 || oy != 0 {
			if d := r.m.shiftedDistance(vd, cut, bestDx+ox, bestDy+oy); d < bestD {
				bestDx += ox
				bestDy += oy
				bestD = d
			}
			st.CenterEvals++
		}
	}
	return bestDx, bestDy, bestD
}

// RefineBatch refines many views on a bounded worker pool (the
// shared-memory analogue of the paper's view partitioning): workers
// pull view indices from a shared counter, each worker owns one kernel
// scratch for its whole run, and results land in input order
// regardless of scheduling. inits must parallel views. workers ≤ 0
// selects GOMAXPROCS.
//
// Cancelling ctx aborts the batch between views: indices not yet
// started are skipped, in-flight views run to completion, and the
// context's error is returned (the partial results are discarded). ctx
// must be non-nil; use RefineAll when cancellation is not needed.
func (r *Refiner) RefineBatch(ctx context.Context, views []*View, inits []geom.Euler, workers int) ([]Result, error) {
	if len(views) != len(inits) {
		return nil, fmt.Errorf("core: %d views but %d initial orientations", len(views), len(inits))
	}
	workers = poolWorkers(len(views), workers)
	scratches := make([]*matchScratch, workers)
	for w := range scratches {
		scratches[w] = r.m.newScratch()
	}
	results := make([]Result, len(views))
	runIndexedLabeled("core.refine.batch", len(views), workers, func(w, i int) {
		if ctx.Err() != nil {
			return
		}
		results[i] = r.refineViewWith(views[i], inits[i], scratches[w])
	})
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return results, nil
}

// RefineAll is RefineBatch under its historical name, without
// cancellation.
func (r *Refiner) RefineAll(views []*View, inits []geom.Euler, workers int) ([]Result, error) {
	return r.RefineBatch(context.Background(), views, inits, workers)
}
