package core

import (
	"context"
	"fmt"
	"math"
	"sync"

	"repro/internal/ctf"
	"repro/internal/fourier"
	"repro/internal/geom"
	"repro/internal/volume"
)

// Refiner refines view orientations against one reference map
// spectrum. It is safe for concurrent use by multiple goroutines: all
// shared matching state is read-only after construction, and mutable
// kernel buffers come from a per-call scratch pool.
type Refiner struct {
	m           *matcher
	cfg         Config
	scratchPool sync.Pool
}

// NewRefiner builds a refiner for the centred map spectrum dft.
// Oversampled spectra (fourier.NewVolumeDFTPadded) give markedly more
// accurate matching and are recommended.
func NewRefiner(dft *fourier.VolumeDFT, cfg Config) (*Refiner, error) {
	if cfg.Schedule == nil {
		cfg.Schedule = DefaultSchedule()
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.RMap > float64(dft.SrcL)/2 {
		cfg.RMap = float64(dft.SrcL) / 2
	}
	r := &Refiner{m: newMatcher(dft, cfg), cfg: cfg}
	r.scratchPool.New = func() interface{} { return r.m.newScratch() }
	return r, nil
}

// getScratch borrows worker scratch from the pool; returning it keeps
// the public matching entry points allocation-free at steady state.
func (r *Refiner) getScratch() *matchScratch {
	return r.scratchPool.Get().(*matchScratch)
}

func (r *Refiner) putScratch(sc *matchScratch) { r.scratchPool.Put(sc) }

// BandSize returns the number of Fourier coefficients per matching.
func (r *Refiner) BandSize() int { return len(r.m.band) }

// View is a prepared experimental view: transformed, CTF-corrected and
// reduced to the matcher's comparison band. Views are mutated by
// refinement (centre shifts are baked in), so refine each view once.
type View struct {
	vd *viewData
}

// PrepareView transforms an experimental image into matching state:
// centred 2-D DFT (step d), optional CTF correction (step e), band
// extraction. The CTF parameters are only consulted when
// Config.CorrectCTF or Config.CTFWeightCuts is set.
func (r *Refiner) PrepareView(im *volume.Image, p ctf.Params) (*View, error) {
	if im.L != r.m.l {
		return nil, fmt.Errorf("core: view size %d does not match map size %d", im.L, r.m.l)
	}
	f := fourier.ImageDFT(im)
	if r.cfg.CorrectCTF {
		if err := ctf.Correct(f, p, r.cfg.CTFMode); err != nil {
			return nil, err
		}
	}
	var refW []float64
	if r.cfg.CTFWeightCuts {
		refW = r.m.ctfCutWeights(p)
	}
	return &View{vd: r.m.prepareView(f, refW)}, nil
}

// Distance evaluates the configured matching distance d(F, C) between
// a prepared view and the reference cut at orientation o over the full
// band. It is allocation-free at steady state and safe for concurrent
// use.
func (r *Refiner) Distance(v *View, o geom.Euler) float64 {
	sc := r.getScratch()
	d := r.m.distance(v.vd, o, len(r.m.band), sc)
	r.putScratch(sc)
	return d
}

// DistanceWindow evaluates the matching distance at every orientation,
// writing dst[i] for orients[i] — the batched kernel behind the
// sliding-window search, exposed for callers scoring whole candidate
// grids. dst must have length len(orients).
func (r *Refiner) DistanceWindow(v *View, orients []geom.Euler, dst []float64) {
	if len(dst) != len(orients) {
		panic(fmt.Sprintf("core: DistanceWindow dst length %d, orients length %d", len(dst), len(orients)))
	}
	sc := r.getScratch()
	r.m.distanceWindow(v.vd, orients, len(r.m.band), sc, dst)
	r.putScratch(sc)
}

// orientKey quantizes an orientation to the level grid for caching
// distance evaluations across window slides.
type orientKey [3]int64

func keyOf(o geom.Euler, step float64) orientKey {
	return orientKey{
		int64(math.Round(o.Theta / step)),
		int64(math.Round(o.Phi / step)),
		int64(math.Round(o.Omega / step)),
	}
}

// eulerOfKey materializes the orientation at lattice key k — the exact
// inverse of keyOf for on-grid orientations. Every worker computes the
// identical float64 angles for a given key, which is what makes
// lattice keys safe as shared cut-cache keys.
func eulerOfKey(k orientKey, step float64) geom.Euler {
	return geom.Euler{Theta: float64(k[0]) * step, Phi: float64(k[1]) * step, Omega: float64(k[2]) * step}
}

// chebyshevGT reports whether a and b differ by more than h cells on
// any axis — the lattice form of "outside the window half-width".
func chebyshevGT(a, b orientKey, h int64) bool {
	for i := 0; i < 3; i++ {
		d := a[i] - b[i]
		if d < 0 {
			d = -d
		}
		if d > h {
			return true
		}
	}
	return false
}

// RefineView runs the full multi-resolution refinement (steps f–n) for
// one prepared view starting from the initial orientation. It returns
// the refined orientation, centre offset and per-level statistics.
func (r *Refiner) RefineView(v *View, init geom.Euler) Result {
	sc := r.getScratch()
	res := r.refineViewWith(v, init, sc)
	r.putScratch(sc)
	return res
}

// refineViewWith is RefineView bound to caller-owned scratch (one per
// worker in the batch paths).
func (r *Refiner) refineViewWith(v *View, init geom.Euler, sc *matchScratch) Result {
	return r.refineViewRange(v, Result{Orient: init}, 0, len(r.cfg.Schedule), sc)
}

// refineViewRange runs schedule levels [start, stop) for one view,
// continuing from the accumulated result res. The view's band must
// already reflect every shift recorded in res.PerLevel (true trivially
// for a fresh view with an empty prior, and restored for a checkpointed
// view by replaying res.PerLevel[...].Shifts through ApplyShift).
// res.PerLevel is cloned before appending so priors shared across runs
// are never mutated.
func (r *Refiner) refineViewRange(v *View, res Result, start, stop int, sc *matchScratch) Result {
	viewsRefined.Inc()
	res.PerLevel = append([]LevelStats(nil), res.PerLevel...)
	for li := start; li < stop; li++ {
		rng := newSearchRNG(r.cfg.SearchSeed, li, res.Orient)
		st := r.refineLevel(v.vd, &res, r.cfg.Schedule[li], sc, &rng, r.cfg.searchModeAt(li))
		recordLevelStats(li, st)
		res.PerLevel = append(res.PerLevel, st)
	}
	return res
}

// ExhaustiveRefine runs the full multi-resolution refinement with the
// paper's flat sliding-window scan forced at every level, regardless
// of Config.Search. It is kept as the correctness reference the
// adaptive descent is validated against (the oracle test suite and the
// bench smoke gate); production callers wanting this behaviour must
// configure Search: SearchExhaustive instead.
//
//repro:oracle
func (r *Refiner) ExhaustiveRefine(v *View, init geom.Euler) Result {
	sc := r.getScratch()
	defer r.putScratch(sc)
	viewsRefined.Inc()
	res := Result{Orient: init}
	for li := range r.cfg.Schedule {
		rng := newSearchRNG(r.cfg.SearchSeed, li, res.Orient)
		st := r.refineLevel(v.vd, &res, r.cfg.Schedule[li], sc, &rng, SearchExhaustive)
		recordLevelStats(li, st)
		res.PerLevel = append(res.PerLevel, st)
	}
	return res
}

// CutCacheStats reports the orientation-quantized cut cache's
// cumulative hit/miss counts. Only the adaptive search routes through
// the cache (the flat scan's windows sit on view-specific off-lattice
// grids and sample cuts directly), so the rate measures adaptive
// traffic alone.
func (r *Refiner) CutCacheStats() (hits, misses int64) {
	return r.m.cuts.Stats()
}

// ApplyShift bakes an additional centre shift into a prepared view's
// band coefficients — the exported form of the step-l correction, used
// to restore a checkpointed view: replaying a result's recorded
// LevelStats.Shifts in order reproduces the band state of the original
// run bit-for-bit (phase ramps are applied incrementally, so the replay
// performs the identical float operations).
func (r *Refiner) ApplyShift(v *View, dx, dy float64) {
	r.m.applyShift(v.vd, dx, dy)
}

// refineLevel performs one schedule level, updating res in place.
// Orientation search (steps f–j) and centre refinement (steps k–l)
// are coupled — a mis-centred view biases the orientation search and
// vice versa — so the level alternates the two until neither moves
// (at most maxLevelIters rounds). mode selects how the orientation
// window is searched: the flat exhaustive scan or the seeded adaptive
// descent (rng carries the level's probe stream; the scan ignores it).
//
//repro:hotpath
func (r *Refiner) refineLevel(vd *viewData, res *Result, lv Level, sc *matchScratch, rng *searchRNG, mode SearchMode) LevelStats {
	const maxLevelIters = 4
	var st LevelStats
	n := r.m.prefixLen(lv.effRMapFrac() * r.cfg.RMap)
	if n == 0 {
		n = len(r.m.band)
	}
	st.BandUsed = n
	clear(sc.cache)

	for iter := 0; iter < maxLevelIters; iter++ {
		// Steps k–l first within each round: a mis-centred view
		// decorrelates every cut and derails the orientation search,
		// while the centre landscape stays well-formed even a few
		// degrees off — so fix the centre against the current best
		// orientation before searching orientations.
		shifted := false
		if lv.CenterDelta > 0 && lv.CenterHalf > 0 {
			dx, dy, d := r.refineCenter(vd, res.Orient, lv, n, &st, sc)
			if dx != 0 || dy != 0 {
				r.m.applyShift(vd, dx, dy)
				//replint:allow hotpathalloc shift increments must be recorded for checkpoint replay; at most maxLevelIters tiny entries per level
				st.Shifts = append(st.Shifts, [2]float64{dx, dy})
				res.Center[0] += dx
				res.Center[1] += dy
				res.Distance = d
				// Only a shift big enough to matter at this level
				// justifies re-searching orientations; sub-quarter-step
				// parabolic adjustments barely perturb the distances
				// and would otherwise cause endless alternation.
				if math.Hypot(dx, dy) >= 0.25*lv.CenterDelta {
					shifted = true
					// The cached distances were measured against the
					// old centre; the cut cache needs no such
					// invalidation (cuts are view-independent).
					clear(sc.cache)
				}
			}
		}

		// Steps f–i: orientation search over the level window.
		var best geom.Euler
		var bestD float64
		if mode == SearchAdaptive {
			//replint:allow hotpathalloc descendOrientations seeds sc.keys, worker-owned scratch reused via [:0] that holds its capacity across rounds; the search is alloc-free at steady state (benchmarked in cmd/benchkernel)
			best, bestD = r.descendOrientations(vd, res.Orient, lv, n, &st, sc, rng)
		} else {
			best, bestD = r.scanOrientations(vd, res.Orient, lv, n, &st, sc)
		}
		moved := geom.AngularDistance(best, res.Orient) > lv.RAngular/2
		res.Orient = best
		res.Distance = bestD

		// Without centre refinement the view never changes, so one
		// pass of the orientation search is complete; with it,
		// alternate until neither the centre nor the orientation
		// moves.
		if lv.CenterDelta <= 0 || lv.CenterHalf <= 0 || (!shifted && !moved) {
			break
		}
	}
	return st
}

// scanOrientations is the paper's flat sliding-window search (steps
// f–i): every window orientation is scored as one batched kernel call
// over the orientations not already in the level cache; the argmin
// then walks the window in grid order, so the selected orientation is
// identical to a scalar orientation-at-a-time scan. The window slides
// whenever the argmin lands on its edge, at most MaxSlides times.
//
//repro:hotpath
func (r *Refiner) scanOrientations(vd *viewData, start geom.Euler, lv Level, n int, st *LevelStats, sc *matchScratch) (geom.Euler, float64) {
	w := geom.CenteredWindow(start, lv.WindowHalf, lv.RAngular)
	best, bestD := start, math.Inf(1)
	for {
		//replint:allow hotpathalloc AppendOrientations grows sc.orients, worker-owned scratch reused via [:0]; the window size is fixed per level so capacity reaches steady state after the first slide
		sc.orients = w.AppendOrientations(sc.orients[:0])
		sc.pending = sc.pending[:0]
		for _, o := range sc.orients {
			k := keyOf(o, lv.RAngular)
			if _, ok := sc.cache[k]; !ok {
				sc.cache[k] = math.NaN() // claimed; value lands below
				//replint:allow hotpathalloc sc.pending is worker-owned scratch that reaches steady-state capacity after the first window of a run
				sc.pending = append(sc.pending, o)
			}
		}
		dists := sc.growDists(len(sc.pending))
		r.m.distanceWindow(vd, sc.pending, n, sc, dists)
		for i, o := range sc.pending {
			sc.cache[keyOf(o, lv.RAngular)] = dists[i]
		}
		st.Matchings += len(sc.pending)
		for _, o := range sc.orients {
			if d := sc.cache[keyOf(o, lv.RAngular)]; d < bestD {
				bestD = d
				best = o
			}
		}
		if !w.OnEdge(best) || st.Slides >= r.cfg.MaxSlides {
			break
		}
		w = w.Recenter(best)
		st.Slides++
	}
	return best, bestD
}

// maxDryRounds is how many consecutive non-improving descent rounds
// the adaptive search tolerates before stopping: each dry round still
// draws fresh random probes, so the stop criterion is "neighborhood
// plus ~maxDryRounds·SearchProbes window samples found nothing
// better", not merely "the 26 neighbors found nothing".
const maxDryRounds = 4

// descendOrientations is the adaptive orientation search: seeded
// stochastic hill-climbing over the level's orientation lattice
// (step lv.RAngular per axis). Each round scores the 3×3×3
// neighborhood of the current best plus SearchProbes random probes
// within the window half-width — one batched kernel call over the
// not-yet-cached candidates — and moves to the round's argmin. A
// virtual window tracks the paper's sliding rule: when the best
// wanders more than the window half-width from the current centre the
// window recentres and counts a slide, bounded by MaxSlides exactly
// like the flat scan.
//
// Candidates are global lattice cells (orientation = key · step), so
// the per-level distance memo and the shared cut cache key them
// exactly. The off-lattice starting orientation is evaluated as the
// baseline: the descent only replaces it with a strictly better
// lattice point, so snapping to the grid can never regress a level.
func (r *Refiner) descendOrientations(vd *viewData, start geom.Euler, lv Level, n int, st *LevelStats, sc *matchScratch, rng *searchRNG) (geom.Euler, float64) {
	step := lv.RAngular
	h := int64(math.Round(lv.WindowHalf / step))
	if h < 1 {
		h = 1
	}
	probes := r.cfg.effSearchProbes()

	baseD := r.m.distance(vd, start, n, sc)
	st.Matchings++

	best := keyOf(start, step)
	center := best // virtual window centre
	bestD := math.Inf(1)

	// Seed round: a stride-h super-lattice over the window ({-h, 0, h}
	// per axis around the start) buys a coarse global picture of the
	// whole window for up to 27 evaluations, so the descent begins in
	// the window's best basin rather than the nearest one — the cheap
	// stand-in for what the flat scan's full-window argmin provides.
	sc.keys = sc.keys[:0]
	for dt := -h; dt <= h; dt += h {
		for dp := -h; dp <= h; dp += h {
			for do := -h; do <= h; do += h {
				sc.keys = append(sc.keys, orientKey{center[0] + dt, center[1] + dp, center[2] + do})
			}
		}
	}
	//replint:allow hotpathalloc scoreLatticeKeys grows sc.pendKeys, worker-owned scratch reused via [:0] that reaches steady-state capacity after the first batch
	r.scoreLatticeKeys(vd, step, n, st, sc)
	for _, k := range sc.keys {
		if d := sc.cache[k]; d < bestD {
			bestD, best = d, k
		}
	}

	for dry := 0; dry < maxDryRounds; {
		//replint:allow hotpathalloc appendLatticeNeighbors grows sc.keys, worker-owned scratch reused via [:0] that holds its 27+probes capacity after the first round
		sc.keys = appendLatticeNeighbors(sc.keys[:0], best)
		for p := 0; p < probes; p++ {
			sc.keys = append(sc.keys, orientKey{
				best[0] + rng.offset(h),
				best[1] + rng.offset(h),
				best[2] + rng.offset(h),
			})
		}
		r.scoreLatticeKeys(vd, step, n, st, sc)
		prev := best
		for _, k := range sc.keys {
			if d := sc.cache[k]; d < bestD {
				bestD, best = d, k
			}
		}
		if best == prev {
			dry++
			continue
		}
		dry = 0
		st.DescentMoves++
		if chebyshevGT(best, center, h) {
			if st.Slides >= r.cfg.MaxSlides {
				break
			}
			center = best
			st.Slides++
		}
	}
	if bestD < baseD {
		return eulerOfKey(best, step), bestD
	}
	return start, baseD
}

// appendLatticeNeighbors appends the 3×3×3 cell neighborhood of c
// (including c itself) to dst.
func appendLatticeNeighbors(dst []orientKey, c orientKey) []orientKey {
	for dt := int64(-1); dt <= 1; dt++ {
		for dp := int64(-1); dp <= 1; dp++ {
			for do := int64(-1); do <= 1; do++ {
				dst = append(dst, orientKey{c[0] + dt, c[1] + dp, c[2] + do})
			}
		}
	}
	return dst
}

// scoreLatticeKeys scores every key in sc.keys not already in the
// level cache through the batched lattice kernel, landing the
// distances in sc.cache. Duplicate keys within the batch deduplicate
// via the same NaN-claim the flat scan uses.
func (r *Refiner) scoreLatticeKeys(vd *viewData, step float64, n int, st *LevelStats, sc *matchScratch) {
	sc.pendKeys = sc.pendKeys[:0]
	for _, k := range sc.keys {
		if _, ok := sc.cache[k]; !ok {
			sc.cache[k] = math.NaN() // claimed; value lands below
			sc.pendKeys = append(sc.pendKeys, k)
		}
	}
	if len(sc.pendKeys) == 0 {
		return
	}
	dists := sc.growDists(len(sc.pendKeys))
	r.m.distanceLattice(vd, sc.pendKeys, step, n, sc, dists)
	for i, k := range sc.pendKeys {
		sc.cache[k] = dists[i]
	}
	st.Matchings += len(sc.pendKeys)
}

// refineCenter performs the sliding-box centre search (step k) against
// the cut at orientation o, returning the best shift and its distance.
func (r *Refiner) refineCenter(vd *viewData, o geom.Euler, lv Level, n int, st *LevelStats, sc *matchScratch) (float64, float64, float64) {
	cut := sc.centerCut[:n]
	r.m.sampleCut(cut, vd.refW, o)
	bestDx, bestDy := 0.0, 0.0
	bestD := r.m.shiftedDistance(vd, cut, 0, 0)
	st.CenterEvals++
	for {
		cx, cy := bestDx, bestDy
		improved := false
		for i := -lv.CenterHalf; i <= lv.CenterHalf; i++ {
			for j := -lv.CenterHalf; j <= lv.CenterHalf; j++ {
				if i == 0 && j == 0 {
					continue
				}
				dx := cx + float64(i)*lv.CenterDelta
				dy := cy + float64(j)*lv.CenterDelta
				d := r.m.shiftedDistance(vd, cut, dx, dy)
				st.CenterEvals++
				if d < bestD {
					bestD, bestDx, bestDy = d, dx, dy
					improved = true
				}
			}
		}
		onEdge := math.Abs(bestDx-cx) >= float64(lv.CenterHalf)*lv.CenterDelta-1e-12 ||
			math.Abs(bestDy-cy) >= float64(lv.CenterHalf)*lv.CenterDelta-1e-12
		if !improved || !onEdge || st.CenterSlides >= r.cfg.MaxSlides {
			break
		}
		st.CenterSlides++
	}
	// Sub-grid parabolic interpolation of the minimum: the distance is
	// locally quadratic in the shift, so a three-point vertex fit per
	// axis removes the ±δ/2 quantization residue that would otherwise
	// bias the next orientation search.
	if r.cfg.ParabolicCenter && bestD < math.Inf(1) {
		delta := lv.CenterDelta
		refineAxis := func(dxOff, dyOff float64) float64 {
			dm := r.m.shiftedDistance(vd, cut, bestDx-dxOff*delta, bestDy-dyOff*delta)
			dp := r.m.shiftedDistance(vd, cut, bestDx+dxOff*delta, bestDy+dyOff*delta)
			st.CenterEvals += 2
			den := dm - 2*bestD + dp
			if den <= 0 {
				return 0
			}
			off := 0.5 * (dm - dp) / den * delta
			return math.Max(-delta/2, math.Min(delta/2, off))
		}
		ox := refineAxis(1, 0)
		oy := refineAxis(0, 1)
		if ox != 0 || oy != 0 {
			if d := r.m.shiftedDistance(vd, cut, bestDx+ox, bestDy+oy); d < bestD {
				bestDx += ox
				bestDy += oy
				bestD = d
			}
			st.CenterEvals++
		}
	}
	return bestDx, bestDy, bestD
}

// RefineBatch refines many views on a bounded worker pool (the
// shared-memory analogue of the paper's view partitioning): workers
// pull view indices from a shared counter, each worker owns one kernel
// scratch for its whole run, and results land in input order
// regardless of scheduling. inits must parallel views. workers ≤ 0
// selects GOMAXPROCS.
//
// Cancelling ctx aborts the batch between views: indices not yet
// started are skipped, in-flight views run to completion, and the
// context's error is returned (the partial results are discarded). ctx
// must be non-nil; use RefineAll when cancellation is not needed.
func (r *Refiner) RefineBatch(ctx context.Context, views []*View, inits []geom.Euler, workers int) ([]Result, error) {
	if len(views) != len(inits) {
		return nil, fmt.Errorf("core: %d views but %d initial orientations", len(views), len(inits))
	}
	workers = poolWorkers(len(views), workers)
	scratches := make([]*matchScratch, workers)
	for w := range scratches {
		scratches[w] = r.m.newScratch()
	}
	results := make([]Result, len(views))
	runIndexedLabeled("core.refine.batch", len(views), workers, func(w, i int) {
		if ctx.Err() != nil {
			return
		}
		results[i] = r.refineViewWith(views[i], inits[i], scratches[w])
	})
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return results, nil
}

// RefineAll is RefineBatch under its historical name, without
// cancellation.
func (r *Refiner) RefineAll(views []*View, inits []geom.Euler, workers int) ([]Result, error) {
	return r.RefineBatch(context.Background(), views, inits, workers)
}
