package core

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"repro/internal/ctf"
	"repro/internal/fourier"
	"repro/internal/geom"
	"repro/internal/volume"
)

// Refiner refines view orientations against one reference map
// spectrum. It is safe for concurrent use by multiple goroutines: all
// shared state is read-only after construction.
type Refiner struct {
	m   *matcher
	cfg Config
}

// NewRefiner builds a refiner for the centred map spectrum dft.
// Oversampled spectra (fourier.NewVolumeDFTPadded) give markedly more
// accurate matching and are recommended.
func NewRefiner(dft *fourier.VolumeDFT, cfg Config) (*Refiner, error) {
	if cfg.Schedule == nil {
		cfg.Schedule = DefaultSchedule()
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.RMap > float64(dft.SrcL)/2 {
		cfg.RMap = float64(dft.SrcL) / 2
	}
	return &Refiner{m: newMatcher(dft, cfg), cfg: cfg}, nil
}

// BandSize returns the number of Fourier coefficients per matching.
func (r *Refiner) BandSize() int { return len(r.m.band) }

// View is a prepared experimental view: transformed, CTF-corrected and
// reduced to the matcher's comparison band. Views are mutated by
// refinement (centre shifts are baked in), so refine each view once.
type View struct {
	vd *viewData
}

// PrepareView transforms an experimental image into matching state:
// centred 2-D DFT (step d), optional CTF correction (step e), band
// extraction. The CTF parameters are only consulted when
// Config.CorrectCTF or Config.CTFWeightCuts is set.
func (r *Refiner) PrepareView(im *volume.Image, p ctf.Params) (*View, error) {
	if im.L != r.m.l {
		return nil, fmt.Errorf("core: view size %d does not match map size %d", im.L, r.m.l)
	}
	f := fourier.ImageDFT(im)
	if r.cfg.CorrectCTF {
		if err := ctf.Correct(f, p, r.cfg.CTFMode); err != nil {
			return nil, err
		}
	}
	var refW []float64
	if r.cfg.CTFWeightCuts {
		refW = r.m.ctfCutWeights(p)
	}
	return &View{vd: r.m.prepareView(f, refW)}, nil
}

// orientKey quantizes an orientation to the level grid for caching
// distance evaluations across window slides.
type orientKey [3]int64

func keyOf(o geom.Euler, step float64) orientKey {
	return orientKey{
		int64(math.Round(o.Theta / step)),
		int64(math.Round(o.Phi / step)),
		int64(math.Round(o.Omega / step)),
	}
}

// RefineView runs the full multi-resolution refinement (steps f–n) for
// one prepared view starting from the initial orientation. It returns
// the refined orientation, centre offset and per-level statistics.
func (r *Refiner) RefineView(v *View, init geom.Euler) Result {
	res := Result{Orient: init}
	for _, lv := range r.cfg.Schedule {
		st := r.refineLevel(v.vd, &res, lv)
		res.PerLevel = append(res.PerLevel, st)
	}
	return res
}

// refineLevel performs one schedule level, updating res in place.
// Orientation search (steps f–j) and centre refinement (steps k–l)
// are coupled — a mis-centred view biases the orientation search and
// vice versa — so the level alternates the two until neither moves
// (at most maxLevelIters rounds).
func (r *Refiner) refineLevel(vd *viewData, res *Result, lv Level) LevelStats {
	const maxLevelIters = 4
	var st LevelStats
	n := r.m.prefixLen(lv.effRMapFrac() * r.cfg.RMap)
	if n == 0 {
		n = len(r.m.band)
	}
	st.BandUsed = n
	cache := make(map[orientKey]float64)

	eval := func(o geom.Euler) float64 {
		k := keyOf(o, lv.RAngular)
		if d, ok := cache[k]; ok {
			return d
		}
		d := r.m.distance(vd, o, n)
		cache[k] = d
		st.Matchings++
		return d
	}

	for iter := 0; iter < maxLevelIters; iter++ {
		// Steps k–l first within each round: a mis-centred view
		// decorrelates every cut and derails the orientation search,
		// while the centre landscape stays well-formed even a few
		// degrees off — so fix the centre against the current best
		// orientation before searching orientations.
		shifted := false
		if lv.CenterDelta > 0 && lv.CenterHalf > 0 {
			dx, dy, d := r.refineCenter(vd, res.Orient, lv, n, &st)
			if dx != 0 || dy != 0 {
				r.m.applyShift(vd, dx, dy)
				res.Center[0] += dx
				res.Center[1] += dy
				res.Distance = d
				// Only a shift big enough to matter at this level
				// justifies re-searching orientations; sub-quarter-step
				// parabolic adjustments barely perturb the distances
				// and would otherwise cause endless alternation.
				if math.Hypot(dx, dy) >= 0.25*lv.CenterDelta {
					shifted = true
					cache = make(map[orientKey]float64)
				}
			}
		}

		// Steps f–i: sliding-window orientation search.
		w := geom.CenteredWindow(res.Orient, lv.WindowHalf, lv.RAngular)
		best, bestD := res.Orient, math.Inf(1)
		for {
			for _, o := range w.Orientations() {
				if d := eval(o); d < bestD {
					bestD = d
					best = o
				}
			}
			if !w.OnEdge(best) || st.Slides >= r.cfg.MaxSlides {
				break
			}
			w = w.Recenter(best)
			st.Slides++
		}
		moved := geom.AngularDistance(best, res.Orient) > lv.RAngular/2
		res.Orient = best
		res.Distance = bestD

		// Without centre refinement the view never changes, so one
		// pass of the (sliding) window search is complete; with it,
		// alternate until neither the centre nor the orientation
		// moves.
		if lv.CenterDelta <= 0 || lv.CenterHalf <= 0 || (!shifted && !moved) {
			break
		}
	}
	return st
}

// refineCenter performs the sliding-box centre search (step k) against
// the cut at orientation o, returning the best shift and its distance.
func (r *Refiner) refineCenter(vd *viewData, o geom.Euler, lv Level, n int, st *LevelStats) (float64, float64, float64) {
	cut := r.m.cutValues(vd, o, n)
	bestDx, bestDy := 0.0, 0.0
	bestD := r.m.shiftedDistance(vd, cut, 0, 0)
	st.CenterEvals++
	for {
		cx, cy := bestDx, bestDy
		improved := false
		for i := -lv.CenterHalf; i <= lv.CenterHalf; i++ {
			for j := -lv.CenterHalf; j <= lv.CenterHalf; j++ {
				if i == 0 && j == 0 {
					continue
				}
				dx := cx + float64(i)*lv.CenterDelta
				dy := cy + float64(j)*lv.CenterDelta
				d := r.m.shiftedDistance(vd, cut, dx, dy)
				st.CenterEvals++
				if d < bestD {
					bestD, bestDx, bestDy = d, dx, dy
					improved = true
				}
			}
		}
		onEdge := math.Abs(bestDx-cx) >= float64(lv.CenterHalf)*lv.CenterDelta-1e-12 ||
			math.Abs(bestDy-cy) >= float64(lv.CenterHalf)*lv.CenterDelta-1e-12
		if !improved || !onEdge || st.CenterSlides >= r.cfg.MaxSlides {
			break
		}
		st.CenterSlides++
	}
	// Sub-grid parabolic interpolation of the minimum: the distance is
	// locally quadratic in the shift, so a three-point vertex fit per
	// axis removes the ±δ/2 quantization residue that would otherwise
	// bias the next orientation search.
	if r.cfg.ParabolicCenter && bestD < math.Inf(1) {
		delta := lv.CenterDelta
		refineAxis := func(dxOff, dyOff float64) float64 {
			dm := r.m.shiftedDistance(vd, cut, bestDx-dxOff*delta, bestDy-dyOff*delta)
			dp := r.m.shiftedDistance(vd, cut, bestDx+dxOff*delta, bestDy+dyOff*delta)
			st.CenterEvals += 2
			den := dm - 2*bestD + dp
			if den <= 0 {
				return 0
			}
			off := 0.5 * (dm - dp) / den * delta
			return math.Max(-delta/2, math.Min(delta/2, off))
		}
		ox := refineAxis(1, 0)
		oy := refineAxis(0, 1)
		if ox != 0 || oy != 0 {
			if d := r.m.shiftedDistance(vd, cut, bestDx+ox, bestDy+oy); d < bestD {
				bestDx += ox
				bestDy += oy
				bestD = d
			}
			st.CenterEvals++
		}
	}
	return bestDx, bestDy, bestD
}

// RefineAll refines many views concurrently with a worker pool (the
// shared-memory analogue of the paper's view partitioning). inits must
// parallel views. workers ≤ 0 selects GOMAXPROCS.
func (r *Refiner) RefineAll(views []*View, inits []geom.Euler, workers int) ([]Result, error) {
	if len(views) != len(inits) {
		return nil, fmt.Errorf("core: %d views but %d initial orientations", len(views), len(inits))
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	results := make([]Result, len(views))
	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				results[i] = r.RefineView(views[i], inits[i])
			}
		}()
	}
	for i := range views {
		work <- i
	}
	close(work)
	wg.Wait()
	return results, nil
}
