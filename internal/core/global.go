package core

import (
	"fmt"
	"math"
	"runtime"
	"sort"

	"repro/internal/geom"
)

// GlobalSearchConfig controls ab-initio orientation determination.
type GlobalSearchConfig struct {
	// StepDeg is the coarse sampling of the view sphere and of the
	// in-plane angle ω. 12° scans ~10⁴ orientations for an
	// asymmetric particle.
	StepDeg float64
	// TopK is how many coarse candidates are refined through the full
	// multi-resolution schedule; the best final distance wins.
	// Multiple seeds protect against coarse-grid aliasing.
	TopK int
	// Symmetry, when non-nil, restricts the coarse scan to the
	// group's asymmetric unit — the classical speed-up for particles
	// of known symmetry (Fig. 1b).
	Symmetry *geom.Group
}

// DefaultGlobalSearchConfig scans at 12° and refines the best 4
// candidates.
func DefaultGlobalSearchConfig() GlobalSearchConfig {
	return GlobalSearchConfig{StepDeg: 12, TopK: 4}
}

// GlobalSearch determines a view's orientation with no prior estimate:
// a coarse scan over the whole orientation space (or the symmetry
// group's asymmetric unit) ranks candidates by matching distance, and
// the best TopK are refined through the full schedule. This extends
// the paper's refinement into the initial-assignment regime that its
// introduction attributes to slower classical methods.
//
// The view is not mutated; centre refinements run on private copies.
// Results are deterministic for a given view and configuration,
// independent of GOMAXPROCS: candidates are scored into their grid
// slots and ranked with stable sorts.
func (r *Refiner) GlobalSearch(v *View, cfg GlobalSearchConfig) (Result, error) {
	if cfg.StepDeg <= 0 {
		return Result{}, fmt.Errorf("core: StepDeg must be positive, got %g", cfg.StepDeg)
	}
	if cfg.TopK < 1 {
		return Result{}, fmt.Errorf("core: TopK must be ≥ 1, got %d", cfg.TopK)
	}
	// Coarse scan on the low-frequency prefix with magnitude-only
	// matching: cheap, smooth, and — critically — invariant to any
	// residual centre error in freshly boxed particles.
	n := r.m.prefixLen(0.5 * r.cfg.RMap)
	if n == 0 {
		n = len(r.m.band)
	}
	type scored struct {
		o geom.Euler
		d float64
	}
	var dirs []geom.Euler
	for _, e := range geom.SphereGrid(cfg.StepDeg) {
		if cfg.Symmetry != nil && !cfg.Symmetry.InAsymmetricUnit(e.ViewAxis()) {
			continue
		}
		dirs = append(dirs, e)
	}
	nOmega := int(math.Max(1, math.Round(360/cfg.StepDeg)))

	// Scan in parallel: the candidate set is large and independent.
	// Each view direction owns a contiguous block of the flat result
	// slice, so worker scheduling cannot reorder candidates.
	workers := poolWorkers(len(dirs), runtime.GOMAXPROCS(0))
	scratches := make([]*matchScratch, workers)
	for w := range scratches {
		scratches[w] = r.m.newScratch()
	}
	all := make([]scored, len(dirs)*nOmega)
	runIndexed(len(dirs), workers, func(w, i int) {
		sc := scratches[w]
		for k := 0; k < nOmega; k++ {
			o := geom.Euler{
				Theta: dirs[i].Theta,
				Phi:   dirs[i].Phi,
				Omega: float64(k) * cfg.StepDeg,
			}
			all[i*nOmega+k] = scored{o, r.m.magDistance(v.vd, o, n, sc)}
		}
	})
	sort.SliceStable(all, func(a, b int) bool { return all[a].d < all[b].d })

	// Re-rank the magnitude shortlist with the full phase-aware
	// distance. When the view is already well centred the phase
	// ranking is far sharper; when it is mis-centred the magnitude
	// ranking keeps the right basin in the pool. Seeds are drawn
	// alternately from both rankings.
	shortlist := all
	if len(shortlist) > 50*cfg.TopK {
		shortlist = shortlist[:50*cfg.TopK]
	}
	phased := make([]scored, len(shortlist))
	runIndexed(len(shortlist), workers, func(w, i int) {
		phased[i] = scored{shortlist[i].o, r.m.distance(v.vd, shortlist[i].o, n, scratches[w])}
	})
	sort.SliceStable(phased, func(a, b int) bool { return phased[a].d < phased[b].d })

	// Keep TopK well-separated candidates (≥ 2 steps apart) so the
	// refinement seeds explore distinct basins.
	var seeds []geom.Euler
	addSeed := func(o geom.Euler) bool {
		for _, prev := range seeds {
			if geom.AngularDistance(o, prev) < 2*cfg.StepDeg {
				return false
			}
		}
		seeds = append(seeds, o)
		return true
	}
	for i := 0; len(seeds) < cfg.TopK && (i < len(phased) || i < len(all)); i++ {
		if i < len(phased) {
			addSeed(phased[i].o)
		}
		if len(seeds) < cfg.TopK && i < len(all) {
			addSeed(all[i].o)
		}
	}

	best := Result{Distance: math.Inf(1)}
	sc := scratches[0]
	for _, seed := range seeds {
		// Private copy: refinement bakes centre shifts into the view.
		vc := &View{vd: v.vd.clone()}
		res := r.refineViewWith(vc, seed, sc)
		if res.Distance < best.Distance {
			best = res
		}
	}
	return best, nil
}

// clone deep-copies the per-view matching state.
func (vd *viewData) clone() *viewData {
	out := &viewData{
		vals:    append([]complex128(nil), vd.vals...),
		prefixE: append([]float64(nil), vd.prefixE...),
	}
	if vd.refW != nil {
		out.refW = append([]float64(nil), vd.refW...)
	}
	return out
}
