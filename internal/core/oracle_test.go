package core

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"repro/internal/fourier"
	"repro/internal/geom"
	"repro/internal/micrograph"
	"repro/internal/phantom"
)

// This file preserves the pre-fusion scalar matching loops — each cut
// coefficient sampled individually through VolumeDFT.Sample — as the
// reference oracle for the fused kernel. Any change to the kernel must
// keep the randomized equivalence tests below within 1e-12.

func oracleDistance(m *matcher, vd *viewData, o geom.Euler, n int) float64 {
	rot := o.Matrix()
	xa, ya := rot.Col(0), rot.Col(1)
	energy := vd.prefixE[n]
	if m.cfg.NormalizeScale {
		var ec, cross float64
		for i, e := range m.band[:n] {
			f3 := geom.Vec3{
				X: xa.X*float64(e.h) + ya.X*float64(e.k),
				Y: xa.Y*float64(e.h) + ya.Y*float64(e.k),
				Z: xa.Z*float64(e.h) + ya.Z*float64(e.k),
			}
			c := m.dft.Sample(f3, m.cfg.Interp)
			if vd.refW != nil {
				c *= complex(vd.refW[i], 0)
			}
			fv := vd.vals[i]
			ec += e.weight * (real(c)*real(c) + imag(c)*imag(c))
			cross += e.weight * (real(fv)*real(c) + imag(fv)*imag(c))
		}
		if ec == 0 || cross <= 0 {
			return energy * m.invL2
		}
		return (energy - cross*cross/ec) * m.invL2
	}
	var d float64
	for i, e := range m.band[:n] {
		f3 := geom.Vec3{
			X: xa.X*float64(e.h) + ya.X*float64(e.k),
			Y: xa.Y*float64(e.h) + ya.Y*float64(e.k),
			Z: xa.Z*float64(e.h) + ya.Z*float64(e.k),
		}
		c := m.dft.Sample(f3, m.cfg.Interp)
		if vd.refW != nil {
			c *= complex(vd.refW[i], 0)
		}
		fv := vd.vals[i]
		dr, di := real(fv)-real(c), imag(fv)-imag(c)
		d += e.weight * (dr*dr + di*di)
	}
	return d * m.invL2
}

func oracleCutValues(m *matcher, vd *viewData, o geom.Euler, n int) []complex128 {
	rot := o.Matrix()
	xa, ya := rot.Col(0), rot.Col(1)
	out := make([]complex128, n)
	for i, e := range m.band[:n] {
		f3 := geom.Vec3{
			X: xa.X*float64(e.h) + ya.X*float64(e.k),
			Y: xa.Y*float64(e.h) + ya.Y*float64(e.k),
			Z: xa.Z*float64(e.h) + ya.Z*float64(e.k),
		}
		c := m.dft.Sample(f3, m.cfg.Interp)
		if vd.refW != nil {
			c *= complex(vd.refW[i], 0)
		}
		out[i] = c
	}
	return out
}

func oracleShiftedDistance(m *matcher, vd *viewData, cut []complex128, dx, dy float64) float64 {
	twoPiOverL := 2 * math.Pi / float64(m.l)
	n := len(cut)
	energy := vd.prefixE[n]
	if m.cfg.NormalizeScale {
		var ec, cross float64
		for i, e := range m.band[:n] {
			angle := -twoPiOverL * (float64(e.h)*dx + float64(e.k)*dy)
			s, cph := math.Sincos(angle)
			fv := vd.vals[i]
			fr := real(fv)*cph - imag(fv)*s
			fi := real(fv)*s + imag(fv)*cph
			c := cut[i]
			ec += e.weight * (real(c)*real(c) + imag(c)*imag(c))
			cross += e.weight * (fr*real(c) + fi*imag(c))
		}
		if ec == 0 || cross <= 0 {
			return energy * m.invL2
		}
		return (energy - cross*cross/ec) * m.invL2
	}
	var d float64
	for i, e := range m.band[:n] {
		angle := -twoPiOverL * (float64(e.h)*dx + float64(e.k)*dy)
		s, cph := math.Sincos(angle)
		fv := vd.vals[i]
		fr := real(fv)*cph - imag(fv)*s
		fi := real(fv)*s + imag(fv)*cph
		c := cut[i]
		dr, di := fr-real(c), fi-imag(c)
		d += e.weight * (dr*dr + di*di)
	}
	return d * m.invL2
}

func oracleMagDistance(m *matcher, vd *viewData, o geom.Euler, n int) float64 {
	rot := o.Matrix()
	xa, ya := rot.Col(0), rot.Col(1)
	var ec, cross, ef float64
	for i, e := range m.band[:n] {
		f3 := geom.Vec3{
			X: xa.X*float64(e.h) + ya.X*float64(e.k),
			Y: xa.Y*float64(e.h) + ya.Y*float64(e.k),
			Z: xa.Z*float64(e.h) + ya.Z*float64(e.k),
		}
		c := m.dft.Sample(f3, m.cfg.Interp)
		if vd.refW != nil {
			c *= complex(vd.refW[i], 0)
		}
		cm := math.Hypot(real(c), imag(c))
		fv := vd.vals[i]
		fm := math.Hypot(real(fv), imag(fv))
		ec += e.weight * cm * cm
		ef += e.weight * fm * fm
		cross += e.weight * fm * cm
	}
	if ec == 0 || cross <= 0 {
		return ef * m.invL2
	}
	return (ef - cross*cross/ec) * m.invL2
}

// oracleFixture builds a refiner + prepared view over a randomized
// configuration axis: normalization, interpolation and CTF cut
// weighting all covered.
func oracleFixture(t *testing.T, cfg Config, seed int64) (*Refiner, *viewData, *micrograph.Dataset) {
	t.Helper()
	truth := phantom.Asymmetric(20, 6, 1)
	truth.SphericalMask(8)
	ds := micrograph.Generate(truth, micrograph.GenParams{NumViews: 1, PixelA: 2, Seed: seed, ApplyCTF: cfg.CTFWeightCuts})
	dft := fourier.NewVolumeDFTPadded(truth, 2)
	r, err := NewRefiner(dft, cfg)
	if err != nil {
		t.Fatal(err)
	}
	pv, err := r.PrepareView(ds.Views[0].Image, ds.Views[0].CTF)
	if err != nil {
		t.Fatal(err)
	}
	return r, pv.vd, ds
}

func relDiff(a, b float64) float64 {
	return math.Abs(a-b) / (1 + math.Max(math.Abs(a), math.Abs(b)))
}

func oracleConfigs() map[string]Config {
	base := DefaultConfig(20)
	raw := base
	raw.NormalizeScale = false
	nearest := base
	nearest.Interp = fourier.Nearest
	ctfW := base
	ctfW.CTFWeightCuts = true
	spectral := base
	spectral.SpectralWeight = true
	return map[string]Config{
		"normalized": base,
		"raw":        raw,
		"nearest":    nearest,
		"ctf-weight": ctfW,
		"spectral":   spectral,
	}
}

// TestFusedDistanceMatchesOracle compares the fused kernel against the
// scalar reference over randomized orientations and band prefixes for
// every metric configuration.
func TestFusedDistanceMatchesOracle(t *testing.T) {
	for name, cfg := range oracleConfigs() {
		t.Run(name, func(t *testing.T) {
			r, vd, _ := oracleFixture(t, cfg, 31)
			sc := r.m.newScratch()
			rng := rand.New(rand.NewSource(5))
			full := len(r.m.band)
			for trial := 0; trial < 120; trial++ {
				o := geom.Euler{
					Theta: rng.Float64() * 180,
					Phi:   rng.Float64() * 360,
					Omega: rng.Float64() * 360,
				}
				n := 1 + rng.Intn(full)
				got := r.m.distance(vd, o, n, sc)
				want := oracleDistance(r.m, vd, o, n)
				if relDiff(got, want) > 1e-12 {
					t.Fatalf("orient %v n=%d: fused %.17g, oracle %.17g", o, n, got, want)
				}
				gotMag := r.m.magDistance(vd, o, n, sc)
				wantMag := oracleMagDistance(r.m, vd, o, n)
				if relDiff(gotMag, wantMag) > 1e-12 {
					t.Fatalf("orient %v n=%d: fused mag %.17g, oracle %.17g", o, n, gotMag, wantMag)
				}
			}
		})
	}
}

// TestFusedShiftedDistanceMatchesOracle covers the phase-ramp path and
// the fused cut construction against the scalar cut sampler.
func TestFusedShiftedDistanceMatchesOracle(t *testing.T) {
	for name, cfg := range oracleConfigs() {
		t.Run(name, func(t *testing.T) {
			r, vd, _ := oracleFixture(t, cfg, 37)
			rng := rand.New(rand.NewSource(9))
			full := len(r.m.band)
			for trial := 0; trial < 60; trial++ {
				o := geom.Euler{
					Theta: rng.Float64() * 180,
					Phi:   rng.Float64() * 360,
					Omega: rng.Float64() * 360,
				}
				n := 1 + rng.Intn(full)
				cut := make([]complex128, n)
				r.m.sampleCut(cut, vd.refW, o)
				wantCut := oracleCutValues(r.m, vd, o, n)
				for i := range cut {
					if d := math.Hypot(real(cut[i])-real(wantCut[i]), imag(cut[i])-imag(wantCut[i])); d > 1e-12 {
						t.Fatalf("cut %d at %v: fused %v, oracle %v", i, o, cut[i], wantCut[i])
					}
				}
				dx := (rng.Float64() - 0.5) * 4
				dy := (rng.Float64() - 0.5) * 4
				got := r.m.shiftedDistance(vd, cut, dx, dy)
				want := oracleShiftedDistance(r.m, vd, wantCut, dx, dy)
				if relDiff(got, want) > 1e-12 {
					t.Fatalf("shift (%g,%g) n=%d: fused %.17g, oracle %.17g", dx, dy, n, got, want)
				}
			}
		})
	}
}

// TestDistanceWindowMatchesScalar checks the batched window kernel
// slot-for-slot against individual distance evaluations.
func TestDistanceWindowMatchesScalar(t *testing.T) {
	r, vd, _ := oracleFixture(t, DefaultConfig(20), 41)
	sc := r.m.newScratch()
	n := len(r.m.band)
	w := geom.CenteredWindow(geom.Euler{Theta: 55, Phi: 120, Omega: 300}, 4, 1)
	orients := w.Orientations()
	dst := make([]float64, len(orients))
	r.m.distanceWindow(vd, orients, n, sc, dst)
	sc2 := r.m.newScratch()
	for i, o := range orients {
		want := r.m.distance(vd, o, n, sc2)
		if dst[i] != want {
			t.Fatalf("window slot %d (%v): batched %.17g, scalar %.17g", i, o, dst[i], want)
		}
		wantOracle := oracleDistance(r.m, vd, o, n)
		if relDiff(dst[i], wantOracle) > 1e-12 {
			t.Fatalf("window slot %d (%v): batched %.17g, oracle %.17g", i, o, dst[i], wantOracle)
		}
	}
}

// TestApplyShiftEquivalentToShiftedDistance: baking a shift into the
// view then evaluating the plain distance must agree with evaluating
// shiftedDistance at that shift against the same cut.
func TestApplyShiftEquivalentToShiftedDistance(t *testing.T) {
	for name, cfg := range oracleConfigs() {
		t.Run(name, func(t *testing.T) {
			r, vd, _ := oracleFixture(t, cfg, 53)
			rng := rand.New(rand.NewSource(17))
			n := len(r.m.band)
			for trial := 0; trial < 20; trial++ {
				o := geom.Euler{
					Theta: rng.Float64() * 180,
					Phi:   rng.Float64() * 360,
					Omega: rng.Float64() * 360,
				}
				dx := (rng.Float64() - 0.5) * 3
				dy := (rng.Float64() - 0.5) * 3
				cut := make([]complex128, n)
				r.m.sampleCut(cut, vd.refW, o)
				want := r.m.shiftedDistance(vd, cut, dx, dy)
				shiftedVd := vd.clone()
				r.m.applyShift(shiftedVd, dx, dy)
				got := r.m.shiftedDistance(shiftedVd, cut, 0, 0)
				if relDiff(got, want) > 1e-9 {
					t.Fatalf("applyShift(%g,%g)+distance %.17g != shiftedDistance %.17g", dx, dy, got, want)
				}
			}
		})
	}
}

// TestRefineViewMatchesOracleRefinement reruns a full multi-level
// refinement with a scalar-oracle refiner (kernel calls replaced by
// the reference loops) and demands identical trajectories: same
// orientation within 1e-9° and same centre.
func TestRefineViewMatchesOracleRefinement(t *testing.T) {
	l := 24
	truth := phantom.Asymmetric(l, 8, 1)
	truth.SphericalMask(0.4 * float64(l))
	ds := micrograph.Generate(truth, micrograph.GenParams{NumViews: 3, PixelA: 2, Seed: 61, CenterJitter: 1})
	dft := fourier.NewVolumeDFTPadded(truth, 2)
	cfg := DefaultConfig(l)
	// The scalar oracle below mirrors the flat sliding-window scan;
	// pin it so the production side runs the same search (the adaptive
	// descent has its own oracle comparison in adaptive_test.go).
	cfg.Search = SearchExhaustive
	cfg.Schedule = []Level{
		{RAngular: 1, WindowHalf: 4, CenterDelta: 1, CenterHalf: 1},
		{RAngular: 0.1, WindowHalf: 0.4, CenterDelta: 0.1, CenterHalf: 1},
	}
	r, err := NewRefiner(dft, cfg)
	if err != nil {
		t.Fatal(err)
	}
	inits := ds.PerturbedOrientations(2, 62)
	for i, v := range ds.Views {
		pv, _ := r.PrepareView(v.Image, v.CTF)
		res := r.RefineView(pv, inits[i])
		ov, _ := r.PrepareView(v.Image, v.CTF)
		ores := oracleRefineView(r, ov.vd, inits[i])
		if d := geom.AngularDistance(res.Orient, ores.Orient); d > 1e-9 {
			t.Fatalf("view %d: fused orient %v vs oracle %v (%.3g° apart)", i, res.Orient, ores.Orient, d)
		}
		if math.Hypot(res.Center[0]-ores.Center[0], res.Center[1]-ores.Center[1]) > 1e-9 {
			t.Fatalf("view %d: fused centre %v vs oracle %v", i, res.Center, ores.Center)
		}
	}
}

// oracleRefineView mirrors refineViewWith/refineLevel exactly but
// evaluates every matching through the scalar oracle loops.
func oracleRefineView(r *Refiner, vd *viewData, init geom.Euler) Result {
	res := Result{Orient: init}
	for _, lv := range r.cfg.Schedule {
		oracleRefineLevel(r, vd, &res, lv)
	}
	return res
}

func oracleRefineLevel(r *Refiner, vd *viewData, res *Result, lv Level) {
	const maxLevelIters = 4
	var st LevelStats
	n := r.m.prefixLen(lv.effRMapFrac() * r.cfg.RMap)
	if n == 0 {
		n = len(r.m.band)
	}
	cache := make(map[orientKey]float64)
	eval := func(o geom.Euler) float64 {
		k := keyOf(o, lv.RAngular)
		if d, ok := cache[k]; ok {
			return d
		}
		d := oracleDistance(r.m, vd, o, n)
		cache[k] = d
		return d
	}
	for iter := 0; iter < maxLevelIters; iter++ {
		shifted := false
		if lv.CenterDelta > 0 && lv.CenterHalf > 0 {
			dx, dy, d := oracleRefineCenter(r, vd, res.Orient, lv, n)
			if dx != 0 || dy != 0 {
				r.m.applyShift(vd, dx, dy)
				res.Center[0] += dx
				res.Center[1] += dy
				res.Distance = d
				if math.Hypot(dx, dy) >= 0.25*lv.CenterDelta {
					shifted = true
					cache = make(map[orientKey]float64)
				}
			}
		}
		w := geom.CenteredWindow(res.Orient, lv.WindowHalf, lv.RAngular)
		best, bestD := res.Orient, math.Inf(1)
		for {
			for _, o := range w.Orientations() {
				if d := eval(o); d < bestD {
					bestD = d
					best = o
				}
			}
			if !w.OnEdge(best) || st.Slides >= r.cfg.MaxSlides {
				break
			}
			w = w.Recenter(best)
			st.Slides++
		}
		moved := geom.AngularDistance(best, res.Orient) > lv.RAngular/2
		res.Orient = best
		res.Distance = bestD
		if lv.CenterDelta <= 0 || lv.CenterHalf <= 0 || (!shifted && !moved) {
			break
		}
	}
}

func oracleRefineCenter(r *Refiner, vd *viewData, o geom.Euler, lv Level, n int) (float64, float64, float64) {
	var st LevelStats
	cut := oracleCutValues(r.m, vd, o, n)
	bestDx, bestDy := 0.0, 0.0
	bestD := oracleShiftedDistance(r.m, vd, cut, 0, 0)
	for {
		cx, cy := bestDx, bestDy
		improved := false
		for i := -lv.CenterHalf; i <= lv.CenterHalf; i++ {
			for j := -lv.CenterHalf; j <= lv.CenterHalf; j++ {
				if i == 0 && j == 0 {
					continue
				}
				dx := cx + float64(i)*lv.CenterDelta
				dy := cy + float64(j)*lv.CenterDelta
				d := oracleShiftedDistance(r.m, vd, cut, dx, dy)
				if d < bestD {
					bestD, bestDx, bestDy = d, dx, dy
					improved = true
				}
			}
		}
		onEdge := math.Abs(bestDx-cx) >= float64(lv.CenterHalf)*lv.CenterDelta-1e-12 ||
			math.Abs(bestDy-cy) >= float64(lv.CenterHalf)*lv.CenterDelta-1e-12
		if !improved || !onEdge || st.CenterSlides >= r.cfg.MaxSlides {
			break
		}
		st.CenterSlides++
	}
	if r.cfg.ParabolicCenter && bestD < math.Inf(1) {
		delta := lv.CenterDelta
		refineAxis := func(dxOff, dyOff float64) float64 {
			dm := oracleShiftedDistance(r.m, vd, cut, bestDx-dxOff*delta, bestDy-dyOff*delta)
			dp := oracleShiftedDistance(r.m, vd, cut, bestDx+dxOff*delta, bestDy+dyOff*delta)
			den := dm - 2*bestD + dp
			if den <= 0 {
				return 0
			}
			off := 0.5 * (dm - dp) / den * delta
			return math.Max(-delta/2, math.Min(delta/2, off))
		}
		ox := refineAxis(1, 0)
		oy := refineAxis(0, 1)
		if ox != 0 || oy != 0 {
			if d := oracleShiftedDistance(r.m, vd, cut, bestDx+ox, bestDy+oy); d < bestD {
				bestDx += ox
				bestDy += oy
				bestD = d
			}
		}
	}
	return bestDx, bestDy, bestD
}

// TestRefineBatchDeterministic: RefineBatch must produce bit-identical
// results for any worker count.
func TestRefineBatchDeterministic(t *testing.T) {
	l := 20
	truth := phantom.Asymmetric(l, 6, 1)
	truth.SphericalMask(8)
	ds := micrograph.Generate(truth, micrograph.GenParams{NumViews: 7, PixelA: 2, Seed: 71})
	dft := fourier.NewVolumeDFTPadded(truth, 2)
	cfg := DefaultConfig(l)
	cfg.Schedule = []Level{{RAngular: 1, WindowHalf: 3, CenterDelta: 1, CenterHalf: 1}}
	r, err := NewRefiner(dft, cfg)
	if err != nil {
		t.Fatal(err)
	}
	inits := ds.PerturbedOrientations(2, 72)
	var ref []Result
	for _, workers := range []int{1, 2, 8} {
		var views []*View
		for _, v := range ds.Views {
			pv, _ := r.PrepareView(v.Image, v.CTF)
			views = append(views, pv)
		}
		res, err := r.RefineBatch(context.Background(), views, inits, workers)
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = res
			continue
		}
		for i := range res {
			if res[i].Orient != ref[i].Orient || res[i].Center != ref[i].Center || res[i].Distance != ref[i].Distance {
				t.Fatalf("workers=%d: view %d result differs from workers=1", workers, i)
			}
		}
	}
}
