package core

import (
	"context"
	"encoding/json"
	"reflect"
	"testing"

	"repro/internal/geom"
	"repro/internal/micrograph"
)

// TestAdaptiveMatchesExhaustiveOracleSingleLevel: within one level the
// seeded descent must land within RAngular/2 of the exhaustive window
// argmin on converged views, while spending well under half the
// distance evaluations. The starts are snapped onto the level's
// lattice so both searches see the same candidate grid: the descent
// walks the global RAngular lattice while the exhaustive window is
// anchored at its (otherwise off-lattice) entry orientation.
func TestAdaptiveMatchesExhaustiveOracleSingleLevel(t *testing.T) {
	l := 24
	dft, ds := testSetup(t, l, 5, micrograph.GenParams{Seed: 11})
	cfg := quickConfig(l)
	cfg.Schedule = []Level{{RAngular: 0.5, WindowHalf: 2, CenterDelta: 0.5, CenterHalf: 1}}
	r, err := NewRefiner(dft, cfg)
	if err != nil {
		t.Fatal(err)
	}
	step := cfg.Schedule[0].RAngular
	inits := ds.PerturbedOrientations(0.5, 12)
	for i := range inits {
		inits[i] = eulerOfKey(keyOf(inits[i], step), step)
	}
	var adaptiveEvals, exhaustiveEvals int
	for i, v := range ds.Views {
		pv, _ := r.PrepareView(v.Image, v.CTF)
		res := r.RefineView(pv, inits[i])
		ov, _ := r.PrepareView(v.Image, v.CTF)
		oracle := r.ExhaustiveRefine(ov, inits[i])
		if d := geom.AngularDistance(res.Orient, oracle.Orient); d > step/2 {
			t.Errorf("view %d: adaptive %.4g° from exhaustive argmin (> RAngular/2 = %.4g°)",
				i, d, step/2)
		}
		adaptiveEvals += res.TotalMatchings()
		exhaustiveEvals += oracle.TotalMatchings()
	}
	if adaptiveEvals*2 > exhaustiveEvals {
		t.Errorf("adaptive search used %d evals vs exhaustive %d — saved less than half",
			adaptiveEvals, exhaustiveEvals)
	}
}

// TestAdaptiveMatchesExhaustiveOracleSchedule: across the full
// multi-level schedule the two searches may settle in different
// near-equal fine-scale minima (their candidate grids differ once the
// level windows recenter), so the invariant is quality parity, not
// argmin identity: per view, the adaptive result must either be within
// one final-level cell of the exhaustive argmin or match it on final
// error against ground truth — and must spend under half the evals.
func TestAdaptiveMatchesExhaustiveOracleSchedule(t *testing.T) {
	l := 24
	dft, ds := testSetup(t, l, 5, micrograph.GenParams{Seed: 11})
	cfg := quickConfig(l)
	r, err := NewRefiner(dft, cfg)
	if err != nil {
		t.Fatal(err)
	}
	finalStep := cfg.Schedule[len(cfg.Schedule)-1].RAngular
	inits := ds.PerturbedOrientations(0.5, 12)
	var adaptiveEvals, exhaustiveEvals int
	for i, v := range ds.Views {
		pv, _ := r.PrepareView(v.Image, v.CTF)
		res := r.RefineView(pv, inits[i])
		ov, _ := r.PrepareView(v.Image, v.CTF)
		oracle := r.ExhaustiveRefine(ov, inits[i])
		gap := geom.AngularDistance(res.Orient, oracle.Orient)
		errA := geom.AngularDistance(res.Orient, v.TrueOrient)
		errE := geom.AngularDistance(oracle.Orient, v.TrueOrient)
		if gap > finalStep && errA > 1.10*errE+0.05 {
			t.Errorf("view %d: adaptive %.4g° from exhaustive argmin with final error %.4g° vs %.4g°",
				i, gap, errA, errE)
		}
		adaptiveEvals += res.TotalMatchings()
		exhaustiveEvals += oracle.TotalMatchings()
	}
	if adaptiveEvals*2 > exhaustiveEvals {
		t.Errorf("adaptive search used %d evals vs exhaustive %d — saved less than half",
			adaptiveEvals, exhaustiveEvals)
	}
}

// TestAdaptiveDeterministicAcrossWorkers: the adaptive path must be
// bit-identical between the serial entry point and batch runs at any
// worker count — the probe streams depend only on (seed, level, entry
// orientation), never on scheduling.
func TestAdaptiveDeterministicAcrossWorkers(t *testing.T) {
	l := 20
	dft, ds := testSetup(t, l, 6, micrograph.GenParams{Seed: 21})
	cfg := quickConfig(l)
	cfg.SearchSeed = 77
	r, err := NewRefiner(dft, cfg)
	if err != nil {
		t.Fatal(err)
	}
	inits := ds.PerturbedOrientations(2, 22)

	var serial []Result
	for i, v := range ds.Views {
		pv, _ := r.PrepareView(v.Image, v.CTF)
		serial = append(serial, r.RefineView(pv, inits[i]))
	}
	for _, workers := range []int{1, 2, 8} {
		var views []*View
		for _, v := range ds.Views {
			pv, _ := r.PrepareView(v.Image, v.CTF)
			views = append(views, pv)
		}
		res, err := r.RefineBatch(context.Background(), views, inits, workers)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(serial, res) {
			t.Fatalf("workers=%d: batch results differ from serial RefineView", workers)
		}
	}
}

// TestAdaptiveSeedChangesProbes: different SearchSeeds must actually
// produce different probe streams (the descent is genuinely seeded,
// not ignoring the seed), while each seed remains self-consistent.
func TestAdaptiveSeedChangesProbes(t *testing.T) {
	rngA := newSearchRNG(1, 0, geom.Euler{Theta: 10, Phi: 20, Omega: 30})
	rngB := newSearchRNG(2, 0, geom.Euler{Theta: 10, Phi: 20, Omega: 30})
	rngC := newSearchRNG(1, 0, geom.Euler{Theta: 10, Phi: 20, Omega: 30})
	differ := false
	for i := 0; i < 16; i++ {
		a, b, c := rngA.offset(4), rngB.offset(4), rngC.offset(4)
		if a != b {
			differ = true
		}
		if a != c {
			t.Fatal("identical seeds produced different streams")
		}
		if a < -4 || a > 4 {
			t.Fatalf("offset %d outside [-4, 4]", a)
		}
	}
	if !differ {
		t.Error("seeds 1 and 2 produced identical 16-draw streams")
	}
}

// TestAdaptiveResumeFromJournaledCheckpoint: an adaptive refinement
// interrupted mid-schedule and resumed from a JSON round-trip of its
// checkpoint (exactly what the serve journal stores) must finish
// bit-identically to the uninterrupted run. The probe streams reseed
// per level from the journaled entry orientation, so the resumed
// levels replay the identical descents.
func TestAdaptiveResumeFromJournaledCheckpoint(t *testing.T) {
	l := 20
	dft, ds := testSetup(t, l, 4, micrograph.GenParams{Seed: 31, CenterJitter: 1})
	cfg := quickConfig(l)
	cfg.SearchSeed = 5
	r, err := NewRefiner(dft, cfg)
	if err != nil {
		t.Fatal(err)
	}
	perturb := geom.Euler{Theta: 1.2, Phi: -0.8, Omega: 0.5}
	n, src := datasetSource(ds, perturb)
	ctx := context.Background()
	opt := StreamOptions{Depth: 2, FFTWorkers: 2, RefineWorkers: 2}

	want, err := r.RefineStream(ctx, n, src, opt)
	if err != nil {
		t.Fatal(err)
	}

	// Checkpoint after level 0, round-trip through JSON (the journal's
	// storage format), resume the rest of the schedule.
	priors := make([]Result, n)
	for i := 0; i < n; i++ {
		it, _ := src(i)
		priors[i] = Result{Orient: it.Init}
	}
	priors, err = r.RefineStreamLevels(ctx, n, src, priors, 0, 1, opt)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := json.Marshal(priors)
	if err != nil {
		t.Fatal(err)
	}
	var restored []Result
	if err := json.Unmarshal(blob, &restored); err != nil {
		t.Fatal(err)
	}
	got, err := r.RefineStreamLevels(ctx, n, src, restored, 1, len(cfg.Schedule), opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		for i := range want {
			if !reflect.DeepEqual(want[i], got[i]) {
				t.Errorf("view %d: uninterrupted %+v vs resumed %+v", i, want[i], got[i])
			}
		}
		t.Fatal("journaled resume diverged from uninterrupted adaptive run")
	}
}

// TestAdaptiveVirtualWindowSlides: a start far outside the level
// window must still be recovered via virtual-window slides, and the
// slides must be recorded just like the flat scan's.
func TestAdaptiveVirtualWindowSlides(t *testing.T) {
	l := 24
	dft, ds := testSetup(t, l, 1, micrograph.GenParams{Seed: 41})
	cfg := quickConfig(l)
	cfg.Schedule = []Level{{RAngular: 1, WindowHalf: 3, CenterDelta: 1, CenterHalf: 1}}
	r, err := NewRefiner(dft, cfg)
	if err != nil {
		t.Fatal(err)
	}
	v := ds.Views[0]
	pv, _ := r.PrepareView(v.Image, v.CTF)
	init := v.TrueOrient.Add(geom.Euler{Theta: 5, Phi: -6, Omega: 5})
	res := r.RefineView(pv, init)
	if res.PerLevel[0].Slides == 0 {
		t.Error("expected virtual-window slides from a far-off start")
	}
	after := geom.AngularDistance(res.Orient, v.TrueOrient)
	if after > 1.5 {
		t.Errorf("far-off start not recovered: %.3g° residual", after)
	}
}

// TestSearchConfigValidate: unknown search modes and negative search
// parameters are rejected up front.
func TestSearchConfigValidate(t *testing.T) {
	cfg := DefaultConfig(16)
	cfg.Search = "simulated-annealing"
	if err := cfg.Validate(); err == nil {
		t.Error("unknown search mode accepted")
	}
	cfg = DefaultConfig(16)
	cfg.SearchProbes = -1
	if err := cfg.Validate(); err == nil {
		t.Error("negative SearchProbes accepted")
	}
	cfg = DefaultConfig(16)
	cfg.ExhaustiveLevels = -2
	if err := cfg.Validate(); err == nil {
		t.Error("negative ExhaustiveLevels accepted")
	}
	for _, mode := range []SearchMode{"", SearchExhaustive, SearchAdaptive} {
		cfg = DefaultConfig(16)
		cfg.Search = mode
		if err := cfg.Validate(); err != nil {
			t.Errorf("mode %q rejected: %v", mode, err)
		}
	}
}

// TestExhaustiveLevelsForcesScan: with ExhaustiveLevels set, the early
// levels run the flat scan (window-sized eval counts) and later levels
// switch to the descent.
func TestExhaustiveLevelsForcesScan(t *testing.T) {
	l := 20
	dft, ds := testSetup(t, l, 1, micrograph.GenParams{Seed: 51})
	cfg := quickConfig(l)
	cfg.ExhaustiveLevels = 1
	r, err := NewRefiner(dft, cfg)
	if err != nil {
		t.Fatal(err)
	}
	v := ds.Views[0]
	pv, _ := r.PrepareView(v.Image, v.CTF)
	res := r.RefineView(pv, v.TrueOrient.Add(geom.Euler{Theta: 1, Phi: -1, Omega: 0.5}))
	// Level 0 scanned a full 9×9×9 window: at least window-size evals.
	if res.PerLevel[0].Matchings < 729 {
		t.Errorf("level 0 ran %d matchings, expected a full window scan (≥729)", res.PerLevel[0].Matchings)
	}
	if res.PerLevel[0].DescentMoves != 0 {
		t.Errorf("level 0 recorded %d descent moves under forced scan", res.PerLevel[0].DescentMoves)
	}
	// Level 1 descended: far fewer evals than its 729-cell window.
	if res.PerLevel[1].Matchings >= 729 {
		t.Errorf("level 1 ran %d matchings, expected an adaptive descent (<729)", res.PerLevel[1].Matchings)
	}
}
