package core

import (
	"math"
	"sort"

	"repro/internal/ctf"
	"repro/internal/fourier"
	"repro/internal/geom"
	"repro/internal/volume"
)

// bandEntry is one Fourier coefficient position that participates in
// the distance d(F, C): signed frequencies (h, k) with RMin ≤ r ≤ RMap,
// plus its weight wt(j,k) and radius.
type bandEntry struct {
	h, k   int
	weight float64
	radius float64
}

// matcher owns the read-only state shared by all views: the volume
// spectrum and the comparison band, sorted by increasing frequency
// radius so coarse schedule levels can match on a low-frequency
// prefix. It is safe for concurrent use; mutable per-worker state
// lives in matchScratch.
type matcher struct {
	dft *fourier.VolumeDFT
	// smp is the fused central-section sampler bound to dft: lattice
	// constants hoisted, wrap arithmetic branch-based, trilinear blend
	// inlined. The scalar dft.Sample path is kept as the reference
	// implementation (and test oracle).
	smp fourier.Sampler
	cfg Config
	l   int
	// band is sorted by (radius, h, k) ascending — the tie-break makes
	// the layout, and therefore the floating-point accumulation order
	// of every distance, reproducible across runs and Go versions.
	band []bandEntry
	// Structure-of-arrays mirror of band for the fused kernel: the hot
	// loops read three flat float64 slices (frequencies pre-converted
	// from int) instead of an array of mixed-field structs.
	fh, fk, wt []float64
	// invL2 normalizes distances to the paper's 1/l² scale.
	invL2 float64
	// cuts memoizes reference cuts at lattice orientations for the
	// adaptive search; shared (and concurrency-safe) across all workers
	// so views descending over the same level grid reuse each other's
	// interpolated cuts.
	cuts *fourier.CutCache
}

func newMatcher(dft *fourier.VolumeDFT, cfg Config) *matcher {
	l := dft.SrcL
	m := &matcher{dft: dft, smp: dft.NewSampler(cfg.Interp), cfg: cfg, l: l, invL2: 1 / float64(l*l), cuts: fourier.NewCutCache(0)}
	rmax := math.Min(cfg.RMap, float64(l)/2)
	ri := int(rmax)
	for h := -ri; h <= ri; h++ {
		for k := -ri; k <= ri; k++ {
			r := math.Hypot(float64(h), float64(k))
			if r > rmax || r < cfg.RMin {
				continue
			}
			w := 1.0
			if cfg.Weighting != nil {
				w = cfg.Weighting(r)
			}
			if w <= 0 {
				continue
			}
			m.band = append(m.band, bandEntry{h: h, k: k, weight: w, radius: r})
		}
	}
	if cfg.SpectralWeight && dft.Data != nil {
		power := radialPower(dft, rmax)
		// Soft gate rather than raw power: shells carrying signal get
		// weight ≈1, shells whose power has fallen below ~1% of the
		// peak (noise-only territory on experimental data) roll off.
		// Raw power would over-weight the lowest shells — which are
		// nearly rotation-invariant — and flatten the search
		// landscape.
		const gate = 0.01
		for i := range m.band {
			shell := int(math.Round(m.band[i].radius))
			if shell < len(power) {
				m.band[i].weight *= power[shell] / (power[shell] + gate)
			}
		}
	}
	sort.SliceStable(m.band, func(a, b int) bool {
		ea, eb := m.band[a], m.band[b]
		if ea.radius != eb.radius {
			return ea.radius < eb.radius
		}
		if ea.h != eb.h {
			return ea.h < eb.h
		}
		return ea.k < eb.k
	})
	m.fh = make([]float64, len(m.band))
	m.fk = make([]float64, len(m.band))
	m.wt = make([]float64, len(m.band))
	for i, e := range m.band {
		m.fh[i] = float64(e.h)
		m.fk[i] = float64(e.k)
		m.wt[i] = e.weight
	}
	return m
}

// radialPower tabulates the reference spectrum's mean power per
// frequency shell (in image-frequency units), normalized to a maximum
// of 1. Shells are sampled along the three lattice axes — adequate for
// the radially smooth spectra of compact particles and much cheaper
// than a full 3-D scan of a padded volume.
func radialPower(dft *fourier.VolumeDFT, rmax float64) []float64 {
	dirs := geom.SphereGrid(26)
	n := int(rmax) + 1
	power := make([]float64, n)
	s := dft.NewSampler(fourier.Trilinear)
	for shell := 0; shell < n; shell++ {
		f := float64(shell)
		for _, d := range dirs {
			p := d.ViewAxis().Scale(f)
			v := s.At(p.X, p.Y, p.Z)
			power[shell] += real(v)*real(v) + imag(v)*imag(v)
		}
		power[shell] /= float64(len(dirs))
	}
	max := 0.0
	for _, p := range power {
		if p > max {
			max = p
		}
	}
	if max > 0 {
		for i := range power {
			power[i] /= max
		}
	}
	return power
}

// prefixLen returns how many leading band entries have radius ≤ rmax.
func (m *matcher) prefixLen(rmax float64) int {
	return sort.Search(len(m.band), func(i int) bool { return m.band[i].radius > rmax })
}

// matchScratch holds the reusable per-worker buffers of the fused
// matching kernel, so the inner loops are allocation-free. Every
// goroutine must own its scratch (the matcher itself stays read-only
// and shared).
type matchScratch struct {
	cut       []complex128          // candidate cut being scored
	centerCut []complex128          // fixed best cut during centre refinement
	orients   []geom.Euler          // current window grid
	pending   []geom.Euler          // uncached subset of the window
	keys      []orientKey           // adaptive candidate batch (lattice keys)
	pendKeys  []orientKey           // uncached subset of keys
	dists     []float64             // batched distances for pending/pendKeys
	cache     map[orientKey]float64 // per-level distance memo across window slides
}

// growDists returns a length-n distance buffer, growing the backing
// array geometrically so the adaptive path's many small candidate
// batches and the flat scan's occasional large windows share one
// steady-state allocation (the same pattern sc.pending follows through
// append).
func (sc *matchScratch) growDists(n int) []float64 {
	if cap(sc.dists) < n {
		newCap := 2 * cap(sc.dists)
		if newCap < n {
			newCap = n
		}
		sc.dists = make([]float64, newCap)
	}
	return sc.dists[:n]
}

// newScratch allocates worker scratch sized to the full band.
func (m *matcher) newScratch() *matchScratch {
	n := len(m.band)
	return &matchScratch{
		cut:       make([]complex128, n),
		centerCut: make([]complex128, n),
		cache:     make(map[orientKey]float64, 256),
	}
}

// viewData is the per-view matching state: the CTF-corrected transform
// sampled at band positions, its band energy, and (optionally) a
// matched-filter weight applied to reference cuts so that a
// phase-flipped view is compared against an equally CTF-attenuated
// reference.
type viewData struct {
	vals []complex128 // F at band entries (radius-ascending order)
	refW []float64    // per-entry cut weights (nil = unweighted)
	// prefixE[i] = Σ_{j<i} w_j·|F_j|², so the band energy of the
	// first n entries is prefixE[n].
	prefixE []float64
}

// prepareView extracts the band coefficients of a view transform.
// The transform must be in the centred convention of fourier.ImageDFT.
// refW, when non-nil, is the per-band-entry weight applied to every
// cut during matching.
func (m *matcher) prepareView(f *volume.CImage, refW []float64) *viewData {
	vd := &viewData{vals: make([]complex128, len(m.band)), refW: refW}
	for i, e := range m.band {
		vd.vals[i] = f.Data[wrapIdx(e.h, m.l)*m.l+wrapIdx(e.k, m.l)]
	}
	vd.rebuildEnergy(m.band)
	return vd
}

// rebuildEnergy recomputes the prefix-energy table after the values
// change.
func (vd *viewData) rebuildEnergy(band []bandEntry) {
	if vd.prefixE == nil {
		vd.prefixE = make([]float64, len(band)+1)
	}
	var acc float64
	vd.prefixE[0] = 0
	for i, e := range band {
		v := vd.vals[i]
		acc += e.weight * (real(v)*real(v) + imag(v)*imag(v))
		vd.prefixE[i+1] = acc
	}
}

// ctfCutWeights tabulates |CTF(s)| over the band for matched-filter
// cut weighting.
func (m *matcher) ctfCutWeights(p ctf.Params) []float64 {
	out := make([]float64, len(m.band))
	for i, e := range m.band {
		s := p.FreqOfBin(e.h, e.k, m.l)
		out[i] = math.Abs(p.Eval(s))
	}
	return out
}

func wrapIdx(f, l int) int {
	f %= l
	if f < 0 {
		f += l
	}
	return f
}

// sampleCut fills cut with the reference cut C at orientation o over
// the leading len(cut) band entries — the fused replacement for
// sampling D̂ coefficient by coefficient — applying the view's
// per-entry cut weights when present. It is the single cut
// construction shared by the distance, magnitude and centre-refinement
// paths, so the metric variants cannot drift from each other.
//
//repro:hotpath
func (m *matcher) sampleCut(cut []complex128, refW []float64, o geom.Euler) {
	rot := o.Matrix()
	n := len(cut)
	m.smp.SampleCut(cut, m.fh[:n], m.fk[:n], rot.Col(0), rot.Col(1))
	if refW != nil {
		for i, c := range cut {
			w := refW[i]
			cut[i] = complex(real(c)*w, imag(c)*w)
		}
	}
}

// distanceToCut evaluates the configured distance between the view and
// an already-sampled cut over the leading len(cut) band entries.
//
// With Config.NormalizeScale the cut is scaled by the least-squares
// factor α* = ⟨F,C⟩/⟨C,C⟩ (clamped at zero) before the squared
// difference, making the metric insensitive to intensity gain:
// d = (E_F − ⟨F,C⟩²/E_C)/l². Without it, the paper's raw formula
// d = Σ w·|F−C|² / l² is used.
//
//repro:hotpath
func (m *matcher) distanceToCut(vd *viewData, cut []complex128) float64 {
	n := len(cut)
	energy := vd.prefixE[n]
	wt := m.wt
	vals := vd.vals
	if m.cfg.NormalizeScale {
		var ec, cross float64
		for i, c := range cut {
			fv := vals[i]
			w := wt[i]
			cr, ci := real(c), imag(c)
			ec += w * (cr*cr + ci*ci)
			cross += w * (real(fv)*cr + imag(fv)*ci)
		}
		if ec == 0 || cross <= 0 {
			// A zero or anti-correlated cut cannot be scaled onto F;
			// the best non-negative scale is 0 and d = E_F.
			return energy * m.invL2
		}
		return (energy - cross*cross/ec) * m.invL2
	}
	var d float64
	for i, c := range cut {
		fv := vals[i]
		dr, di := real(fv)-real(c), imag(fv)-imag(c)
		d += wt[i] * (dr*dr + di*di)
	}
	return d * m.invL2
}

// distance evaluates d(F, C_s) for the cut at orientation o without
// materializing anything beyond the scratch cut buffer: the fused
// sampler writes C over the band prefix and the accumulation follows.
//
//repro:hotpath
func (m *matcher) distance(vd *viewData, o geom.Euler, n int, sc *matchScratch) float64 {
	matchDistanceEvals.Inc()
	cut := sc.cut[:n]
	m.sampleCut(cut, vd.refW, o)
	return m.distanceToCut(vd, cut)
}

// distanceWindow is the batched sliding-window entry point: it scores
// every candidate orientation in one call, writing dst[i] for
// orients[i]. Scratch, band layout and metric configuration are set up
// once per call instead of once per candidate; dst must have length
// len(orients).
//
//repro:hotpath
func (m *matcher) distanceWindow(vd *viewData, orients []geom.Euler, n int, sc *matchScratch, dst []float64) {
	matchDistanceEvals.Add(int64(len(orients)))
	cut := sc.cut[:n]
	for i, o := range orients {
		m.sampleCut(cut, vd.refW, o)
		dst[i] = m.distanceToCut(vd, cut)
	}
}

// distanceLattice scores candidate lattice orientations (key · step
// degrees per axis) in one batched call, writing dst[i] for keys[i].
// Reference cuts come from the shared orientation-quantized cut cache:
// lattice candidates are exact cache keys, so every view descending
// over a level's grid reuses cuts any other view (or worker) already
// interpolated there.
//
//repro:hotpath
func (m *matcher) distanceLattice(vd *viewData, keys []orientKey, step float64, n int, sc *matchScratch, dst []float64) {
	matchDistanceEvals.Add(int64(len(keys)))
	for i, k := range keys {
		cut := m.latticeCut(k, step, n)
		if vd.refW != nil {
			// A CTF-weighted comparison cannot consume the shared raw
			// cut directly — apply the view's cut weights into worker
			// scratch.
			w := sc.cut[:n]
			for j, c := range cut {
				wj := vd.refW[j]
				w[j] = complex(real(c)*wj, imag(c)*wj)
			}
			cut = w
		}
		dst[i] = m.distanceToCut(vd, cut)
	}
}

// latticeCut returns the shared reference cut at lattice key k —
// served from the cut cache when present, sampled and published
// otherwise. Every worker materializes the identical float64 angles
// for a given key (eulerOfKey is exact), so the cached coefficients
// are bit-identical to a fresh sample and the returned slice is safe
// to share; callers must treat it as immutable.
func (m *matcher) latticeCut(k orientKey, step float64, n int) []complex128 {
	ck := fourier.CutKey{Step: step, T: k[0], P: k[1], O: k[2], N: n}
	if cut, ok := m.cuts.Get(ck); ok {
		return cut
	}
	cut := make([]complex128, n)
	rot := eulerOfKey(k, step).Matrix()
	m.smp.SampleCut(cut, m.fh[:n], m.fk[:n], rot.Col(0), rot.Col(1))
	return m.cuts.Put(ck, cut)
}

// shiftedDistance evaluates the distance between the view shifted by
// (dx, dy) pixels — applied as a phase ramp on the band coefficients —
// and a fixed cut (step k's d(E_i, C_µ)).
//
//repro:hotpath
func (m *matcher) shiftedDistance(vd *viewData, cut []complex128, dx, dy float64) float64 {
	matchShiftedEvals.Inc()
	twoPiOverL := 2 * math.Pi / float64(m.l)
	n := len(cut)
	energy := vd.prefixE[n]
	fh, fk, wt := m.fh, m.fk, m.wt
	vals := vd.vals
	if m.cfg.NormalizeScale {
		var ec, cross float64
		for i, c := range cut {
			angle := -twoPiOverL * (fh[i]*dx + fk[i]*dy)
			s, cph := math.Sincos(angle)
			fv := vals[i]
			fr := real(fv)*cph - imag(fv)*s
			fi := real(fv)*s + imag(fv)*cph
			ec += wt[i] * (real(c)*real(c) + imag(c)*imag(c))
			cross += wt[i] * (fr*real(c) + fi*imag(c))
		}
		if ec == 0 || cross <= 0 {
			return energy * m.invL2
		}
		return (energy - cross*cross/ec) * m.invL2
	}
	var d float64
	for i, c := range cut {
		angle := -twoPiOverL * (fh[i]*dx + fk[i]*dy)
		s, cph := math.Sincos(angle)
		fv := vals[i]
		fr := real(fv)*cph - imag(fv)*s
		fi := real(fv)*s + imag(fv)*cph
		dr, di := fr-real(c), fi-imag(c)
		d += wt[i] * (dr*dr + di*di)
	}
	return d * m.invL2
}

// applyShift bakes a centre shift into the view's band coefficients
// (step l: "correct E_q to account for the new center").
func (m *matcher) applyShift(vd *viewData, dx, dy float64) {
	twoPiOverL := 2 * math.Pi / float64(m.l)
	fh, fk := m.fh, m.fk
	for i := range vd.vals {
		angle := -twoPiOverL * (fh[i]*dx + fk[i]*dy)
		s, cph := math.Sincos(angle)
		fv := vd.vals[i]
		vd.vals[i] = complex(real(fv)*cph-imag(fv)*s, real(fv)*s+imag(fv)*cph)
	}
	vd.rebuildEnergy(m.band)
}

// BandSize returns the number of Fourier coefficients in the
// comparison band (exposed for cost accounting and tests). Band
// construction never touches spectrum data, so this works for
// arbitrarily large l.
func BandSize(l int, cfg Config) int {
	dummy := &fourier.VolumeDFT{L: l, SrcL: l}
	return len(newMatcher(dummy, cfg).band)
}

// EstimateMatchFlops models the floating-point work of one matching
// operation (one cut construction + distance) over a band of the
// given size — used by the cluster cost model and the paper-scale
// timing extrapolations.
func EstimateMatchFlops(bandSize int) float64 { return flopsPerMatch(bandSize) }

// EstimateViewFFTFlops models step d (the 2-D DFT of one l×l view).
func EstimateViewFFTFlops(l int) float64 { return viewFFTFlops(l) }

// flopsPerMatch estimates the floating-point work of one matching
// operation (one cut construction + distance) for cost modeling:
// ~8 trilinear corner fetches with complex weighting plus the
// distance accumulation, per band coefficient.
func flopsPerMatch(bandSize int) float64 {
	const perCoeff = 60.0
	return perCoeff * float64(bandSize)
}

// viewFFTFlops models step d (2-D DFT of one view) for cost
// accounting.
func viewFFTFlops(l int) float64 {
	if l < 2 {
		return 0
	}
	return 2 * float64(l) * 5 * float64(l) * math.Log2(float64(l))
}

// magDistance is the translation-invariant variant of distance used by
// the ab-initio coarse scan: it correlates coefficient magnitudes
// |F| vs |C|, which are unaffected by centre error (a shift is a pure
// phase ramp). Less discriminative than phase-aware matching, but a
// mis-centred view cannot derail it; the subsequent refinement stage
// recovers the centre and switches back to the full metric. It shares
// the fused cut construction with the primary metric.
//
//repro:hotpath
func (m *matcher) magDistance(vd *viewData, o geom.Euler, n int, sc *matchScratch) float64 {
	cut := sc.cut[:n]
	m.sampleCut(cut, vd.refW, o)
	wt := m.wt
	vals := vd.vals
	var ec, cross float64
	for i, c := range cut {
		cm2 := real(c)*real(c) + imag(c)*imag(c)
		fv := vals[i]
		fm2 := real(fv)*real(fv) + imag(fv)*imag(fv)
		ec += wt[i] * cm2
		cross += wt[i] * math.Sqrt(fm2*cm2)
	}
	ef := vd.prefixE[n]
	if ec == 0 || cross <= 0 {
		return ef * m.invL2
	}
	return (ef - cross*cross/ec) * m.invL2
}
