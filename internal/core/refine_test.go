package core

import (
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/ctf"
	"repro/internal/fourier"
	"repro/internal/geom"
	"repro/internal/micrograph"
	"repro/internal/phantom"
	"repro/internal/volume"
)

// testSetup builds a small asymmetric phantom, its spectrum, and a
// noiseless dataset.
func testSetup(t testing.TB, l, nViews int, gen micrograph.GenParams) (*fourier.VolumeDFT, *micrograph.Dataset) {
	t.Helper()
	truth := phantom.Asymmetric(l, 8, 1)
	truth.SphericalMask(0.4 * float64(l))
	gen.NumViews = nViews
	if gen.PixelA == 0 {
		gen.PixelA = 2
	}
	ds := micrograph.Generate(truth, gen)
	return fourier.NewVolumeDFTPadded(truth, 2), ds
}

func quickConfig(l int) Config {
	cfg := DefaultConfig(l)
	// Two levels keep tests fast while still exercising the
	// multi-resolution machinery.
	cfg.Schedule = []Level{
		{RAngular: 1, WindowHalf: 4, CenterDelta: 1, CenterHalf: 1},
		{RAngular: 0.1, WindowHalf: 0.4, CenterDelta: 0.1, CenterHalf: 1},
	}
	return cfg
}

func TestRefineViewRecoversOrientation(t *testing.T) {
	l := 24
	dft, ds := testSetup(t, l, 6, micrograph.GenParams{Seed: 3})
	r, err := NewRefiner(dft, quickConfig(l))
	if err != nil {
		t.Fatal(err)
	}
	inits := ds.PerturbedOrientations(2.5, 4)
	for i, v := range ds.Views {
		f, err := r.PrepareView(v.Image, v.CTF)
		if err != nil {
			t.Fatal(err)
		}
		res := r.RefineView(f, inits[i])
		before := geom.AngularDistance(inits[i], v.TrueOrient)
		after := geom.AngularDistance(res.Orient, v.TrueOrient)
		if after > 0.7 {
			t.Errorf("view %d: refined error %.3f° (initial %.3f°)", i, after, before)
		}
		if after >= before {
			t.Errorf("view %d: refinement did not improve (%.3f° -> %.3f°)", i, before, after)
		}
	}
}

func TestRefineViewRecoversCenter(t *testing.T) {
	l := 24
	dft, ds := testSetup(t, l, 5, micrograph.GenParams{Seed: 5, CenterJitter: 1.5})
	r, err := NewRefiner(dft, quickConfig(l))
	if err != nil {
		t.Fatal(err)
	}
	inits := ds.PerturbedOrientations(1.5, 6)
	for i, v := range ds.Views {
		f, _ := r.PrepareView(v.Image, v.CTF)
		res := r.RefineView(f, inits[i])
		// The view was shifted by TrueCenter, so refinement should
		// find the shift that undoes it: Center ≈ −TrueCenter...
		// in fact the refiner reports where the particle origin is
		// relative to the box centre, with the applied correction
		// moving it back. Check the residual after correction.
		dx := res.Center[0] + v.TrueCenter[0]
		dy := res.Center[1] + v.TrueCenter[1]
		if math.Hypot(dx, dy) > 0.5 {
			t.Errorf("view %d: centre residual (%.2f, %.2f) px; found %v, true %v",
				i, dx, dy, res.Center, v.TrueCenter)
		}
	}
}

func TestSlidingWindowActivates(t *testing.T) {
	// Start farther away than the window half-width: the optimum is
	// initially outside the window and only the sliding mechanism can
	// reach it.
	l := 24
	dft, ds := testSetup(t, l, 1, micrograph.GenParams{Seed: 7})
	cfg := quickConfig(l)
	cfg.Schedule = []Level{{RAngular: 1, WindowHalf: 3}}
	r, err := NewRefiner(dft, cfg)
	if err != nil {
		t.Fatal(err)
	}
	v := ds.Views[0]
	init := v.TrueOrient.Add(geom.Euler{Theta: 5, Phi: -6, Omega: 5})
	f, _ := r.PrepareView(v.Image, v.CTF)
	res := r.RefineView(f, init)
	if res.PerLevel[0].Slides == 0 {
		t.Fatal("sliding window never activated despite out-of-window start")
	}
	if d := geom.AngularDistance(res.Orient, v.TrueOrient); d > 1.5 {
		t.Fatalf("sliding search missed optimum by %.2f°", d)
	}
}

func TestNoSlidesWhenStartNearTruth(t *testing.T) {
	l := 24
	dft, ds := testSetup(t, l, 1, micrograph.GenParams{Seed: 8})
	cfg := quickConfig(l)
	cfg.Schedule = []Level{{RAngular: 1, WindowHalf: 4}}
	r, _ := NewRefiner(dft, cfg)
	v := ds.Views[0]
	f, _ := r.PrepareView(v.Image, v.CTF)
	res := r.RefineView(f, v.TrueOrient)
	if res.PerLevel[0].Slides != 0 {
		t.Fatalf("window slid %d times from a perfect start", res.PerLevel[0].Slides)
	}
}

func TestDistanceMinimalAtTruth(t *testing.T) {
	// d(F, C) must be smaller at the true orientation than at
	// perturbed ones — the objective the whole search relies on.
	l := 24
	dft, ds := testSetup(t, l, 1, micrograph.GenParams{Seed: 9})
	r, _ := NewRefiner(dft, DefaultConfig(l))
	v := ds.Views[0]
	pv, _ := r.PrepareView(v.Image, v.CTF)
	sc := r.m.newScratch()
	d0 := r.m.distance(pv.vd, v.TrueOrient, len(r.m.band), sc)
	for _, delta := range []geom.Euler{
		{Theta: 2}, {Phi: -3}, {Omega: 2}, {Theta: -1, Phi: 1, Omega: -1},
	} {
		d := r.m.distance(pv.vd, v.TrueOrient.Add(delta), len(r.m.band), sc)
		if d <= d0 {
			t.Errorf("distance at offset %v (%g) not worse than truth (%g)", delta, d, d0)
		}
	}
}

func TestRefineWithCTFCorrection(t *testing.T) {
	l := 32
	dft, ds := testSetup(t, l, 3, micrograph.GenParams{Seed: 10, ApplyCTF: true, DefocusGroups: 2})
	cfg := quickConfig(l)
	cfg.CorrectCTF = true
	cfg.CTFMode = ctf.PhaseFlip
	cfg.CTFWeightCuts = true
	r, err := NewRefiner(dft, cfg)
	if err != nil {
		t.Fatal(err)
	}
	inits := ds.PerturbedOrientations(2, 11)
	for i, v := range ds.Views {
		f, err := r.PrepareView(v.Image, v.CTF)
		if err != nil {
			t.Fatal(err)
		}
		res := r.RefineView(f, inits[i])
		if d := geom.AngularDistance(res.Orient, v.TrueOrient); d > 1.0 {
			t.Errorf("CTF view %d: refined error %.3f°", i, d)
		}
	}
}

func TestRefineWithNoise(t *testing.T) {
	l := 32
	dft, ds := testSetup(t, l, 3, micrograph.GenParams{Seed: 12, SNR: 2})
	r, _ := NewRefiner(dft, quickConfig(l))
	inits := ds.PerturbedOrientations(2, 13)
	for i, v := range ds.Views {
		f, _ := r.PrepareView(v.Image, v.CTF)
		res := r.RefineView(f, inits[i])
		before := geom.AngularDistance(inits[i], v.TrueOrient)
		after := geom.AngularDistance(res.Orient, v.TrueOrient)
		if after >= before {
			t.Errorf("noisy view %d: no improvement (%.2f° -> %.2f°)", i, before, after)
		}
	}
}

func TestRefineAllMatchesSerial(t *testing.T) {
	l := 24
	dft, ds := testSetup(t, l, 6, micrograph.GenParams{Seed: 14})
	r, _ := NewRefiner(dft, quickConfig(l))
	inits := ds.PerturbedOrientations(2, 15)
	var fs []*View
	for _, v := range ds.Views {
		f, _ := r.PrepareView(v.Image, v.CTF)
		fs = append(fs, f)
	}
	par, err := r.RefineAll(fs, inits, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range ds.Views {
		// Views are stateful (centre shifts bake in), so the serial
		// comparison needs freshly prepared copies.
		f, _ := r.PrepareView(v.Image, v.CTF)
		ser := r.RefineView(f, inits[i])
		if par[i].Orient != ser.Orient || par[i].Center != ser.Center {
			t.Fatalf("view %d: parallel %v/%v vs serial %v/%v",
				i, par[i].Orient, par[i].Center, ser.Orient, ser.Center)
		}
	}
}

func TestRefineAllLengthMismatch(t *testing.T) {
	l := 16
	dft, _ := testSetup(t, l, 1, micrograph.GenParams{Seed: 16})
	r, _ := NewRefiner(dft, quickConfig(l))
	if _, err := r.RefineAll(make([]*View, 2), make([]geom.Euler, 3), 1); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestConfigValidation(t *testing.T) {
	l := 16
	truth := phantom.Asymmetric(l, 3, 1)
	dft := fourier.NewVolumeDFT(truth)
	bad := []Config{
		{RMap: 0},
		{RMap: 5, RMin: 6},
		{RMap: 5, Schedule: []Level{{RAngular: -1}}},
		{RMap: 5, Schedule: []Level{{RAngular: 1, WindowHalf: -2}}},
		{RMap: 5, MaxSlides: -1, Schedule: []Level{{RAngular: 1}}},
	}
	for i, cfg := range bad {
		if _, err := NewRefiner(dft, cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestPrepareViewSizeMismatch(t *testing.T) {
	l := 16
	dft, _ := testSetup(t, l, 1, micrograph.GenParams{Seed: 17})
	r, _ := NewRefiner(dft, quickConfig(l))
	if _, err := r.PrepareView(volume.NewImage(l+2), ctf.Params{}); err == nil {
		t.Fatal("size mismatch accepted")
	}
}

func TestMultiResolutionCheaperThanFlat(t *testing.T) {
	// §4: a multi-resolution search needs orders of magnitude fewer
	// matchings than a flat search at the finest resolution over the
	// same domain.
	l := 24
	dft, ds := testSetup(t, l, 1, micrograph.GenParams{Seed: 18})
	cfg := quickConfig(l)
	r, _ := NewRefiner(dft, cfg)
	v := ds.Views[0]
	f, _ := r.PrepareView(v.Image, v.CTF)
	res := r.RefineView(f, v.TrueOrient.Add(geom.Euler{Theta: 1, Phi: -1, Omega: 1}))
	multi := res.TotalMatchings()
	// Flat equivalent: the level-1 domain (±4°) sampled at the final
	// 0.1° resolution = 81³ points.
	flat := 81 * 81 * 81
	if multi*50 > flat {
		t.Fatalf("multi-resolution used %d matchings, flat equivalent %d — expected ≥50× saving", multi, flat)
	}
}

func TestBandRespectsRMinRMax(t *testing.T) {
	cfg := Config{RMap: 8, RMin: 3, Schedule: DefaultSchedule()}
	n := BandSize(32, cfg)
	// Annulus area ≈ π(64−9) ≈ 173.
	if n < 140 || n > 210 {
		t.Fatalf("band size %d, want ≈173", n)
	}
	full := BandSize(32, Config{RMap: 8, Schedule: DefaultSchedule()})
	if full <= n {
		t.Fatal("RMin did not shrink the band")
	}
}

func TestWeightingChangesBand(t *testing.T) {
	cfg := Config{RMap: 8, Schedule: DefaultSchedule(), Weighting: func(r float64) float64 {
		if r < 2 {
			return 0 // drop low frequencies entirely
		}
		return r
	}}
	n := BandSize(32, cfg)
	full := BandSize(32, Config{RMap: 8, Schedule: DefaultSchedule()})
	if n >= full {
		t.Fatal("zero-weight coefficients not dropped")
	}
}

func TestRefineOnClusterMatchesSerial(t *testing.T) {
	l := 24
	dft, ds := testSetup(t, l, 5, micrograph.GenParams{Seed: 19})
	cfg := quickConfig(l)
	r, _ := NewRefiner(dft, cfg)
	inits := ds.PerturbedOrientations(2, 20)

	cl := cluster.New(3, cluster.SP2)
	var ctfs []ctf.Params
	for _, v := range ds.Views {
		ctfs = append(ctfs, v.CTF)
	}
	par, times, err := r.RefineOnCluster(cl, ds.Images(), ctfs, inits, DefaultParallelOptions())
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range ds.Views {
		f, _ := r.PrepareView(v.Image, v.CTF)
		ser := r.RefineView(f, inits[i])
		if par[i].Orient != ser.Orient {
			t.Fatalf("view %d: cluster %v vs serial %v", i, par[i].Orient, ser.Orient)
		}
	}
	if times.Total <= 0 || times.Refinement <= 0 {
		t.Fatalf("times not populated: %+v", times)
	}
	// The paper's headline observation: matching dominates the cycle.
	if times.Refinement < times.FFTAnalysis {
		t.Errorf("refinement (%.3gs) should dominate FFT analysis (%.3gs)", times.Refinement, times.FFTAnalysis)
	}
}

func TestRefineOnClusterInvariantToNodeCount(t *testing.T) {
	// View refinements are independent, so the refined orientations
	// must be bit-identical whether 1, 2 or 5 nodes process them.
	l := 20
	dft, ds := testSetup(t, l, 5, micrograph.GenParams{Seed: 25})
	cfg := quickConfig(l)
	cfg.Schedule = cfg.Schedule[:1]
	r, _ := NewRefiner(dft, cfg)
	inits := ds.PerturbedOrientations(2, 26)
	var ref []Result
	for _, p := range []int{1, 2, 5} {
		res, _, err := r.RefineOnCluster(cluster.New(p, cluster.SP2), ds.Images(), nil, inits, DefaultParallelOptions())
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = res
			continue
		}
		for i := range res {
			if res[i].Orient != ref[i].Orient || res[i].Center != ref[i].Center {
				t.Fatalf("P=%d: view %d differs from P=1 run", p, i)
			}
		}
	}
}

func TestRefineOnClusterMoreNodesFaster(t *testing.T) {
	l := 20
	dft, ds := testSetup(t, l, 8, micrograph.GenParams{Seed: 27})
	cfg := quickConfig(l)
	cfg.Schedule = cfg.Schedule[:1]
	r, _ := NewRefiner(dft, cfg)
	inits := ds.PerturbedOrientations(2, 28)
	_, t1, err := r.RefineOnCluster(cluster.New(1, cluster.SP2), ds.Images(), nil, inits, DefaultParallelOptions())
	if err != nil {
		t.Fatal(err)
	}
	_, t4, err := r.RefineOnCluster(cluster.New(4, cluster.SP2), ds.Images(), nil, inits, DefaultParallelOptions())
	if err != nil {
		t.Fatal(err)
	}
	if t4.Refinement >= t1.Refinement {
		t.Fatalf("4 nodes (%gs) not faster than 1 (%gs)", t4.Refinement, t1.Refinement)
	}
}

func TestRefineOnClusterValidation(t *testing.T) {
	l := 16
	dft, ds := testSetup(t, l, 2, micrograph.GenParams{Seed: 29})
	r, _ := NewRefiner(dft, quickConfig(l))
	cl := cluster.New(2, cluster.SP2)
	if _, _, err := r.RefineOnCluster(cl, ds.Images(), nil, make([]geom.Euler, 1), DefaultParallelOptions()); err == nil {
		t.Fatal("orientation count mismatch accepted")
	}
	if _, _, err := r.RefineOnCluster(cl, ds.Images(), make([]ctf.Params, 1), make([]geom.Euler, 2), DefaultParallelOptions()); err == nil {
		t.Fatal("CTF count mismatch accepted")
	}
	big := []*volume.Image{volume.NewImage(l + 2), volume.NewImage(l + 2)}
	if _, _, err := r.RefineOnCluster(cl, big, nil, make([]geom.Euler, 2), DefaultParallelOptions()); err == nil {
		t.Fatal("view size mismatch accepted")
	}
}
