package core

import (
	"testing"

	"repro/internal/fourier"
	"repro/internal/geom"
	"repro/internal/micrograph"
	"repro/internal/phantom"
)

func TestGlobalSearchAsymmetric(t *testing.T) {
	l := 28
	truth := phantom.Asymmetric(l, 8, 1)
	truth.SphericalMask(0.4 * float64(l))
	ds := micrograph.Generate(truth, micrograph.GenParams{NumViews: 3, PixelA: 2.5, Seed: 21})
	dft := fourier.NewVolumeDFTPadded(truth, 2)
	cfg := DefaultConfig(l)
	cfg.Schedule = DefaultSchedule()[:2]
	r, err := NewRefiner(dft, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range ds.Views {
		pv, _ := r.PrepareView(v.Image, v.CTF)
		res, err := r.GlobalSearch(pv, DefaultGlobalSearchConfig())
		if err != nil {
			t.Fatal(err)
		}
		if d := geom.AngularDistance(res.Orient, v.TrueOrient); d > 2 {
			t.Errorf("view %d: ab-initio orientation off by %.2f°", i, d)
		}
	}
}

func TestGlobalSearchSymmetricUsesAsymUnit(t *testing.T) {
	l := 32
	truth := phantom.SindbisLike(l)
	ds := micrograph.Generate(truth, micrograph.GenParams{NumViews: 2, PixelA: 2.5, Seed: 22})
	dft := fourier.NewVolumeDFTPadded(truth, 2)
	cfg := DefaultConfig(l)
	cfg.Schedule = DefaultSchedule()[:2]
	r, _ := NewRefiner(dft, cfg)
	g := geom.Icosahedral()
	gcfg := DefaultGlobalSearchConfig()
	gcfg.Symmetry = g
	for i, v := range ds.Views {
		pv, _ := r.PrepareView(v.Image, v.CTF)
		res, err := r.GlobalSearch(pv, gcfg)
		if err != nil {
			t.Fatal(err)
		}
		// For a symmetric particle the answer is correct if it lands
		// on any symmetry mate of the truth.
		best := 1e9
		for _, mate := range g.Orbit(v.TrueOrient) {
			if d := geom.AngularDistance(res.Orient, mate); d < best {
				best = d
			}
		}
		if best > 2 {
			t.Errorf("view %d: symmetric ab-initio off by %.2f° from nearest mate", i, best)
		}
	}
}

func TestGlobalSearchDoesNotMutateView(t *testing.T) {
	l := 24
	truth := phantom.Asymmetric(l, 6, 1)
	truth.SphericalMask(9)
	ds := micrograph.Generate(truth, micrograph.GenParams{NumViews: 1, PixelA: 2.5, CenterJitter: 1, Seed: 23})
	dft := fourier.NewVolumeDFTPadded(truth, 2)
	cfg := DefaultConfig(l)
	cfg.Schedule = DefaultSchedule()[:1]
	r, _ := NewRefiner(dft, cfg)
	pv, _ := r.PrepareView(ds.Views[0].Image, ds.Views[0].CTF)
	before := append([]complex128(nil), pv.vd.vals...)
	if _, err := r.GlobalSearch(pv, DefaultGlobalSearchConfig()); err != nil {
		t.Fatal(err)
	}
	for i := range before {
		if pv.vd.vals[i] != before[i] {
			t.Fatal("GlobalSearch mutated the caller's view")
		}
	}
}

func TestGlobalSearchValidation(t *testing.T) {
	l := 16
	truth := phantom.Asymmetric(l, 4, 1)
	dft := fourier.NewVolumeDFT(truth)
	r, _ := NewRefiner(dft, DefaultConfig(l))
	ds := micrograph.Generate(truth, micrograph.GenParams{NumViews: 1, PixelA: 2, Seed: 24})
	pv, _ := r.PrepareView(ds.Views[0].Image, ds.Views[0].CTF)
	if _, err := r.GlobalSearch(pv, GlobalSearchConfig{StepDeg: 0, TopK: 1}); err == nil {
		t.Fatal("StepDeg 0 accepted")
	}
	if _, err := r.GlobalSearch(pv, GlobalSearchConfig{StepDeg: 10, TopK: 0}); err == nil {
		t.Fatal("TopK 0 accepted")
	}
}
