package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/ctf"
	"repro/internal/cycle"
	"repro/internal/fourier"
	"repro/internal/obs"
	"repro/internal/volume"
	"repro/internal/workload"
)

// Sentinel errors the HTTP layer maps to status codes.
var (
	// ErrQueueFull means the admission queue is at capacity; the
	// request is retriable (HTTP 429).
	ErrQueueFull = errors.New("serve: admission queue full, retry later")
	// ErrDraining means the manager is shutting down (HTTP 503).
	ErrDraining = errors.New("serve: draining, not accepting jobs")
	// ErrNotFound means no job has the given ID (HTTP 404).
	ErrNotFound = errors.New("serve: no such job")
	// ErrTerminal means the operation needs a live job but the job
	// already finished (HTTP 409).
	ErrTerminal = errors.New("serve: job already in a terminal state")
)

// Options configures a Manager.
type Options struct {
	// QueueDepth bounds how many accepted-but-not-started jobs the
	// manager holds; a submit beyond it fails with ErrQueueFull.
	// 0 selects 16.
	QueueDepth int
	// RunWorkers is the number of concurrent job executors; each runs
	// one job's stream pipeline at a time. 0 selects 1 — jobs usually
	// want the cores inside the pipeline, not across jobs.
	RunWorkers int
	// Stream shapes the per-job pipeline (see core.StreamOptions).
	Stream core.StreamOptions
	// Journal, when non-nil, persists every accepted job and every
	// completed level so a restarted manager resumes mid-schedule.
	// The caller owns the journal and closes it after Drain.
	Journal *Journal
	// Clock is the logical clock stamped onto job events and trace
	// spans. nil selects a process-local monotonic tick counter —
	// serve is a simclock package, so wall time is not an option.
	Clock func() float64
	// OnLevel, when non-nil, is called after each level checkpoint
	// (journal written, status updated). It runs on the executor
	// goroutine: it may call RequestDrain to stop the schedule at
	// this checkpoint, but must not block on Drain itself. Cycle jobs
	// pass the global level index (cycle·Levels + level).
	OnLevel func(jobID string, level int)
	// OnCycleMap, when non-nil, is called after a cycle job's map
	// artifact has been written and journaled, before the cycle's FSC
	// runs — the mid-reconstruction kill window the CI smoke targets.
	// Same goroutine discipline as OnLevel.
	OnCycleMap func(jobID string, c int)
	// ArtifactDir is where cycle jobs serialize per-cycle map
	// artifacts. Empty selects the journal's directory; artifacts are
	// only written when Journal is set.
	ArtifactDir string
	// Logf, when non-nil, receives one line per job state change.
	Logf func(format string, args ...any)
}

// job is the manager-internal state of one refinement job. Mutable
// fields are guarded by Manager.mu.
type job struct {
	id          string
	spec        JobSpec
	wspec       workload.DatasetSpec
	submittedAt float64
	resumed     bool
	ctx         context.Context
	cancel      context.CancelFunc

	state      State
	levelsDone int
	results    []core.Result
	errMsg     string
	summary    *Summary

	// Cycle-job state, mirroring the journal's cycle records.
	cyclesStarted int
	cycleHist     []cycle.CycleFSC
	cycleStopped  string
	lastMapCycle  int // -1 until a cycle_map is journaled
	lastMapPath   string
	lastMapDigest string
}

// Manager owns the job table, the bounded admission queue, and the
// executor pool that schedules queued jobs onto the streaming
// refinement pipeline.
type Manager struct {
	opt   Options
	clock func() float64
	logf  func(string, ...any)
	shape Shape

	queue chan *job
	quit  chan struct{}
	wg    sync.WaitGroup

	mu       sync.Mutex
	jobs     map[string]*job
	order    []string
	queued   int // jobs accepted but not yet picked up by an executor
	nextID   int
	started  bool
	draining bool
}

// NewManager builds a manager. If opt.Journal is set, its replayed
// state is loaded: terminal jobs reappear in the table for GET, and
// interrupted jobs re-enter the queue to resume from their last
// checkpointed level. Call Start to begin executing.
func NewManager(opt Options) (*Manager, error) {
	if opt.QueueDepth <= 0 {
		opt.QueueDepth = 16
	}
	if opt.RunWorkers <= 0 {
		opt.RunWorkers = 1
	}
	clock := opt.Clock
	if clock == nil {
		var tick atomic.Int64
		clock = func() float64 { return float64(tick.Add(1)) }
	}
	logf := opt.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	fftW, refW, depth := core.StreamShape(opt.Stream)
	m := &Manager{
		opt:   opt,
		clock: clock,
		logf:  logf,
		shape: Shape{FFTWorkers: fftW, RefineWorkers: refW, Depth: depth},
		quit:  make(chan struct{}),
		jobs:  map[string]*job{},
	}
	var resumable []*job
	if opt.Journal != nil {
		for _, rp := range opt.Journal.Replay() {
			jb, err := m.reviveJob(rp)
			if err != nil {
				return nil, err
			}
			m.jobs[jb.id] = jb
			m.order = append(m.order, jb.id)
			if !jb.state.Terminal() {
				resumable = append(resumable, jb)
			}
			var n int
			if _, err := fmt.Sscanf(jb.id, "job-%d", &n); err == nil && n > m.nextID {
				m.nextID = n
			}
		}
	}
	// The channel is oversized by the resumable backlog so replayed
	// jobs re-enter without blocking; admission control is the queued
	// counter against QueueDepth, not the channel capacity.
	m.queue = make(chan *job, opt.QueueDepth+len(resumable))
	for _, jb := range resumable {
		m.queued++
		m.queue <- jb
		jobsResumed.Inc()
		obs.Emit(evResume, jb.id, jb.levelsDone, jb.submittedAt, [obs.EventFieldsMax]obs.EventField{
			{Key: "levels_done", Value: int64(jb.levelsDone)},
			{Key: "levels_total", Value: int64(jb.spec.levelsTotal())},
		})
		m.logf("serve: resuming %s at level %d/%d", jb.id, jb.levelsDone, jb.spec.levelsTotal())
	}
	gaugeQueueDepth.Set(int64(len(resumable)))
	if opt.Journal != nil {
		gaugeJournalBytes.Set(opt.Journal.Size())
	}
	return m, nil
}

// reviveJob rebuilds a job from its journal replay.
func (m *Manager) reviveJob(rp JobReplay) (*job, error) {
	spec, wspec, err := rp.Spec.normalize()
	if err != nil {
		return nil, fmt.Errorf("serve: journaled job %s: %w", rp.ID, err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &job{
		id:          rp.ID,
		spec:        spec,
		wspec:       wspec,
		submittedAt: m.clock(),
		resumed:     !rp.State.Terminal(),
		ctx:         ctx,
		cancel:      cancel,
		state:       rp.State,
		levelsDone:  rp.LevelsDone,
		results:     rp.Results,
		errMsg:      rp.Error,
		summary:     rp.Summary,

		cyclesStarted: rp.CyclesStarted,
		cycleHist:     rp.History,
		cycleStopped:  rp.Stopped,
		lastMapCycle:  rp.LastMapCycle,
		lastMapPath:   rp.LastMapPath,
		lastMapDigest: rp.LastMapDigest,
	}, nil
}

// Shape returns the resolved stream-pipeline shape jobs run with.
func (m *Manager) Shape() Shape { return m.shape }

// Start launches the executor pool. It may be called once.
func (m *Manager) Start() {
	m.mu.Lock()
	if m.started {
		m.mu.Unlock()
		return
	}
	m.started = true
	m.mu.Unlock()
	for w := 0; w < m.opt.RunWorkers; w++ {
		m.wg.Add(1)
		go m.executor(w)
	}
}

// Submit validates and enqueues a job, returning its initial status.
// Fails with ErrQueueFull when the admission queue is at capacity and
// ErrDraining during shutdown.
func (m *Manager) Submit(spec JobSpec) (JobStatus, error) {
	spec, wspec, err := spec.normalize()
	if err != nil {
		jobsRejected.Inc()
		return JobStatus{}, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.draining {
		jobsRejected.Inc()
		return JobStatus{}, ErrDraining
	}
	if m.queued >= m.opt.QueueDepth {
		jobsRejected.Inc()
		return JobStatus{}, ErrQueueFull
	}
	m.nextID++
	ctx, cancel := context.WithCancel(context.Background())
	jb := &job{
		id:           fmt.Sprintf("job-%06d", m.nextID),
		spec:         spec,
		wspec:        wspec,
		submittedAt:  m.clock(),
		ctx:          ctx,
		cancel:       cancel,
		state:        StatePending,
		lastMapCycle: -1,
	}
	if m.opt.Journal != nil {
		if err := m.opt.Journal.Submit(jb.id, jb.spec); err != nil {
			cancel()
			jobsRejected.Inc()
			return JobStatus{}, err
		}
	}
	m.jobs[jb.id] = jb
	m.order = append(m.order, jb.id)
	m.queued++
	// Guaranteed non-blocking: only Submit (under mu) adds, executors
	// only remove, and the capacity covers QueueDepth plus the replay
	// backlog.
	m.queue <- jb
	jobsSubmitted.Inc()
	queueDepth.Observe(int64(m.queued))
	gaugeQueueDepth.Set(int64(m.queued))
	if m.opt.Journal != nil {
		gaugeJournalBytes.Set(m.opt.Journal.Size())
	}
	obs.Emit(evAdmit, jb.id, noLevel, jb.submittedAt, [obs.EventFieldsMax]obs.EventField{
		{Key: "queue_depth", Value: int64(m.queued)},
		{Key: "views", Value: int64(jb.spec.Views)},
		{Key: "levels", Value: int64(jb.spec.Levels)},
	})
	m.logf("serve: accepted %s (%s, %d views, %d levels)", jb.id, jb.spec.Dataset, jb.spec.Views, jb.spec.Levels)
	return m.statusLocked(jb), nil
}

// Get returns the status of one job.
func (m *Manager) Get(id string) (JobStatus, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	jb := m.jobs[id]
	if jb == nil {
		return JobStatus{}, ErrNotFound
	}
	return m.statusLocked(jb), nil
}

// List returns every known job in first-submission order.
func (m *Manager) List() []JobStatus {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]JobStatus, 0, len(m.order))
	for _, id := range m.order {
		out = append(out, m.statusLocked(m.jobs[id]))
	}
	return out
}

// Results returns a copy of the job's per-view refined results after
// its last completed level.
func (m *Manager) Results(id string) ([]core.Result, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	jb := m.jobs[id]
	if jb == nil {
		return nil, ErrNotFound
	}
	return append([]core.Result(nil), jb.results...), nil
}

// Cancel stops a job: a pending job goes terminal immediately, a
// running job is cancelled through its context and goes terminal when
// the pipeline unwinds. Cancelling a terminal job fails with
// ErrTerminal.
func (m *Manager) Cancel(id string) (JobStatus, error) {
	m.mu.Lock()
	jb := m.jobs[id]
	if jb == nil {
		m.mu.Unlock()
		return JobStatus{}, ErrNotFound
	}
	if jb.state.Terminal() {
		st := m.statusLocked(jb)
		m.mu.Unlock()
		return st, ErrTerminal
	}
	if jb.state == StatePending {
		m.terminalLocked(jb, StateCancelled, "cancelled before start", nil)
		st := m.statusLocked(jb)
		m.mu.Unlock()
		return st, nil
	}
	cancel := jb.cancel
	st := m.statusLocked(jb)
	m.mu.Unlock()
	cancel()
	return st, nil
}

// RequestDrain flips the manager into draining mode without waiting:
// submits start failing with ErrDraining, idle executors exit, and
// running jobs stop at their next level checkpoint, parking as
// pending for a future restart to resume. Safe to call more than
// once, and from OnLevel.
func (m *Manager) RequestDrain() {
	m.mu.Lock()
	already := m.draining
	m.draining = true
	m.mu.Unlock()
	if !already {
		close(m.quit)
	}
}

// Drain requests a drain and waits for every executor to stop. The
// journal (if any) is left to the caller to close afterwards.
func (m *Manager) Drain() {
	m.RequestDrain()
	m.wg.Wait()
}

// drainRequested reports whether a drain is in progress.
func (m *Manager) drainRequested() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.draining
}

// executor pulls queued jobs and runs them to a terminal state (or to
// a drain checkpoint).
func (m *Manager) executor(worker int) {
	defer m.wg.Done()
	for {
		select {
		case <-m.quit:
			return
		case jb := <-m.queue:
			// The clock is read unconditionally (not only when
			// instrumentation is on) so the logical tick sequence — and
			// with it every later timestamp — is identical whether or
			// not events and metrics record, preserving the
			// bit-identical-on-or-off contract.
			started := m.clock()
			m.mu.Lock()
			m.queued--
			gaugeQueueDepth.Set(int64(m.queued))
			skip := jb.state != StatePending // cancelled while queued
			if !skip {
				jb.state = StateRunning
			}
			m.mu.Unlock()
			if !skip {
				admitToStartTicks.Observe(int64(started - jb.submittedAt))
				obs.Emit(evDequeue, jb.id, noLevel, started, [obs.EventFieldsMax]obs.EventField{
					{Key: "worker", Value: int64(worker)},
					{Key: "wait_ticks", Value: int64(started - jb.submittedAt)},
				})
				gaugeRunningJobs.Inc()
				if jb.spec.Type == TypeCycle {
					m.runCycleJob(worker, jb)
				} else {
					m.runJob(worker, jb)
				}
				gaugeRunningJobs.Dec()
			}
		}
	}
}

// runJob executes one job level by level, checkpointing after each.
// The dataset, refiner and initial orientations are rebuilt from the
// spec's seeds on every (re)start; recorded shift increments replayed
// by RefineStreamLevels restore mid-schedule state bit-identically.
func (m *Manager) runJob(worker int, jb *job) {
	ds := jb.wspec.Build()
	inits := ds.PerturbedOrientations(jb.spec.InitError, jb.spec.InitSeed)
	dft := fourier.NewVolumeDFTPadded(ds.Truth, jb.spec.Pad)
	cfg := core.DefaultConfig(jb.wspec.L)
	cfg.Schedule = core.DefaultSchedule()[:jb.spec.Levels]
	// Search mode and seed come from the journaled spec, so a resumed
	// job replays the identical (adaptive or exhaustive) search path.
	cfg.Search = core.SearchMode(jb.spec.Search)
	cfg.SearchSeed = jb.spec.SearchSeed
	r, err := core.NewRefiner(dft, cfg)
	if err != nil {
		m.finish(jb, StateFailed, fmt.Sprintf("building refiner: %v", err), nil)
		return
	}
	n := len(ds.Views)
	images := make([]*volume.Image, n)
	ctfs := make([]ctf.Params, n)
	for i, v := range ds.Views {
		images[i] = v.Image
		ctfs[i] = v.CTF
	}
	src := core.SliceSource(images, ctfs, inits)

	m.mu.Lock()
	start := jb.levelsDone
	priors := jb.results
	m.mu.Unlock()
	if priors == nil {
		priors = make([]core.Result, n)
		for i := range priors {
			priors[i] = core.Result{Orient: inits[i]}
		}
	}

	for k := start; k < jb.spec.Levels; k++ {
		if m.drainRequested() {
			m.park(jb)
			return
		}
		t0 := m.clock()
		obs.Emit(evLevelStart, jb.id, k, t0, [obs.EventFieldsMax]obs.EventField{
			{Key: "views", Value: int64(n)},
		})
		res, err := r.RefineStreamLevels(jb.ctx, n, src, priors, k, k+1, m.opt.Stream)
		if err != nil {
			if errors.Is(err, context.Canceled) {
				m.finish(jb, StateCancelled, "cancelled while running", nil)
			} else {
				m.finish(jb, StateFailed, fmt.Sprintf("level %d: %v", k, err), nil)
			}
			return
		}
		priors = res
		t1 := m.clock()
		obs.Span(0, worker, fmt.Sprintf("%s L%d", jb.id, k), "serve.level", t0, t1)
		levelTicks.Observe(int64(t1 - t0))
		evals, slides, shifts := levelTotals(priors, k)
		obs.Emit(evLevelEnd, jb.id, k, t1, [obs.EventFieldsMax]obs.EventField{
			{Key: "evals", Value: evals},
			{Key: "slides", Value: slides},
			{Key: "shifts", Value: shifts},
			{Key: "ticks", Value: int64(t1 - t0)},
		})
		levelsDone.Inc()
		m.mu.Lock()
		jb.levelsDone = k + 1
		jb.results = priors
		var jerr error
		if m.opt.Journal != nil {
			jerr = m.opt.Journal.Level(jb.id, k, priors)
			if jerr == nil {
				gaugeJournalBytes.Set(m.opt.Journal.Size())
				obs.Emit(evCheckpoint, jb.id, k, t1, [obs.EventFieldsMax]obs.EventField{
					{Key: "journal_bytes", Value: m.opt.Journal.Size()},
				})
			}
		}
		m.mu.Unlock()
		if jerr != nil {
			m.finish(jb, StateFailed, fmt.Sprintf("journaling level %d: %v", k, jerr), nil)
			return
		}
		if m.opt.OnLevel != nil {
			m.opt.OnLevel(jb.id, k)
		}
	}
	m.finish(jb, StateDone, "", summarize(priors, ds.TrueOrientations()))
}

// levelTotals aggregates one completed level's per-view work counters
// for the level_end event: total distance evaluations (window +
// centre), window re-centres, and centre-shift increments applied.
func levelTotals(results []core.Result, level int) (evals, slides, shifts int64) {
	for i := range results {
		if level >= len(results[i].PerLevel) {
			continue
		}
		st := results[i].PerLevel[level]
		evals += int64(st.Matchings) + int64(st.CenterEvals)
		slides += int64(st.Slides) + int64(st.CenterSlides)
		shifts += int64(len(st.Shifts))
	}
	return evals, slides, shifts
}

// park returns a running job to pending at a drain checkpoint; the
// journal already holds everything a restart needs.
func (m *Manager) park(jb *job) {
	m.mu.Lock()
	jb.state = StatePending
	obs.Emit(evPark, jb.id, jb.levelsDone, m.clock(), [obs.EventFieldsMax]obs.EventField{
		{Key: "levels_done", Value: int64(jb.levelsDone)},
	})
	m.mu.Unlock()
	m.logf("serve: parked %s at level %d/%d for drain", jb.id, jb.levelsDone, jb.spec.levelsTotal())
}

// finish moves a job to a terminal state and journals it.
func (m *Manager) finish(jb *job, state State, errMsg string, sum *Summary) {
	m.mu.Lock()
	m.terminalLocked(jb, state, errMsg, sum)
	m.mu.Unlock()
}

// terminalLocked is finish with Manager.mu held.
func (m *Manager) terminalLocked(jb *job, state State, errMsg string, sum *Summary) {
	jb.state = state
	jb.errMsg = errMsg
	jb.summary = sum
	jb.cancel()
	switch state {
	case StateDone:
		jobsDone.Inc()
	case StateFailed:
		jobsFailed.Inc()
	case StateCancelled:
		jobsCancelled.Inc()
	}
	// The terminal event's kind is the state string itself
	// ("done"/"failed"/"cancelled") so emission never concatenates.
	obs.Emit(string(state), jb.id, jb.levelsDone, m.clock(), [obs.EventFieldsMax]obs.EventField{
		{Key: "levels_done", Value: int64(jb.levelsDone)},
	})
	if m.opt.Journal != nil {
		if err := m.opt.Journal.Terminal(jb.id, state, errMsg, sum); err != nil {
			m.logf("serve: journaling terminal state of %s: %v", jb.id, err)
		} else {
			gaugeJournalBytes.Set(m.opt.Journal.Size())
		}
	}
	m.logf("serve: %s → %s %s", jb.id, state, errMsg)
}

// statusLocked snapshots a job's status with Manager.mu held.
func (m *Manager) statusLocked(jb *job) JobStatus {
	st := JobStatus{
		ID:          jb.id,
		State:       jb.state,
		Spec:        jb.spec,
		Views:       jb.spec.Views,
		LevelsDone:  jb.levelsDone,
		LevelsTotal: jb.spec.levelsTotal(),
		Shape:       m.shape,
		SubmittedAt: jb.submittedAt,
		Resumed:     jb.resumed,
		Error:       jb.errMsg,
		Summary:     jb.summary,
	}
	if jb.spec.Type == TypeCycle {
		cs := &CycleStatus{
			Done:      len(jb.cycleHist),
			Max:       jb.spec.MaxCycles,
			Stopped:   jb.cycleStopped,
			MapPath:   jb.lastMapPath,
			MapDigest: jb.lastMapDigest,
			History:   append([]cycle.CycleFSC(nil), jb.cycleHist...),
		}
		if n := len(jb.cycleHist); n > 0 {
			cs.ResolutionA = jb.cycleHist[n-1].ResolutionA
			cs.Plateau = jb.cycleHist[n-1].Plateau
		}
		st.Cycle = cs
	}
	return st
}
