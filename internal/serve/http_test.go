package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// postJob submits a spec over HTTP and returns the response.
func postJob(t *testing.T, ts *httptest.Server, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if err := resp.Body.Close(); err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// getJSON GETs a path and decodes the JSON body into out.
func getJSON(t *testing.T, ts *httptest.Server, path string, out any) *http.Response {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if err := resp.Body.Close(); err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("GET %s: decoding %q: %v", path, data, err)
		}
	}
	return resp
}

// TestHTTPLifecycle drives a job end to end through the API: submit,
// poll to completion, list, metrics, trace.
func TestHTTPLifecycle(t *testing.T) {
	m, err := NewManager(Options{Stream: tinyStream()})
	if err != nil {
		t.Fatal(err)
	}
	m.Start()
	defer m.Drain()
	ts := httptest.NewServer(NewHandler(m))
	defer ts.Close()

	resp, data := postJob(t, ts, `{"dataset":"asymmetric","scale":2.5,"views":4,"levels":2,"init_seed":3}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /jobs: %d %s", resp.StatusCode, data)
	}
	var st JobStatus
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatalf("decoding %q: %v", data, err)
	}
	if st.ID == "" || st.State != StatePending || st.LevelsTotal != 2 {
		t.Fatalf("initial status %+v", st)
	}
	if st.Shape.FFTWorkers != 2 || st.Shape.RefineWorkers != 2 || st.Shape.Depth != 2 {
		t.Fatalf("shape not reported: %+v", st.Shape)
	}

	deadline := time.Now().Add(60 * time.Second)
	var fin JobStatus
	for {
		getJSON(t, ts, "/jobs/"+st.ID, &fin)
		if fin.State.Terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck: %+v", fin)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if fin.State != StateDone || fin.LevelsDone != 2 || fin.Summary == nil {
		t.Fatalf("final status %+v", fin)
	}

	var list []JobStatus
	getJSON(t, ts, "/jobs", &list)
	if len(list) != 1 || list[0].ID != st.ID {
		t.Fatalf("list %+v", list)
	}

	// /metrics serves the PR 4 JSON exporter document.
	prev := obs.SetEnabled(true)
	defer obs.SetEnabled(prev)
	var doc struct {
		SchemaVersion int `json:"schema_version"`
		Metrics       []struct {
			Name  string `json:"name"`
			Value int64  `json:"value"`
		} `json:"metrics"`
	}
	resp2 := getJSON(t, ts, "/metrics", &doc)
	if resp2.StatusCode != http.StatusOK || doc.SchemaVersion != 1 {
		t.Fatalf("metrics: %d, schema %d", resp2.StatusCode, doc.SchemaVersion)
	}
	found := false
	for _, mt := range doc.Metrics {
		if mt.Name == "serve.jobs.submitted" {
			found = true
		}
	}
	if !found {
		t.Fatalf("serve.jobs.submitted missing from metrics: %+v", doc.Metrics)
	}

	// /trace: 404 with no active trace, a Chrome trace doc with one.
	if resp := getJSON(t, ts, "/trace", nil); resp.StatusCode != http.StatusNotFound && obs.ActiveTrace() == nil {
		t.Fatalf("trace without active trace: %d", resp.StatusCode)
	}
	obs.StartTrace()
	defer obs.EndTrace()
	var trace struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if resp := getJSON(t, ts, "/trace", &trace); resp.StatusCode != http.StatusOK {
		t.Fatalf("trace with active trace: %d", resp.StatusCode)
	}
}

// TestHTTPBackpressure: a stopped manager's queue fills, and the
// overflow submit gets 429 + Retry-After — the retriable contract.
func TestHTTPBackpressure(t *testing.T) {
	m, err := NewManager(Options{QueueDepth: 1, Stream: tinyStream()})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewHandler(m))
	defer ts.Close()

	body := `{"dataset":"asymmetric","scale":2.5,"views":4,"levels":1}`
	if resp, data := postJob(t, ts, body); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first POST: %d %s", resp.StatusCode, data)
	}
	resp, data := postJob(t, ts, body)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow POST: %d %s", resp.StatusCode, data)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	var eb errorBody
	if err := json.Unmarshal(data, &eb); err != nil || eb.Error == "" {
		t.Fatalf("429 body %q: %v", data, err)
	}

	// Draining manager → 503.
	m.RequestDrain()
	if resp, _ := postJob(t, ts, body); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining POST: %d", resp.StatusCode)
	}
}

// TestHTTPErrors: the 400/404/409 mappings.
func TestHTTPErrors(t *testing.T) {
	m, err := NewManager(Options{Stream: tinyStream()})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewHandler(m))
	defer ts.Close()

	if resp, _ := postJob(t, ts, `{not json`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad JSON: %d", resp.StatusCode)
	}
	if resp, _ := postJob(t, ts, `{"dataset":"nope"}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown dataset: %d", resp.StatusCode)
	}
	if resp, _ := postJob(t, ts, `{"dataset":"asymmetric","bogus":1}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown field: %d", resp.StatusCode)
	}
	if resp := getJSON(t, ts, "/jobs/job-999999", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET unknown job: %d", resp.StatusCode)
	}

	// Cancel flow: DELETE a pending job, then DELETE again → 409.
	_, data := postJob(t, ts, `{"dataset":"asymmetric","scale":2.5,"views":4,"levels":1}`)
	var st JobStatus
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatal(err)
	}
	del := func(id string) *http.Response {
		req, err := http.NewRequest(http.MethodDelete, ts.URL+"/jobs/"+id, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			t.Fatal(err)
		}
		if err := resp.Body.Close(); err != nil {
			t.Fatal(err)
		}
		return resp
	}
	if resp := del(st.ID); resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE pending job: %d", resp.StatusCode)
	}
	if resp := del(st.ID); resp.StatusCode != http.StatusConflict {
		t.Fatalf("second DELETE: %d", resp.StatusCode)
	}
	if resp := del("job-999999"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("DELETE unknown job: %d", resp.StatusCode)
	}
}

// TestHTTPResponsesAreJSON: every error body is the JSON envelope, so
// clients can always decode {"error": ...}.
func TestHTTPResponsesAreJSON(t *testing.T) {
	m, err := NewManager(Options{QueueDepth: 1, Stream: tinyStream()})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewHandler(m))
	defer ts.Close()
	for _, tc := range []struct{ method, path, body string }{
		{http.MethodPost, "/jobs", `{"dataset":"nope"}`},
		{http.MethodGet, "/jobs/job-404404", ""},
		{http.MethodDelete, "/jobs/job-404404", ""},
	} {
		req, err := http.NewRequest(tc.method, ts.URL+tc.path, bytes.NewReader([]byte(tc.body)))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if err := resp.Body.Close(); err != nil {
			t.Fatal(err)
		}
		var eb errorBody
		if err := json.Unmarshal(data, &eb); err != nil || eb.Error == "" {
			t.Errorf("%s %s: body %q is not the error envelope (%v)", tc.method, tc.path, data, err)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Errorf("%s %s: content type %q", tc.method, tc.path, ct)
		}
	}
}
