package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"repro/internal/obs"
)

// The HTTP surface, all stdlib:
//
//	POST   /jobs      — submit a JobSpec; 202 with the job status
//	GET    /jobs      — list all jobs
//	GET    /jobs/{id} — one job's status
//	DELETE /jobs/{id} — cancel a job
//	GET    /metrics   — the obs JSON snapshot (schema_version envelope);
//	                    ?format=prom selects the Prometheus text
//	                    exposition (version 0.0.4) instead
//	GET    /trace     — the active Chrome trace_event timeline
//	GET    /events    — live event stream (SSE, or ?poll=1 long-poll);
//	                    see http_events.go
//	GET    /jobs/{id}/events — one job's event stream
//
// Error mapping: invalid spec → 400, unknown job → 404, queue full →
// 429 with Retry-After (the client should back off and retry — the
// job was not accepted), draining → 503, cancel of a finished job →
// 409. Handlers never read the wall clock; anything time-shaped in a
// response came from the manager's logical clock.

// errorBody is the JSON error envelope.
type errorBody struct {
	Error string `json:"error"`
}

// NewHandler returns the service's HTTP handler for the given manager.
func NewHandler(m *Manager) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", func(w http.ResponseWriter, r *http.Request) {
		handleSubmit(m, w, r)
	})
	mux.HandleFunc("GET /jobs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(m, w, http.StatusOK, m.List())
	})
	mux.HandleFunc("GET /jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		st, err := m.Get(r.PathValue("id"))
		if err != nil {
			writeJSON(m, w, http.StatusNotFound, errorBody{Error: err.Error()})
			return
		}
		writeJSON(m, w, http.StatusOK, st)
	})
	mux.HandleFunc("DELETE /jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		handleCancel(m, w, r)
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		// Snapshots are point-in-time by construction; no-store keeps
		// intermediaries from serving a stale scrape.
		w.Header().Set("Cache-Control", "no-store")
		if r.URL.Query().Get("format") == "prom" {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			if err := obs.WriteProm(w); err != nil {
				m.logf("serve: writing prom metrics: %v", err)
			}
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if err := obs.WriteJSON(w); err != nil {
			m.logf("serve: writing metrics: %v", err)
		}
	})
	mux.HandleFunc("GET /trace", func(w http.ResponseWriter, r *http.Request) {
		tr := obs.ActiveTrace()
		if tr == nil {
			writeJSON(m, w, http.StatusNotFound, errorBody{Error: "serve: no active trace; start the daemon with tracing enabled"})
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Cache-Control", "no-store")
		if err := tr.WriteChromeTrace(w); err != nil {
			m.logf("serve: writing trace: %v", err)
		}
	})
	mux.HandleFunc("GET /events", func(w http.ResponseWriter, r *http.Request) {
		handleEvents(m, w, r, "")
	})
	mux.HandleFunc("GET /jobs/{id}/events", func(w http.ResponseWriter, r *http.Request) {
		handleEvents(m, w, r, r.PathValue("id"))
	})
	return mux
}

// handleSubmit decodes, validates and enqueues a job spec.
func handleSubmit(m *Manager, w http.ResponseWriter, r *http.Request) {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var spec JobSpec
	if err := dec.Decode(&spec); err != nil {
		writeJSON(m, w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("serve: decoding job spec: %v", err)})
		return
	}
	st, err := m.Submit(spec)
	switch {
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		writeJSON(m, w, http.StatusTooManyRequests, errorBody{Error: err.Error()})
	case errors.Is(err, ErrDraining):
		writeJSON(m, w, http.StatusServiceUnavailable, errorBody{Error: err.Error()})
	case err != nil:
		writeJSON(m, w, http.StatusBadRequest, errorBody{Error: err.Error()})
	default:
		writeJSON(m, w, http.StatusAccepted, st)
	}
}

// handleCancel maps Cancel's errors onto DELETE semantics.
func handleCancel(m *Manager, w http.ResponseWriter, r *http.Request) {
	st, err := m.Cancel(r.PathValue("id"))
	switch {
	case errors.Is(err, ErrNotFound):
		writeJSON(m, w, http.StatusNotFound, errorBody{Error: err.Error()})
	case errors.Is(err, ErrTerminal):
		writeJSON(m, w, http.StatusConflict, errorBody{Error: err.Error()})
	case err != nil:
		writeJSON(m, w, http.StatusInternalServerError, errorBody{Error: err.Error()})
	default:
		writeJSON(m, w, http.StatusOK, st)
	}
}

// writeJSON writes v as an indented JSON response. A failed write
// means the client went away; it is logged, not surfaced — there is
// nobody left to surface it to.
func writeJSON(m *Manager, w http.ResponseWriter, code int, v any) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		http.Error(w, `{"error":"serve: encoding response"}`, http.StatusInternalServerError)
		m.logf("serve: encoding response: %v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if _, err := w.Write(append(data, '\n')); err != nil {
		m.logf("serve: writing response: %v", err)
	}
}
