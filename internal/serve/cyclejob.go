package serve

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/ctf"
	"repro/internal/cycle"
	"repro/internal/fsc"
	"repro/internal/obs"
	"repro/internal/reconstruct"
	"repro/internal/volume"
)

// runCycleJob executes one cycle job through the internal/cycle driver,
// wiring its hooks onto the manager's journal, event stream, gauges,
// and artifact store. The journal discipline mirrors runJob's: every
// acknowledged record is fsynced before the hook returns, and replay
// rebuilds exactly the cycle.State the driver resumes from —
// including reloading the previous cycle's map artifact (digest-
// verified) when the kill landed inside a cycle's refinement pass.
func (m *Manager) runCycleJob(worker int, jb *job) {
	ds := jb.wspec.Build()
	inits := ds.PerturbedOrientations(jb.spec.InitError, jb.spec.InitSeed)
	n := len(ds.Views)
	cds := cycle.Dataset{Views: ds.Images(), Inits: inits}
	if ds.HasCTF {
		cds.CTFs = make([]ctf.Params, n)
		for i, v := range ds.Views {
			cds.CTFs[i] = v.CTF
		}
	}
	cfg := cycle.Config{
		L:             ds.L,
		PixelA:        ds.PixelA,
		Levels:        jb.spec.Levels,
		Pad:           jb.spec.Pad,
		MaxCycles:     jb.spec.MaxCycles,
		PlateauEps:    jb.spec.PlateauEps,
		PlateauWindow: jb.spec.PlateauWindow,
		Search:        core.SearchMode(jb.spec.Search),
		SearchSeed:    jb.spec.SearchSeed,
		CTF:           ds.HasCTF,
		Stream:        m.opt.Stream,
	}

	m.mu.Lock()
	st := cycle.State{
		LevelsDone: jb.levelsDone,
		Results:    jb.results,
		History:    append([]cycle.CycleFSC(nil), jb.cycleHist...),
	}
	lastCycle, lastPath, lastDigest := jb.lastMapCycle, jb.lastMapPath, jb.lastMapDigest
	stopped := jb.cycleStopped
	m.mu.Unlock()

	// A journaled stop reason means the outer loop already finished; the
	// kill landed between the final cycle_end and the terminal record.
	// Everything (results, history, map artifact) is replayed — only the
	// terminal record is missing.
	if stopped != "" {
		m.finish(jb, StateDone, "", summarize(st.Results, ds.TrueOrientations()))
		return
	}

	// Resuming inside cycle c's refinement needs cycle c−1's map as the
	// reference; reload it from the journaled artifact and verify its
	// content digest before trusting it.
	if c := len(st.History); c > 0 && st.LevelsDone < (c+1)*jb.spec.Levels {
		if lastCycle != c-1 {
			m.finish(jb, StateFailed, fmt.Sprintf("resume: journal has map for cycle %d, need %d", lastCycle, c-1), nil)
			return
		}
		ref, err := loadMapArtifact(lastPath, lastDigest)
		if err != nil {
			m.finish(jb, StateFailed, fmt.Sprintf("resume: %v", err), nil)
			return
		}
		st.Ref = ref
	}

	// lastLevelStart carries the level's start tick from OnLevelStart
	// to OnLevel; hooks run sequentially on this goroutine.
	var lastLevelStart float64

	h := cycle.Hooks{
		Drain: m.drainRequested,
		OnCycleStart: func(c int) error {
			ts := m.clock()
			gaugeCycleNow.Set(int64(c))
			obs.Emit(evCycleStart, jb.id, noLevel, ts, [obs.EventFieldsMax]obs.EventField{
				{Key: "cycle", Value: int64(c)},
				{Key: "max_cycles", Value: int64(jb.spec.MaxCycles)},
				{Key: "levels", Value: int64(jb.spec.Levels)},
			})
			m.mu.Lock()
			defer m.mu.Unlock()
			// Already journaled iff this cycle started before a restart.
			if m.opt.Journal != nil && c >= jb.cyclesStarted {
				if err := m.opt.Journal.CycleStart(jb.id, c); err != nil {
					return err
				}
				gaugeJournalBytes.Set(m.opt.Journal.Size())
			}
			if c >= jb.cyclesStarted {
				jb.cyclesStarted = c + 1
			}
			return nil
		},
		OnLevelStart: func(c, global int) error {
			lastLevelStart = m.clock()
			obs.Emit(evLevelStart, jb.id, global, lastLevelStart, [obs.EventFieldsMax]obs.EventField{
				{Key: "views", Value: int64(n)},
				{Key: "cycle", Value: int64(c)},
			})
			return nil
		},
		OnLevel: func(c, global int, results []core.Result) error {
			t1 := m.clock()
			obs.Span(0, worker, fmt.Sprintf("%s C%d L%d", jb.id, c, global%jb.spec.Levels), "serve.level", lastLevelStart, t1)
			levelTicks.Observe(int64(t1 - lastLevelStart))
			evals, slides, shifts := levelTotals(results, global)
			obs.Emit(evLevelEnd, jb.id, global, t1, [obs.EventFieldsMax]obs.EventField{
				{Key: "evals", Value: evals},
				{Key: "slides", Value: slides},
				{Key: "shifts", Value: shifts},
				{Key: "ticks", Value: int64(t1 - lastLevelStart)},
			})
			levelsDone.Inc()
			m.mu.Lock()
			jb.levelsDone = global + 1
			jb.results = results
			var jerr error
			if m.opt.Journal != nil {
				jerr = m.opt.Journal.Level(jb.id, global, results)
				if jerr == nil {
					gaugeJournalBytes.Set(m.opt.Journal.Size())
					obs.Emit(evCheckpoint, jb.id, global, t1, [obs.EventFieldsMax]obs.EventField{
						{Key: "journal_bytes", Value: m.opt.Journal.Size()},
					})
				}
			}
			m.mu.Unlock()
			if jerr != nil {
				return jerr
			}
			if m.opt.OnLevel != nil {
				m.opt.OnLevel(jb.id, global)
			}
			return nil
		},
		OnMap: func(c int, g *volume.Grid) error {
			ts := m.clock()
			digest := reconstruct.MapDigest(g)
			if m.opt.Journal != nil {
				m.mu.Lock()
				journaled := jb.lastMapCycle == c
				journaledDigest := jb.lastMapDigest
				m.mu.Unlock()
				if journaled {
					// The kill landed between this cycle's map journal
					// and its cycle_end; the recomputed map must match
					// the journaled digest bit for bit.
					if digest != journaledDigest {
						return fmt.Errorf("cycle %d map digest %.12s does not match journaled %.12s", c, digest, journaledDigest)
					}
				} else {
					path := filepath.Join(m.artifactDir(), fmt.Sprintf("%s.cycle-%d.map", jb.id, c))
					if err := volume.WriteGridFile(path, g); err != nil {
						return err
					}
					m.mu.Lock()
					err := m.opt.Journal.CycleMap(jb.id, c, path, digest)
					if err == nil {
						jb.lastMapCycle, jb.lastMapPath, jb.lastMapDigest = c, path, digest
						gaugeJournalBytes.Set(m.opt.Journal.Size())
						obs.Emit(evCheckpoint, jb.id, noLevel, ts, [obs.EventFieldsMax]obs.EventField{
							{Key: "cycle", Value: int64(c)},
							{Key: "journal_bytes", Value: m.opt.Journal.Size()},
						})
					}
					m.mu.Unlock()
					if err != nil {
						return err
					}
				}
			}
			if m.opt.OnCycleMap != nil {
				m.opt.OnCycleMap(jb.id, c)
			}
			return nil
		},
		OnCycleEnd: func(rec cycle.CycleFSC, curve *fsc.Curve, stopped string) error {
			ts := m.clock()
			cyclesCompleted.Inc()
			gaugeCycleRes.Set(milliA(rec.ResolutionA))
			obs.Emit(evFSC, jb.id, noLevel, ts, [obs.EventFieldsMax]obs.EventField{
				{Key: "cycle", Value: int64(rec.Cycle)},
				{Key: "resolution_ma", Value: milliA(rec.ResolutionA)},
				{Key: "mean_cc_ppm", Value: int64(rec.MeanCC * 1e6)},
				{Key: "plateau", Value: int64(rec.Plateau)},
			})
			improved := int64(0)
			if rec.Improved {
				improved = 1
			}
			obs.Emit(evCycleEnd, jb.id, noLevel, ts, [obs.EventFieldsMax]obs.EventField{
				{Key: "cycle", Value: int64(rec.Cycle)},
				{Key: "plateau", Value: int64(rec.Plateau)},
				{Key: "improved", Value: improved},
				{Key: "stopped", Value: stopCode(stopped)},
			})
			m.mu.Lock()
			defer m.mu.Unlock()
			jb.cycleHist = append(jb.cycleHist, rec)
			jb.cycleStopped = stopped
			if m.opt.Journal != nil {
				if err := m.opt.Journal.CycleEnd(jb.id, rec, stopped); err != nil {
					return err
				}
				gaugeJournalBytes.Set(m.opt.Journal.Size())
			}
			return nil
		},
	}

	out, err := cycle.Run(jb.ctx, cds, cfg, st, h)
	switch {
	case err != nil:
		if errors.Is(err, context.Canceled) {
			m.finish(jb, StateCancelled, "cancelled while running", nil)
		} else {
			m.finish(jb, StateFailed, err.Error(), nil)
		}
	case out.Parked:
		m.park(jb)
	default:
		m.finish(jb, StateDone, "", summarize(out.Results, ds.TrueOrientations()))
	}
}

// artifactDir resolves where cycle map artifacts land.
func (m *Manager) artifactDir() string {
	if m.opt.ArtifactDir != "" {
		return m.opt.ArtifactDir
	}
	if m.opt.Journal != nil {
		return filepath.Dir(m.opt.Journal.Path())
	}
	return "."
}

// loadMapArtifact reloads a journaled map artifact and verifies its
// content digest against the journaled one.
func loadMapArtifact(path, digest string) (*volume.Grid, error) {
	g, err := volume.ReadGridFile(path)
	if err != nil {
		return nil, fmt.Errorf("reloading map artifact: %w", err)
	}
	if got := reconstruct.MapDigest(g); got != digest {
		return nil, fmt.Errorf("map artifact %s digest %.12s does not match journaled %.12s", path, got, digest)
	}
	return g, nil
}

// milliA converts Å to integer milli-Å for int64 event fields; non-
// finite resolutions (no FSC crossing on an empty curve) encode as -1.
func milliA(resA float64) int64 {
	if resA != resA || resA > 1e15 || resA < -1e15 {
		return -1
	}
	return int64(resA * 1000)
}

// stopCode maps a cycle stop reason to its event-field code.
func stopCode(stopped string) int64 {
	switch stopped {
	case cycle.StopPlateau:
		return stopCodePlateau
	case cycle.StopMaxCycles:
		return stopCodeMaxCycles
	default:
		return stopCodeNone
	}
}
