package serve

import (
	"bytes"
	"net/http"
	"strconv"

	"repro/internal/obs"
)

// Live event streaming, all stdlib:
//
//	GET /events           — firehose of every event the daemon emits
//	GET /jobs/{id}/events — one job's events; the stream ends on its
//	                        own once the job is terminal and drained
//
// The default wire format is Server-Sent Events: one frame per event,
// `id:` carrying the record's sequence number, `event:` its kind and
// `data:` the same deterministic JSON object WriteJSONL exports. A
// client that reconnects with the standard Last-Event-ID header (or
// ?since=<seq>) resumes exactly after the last frame it saw; if the
// ring buffer overwrote records in the gap, the stream opens with an
// `event: gap` frame carrying the dropped count so the client knows
// the tail is incomplete rather than silently missing.
//
// ?poll=1 switches to a long-poll JSON fallback for clients without
// SSE: the request blocks until an event past the cursor exists (or
// the client goes away) and returns {"events":[...],"dropped":N,
// "next":M} where M is the cursor for the follow-up request. Neither
// mode reads the wall clock — blocking is on the event log's notify
// channel and the request context only, which keeps the handlers
// inside the serve package's simulated-clock contract.

// eventCursor extracts the resume cursor: Last-Event-ID (the SSE
// reconnect convention) wins over an explicit ?since= parameter.
func eventCursor(r *http.Request) uint64 {
	if id := r.Header.Get("Last-Event-ID"); id != "" {
		if n, err := strconv.ParseUint(id, 10, 64); err == nil {
			return n
		}
	}
	if s := r.URL.Query().Get("since"); s != "" {
		if n, err := strconv.ParseUint(s, 10, 64); err == nil {
			return n
		}
	}
	return 0
}

// filterJob keeps the records for one job, in place. The cursor must
// still advance over what was filtered out, so callers track the last
// sequence number of the unfiltered batch.
func filterJob(evs []obs.EventRecord, jobID string) []obs.EventRecord {
	if jobID == "" {
		return evs
	}
	kept := evs[:0]
	for _, ev := range evs {
		if ev.Job == jobID {
			kept = append(kept, ev)
		}
	}
	return kept
}

// handleEvents serves both event routes; jobID is empty for the
// firehose.
func handleEvents(m *Manager, w http.ResponseWriter, r *http.Request, jobID string) {
	l := obs.ActiveEvents()
	if l == nil {
		writeJSON(m, w, http.StatusNotFound, errorBody{Error: "serve: no active event log; start the daemon with events enabled"})
		return
	}
	if jobID != "" {
		if _, err := m.Get(jobID); err != nil {
			writeJSON(m, w, http.StatusNotFound, errorBody{Error: err.Error()})
			return
		}
	}
	if r.URL.Query().Get("poll") == "1" {
		handleEventsPoll(m, l, w, r, jobID)
		return
	}
	handleEventsSSE(m, l, w, r, jobID)
}

// pollBody is the long-poll JSON envelope.
type pollBody struct {
	Events  []obs.EventRecord `json:"events"`
	Dropped uint64            `json:"dropped"`
	Next    uint64            `json:"next"`
}

func handleEventsPoll(m *Manager, l *obs.EventLog, w http.ResponseWriter, r *http.Request, jobID string) {
	after := eventCursor(r)
	for {
		evs, dropped := l.Since(after)
		if len(evs) > 0 || dropped > 0 {
			next := after + dropped
			if len(evs) > 0 {
				next = evs[len(evs)-1].Seq
			}
			evs = filterJob(evs, jobID)
			w.Header().Set("Cache-Control", "no-store")
			writeJSON(m, w, http.StatusOK, pollBody{Events: evs, Dropped: dropped, Next: next})
			return
		}
		select {
		case <-l.Wait(after):
		case <-r.Context().Done():
			w.Header().Set("Cache-Control", "no-store")
			writeJSON(m, w, http.StatusOK, pollBody{Events: []obs.EventRecord{}, Next: after})
			return
		}
	}
}

func handleEventsSSE(m *Manager, l *obs.EventLog, w http.ResponseWriter, r *http.Request, jobID string) {
	fl, ok := w.(http.Flusher)
	if !ok {
		writeJSON(m, w, http.StatusInternalServerError, errorBody{Error: "serve: streaming unsupported by connection"})
		return
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-store")
	h.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	after := eventCursor(r)
	var buf bytes.Buffer
	for {
		evs, dropped := l.Since(after)
		if len(evs) > 0 {
			after = evs[len(evs)-1].Seq
		} else {
			after += dropped
		}
		buf.Reset()
		if dropped > 0 {
			// The ring overwrote records between the cursor and the
			// oldest retained event; tell the client instead of
			// silently skipping.
			buf.WriteString("event: gap\ndata: {\"dropped\":")
			buf.WriteString(strconv.FormatUint(dropped, 10))
			buf.WriteString("}\n\n")
		}
		for _, ev := range filterJob(evs, jobID) {
			buf.WriteString("id: ")
			buf.WriteString(strconv.FormatUint(ev.Seq, 10))
			buf.WriteString("\nevent: ")
			buf.WriteString(ev.Kind)
			buf.WriteString("\ndata: ")
			buf.Write(ev.AppendJSON(nil))
			buf.WriteString("\n\n")
		}
		if buf.Len() > 0 {
			if _, err := w.Write(buf.Bytes()); err != nil {
				return
			}
			fl.Flush()
		}
		if jobID != "" {
			// The terminal event is emitted under the same lock that
			// flips the job's state, so once Get reports terminal a
			// final drain is guaranteed to include it.
			if st, err := m.Get(jobID); err == nil && st.State.Terminal() {
				if evs, _ := l.Since(after); len(filterJob(evs, jobID)) == 0 {
					return
				}
				continue
			}
		}
		select {
		case <-l.Wait(after):
		case <-r.Context().Done():
			return
		}
	}
}
