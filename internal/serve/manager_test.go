package serve

import (
	"errors"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/core"
)

// tinySpec is the smallest meaningful job: the asymmetric dataset
// shrunk to a 16³ box with a handful of views and two schedule levels
// — enough to cross a checkpoint boundary.
func tinySpec() JobSpec {
	return JobSpec{Dataset: "asymmetric", Scale: 2.5, Views: 4, Levels: 2, InitSeed: 3}
}

// tinyStream keeps the per-job pipeline small so tests don't oversubscribe.
func tinyStream() core.StreamOptions {
	return core.StreamOptions{FFTWorkers: 2, RefineWorkers: 2, Depth: 2}
}

// waitState polls until the job leaves the running/pending states or
// the deadline passes, returning the final status.
func waitState(t *testing.T, m *Manager, id string, want State) JobStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		st, err := m.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State == want {
			return st
		}
		if st.State.Terminal() {
			t.Fatalf("job %s reached %s (%s), want %s", id, st.State, st.Error, want)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s, want %s", id, st.State, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestManagerRunsJob: a submitted job runs the full schedule, reports
// progress, and its summary shows refinement actually tightened the
// orientations versus the initial perturbation.
func TestManagerRunsJob(t *testing.T) {
	m, err := NewManager(Options{Stream: tinyStream()})
	if err != nil {
		t.Fatal(err)
	}
	m.Start()
	defer m.Drain()
	st, err := m.Submit(tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StatePending || st.ID == "" {
		t.Fatalf("unexpected initial status %+v", st)
	}
	if st.Views != 4 || st.LevelsTotal != 2 || st.Spec.Pad != 2 || st.Spec.InitError != 2 {
		t.Fatalf("defaults not applied: %+v", st)
	}
	fin := waitState(t, m, st.ID, StateDone)
	if fin.LevelsDone != 2 {
		t.Fatalf("levels done %d, want 2", fin.LevelsDone)
	}
	if fin.Summary == nil {
		t.Fatal("done job has no summary")
	}
	// The 16³ smoke box is too small for a refinement-quality oracle
	// (that lives in the native-scale workload tests); just require the
	// summary to be populated and sane.
	if fin.Summary.MeanDistance <= 0 || fin.Summary.MaxAngularError < fin.Summary.MeanAngularError {
		t.Fatalf("implausible summary: %+v", fin.Summary)
	}
	res, err := m.Results(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 4 || len(res[0].PerLevel) != 2 {
		t.Fatalf("results shape: %d views, %d levels", len(res), len(res[0].PerLevel))
	}
}

// TestManagerKillResume is the tentpole property: drain the manager at
// the level-0 checkpoint (the in-process analogue of killing the
// daemon), bring up a fresh manager on the same journal, and the
// finished orientations must be bit-identical to a never-interrupted
// run of the same spec.
func TestManagerKillResume(t *testing.T) {
	// Uninterrupted reference run, no journal.
	ref, err := NewManager(Options{Stream: tinyStream()})
	if err != nil {
		t.Fatal(err)
	}
	ref.Start()
	refSt, err := ref.Submit(tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	want := waitState(t, ref, refSt.ID, StateDone)
	wantRes, err := ref.Results(refSt.ID)
	if err != nil {
		t.Fatal(err)
	}
	ref.Drain()

	// Interrupted run: stop at the first checkpoint.
	path := filepath.Join(t.TempDir(), "jobs.jsonl")
	j1, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	var m1 *Manager
	m1, err = NewManager(Options{
		Stream:  tinyStream(),
		Journal: j1,
		// RequestDrain (not Drain) — OnLevel runs on the executor
		// goroutine Drain would wait for.
		OnLevel: func(id string, level int) {
			if level == 0 {
				m1.RequestDrain()
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	m1.Start()
	st, err := m1.Submit(tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	m1.wg.Wait() // executors exit at the drain checkpoint
	parked, err := m1.Get(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if parked.State != StatePending || parked.LevelsDone != 1 {
		t.Fatalf("parked status %+v, want pending with 1 level done", parked)
	}
	if err := j1.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart on the same journal: the job resumes and finishes.
	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := j2.Close(); err != nil {
			t.Error(err)
		}
	}()
	m2, err := NewManager(Options{Stream: tinyStream(), Journal: j2})
	if err != nil {
		t.Fatal(err)
	}
	m2.Start()
	defer m2.Drain()
	resumed := waitState(t, m2, st.ID, StateDone)
	if !resumed.Resumed {
		t.Fatal("resumed job not flagged as resumed")
	}
	gotRes, err := m2.Results(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotRes, wantRes) {
		for i := range wantRes {
			if !reflect.DeepEqual(gotRes[i], wantRes[i]) {
				t.Errorf("view %d: resumed %+v vs uninterrupted %+v", i, gotRes[i], wantRes[i])
			}
		}
		t.Fatal("kill-and-resume diverged from the uninterrupted run")
	}
	if !reflect.DeepEqual(resumed.Summary, want.Summary) {
		t.Fatalf("summary diverged: %+v vs %+v", resumed.Summary, want.Summary)
	}
}

// TestManagerQueueFull: with no executors running, the admission queue
// fills at QueueDepth and further submits fail with the retriable
// ErrQueueFull; cancelling does not readmit (the slot frees when an
// executor picks the job up).
func TestManagerQueueFull(t *testing.T) {
	m, err := NewManager(Options{QueueDepth: 2, Stream: tinyStream()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Submit(tinySpec()); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Submit(tinySpec()); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Submit(tinySpec()); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third submit: %v, want ErrQueueFull", err)
	}
}

// TestManagerCancel: cancelling a pending job is immediate and final;
// a second cancel reports the conflict.
func TestManagerCancel(t *testing.T) {
	m, err := NewManager(Options{Stream: tinyStream()})
	if err != nil {
		t.Fatal(err)
	}
	st, err := m.Submit(tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	got, err := m.Cancel(st.ID)
	if err != nil || got.State != StateCancelled {
		t.Fatalf("cancel: %+v, %v", got, err)
	}
	if _, err := m.Cancel(st.ID); !errors.Is(err, ErrTerminal) {
		t.Fatalf("second cancel: %v, want ErrTerminal", err)
	}
	if _, err := m.Cancel("job-999999"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("cancel of unknown job: %v, want ErrNotFound", err)
	}
	// A cancelled-while-queued job must be skipped, not run.
	m.Start()
	defer m.Drain()
	time.Sleep(50 * time.Millisecond)
	if got, err := m.Get(st.ID); err != nil || got.State != StateCancelled || got.LevelsDone != 0 {
		t.Fatalf("cancelled job advanced: %+v, %v", got, err)
	}
}

// TestManagerDrainRejects: once draining, submits fail fast.
func TestManagerDrainRejects(t *testing.T) {
	m, err := NewManager(Options{Stream: tinyStream()})
	if err != nil {
		t.Fatal(err)
	}
	m.Start()
	m.Drain()
	if _, err := m.Submit(tinySpec()); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit while draining: %v, want ErrDraining", err)
	}
}

// TestManagerSpecValidation: malformed specs are rejected at submit.
func TestManagerSpecValidation(t *testing.T) {
	m, err := NewManager(Options{Stream: tinyStream()})
	if err != nil {
		t.Fatal(err)
	}
	for _, spec := range []JobSpec{
		{Dataset: "nope"},
		{Dataset: "asymmetric", Levels: 9},
		{Dataset: "asymmetric", Levels: -1},
		{Dataset: "asymmetric", Pad: 7},
		{Dataset: "asymmetric", Scale: -2},
		{Dataset: "asymmetric", Views: -3},
		{Dataset: "asymmetric", InitError: -1},
		{Dataset: "asymmetric", Search: "monte-carlo"},
	} {
		if _, err := m.Submit(spec); err == nil {
			t.Errorf("spec %+v accepted", spec)
		}
	}
}

// TestJobSpecSearchNormalize: the search mode defaults to adaptive,
// both explicit modes pass through, and the seed survives untouched —
// the journaled spec must replay the same search path on resume.
func TestJobSpecSearchNormalize(t *testing.T) {
	spec := tinySpec()
	spec.SearchSeed = 42
	norm, _, err := spec.normalize()
	if err != nil {
		t.Fatal(err)
	}
	if norm.Search != string(core.SearchAdaptive) {
		t.Errorf("empty search normalized to %q, want %q", norm.Search, core.SearchAdaptive)
	}
	if norm.SearchSeed != 42 {
		t.Errorf("search seed mutated to %d", norm.SearchSeed)
	}
	for _, mode := range []string{string(core.SearchAdaptive), string(core.SearchExhaustive)} {
		spec.Search = mode
		norm, _, err := spec.normalize()
		if err != nil {
			t.Fatalf("mode %q rejected: %v", mode, err)
		}
		if norm.Search != mode {
			t.Errorf("mode %q normalized to %q", mode, norm.Search)
		}
	}
}

// TestManagerDeterminism: two managers given the same spec produce
// identical results — there is no hidden wall-clock or global-rand
// state in the service path.
func TestManagerDeterminism(t *testing.T) {
	run := func() []core.Result {
		m, err := NewManager(Options{Stream: tinyStream()})
		if err != nil {
			t.Fatal(err)
		}
		m.Start()
		defer m.Drain()
		st, err := m.Submit(tinySpec())
		if err != nil {
			t.Fatal(err)
		}
		waitState(t, m, st.ID, StateDone)
		res, err := m.Results(st.ID)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	if a, b := run(), run(); !reflect.DeepEqual(a, b) {
		t.Fatal("two identical jobs diverged")
	}
}
