package serve

import "repro/internal/obs"

// Service metrics, registered in the global obs registry so the PR 4
// exporters (GET /metrics on this very service, -metrics on the bench
// commands) pick them up with no extra wiring. All are inert until
// obs.SetEnabled(true) — cmd/refined enables instrumentation at boot.
var (
	jobsSubmitted = obs.NewCounter("serve.jobs.submitted")
	jobsRejected  = obs.NewCounter("serve.jobs.rejected")
	jobsResumed   = obs.NewCounter("serve.jobs.resumed")
	jobsDone      = obs.NewCounter("serve.jobs.done")
	jobsFailed    = obs.NewCounter("serve.jobs.failed")
	jobsCancelled = obs.NewCounter("serve.jobs.cancelled")
	levelsDone    = obs.NewCounter("serve.levels.refined")
	// queueDepth observes the admission-queue occupancy at each
	// successful submit — its histogram shows how close the service
	// ran to backpressure.
	queueDepth = obs.NewHistogram("serve.queue.depth", 8)

	// The SLO gauges: instantaneous occupancy of the admission queue,
	// currently executing jobs, and the checkpoint journal's on-disk
	// size. Gauges (not counters) because they move both ways; repstat
	// renders them directly and the prom exposition exports them as
	// `gauge` families.
	gaugeQueueDepth   = obs.NewGauge("serve.queue.depth.now")
	gaugeRunningJobs  = obs.NewGauge("serve.jobs.running.now")
	gaugeJournalBytes = obs.NewGauge("serve.journal.bytes")

	// Cycle-job gauges: the cycle index currently refining and the
	// last completed cycle's FSC 0.5 crossing in milli-Å (gauges carry
	// int64, so 8.53 Å exports as 8530).
	gaugeCycleNow   = obs.NewGauge("serve.cycle.now")
	gaugeCycleRes   = obs.NewGauge("serve.cycle.fsc05_milli_a")
	cyclesCompleted = obs.NewCounter("serve.cycles.completed")

	// The SLO latency histograms, in ticks of the manager's injectable
	// logical clock (wall time never enters the serve package):
	// admission-to-start is the queueing delay between Submit and an
	// executor picking the job up; level latency is one schedule
	// level's refinement time. repstat derives p50/p99 from the
	// exported buckets with obs.QuantileFromBuckets.
	admitToStartTicks = obs.NewHistogram("serve.latency.admit_to_start_ticks", 20)
	levelTicks        = obs.NewHistogram("serve.latency.level_ticks", 20)
)

// Event kinds emitted at the job lifecycle edges (obs.Emit is a no-op
// unless cmd/refined — or a test — installed an event log with
// obs.StartEvents). Terminal edges reuse the State strings as kinds so
// emission never builds a string on the hot path.
const (
	evAdmit      = "admit"
	evDequeue    = "dequeue"
	evLevelStart = "level_start"
	evLevelEnd   = "level_end"
	evCheckpoint = "checkpoint"
	evPark       = "park"
	evResume     = "resume"
	// Cycle-job outer-loop edges: a cycle's refinement pass starting,
	// its odd/even FSC summary, and the cycle completing.
	evCycleStart = "cycle_start"
	evFSC        = "fsc"
	evCycleEnd   = "cycle_end"
)

// Stop-reason codes carried by cycle_end events (int64 event fields
// cannot carry the reason string).
const (
	stopCodeNone      = 0
	stopCodePlateau   = 1
	stopCodeMaxCycles = 2
)

// noLevel marks events that are not scoped to a schedule level.
const noLevel = -1
