package serve

import "repro/internal/obs"

// Service metrics, registered in the global obs registry so the PR 4
// exporters (GET /metrics on this very service, -metrics on the bench
// commands) pick them up with no extra wiring. All are inert until
// obs.SetEnabled(true) — cmd/refined enables instrumentation at boot.
var (
	jobsSubmitted = obs.NewCounter("serve.jobs.submitted")
	jobsRejected  = obs.NewCounter("serve.jobs.rejected")
	jobsResumed   = obs.NewCounter("serve.jobs.resumed")
	jobsDone      = obs.NewCounter("serve.jobs.done")
	jobsFailed    = obs.NewCounter("serve.jobs.failed")
	jobsCancelled = obs.NewCounter("serve.jobs.cancelled")
	levelsDone    = obs.NewCounter("serve.levels.refined")
	// queueDepth observes the admission-queue occupancy at each
	// successful submit — its histogram shows how close the service
	// ran to backpressure.
	queueDepth = obs.NewHistogram("serve.queue.depth", 8)
)
