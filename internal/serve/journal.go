package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/cycle"
)

// The checkpoint journal is an append-only JSONL file: one record per
// line, written and fsynced before the manager acknowledges the event
// it describes. Six kinds exist:
//
//	submit      — a job was accepted (id + normalized spec)
//	level       — one schedule level finished; carries the full
//	              per-view results including every centre-shift
//	              increment, i.e. exactly the priors
//	              RefineStreamLevels resumes from. Cycle jobs journal
//	              the GLOBAL level index (cycle·Levels + level), so
//	              levels stay contiguous from 0 across cycles.
//	cycle_start — a cycle job began cycle c's refinement pass
//	cycle_map   — cycle c's full map was reconstructed and serialized;
//	              carries the artifact path and the map's content
//	              digest (reconstruct.MapDigest), which a resume
//	              verifies before trusting the artifact
//	cycle_end   — cycle c's odd/even FSC summary and, if the loop
//	              ended here, why
//	terminal    — the job reached done/failed/cancelled
//
// Replay tolerates a torn final line (a crash mid-append) by ignoring
// it; a malformed line anywhere earlier is corruption and an error.
// Because core.Result and fsc/cycle records round-trip through
// encoding/json without losing a bit (float64 fields only), a journal
// resume reproduces the uninterrupted run exactly.

// journalRecord is one line of the journal.
type journalRecord struct {
	Kind string `json:"kind"` // "submit" | "level" | "cycle_start" | "cycle_map" | "cycle_end" | "terminal"
	ID   string `json:"id"`
	// Submit fields.
	Spec *JobSpec `json:"spec,omitempty"`
	// Level fields: the zero-based (global) schedule level just
	// completed and the per-view results after it.
	Level   int           `json:"level,omitempty"`
	Results []core.Result `json:"results,omitempty"`
	// Cycle fields. Cycle is the zero-based cycle index of the
	// cycle_start/cycle_map/cycle_end kinds.
	Cycle     int             `json:"cycle,omitempty"`
	MapPath   string          `json:"map_path,omitempty"`
	MapDigest string          `json:"map_digest,omitempty"`
	FSC       *cycle.CycleFSC `json:"fsc,omitempty"`
	Stopped   string          `json:"stopped,omitempty"`
	// Terminal fields.
	State   State    `json:"state,omitempty"`
	Error   string   `json:"error,omitempty"`
	Summary *Summary `json:"summary,omitempty"`
}

// JobReplay is the state of one job reconstructed from the journal.
type JobReplay struct {
	ID   string
	Spec JobSpec
	// LevelsDone is the number of checkpointed levels (global across
	// cycles for cycle jobs); Results holds the per-view results after
	// the last of them (nil when none).
	LevelsDone int
	Results    []core.Result
	// Cycle-job fields: how many cycles have started (cycle_start) and
	// completed (cycle_end), the completed cycles' FSC records, the
	// last journaled map artifact (LastMapCycle is -1 when none), and
	// the journaled stop reason.
	CyclesStarted int
	CyclesDone    int
	History       []cycle.CycleFSC
	LastMapCycle  int
	LastMapPath   string
	LastMapDigest string
	Stopped       string
	// State is the terminal state if one was journaled, else
	// StatePending — the job should be re-queued.
	State   State
	Error   string
	Summary *Summary
}

// Journal is the append side of the checkpoint log. Methods are not
// goroutine-safe; the Manager serializes access.
type Journal struct {
	f      *os.File
	path   string
	bytes  int64
	replay []JobReplay
}

// OpenJournal opens (creating if absent) the journal at path, replays
// its records, and positions the file for appending.
func OpenJournal(path string) (*Journal, error) {
	data, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, fmt.Errorf("serve: reading journal: %w", err)
	}
	replay, err := replayJournal(data)
	if err != nil {
		return nil, fmt.Errorf("serve: journal %s: %w", path, err)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("serve: opening journal: %w", err)
	}
	return &Journal{f: f, path: path, bytes: int64(len(data)), replay: replay}, nil
}

// Replay returns the per-job state reconstructed at open, in first-
// submission order.
func (j *Journal) Replay() []JobReplay { return j.replay }

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.path }

// Size returns the journal's on-disk size in bytes: what was replayed
// at open plus everything appended since. The manager mirrors it into
// the serve.journal.bytes gauge after each checkpoint.
func (j *Journal) Size() int64 { return j.bytes }

// Close closes the underlying file.
func (j *Journal) Close() error {
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}

// append writes one record as a JSON line and syncs it to disk before
// returning, so an acknowledged event survives a kill.
func (j *Journal) append(rec journalRecord) error {
	data, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("serve: encoding journal record: %w", err)
	}
	data = append(data, '\n')
	if _, err := j.f.Write(data); err != nil {
		return fmt.Errorf("serve: appending journal record: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("serve: syncing journal: %w", err)
	}
	j.bytes += int64(len(data))
	return nil
}

// Submit journals the acceptance of a job.
func (j *Journal) Submit(id string, spec JobSpec) error {
	return j.append(journalRecord{Kind: "submit", ID: id, Spec: &spec})
}

// Level journals the completion of schedule level `level` (zero-based,
// global across cycles) with the per-view results after it.
func (j *Journal) Level(id string, level int, results []core.Result) error {
	return j.append(journalRecord{Kind: "level", ID: id, Level: level, Results: results})
}

// CycleStart journals the beginning of cycle c's refinement pass.
func (j *Journal) CycleStart(id string, c int) error {
	return j.append(journalRecord{Kind: "cycle_start", ID: id, Cycle: c})
}

// CycleMap journals cycle c's reconstructed-map artifact: where it was
// serialized and its content digest.
func (j *Journal) CycleMap(id string, c int, path, digest string) error {
	return j.append(journalRecord{Kind: "cycle_map", ID: id, Cycle: c, MapPath: path, MapDigest: digest})
}

// CycleEnd journals cycle c's FSC summary and, when the outer loop
// ended at this cycle, the stop reason.
func (j *Journal) CycleEnd(id string, rec cycle.CycleFSC, stopped string) error {
	return j.append(journalRecord{Kind: "cycle_end", ID: id, Cycle: rec.Cycle, FSC: &rec, Stopped: stopped})
}

// Terminal journals a job reaching a final state.
func (j *Journal) Terminal(id string, state State, errMsg string, sum *Summary) error {
	return j.append(journalRecord{Kind: "terminal", ID: id, State: state, Error: errMsg, Summary: sum})
}

// replayJournal folds the journal bytes into per-job state. The final
// line may be torn (no trailing newline, or unparseable without one) —
// the record it would have described was never acknowledged, so it is
// dropped. A malformed interior line is an error.
func replayJournal(data []byte) ([]JobReplay, error) {
	var (
		order []string
		jobs  = map[string]*JobReplay{}
	)
	lines := bytes.Split(data, []byte("\n"))
	// A well-formed journal ends with '\n', so the last split element
	// is empty; anything else there is a torn tail.
	last := len(lines) - 1
	for i, line := range lines {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var rec journalRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			if i == last {
				break // torn tail from a crash mid-append
			}
			return nil, fmt.Errorf("journal line %d: %w", i+1, err)
		}
		jb := jobs[rec.ID]
		switch rec.Kind {
		case "submit":
			if jb != nil {
				return nil, fmt.Errorf("journal line %d: duplicate submit for %s", i+1, rec.ID)
			}
			if rec.Spec == nil {
				return nil, fmt.Errorf("journal line %d: submit without spec", i+1)
			}
			jobs[rec.ID] = &JobReplay{ID: rec.ID, Spec: *rec.Spec, State: StatePending, LastMapCycle: -1}
			order = append(order, rec.ID)
		case "level":
			if jb == nil {
				return nil, fmt.Errorf("journal line %d: level for unknown job %s", i+1, rec.ID)
			}
			if rec.Level != jb.LevelsDone {
				return nil, fmt.Errorf("journal line %d: job %s level %d after %d levels", i+1, rec.ID, rec.Level, jb.LevelsDone)
			}
			jb.LevelsDone++
			jb.Results = rec.Results
		case "cycle_start":
			if jb == nil {
				return nil, fmt.Errorf("journal line %d: cycle_start for unknown job %s", i+1, rec.ID)
			}
			if rec.Cycle != jb.CyclesStarted {
				return nil, fmt.Errorf("journal line %d: job %s cycle_start %d after %d started cycles", i+1, rec.ID, rec.Cycle, jb.CyclesStarted)
			}
			jb.CyclesStarted++
		case "cycle_map":
			if jb == nil {
				return nil, fmt.Errorf("journal line %d: cycle_map for unknown job %s", i+1, rec.ID)
			}
			if rec.Cycle != jb.CyclesStarted-1 {
				return nil, fmt.Errorf("journal line %d: job %s cycle_map %d with %d started cycles", i+1, rec.ID, rec.Cycle, jb.CyclesStarted)
			}
			if rec.MapPath == "" || rec.MapDigest == "" {
				return nil, fmt.Errorf("journal line %d: job %s cycle_map %d missing path or digest", i+1, rec.ID, rec.Cycle)
			}
			jb.LastMapCycle = rec.Cycle
			jb.LastMapPath = rec.MapPath
			jb.LastMapDigest = rec.MapDigest
		case "cycle_end":
			if jb == nil {
				return nil, fmt.Errorf("journal line %d: cycle_end for unknown job %s", i+1, rec.ID)
			}
			if rec.Cycle != jb.CyclesDone {
				return nil, fmt.Errorf("journal line %d: job %s cycle_end %d after %d done cycles", i+1, rec.ID, rec.Cycle, jb.CyclesDone)
			}
			if rec.FSC == nil {
				return nil, fmt.Errorf("journal line %d: job %s cycle_end %d without fsc record", i+1, rec.ID, rec.Cycle)
			}
			jb.CyclesDone++
			jb.History = append(jb.History, *rec.FSC)
			jb.Stopped = rec.Stopped
		case "terminal":
			if jb == nil {
				return nil, fmt.Errorf("journal line %d: terminal for unknown job %s", i+1, rec.ID)
			}
			if !rec.State.Terminal() {
				return nil, fmt.Errorf("journal line %d: non-terminal state %q", i+1, rec.State)
			}
			jb.State = rec.State
			jb.Error = rec.Error
			jb.Summary = rec.Summary
		default:
			return nil, fmt.Errorf("journal line %d: unknown record kind %q", i+1, rec.Kind)
		}
	}
	out := make([]JobReplay, 0, len(order))
	for _, id := range order {
		out = append(out, *jobs[id])
	}
	return out, nil
}
