package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/core"
)

// The checkpoint journal is an append-only JSONL file: one record per
// line, written and fsynced before the manager acknowledges the event
// it describes. Three kinds exist:
//
//	submit   — a job was accepted (id + normalized spec)
//	level    — one schedule level finished; carries the full per-view
//	           results including every centre-shift increment, i.e.
//	           exactly the priors RefineStreamLevels resumes from
//	terminal — the job reached done/failed/cancelled
//
// Replay tolerates a torn final line (a crash mid-append) by ignoring
// it; a malformed line anywhere earlier is corruption and an error.
// Because core.Result round-trips through encoding/json without
// losing a bit (float64 fields only), a journal resume reproduces the
// uninterrupted run exactly.

// journalRecord is one line of the journal.
type journalRecord struct {
	Kind string `json:"kind"` // "submit" | "level" | "terminal"
	ID   string `json:"id"`
	// Submit fields.
	Spec *JobSpec `json:"spec,omitempty"`
	// Level fields: the zero-based schedule level just completed and
	// the per-view results after it.
	Level   int           `json:"level,omitempty"`
	Results []core.Result `json:"results,omitempty"`
	// Terminal fields.
	State   State    `json:"state,omitempty"`
	Error   string   `json:"error,omitempty"`
	Summary *Summary `json:"summary,omitempty"`
}

// JobReplay is the state of one job reconstructed from the journal.
type JobReplay struct {
	ID   string
	Spec JobSpec
	// LevelsDone is the number of checkpointed levels; Results holds
	// the per-view results after the last of them (nil when none).
	LevelsDone int
	Results    []core.Result
	// State is the terminal state if one was journaled, else
	// StatePending — the job should be re-queued.
	State   State
	Error   string
	Summary *Summary
}

// Journal is the append side of the checkpoint log. Methods are not
// goroutine-safe; the Manager serializes access.
type Journal struct {
	f      *os.File
	path   string
	bytes  int64
	replay []JobReplay
}

// OpenJournal opens (creating if absent) the journal at path, replays
// its records, and positions the file for appending.
func OpenJournal(path string) (*Journal, error) {
	data, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, fmt.Errorf("serve: reading journal: %w", err)
	}
	replay, err := replayJournal(data)
	if err != nil {
		return nil, fmt.Errorf("serve: journal %s: %w", path, err)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("serve: opening journal: %w", err)
	}
	return &Journal{f: f, path: path, bytes: int64(len(data)), replay: replay}, nil
}

// Replay returns the per-job state reconstructed at open, in first-
// submission order.
func (j *Journal) Replay() []JobReplay { return j.replay }

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.path }

// Size returns the journal's on-disk size in bytes: what was replayed
// at open plus everything appended since. The manager mirrors it into
// the serve.journal.bytes gauge after each checkpoint.
func (j *Journal) Size() int64 { return j.bytes }

// Close closes the underlying file.
func (j *Journal) Close() error {
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}

// append writes one record as a JSON line and syncs it to disk before
// returning, so an acknowledged event survives a kill.
func (j *Journal) append(rec journalRecord) error {
	data, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("serve: encoding journal record: %w", err)
	}
	data = append(data, '\n')
	if _, err := j.f.Write(data); err != nil {
		return fmt.Errorf("serve: appending journal record: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("serve: syncing journal: %w", err)
	}
	j.bytes += int64(len(data))
	return nil
}

// Submit journals the acceptance of a job.
func (j *Journal) Submit(id string, spec JobSpec) error {
	return j.append(journalRecord{Kind: "submit", ID: id, Spec: &spec})
}

// Level journals the completion of schedule level `level` (zero-based)
// with the per-view results after it.
func (j *Journal) Level(id string, level int, results []core.Result) error {
	return j.append(journalRecord{Kind: "level", ID: id, Level: level, Results: results})
}

// Terminal journals a job reaching a final state.
func (j *Journal) Terminal(id string, state State, errMsg string, sum *Summary) error {
	return j.append(journalRecord{Kind: "terminal", ID: id, State: state, Error: errMsg, Summary: sum})
}

// replayJournal folds the journal bytes into per-job state. The final
// line may be torn (no trailing newline, or unparseable without one) —
// the record it would have described was never acknowledged, so it is
// dropped. A malformed interior line is an error.
func replayJournal(data []byte) ([]JobReplay, error) {
	var (
		order []string
		jobs  = map[string]*JobReplay{}
	)
	lines := bytes.Split(data, []byte("\n"))
	// A well-formed journal ends with '\n', so the last split element
	// is empty; anything else there is a torn tail.
	last := len(lines) - 1
	for i, line := range lines {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var rec journalRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			if i == last {
				break // torn tail from a crash mid-append
			}
			return nil, fmt.Errorf("journal line %d: %w", i+1, err)
		}
		jb := jobs[rec.ID]
		switch rec.Kind {
		case "submit":
			if jb != nil {
				return nil, fmt.Errorf("journal line %d: duplicate submit for %s", i+1, rec.ID)
			}
			if rec.Spec == nil {
				return nil, fmt.Errorf("journal line %d: submit without spec", i+1)
			}
			jobs[rec.ID] = &JobReplay{ID: rec.ID, Spec: *rec.Spec, State: StatePending}
			order = append(order, rec.ID)
		case "level":
			if jb == nil {
				return nil, fmt.Errorf("journal line %d: level for unknown job %s", i+1, rec.ID)
			}
			if rec.Level != jb.LevelsDone {
				return nil, fmt.Errorf("journal line %d: job %s level %d after %d levels", i+1, rec.ID, rec.Level, jb.LevelsDone)
			}
			jb.LevelsDone++
			jb.Results = rec.Results
		case "terminal":
			if jb == nil {
				return nil, fmt.Errorf("journal line %d: terminal for unknown job %s", i+1, rec.ID)
			}
			if !rec.State.Terminal() {
				return nil, fmt.Errorf("journal line %d: non-terminal state %q", i+1, rec.State)
			}
			jb.State = rec.State
			jb.Error = rec.Error
			jb.Summary = rec.Summary
		default:
			return nil, fmt.Errorf("journal line %d: unknown record kind %q", i+1, rec.Kind)
		}
	}
	out := make([]JobReplay, 0, len(order))
	for _, id := range order {
		out = append(out, *jobs[id])
	}
	return out, nil
}
