// Package serve is the refinement job service: a queued, checkpointed,
// backpressured front end that runs orientation refinements (the full
// multi-resolution schedule of internal/core) as asynchronous jobs
// behind a stdlib net/http API.
//
// The package is deliberately wall-clock-free — it is listed in the
// replint simclock scope — so job scheduling is reproducible: all
// timestamps come from an injectable logical clock (Options.Clock),
// and all randomness from the seeds carried in the job spec. Anything
// that genuinely needs real time (HTTP timeouts, signal handling,
// artificial level delays for smoke tests) lives in cmd/refined.
//
// A job walks the states
//
//	pending → running → done | failed | cancelled
//
// with one checkpoint after every completed schedule level: the
// journal records each level's refined orientations together with the
// centre-shift increments applied to every view's band, which is
// exactly the state RefineStreamLevels needs to resume the schedule
// bit-identically after a crash (see internal/core).
package serve

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/cycle"
	"repro/internal/geom"
	"repro/internal/workload"
)

// State is a job's lifecycle state.
type State string

// The job lifecycle: pending (queued or awaiting resume), running,
// and the three terminal states.
const (
	StatePending   State = "pending"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Job types. A refine job runs one pass over the level schedule
// against the ground-truth reference (the original service). A cycle
// job closes the paper's outer loop: it alternates a full refinement
// pass, a reconstruction, and an odd/even FSC, feeding each cycle's
// map back as the next cycle's reference, until the 0.5 crossing
// plateaus or MaxCycles is reached (see internal/cycle).
const (
	TypeRefine = "refine"
	TypeCycle  = "cycle"
)

// JobSpec is the client-supplied description of one refinement job. It
// reuses the workload.DatasetSpec vocabulary: a named dataset, an
// optional shrink factor, and the perturbation of the initial
// orientations. Everything else about the computation (phantom, SNR,
// jitter, generator seed) is pinned by the named spec, so a JobSpec is
// a complete, reproducible statement of the work.
type JobSpec struct {
	// Type selects the job kind: TypeRefine (the default) or
	// TypeCycle.
	Type string `json:"type,omitempty"`
	// Dataset names the workload spec ("sindbis", "reo", "asymmetric";
	// the long "-like" forms are accepted too).
	Dataset string `json:"dataset"`
	// Scale shrinks the dataset by this factor (box size and view
	// count, see workload.DatasetSpec.Scaled). ≤1 or omitted keeps the
	// spec's native size.
	Scale float64 `json:"scale,omitempty"`
	// Views caps the number of views refined (0 = the spec's count).
	Views int `json:"views,omitempty"`
	// Levels is how many levels of the paper's schedule to run
	// (1–4; 0 selects 2, enough to exercise a checkpoint).
	Levels int `json:"levels,omitempty"`
	// Pad is the reference-map Fourier padding factor (0 selects 2).
	Pad int `json:"pad,omitempty"`
	// InitError is the per-axis perturbation (degrees) of the initial
	// orientations handed to refinement; 0 selects the dataset spec's
	// own InitError.
	InitError float64 `json:"init_error,omitempty"`
	// InitSeed seeds the perturbation.
	InitSeed int64 `json:"init_seed,omitempty"`
	// Search selects the orientation-search mode of internal/core:
	// "adaptive" (the default) or "exhaustive". Journaled with the
	// spec, so a resumed job replays the same search path.
	Search string `json:"search,omitempty"`
	// SearchSeed seeds the adaptive search's deterministic probe
	// streams (ignored under "exhaustive").
	SearchSeed int64 `json:"search_seed,omitempty"`
	// MaxCycles caps a cycle job's refine→reconstruct→FSC iterations
	// (0 selects 4; refine jobs must leave it 0).
	MaxCycles int `json:"max_cycles,omitempty"`
	// PlateauEps is the minimum FSC 0.5-crossing improvement (Å) that
	// counts as progress for a cycle job (0 selects 0.01).
	PlateauEps float64 `json:"plateau_eps,omitempty"`
	// PlateauWindow is how many consecutive non-improving cycles stop
	// a cycle job (0 selects 2; -1 disables plateau stopping).
	PlateauWindow int `json:"plateau_window,omitempty"`
}

// levelsTotal is the job's total refinement-level count: the schedule
// length, times the cycle cap for cycle jobs.
func (s JobSpec) levelsTotal() int {
	if s.Type == TypeCycle {
		return s.Levels * s.MaxCycles
	}
	return s.Levels
}

// normalize validates the spec and fills defaults, returning the
// resolved workload spec alongside the normalized job spec.
func (s JobSpec) normalize() (JobSpec, workload.DatasetSpec, error) {
	wspec, err := workload.SpecByName(s.Dataset)
	if err != nil {
		return s, wspec, err
	}
	if s.Scale < 0 {
		return s, wspec, fmt.Errorf("serve: negative scale %g", s.Scale)
	}
	if s.Scale > 1 {
		wspec = wspec.Scaled(s.Scale)
	}
	if s.Views < 0 {
		return s, wspec, fmt.Errorf("serve: negative view count %d", s.Views)
	}
	if s.Views > 0 && s.Views < wspec.NumViews {
		wspec.NumViews = s.Views
	}
	s.Views = wspec.NumViews
	if s.Levels == 0 {
		s.Levels = 2
	}
	if max := len(core.DefaultSchedule()); s.Levels < 1 || s.Levels > max {
		return s, wspec, fmt.Errorf("serve: levels %d outside 1..%d", s.Levels, max)
	}
	if s.Pad == 0 {
		s.Pad = 2
	}
	if s.Pad < 1 || s.Pad > 4 {
		return s, wspec, fmt.Errorf("serve: pad %d outside 1..4", s.Pad)
	}
	if s.InitError < 0 {
		return s, wspec, fmt.Errorf("serve: negative init_error %g", s.InitError)
	}
	if s.InitError == 0 {
		s.InitError = wspec.InitError
	}
	switch s.Search {
	case "":
		s.Search = string(core.SearchAdaptive)
	case string(core.SearchAdaptive), string(core.SearchExhaustive):
	default:
		return s, wspec, fmt.Errorf("serve: unknown search mode %q", s.Search)
	}
	switch s.Type {
	case "":
		s.Type = TypeRefine
		fallthrough
	case TypeRefine:
		if s.MaxCycles != 0 || s.PlateauEps != 0 || s.PlateauWindow != 0 {
			return s, wspec, fmt.Errorf("serve: cycle parameters on a %s job", TypeRefine)
		}
	case TypeCycle:
		if s.MaxCycles == 0 {
			s.MaxCycles = 4
		}
		if s.MaxCycles < 1 || s.MaxCycles > 64 {
			return s, wspec, fmt.Errorf("serve: max_cycles %d outside 1..64", s.MaxCycles)
		}
		if s.PlateauEps < 0 {
			return s, wspec, fmt.Errorf("serve: negative plateau_eps %g", s.PlateauEps)
		}
		if s.PlateauEps == 0 {
			s.PlateauEps = 0.01
		}
		if s.PlateauWindow < -1 {
			return s, wspec, fmt.Errorf("serve: plateau_window %d below -1", s.PlateauWindow)
		}
		if s.PlateauWindow == 0 {
			s.PlateauWindow = 2
		}
	default:
		return s, wspec, fmt.Errorf("serve: unknown job type %q", s.Type)
	}
	return s, wspec, nil
}

// Shape is the resolved stream-pipeline shape a job runs with,
// reported so clients can see what parallelism the service applied.
type Shape struct {
	FFTWorkers    int `json:"fft_workers"`
	RefineWorkers int `json:"refine_workers"`
	Depth         int `json:"depth"`
}

// Summary condenses a finished job against the dataset's ground truth.
type Summary struct {
	// MeanAngularError and MaxAngularError are in degrees, against the
	// synthetic ground-truth orientations.
	MeanAngularError float64 `json:"mean_angular_error_deg"`
	MaxAngularError  float64 `json:"max_angular_error_deg"`
	// MeanDistance is the mean final matching distance.
	MeanDistance float64 `json:"mean_distance"`
}

// summarize scores refined results against ground truth.
func summarize(results []core.Result, truth []geom.Euler) *Summary {
	if len(results) == 0 || len(results) != len(truth) {
		return nil
	}
	var sum Summary
	for i, res := range results {
		d := geom.AngularDistance(res.Orient, truth[i])
		sum.MeanAngularError += d
		if d > sum.MaxAngularError {
			sum.MaxAngularError = d
		}
		sum.MeanDistance += res.Distance
	}
	sum.MeanAngularError /= float64(len(results))
	sum.MeanDistance /= float64(len(results))
	return &sum
}

// JobStatus is the externally visible snapshot of one job — what
// GET /jobs/{id} returns.
type JobStatus struct {
	ID    string  `json:"id"`
	State State   `json:"state"`
	Spec  JobSpec `json:"spec"`
	// Views is the number of views the job refines.
	Views int `json:"views"`
	// LevelsDone counts completed (checkpointed) schedule levels;
	// LevelsTotal is the job's full schedule length.
	LevelsDone  int `json:"levels_done"`
	LevelsTotal int `json:"levels_total"`
	// Shape is the stream-pipeline shape the service runs jobs with.
	Shape Shape `json:"shape"`
	// SubmittedAt is the logical-clock tick the job was accepted at.
	SubmittedAt float64 `json:"submitted_at"`
	// Resumed reports that the job was recovered from a journal after
	// a restart rather than submitted to this process.
	Resumed bool `json:"resumed,omitempty"`
	// Error carries the failure message of a failed job.
	Error string `json:"error,omitempty"`
	// Summary is present once the job is done.
	Summary *Summary `json:"summary,omitempty"`
	// Cycle is present on cycle jobs: the outer-loop progress.
	Cycle *CycleStatus `json:"cycle,omitempty"`
}

// CycleStatus is the outer-loop slice of a cycle job's status.
type CycleStatus struct {
	// Done counts completed cycles (refine + reconstruct + FSC); Max
	// is the job's hard cycle cap.
	Done int `json:"done"`
	Max  int `json:"max"`
	// ResolutionA is the last completed cycle's FSC 0.5 crossing in Å
	// (0 until a cycle completes).
	ResolutionA float64 `json:"resolution_a,omitempty"`
	// Plateau is the consecutive non-improving cycle count.
	Plateau int `json:"plateau"`
	// Stopped is why the loop ended (cycle.StopPlateau or
	// cycle.StopMaxCycles), once it has.
	Stopped string `json:"stopped,omitempty"`
	// MapPath and MapDigest identify the last journaled map artifact.
	MapPath   string `json:"map_path,omitempty"`
	MapDigest string `json:"map_digest,omitempty"`
	// History holds every completed cycle's FSC record.
	History []cycle.CycleFSC `json:"history,omitempty"`
}
