package serve

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
)

// sampleResults builds per-view results with awkward floats — values
// whose decimal representations are not exact — to exercise the
// journal's bit-exact float64 round-trip.
func sampleResults() []core.Result {
	return []core.Result{
		{
			Orient:   geom.Euler{Theta: 0.1 + 0.2, Phi: 1.0 / 3.0, Omega: -2.718281828459045},
			Center:   [2]float64{0.30000000000000004, -0.1},
			Distance: 3.141592653589793,
			PerLevel: []core.LevelStats{{
				Matchings: 729, Slides: 3, CenterEvals: 27, BandUsed: 88,
				Shifts: [][2]float64{{0.1, -0.2}, {0.05, 0.15000000000000002}},
			}},
		},
		{
			Orient:   geom.Euler{Theta: 91.7, Phi: -12.25, Omega: 359.999},
			Center:   [2]float64{-1.5, 2.25},
			Distance: 0.021,
			PerLevel: []core.LevelStats{{Matchings: 343, Shifts: [][2]float64{{-0.7, 0.7}}}},
		},
	}
}

// TestJournalRoundTrip: submit + level + terminal records replay to
// exactly the state that was journaled, including every float bit of
// the recorded shift increments.
func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	spec := JobSpec{Dataset: "asymmetric", Scale: 2.5, Views: 2, Levels: 2, Pad: 2, InitError: 2, InitSeed: 5}
	results := sampleResults()
	sum := &Summary{MeanAngularError: 0.25, MaxAngularError: 0.5, MeanDistance: 1.5}
	if err := j.Submit("job-000001", spec); err != nil {
		t.Fatal(err)
	}
	if err := j.Level("job-000001", 0, results); err != nil {
		t.Fatal(err)
	}
	if err := j.Submit("job-000002", spec); err != nil {
		t.Fatal(err)
	}
	if err := j.Terminal("job-000001", StateDone, "", sum); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := j2.Close(); err != nil {
			t.Error(err)
		}
	}()
	want := []JobReplay{
		{ID: "job-000001", Spec: spec, LevelsDone: 1, Results: results, State: StateDone, Summary: sum, LastMapCycle: -1},
		{ID: "job-000002", Spec: spec, State: StatePending, LastMapCycle: -1},
	}
	if got := j2.Replay(); !reflect.DeepEqual(got, want) {
		t.Fatalf("replay mismatch:\ngot  %+v\nwant %+v", got, want)
	}
}

// TestJournalTornTail: a crash mid-append leaves a partial final line;
// replay drops it and keeps everything acknowledged before it.
func TestJournalTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Submit("job-000001", JobSpec{Dataset: "asymmetric", Views: 2, Levels: 1, Pad: 2, InitError: 2}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"kind":"level","id":"job-000001","lev`); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("torn tail not tolerated: %v", err)
	}
	defer func() {
		if err := j2.Close(); err != nil {
			t.Error(err)
		}
	}()
	rp := j2.Replay()
	if len(rp) != 1 || rp[0].ID != "job-000001" || rp[0].LevelsDone != 0 || rp[0].State != StatePending {
		t.Fatalf("unexpected replay after torn tail: %+v", rp)
	}
}

// TestJournalMalformedMiddle: a garbage line that is not the torn tail
// is corruption, not a crash artifact — it must fail the open.
func TestJournalMalformedMiddle(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.jsonl")
	lines := []string{
		`{"kind":"submit","id":"job-000001","spec":{"dataset":"asymmetric"}}`,
		`this is not JSON`,
		`{"kind":"terminal","id":"job-000001","state":"done"}`,
	}
	if err := os.WriteFile(path, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenJournal(path); err == nil {
		t.Fatal("malformed interior line not rejected")
	}
}

// TestJournalInconsistentRecords: level records must reference a
// submitted job and arrive in schedule order.
func TestJournalInconsistentRecords(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.jsonl")
	for _, bad := range []string{
		`{"kind":"level","id":"job-000009","level":0}`,
		`{"kind":"submit","id":"job-000001","spec":{"dataset":"asymmetric"}}` + "\n" +
			`{"kind":"level","id":"job-000001","level":1}`,
		`{"kind":"submit","id":"job-000001","spec":{"dataset":"asymmetric"}}` + "\n" +
			`{"kind":"terminal","id":"job-000001","state":"running"}`,
		`{"kind":"wat","id":"job-000001"}`,
	} {
		if err := os.WriteFile(path, []byte(bad+"\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := OpenJournal(path); err == nil {
			t.Errorf("inconsistent journal accepted: %s", bad)
		}
	}
}
