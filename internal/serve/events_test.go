package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
)

// withEvents installs a fresh event log for one test and tears it down.
func withEvents(t *testing.T, capacity int) *obs.EventLog {
	t.Helper()
	if obs.ActiveEvents() != nil {
		t.Fatal("event log already active at test start")
	}
	l := obs.StartEvents(capacity)
	t.Cleanup(func() { obs.StopEvents() })
	return l
}

// jobKinds extracts the event-kind sequence for one job.
func jobKinds(evs []obs.EventRecord, id string) []string {
	var kinds []string
	for _, ev := range evs {
		if ev.Job == id {
			kinds = append(kinds, ev.Kind)
		}
	}
	return kinds
}

// TestManagerEventLifecycle: one journaled job emits the full edge
// sequence — admit, dequeue, per-level start/end/checkpoint, terminal —
// and the gauges land on their resting values.
func TestManagerEventLifecycle(t *testing.T) {
	l := withEvents(t, 1024)
	prev := obs.SetEnabled(true)
	defer obs.SetEnabled(prev)
	defer obs.ResetAll()

	j, err := OpenJournal(filepath.Join(t.TempDir(), "jobs.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := j.Close(); err != nil {
			t.Error(err)
		}
	}()
	m, err := NewManager(Options{Stream: tinyStream(), Journal: j})
	if err != nil {
		t.Fatal(err)
	}
	m.Start()
	st, err := m.Submit(tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, st.ID, StateDone)
	m.Drain()

	evs, dropped := l.Since(0)
	if dropped != 0 {
		t.Fatalf("ring overflowed: %d dropped", dropped)
	}
	want := []string{
		evAdmit, evDequeue,
		evLevelStart, evLevelEnd, evCheckpoint,
		evLevelStart, evLevelEnd, evCheckpoint,
		string(StateDone),
	}
	if got := jobKinds(evs, st.ID); !reflect.DeepEqual(got, want) {
		t.Fatalf("event kinds %v, want %v", got, want)
	}
	// Sequence numbers are contiguous and timestamps never go backwards.
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq != evs[i-1].Seq+1 {
			t.Fatalf("seq gap at %d: %+v", i, evs[i])
		}
		if evs[i].TS < evs[i-1].TS {
			t.Fatalf("logical time went backwards: %+v after %+v", evs[i], evs[i-1])
		}
	}
	// level_end carries the per-level work counters.
	for _, ev := range evs {
		if ev.Kind != evLevelEnd {
			continue
		}
		if ev.Fields[0].Key != "evals" || ev.Fields[0].Value <= 0 {
			t.Fatalf("level_end without evals: %+v", ev)
		}
	}
	vals := obs.Values()
	if vals["serve.queue.depth.now"] != 0 || vals["serve.jobs.running.now"] != 0 {
		t.Fatalf("occupancy gauges not at rest: %v", vals)
	}
	if got, want := vals["serve.journal.bytes"], j.Size(); got != want || want == 0 {
		t.Fatalf("journal bytes gauge %d, journal size %d", got, want)
	}
	if vals["serve.latency.level_ticks.count"] != 2 {
		t.Fatalf("level latency histogram count: %v", vals["serve.latency.level_ticks.count"])
	}
}

// sseFrame is one parsed Server-Sent Events frame.
type sseFrame struct {
	ID    uint64
	Event string
	Data  string
}

// readFrames reads up to max SSE frames (0 = until EOF) from r.
func readFrames(t *testing.T, r *bufio.Reader, max int) []sseFrame {
	t.Helper()
	var (
		frames []sseFrame
		cur    sseFrame
		dirty  bool
	)
	for max == 0 || len(frames) < max {
		line, err := r.ReadString('\n')
		if err == io.EOF && line == "" {
			break
		}
		if err != nil && err != io.EOF {
			t.Fatalf("reading SSE stream: %v", err)
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case line == "":
			if dirty {
				frames = append(frames, cur)
				cur, dirty = sseFrame{}, false
			}
		case strings.HasPrefix(line, "id: "):
			id, err := strconv.ParseUint(line[len("id: "):], 10, 64)
			if err != nil {
				t.Fatalf("bad SSE id line %q: %v", line, err)
			}
			cur.ID, dirty = id, true
		case strings.HasPrefix(line, "event: "):
			cur.Event, dirty = line[len("event: "):], true
		case strings.HasPrefix(line, "data: "):
			cur.Data, dirty = line[len("data: "):], true
		default:
			t.Fatalf("unexpected SSE line %q", line)
		}
	}
	return frames
}

// TestSSEResumeNoGaps is the satellite-3 contract: follow a job's SSE
// stream, kill the connection mid-stream, reconnect with the standard
// Last-Event-ID header, and the union of both reads covers every event
// exactly once — cross-checked against the journal's level records.
func TestSSEResumeNoGaps(t *testing.T) {
	withEvents(t, 1024)
	path := filepath.Join(t.TempDir(), "jobs.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := j.Close(); err != nil {
			t.Error(err)
		}
	}()
	m, err := NewManager(Options{Stream: tinyStream(), Journal: j})
	if err != nil {
		t.Fatal(err)
	}
	m.Start()
	defer m.Drain()
	ts := httptest.NewServer(NewHandler(m))
	defer ts.Close()

	st, err := m.Submit(tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, st.ID, StateDone)

	stream := func(lastID uint64, max int) []sseFrame {
		req, err := http.NewRequest(http.MethodGet, ts.URL+"/jobs/"+st.ID+"/events", nil)
		if err != nil {
			t.Fatal(err)
		}
		if lastID > 0 {
			req.Header.Set("Last-Event-ID", strconv.FormatUint(lastID, 10))
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer func() {
			if err := resp.Body.Close(); err != nil {
				t.Error(err)
			}
		}()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("SSE status %d", resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
			t.Fatalf("SSE content type %q", ct)
		}
		return readFrames(t, bufio.NewReader(resp.Body), max)
	}

	// First connection: read three frames, then kill it mid-stream.
	head := stream(0, 3)
	if len(head) != 3 {
		t.Fatalf("first read got %d frames", len(head))
	}
	// Reconnect where the dead connection left off; the stream ends on
	// its own once the terminal event is drained.
	tail := stream(head[len(head)-1].ID, 0)
	if len(tail) == 0 {
		t.Fatal("resumed stream was empty")
	}

	frames := append(head, tail...)
	seen := map[uint64]bool{}
	var levelEnds []int
	for _, f := range frames {
		if f.Event == "gap" {
			t.Fatalf("gap frame on an un-overflowed ring: %+v", f)
		}
		if seen[f.ID] {
			t.Fatalf("duplicate seq %d after resume", f.ID)
		}
		seen[f.ID] = true
		var rec struct {
			Seq   uint64 `json:"seq"`
			Level int    `json:"level"`
			Kind  string `json:"kind"`
		}
		if err := json.Unmarshal([]byte(f.Data), &rec); err != nil {
			t.Fatalf("frame data %q: %v", f.Data, err)
		}
		if rec.Seq != f.ID || rec.Kind != f.Event {
			t.Fatalf("frame metadata disagrees with payload: %+v vs %+v", f, rec)
		}
		if f.Event == evLevelEnd {
			levelEnds = append(levelEnds, rec.Level)
		}
	}
	for i := 1; i < len(frames); i++ {
		if frames[i].ID != frames[i-1].ID+1 {
			t.Fatalf("seq gap across resume: %d after %d", frames[i].ID, frames[i-1].ID)
		}
	}
	if frames[len(frames)-1].Event != string(StateDone) {
		t.Fatalf("stream did not end at the terminal event: %+v", frames[len(frames)-1])
	}

	// The level_end events must line up one-to-one with the journal's
	// level records.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var journalLevels []int
	for _, line := range bytes.Split(data, []byte("\n")) {
		if len(line) == 0 {
			continue
		}
		var rec struct {
			Kind  string `json:"kind"`
			Level int    `json:"level"`
		}
		if err := json.Unmarshal(line, &rec); err != nil {
			t.Fatal(err)
		}
		if rec.Kind == "level" {
			journalLevels = append(journalLevels, rec.Level)
		}
	}
	if !reflect.DeepEqual(levelEnds, journalLevels) {
		t.Fatalf("level_end events %v vs journal level records %v", levelEnds, journalLevels)
	}
}

// TestEventsLongPoll: the ?poll=1 fallback returns the same records as
// JSON and a cursor that picks up exactly where the response ended.
func TestEventsLongPoll(t *testing.T) {
	l := withEvents(t, 1024)
	m, err := NewManager(Options{Stream: tinyStream()})
	if err != nil {
		t.Fatal(err)
	}
	m.Start()
	defer m.Drain()
	ts := httptest.NewServer(NewHandler(m))
	defer ts.Close()

	st, err := m.Submit(tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, st.ID, StateDone)

	var body pollBody
	resp := getJSON(t, ts, "/jobs/"+st.ID+"/events?poll=1", &body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("poll status %d", resp.StatusCode)
	}
	if cc := resp.Header.Get("Cache-Control"); cc != "no-store" {
		t.Fatalf("poll Cache-Control %q", cc)
	}
	if body.Dropped != 0 || len(body.Events) == 0 {
		t.Fatalf("poll body: %d events, %d dropped", len(body.Events), body.Dropped)
	}
	if body.Next != l.LastSeq() {
		t.Fatalf("poll cursor %d, log head %d", body.Next, l.LastSeq())
	}
	if got := body.Events[len(body.Events)-1].Kind; got != string(StateDone) {
		t.Fatalf("last polled event %q", got)
	}
	// A follow-up from the returned cursor against a finished job has
	// nothing new — probe via since= on the firehose's own head.
	var again pollBody
	getJSON(t, ts, "/events?poll=1&since="+strconv.FormatUint(body.Next-1, 10), &again)
	if len(again.Events) != 1 || again.Events[0].Seq != body.Next {
		t.Fatalf("cursor re-read: %+v", again.Events)
	}

	// Unknown job and inactive log both map to 404.
	if resp := getJSON(t, ts, "/jobs/job-999999/events", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job events: %d", resp.StatusCode)
	}
	obs.StopEvents()
	defer obs.StartEvents(16) // keep the cleanup's Stop balanced
	if resp := getJSON(t, ts, "/events", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("events without active log: %d", resp.StatusCode)
	}
}

// parseProm is the small exposition parser backing the prom-format
// tests and the CI smoke: it checks every line is a well-formed TYPE
// comment or sample, and returns samples keyed by name+labels.
func parseProm(t *testing.T, text string) (types map[string]string, samples map[string]int64) {
	t.Helper()
	types = map[string]string{}
	samples = map[string]int64{}
	for i, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			parts := strings.Fields(rest)
			if len(parts) != 2 {
				t.Fatalf("line %d: malformed TYPE comment %q", i+1, line)
			}
			switch parts[1] {
			case "counter", "gauge", "histogram":
			default:
				t.Fatalf("line %d: unknown metric type %q", i+1, parts[1])
			}
			types[parts[0]] = parts[1]
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("line %d: malformed sample %q", i+1, line)
		}
		key, val := line[:sp], line[sp+1:]
		n, err := strconv.ParseInt(val, 10, 64)
		if err != nil {
			t.Fatalf("line %d: non-integer sample value %q", i+1, line)
		}
		name := key
		if b := strings.IndexByte(key, '{'); b >= 0 {
			name = key[:b]
		}
		for _, c := range []byte(name) {
			switch {
			case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_', c == ':':
			default:
				t.Fatalf("line %d: invalid metric name byte %q in %q", i+1, c, name)
			}
		}
		samples[key] = n
	}
	return types, samples
}

// TestHTTPMetricsProm: ?format=prom serves a valid text exposition
// with the right headers, and the serve histograms obey the cumulative
// bucket contract.
func TestHTTPMetricsProm(t *testing.T) {
	prev := obs.SetEnabled(true)
	defer obs.SetEnabled(prev)
	defer obs.ResetAll()

	m, err := NewManager(Options{Stream: tinyStream()})
	if err != nil {
		t.Fatal(err)
	}
	m.Start()
	defer m.Drain()
	ts := httptest.NewServer(NewHandler(m))
	defer ts.Close()
	st, err := m.Submit(tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, st.ID, StateDone)

	resp, err := http.Get(ts.URL + "/metrics?format=prom")
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if err := resp.Body.Close(); err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Fatalf("prom Content-Type %q", ct)
	}
	if cc := resp.Header.Get("Cache-Control"); cc != "no-store" {
		t.Fatalf("prom Cache-Control %q", cc)
	}
	types, samples := parseProm(t, string(data))
	if types["serve_jobs_done"] != "counter" || samples["serve_jobs_done"] < 1 {
		t.Fatalf("serve_jobs_done: type %q value %d", types["serve_jobs_done"], samples["serve_jobs_done"])
	}
	if typ, ok := types["serve_journal_bytes"]; !ok || typ != "gauge" {
		t.Fatalf("serve_journal_bytes type %q", typ)
	}
	if types["serve_latency_level_ticks"] != "histogram" {
		t.Fatalf("level latency histogram missing: %v", types)
	}
	// Cumulative buckets: monotone non-decreasing, +Inf equals _count.
	var prevCum int64 = -1
	count := samples["serve_latency_level_ticks_count"]
	if count < 2 {
		t.Fatalf("level histogram count %d", count)
	}
	for k := 0; ; k++ {
		le := "0"
		if k > 0 {
			le = strconv.FormatInt(int64(1)<<k-1, 10)
		}
		cum, ok := samples[`serve_latency_level_ticks_bucket{le="`+le+`"}`]
		if !ok {
			break
		}
		if cum < prevCum {
			t.Fatalf("bucket le=%s not cumulative: %d after %d", le, cum, prevCum)
		}
		prevCum = cum
	}
	if inf := samples[`serve_latency_level_ticks_bucket{le="+Inf"}`]; inf != count {
		t.Fatalf("+Inf bucket %d != count %d", inf, count)
	}

	// The JSON view now carries explicit cache headers too.
	resp2, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := io.Copy(io.Discard, resp2.Body); err != nil {
		t.Fatal(err)
	}
	if err := resp2.Body.Close(); err != nil {
		t.Fatal(err)
	}
	if ct, cc := resp2.Header.Get("Content-Type"), resp2.Header.Get("Cache-Control"); ct != "application/json" || cc != "no-store" {
		t.Fatalf("JSON metrics headers: %q / %q", ct, cc)
	}
}

// TestManagerObsEquivalence is the acceptance gate: with counters,
// tracing and the event log all recording, a job's results, summary
// and journal bytes are bit-identical to a fully-uninstrumented run.
func TestManagerObsEquivalence(t *testing.T) {
	run := func(instrument bool) ([]core.Result, *Summary, []byte) {
		if instrument {
			prev := obs.SetEnabled(true)
			defer obs.SetEnabled(prev)
			defer obs.ResetAll()
			obs.StartTrace()
			defer obs.EndTrace()
			obs.StartEvents(4096)
			defer obs.StopEvents()
		}
		path := filepath.Join(t.TempDir(), "jobs.jsonl")
		j, err := OpenJournal(path)
		if err != nil {
			t.Fatal(err)
		}
		m, err := NewManager(Options{Stream: tinyStream(), Journal: j})
		if err != nil {
			t.Fatal(err)
		}
		m.Start()
		st, err := m.Submit(tinySpec())
		if err != nil {
			t.Fatal(err)
		}
		fin := waitState(t, m, st.ID, StateDone)
		res, err := m.Results(st.ID)
		if err != nil {
			t.Fatal(err)
		}
		m.Drain()
		if err := j.Close(); err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return res, fin.Summary, data
	}

	onRes, onSum, onJournal := run(true)
	offRes, offSum, offJournal := run(false)
	if !reflect.DeepEqual(onRes, offRes) {
		t.Fatal("results differ with instrumentation on")
	}
	if !reflect.DeepEqual(onSum, offSum) {
		t.Fatalf("summaries differ: %+v vs %+v", onSum, offSum)
	}
	if !bytes.Equal(onJournal, offJournal) {
		t.Fatalf("journal bytes differ: %d vs %d", len(onJournal), len(offJournal))
	}
}
