package serve

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/reconstruct"
	"repro/internal/volume"
)

// tinyCycleSpec is the smallest meaningful cycle job: two cycles of
// two levels over the shrunken asymmetric dataset.
func tinyCycleSpec() JobSpec {
	return JobSpec{Type: TypeCycle, Dataset: "asymmetric", Scale: 2.5, Views: 4, Levels: 2, MaxCycles: 2, InitSeed: 3}
}

// TestCycleSpecNormalize pins the cycle-spec validation surface.
func TestCycleSpecNormalize(t *testing.T) {
	spec, _, err := tinyCycleSpec().normalize()
	if err != nil {
		t.Fatal(err)
	}
	if spec.Type != TypeCycle || spec.MaxCycles != 2 || spec.PlateauEps != 0.01 || spec.PlateauWindow != 2 {
		t.Fatalf("normalized cycle spec %+v missing defaults", spec)
	}
	if got := spec.levelsTotal(); got != 4 {
		t.Fatalf("levelsTotal = %d, want 4", got)
	}

	bad := []JobSpec{
		{Type: "mystery", Dataset: "asymmetric"},
		{Type: TypeCycle, Dataset: "asymmetric", MaxCycles: -1},
		{Type: TypeCycle, Dataset: "asymmetric", MaxCycles: 65},
		{Type: TypeCycle, Dataset: "asymmetric", PlateauEps: -0.5},
		{Type: TypeCycle, Dataset: "asymmetric", PlateauWindow: -2},
		{Dataset: "asymmetric", MaxCycles: 3},     // cycle knob on a refine job
		{Dataset: "asymmetric", PlateauEps: 0.1},  // ditto
		{Dataset: "asymmetric", PlateauWindow: 1}, // ditto
		{Type: TypeRefine, Dataset: "asymmetric", MaxCycles: 1},
	}
	for i, s := range bad {
		if _, _, err := s.normalize(); err == nil {
			t.Errorf("bad spec %d accepted: %+v", i, s)
		}
	}
}

// TestManagerCycleJob: a cycle job runs to done with per-cycle status,
// a journaled digest-verified map artifact, and a final summary.
func TestManagerCycleJob(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(filepath.Join(dir, "jobs.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := j.Close(); err != nil {
			t.Error(err)
		}
	}()
	m, err := NewManager(Options{Stream: tinyStream(), Journal: j})
	if err != nil {
		t.Fatal(err)
	}
	m.Start()
	defer m.Drain()
	st, err := m.Submit(tinyCycleSpec())
	if err != nil {
		t.Fatal(err)
	}
	if st.LevelsTotal != 4 || st.Cycle == nil || st.Cycle.Max != 2 {
		t.Fatalf("initial cycle status %+v", st)
	}
	done := waitState(t, m, st.ID, StateDone)
	cs := done.Cycle
	if cs == nil {
		t.Fatal("done cycle job has no cycle status")
	}
	if cs.Done < 1 || cs.Done > 2 || len(cs.History) != cs.Done {
		t.Fatalf("cycle progress %+v", cs)
	}
	if cs.Stopped == "" {
		t.Fatalf("done cycle job has no stop reason: %+v", cs)
	}
	if cs.ResolutionA <= 0 {
		t.Fatalf("no 0.5 crossing recorded: %+v", cs)
	}
	if done.LevelsDone != cs.Done*2 {
		t.Fatalf("levels done %d with %d cycles", done.LevelsDone, cs.Done)
	}
	if done.Summary == nil {
		t.Fatal("done cycle job has no summary")
	}
	// The journaled artifact is the last cycle's map, digest-verified.
	g, err := volume.ReadGridFile(cs.MapPath)
	if err != nil {
		t.Fatal(err)
	}
	if d := reconstruct.MapDigest(g); d != cs.MapDigest {
		t.Fatalf("artifact digest %.12s != journaled %.12s", d, cs.MapDigest)
	}
}

// cycleFingerprint condenses a finished cycle job for bit-identity
// comparison: final map digest, per-cycle FSC records, and per-view
// results.
func cycleFingerprint(t *testing.T, m *Manager, id string) string {
	t.Helper()
	st, err := m.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Results(id)
	if err != nil {
		t.Fatal(err)
	}
	s := st.Cycle.MapDigest
	for _, rec := range st.Cycle.History {
		s += fmt.Sprintf("|%d:%x:%x:%v:%d", rec.Cycle, rec.ResolutionA, rec.MeanCC, rec.Improved, rec.Plateau)
	}
	s += "|" + st.Cycle.Stopped
	for _, r := range res {
		s += fmt.Sprintf("|%x,%x,%x,%x,%x", r.Orient.Theta, r.Orient.Phi, r.Orient.Omega, r.Center[0], r.Center[1])
	}
	return s
}

// TestManagerCycleKillResume is the acceptance pin: a cycle job killed
// after ANY fsynced journal record — mid-refinement, between a cycle's
// map checkpoint and its FSC, anywhere — resumes to a bit-identical
// final map, FSC history, and per-view results. The kill is emulated
// by truncating the reference run's journal at every record boundary
// and restarting a manager on the truncated copy (exactly the state a
// kill -9 after that record's fsync leaves behind).
func TestManagerCycleKillResume(t *testing.T) {
	refDir := t.TempDir()
	refPath := filepath.Join(refDir, "jobs.jsonl")
	j, err := OpenJournal(refPath)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewManager(Options{Stream: tinyStream(), Journal: j})
	if err != nil {
		t.Fatal(err)
	}
	m.Start()
	st, err := m.Submit(tinyCycleSpec())
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, st.ID, StateDone)
	refFP := cycleFingerprint(t, m, st.ID)
	m.Drain()
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(refPath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(strings.TrimSuffix(string(data), "\n"), "\n")

	// Every prefix that contains at least the submit record is a valid
	// kill point; the full journal (terminal record included) must
	// replay to the same fingerprint without re-running anything.
	for p := 1; p <= len(lines); p++ {
		dir := t.TempDir()
		path := filepath.Join(dir, "jobs.jsonl")
		if err := os.WriteFile(path, []byte(strings.Join(lines[:p], "")), 0o644); err != nil {
			t.Fatal(err)
		}
		jp, err := OpenJournal(path)
		if err != nil {
			t.Fatalf("prefix %d: %v", p, err)
		}
		mp, err := NewManager(Options{Stream: tinyStream(), Journal: jp})
		if err != nil {
			t.Fatalf("prefix %d: %v", p, err)
		}
		mp.Start()
		waitState(t, mp, st.ID, StateDone)
		if got := cycleFingerprint(t, mp, st.ID); got != refFP {
			t.Errorf("prefix %d of %d: resumed run diverged from uninterrupted reference", p, len(lines))
		}
		mp.Drain()
		if err := jp.Close(); err != nil {
			t.Fatal(err)
		}
	}
}
