package fft

import (
	"testing"

	"repro/internal/obs"
)

// The hit/miss tests use unusual fresh lengths so the shared global
// caches (warm from other tests in the binary) cannot mask a delta.

// TestPlanCacheHitMissCounters: the first request of a fresh length is
// a miss, the second identically-sized request is a hit, on the
// length's own shard.
func TestPlanCacheHitMissCounters(t *testing.T) {
	prev := obs.SetEnabled(true)
	defer obs.SetEnabled(prev)

	const n = 7919 // prime, not plausibly requested elsewhere
	s := shardFor(n)
	h0, m0 := planCacheHits.Value(s), planCacheMisses.Value(s)
	tablesFor(n)
	if got := planCacheMisses.Value(s) - m0; got != 1 {
		t.Fatalf("first request: %d misses on shard %d, want 1", got, s)
	}
	hitsAfterFirst := planCacheHits.Value(s) - h0
	tablesFor(n)
	if got := planCacheHits.Value(s) - h0 - hitsAfterFirst; got != 1 {
		t.Fatalf("second request: %d new hits on shard %d, want 1", got, s)
	}
	if got := planCacheMisses.Value(s) - m0; got != 1 {
		t.Fatalf("second request added a miss: %d total on shard %d", got, s)
	}
}

// TestRealCacheHitMissCounters mirrors the plan-cache assertion for the
// real-input unpack-twiddle cache.
func TestRealCacheHitMissCounters(t *testing.T) {
	prev := obs.SetEnabled(true)
	defer obs.SetEnabled(prev)

	const n = 7906 // even (real plans require it), fresh
	s := shardFor(n)
	h0, m0 := realCacheHits.Value(s), realCacheMisses.Value(s)
	realTablesFor(n)
	realTablesFor(n)
	if got := realCacheMisses.Value(s) - m0; got != 1 {
		t.Fatalf("misses on shard %d = %d, want 1", s, got)
	}
	if got := realCacheHits.Value(s) - h0; got != 1 {
		t.Fatalf("hits on shard %d = %d, want 1", s, got)
	}
}

// TestPlanCacheShardSpread: consecutive lengths must not pile onto one
// shard — the Fibonacci hash exists to spread exactly this pattern
// (same-parity, consecutive sizes from slab partitions).
func TestPlanCacheShardSpread(t *testing.T) {
	used := map[int]bool{}
	for n := 4000; n < 4064; n++ {
		used[shardFor(n)] = true
	}
	if len(used) < cacheShards/2 {
		t.Fatalf("64 consecutive lengths landed on only %d of %d shards", len(used), cacheShards)
	}
	// And the counters actually live on those distinct shards: misses
	// for fresh lengths on different shards move different cells.
	prev := obs.SetEnabled(true)
	defer obs.SetEnabled(prev)
	na, nb := 7927, 7933 // fresh primes on (very likely) distinct shards
	sa, sb := shardFor(na), shardFor(nb)
	if sa == sb {
		t.Skipf("chosen primes share shard %d; spread already proven above", sa)
	}
	ma, mb := planCacheMisses.Value(sa), planCacheMisses.Value(sb)
	tablesFor(na)
	tablesFor(nb)
	if planCacheMisses.Value(sa)-ma < 1 || planCacheMisses.Value(sb)-mb < 1 {
		t.Fatalf("misses did not land on their own shards (%d, %d)", sa, sb)
	}
}

// TestCountersSilentWhenDisabled: with instrumentation off, cache
// traffic must not move any counter.
func TestCountersSilentWhenDisabled(t *testing.T) {
	prev := obs.SetEnabled(false)
	defer obs.SetEnabled(prev)

	const n = 7937 // fresh prime
	s := shardFor(n)
	h0, m0 := planCacheHits.Value(s), planCacheMisses.Value(s)
	tablesFor(n)
	tablesFor(n)
	if planCacheHits.Value(s) != h0 || planCacheMisses.Value(s) != m0 {
		t.Fatal("disabled instrumentation moved cache counters")
	}
}
