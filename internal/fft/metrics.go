package fft

import "repro/internal/obs"

// Per-shard plan-cache traffic. A Load that finds the tables is a hit;
// a miss covers the build + LoadOrStore path (including the losers of
// a concurrent first-use race, whose built tables are discarded).
var (
	planCacheHits   = obs.NewCounterVec("fft.plan_cache.hits", cacheShards)
	planCacheMisses = obs.NewCounterVec("fft.plan_cache.misses", cacheShards)
	realCacheHits   = obs.NewCounterVec("fft.real_cache.hits", cacheShards)
	realCacheMisses = obs.NewCounterVec("fft.real_cache.misses", cacheShards)
)
