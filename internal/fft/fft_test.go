package fft

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

// naiveDFT is the O(n²) reference transform.
func naiveDFT(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var s complex128
		for j := 0; j < n; j++ {
			angle := -2 * math.Pi * float64(k) * float64(j) / float64(n)
			s += x[j] * cmplx.Exp(complex(0, angle))
		}
		out[k] = s
	}
	return out
}

func randomSignal(r *rand.Rand, n int) []complex128 {
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(r.NormFloat64(), r.NormFloat64())
	}
	return x
}

func maxDiff(a, b []complex128) float64 {
	m := 0.0
	for i := range a {
		if d := cmplx.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

func TestForwardMatchesNaive(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	// Powers of two, primes, composites — including the paper's view
	// sizes 221 = 13·17 and 511 = 7·73.
	for _, n := range []int{1, 2, 3, 4, 5, 7, 8, 12, 16, 17, 31, 32, 45, 64, 100, 221, 511} {
		x := randomSignal(r, n)
		want := naiveDFT(x)
		got := append([]complex128(nil), x...)
		NewPlan(n).Forward(got)
		if d := maxDiff(got, want); d > 1e-8*float64(n) {
			t.Errorf("n=%d: max deviation from naive DFT %g", n, d)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for _, n := range []int{1, 2, 8, 13, 48, 64, 221, 255, 256} {
		p := NewPlan(n)
		x := randomSignal(r, n)
		orig := append([]complex128(nil), x...)
		p.Forward(x)
		p.Inverse(x)
		if d := maxDiff(x, orig); d > 1e-9*float64(n) {
			t.Errorf("n=%d: round-trip error %g", n, d)
		}
	}
}

func TestPlanReuse(t *testing.T) {
	// The same plan must give identical results across calls.
	r := rand.New(rand.NewSource(3))
	p := NewPlan(221)
	x := randomSignal(r, 221)
	a := append([]complex128(nil), x...)
	b := append([]complex128(nil), x...)
	p.Forward(a)
	p.Forward(b)
	if maxDiff(a, b) != 0 {
		t.Fatal("plan reuse is not deterministic")
	}
}

func TestLinearity(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 24
		p := NewPlan(n)
		x, y := randomSignal(r, n), randomSignal(r, n)
		alpha := complex(r.NormFloat64(), r.NormFloat64())
		lhs := make([]complex128, n)
		for i := range lhs {
			lhs[i] = x[i] + alpha*y[i]
		}
		p.Forward(lhs)
		fx := append([]complex128(nil), x...)
		fy := append([]complex128(nil), y...)
		p.Forward(fx)
		p.Forward(fy)
		for i := range lhs {
			if cmplx.Abs(lhs[i]-(fx[i]+alpha*fy[i])) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestParseval(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		for _, n := range []int{16, 21} {
			x := randomSignal(r, n)
			var timeE float64
			for _, v := range x {
				timeE += real(v)*real(v) + imag(v)*imag(v)
			}
			NewPlan(n).Forward(x)
			var freqE float64
			for _, v := range x {
				freqE += real(v)*real(v) + imag(v)*imag(v)
			}
			if math.Abs(freqE/float64(n)-timeE) > 1e-8*timeE {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestImpulseAndDC(t *testing.T) {
	n := 32
	p := NewPlan(n)
	// DC signal -> impulse at k=0 of height n.
	x := make([]complex128, n)
	for i := range x {
		x[i] = 1
	}
	p.Forward(x)
	if cmplx.Abs(x[0]-complex(float64(n), 0)) > 1e-9 {
		t.Errorf("DC bin = %v, want %d", x[0], n)
	}
	for k := 1; k < n; k++ {
		if cmplx.Abs(x[k]) > 1e-9 {
			t.Errorf("bin %d = %v, want 0", k, x[k])
		}
	}
	// Impulse -> flat spectrum.
	y := make([]complex128, n)
	y[0] = 1
	p.Forward(y)
	for k := 0; k < n; k++ {
		if cmplx.Abs(y[k]-1) > 1e-9 {
			t.Errorf("impulse spectrum bin %d = %v, want 1", k, y[k])
		}
	}
}

func TestShiftTheorem(t *testing.T) {
	// x[n-s] has DFT X[k]·exp(-2πi ks/N).
	r := rand.New(rand.NewSource(4))
	n, s := 40, 7
	x := randomSignal(r, n)
	shifted := make([]complex128, n)
	for i := range shifted {
		shifted[i] = x[((i-s)%n+n)%n]
	}
	p := NewPlan(n)
	fx := append([]complex128(nil), x...)
	p.Forward(fx)
	p.Forward(shifted)
	for k := 0; k < n; k++ {
		phase := cmplx.Exp(complex(0, -2*math.Pi*float64(k)*float64(s)/float64(n)))
		if cmplx.Abs(shifted[k]-fx[k]*phase) > 1e-8 {
			t.Fatalf("shift theorem violated at bin %d", k)
		}
	}
}

func TestRealSignalHermitian(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	n := 33
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(r.NormFloat64(), 0)
	}
	NewPlan(n).Forward(x)
	for k := 1; k < n; k++ {
		if cmplx.Abs(x[k]-cmplx.Conj(x[n-k])) > 1e-8 {
			t.Fatalf("Hermitian symmetry violated at bin %d", k)
		}
	}
}

func TestPlan2DMatchesNaive(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	nx, ny := 6, 9
	x := randomSignal(r, nx*ny)
	want := make([]complex128, nx*ny)
	for kx := 0; kx < nx; kx++ {
		for ky := 0; ky < ny; ky++ {
			var s complex128
			for jx := 0; jx < nx; jx++ {
				for jy := 0; jy < ny; jy++ {
					angle := -2 * math.Pi * (float64(kx*jx)/float64(nx) + float64(ky*jy)/float64(ny))
					s += x[jx*ny+jy] * cmplx.Exp(complex(0, angle))
				}
			}
			want[kx*ny+ky] = s
		}
	}
	NewPlan2D(nx, ny).Forward(x)
	if d := maxDiff(x, want); d > 1e-8 {
		t.Fatalf("2-D FFT deviates from naive DFT by %g", d)
	}
}

func TestPlan2DRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	p := NewPlan2D(17, 12)
	x := randomSignal(r, 17*12)
	orig := append([]complex128(nil), x...)
	p.Forward(x)
	p.Inverse(x)
	if d := maxDiff(x, orig); d > 1e-9 {
		t.Fatalf("2-D round-trip error %g", d)
	}
}

func TestPlan3DRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	p := NewPlan3D(8, 6, 10)
	x := randomSignal(r, 8*6*10)
	orig := append([]complex128(nil), x...)
	p.Forward(x)
	p.Inverse(x)
	if d := maxDiff(x, orig); d > 1e-9 {
		t.Fatalf("3-D round-trip error %g", d)
	}
}

func TestPlan3DSeparability(t *testing.T) {
	// A separable product signal has a separable product transform.
	nx, ny, nz := 8, 8, 8
	r := rand.New(rand.NewSource(9))
	ax, ay, az := randomSignal(r, nx), randomSignal(r, ny), randomSignal(r, nz)
	x := make([]complex128, nx*ny*nz)
	for ix := 0; ix < nx; ix++ {
		for iy := 0; iy < ny; iy++ {
			for iz := 0; iz < nz; iz++ {
				x[(ix*ny+iy)*nz+iz] = ax[ix] * ay[iy] * az[iz]
			}
		}
	}
	NewPlan3D(nx, ny, nz).Forward(x)
	fx := append([]complex128(nil), ax...)
	fy := append([]complex128(nil), ay...)
	fz := append([]complex128(nil), az...)
	Forward(fx)
	Forward(fy)
	Forward(fz)
	for ix := 0; ix < nx; ix++ {
		for iy := 0; iy < ny; iy++ {
			for iz := 0; iz < nz; iz++ {
				want := fx[ix] * fy[iy] * fz[iz]
				got := x[(ix*ny+iy)*nz+iz]
				if cmplx.Abs(got-want) > 1e-6 {
					t.Fatalf("separability violated at (%d,%d,%d)", ix, iy, iz)
				}
			}
		}
	}
}

func TestFreqIndexRoundTrip(t *testing.T) {
	for _, n := range []int{4, 5, 8, 9} {
		for k := 0; k < n; k++ {
			f := FreqIndex(k, n)
			if f < -n/2 || f > n/2 {
				t.Errorf("FreqIndex(%d,%d) = %d out of range", k, n, f)
			}
			if ArrayIndex(f, n) != k {
				t.Errorf("ArrayIndex(FreqIndex(%d,%d)) = %d", k, n, ArrayIndex(f, n))
			}
		}
	}
}

func TestLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Forward with wrong length did not panic")
		}
	}()
	NewPlan(8).Forward(make([]complex128, 7))
}

func BenchmarkFFTPow2_256(b *testing.B) {
	p := NewPlan(256)
	x := randomSignal(rand.New(rand.NewSource(1)), 256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Forward(x)
	}
}

func BenchmarkFFTBluestein_221(b *testing.B) {
	p := NewPlan(221)
	x := randomSignal(rand.New(rand.NewSource(1)), 221)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Forward(x)
	}
}

func BenchmarkFFT2D_64(b *testing.B) {
	p := NewPlan2D(64, 64)
	x := randomSignal(rand.New(rand.NewSource(1)), 64*64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Forward(x)
	}
}

func BenchmarkFFT3D_32(b *testing.B) {
	p := NewPlan3D(32, 32, 32)
	x := randomSignal(rand.New(rand.NewSource(1)), 32*32*32)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Forward(x)
	}
}

func TestRealForwardMatchesComplex(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	for _, n := range []int{2, 4, 8, 10, 16, 22, 64, 222} {
		x := make([]float64, n)
		for i := range x {
			x[i] = r.NormFloat64()
		}
		want := make([]complex128, n)
		for i, v := range x {
			want[i] = complex(v, 0)
		}
		Forward(want)
		got, err := RealForward(x)
		if err != nil {
			t.Fatal(err)
		}
		if d := maxDiff(got, want); d > 1e-9*float64(n) {
			t.Errorf("n=%d: real FFT deviates from complex by %g", n, d)
		}
	}
}

func TestRealPlanReuse(t *testing.T) {
	p, err := NewRealPlan(16)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 5; trial++ {
		x := make([]float64, 16)
		for i := range x {
			x[i] = r.NormFloat64()
		}
		want := make([]complex128, 16)
		for i, v := range x {
			want[i] = complex(v, 0)
		}
		Forward(want)
		got, err := p.Forward(x)
		if err != nil {
			t.Fatal(err)
		}
		if d := maxDiff(got, want); d > 1e-9 {
			t.Fatalf("trial %d: plan reuse broke (err %g)", trial, d)
		}
	}
}

func TestRealPlanValidation(t *testing.T) {
	if _, err := NewRealPlan(7); err == nil {
		t.Fatal("odd length accepted")
	}
	if _, err := NewRealPlan(0); err == nil {
		t.Fatal("zero length accepted")
	}
	p, _ := NewRealPlan(8)
	if _, err := p.Forward(make([]float64, 6)); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if p.Len() != 8 {
		t.Fatal("Len wrong")
	}
}

func BenchmarkRealFFT_256(b *testing.B) {
	p, _ := NewRealPlan(256)
	r := rand.New(rand.NewSource(1))
	x := make([]float64, 256)
	for i := range x {
		x[i] = r.NormFloat64()
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := p.Forward(x); err != nil {
			b.Fatal(err)
		}
	}
}
