package fft

import (
	"fmt"
	"math"
	"math/cmplx"
)

// RealPlan computes DFTs of real-valued signals of even length n using
// the classical packing trick: the n real samples are treated as n/2
// complex samples, transformed with a half-size complex FFT, and
// unpacked — roughly halving the work relative to a complex transform
// of the same length.
type RealPlan struct {
	n     int
	half  *Plan
	buf   []complex128
	twid  []complex128 // exp(−2πi·k/n) for the unpacking butterflies
	spect []complex128
}

// NewRealPlan creates a real-input transform plan for even length n.
func NewRealPlan(n int) (*RealPlan, error) {
	if n < 2 || n%2 != 0 {
		return nil, fmt.Errorf("fft: real plan length must be even and ≥ 2, got %d", n)
	}
	p := &RealPlan{
		n:     n,
		half:  NewPlan(n / 2),
		buf:   make([]complex128, n/2),
		twid:  make([]complex128, n/2),
		spect: make([]complex128, n),
	}
	for k := range p.twid {
		angle := -2 * math.Pi * float64(k) / float64(n)
		p.twid[k] = cmplx.Exp(complex(0, angle))
	}
	return p, nil
}

// Len returns the transform length.
func (p *RealPlan) Len() int { return p.n }

// Forward computes the full n-point DFT of the real signal x,
// returning all n complex coefficients (the upper half is the
// conjugate mirror of the lower half, as for any real signal). The
// returned slice is reused across calls; copy it if you need to keep
// it.
func (p *RealPlan) Forward(x []float64) ([]complex128, error) {
	if len(x) != p.n {
		return nil, fmt.Errorf("fft: real forward length %d, plan length %d", len(x), p.n)
	}
	h := p.n / 2
	for i := 0; i < h; i++ {
		p.buf[i] = complex(x[2*i], x[2*i+1])
	}
	p.half.Forward(p.buf)
	// Unpack: with Z = FFT(even + i·odd),
	//   E[k] = (Z[k] + conj(Z[(h−k) mod h]))/2
	//   O[k] = (Z[k] − conj(Z[(h−k) mod h]))/(2i)
	//   X[k] = E[k] + exp(−2πik/n)·O[k]        for k < h
	//   X[h] = E[0] − O[0]
	for k := 0; k < h; k++ {
		km := (h - k) % h
		zk, zkm := p.buf[k], cmplx.Conj(p.buf[km])
		e := (zk + zkm) / 2
		o := (zk - zkm) / complex(0, 2)
		p.spect[k] = e + p.twid[k]*o
	}
	e0 := (p.buf[0] + cmplx.Conj(p.buf[0])) / 2
	o0 := (p.buf[0] - cmplx.Conj(p.buf[0])) / complex(0, 2)
	p.spect[h] = e0 - o0
	// Upper half by Hermitian symmetry of a real signal's DFT.
	for k := h + 1; k < p.n; k++ {
		p.spect[k] = cmplx.Conj(p.spect[p.n-k])
	}
	return p.spect, nil
}

// RealForward is a convenience wrapper that allocates a fresh result.
func RealForward(x []float64) ([]complex128, error) {
	p, err := NewRealPlan(len(x))
	if err != nil {
		return nil, err
	}
	out, err := p.Forward(x)
	if err != nil {
		return nil, err
	}
	return append([]complex128(nil), out...), nil
}
