package fft

import (
	"fmt"
	"math"
	"math/cmplx"
)

// Real-input transforms. A real signal's DFT is Hermitian-symmetric
// (X[k] = conj(X[n−k])), which the plans here exploit two ways:
//
//   - 1-D (even n): the classical packing trick — treat the n real
//     samples as n/2 complex samples, transform with a half-size
//     complex FFT, and unpack with one butterfly pass.
//   - 2-D / 3-D (any lengths): transform the fastest axis two real
//     lines at a time through one complex FFT (pack line a as the real
//     part, line b as the imaginary part, split the spectra with the
//     conjugate-mirror identity), then run the remaining axes only
//     over the non-redundant half of that axis's frequencies and fill
//     the mirror half by Hermitian symmetry.
//
// Both halve the floating-point work relative to the equivalent
// complex transform while still producing the full spectrum in the
// standard layout, so callers (centred image/volume transforms in
// internal/fourier, the slab DFT in internal/parfft) can switch paths
// without touching any downstream indexing.

// realTables is the immutable shared state of the even-length packing
// trick: the unpack twiddles exp(−2πi·k/n). Cached globally like
// planTables so repeated NewRealPlan calls in hot loops cost only the
// per-plan scratch.
type realTables struct {
	n    int
	twid []complex128
}

func realTablesFor(n int) *realTables {
	s := shardFor(n)
	shard := &realCache[s]
	if v, ok := shard.Load(n); ok {
		realCacheHits.Inc(s)
		return v.(*realTables)
	}
	realCacheMisses.Inc(s)
	t := &realTables{n: n, twid: make([]complex128, n/2)}
	for k := range t.twid {
		angle := -2 * math.Pi * float64(k) / float64(n)
		t.twid[k] = cmplx.Exp(complex(0, angle))
	}
	v, _ := shard.LoadOrStore(n, t)
	return v.(*realTables)
}

// RealPlan computes DFTs of real-valued signals of even length n using
// the packing trick — roughly halving the work relative to a complex
// transform of the same length.
type RealPlan struct {
	*realTables
	half  *Plan
	buf   []complex128
	spect []complex128
}

// NewRealPlan creates a real-input transform plan for even length n.
func NewRealPlan(n int) (*RealPlan, error) {
	if n < 2 || n%2 != 0 {
		return nil, fmt.Errorf("fft: real plan length must be even and ≥ 2, got %d", n)
	}
	return &RealPlan{
		realTables: realTablesFor(n),
		half:       NewPlan(n / 2),
		buf:        make([]complex128, n/2),
		spect:      make([]complex128, n),
	}, nil
}

// Len returns the transform length.
func (p *RealPlan) Len() int { return p.n }

// Forward computes the full n-point DFT of the real signal x,
// returning all n complex coefficients (the upper half is the
// conjugate mirror of the lower half, as for any real signal). The
// returned slice is reused across calls; copy it if you need to keep
// it.
func (p *RealPlan) Forward(x []float64) ([]complex128, error) {
	if len(x) != p.n {
		return nil, fmt.Errorf("fft: real forward length %d, plan length %d", len(x), p.n)
	}
	h := p.n / 2
	for i := 0; i < h; i++ {
		p.buf[i] = complex(x[2*i], x[2*i+1])
	}
	p.half.Forward(p.buf)
	// Unpack: with Z = FFT(even + i·odd),
	//   E[k] = (Z[k] + conj(Z[(h−k) mod h]))/2
	//   O[k] = (Z[k] − conj(Z[(h−k) mod h]))/(2i)
	//   X[k] = E[k] + exp(−2πik/n)·O[k]        for k < h
	//   X[h] = E[0] − O[0]
	for k := 0; k < h; k++ {
		km := (h - k) % h
		zk, zkm := p.buf[k], cmplx.Conj(p.buf[km])
		e := (zk + zkm) / 2
		o := (zk - zkm) / complex(0, 2)
		p.spect[k] = e + p.twid[k]*o
	}
	e0 := (p.buf[0] + cmplx.Conj(p.buf[0])) / 2
	o0 := (p.buf[0] - cmplx.Conj(p.buf[0])) / complex(0, 2)
	p.spect[h] = e0 - o0
	// Upper half by Hermitian symmetry of a real signal's DFT.
	for k := h + 1; k < p.n; k++ {
		p.spect[k] = cmplx.Conj(p.spect[p.n-k])
	}
	return p.spect, nil
}

// Inverse recovers the real signal from its full n-point DFT spectrum
// (the inverse of Forward), writing the n samples into dst. Only the
// lower half of the spectrum is read; the upper half is assumed to be
// its Hermitian mirror, which holds for any spectrum of a real signal.
func (p *RealPlan) Inverse(spect []complex128, dst []float64) error {
	if len(spect) != p.n {
		return fmt.Errorf("fft: real inverse length %d, plan length %d", len(spect), p.n)
	}
	if len(dst) != p.n {
		return fmt.Errorf("fft: real inverse dst length %d, plan length %d", len(dst), p.n)
	}
	h := p.n / 2
	// Repack: invert the forward unpacking butterflies,
	//   E[k] = (X[k] + X[k+h])/2
	//   O[k] = conj(t_k)·(X[k] − X[k+h])/2
	//   Z[k] = E[k] + i·O[k],
	// then one half-size inverse FFT de-interleaves even/odd samples.
	for k := 0; k < h; k++ {
		xk, xkh := spect[k], spect[k+h]
		e := (xk + xkh) / 2
		o := cmplx.Conj(p.twid[k]) * (xk - xkh) / 2
		p.buf[k] = e + complex(0, 1)*o
	}
	p.half.Inverse(p.buf)
	for i := 0; i < h; i++ {
		dst[2*i] = real(p.buf[i])
		dst[2*i+1] = imag(p.buf[i])
	}
	return nil
}

// RealForward is a convenience wrapper that allocates a fresh result.
func RealForward(x []float64) ([]complex128, error) {
	p, err := NewRealPlan(len(x))
	if err != nil {
		return nil, err
	}
	out, err := p.Forward(x)
	if err != nil {
		return nil, err
	}
	return append([]complex128(nil), out...), nil
}

// RFFT computes the full DFT of a real signal of any length ≥ 1,
// using the halved-work packing path for even lengths and falling back
// to the complex transform for odd ones (where the single-signal
// packing trick does not apply). The result is freshly allocated.
func RFFT(x []float64) []complex128 {
	n := len(x)
	if n >= 2 && n%2 == 0 {
		out, err := RealForward(x)
		if err != nil {
			panic(err) // unreachable: length validated above
		}
		return out
	}
	out := make([]complex128, n)
	for i, v := range x {
		out[i] = complex(v, 0)
	}
	Forward(out)
	return out
}

// IRFFT inverts RFFT: given the full Hermitian spectrum of a real
// signal it returns the freshly allocated real samples.
func IRFFT(spect []complex128) []float64 {
	n := len(spect)
	dst := make([]float64, n)
	if n >= 2 && n%2 == 0 {
		p, err := NewRealPlan(n)
		if err == nil {
			if err := p.Inverse(spect, dst); err != nil {
				panic(err) // unreachable: lengths validated above
			}
			return dst
		}
	}
	buf := append([]complex128(nil), spect...)
	Inverse(buf)
	for i, v := range buf {
		dst[i] = real(v)
	}
	return dst
}

// splitPair separates the spectra of two real signals transformed
// together as Z = FFT(a + i·b) of length n:
//
//	A[k] = (Z[k] + conj(Z[(n−k) mod n]))/2
//	B[k] = (Z[k] − conj(Z[(n−k) mod n]))/(2i)
//
// writing A into dstA and B into dstB.
func splitPair(z, dstA, dstB []complex128) {
	n := len(z)
	for k := 0; k < n; k++ {
		km := (n - k) % n
		zk, zkm := z[k], cmplx.Conj(z[km])
		dstA[k] = (zk + zkm) / 2
		dstB[k] = (zk - zkm) / complex(0, 2)
	}
}

// RealPlan2D computes the full 2-D DFT of a real nx×ny array (row
// major, y fastest — the layout of Plan2D) in roughly half the
// floating-point work of the complex transform: rows are transformed
// two at a time through one complex FFT, then only columns iy ≤ ny/2
// are transformed along x and the rest filled by Hermitian symmetry.
// Works for any lengths, including the paper's odd 221 and 511. Not
// safe for concurrent use (private scratch); each goroutine should own
// one.
type RealPlan2D struct {
	nx, ny int
	px, py *Plan
	rowbuf []complex128 // packed row pair
	col    []complex128
}

// NewRealPlan2D creates a real-input plan for nx×ny transforms.
func NewRealPlan2D(nx, ny int) *RealPlan2D {
	return &RealPlan2D{
		nx: nx, ny: ny,
		px: NewPlan(nx), py: NewPlan(ny),
		rowbuf: make([]complex128, ny),
		col:    make([]complex128, nx),
	}
}

// Forward computes the full 2-D DFT of the real array src into dst.
// Both must have length nx·ny; dst is fully overwritten.
func (p *RealPlan2D) Forward(src []float64, dst []complex128) {
	nx, ny := p.nx, p.ny
	if len(src) != nx*ny || len(dst) != nx*ny {
		panic(fmt.Sprintf("fft: real 2-D data length %d/%d, want %d×%d", len(src), len(dst), nx, ny))
	}
	// Rows along y, two real rows per complex transform.
	ix := 0
	for ; ix+1 < nx; ix += 2 {
		a := src[ix*ny : (ix+1)*ny]
		b := src[(ix+1)*ny : (ix+2)*ny]
		for j := 0; j < ny; j++ {
			p.rowbuf[j] = complex(a[j], b[j])
		}
		p.py.Forward(p.rowbuf)
		splitPair(p.rowbuf, dst[ix*ny:(ix+1)*ny], dst[(ix+1)*ny:(ix+2)*ny])
	}
	if ix < nx { // leftover row of an odd nx
		row := dst[ix*ny : (ix+1)*ny]
		for j, v := range src[ix*ny : (ix+1)*ny] {
			row[j] = complex(v, 0)
		}
		p.py.Forward(row)
	}
	// Columns along x, only the non-redundant half 0..ny/2.
	hy := ny / 2
	for iy := 0; iy <= hy; iy++ {
		for i := 0; i < nx; i++ {
			p.col[i] = dst[i*ny+iy]
		}
		p.px.Forward(p.col)
		for i := 0; i < nx; i++ {
			dst[i*ny+iy] = p.col[i]
		}
	}
	// Mirror half by Hermitian symmetry:
	// X[ix,iy] = conj(X[(−ix) mod nx, (−iy) mod ny]).
	for i := 0; i < nx; i++ {
		im := 0
		if i > 0 {
			im = nx - i
		}
		for iy := hy + 1; iy < ny; iy++ {
			dst[i*ny+iy] = cmplx.Conj(dst[im*ny+ny-iy])
		}
	}
}

// RealPlan3D computes the full 3-D DFT of a real nx×ny×nz array (row
// major, z fastest — the layout of Plan3D) in roughly half the
// floating-point work of the complex transform: z-lines are
// transformed two at a time, the y and x passes run only over z
// frequencies iz ≤ nz/2, and the mirror half is filled by Hermitian
// symmetry. Not safe for concurrent use.
type RealPlan3D struct {
	nx, ny, nz int
	px, py, pz *Plan
	zbuf       []complex128 // packed z-line pair
	line       []complex128
}

// NewRealPlan3D creates a real-input plan for nx×ny×nz transforms.
func NewRealPlan3D(nx, ny, nz int) *RealPlan3D {
	m := nx
	if ny > m {
		m = ny
	}
	return &RealPlan3D{
		nx: nx, ny: ny, nz: nz,
		px: NewPlan(nx), py: NewPlan(ny), pz: NewPlan(nz),
		zbuf: make([]complex128, nz),
		line: make([]complex128, m),
	}
}

// Forward computes the full 3-D DFT of the real array src into dst.
// Both must have length nx·ny·nz; dst is fully overwritten.
func (p *RealPlan3D) Forward(src []float64, dst []complex128) {
	nx, ny, nz := p.nx, p.ny, p.nz
	if len(src) != nx*ny*nz || len(dst) != nx*ny*nz {
		panic(fmt.Sprintf("fft: real 3-D data length %d/%d, want %d×%d×%d", len(src), len(dst), nx, ny, nz))
	}
	// z-lines are contiguous; transform them in real pairs.
	lines := nx * ny
	li := 0
	for ; li+1 < lines; li += 2 {
		a := src[li*nz : (li+1)*nz]
		b := src[(li+1)*nz : (li+2)*nz]
		for j := 0; j < nz; j++ {
			p.zbuf[j] = complex(a[j], b[j])
		}
		p.pz.Forward(p.zbuf)
		splitPair(p.zbuf, dst[li*nz:(li+1)*nz], dst[(li+1)*nz:(li+2)*nz])
	}
	if li < lines {
		zline := dst[li*nz : (li+1)*nz]
		for j, v := range src[li*nz : (li+1)*nz] {
			zline[j] = complex(v, 0)
		}
		p.pz.Forward(zline)
	}
	hz := nz / 2
	// y lines: stride nz within an x-plane, z frequencies 0..hz only.
	line := p.line[:ny]
	for ix := 0; ix < nx; ix++ {
		base := ix * ny * nz
		for iz := 0; iz <= hz; iz++ {
			for iy := 0; iy < ny; iy++ {
				line[iy] = dst[base+iy*nz+iz]
			}
			p.py.Forward(line)
			for iy := 0; iy < ny; iy++ {
				dst[base+iy*nz+iz] = line[iy]
			}
		}
	}
	// x lines: stride ny·nz, z frequencies 0..hz only.
	line = p.line[:nx]
	for iy := 0; iy < ny; iy++ {
		for iz := 0; iz <= hz; iz++ {
			off := iy*nz + iz
			for ix := 0; ix < nx; ix++ {
				line[ix] = dst[ix*ny*nz+off]
			}
			p.px.Forward(line)
			for ix := 0; ix < nx; ix++ {
				dst[ix*ny*nz+off] = line[ix]
			}
		}
	}
	// Mirror half by Hermitian symmetry:
	// X[ix,iy,iz] = conj(X[(−ix) mod nx, (−iy) mod ny, (−iz) mod nz]).
	for ix := 0; ix < nx; ix++ {
		ixm := 0
		if ix > 0 {
			ixm = nx - ix
		}
		for iy := 0; iy < ny; iy++ {
			iym := 0
			if iy > 0 {
				iym = ny - iy
			}
			fwd := (ix*ny + iy) * nz
			mir := (ixm*ny + iym) * nz
			for iz := hz + 1; iz < nz; iz++ {
				dst[fwd+iz] = cmplx.Conj(dst[mir+nz-iz])
			}
		}
	}
}
