// Package fft implements the discrete Fourier transforms used by the
// orientation-refinement pipeline: 1-D complex FFTs of any length
// (iterative radix-2 Cooley–Tukey for powers of two, Bluestein's
// chirp-z algorithm otherwise), and separable 2-D and 3-D transforms
// built on them. Everything is written against the standard library
// only.
//
// Conventions. Forward transforms are unnormalized,
//
//	X[k] = Σ_n x[n]·exp(−2πi·kn/N),
//
// and Inverse applies the conjugate kernel scaled by 1/N, so
// Inverse(Forward(x)) == x. Frequencies are stored in the usual DFT
// layout: index k holds frequency k for k ≤ N/2 and k−N above.
//
// Plan setup is cached globally: the twiddle factors, bit-reversal
// permutation and Bluestein chirp filter for each length are computed
// once per process and shared (immutably) by every Plan of that
// length, so repeated NewPlan/NewPlan2D/NewPlan3D calls in hot loops
// cost only the per-plan scratch allocation.
package fft

import (
	"fmt"
	"math"
	"math/bits"
	"math/cmplx"
	"sync"
)

// planTables is the immutable precomputed state for transforms of one
// length: twiddle factors, the bit-reversal permutation and — for
// non-power-of-two lengths — the Bluestein chirp and its transform.
// Tables are built once per length and shared by every Plan through
// the global cache; nothing mutates them after construction, which is
// what makes the sharing safe across goroutines.
type planTables struct {
	n       int
	pow2    bool
	twiddle []complex128 // radix-2 twiddles for size n (or the inner pow-2 size)
	rev     []int        // bit-reversal permutation

	// Bluestein state (nil when n is a power of two).
	bn    int          // convolution length, power of two ≥ 2n−1
	chirp []complex128 // exp(−iπ k²/n)
	bfft  []complex128 // FFT of the chirp filter, precomputed
	inner *planTables  // pow-2 tables of size bn
}

// The size-keyed caches are sharded by length so that concurrent
// first-use storms from many workers (per-plane plans in the parallel
// slab DFT, per-view plans in the streaming pipeline) spread their
// LoadOrStore traffic over independent sync.Maps instead of contending
// on one. Steady-state lookups are lock-free reads either way; the
// shards matter during warm-up, which is exactly when a pool of
// workers all request the same handful of lengths at once.
const cacheShards = 16

// planCache maps transform length to its shared *planTables.
var planCache [cacheShards]sync.Map

// realCache maps even transform length to its shared *realTables
// (the unpack twiddles of the real-input path).
var realCache [cacheShards]sync.Map

func shardFor(n int) int {
	// Fibonacci hash: the top 4 bits of n·φ32 spread consecutive and
	// same-parity lengths across all 16 shards.
	return int((uint32(n) * 0x9E3779B1) >> 28)
}

// tablesFor returns the shared tables for length n, building them on
// first use. Concurrent first calls may build duplicate tables; only
// one wins the LoadOrStore and the rest are discarded.
func tablesFor(n int) *planTables {
	s := shardFor(n)
	shard := &planCache[s]
	if v, ok := shard.Load(n); ok {
		planCacheHits.Inc(s)
		return v.(*planTables)
	}
	planCacheMisses.Inc(s)
	t := buildTables(n)
	v, _ := shard.LoadOrStore(n, t)
	return v.(*planTables)
}

// CachedPlanSizes reports how many distinct transform lengths are in
// the global plan cache (diagnostics and tests).
func CachedPlanSizes() int {
	n := 0
	for i := range planCache {
		planCache[i].Range(func(_, _ interface{}) bool { n++; return true })
	}
	return n
}

func buildTables(n int) *planTables {
	t := &planTables{n: n, pow2: n&(n-1) == 0}
	if t.pow2 {
		t.initPow2(n)
		return t
	}
	// Bluestein: x̂ = chirp ⊛ (x·chirp) scaled by conj chirp.
	t.bn = 1
	for t.bn < 2*n-1 {
		t.bn <<= 1
	}
	t.chirp = make([]complex128, n)
	for k := 0; k < n; k++ {
		// Use k² mod 2n to avoid precision loss for large k.
		kk := (int64(k) * int64(k)) % int64(2*n)
		angle := -math.Pi * float64(kk) / float64(n)
		t.chirp[k] = cmplx.Exp(complex(0, angle))
	}
	t.inner = tablesFor(t.bn)
	b := make([]complex128, t.bn)
	b[0] = cmplx.Conj(t.chirp[0])
	for k := 1; k < n; k++ {
		c := cmplx.Conj(t.chirp[k])
		b[k] = c
		b[t.bn-k] = c
	}
	t.inner.forwardPow2(b)
	t.bfft = b
	return t
}

func (t *planTables) initPow2(n int) {
	t.twiddle = make([]complex128, n/2)
	for k := range t.twiddle {
		angle := -2 * math.Pi * float64(k) / float64(n)
		t.twiddle[k] = cmplx.Exp(complex(0, angle))
	}
	t.rev = make([]int, n)
	shift := 64 - uint(bits.TrailingZeros(uint(n)))
	if n == 1 {
		shift = 64
	}
	for i := range t.rev {
		t.rev[i] = int(bits.Reverse64(uint64(i)) >> shift)
	}
}

// Plan caches twiddle factors and scratch space for transforms of a
// fixed length. The immutable tables come from the global cache, so a
// Plan is cheap to create and reuse; it is not safe for concurrent use
// (each goroutine should own one) because of its private scratch.
type Plan struct {
	*planTables
	ascr []complex128 // Bluestein convolution scratch (nil for pow-2)
}

// NewPlan creates a transform plan for length n ≥ 1.
func NewPlan(n int) *Plan {
	if n < 1 {
		panic(fmt.Sprintf("fft: invalid length %d", n))
	}
	p := &Plan{planTables: tablesFor(n)}
	if !p.pow2 {
		p.ascr = make([]complex128, p.bn)
	}
	return p
}

// Len returns the transform length of the plan.
func (p *Plan) Len() int { return p.n }

// Forward computes the in-place forward DFT of x, which must have
// length Plan.Len.
func (p *Plan) Forward(x []complex128) {
	if len(x) != p.n {
		panic(fmt.Sprintf("fft: Forward length %d, plan length %d", len(x), p.n))
	}
	if p.pow2 {
		p.forwardPow2(x)
		return
	}
	p.bluestein(x)
}

// Inverse computes the in-place inverse DFT of x (conjugate kernel,
// scaled by 1/N).
func (p *Plan) Inverse(x []complex128) {
	if len(x) != p.n {
		panic(fmt.Sprintf("fft: Inverse length %d, plan length %d", len(x), p.n))
	}
	for i := range x {
		x[i] = cmplx.Conj(x[i])
	}
	p.Forward(x)
	scale := complex(1/float64(p.n), 0)
	for i := range x {
		x[i] = cmplx.Conj(x[i]) * scale
	}
}

// forwardPow2 is the iterative radix-2 Cooley–Tukey kernel. It reads
// only the immutable tables, so shared tables may execute it
// concurrently on distinct data.
func (t *planTables) forwardPow2(x []complex128) {
	n := len(x)
	if n == 1 {
		return
	}
	for i, j := range t.rev {
		if i < j {
			x[i], x[j] = x[j], x[i]
		}
	}
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		stride := n / size
		for start := 0; start < n; start += size {
			tw := 0
			for k := start; k < start+half; k++ {
				w := t.twiddle[tw]
				a, b := x[k], x[k+half]*w
				x[k], x[k+half] = a+b, a-b
				tw += stride
			}
		}
	}
}

// bluestein computes an arbitrary-length DFT via chirp-z convolution.
func (p *Plan) bluestein(x []complex128) {
	n, bn := p.n, p.bn
	a := p.ascr
	for i := range a {
		a[i] = 0
	}
	for k := 0; k < n; k++ {
		a[k] = x[k] * p.chirp[k]
	}
	p.inner.forwardPow2(a)
	for i := 0; i < bn; i++ {
		a[i] *= p.bfft[i]
	}
	// Inverse pow-2 transform of a.
	for i := range a {
		a[i] = cmplx.Conj(a[i])
	}
	p.inner.forwardPow2(a)
	scale := complex(1/float64(bn), 0)
	for k := 0; k < n; k++ {
		x[k] = cmplx.Conj(a[k]*scale) * p.chirp[k]
	}
}

// Forward computes the forward DFT of x in place using a throwaway
// plan. Prefer a Plan for repeated transforms.
func Forward(x []complex128) { NewPlan(len(x)).Forward(x) }

// Inverse computes the inverse DFT of x in place using a throwaway
// plan.
func Inverse(x []complex128) { NewPlan(len(x)).Inverse(x) }
