// Package fft implements the discrete Fourier transforms used by the
// orientation-refinement pipeline: 1-D complex FFTs of any length
// (iterative radix-2 Cooley–Tukey for powers of two, Bluestein's
// chirp-z algorithm otherwise), and separable 2-D and 3-D transforms
// built on them. Everything is written against the standard library
// only.
//
// Conventions. Forward transforms are unnormalized,
//
//	X[k] = Σ_n x[n]·exp(−2πi·kn/N),
//
// and Inverse applies the conjugate kernel scaled by 1/N, so
// Inverse(Forward(x)) == x. Frequencies are stored in the usual DFT
// layout: index k holds frequency k for k ≤ N/2 and k−N above.
package fft

import (
	"fmt"
	"math"
	"math/bits"
	"math/cmplx"
)

// Plan caches twiddle factors and scratch space for transforms of a
// fixed length. A Plan is cheap to reuse and amortizes all setup; it
// is not safe for concurrent use (each goroutine should own one).
type Plan struct {
	n       int
	pow2    bool
	twiddle []complex128 // radix-2 twiddles for size n (or the inner pow-2 size)
	rev     []int        // bit-reversal permutation

	// Bluestein state (nil when n is a power of two).
	bn     int          // convolution length, power of two ≥ 2n−1
	chirp  []complex128 // exp(−iπ k²/n)
	bfft   []complex128 // FFT of the chirp filter, precomputed
	ascr   []complex128 // scratch
	inner  *Plan        // pow-2 plan of size bn
	invTmp []complex128 // scratch for inverse via conjugation
}

// NewPlan creates a transform plan for length n ≥ 1.
func NewPlan(n int) *Plan {
	if n < 1 {
		panic(fmt.Sprintf("fft: invalid length %d", n))
	}
	p := &Plan{n: n, pow2: n&(n-1) == 0}
	if p.pow2 {
		p.initPow2(n)
		return p
	}
	// Bluestein: x̂ = chirp ⊛ (x·chirp) scaled by conj chirp.
	p.bn = 1
	for p.bn < 2*n-1 {
		p.bn <<= 1
	}
	p.chirp = make([]complex128, n)
	for k := 0; k < n; k++ {
		// Use k² mod 2n to avoid precision loss for large k.
		kk := (int64(k) * int64(k)) % int64(2*n)
		angle := -math.Pi * float64(kk) / float64(n)
		p.chirp[k] = cmplx.Exp(complex(0, angle))
	}
	p.inner = NewPlan(p.bn)
	b := make([]complex128, p.bn)
	b[0] = cmplx.Conj(p.chirp[0])
	for k := 1; k < n; k++ {
		c := cmplx.Conj(p.chirp[k])
		b[k] = c
		b[p.bn-k] = c
	}
	p.inner.forwardPow2(b)
	p.bfft = b
	p.ascr = make([]complex128, p.bn)
	p.invTmp = make([]complex128, n)
	return p
}

func (p *Plan) initPow2(n int) {
	p.twiddle = make([]complex128, n/2)
	for k := range p.twiddle {
		angle := -2 * math.Pi * float64(k) / float64(n)
		p.twiddle[k] = cmplx.Exp(complex(0, angle))
	}
	p.rev = make([]int, n)
	shift := 64 - uint(bits.TrailingZeros(uint(n)))
	if n == 1 {
		shift = 64
	}
	for i := range p.rev {
		p.rev[i] = int(bits.Reverse64(uint64(i)) >> shift)
	}
}

// Len returns the transform length of the plan.
func (p *Plan) Len() int { return p.n }

// Forward computes the in-place forward DFT of x, which must have
// length Plan.Len.
func (p *Plan) Forward(x []complex128) {
	if len(x) != p.n {
		panic(fmt.Sprintf("fft: Forward length %d, plan length %d", len(x), p.n))
	}
	if p.pow2 {
		p.forwardPow2(x)
		return
	}
	p.bluestein(x)
}

// Inverse computes the in-place inverse DFT of x (conjugate kernel,
// scaled by 1/N).
func (p *Plan) Inverse(x []complex128) {
	if len(x) != p.n {
		panic(fmt.Sprintf("fft: Inverse length %d, plan length %d", len(x), p.n))
	}
	for i := range x {
		x[i] = cmplx.Conj(x[i])
	}
	p.Forward(x)
	scale := complex(1/float64(p.n), 0)
	for i := range x {
		x[i] = cmplx.Conj(x[i]) * scale
	}
}

// forwardPow2 is the iterative radix-2 Cooley–Tukey kernel.
func (p *Plan) forwardPow2(x []complex128) {
	n := len(x)
	if n == 1 {
		return
	}
	for i, j := range p.rev {
		if i < j {
			x[i], x[j] = x[j], x[i]
		}
	}
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		stride := n / size
		for start := 0; start < n; start += size {
			tw := 0
			for k := start; k < start+half; k++ {
				w := p.twiddle[tw]
				a, b := x[k], x[k+half]*w
				x[k], x[k+half] = a+b, a-b
				tw += stride
			}
		}
	}
}

// bluestein computes an arbitrary-length DFT via chirp-z convolution.
func (p *Plan) bluestein(x []complex128) {
	n, bn := p.n, p.bn
	a := p.ascr
	for i := range a {
		a[i] = 0
	}
	for k := 0; k < n; k++ {
		a[k] = x[k] * p.chirp[k]
	}
	p.inner.forwardPow2(a)
	for i := 0; i < bn; i++ {
		a[i] *= p.bfft[i]
	}
	// Inverse pow-2 transform of a.
	for i := range a {
		a[i] = cmplx.Conj(a[i])
	}
	p.inner.forwardPow2(a)
	scale := complex(1/float64(bn), 0)
	for k := 0; k < n; k++ {
		x[k] = cmplx.Conj(a[k]*scale) * p.chirp[k]
	}
}

// Forward computes the forward DFT of x in place using a throwaway
// plan. Prefer a Plan for repeated transforms.
func Forward(x []complex128) { NewPlan(len(x)).Forward(x) }

// Inverse computes the inverse DFT of x in place using a throwaway
// plan.
func Inverse(x []complex128) { NewPlan(len(x)).Inverse(x) }
