package fft

import (
	"math"
	"math/cmplx"
	"math/rand"
	"sync"
	"testing"
)

func randomReal(r *rand.Rand, n int) []float64 {
	x := make([]float64, n)
	for i := range x {
		x[i] = r.NormFloat64()
	}
	return x
}

// complexOracle2D transforms a real array through the complex 2-D
// path, the reference the Hermitian-symmetry plans are pinned against.
func complexOracle2D(src []float64, nx, ny int) []complex128 {
	out := make([]complex128, len(src))
	for i, v := range src {
		out[i] = complex(v, 0)
	}
	NewPlan2D(nx, ny).Forward(out)
	return out
}

func complexOracle3D(src []float64, nx, ny, nz int) []complex128 {
	out := make([]complex128, len(src))
	for i, v := range src {
		out[i] = complex(v, 0)
	}
	NewPlan3D(nx, ny, nz).Forward(out)
	return out
}

// maxRel returns the largest coefficient deviation relative to the
// spectrum's peak magnitude.
func maxRel(got, want []complex128) float64 {
	var peak, worst float64
	for _, w := range want {
		if a := cmplx.Abs(w); a > peak {
			peak = a
		}
	}
	if peak == 0 {
		peak = 1
	}
	for i := range got {
		if d := cmplx.Abs(got[i] - want[i]); d/peak > worst {
			worst = d / peak
		}
	}
	return worst
}

// TestRealPlan2DMatchesComplex pins the Hermitian 2-D path to the
// complex oracle at ≤1e-12 relative across even, odd, mixed,
// degenerate and prime shapes.
func TestRealPlan2DMatchesComplex(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	for _, d := range [][2]int{
		{4, 4}, {8, 8}, {16, 16}, {32, 32}, // pow-2
		{5, 7}, {9, 15}, {21, 21}, {13, 11}, // odd/prime (Bluestein)
		{8, 6}, {6, 9}, {10, 21}, {17, 16}, // mixed parity
		{1, 9}, {3, 1}, {1, 1}, {2, 2}, // degenerate
	} {
		nx, ny := d[0], d[1]
		src := randomReal(r, nx*ny)
		want := complexOracle2D(src, nx, ny)
		got := make([]complex128, nx*ny)
		NewRealPlan2D(nx, ny).Forward(src, got)
		if rel := maxRel(got, want); rel > 1e-12 {
			t.Errorf("%d×%d: real path deviates from complex by %g (rel)", nx, ny, rel)
		}
	}
}

// TestRealPlan3DMatchesComplex pins the Hermitian 3-D path the same
// way.
func TestRealPlan3DMatchesComplex(t *testing.T) {
	r := rand.New(rand.NewSource(22))
	for _, d := range [][3]int{
		{4, 4, 4}, {8, 8, 8}, {16, 16, 16},
		{3, 5, 7}, {9, 9, 9}, {5, 5, 5},
		{6, 2, 9}, {2, 3, 1}, {1, 1, 1}, {4, 7, 10},
	} {
		nx, ny, nz := d[0], d[1], d[2]
		src := randomReal(r, nx*ny*nz)
		want := complexOracle3D(src, nx, ny, nz)
		got := make([]complex128, nx*ny*nz)
		NewRealPlan3D(nx, ny, nz).Forward(src, got)
		if rel := maxRel(got, want); rel > 1e-12 {
			t.Errorf("%d×%d×%d: real path deviates from complex by %g (rel)", nx, ny, nz, rel)
		}
	}
}

// TestRealPlan2DReuse: repeated transforms through one plan must not
// contaminate each other via the shared scratch.
func TestRealPlan2DReuse(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	p := NewRealPlan2D(12, 10)
	for trial := 0; trial < 4; trial++ {
		src := randomReal(r, 12*10)
		want := complexOracle2D(src, 12, 10)
		got := make([]complex128, 12*10)
		p.Forward(src, got)
		if rel := maxRel(got, want); rel > 1e-12 {
			t.Fatalf("trial %d: plan reuse broke (rel %g)", trial, rel)
		}
	}
}

// TestRealPlanInverseRoundTrip: Forward→Inverse must reproduce the
// signal through the packed real path.
func TestRealPlanInverseRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(24))
	for _, n := range []int{2, 4, 10, 16, 64, 222} {
		x := randomReal(r, n)
		p, err := NewRealPlan(n)
		if err != nil {
			t.Fatal(err)
		}
		spect, err := p.Forward(x)
		if err != nil {
			t.Fatal(err)
		}
		back := make([]float64, n)
		if err := p.Inverse(spect, back); err != nil {
			t.Fatal(err)
		}
		for i := range x {
			if math.Abs(x[i]-back[i]) > 1e-11 {
				t.Fatalf("n=%d sample %d: %g vs %g", n, i, x[i], back[i])
			}
		}
	}
	// Validation errors.
	p, _ := NewRealPlan(8)
	if err := p.Inverse(make([]complex128, 6), make([]float64, 8)); err == nil {
		t.Fatal("spectrum length mismatch accepted")
	}
	if err := p.Inverse(make([]complex128, 8), make([]float64, 6)); err == nil {
		t.Fatal("dst length mismatch accepted")
	}
}

// TestRFFTIRFFTAllLengths covers the convenience pair over even, odd
// and prime lengths: RFFT must agree with the complex transform and
// IRFFT must invert it.
func TestRFFTIRFFTAllLengths(t *testing.T) {
	r := rand.New(rand.NewSource(25))
	for _, n := range []int{1, 2, 3, 5, 7, 8, 9, 16, 17, 97, 221, 222} {
		x := randomReal(r, n)
		want := make([]complex128, n)
		for i, v := range x {
			want[i] = complex(v, 0)
		}
		Forward(want)
		got := RFFT(x)
		if rel := maxRel(got, want); rel > 1e-12 {
			t.Errorf("n=%d: RFFT deviates by %g (rel)", n, rel)
		}
		back := IRFFT(got)
		for i := range x {
			if math.Abs(x[i]-back[i]) > 1e-10 {
				t.Fatalf("n=%d: IRFFT sample %d: %g vs %g", n, i, x[i], back[i])
			}
		}
	}
}

// TestRealTablesShared: real plans of one length must share the cached
// unpack twiddles, like complex plans share planTables.
func TestRealTablesShared(t *testing.T) {
	a, _ := NewRealPlan(48)
	b, _ := NewRealPlan(48)
	if a.realTables != b.realTables {
		t.Fatal("real plans built distinct table sets")
	}
	if &a.buf[0] == &b.buf[0] {
		t.Fatal("real plans share mutable scratch")
	}
}

// TestPlanCacheShardedConcurrent hammers many distinct lengths from
// many goroutines through both caches at once; run under -race this
// gates the sharded cache against construction races.
func TestPlanCacheShardedConcurrent(t *testing.T) {
	lengths := []int{30, 34, 38, 42, 46, 50, 54, 58, 62, 66, 70, 74}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for _, n := range lengths {
				x := randomReal(r, n)
				p, err := NewRealPlan(n)
				if err != nil {
					t.Error(err)
					return
				}
				spect, err := p.Forward(x)
				if err != nil {
					t.Error(err)
					return
				}
				back := make([]float64, n)
				if err := p.Inverse(spect, back); err != nil {
					t.Error(err)
					return
				}
				for i := range x {
					if math.Abs(x[i]-back[i]) > 1e-10 {
						t.Error("round trip corrupted under concurrency")
						return
					}
				}
			}
		}(int64(g + 1))
	}
	wg.Wait()
}

// BenchmarkNewPlanParallel measures concurrent plan construction for a
// cached length across GOMAXPROCS goroutines — the warm-up pattern of
// the parallel slab DFT and the streaming pipeline. With the sharded
// lock-free cache this must scale, not serialize.
func BenchmarkNewPlanParallel(b *testing.B) {
	NewPlan(256)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			_ = NewPlan(256)
		}
	})
}

// BenchmarkNewPlanParallelMixed exercises distinct lengths per
// goroutine so shards are hit in parallel.
func BenchmarkNewPlanParallelMixed(b *testing.B) {
	lengths := []int{64, 128, 221, 243, 256, 509, 512, 1024}
	for _, n := range lengths {
		NewPlan(n)
	}
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			_ = NewPlan(lengths[i&7])
			i++
		}
	})
}

// BenchmarkRealFFT2D_64 vs BenchmarkFFT2D_64Complex measure the
// real-input speedup on a view-sized 2-D transform.
func BenchmarkRealFFT2D_64(b *testing.B) {
	const l = 64
	r := rand.New(rand.NewSource(3))
	src := randomReal(r, l*l)
	dst := make([]complex128, l*l)
	p := NewRealPlan2D(l, l)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Forward(src, dst)
	}
}

func BenchmarkFFT2D_64Complex(b *testing.B) {
	const l = 64
	r := rand.New(rand.NewSource(3))
	src := randomReal(r, l*l)
	work := make([]complex128, l*l)
	p := NewPlan2D(l, l)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j, v := range src {
			work[j] = complex(v, 0)
		}
		p.Forward(work)
	}
}

// BenchmarkRealFFT3D_32 vs BenchmarkFFT3D_32Complex measure the same
// on a map-sized 3-D transform.
func BenchmarkRealFFT3D_32(b *testing.B) {
	const l = 32
	r := rand.New(rand.NewSource(4))
	src := randomReal(r, l*l*l)
	dst := make([]complex128, l*l*l)
	p := NewRealPlan3D(l, l, l)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Forward(src, dst)
	}
}

func BenchmarkFFT3D_32Complex(b *testing.B) {
	const l = 32
	r := rand.New(rand.NewSource(4))
	src := randomReal(r, l*l*l)
	work := make([]complex128, l*l*l)
	p := NewPlan3D(l, l, l)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j, v := range src {
			work[j] = complex(v, 0)
		}
		p.Forward(work)
	}
}
