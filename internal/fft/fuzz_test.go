package fft

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

// FuzzFFTRoundTrip drives forward+inverse round trips over fuzzer-
// chosen lengths (clamped to [1, 1024], so primes and other Bluestein
// lengths are reachable) and fuzzer-seeded data, for both the complex
// path and the real-input path. The seed corpus pins powers of two,
// primes (including the paper's 221 and 511), and degenerate lengths;
// `go test` replays the corpus, `go test -fuzz=FuzzFFTRoundTrip`
// explores.
func FuzzFFTRoundTrip(f *testing.F) {
	for _, seed := range [][2]uint64{
		{1, 1}, {2, 2}, {4, 3}, {16, 4}, {64, 5}, {1024, 6}, // powers of two
		{3, 7}, {7, 8}, {97, 9}, {221, 10}, {511, 11}, {509, 12}, // Bluestein, incl. paper sizes
		{6, 13}, {10, 14}, {222, 15}, {100, 16}, // even composites (packed real path)
	} {
		f.Add(seed[0], seed[1])
	}
	f.Fuzz(func(t *testing.T, rawN, dataSeed uint64) {
		n := int(rawN%1024) + 1
		r := rand.New(rand.NewSource(int64(dataSeed)))

		// Complex round trip.
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(r.NormFloat64(), r.NormFloat64())
		}
		work := append([]complex128(nil), x...)
		p := NewPlan(n)
		p.Forward(work)
		p.Inverse(work)
		tol := 1e-9 * float64(n)
		for i := range x {
			if cmplx.Abs(work[i]-x[i]) > tol {
				t.Fatalf("complex round trip n=%d sample %d: |Δ|=%g", n, i, cmplx.Abs(work[i]-x[i]))
			}
		}

		// Real round trip via RFFT/IRFFT (covers the packed even path
		// and the odd fallback).
		xr := make([]float64, n)
		for i := range xr {
			xr[i] = r.NormFloat64()
		}
		back := IRFFT(RFFT(xr))
		for i := range xr {
			if math.Abs(back[i]-xr[i]) > tol {
				t.Fatalf("real round trip n=%d sample %d: |Δ|=%g", n, i, math.Abs(back[i]-xr[i]))
			}
		}

		// RFFT must agree with the complex forward on the same data.
		ref := make([]complex128, n)
		for i, v := range xr {
			ref[i] = complex(v, 0)
		}
		Forward(ref)
		got := RFFT(xr)
		var peak float64
		for _, w := range ref {
			if a := cmplx.Abs(w); a > peak {
				peak = a
			}
		}
		if peak == 0 {
			peak = 1
		}
		for i := range got {
			if cmplx.Abs(got[i]-ref[i]) > 1e-9*peak {
				t.Fatalf("real vs complex forward n=%d coeff %d: |Δ|=%g", n, i, cmplx.Abs(got[i]-ref[i]))
			}
		}
	})
}
