package fft

import (
	"math"
	"math/cmplx"
	"math/rand"
	"sync"
	"testing"
)

// TestPlansShareTables: two plans of the same length must share the
// same immutable table set (the whole point of the global cache).
func TestPlansShareTables(t *testing.T) {
	for _, n := range []int{16, 221} {
		a, b := NewPlan(n), NewPlan(n)
		if a.planTables != b.planTables {
			t.Fatalf("n=%d: plans built distinct table sets", n)
		}
		if !a.pow2 {
			if &a.ascr[0] == &b.ascr[0] {
				t.Fatalf("n=%d: plans share mutable Bluestein scratch", n)
			}
		}
	}
}

// TestCachedPlanSizesGrows: requesting a fresh odd length adds exactly
// its tables (plus the inner power-of-two Bluestein length, which may
// itself already be cached).
func TestCachedPlanSizesGrows(t *testing.T) {
	before := CachedPlanSizes()
	NewPlan(997) // prime, certainly Bluestein
	after := CachedPlanSizes()
	if after <= before {
		t.Fatalf("cache did not grow: %d -> %d", before, after)
	}
	NewPlan(997)
	if CachedPlanSizes() != after {
		t.Fatal("repeated NewPlan of a cached length grew the cache")
	}
}

// TestConcurrentPlansCorrect hammers the cache from many goroutines on
// first use of several lengths, each verifying a known transform —
// catching both table races and scratch sharing (run under -race).
func TestConcurrentPlansCorrect(t *testing.T) {
	lengths := []int{64, 96, 128, 221, 243, 509}
	const goroutines = 8
	var wg sync.WaitGroup
	errs := make(chan string, goroutines*len(lengths))
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for _, n := range lengths {
				x := make([]complex128, n)
				for i := range x {
					x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
				}
				want := naiveDFTCache(x)
				p := NewPlan(n)
				got := append([]complex128(nil), x...)
				p.Forward(got)
				for i := range got {
					if cmplx.Abs(got[i]-want[i]) > 1e-8*float64(n) {
						errs <- "forward mismatch under concurrency"
						return
					}
				}
				p.Inverse(got)
				for i := range got {
					if cmplx.Abs(got[i]-x[i]) > 1e-9*float64(n) {
						errs <- "round trip mismatch under concurrency"
						return
					}
				}
			}
		}(int64(g + 1))
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

func naiveDFTCache(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var s complex128
		for j := 0; j < n; j++ {
			angle := -2 * math.Pi * float64(k) * float64(j) / float64(n)
			s += x[j] * cmplx.Exp(complex(0, angle))
		}
		out[k] = s
	}
	return out
}

// BenchmarkNewPlanCached measures plan construction for an
// already-cached power-of-two length — the per-view cost that used to
// rebuild twiddles from scratch.
func BenchmarkNewPlanCached(b *testing.B) {
	NewPlan(256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = NewPlan(256)
	}
}
