package fft

import "fmt"

// Plan2D performs 2-D DFTs on row-major nx×ny arrays (x is the slow
// index: element (ix, iy) lives at ix*ny + iy).
type Plan2D struct {
	nx, ny int
	px, py *Plan
	col    []complex128
}

// NewPlan2D creates a plan for nx×ny transforms.
func NewPlan2D(nx, ny int) *Plan2D {
	return &Plan2D{nx: nx, ny: ny, px: NewPlan(nx), py: NewPlan(ny), col: make([]complex128, nx)}
}

func (p *Plan2D) check(x []complex128) {
	if len(x) != p.nx*p.ny {
		panic(fmt.Sprintf("fft: 2-D data length %d, want %d×%d", len(x), p.nx, p.ny))
	}
}

// Forward computes the in-place 2-D forward DFT.
func (p *Plan2D) Forward(x []complex128) { p.transform(x, true) }

// Inverse computes the in-place 2-D inverse DFT.
func (p *Plan2D) Inverse(x []complex128) { p.transform(x, false) }

func (p *Plan2D) transform(x []complex128, forward bool) {
	p.check(x)
	for ix := 0; ix < p.nx; ix++ {
		row := x[ix*p.ny : (ix+1)*p.ny]
		if forward {
			p.py.Forward(row)
		} else {
			p.py.Inverse(row)
		}
	}
	for iy := 0; iy < p.ny; iy++ {
		for ix := 0; ix < p.nx; ix++ {
			p.col[ix] = x[ix*p.ny+iy]
		}
		if forward {
			p.px.Forward(p.col)
		} else {
			p.px.Inverse(p.col)
		}
		for ix := 0; ix < p.nx; ix++ {
			x[ix*p.ny+iy] = p.col[ix]
		}
	}
}

// Plan3D performs 3-D DFTs on nx×ny×nz arrays stored row-major with z
// fastest: element (ix, iy, iz) lives at (ix*ny+iy)*nz + iz.
type Plan3D struct {
	nx, ny, nz int
	px, py, pz *Plan
	line       []complex128
}

// NewPlan3D creates a plan for nx×ny×nz transforms.
func NewPlan3D(nx, ny, nz int) *Plan3D {
	m := nx
	if ny > m {
		m = ny
	}
	return &Plan3D{
		nx: nx, ny: ny, nz: nz,
		px: NewPlan(nx), py: NewPlan(ny), pz: NewPlan(nz),
		line: make([]complex128, m),
	}
}

func (p *Plan3D) check(x []complex128) {
	if len(x) != p.nx*p.ny*p.nz {
		panic(fmt.Sprintf("fft: 3-D data length %d, want %d×%d×%d", len(x), p.nx, p.ny, p.nz))
	}
}

// Forward computes the in-place 3-D forward DFT.
func (p *Plan3D) Forward(x []complex128) { p.transform(x, true) }

// Inverse computes the in-place 3-D inverse DFT.
func (p *Plan3D) Inverse(x []complex128) { p.transform(x, false) }

func (p *Plan3D) transform(x []complex128, forward bool) {
	p.check(x)
	nx, ny, nz := p.nx, p.ny, p.nz
	apply := func(pl *Plan, v []complex128) {
		if forward {
			pl.Forward(v)
		} else {
			pl.Inverse(v)
		}
	}
	// z lines are contiguous.
	for i := 0; i < nx*ny; i++ {
		apply(p.pz, x[i*nz:(i+1)*nz])
	}
	// y lines: stride nz within an x-plane.
	line := p.line[:ny]
	for ix := 0; ix < nx; ix++ {
		base := ix * ny * nz
		for iz := 0; iz < nz; iz++ {
			for iy := 0; iy < ny; iy++ {
				line[iy] = x[base+iy*nz+iz]
			}
			apply(p.py, line)
			for iy := 0; iy < ny; iy++ {
				x[base+iy*nz+iz] = line[iy]
			}
		}
	}
	// x lines: stride ny*nz.
	line = p.line[:nx]
	for iy := 0; iy < ny; iy++ {
		for iz := 0; iz < nz; iz++ {
			off := iy*nz + iz
			for ix := 0; ix < nx; ix++ {
				line[ix] = x[ix*ny*nz+off]
			}
			apply(p.px, line)
			for ix := 0; ix < nx; ix++ {
				x[ix*ny*nz+off] = line[ix]
			}
		}
	}
}

// FreqIndex maps an array index k of an N-point DFT to its signed
// frequency: k for k ≤ N/2, k−N above.
func FreqIndex(k, n int) int {
	if k <= n/2 {
		return k
	}
	return k - n
}

// ArrayIndex is the inverse of FreqIndex: it maps a signed frequency
// f ∈ [−N/2, N/2] to the DFT array index in [0, N).
func ArrayIndex(f, n int) int {
	if f < 0 {
		return f + n
	}
	return f
}
