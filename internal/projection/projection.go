// Package projection computes 2-D projections of a 3-D electron
// density, in two independent ways:
//
//   - Real: direct line integration through the density grid along the
//     view axis, sampling by trilinear interpolation. This is how the
//     synthetic "experimental" views of the test datasets are made.
//   - Fourier: extraction of a central section of the 3-D DFT followed
//     by an inverse 2-D DFT, per the projection-slice theorem. This is
//     the representation the refinement algorithm matches against.
//
// The two paths agreeing (up to interpolation error) is the central
// correctness property of the whole pipeline and is enforced by the
// package tests.
package projection

import (
	"repro/internal/fourier"
	"repro/internal/geom"
	"repro/internal/volume"
)

// Real projects the density g at orientation o by integrating along
// the view axis. Pixel (j,k) of the result is the sum over t of the
// density at center + (j−c)·x̂' + (k−c)·ŷ' + t·ẑ', with t spanning the
// full box. Samples outside the grid contribute zero.
func Real(g *volume.Grid, o geom.Euler) *volume.Image {
	l := g.L
	c := float64(l / 2)
	m := o.Matrix()
	xa, ya, za := m.Col(0), m.Col(1), m.Col(2)
	out := volume.NewImage(l)
	half := l / 2
	for j := 0; j < l; j++ {
		u := float64(j) - c
		for k := 0; k < l; k++ {
			v := float64(k) - c
			// Base point of the ray in map coordinates.
			base := geom.Vec3{X: c, Y: c, Z: c}.
				Add(xa.Scale(u)).
				Add(ya.Scale(v))
			var sum float64
			for t := -half; t < l-half; t++ {
				p := base.Add(za.Scale(float64(t)))
				sum += g.Interp(p.X, p.Y, p.Z)
			}
			out.Set(j, k, sum)
		}
	}
	return out
}

// Fourier projects the density at orientation o through its centred
// 3-D DFT: extract the central section at o (band-limited to rmax) and
// inverse-transform it. vdft must be the centred spectrum of the map.
func Fourier(vdft *fourier.VolumeDFT, o geom.Euler, rmax float64, interp fourier.Interpolation) *volume.Image {
	slice := vdft.ExtractSlice(o, rmax, interp)
	return fourier.InverseImageDFT(slice)
}
