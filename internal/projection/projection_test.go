package projection

import (
	"math"
	"testing"

	"repro/internal/fourier"
	"repro/internal/geom"
	"repro/internal/volume"
)

func blobGrid(l int, blobs [][4]float64) *volume.Grid {
	g := volume.NewGrid(l)
	for x := 0; x < l; x++ {
		for y := 0; y < l; y++ {
			for z := 0; z < l; z++ {
				var v float64
				for _, b := range blobs {
					dx, dy, dz := float64(x)-b[0], float64(y)-b[1], float64(z)-b[2]
					v += math.Exp(-(dx*dx + dy*dy + dz*dz) / (2 * b[3] * b[3]))
				}
				g.Set(x, y, z, v)
			}
		}
	}
	return g
}

func asymGrid(l int) *volume.Grid {
	c := float64(l / 2)
	return blobGrid(l, [][4]float64{
		{c, c, c, 2.5},
		{c + 6, c, c, 2},
		{c - 3, c + 5, c - 2, 1.8},
		{c, c - 4, c + 4, 1.5},
	})
}

func TestRealProjectionAlongZ(t *testing.T) {
	// At the identity orientation the projection is the sum over z.
	l := 16
	g := asymGrid(l)
	p := Real(g, geom.Euler{})
	for j := 0; j < l; j++ {
		for k := 0; k < l; k++ {
			var want float64
			for z := 0; z < l; z++ {
				want += g.At(j, k, z)
			}
			if math.Abs(p.At(j, k)-want) > 1e-9 {
				t.Fatalf("projection(%d,%d) = %g, want %g", j, k, p.At(j, k), want)
			}
		}
	}
}

func TestRealProjectionMassConservation(t *testing.T) {
	// Total projected mass is independent of orientation for a
	// compact particle (rays never exit through the box walls).
	l := 32
	g := asymGrid(l)
	g.SphericalMask(10)
	var masses []float64
	for _, o := range []geom.Euler{{}, {Theta: 30, Phi: 60, Omega: 0}, {Theta: 85, Phi: 200, Omega: 45}, {Theta: 140, Phi: 10, Omega: 300}} {
		p := Real(g, o)
		var m float64
		for _, v := range p.Data {
			m += v
		}
		masses = append(masses, m)
	}
	for _, m := range masses[1:] {
		if math.Abs(m-masses[0])/masses[0] > 1e-3 {
			t.Fatalf("projected mass varies with orientation: %v", masses)
		}
	}
}

func TestProjectionSliceTheorem(t *testing.T) {
	// Real-space projection and Fourier-slice projection must agree —
	// this is the correctness foundation of the entire algorithm.
	l := 32
	g := asymGrid(l)
	g.SphericalMask(11)
	vdft := fourier.NewVolumeDFT(g)
	rmax := float64(l)/2 - 1
	for _, o := range []geom.Euler{
		{},
		{Theta: 90, Phi: 0, Omega: 0},
		{Theta: 45, Phi: 120, Omega: 30},
		{Theta: 133, Phi: 311, Omega: 201},
	} {
		pr := Real(g, o)
		pf := Fourier(vdft, o, rmax, fourier.Trilinear)
		cc := volume.ImageCorrelation(pr, pf)
		if cc < 0.98 {
			t.Errorf("orientation %v: real/Fourier projection correlation %.4f, want ≥0.98", o, cc)
		}
	}
}

func TestProjectionSliceTheoremTrilinearBeatsNearest(t *testing.T) {
	l := 32
	g := asymGrid(l)
	g.SphericalMask(11)
	vdft := fourier.NewVolumeDFT(g)
	o := geom.Euler{Theta: 52, Phi: 77, Omega: 13}
	pr := Real(g, o)
	ccTri := volume.ImageCorrelation(pr, Fourier(vdft, o, 15, fourier.Trilinear))
	ccNear := volume.ImageCorrelation(pr, Fourier(vdft, o, 15, fourier.Nearest))
	if ccTri <= ccNear {
		t.Errorf("trilinear (%.4f) should beat nearest (%.4f)", ccTri, ccNear)
	}
}

func TestFourierProjectionInPlaneRotation(t *testing.T) {
	// Increasing ω by 90° rotates the projection by 90° in-plane:
	// compare pixel-rotated images.
	l := 32
	g := asymGrid(l)
	g.SphericalMask(11)
	vdft := fourier.NewVolumeDFT(g)
	o := geom.Euler{Theta: 60, Phi: 45, Omega: 0}
	p0 := Fourier(vdft, o, 14, fourier.Trilinear)
	p90 := Fourier(vdft, geom.Euler{Theta: 60, Phi: 45, Omega: 90}, 14, fourier.Trilinear)
	// Rotate p0 by 90° about the image centre and compare with p90.
	rot := volume.NewImage(l)
	c := l / 2
	for j := 0; j < l; j++ {
		for k := 0; k < l; k++ {
			// E_90(u,v) = E_0(−v, u) about centre c.
			u, v := j-c, k-c
			x, y := c-v, c+u
			if x >= 0 && x < l && y >= 0 && y < l {
				rot.Set(j, k, p0.At(x, y))
			}
		}
	}
	if cc := volume.ImageCorrelation(rot, p90); cc < 0.95 {
		t.Fatalf("ω rotation does not act as in-plane rotation: correlation %.4f", cc)
	}
}

func TestProjectionDistinguishesOrientations(t *testing.T) {
	// Projections at well-separated orientations of an asymmetric
	// particle must differ — otherwise orientation search could not
	// work at all.
	l := 32
	g := asymGrid(l)
	g.SphericalMask(11)
	a := Real(g, geom.Euler{Theta: 20, Phi: 0, Omega: 0})
	b := Real(g, geom.Euler{Theta: 110, Phi: 140, Omega: 60})
	if cc := volume.ImageCorrelation(a, b); cc > 0.95 {
		t.Fatalf("distant orientations give near-identical projections (cc=%.4f)", cc)
	}
}
