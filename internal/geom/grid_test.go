package geom

import (
	"math"
	"testing"
)

func TestCenteredWindowCounts(t *testing.T) {
	w := CenteredWindow(Euler{60, 100, 200}, 4.5, 1)
	nt, np, no := w.Counts()
	if nt != 10 || np != 10 || no != 10 {
		t.Fatalf("counts = (%d,%d,%d), want (10,10,10)", nt, np, no)
	}
	if w.Size() != 1000 {
		t.Fatalf("size = %d, want 1000 (the paper's typical w)", w.Size())
	}
}

func TestWindowOrientationsSpacing(t *testing.T) {
	w := CenteredWindow(Euler{10, 20, 30}, 2, 1)
	os := w.Orientations()
	if len(os) != w.Size() {
		t.Fatalf("len(Orientations) = %d, want %d", len(os), w.Size())
	}
	// First and last must be the corners.
	first, last := os[0], os[len(os)-1]
	if first.Theta != 8 || last.Theta != 12 {
		t.Errorf("θ range [%g, %g], want [8, 12]", first.Theta, last.Theta)
	}
	// Center must be present.
	found := false
	for _, o := range os {
		if o == (Euler{10, 20, 30}) {
			found = true
		}
	}
	if !found {
		t.Error("window does not contain its own center")
	}
}

func TestWindowOnEdge(t *testing.T) {
	w := CenteredWindow(Euler{50, 50, 50}, 4, 1)
	if !w.OnEdge(Euler{46, 50, 50}) {
		t.Error("θ at min edge not detected")
	}
	if !w.OnEdge(Euler{50, 54, 50}) {
		t.Error("φ at max edge not detected")
	}
	if w.OnEdge(Euler{50, 50, 50}) {
		t.Error("center reported on edge")
	}
	if w.OnEdge(Euler{49, 51, 50}) {
		t.Error("interior point reported on edge")
	}
}

func TestWindowOnEdgeSinglePointAxis(t *testing.T) {
	// A window with zero extent on one axis must never slide along it.
	w := Window{Min: Euler{50, 0, 10}, Max: Euler{50, 0, 20}, Step: 1}
	if w.OnEdge(Euler{50, 0, 15}) {
		t.Error("degenerate axes triggered edge")
	}
	if !w.OnEdge(Euler{50, 0, 10}) {
		t.Error("ω edge missed")
	}
}

func TestWindowRecenter(t *testing.T) {
	w := CenteredWindow(Euler{50, 50, 50}, 4, 1)
	w2 := w.Recenter(Euler{46, 54, 50})
	if w2.Min.Theta != 42 || w2.Max.Theta != 50 {
		t.Errorf("recentered θ range [%g, %g], want [42, 50]", w2.Min.Theta, w2.Max.Theta)
	}
	if w2.Size() != w.Size() {
		t.Errorf("recenter changed window size: %d -> %d", w.Size(), w2.Size())
	}
}

func TestSearchSpaceSizePaperExample(t *testing.T) {
	// Paper §3: r=0.1°, range 0..180° on all axes gives (1800)³.
	got := SearchSpaceSize(Euler{0, 0, 0}, Euler{180, 180, 180}, 0.1)
	want := 1800.0 * 1800 * 1800
	if math.Abs(got-want)/want > 1e-12 {
		t.Fatalf("search space = %g, want %g", got, want)
	}
}

func TestSphereGridCoverage(t *testing.T) {
	views := SphereGrid(3)
	// Roughly 4π/(step²) points: 41253 deg² of sphere / 9 ≈ 4580.
	if len(views) < 3000 || len(views) > 7000 {
		t.Fatalf("3° sphere grid has %d views, expected ≈4600", len(views))
	}
	// Poles must be present exactly once each.
	poles := 0
	for _, v := range views {
		if v.Theta == 0 || v.Theta == 180 {
			poles++
		}
	}
	if poles != 2 {
		t.Errorf("%d pole samples, want 2", poles)
	}
}

func TestAsymmetricUnitViewsIcosahedral(t *testing.T) {
	// Fig. 1b: at 3° the icosahedral asymmetric unit holds a small
	// number of views (~1/60 of the sphere grid).
	g := Icosahedral()
	full := len(SphereGrid(3))
	in := AsymmetricUnitViews(g, 3)
	ratio := float64(full) / float64(in)
	if ratio < 40 || ratio > 80 {
		t.Fatalf("icosahedral reduction ratio %.1f (views %d of %d), want ≈60", ratio, in, full)
	}
}

func TestAsymmetricUnitViewsC1IsFullSphere(t *testing.T) {
	if got, want := AsymmetricUnitViews(Cyclic(1), 6), len(SphereGrid(6)); got != want {
		t.Fatalf("C1 asymmetric unit views = %d, want full sphere %d", got, want)
	}
}
