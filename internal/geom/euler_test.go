package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randEuler(r *rand.Rand) Euler {
	return Euler{r.Float64() * 180, r.Float64() * 360, r.Float64() * 360}
}

func TestMatrixIsRotation(t *testing.T) {
	f := func(th, ph, om float64) bool {
		e := Euler{math.Mod(math.Abs(th), 180), math.Mod(ph, 360), math.Mod(om, 360)}
		return e.Matrix().IsRotation(1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMatrixRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		e := randEuler(r)
		got := FromMatrix(e.Matrix())
		if d := AngularDistance(e, got); d > 1e-6 {
			t.Fatalf("round-trip %v -> %v differs by %g°", e, got, d)
		}
	}
}

func TestMatrixRoundTripAtPoles(t *testing.T) {
	for _, e := range []Euler{
		{0, 0, 33},
		{0, 120, 33},
		{180, 45, 270},
		{180, 0, 0},
	} {
		got := FromMatrix(e.Matrix())
		if d := AngularDistance(e, got); d > 1e-6 {
			t.Fatalf("pole round-trip %v -> %v differs by %g°", e, got, d)
		}
	}
}

func TestViewAxisMatchesMatrixColumn(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	for i := 0; i < 200; i++ {
		e := randEuler(r)
		m := e.Matrix()
		want := m.Col(2)
		got := e.ViewAxis()
		if got.Sub(want).Norm() > 1e-12 {
			t.Fatalf("%v: view axis %v != matrix column %v", e, got, want)
		}
	}
}

func TestViewAxisIgnoresOmega(t *testing.T) {
	e := Euler{50, 120, 0}
	for om := 0.0; om < 360; om += 17 {
		a := Euler{e.Theta, e.Phi, om}.ViewAxis()
		if a.Sub(e.ViewAxis()).Norm() > 1e-12 {
			t.Fatalf("view axis changed with ω=%g", om)
		}
	}
}

func TestNormalize(t *testing.T) {
	cases := []struct{ in, want Euler }{
		{Euler{190, 10, 0}, Euler{170, 190, 180}},
		{Euler{-10, 0, 0}, Euler{10, 180, 180}},
		{Euler{90, 370, -30}, Euler{90, 10, 330}},
		{Euler{90, -10, 0}, Euler{90, 350, 0}},
	}
	for _, c := range cases {
		got := c.in.Normalize()
		if math.Abs(got.Theta-c.want.Theta) > 1e-9 ||
			math.Abs(got.Phi-c.want.Phi) > 1e-9 ||
			math.Abs(got.Omega-c.want.Omega) > 1e-9 {
			t.Errorf("Normalize(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestNormalizePreservesOrientation(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	for i := 0; i < 300; i++ {
		e := Euler{r.Float64()*720 - 360, r.Float64()*720 - 360, r.Float64()*720 - 360}
		if d := AngularDistance(e, e.Normalize()); d > 1e-6 {
			t.Fatalf("Normalize(%v) moved orientation by %g°", e, d)
		}
	}
}

func TestAngularDistanceProperties(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	for i := 0; i < 200; i++ {
		a, b := randEuler(r), randEuler(r)
		dab := AngularDistance(a, b)
		dba := AngularDistance(b, a)
		if math.Abs(dab-dba) > 1e-9 {
			t.Fatalf("asymmetric: d(a,b)=%g d(b,a)=%g", dab, dba)
		}
		if dab < 0 || dab > 180+1e-9 {
			t.Fatalf("out of range: %g", dab)
		}
		if AngularDistance(a, a) > 1e-9 {
			t.Fatalf("d(a,a) != 0")
		}
	}
}

func TestAngularDistanceKnown(t *testing.T) {
	a := Euler{0, 0, 0}
	b := Euler{0, 0, 90}
	if d := AngularDistance(a, b); math.Abs(d-90) > 1e-9 {
		t.Errorf("in-plane 90° rotation: got %g", d)
	}
	c := Euler{45, 0, 0}
	if d := AngularDistance(a, c); math.Abs(d-45) > 1e-9 {
		t.Errorf("45° tilt: got %g", d)
	}
}

func TestAxisDistance(t *testing.T) {
	a := Euler{90, 0, 0}
	b := Euler{90, 90, 123} // ω must not matter
	if d := AxisDistance(a, b); math.Abs(d-90) > 1e-9 {
		t.Errorf("axis distance = %g, want 90", d)
	}
}

func TestRotationAngle(t *testing.T) {
	for _, deg := range []float64{0, 10, 90, 179} {
		m := RotZ(DegToRad(deg))
		if got := RadToDeg(m.RotationAngle()); math.Abs(got-deg) > 1e-9 {
			t.Errorf("RotationAngle(RotZ(%g°)) = %g", deg, got)
		}
	}
}

func TestAxisAngleAgreesWithElementary(t *testing.T) {
	for rad := 0.1; rad < 3; rad += 0.37 {
		cases := []struct{ a, b Mat3 }{
			{AxisAngle(Vec3{1, 0, 0}, rad), RotX(rad)},
			{AxisAngle(Vec3{0, 1, 0}, rad), RotY(rad)},
			{AxisAngle(Vec3{0, 0, 1}, rad), RotZ(rad)},
		}
		for _, c := range cases {
			for i := 0; i < 3; i++ {
				for j := 0; j < 3; j++ {
					if math.Abs(c.a[i][j]-c.b[i][j]) > 1e-12 {
						t.Fatalf("AxisAngle mismatch at rad=%g", rad)
					}
				}
			}
		}
	}
}

func TestVec3Ops(t *testing.T) {
	a, b := Vec3{1, 2, 3}, Vec3{4, 5, 6}
	if a.Cross(b).Dot(a) > 1e-12 || a.Cross(b).Dot(b) > 1e-12 {
		t.Error("cross product not orthogonal to operands")
	}
	if math.Abs(a.Unit().Norm()-1) > 1e-12 {
		t.Error("unit vector not unit length")
	}
	if (Vec3{}).Unit() != (Vec3{}) {
		t.Error("zero vector Unit changed value")
	}
	if a.Add(b).Sub(b).Sub(a).Norm() > 1e-12 {
		t.Error("add/sub inconsistent")
	}
}
