package geom

import (
	"math"
	"math/rand"
)

// Quat is a unit quaternion (w, x, y, z) representing a rotation —
// the numerically stable interchange format for orientations:
// composition without drift, unambiguous distance, and exact uniform
// sampling of SO(3).
type Quat struct {
	W, X, Y, Z float64
}

// IdentityQuat returns the identity rotation.
func IdentityQuat() Quat { return Quat{W: 1} }

// Mul composes two rotations: (q·p) applies p first, then q —
// matching matrix composition Q.Matrix()·P.Matrix().
func (q Quat) Mul(p Quat) Quat {
	return Quat{
		W: q.W*p.W - q.X*p.X - q.Y*p.Y - q.Z*p.Z,
		X: q.W*p.X + q.X*p.W + q.Y*p.Z - q.Z*p.Y,
		Y: q.W*p.Y - q.X*p.Z + q.Y*p.W + q.Z*p.X,
		Z: q.W*p.Z + q.X*p.Y - q.Y*p.X + q.Z*p.W,
	}
}

// Conj returns the inverse rotation (for unit quaternions).
func (q Quat) Conj() Quat { return Quat{q.W, -q.X, -q.Y, -q.Z} }

// Norm returns the quaternion magnitude.
func (q Quat) Norm() float64 {
	return math.Sqrt(q.W*q.W + q.X*q.X + q.Y*q.Y + q.Z*q.Z)
}

// Normalize returns q scaled to unit magnitude; the zero quaternion
// maps to the identity.
func (q Quat) Normalize() Quat {
	n := q.Norm()
	if n == 0 {
		return IdentityQuat()
	}
	return Quat{q.W / n, q.X / n, q.Y / n, q.Z / n}
}

// Matrix converts the unit quaternion to a rotation matrix.
func (q Quat) Matrix() Mat3 {
	w, x, y, z := q.W, q.X, q.Y, q.Z
	return Mat3{
		{1 - 2*(y*y+z*z), 2 * (x*y - w*z), 2 * (x*z + w*y)},
		{2 * (x*y + w*z), 1 - 2*(x*x+z*z), 2 * (y*z - w*x)},
		{2 * (x*z - w*y), 2 * (y*z + w*x), 1 - 2*(x*x+y*y)},
	}
}

// QuatFromMatrix converts a rotation matrix to a unit quaternion
// (Shepperd's method: pick the dominant diagonal branch for
// stability).
func QuatFromMatrix(m Mat3) Quat {
	tr := m.Trace()
	var q Quat
	switch {
	case tr > 0:
		s := math.Sqrt(tr+1) * 2
		q = Quat{
			W: s / 4,
			X: (m[2][1] - m[1][2]) / s,
			Y: (m[0][2] - m[2][0]) / s,
			Z: (m[1][0] - m[0][1]) / s,
		}
	case m[0][0] > m[1][1] && m[0][0] > m[2][2]:
		s := math.Sqrt(1+m[0][0]-m[1][1]-m[2][2]) * 2
		q = Quat{
			W: (m[2][1] - m[1][2]) / s,
			X: s / 4,
			Y: (m[0][1] + m[1][0]) / s,
			Z: (m[0][2] + m[2][0]) / s,
		}
	case m[1][1] > m[2][2]:
		s := math.Sqrt(1+m[1][1]-m[0][0]-m[2][2]) * 2
		q = Quat{
			W: (m[0][2] - m[2][0]) / s,
			X: (m[0][1] + m[1][0]) / s,
			Y: s / 4,
			Z: (m[1][2] + m[2][1]) / s,
		}
	default:
		s := math.Sqrt(1+m[2][2]-m[0][0]-m[1][1]) * 2
		q = Quat{
			W: (m[1][0] - m[0][1]) / s,
			X: (m[0][2] + m[2][0]) / s,
			Y: (m[1][2] + m[2][1]) / s,
			Z: s / 4,
		}
	}
	return q.Normalize()
}

// Euler converts the quaternion to the paper's (θ, φ, ω) angles.
func (q Quat) Euler() Euler { return FromMatrix(q.Matrix()) }

// QuatFromEuler converts (θ, φ, ω) to a quaternion.
func QuatFromEuler(e Euler) Quat { return QuatFromMatrix(e.Matrix()) }

// QuatDistance returns the rotation angle between two orientations in
// degrees. It forms the relative rotation a*·b and uses
// 2·atan2(‖vector‖, |scalar|), which is well-conditioned at both ends
// of the angle range (acos of the dot product is not, near 0°).
func QuatDistance(a, b Quat) float64 {
	rel := a.Conj().Mul(b)
	v := math.Sqrt(rel.X*rel.X + rel.Y*rel.Y + rel.Z*rel.Z)
	return RadToDeg(2 * math.Atan2(v, math.Abs(rel.W)))
}

// Slerp spherically interpolates from a (t=0) to b (t=1) along the
// shortest great-circle arc on the rotation group — useful for
// generating smooth orientation trajectories (e.g. tilt series).
func Slerp(a, b Quat, t float64) Quat {
	dot := a.W*b.W + a.X*b.X + a.Y*b.Y + a.Z*b.Z
	if dot < 0 {
		// Take the short way round the double cover.
		b = Quat{-b.W, -b.X, -b.Y, -b.Z}
		dot = -dot
	}
	if dot > 0.9995 {
		// Nearly parallel: linear interpolation avoids 0/0.
		return Quat{
			a.W + t*(b.W-a.W),
			a.X + t*(b.X-a.X),
			a.Y + t*(b.Y-a.Y),
			a.Z + t*(b.Z-a.Z),
		}.Normalize()
	}
	theta := math.Acos(dot)
	sa := math.Sin((1 - t) * theta)
	sb := math.Sin(t * theta)
	s := math.Sin(theta)
	return Quat{
		(sa*a.W + sb*b.W) / s,
		(sa*a.X + sb*b.X) / s,
		(sa*a.Y + sb*b.Y) / s,
		(sa*a.Z + sb*b.Z) / s,
	}.Normalize()
}

// RandomQuat draws a rotation uniformly from SO(3) (Haar measure)
// using Shoemake's subgroup algorithm.
func RandomQuat(rng *rand.Rand) Quat {
	u1, u2, u3 := rng.Float64(), rng.Float64(), rng.Float64()
	s1 := math.Sqrt(1 - u1)
	s2 := math.Sqrt(u1)
	return Quat{
		W: s1 * math.Sin(2*math.Pi*u2),
		X: s1 * math.Cos(2*math.Pi*u2),
		Y: s2 * math.Sin(2*math.Pi*u3),
		Z: s2 * math.Cos(2*math.Pi*u3),
	}
}
