// Package geom provides the geometric machinery for orientation
// refinement: Euler angles in the paper's (θ, φ, ω) convention, 3x3
// rotation matrices, angular metrics, orientation grids and windows,
// and the point-symmetry groups of virus capsids (C_n, D_n, T, O, I).
//
// Convention. An orientation O = (θ, φ, ω), all in degrees, describes a
// view of the electron-density map D. θ is the polar angle measured
// from the +Z axis, φ the azimuth measured from +X in the XY plane, and
// ω the in-plane rotation of the image about the view axis. The
// associated rotation matrix is
//
//	R(θ, φ, ω) = Rz(φ) · Ry(θ) · Rz(ω)
//
// whose columns are the view-frame axes expressed in map coordinates:
// column 2 (the rotated Z axis) is the direction of projection
// (sinθ·cosφ, sinθ·sinφ, cosθ), independent of ω. The 2-D image of a
// particle at orientation O is the line integral of D along that axis,
// and by the projection-slice theorem its 2-D DFT equals the central
// section of the 3-D DFT spanned by columns 0 and 1 of R.
package geom

import (
	"fmt"
	"math"
)

// DegToRad converts degrees to radians.
func DegToRad(d float64) float64 { return d * math.Pi / 180 }

// RadToDeg converts radians to degrees.
func RadToDeg(r float64) float64 { return r * 180 / math.Pi }

// Euler is an orientation (θ, φ, ω) in degrees as used throughout the
// paper: θ ∈ [0, 180], φ ∈ [0, 360), ω ∈ [0, 360). Values outside the
// canonical ranges are accepted everywhere and normalized on demand.
type Euler struct {
	Theta, Phi, Omega float64
}

// String renders the orientation the way the paper's figures do.
func (e Euler) String() string {
	return fmt.Sprintf("(θ=%.4g°, φ=%.4g°, ω=%.4g°)", e.Theta, e.Phi, e.Omega)
}

// Matrix returns the rotation matrix R(θ, φ, ω) = Rz(φ)·Ry(θ)·Rz(ω).
func (e Euler) Matrix() Mat3 {
	return RotZ(DegToRad(e.Phi)).Mul(RotY(DegToRad(e.Theta))).Mul(RotZ(DegToRad(e.Omega)))
}

// ViewAxis returns the unit direction of projection for the view, the
// rotated Z axis (sinθ·cosφ, sinθ·sinφ, cosθ).
func (e Euler) ViewAxis() Vec3 {
	st, ct := math.Sincos(DegToRad(e.Theta))
	sp, cp := math.Sincos(DegToRad(e.Phi))
	return Vec3{st * cp, st * sp, ct}
}

// Add returns the component-wise sum; useful for applying window offsets.
func (e Euler) Add(d Euler) Euler {
	return Euler{e.Theta + d.Theta, e.Phi + d.Phi, e.Omega + d.Omega}
}

// Normalize returns an equivalent orientation with θ folded into
// [0, 180] and φ, ω wrapped into [0, 360). Folding θ across a pole
// uses the identity Rz(φ)·Ry(θ)·Rz(ω) = Rz(φ+180°)·Ry(−θ)·Rz(ω+180°).
func (e Euler) Normalize() Euler {
	th := math.Mod(e.Theta, 360)
	if th < 0 {
		th += 360
	}
	ph, om := e.Phi, e.Omega
	if th > 180 {
		th = 360 - th
		ph += 180
		om += 180
	}
	ph = math.Mod(ph, 360)
	if ph < 0 {
		ph += 360
	}
	om = math.Mod(om, 360)
	if om < 0 {
		om += 360
	}
	return Euler{th, ph, om}
}

// FromMatrix recovers Euler angles from a rotation matrix produced by
// Euler.Matrix. At the poles (θ = 0 or 180) the decomposition is
// degenerate; φ is then reported as 0 and ω carries the full in-plane
// rotation.
func FromMatrix(r Mat3) Euler {
	// r[2][2] = cosθ.
	ct := math.Max(-1, math.Min(1, r[2][2]))
	theta := math.Acos(ct)
	var phi, omega float64
	if math.Abs(math.Sin(theta)) < 1e-12 {
		// Degenerate: R = Rz(φ ± ω). Attribute everything to ω.
		phi = 0
		if ct > 0 {
			omega = math.Atan2(r[1][0], r[0][0])
		} else {
			omega = math.Atan2(r[1][0], -r[0][0])
		}
	} else {
		phi = math.Atan2(r[1][2], r[0][2])
		omega = math.Atan2(r[2][1], -r[2][0])
	}
	return Euler{RadToDeg(theta), RadToDeg(phi), RadToDeg(omega)}.Normalize()
}

// AngularDistance returns the geodesic rotation angle, in degrees,
// between two orientations: the angle of the rotation R_a^T · R_b.
// It is the natural metric on SO(3) and is zero iff the two
// orientations describe the same view including in-plane rotation.
func AngularDistance(a, b Euler) float64 {
	ra, rb := a.Matrix(), b.Matrix()
	rel := ra.Transpose().Mul(rb)
	return RadToDeg(rel.RotationAngle())
}

// AxisDistance returns the angle, in degrees, between the projection
// axes of two orientations, ignoring the in-plane rotation ω.
func AxisDistance(a, b Euler) float64 {
	da, db := a.ViewAxis(), b.ViewAxis()
	c := math.Max(-1, math.Min(1, da.Dot(db)))
	return RadToDeg(math.Acos(c))
}
