package geom

import (
	"math"
	"math/rand"
	"testing"
)

func TestGroupOrders(t *testing.T) {
	cases := []struct {
		g    *Group
		want int
	}{
		{Cyclic(1), 1},
		{Cyclic(5), 5},
		{Cyclic(7), 7},
		{Dihedral(2), 4},
		{Dihedral(5), 10},
		{Tetrahedral(), 12},
		{Octahedral(), 24},
		{Icosahedral(), 60},
	}
	for _, c := range cases {
		if c.g.Order() != c.want {
			t.Errorf("%s: order %d, want %d", c.g.Name, c.g.Order(), c.want)
		}
	}
}

func TestGroupClosureProperty(t *testing.T) {
	for _, g := range []*Group{Cyclic(6), Dihedral(3), Tetrahedral(), Octahedral(), Icosahedral()} {
		keys := map[[9]int32]bool{}
		for _, e := range g.Elements {
			keys[matKey(e)] = true
		}
		for i, a := range g.Elements {
			if !a.IsRotation(1e-9) {
				t.Fatalf("%s element %d is not a rotation", g.Name, i)
			}
			for _, b := range g.Elements {
				if !keys[matKey(a.Mul(b))] {
					t.Fatalf("%s not closed under multiplication", g.Name)
				}
			}
			if !keys[matKey(a.Transpose())] {
				t.Fatalf("%s missing inverse of element %d", g.Name, i)
			}
		}
	}
}

func TestGroupIdentityFirst(t *testing.T) {
	for _, g := range []*Group{Cyclic(4), Dihedral(7), Icosahedral()} {
		if g.Elements[0] != Identity3() {
			t.Errorf("%s: Elements[0] is not the identity", g.Name)
		}
	}
}

func TestIcosahedralHasExpectedAxes(t *testing.T) {
	g := Icosahedral()
	// I has 15 elements of order 2, 20 of order 3, 24 of order 5 and
	// the identity — classify by matrix order.
	counts := map[int]int{}
	idKey := matKey(Identity3())
	for _, e := range g.Elements {
		p := e
		order := 1
		for order < 10 && matKey(p) != idKey {
			p = p.Mul(e)
			order++
		}
		counts[order]++
	}
	want := map[int]int{1: 1, 2: 15, 3: 20, 5: 24}
	for order, n := range want {
		if counts[order] != n {
			t.Errorf("order-%d elements: %d, want %d", order, counts[order], n)
		}
	}
	if len(counts) != len(want) {
		t.Errorf("unexpected element orders present: %v", counts)
	}
}

func TestGroupByName(t *testing.T) {
	for _, name := range []string{"C1", "C17", "D4", "T", "O", "I"} {
		g, err := GroupByName(name)
		if err != nil {
			t.Fatalf("GroupByName(%q): %v", name, err)
		}
		if g.Name != name {
			t.Errorf("GroupByName(%q).Name = %q", name, g.Name)
		}
	}
	for _, bad := range []string{"", "X", "C0", "Cfoo", "D-1", "icosahedral"} {
		if _, err := GroupByName(bad); err == nil {
			t.Errorf("GroupByName(%q) succeeded, want error", bad)
		}
	}
}

func TestAsymmetricUnitFraction(t *testing.T) {
	// The asymmetric unit should contain ~1/|G| of uniformly random
	// directions.
	r := rand.New(rand.NewSource(11))
	for _, g := range []*Group{Cyclic(1), Cyclic(5), Dihedral(3), Icosahedral()} {
		in, total := 0, 20000
		for i := 0; i < total; i++ {
			d := randomDirection(r)
			if g.InAsymmetricUnit(d) {
				in++
			}
		}
		want := float64(total) / float64(g.Order())
		got := float64(in)
		if math.Abs(got-want) > 6*math.Sqrt(want) {
			t.Errorf("%s: %d of %d directions in asym unit, want ≈%.0f", g.Name, in, total, want)
		}
	}
}

func TestCanonicalIsOrbitInvariant(t *testing.T) {
	g := Icosahedral()
	r := rand.New(rand.NewSource(12))
	for i := 0; i < 100; i++ {
		d := randomDirection(r)
		c := g.Canonical(d)
		for _, e := range g.Elements {
			c2 := g.Canonical(e.Apply(d))
			if c.Sub(c2).Norm() > 1e-6 {
				t.Fatalf("canonical rep differs across orbit: %v vs %v", c, c2)
			}
		}
		if !g.InAsymmetricUnit(c) {
			t.Fatalf("canonical rep %v not in asymmetric unit", c)
		}
	}
}

func TestReducePreservesView(t *testing.T) {
	// Reducing an orientation must map it to an equivalent view: the
	// projection of an icosahedrally symmetric object is unchanged.
	g := Icosahedral()
	r := rand.New(rand.NewSource(13))
	for i := 0; i < 100; i++ {
		e := randEuler(r)
		red := g.Reduce(e)
		// red = g·e for some group element: check R_red · R_e^T ∈ G.
		rel := red.Matrix().Mul(e.Matrix().Transpose())
		found := false
		for _, elem := range g.Elements {
			d := rel.Mul(elem.Transpose())
			if math.Abs(d.Trace()-3) < 1e-6 {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("Reduce(%v) = %v is not a symmetry mate", e, red)
		}
		if !g.InAsymmetricUnit(red.ViewAxis()) {
			t.Fatalf("Reduce(%v) axis not in asymmetric unit", e)
		}
	}
}

func TestOrbitSize(t *testing.T) {
	g := Icosahedral()
	orb := g.Orbit(Euler{37, 111, 5})
	if len(orb) != 60 {
		t.Fatalf("orbit size %d, want 60", len(orb))
	}
	// All orbit members must be distinct orientations.
	for i := range orb {
		for j := i + 1; j < len(orb); j++ {
			if AngularDistance(orb[i], orb[j]) < 1e-6 {
				t.Fatalf("orbit members %d and %d coincide", i, j)
			}
		}
	}
}

func randomDirection(r *rand.Rand) Vec3 {
	for {
		v := Vec3{r.NormFloat64(), r.NormFloat64(), r.NormFloat64()}
		if n := v.Norm(); n > 1e-6 {
			return v.Scale(1 / n)
		}
	}
}
