package geom

import (
	"fmt"
	"math"
	"sort"
)

// Group is a finite point-symmetry group of rotations, the kind
// exhibited by virus capsids. Elements[0] is always the identity.
type Group struct {
	// Name is a Schoenflies-style label such as "C1", "C5", "D3",
	// "T", "O" or "I".
	Name string
	// Elements are the rotation matrices of the group.
	Elements []Mat3
}

// Order returns the number of elements in the group.
func (g *Group) Order() int { return len(g.Elements) }

// golden ratio, used to position icosahedral axes.
var phi = (1 + math.Sqrt(5)) / 2

// Cyclic returns the cyclic group C_n of rotations about the Z axis.
// Cyclic(1) is the trivial group of an asymmetric particle.
func Cyclic(n int) *Group {
	if n < 1 {
		panic(fmt.Sprintf("geom: invalid cyclic order %d", n))
	}
	g := &Group{Name: fmt.Sprintf("C%d", n)}
	for k := 0; k < n; k++ {
		g.Elements = append(g.Elements, RotZ(2*math.Pi*float64(k)/float64(n)))
	}
	return g
}

// Dihedral returns the dihedral group D_n: C_n about Z plus n two-fold
// axes perpendicular to Z.
func Dihedral(n int) *Group {
	if n < 1 {
		panic(fmt.Sprintf("geom: invalid dihedral order %d", n))
	}
	g := closure(fmt.Sprintf("D%d", n),
		RotZ(2*math.Pi/float64(n)),
		RotX(math.Pi),
	)
	if g.Order() != 2*n {
		panic(fmt.Sprintf("geom: dihedral closure produced %d elements, want %d", g.Order(), 2*n))
	}
	return g
}

// Tetrahedral returns the rotation group T of the tetrahedron
// (12 elements).
func Tetrahedral() *Group {
	g := closure("T",
		RotZ(math.Pi),
		AxisAngle(Vec3{1, 1, 1}, 2*math.Pi/3),
	)
	if g.Order() != 12 {
		panic(fmt.Sprintf("geom: tetrahedral closure produced %d elements", g.Order()))
	}
	return g
}

// Octahedral returns the rotation group O of the octahedron/cube
// (24 elements).
func Octahedral() *Group {
	g := closure("O",
		RotZ(math.Pi/2),
		AxisAngle(Vec3{1, 1, 1}, 2*math.Pi/3),
	)
	if g.Order() != 24 {
		panic(fmt.Sprintf("geom: octahedral closure produced %d elements", g.Order()))
	}
	return g
}

// Icosahedral returns the rotation group I of the icosahedron, the
// 60-element symmetry group of icosahedral virus capsids such as
// Sindbis and reovirus. The orientation follows the common 2-2-2
// crystallographic setting: two-fold axes along X, Y and Z, with a
// five-fold axis in the YZ plane at atan(1/φ) from +Z.
func Icosahedral() *Group {
	five := AxisAngle(Vec3{0, 1, phi}, 2*math.Pi/5)
	two := RotZ(math.Pi)
	g := closure("I", five, two, RotX(math.Pi))
	if g.Order() != 60 {
		panic(fmt.Sprintf("geom: icosahedral closure produced %d elements", g.Order()))
	}
	return g
}

// GroupByName returns the named group: "C<n>", "D<n>", "T", "O" or
// "I" (case-insensitive first letter is not accepted; names are exact).
func GroupByName(name string) (*Group, error) {
	switch {
	case name == "T":
		return Tetrahedral(), nil
	case name == "O":
		return Octahedral(), nil
	case name == "I":
		return Icosahedral(), nil
	case len(name) > 1 && name[0] == 'C':
		var n int
		if _, err := fmt.Sscanf(name[1:], "%d", &n); err != nil || n < 1 {
			return nil, fmt.Errorf("geom: bad cyclic group name %q", name)
		}
		return Cyclic(n), nil
	case len(name) > 1 && name[0] == 'D':
		var n int
		if _, err := fmt.Sscanf(name[1:], "%d", &n); err != nil || n < 1 {
			return nil, fmt.Errorf("geom: bad dihedral group name %q", name)
		}
		return Dihedral(n), nil
	}
	return nil, fmt.Errorf("geom: unknown group name %q", name)
}

// matKey quantizes a matrix for deduplication during closure.
func matKey(m Mat3) [9]int32 {
	var k [9]int32
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			k[3*i+j] = int32(math.Round(m[i][j] * 1e6))
		}
	}
	return k
}

// closure generates the group spanned by the given rotations by
// repeated multiplication until no new elements appear. The identity
// is always placed first; the remaining elements are ordered by
// quantized matrix entries so the result is deterministic.
func closure(name string, gens ...Mat3) *Group {
	seen := map[[9]int32]Mat3{}
	id := Identity3()
	seen[matKey(id)] = id
	// Collect keys at insert time — frontier order is deterministic,
	// while ranging over the map afterwards would not be.
	keys := [][9]int32{matKey(id)}
	frontier := []Mat3{id}
	for len(frontier) > 0 {
		var next []Mat3
		for _, f := range frontier {
			for _, g := range gens {
				p := g.Mul(f)
				k := matKey(p)
				if _, ok := seen[k]; !ok {
					seen[k] = p
					keys = append(keys, k)
					next = append(next, p)
				}
			}
		}
		frontier = next
		if len(seen) > 1000 {
			panic("geom: group closure did not converge (generators not a finite group?)")
		}
	}
	sort.Slice(keys, func(a, b int) bool {
		ka, kb := keys[a], keys[b]
		for i := range ka {
			if ka[i] != kb[i] {
				return ka[i] < kb[i]
			}
		}
		return false
	})
	g := &Group{Name: name, Elements: make([]Mat3, 0, len(seen))}
	g.Elements = append(g.Elements, id)
	idKey := matKey(id)
	for _, k := range keys {
		if k == idKey {
			continue
		}
		g.Elements = append(g.Elements, seen[k])
	}
	return g
}

// Canonical maps a direction to the lexicographically largest member
// of its orbit under the group, giving a well-defined representative
// of each asymmetric-unit cell on the sphere.
func (g *Group) Canonical(d Vec3) Vec3 {
	best := d
	for _, e := range g.Elements {
		c := e.Apply(d)
		if vecLess(best, c) {
			best = c
		}
	}
	return best
}

// InAsymmetricUnit reports whether direction d is the canonical
// representative of its orbit, i.e. lies in the group's asymmetric
// unit (one cell of area 4π/|G| on the unit sphere, up to measure-zero
// boundaries).
func (g *Group) InAsymmetricUnit(d Vec3) bool {
	for _, e := range g.Elements[1:] {
		c := e.Apply(d)
		if vecLess(d, c) {
			return false
		}
	}
	return true
}

// vecLess orders vectors lexicographically with a small tolerance so
// orbit boundaries resolve consistently.
func vecLess(a, b Vec3) bool {
	const eps = 1e-9
	if math.Abs(a.Z-b.Z) > eps {
		return a.Z < b.Z
	}
	if math.Abs(a.Y-b.Y) > eps {
		return a.Y < b.Y
	}
	if a.X < b.X-eps {
		return true
	}
	return false
}

// Reduce maps an orientation into the asymmetric unit of the group:
// it returns g·R for the group element g that takes the view axis to
// its canonical representative. Refinement restricted to a known
// symmetry searches only these reduced orientations (the "old method"
// of the paper).
func (g *Group) Reduce(e Euler) Euler {
	r := e.Matrix()
	axis := e.ViewAxis()
	best := axis
	bestElem := Identity3()
	for _, elem := range g.Elements {
		c := elem.Apply(axis)
		if vecLess(best, c) {
			best = c
			bestElem = elem
		}
	}
	return FromMatrix(bestElem.Mul(r))
}

// Orbit returns the orbit of orientation e under the group: all
// equivalent orientations g·R(e).
func (g *Group) Orbit(e Euler) []Euler {
	r := e.Matrix()
	out := make([]Euler, 0, g.Order())
	for _, elem := range g.Elements {
		out = append(out, FromMatrix(elem.Mul(r)))
	}
	return out
}
