package geom

import "math"

// Window is a rectangular search domain in (θ, φ, ω) space: the
// half-open box [Min, Max] sampled at Step degrees per axis. It is the
// "search window" of the sliding-window algorithm (paper step f).
type Window struct {
	Min, Max Euler   // inclusive corner orientations
	Step     float64 // angular resolution r_angular, degrees
}

// CenteredWindow builds a window of half-width half degrees on every
// axis around center, sampled at step degrees. With half = 4.5·step it
// yields the paper's typical w_θ = w_φ = w_ω = 10 cuts per axis.
func CenteredWindow(center Euler, half, step float64) Window {
	return Window{
		Min:  Euler{center.Theta - half, center.Phi - half, center.Omega - half},
		Max:  Euler{center.Theta + half, center.Phi + half, center.Omega + half},
		Step: step,
	}
}

// Counts returns the number of samples per axis (w_θ, w_φ, w_ω).
func (w Window) Counts() (nt, np, no int) {
	count := func(lo, hi float64) int {
		if hi < lo {
			return 0
		}
		return int(math.Floor((hi-lo)/w.Step+1e-9)) + 1
	}
	return count(w.Min.Theta, w.Max.Theta),
		count(w.Min.Phi, w.Max.Phi),
		count(w.Min.Omega, w.Max.Omega)
}

// Size returns the total number of orientations in the window,
// w = w_θ · w_φ · w_ω.
func (w Window) Size() int {
	nt, np, no := w.Counts()
	return nt * np * no
}

// Orientations enumerates every orientation in the window in
// deterministic (θ-major) order.
func (w Window) Orientations() []Euler {
	return w.AppendOrientations(nil)
}

// AppendOrientations appends the window's orientations to dst in the
// same deterministic (θ-major) order as Orientations and returns the
// extended slice. Passing a reused buffer (dst[:0]) makes repeated
// window enumeration allocation-free once the buffer has grown to the
// window size.
func (w Window) AppendOrientations(dst []Euler) []Euler {
	nt, np, no := w.Counts()
	if need := len(dst) + nt*np*no; cap(dst) < need {
		grown := make([]Euler, len(dst), need)
		copy(grown, dst)
		dst = grown
	}
	for i := 0; i < nt; i++ {
		for j := 0; j < np; j++ {
			for k := 0; k < no; k++ {
				dst = append(dst, Euler{
					w.Min.Theta + float64(i)*w.Step,
					w.Min.Phi + float64(j)*w.Step,
					w.Min.Omega + float64(k)*w.Step,
				})
			}
		}
	}
	return dst
}

// OnEdge reports whether orientation e lies on the outermost layer of
// the window grid — the trigger for sliding the window (paper step i).
func (w Window) OnEdge(e Euler) bool {
	edge := func(v, lo, hi float64) bool {
		return v <= lo+w.Step/2 || v >= hi-w.Step/2
	}
	nt, np, no := w.Counts()
	// An axis sampled at a single point can never trigger a slide.
	onT := nt > 1 && edge(e.Theta, w.Min.Theta, w.Max.Theta)
	onP := np > 1 && edge(e.Phi, w.Min.Phi, w.Max.Phi)
	onO := no > 1 && edge(e.Omega, w.Min.Omega, w.Max.Omega)
	return onT || onP || onO
}

// Recenter returns a window of identical shape centred on e: the
// sliding-window move.
func (w Window) Recenter(e Euler) Window {
	halfT := (w.Max.Theta - w.Min.Theta) / 2
	halfP := (w.Max.Phi - w.Min.Phi) / 2
	halfO := (w.Max.Omega - w.Min.Omega) / 2
	return Window{
		Min:  Euler{e.Theta - halfT, e.Phi - halfP, e.Omega - halfO},
		Max:  Euler{e.Theta + halfT, e.Phi + halfP, e.Omega + halfO},
		Step: w.Step,
	}
}

// SearchSpaceSize returns the cardinality |P| of the full search space
// for ranges [min, max] per axis at resolution r (paper §3):
//
//	|P| = Π (max_i − min_i)/r.
//
// For an asymmetric particle searched over 0..180° on all three axes
// at r = 0.1°, |P| = 1800³ ≈ 5.8·10⁹.
func SearchSpaceSize(min, max Euler, r float64) float64 {
	return ((max.Theta - min.Theta) / r) *
		((max.Phi - min.Phi) / r) *
		((max.Omega - min.Omega) / r)
}

// SphereGrid enumerates view directions (θ, φ) covering the sphere at
// approximately uniform angular spacing step (degrees), with φ rings
// thinned by sin θ so sampling density is roughly even. ω is set to 0.
// This is the classical grid used to tabulate "calculated views"
// (paper Fig. 1b).
func SphereGrid(step float64) []Euler {
	var out []Euler
	nTheta := int(math.Round(180/step)) + 1
	for i := 0; i < nTheta; i++ {
		theta := float64(i) * step
		st := math.Sin(DegToRad(theta))
		nPhi := 1
		if st > 1e-9 {
			nPhi = int(math.Max(1, math.Round(360*st/step)))
		}
		for j := 0; j < nPhi; j++ {
			out = append(out, Euler{theta, float64(j) * 360 / float64(nPhi), 0})
		}
	}
	return out
}

// AsymmetricUnitViews counts the calculated views of a sphere grid at
// the given step that fall inside the asymmetric unit of group g. For
// the icosahedral group at 3° this is ~1/60 of the full sphere — the
// small search domain of Fig. 1b; for C1 it is the entire sphere.
func AsymmetricUnitViews(g *Group, step float64) int {
	n := 0
	for _, e := range SphereGrid(step) {
		if g.InAsymmetricUnit(e.ViewAxis()) {
			n++
		}
	}
	return n
}
