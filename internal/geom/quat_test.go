package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestQuatMatrixRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		q := RandomQuat(rng)
		back := QuatFromMatrix(q.Matrix())
		if d := QuatDistance(q, back); d > 1e-6 {
			t.Fatalf("quat->matrix->quat differs by %g°", d)
		}
	}
}

func TestQuatMatrixIsRotation(t *testing.T) {
	f := func(w, x, y, z float64) bool {
		q := Quat{w, x, y, z}.Normalize()
		return q.Matrix().IsRotation(1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuatMulMatchesMatrixProduct(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 200; i++ {
		a, b := RandomQuat(rng), RandomQuat(rng)
		mq := a.Mul(b).Matrix()
		mm := a.Matrix().Mul(b.Matrix())
		for r := 0; r < 3; r++ {
			for c := 0; c < 3; c++ {
				if math.Abs(mq[r][c]-mm[r][c]) > 1e-12 {
					t.Fatalf("quat product disagrees with matrix product at (%d,%d)", r, c)
				}
			}
		}
	}
}

func TestQuatConjIsInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 100; i++ {
		q := RandomQuat(rng)
		if d := QuatDistance(q.Mul(q.Conj()), IdentityQuat()); d > 1e-9 {
			t.Fatalf("q·q* differs from identity by %g°", d)
		}
	}
}

func TestQuatEulerRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 300; i++ {
		e := Euler{rng.Float64() * 180, rng.Float64() * 360, rng.Float64() * 360}
		q := QuatFromEuler(e)
		if d := AngularDistance(e, q.Euler()); d > 1e-6 {
			t.Fatalf("euler->quat->euler differs by %g°", d)
		}
	}
}

func TestQuatDistanceMatchesAngularDistance(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 200; i++ {
		a := Euler{rng.Float64() * 180, rng.Float64() * 360, rng.Float64() * 360}
		b := Euler{rng.Float64() * 180, rng.Float64() * 360, rng.Float64() * 360}
		d1 := AngularDistance(a, b)
		d2 := QuatDistance(QuatFromEuler(a), QuatFromEuler(b))
		if math.Abs(d1-d2) > 1e-6 {
			t.Fatalf("distances disagree: matrix %g° vs quat %g°", d1, d2)
		}
	}
}

func TestSlerpEndpoints(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a, b := RandomQuat(rng), RandomQuat(rng)
	if d := QuatDistance(Slerp(a, b, 0), a); d > 1e-9 {
		t.Fatalf("Slerp(0) off by %g°", d)
	}
	if d := QuatDistance(Slerp(a, b, 1), b); d > 1e-9 {
		t.Fatalf("Slerp(1) off by %g°", d)
	}
}

func TestSlerpMidpointGeodesic(t *testing.T) {
	// The midpoint must be equidistant from both endpoints, and the
	// two halves must sum to the whole.
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 50; i++ {
		a, b := RandomQuat(rng), RandomQuat(rng)
		mid := Slerp(a, b, 0.5)
		da := QuatDistance(a, mid)
		db := QuatDistance(mid, b)
		if math.Abs(da-db) > 1e-6 {
			t.Fatalf("midpoint not equidistant: %g vs %g", da, db)
		}
		if total := QuatDistance(a, b); math.Abs(da+db-total) > 1e-6 {
			t.Fatalf("halves %g+%g != whole %g", da, db, total)
		}
	}
}

func TestSlerpNearlyParallel(t *testing.T) {
	a := IdentityQuat()
	b := QuatFromEuler(Euler{Theta: 1e-4})
	mid := Slerp(a, b, 0.5)
	if math.Abs(mid.Norm()-1) > 1e-12 {
		t.Fatal("near-parallel slerp not unit")
	}
}

func TestRandomQuatUniform(t *testing.T) {
	// Haar uniformity proxy: the rotation angle distribution of
	// uniform rotations has density (1−cosθ)/π; mean angle ≈ 126.5°.
	rng := rand.New(rand.NewSource(8))
	var sum float64
	n := 20000
	for i := 0; i < n; i++ {
		q := RandomQuat(rng)
		sum += QuatDistance(q, IdentityQuat())
	}
	mean := sum / float64(n)
	want := 90 + RadToDeg(2/math.Pi) // = 126.48°
	if math.Abs(mean-want) > 1.5 {
		t.Fatalf("mean rotation angle %g°, want ≈%g°", mean, want)
	}
}

func TestQuatNormalizeZero(t *testing.T) {
	if (Quat{}).Normalize() != IdentityQuat() {
		t.Fatal("zero quaternion did not normalize to identity")
	}
}
