package geom

import "math"

// Vec3 is a 3-vector of float64 components.
type Vec3 struct {
	X, Y, Z float64
}

// Add returns a + b.
func (a Vec3) Add(b Vec3) Vec3 { return Vec3{a.X + b.X, a.Y + b.Y, a.Z + b.Z} }

// Sub returns a - b.
func (a Vec3) Sub(b Vec3) Vec3 { return Vec3{a.X - b.X, a.Y - b.Y, a.Z - b.Z} }

// Scale returns s·a.
func (a Vec3) Scale(s float64) Vec3 { return Vec3{s * a.X, s * a.Y, s * a.Z} }

// Dot returns the inner product a·b.
func (a Vec3) Dot(b Vec3) float64 { return a.X*b.X + a.Y*b.Y + a.Z*b.Z }

// Cross returns the vector product a×b.
func (a Vec3) Cross(b Vec3) Vec3 {
	return Vec3{
		a.Y*b.Z - a.Z*b.Y,
		a.Z*b.X - a.X*b.Z,
		a.X*b.Y - a.Y*b.X,
	}
}

// Norm returns the Euclidean length of a.
func (a Vec3) Norm() float64 { return math.Sqrt(a.Dot(a)) }

// Unit returns a scaled to unit length. The zero vector is returned
// unchanged.
func (a Vec3) Unit() Vec3 {
	n := a.Norm()
	if n == 0 {
		return a
	}
	return a.Scale(1 / n)
}

// Mat3 is a row-major 3x3 matrix.
type Mat3 [3][3]float64

// Identity3 returns the identity matrix.
func Identity3() Mat3 {
	return Mat3{{1, 0, 0}, {0, 1, 0}, {0, 0, 1}}
}

// Mul returns the matrix product a·b.
func (a Mat3) Mul(b Mat3) Mat3 {
	var c Mat3
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			s := 0.0
			for k := 0; k < 3; k++ {
				s += a[i][k] * b[k][j]
			}
			c[i][j] = s
		}
	}
	return c
}

// Apply returns the matrix-vector product a·v.
func (a Mat3) Apply(v Vec3) Vec3 {
	return Vec3{
		a[0][0]*v.X + a[0][1]*v.Y + a[0][2]*v.Z,
		a[1][0]*v.X + a[1][1]*v.Y + a[1][2]*v.Z,
		a[2][0]*v.X + a[2][1]*v.Y + a[2][2]*v.Z,
	}
}

// Transpose returns the matrix transpose, which for a rotation matrix
// is its inverse.
func (a Mat3) Transpose() Mat3 {
	var t Mat3
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			t[i][j] = a[j][i]
		}
	}
	return t
}

// Det returns the determinant.
func (a Mat3) Det() float64 {
	return a[0][0]*(a[1][1]*a[2][2]-a[1][2]*a[2][1]) -
		a[0][1]*(a[1][0]*a[2][2]-a[1][2]*a[2][0]) +
		a[0][2]*(a[1][0]*a[2][1]-a[1][1]*a[2][0])
}

// Col returns column j of the matrix as a vector.
func (a Mat3) Col(j int) Vec3 {
	return Vec3{a[0][j], a[1][j], a[2][j]}
}

// Trace returns the sum of diagonal entries.
func (a Mat3) Trace() float64 { return a[0][0] + a[1][1] + a[2][2] }

// RotX returns the rotation by angle rad (radians) about the X axis.
func RotX(rad float64) Mat3 {
	s, c := math.Sincos(rad)
	return Mat3{
		{1, 0, 0},
		{0, c, -s},
		{0, s, c},
	}
}

// RotY returns the rotation by angle rad (radians) about the Y axis.
func RotY(rad float64) Mat3 {
	s, c := math.Sincos(rad)
	return Mat3{
		{c, 0, s},
		{0, 1, 0},
		{-s, 0, c},
	}
}

// RotZ returns the rotation by angle rad (radians) about the Z axis.
func RotZ(rad float64) Mat3 {
	s, c := math.Sincos(rad)
	return Mat3{
		{c, -s, 0},
		{s, c, 0},
		{0, 0, 1},
	}
}

// AxisAngle returns the rotation by angle rad (radians) about the unit
// axis. The axis is normalized internally.
func AxisAngle(axis Vec3, rad float64) Mat3 {
	u := axis.Unit()
	s, c := math.Sincos(rad)
	t := 1 - c
	return Mat3{
		{t*u.X*u.X + c, t*u.X*u.Y - s*u.Z, t*u.X*u.Z + s*u.Y},
		{t*u.X*u.Y + s*u.Z, t*u.Y*u.Y + c, t*u.Y*u.Z - s*u.X},
		{t*u.X*u.Z - s*u.Y, t*u.Y*u.Z + s*u.X, t*u.Z*u.Z + c},
	}
}

// IsRotation reports whether a is orthonormal with determinant +1 to
// within tol.
func (a Mat3) IsRotation(tol float64) bool {
	p := a.Mul(a.Transpose())
	id := Identity3()
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if math.Abs(p[i][j]-id[i][j]) > tol {
				return false
			}
		}
	}
	return math.Abs(a.Det()-1) <= tol
}

// RotationAngle returns the rotation angle of a in radians, in [0, π].
// For numerical robustness near 0 it uses ‖a − I‖_F = 2√2·sin(θ/2)
// rather than the ill-conditioned acos of the trace.
func (a Mat3) RotationAngle() float64 {
	id := Identity3()
	var fro float64
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			d := a[i][j] - id[i][j]
			fro += d * d
		}
	}
	s := math.Min(1, math.Sqrt(fro)/(2*math.Sqrt2))
	return 2 * math.Asin(s)
}
