package fourier

import (
	"math"

	"repro/internal/geom"
)

// Sampler is a spectrum sampler specialized to one VolumeDFT: the
// lattice size, oversampling factor and Nyquist bound are hoisted out
// of the per-sample path, wrap arithmetic uses conditional adds
// instead of modulo, and the batched SampleCut kernel evaluates a
// whole comparison band with the trilinear blend fully inlined. It
// produces the same values as VolumeDFT.Sample (which is kept as the
// straightforward reference implementation) but is built for the
// matching hot loop, where it is called once per band coefficient per
// candidate orientation.
//
// A Sampler is an immutable view of the spectrum and is safe for
// concurrent use.
type Sampler struct {
	data    []complex128
	l       int
	pad     float64
	ny      float64 // Nyquist bound of the (padded) lattice, l/2
	nearest bool
}

// NewSampler builds a fused sampler for the spectrum with the given
// interpolation mode.
func (v *VolumeDFT) NewSampler(interp Interpolation) Sampler {
	return Sampler{
		data:    v.Data,
		l:       v.L,
		pad:     float64(v.Pad()),
		ny:      float64(v.L) / 2,
		nearest: interp == Nearest,
	}
}

// At samples the spectrum at the continuous signed-frequency point
// (x, y, z) in image frequency units — the fused equivalent of
// VolumeDFT.Sample. Frequencies beyond Nyquist return zero.
//
//repro:hotpath
func (s *Sampler) At(x, y, z float64) complex128 {
	samplerAtCalls.Inc()
	x *= s.pad
	y *= s.pad
	z *= s.pad
	ny := s.ny
	if x < -ny || x > ny || y < -ny || y > ny || z < -ny || z > ny {
		return 0
	}
	if s.nearest {
		l := s.l
		xi := wrapFreq(int(math.Round(x)), l)
		yi := wrapFreq(int(math.Round(y)), l)
		zi := wrapFreq(int(math.Round(z)), l)
		return s.data[(xi*l+yi)*l+zi]
	}
	return s.trilinear(x, y, z)
}

// trilinear performs the 8-corner blend at an in-band padded-lattice
// point. Corner indices lie within [−l/2, l/2+1], so wrapping needs at
// most one conditional add or subtract instead of wrapFreq's modulo;
// the eight corners are gathered once and blended on separate
// real/imaginary accumulators, avoiding complex multiplies.
func (s *Sampler) trilinear(x, y, z float64) complex128 {
	l := s.l
	xf, yf, zf := math.Floor(x), math.Floor(y), math.Floor(z)
	fx, fy, fz := x-xf, y-yf, z-zf
	x0, y0, z0 := int(xf), int(yf), int(zf)
	x1, y1, z1 := x0+1, y0+1, z0+1
	if x0 < 0 {
		x0 += l
	}
	if x1 < 0 {
		x1 += l
	} else if x1 >= l {
		x1 -= l
	}
	if y0 < 0 {
		y0 += l
	}
	if y1 < 0 {
		y1 += l
	} else if y1 >= l {
		y1 -= l
	}
	if z0 < 0 {
		z0 += l
	}
	if z1 < 0 {
		z1 += l
	} else if z1 >= l {
		z1 -= l
	}
	d := s.data
	b00 := (x0*l + y0) * l
	b01 := (x0*l + y1) * l
	b10 := (x1*l + y0) * l
	b11 := (x1*l + y1) * l
	c000, c001 := d[b00+z0], d[b00+z1]
	c010, c011 := d[b01+z0], d[b01+z1]
	c100, c101 := d[b10+z0], d[b10+z1]
	c110, c111 := d[b11+z0], d[b11+z1]
	wx0, wy0, wz0 := 1-fx, 1-fy, 1-fz
	w00, w01 := wx0*wy0, wx0*fy
	w10, w11 := fx*wy0, fx*fy
	w000, w001 := w00*wz0, w00*fz
	w010, w011 := w01*wz0, w01*fz
	w100, w101 := w10*wz0, w10*fz
	w110, w111 := w11*wz0, w11*fz
	re := w000*real(c000) + w001*real(c001) + w010*real(c010) + w011*real(c011) +
		w100*real(c100) + w101*real(c101) + w110*real(c110) + w111*real(c111)
	im := w000*imag(c000) + w001*imag(c001) + w010*imag(c010) + w011*imag(c011) +
		w100*imag(c100) + w101*imag(c101) + w110*imag(c110) + w111*imag(c111)
	return complex(re, im)
}

// SampleCut evaluates the spectrum at h·x̂ + k·ŷ for every coefficient
// of a comparison band given in structure-of-arrays form (fh, fk hold
// the signed image frequencies as float64), writing dst[i] for
// (fh[i], fk[i]). x̂, ŷ are the image axes of the view — columns 0 and
// 1 of the orientation matrix. This is the batched central-section
// kernel of the matcher: one call per candidate orientation, with all
// lattice constants and rotation columns held in registers across the
// band loop. fh and fk must be at least len(dst) long.
//
//repro:hotpath
func (s *Sampler) SampleCut(dst []complex128, fh, fk []float64, xAxis, yAxis geom.Vec3) {
	samplerCutCalls.Inc()
	samplerCutCoeffs.Add(int64(len(dst)))
	xx, xy, xz := xAxis.X, xAxis.Y, xAxis.Z
	yx, yy, yz := yAxis.X, yAxis.Y, yAxis.Z
	if s.nearest {
		for i := range dst {
			h, k := fh[i], fk[i]
			dst[i] = s.At(xx*h+yx*k, xy*h+yy*k, xz*h+yz*k)
		}
		return
	}
	pad, ny := s.pad, s.ny
	l := s.l
	d := s.data
	for i := range dst {
		h, k := fh[i], fk[i]
		x := (xx*h + yx*k) * pad
		y := (xy*h + yy*k) * pad
		z := (xz*h + yz*k) * pad
		if x < -ny || x > ny || y < -ny || y > ny || z < -ny || z > ny {
			dst[i] = 0
			continue
		}
		// Trilinear blend, manually inlined (the method body is past
		// the compiler's inlining budget): same corner order and weight
		// associativity as Sampler.trilinear / VolumeDFT.Sample.
		xf, yf, zf := math.Floor(x), math.Floor(y), math.Floor(z)
		fx, fy, fz := x-xf, y-yf, z-zf
		x0, y0, z0 := int(xf), int(yf), int(zf)
		x1, y1, z1 := x0+1, y0+1, z0+1
		if x0 < 0 {
			x0 += l
		}
		if x1 < 0 {
			x1 += l
		} else if x1 >= l {
			x1 -= l
		}
		if y0 < 0 {
			y0 += l
		}
		if y1 < 0 {
			y1 += l
		} else if y1 >= l {
			y1 -= l
		}
		if z0 < 0 {
			z0 += l
		}
		if z1 < 0 {
			z1 += l
		} else if z1 >= l {
			z1 -= l
		}
		b00 := (x0*l + y0) * l
		b01 := (x0*l + y1) * l
		b10 := (x1*l + y0) * l
		b11 := (x1*l + y1) * l
		c000, c001 := d[b00+z0], d[b00+z1]
		c010, c011 := d[b01+z0], d[b01+z1]
		c100, c101 := d[b10+z0], d[b10+z1]
		c110, c111 := d[b11+z0], d[b11+z1]
		wx0, wy0, wz0 := 1-fx, 1-fy, 1-fz
		w00, w01 := wx0*wy0, wx0*fy
		w10, w11 := fx*wy0, fx*fy
		w000, w001 := w00*wz0, w00*fz
		w010, w011 := w01*wz0, w01*fz
		w100, w101 := w10*wz0, w10*fz
		w110, w111 := w11*wz0, w11*fz
		re := w000*real(c000) + w001*real(c001) + w010*real(c010) + w011*real(c011) +
			w100*real(c100) + w101*real(c101) + w110*real(c110) + w111*real(c111)
		im := w000*imag(c000) + w001*imag(c001) + w010*imag(c010) + w011*imag(c011) +
			w100*imag(c100) + w101*imag(c101) + w110*imag(c110) + w111*imag(c111)
		dst[i] = complex(re, im)
	}
}
