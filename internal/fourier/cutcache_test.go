package fourier

import (
	"sync"
	"testing"
)

func TestCutCacheGetPut(t *testing.T) {
	c := NewCutCache(0)
	key := CutKey{Step: 0.5, T: 10, P: -4, O: 7, N: 32}
	if _, ok := c.Get(key); ok {
		t.Fatal("empty cache reported a hit")
	}
	cut := []complex128{1, 2i, 3}
	if got := c.Put(key, cut); &got[0] != &cut[0] {
		t.Fatal("first Put did not return the caller's slice as canonical")
	}
	got, ok := c.Get(key)
	if !ok {
		t.Fatal("stored key missed")
	}
	if &got[0] != &cut[0] {
		t.Fatal("Get returned a different backing array than the canonical Put")
	}
	if hits, misses := c.Stats(); hits != 1 || misses != 1 {
		t.Fatalf("stats = (%d hits, %d misses), want (1, 1)", hits, misses)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
}

func TestCutCacheKeyDistinguishesFields(t *testing.T) {
	c := NewCutCache(0)
	base := CutKey{Step: 0.5, T: 1, P: 2, O: 3, N: 8}
	c.Put(base, []complex128{1})
	for _, k := range []CutKey{
		{Step: 0.25, T: 1, P: 2, O: 3, N: 8},
		{Step: 0.5, T: 2, P: 2, O: 3, N: 8},
		{Step: 0.5, T: 1, P: 3, O: 3, N: 8},
		{Step: 0.5, T: 1, P: 2, O: 4, N: 8},
		{Step: 0.5, T: 1, P: 2, O: 3, N: 9},
	} {
		if _, ok := c.Get(k); ok {
			t.Errorf("key %+v aliased %+v", k, base)
		}
	}
}

// TestCutCachePutFirstWriterWins: a racing second Put for the same key
// must return the already-published slice, so every caller shares one
// backing array.
func TestCutCachePutFirstWriterWins(t *testing.T) {
	c := NewCutCache(0)
	key := CutKey{Step: 1, T: 5, P: 5, O: 5, N: 4}
	first := []complex128{1, 2}
	second := []complex128{1, 2}
	c.Put(key, first)
	if got := c.Put(key, second); &got[0] != &first[0] {
		t.Fatal("second Put did not return the first writer's canonical slice")
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d after duplicate Put, want 1", c.Len())
	}
}

// TestCutCacheEviction: exceeding a shard's coefficient budget clears
// that shard whole, keeping the cache bounded.
func TestCutCacheEviction(t *testing.T) {
	// Budget of cutShardCount coeffs → one coefficient per shard.
	c := NewCutCache(cutShardCount)
	key := func(i int64) CutKey { return CutKey{Step: 1, T: i, P: 0, O: 0, N: 1} }
	// Find two keys in the same shard.
	a := key(0)
	b := a
	for i := int64(1); ; i++ {
		if shardOf(key(i)) == shardOf(a) {
			b = key(i)
			break
		}
	}
	c.Put(a, []complex128{1})
	c.Put(b, []complex128{2})
	if _, ok := c.Get(a); ok {
		t.Error("first entry survived an over-budget Put to its shard")
	}
	if _, ok := c.Get(b); !ok {
		t.Error("entry that triggered eviction was not cached")
	}
}

// TestCutCacheConcurrent hammers one hot key plus a per-goroutine
// spread from many goroutines; run under -race this checks the
// locking, and the hot key must converge on one shared backing array.
func TestCutCacheConcurrent(t *testing.T) {
	c := NewCutCache(0)
	hot := CutKey{Step: 0.1, T: 7, P: 8, O: 9, N: 16}
	const workers = 8
	canonical := make([][]complex128, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if cut, ok := c.Get(hot); ok {
					canonical[w] = cut
				} else {
					canonical[w] = c.Put(hot, []complex128{complex(float64(w), 0)})
				}
				k := CutKey{Step: 0.1, T: int64(w), P: int64(i), O: 0, N: 16}
				if _, ok := c.Get(k); !ok {
					c.Put(k, []complex128{1})
				}
			}
		}(w)
	}
	wg.Wait()
	for w := 1; w < workers; w++ {
		if &canonical[w][0] != &canonical[0][0] {
			t.Fatal("workers ended with different backing arrays for the hot key")
		}
	}
	hits, misses := c.Stats()
	if hits == 0 || misses == 0 {
		t.Fatalf("stats = (%d hits, %d misses), want both nonzero", hits, misses)
	}
}
