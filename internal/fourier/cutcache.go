package fourier

import (
	"math"
	"sync"
	"sync/atomic"
)

// CutKey identifies one cached central-section cut: an orientation
// quantized to a lattice of Step degrees per axis (T, P, O are the
// per-axis lattice indices θ/Step, φ/Step, ω/Step) plus the band
// prefix length N the cut was sampled over. Keys are exact — callers
// present only orientations that are whole lattice multiples — so a
// hit returns coefficients bit-identical to resampling.
type CutKey struct {
	Step    float64
	T, P, O int64
	N       int
}

const cutShardCount = 16

type cutShard struct {
	mu sync.Mutex
	m  map[CutKey][]complex128
	// coeffs is Σ len over the cached cuts — the shard's memory gauge.
	coeffs int
}

// CutCache is a sharded, concurrency-safe memo of central-section
// cuts keyed by quantized orientation. The adaptive orientation search
// walks every view over the same per-level lattice, so views refining
// near each other reuse interpolated cuts instead of re-sampling them
// — the cut construction is the dominant half of a matching operation.
// Cached slices are shared across goroutines and must be treated as
// immutable by every caller.
//
// The cache is bounded by total cached coefficients; a shard that
// would exceed its budget is cleared whole (cheap, and the descent's
// locality refills the useful entries within a few batches).
type CutCache struct {
	shards      [cutShardCount]cutShard
	shardBudget int
	// hits/misses are always-on counters (the obs mirrors fire only
	// when instrumentation is enabled) so benchmarks can report hit
	// rates without enabling the full counter registry.
	hits, misses atomic.Int64
}

// NewCutCache builds a cache bounded to roughly maxCoeffs cached
// complex coefficients in total; ≤ 0 selects a default of 4M
// (≈ 64 MiB of cut data).
func NewCutCache(maxCoeffs int) *CutCache {
	if maxCoeffs <= 0 {
		maxCoeffs = 1 << 22
	}
	c := &CutCache{shardBudget: (maxCoeffs + cutShardCount - 1) / cutShardCount}
	for i := range c.shards {
		c.shards[i].m = make(map[CutKey][]complex128)
	}
	return c
}

// shardOf hashes a key to its shard with a splitmix64-style finalizer
// over the mixed fields.
func shardOf(k CutKey) int {
	h := math.Float64bits(k.Step)
	h = cutMix(h + uint64(k.T)*0x9e3779b97f4a7c15)
	h = cutMix(h + uint64(k.P)*0xbf58476d1ce4e5b9)
	h = cutMix(h + uint64(k.O)*0x94d049bb133111eb)
	h = cutMix(h + uint64(k.N))
	return int(h & (cutShardCount - 1))
}

func cutMix(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// Get returns the cached cut for key, recording a hit or miss.
func (c *CutCache) Get(key CutKey) ([]complex128, bool) {
	s := &c.shards[shardOf(key)]
	s.mu.Lock()
	cut, ok := s.m[key]
	s.mu.Unlock()
	if ok {
		c.hits.Add(1)
		cutCacheHits.Inc()
	} else {
		c.misses.Add(1)
		cutCacheMisses.Inc()
	}
	return cut, ok
}

// Put publishes a freshly sampled cut and returns the canonical cached
// slice: when another goroutine raced the same key in first, its copy
// wins and is returned instead (both are bit-identical by
// construction, so either is correct — the point is that every caller
// ends up sharing one backing array). The caller must not write to the
// returned slice.
func (c *CutCache) Put(key CutKey, cut []complex128) []complex128 {
	s := &c.shards[shardOf(key)]
	s.mu.Lock()
	if prev, ok := s.m[key]; ok {
		s.mu.Unlock()
		return prev
	}
	if s.coeffs+len(cut) > c.shardBudget {
		clear(s.m)
		s.coeffs = 0
		cutCacheEvictions.Inc()
	}
	s.m[key] = cut
	s.coeffs += len(cut)
	s.mu.Unlock()
	return cut
}

// Stats returns the cumulative hit and miss counts.
func (c *CutCache) Stats() (hits, misses int64) {
	return c.hits.Load(), c.misses.Load()
}

// Len returns the number of cuts currently cached.
func (c *CutCache) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += len(s.m)
		s.mu.Unlock()
	}
	return n
}
