package fourier

import (
	"math"
	"math/cmplx"
	"testing"

	"repro/internal/geom"
	"repro/internal/volume"
)

func TestPaddedRoundTrip(t *testing.T) {
	g := testGrid(20)
	for _, pad := range []int{1, 2, 3} {
		v := NewVolumeDFTPadded(g, pad)
		if v.Pad() != pad {
			t.Fatalf("pad %d reported as %d", pad, v.Pad())
		}
		back := v.Grid()
		if back.L != g.L {
			t.Fatalf("pad %d: round-trip size %d, want %d", pad, back.L, g.L)
		}
		maxDiff := 0.0
		for i := range g.Data {
			if d := math.Abs(g.Data[i] - back.Data[i]); d > maxDiff {
				maxDiff = d
			}
		}
		if maxDiff > 1e-9 {
			t.Fatalf("pad %d: round-trip max error %g", pad, maxDiff)
		}
	}
}

func TestPaddedSamplesAgreeAtSharedFrequencies(t *testing.T) {
	// The padded spectrum samples the same continuous transform, so
	// values at integer image frequencies must agree with the
	// unpadded spectrum's lattice values.
	g := testGrid(16)
	v1 := NewVolumeDFT(g)
	v2 := NewVolumeDFTPadded(g, 2)
	for _, f := range []geom.Vec3{{X: 0}, {X: 1}, {X: 3, Y: -2, Z: 1}, {X: -5, Y: 5, Z: -5}} {
		a := v1.Sample(f, Trilinear)
		b := v2.Sample(f, Trilinear)
		if cmplx.Abs(a-b) > 1e-9*(1+cmplx.Abs(a)) {
			t.Fatalf("frequency %v: unpadded %v vs padded %v", f, a, b)
		}
	}
}

func TestPaddedSliceMoreAccurate(t *testing.T) {
	// At a generic orientation, slices of the oversampled spectrum
	// must be closer to the analytically known transform than slices
	// of the raw spectrum. Use a single Gaussian blob, whose centred
	// transform is itself a Gaussian.
	l := 24
	c := float64(l / 2)
	sigma := 2.0
	g := volume.NewGrid(l)
	for x := 0; x < l; x++ {
		for y := 0; y < l; y++ {
			for z := 0; z < l; z++ {
				dx, dy, dz := float64(x)-c, float64(y)-c, float64(z)-c
				g.Set(x, y, z, math.Exp(-(dx*dx+dy*dy+dz*dz)/(2*sigma*sigma)))
			}
		}
	}
	want := func(f geom.Vec3) float64 {
		// FT of exp(-r²/2σ²) = (2πσ²)^{3/2} exp(-2π²σ²|s|²), with
		// s = f/l cycles per voxel.
		s2 := f.Dot(f) / float64(l*l)
		return math.Pow(2*math.Pi*sigma*sigma, 1.5) * math.Exp(-2*math.Pi*math.Pi*sigma*sigma*s2)
	}
	v1 := NewVolumeDFT(g)
	v2 := NewVolumeDFTPadded(g, 2)
	o := geom.Euler{Theta: 37, Phi: 111, Omega: 13}
	m := o.Matrix()
	xa, ya := m.Col(0), m.Col(1)
	var err1, err2 float64
	n := 0
	for h := -8; h <= 8; h++ {
		for k := -8; k <= 8; k++ {
			if h*h+k*k > 64 {
				continue
			}
			f := xa.Scale(float64(h)).Add(ya.Scale(float64(k)))
			wa := want(f)
			err1 += math.Abs(real(v1.Sample(f, Trilinear)) - wa)
			err2 += math.Abs(real(v2.Sample(f, Trilinear)) - wa)
			n++
		}
	}
	if err2 >= err1 {
		t.Fatalf("padding did not improve slice accuracy: pad1 %g vs pad2 %g", err1/float64(n), err2/float64(n))
	}
}

func TestPaddedLowPass(t *testing.T) {
	g := testGrid(16)
	v := NewVolumeDFTPadded(g, 2)
	v.LowPass(3)
	if s := v.Sample(geom.Vec3{X: 5}, Trilinear); cmplx.Abs(s) > 1e-12 {
		t.Fatalf("coefficient beyond image-unit rmax survived: %v", s)
	}
	if s := v.Sample(geom.Vec3{X: 2}, Trilinear); cmplx.Abs(s) == 0 {
		t.Fatal("in-band coefficient removed")
	}
}

func TestNewVolumeDFTPaddedRejectsBadPad(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("pad 0 accepted")
		}
	}()
	NewVolumeDFTPadded(testGrid(8), 0)
}
