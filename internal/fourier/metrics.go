package fourier

import "repro/internal/obs"

// Sampler traffic. cut_calls counts batched central-section
// evaluations (one per candidate orientation); cut_coeffs counts band
// coefficients filled across all cuts — the raw interpolation volume
// the matcher drives. at_calls counts single-point samples (which the
// nearest-neighbour SampleCut path also routes through).
var (
	samplerAtCalls   = obs.NewCounter("fourier.sampler.at_calls")
	samplerCutCalls  = obs.NewCounter("fourier.sampler.cut_calls")
	samplerCutCoeffs = obs.NewCounter("fourier.sampler.cut_coeffs")
)

// Cut-cache traffic (same shape as the FFT plan caches): hits are cut
// reuses that skipped interpolation entirely, misses turn into samples
// followed by a Put, and an eviction is one whole shard cleared on
// budget overflow.
var (
	cutCacheHits      = obs.NewCounter("fourier.cut_cache.hits")
	cutCacheMisses    = obs.NewCounter("fourier.cut_cache.misses")
	cutCacheEvictions = obs.NewCounter("fourier.cut_cache.evictions")
)
