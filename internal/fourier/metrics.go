package fourier

import "repro/internal/obs"

// Sampler traffic. cut_calls counts batched central-section
// evaluations (one per candidate orientation); cut_coeffs counts band
// coefficients filled across all cuts — the raw interpolation volume
// the matcher drives. at_calls counts single-point samples (which the
// nearest-neighbour SampleCut path also routes through).
var (
	samplerAtCalls   = obs.NewCounter("fourier.sampler.at_calls")
	samplerCutCalls  = obs.NewCounter("fourier.sampler.cut_calls")
	samplerCutCoeffs = obs.NewCounter("fourier.sampler.cut_coeffs")
)
