package fourier

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/volume"
)

// randomVolumeDFT builds the spectrum of a random density at the given
// oversampling factor.
func randomVolumeDFT(l, pad int, seed int64) *VolumeDFT {
	rng := rand.New(rand.NewSource(seed))
	g := volume.NewGrid(l)
	for i := range g.Data {
		g.Data[i] = rng.NormFloat64()
	}
	if pad <= 1 {
		return NewVolumeDFT(g)
	}
	return NewVolumeDFTPadded(g, pad)
}

func cdiff(a, b complex128) float64 {
	return math.Hypot(real(a)-real(b), imag(a)-imag(b))
}

// TestSamplerMatchesSample drives the fused sampler and the scalar
// reference over randomized in-band and out-of-band points, for both
// interpolation modes and both padded and unpadded spectra.
func TestSamplerMatchesSample(t *testing.T) {
	for _, tc := range []struct {
		name   string
		pad    int
		interp Interpolation
	}{
		{"trilinear-unpadded", 1, Trilinear},
		{"trilinear-padded", 2, Trilinear},
		{"nearest-unpadded", 1, Nearest},
		{"nearest-padded", 2, Nearest},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dft := randomVolumeDFT(16, tc.pad, 41)
			s := dft.NewSampler(tc.interp)
			rng := rand.New(rand.NewSource(7))
			scale := 0.0
			for _, v := range dft.Data {
				if a := real(v)*real(v) + imag(v)*imag(v); a > scale {
					scale = a
				}
			}
			scale = math.Sqrt(scale)
			for i := 0; i < 4000; i++ {
				// Span well past Nyquist so the out-of-band zero path is
				// exercised too.
				f := geom.Vec3{
					X: (rng.Float64() - 0.5) * 22,
					Y: (rng.Float64() - 0.5) * 22,
					Z: (rng.Float64() - 0.5) * 22,
				}
				want := dft.Sample(f, tc.interp)
				got := s.At(f.X, f.Y, f.Z)
				if d := cdiff(got, want); d > 1e-12*scale {
					t.Fatalf("point %v: fused %v, reference %v (diff %g)", f, got, want, d)
				}
			}
		})
	}
}

// TestSampleCutMatchesSample checks the batched band kernel against
// per-point reference sampling for random orientations and bands.
func TestSampleCutMatchesSample(t *testing.T) {
	for _, interp := range []Interpolation{Trilinear, Nearest} {
		dft := randomVolumeDFT(16, 2, 43)
		s := dft.NewSampler(interp)
		rng := rand.New(rand.NewSource(11))
		const nBand = 120
		fh := make([]float64, nBand)
		fk := make([]float64, nBand)
		for i := range fh {
			fh[i] = float64(rng.Intn(17) - 8)
			fk[i] = float64(rng.Intn(17) - 8)
		}
		dst := make([]complex128, nBand)
		for trial := 0; trial < 40; trial++ {
			o := geom.Euler{
				Theta: rng.Float64() * 180,
				Phi:   rng.Float64() * 360,
				Omega: rng.Float64() * 360,
			}
			rot := o.Matrix()
			xa, ya := rot.Col(0), rot.Col(1)
			s.SampleCut(dst, fh, fk, xa, ya)
			for i := range dst {
				f := xa.Scale(fh[i]).Add(ya.Scale(fk[i]))
				want := dft.Sample(f, interp)
				if d := cdiff(dst[i], want); d > 1e-12 {
					t.Fatalf("interp %v band %d orient %v: fused %v, reference %v",
						interp, i, o, dst[i], want)
				}
			}
		}
	}
}

// TestSamplerEdgeFrequencies pins the wrap arithmetic at the exact
// Nyquist boundary, where the conditional-subtract path replaces
// modulo wrapping.
func TestSamplerEdgeFrequencies(t *testing.T) {
	dft := randomVolumeDFT(16, 1, 47)
	s := dft.NewSampler(Trilinear)
	ny := float64(dft.L) / 2
	for _, f := range []geom.Vec3{
		{X: ny}, {Y: ny}, {Z: ny},
		{X: -ny}, {Y: -ny}, {Z: -ny},
		{X: ny, Y: -ny, Z: ny},
		{X: ny - 0.5, Y: 0.5 - ny, Z: 0},
		{X: ny + 1e-9},
	} {
		want := dft.Sample(f, Trilinear)
		got := s.At(f.X, f.Y, f.Z)
		if d := cdiff(got, want); d > 1e-12 {
			t.Fatalf("edge point %v: fused %v, reference %v", f, got, want)
		}
	}
}

func BenchmarkSamplerAt(b *testing.B) {
	dft := randomVolumeDFT(32, 2, 3)
	s := dft.NewSampler(Trilinear)
	b.ReportAllocs()
	var acc complex128
	for i := 0; i < b.N; i++ {
		acc += s.At(3.7, -2.2, 5.9)
	}
	_ = acc
}

func BenchmarkVolumeDFTSample(b *testing.B) {
	dft := randomVolumeDFT(32, 2, 3)
	f := geom.Vec3{X: 3.7, Y: -2.2, Z: 5.9}
	b.ReportAllocs()
	var acc complex128
	for i := 0; i < b.N; i++ {
		acc += dft.Sample(f, Trilinear)
	}
	_ = acc
}
