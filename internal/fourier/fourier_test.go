package fourier

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/volume"
)

// gaussianBlobGrid builds a compact smooth test density: a few
// Gaussian blobs well inside the box.
func gaussianBlobGrid(l int, blobs [][4]float64) *volume.Grid {
	g := volume.NewGrid(l)
	for x := 0; x < l; x++ {
		for y := 0; y < l; y++ {
			for z := 0; z < l; z++ {
				var v float64
				for _, b := range blobs {
					dx, dy, dz := float64(x)-b[0], float64(y)-b[1], float64(z)-b[2]
					v += math.Exp(-(dx*dx + dy*dy + dz*dz) / (2 * b[3] * b[3]))
				}
				g.Set(x, y, z, v)
			}
		}
	}
	return g
}

func testGrid(l int) *volume.Grid {
	c := float64(l / 2)
	return gaussianBlobGrid(l, [][4]float64{
		{c, c, c, 2.0},
		{c + 5, c - 2, c + 1, 1.5},
		{c - 4, c + 3, c - 3, 1.8},
	})
}

func TestVolumeDFTRoundTrip(t *testing.T) {
	g := testGrid(24)
	v := NewVolumeDFT(g)
	back := v.Grid()
	if c := volume.Correlation(g, back); c < 1-1e-12 {
		t.Fatalf("volume DFT round-trip correlation %g", c)
	}
	maxDiff := 0.0
	for i := range g.Data {
		if d := math.Abs(g.Data[i] - back.Data[i]); d > maxDiff {
			maxDiff = d
		}
	}
	if maxDiff > 1e-10 {
		t.Fatalf("volume DFT round-trip max error %g", maxDiff)
	}
}

func TestImageDFTRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	im := volume.NewImage(17)
	for i := range im.Data {
		im.Data[i] = r.NormFloat64()
	}
	back := InverseImageDFT(ImageDFT(im))
	for i := range im.Data {
		if math.Abs(im.Data[i]-back.Data[i]) > 1e-10 {
			t.Fatalf("image DFT round-trip error at %d", i)
		}
	}
}

func TestCenteredSpectrumIsSmoothForCenteredBlob(t *testing.T) {
	// A symmetric blob centred at l/2 has a real, positive, smooth
	// centred spectrum near DC — the property interpolation needs.
	l := 16
	c := float64(l / 2)
	g := gaussianBlobGrid(l, [][4]float64{{c, c, c, 2.5}})
	v := NewVolumeDFT(g)
	for _, idx := range [][3]int{{0, 0, 0}, {1, 0, 0}, {0, 1, 0}, {0, 0, 1}, {1, 1, 1}} {
		val := v.Data[(idx[0]*l+idx[1])*l+idx[2]]
		if imag(val) > 1e-9 || imag(val) < -1e-9 {
			t.Fatalf("centred spectrum of symmetric blob not real at %v: %v", idx, val)
		}
		if real(val) <= 0 {
			t.Fatalf("centred spectrum not positive at %v: %v", idx, val)
		}
	}
}

func TestSampleAtLatticePoints(t *testing.T) {
	g := testGrid(16)
	v := NewVolumeDFT(g)
	l := 16
	for _, f := range [][3]int{{0, 0, 0}, {3, -2, 1}, {-5, 5, -5}, {7, 0, 0}} {
		want := v.Data[(wrapFreq(f[0], l)*l+wrapFreq(f[1], l))*l+wrapFreq(f[2], l)]
		got := v.Sample(geom.Vec3{X: float64(f[0]), Y: float64(f[1]), Z: float64(f[2])}, Trilinear)
		if cmplx.Abs(got-want) > 1e-12 {
			t.Fatalf("Sample at lattice point %v = %v, want %v", f, got, want)
		}
		gotN := v.Sample(geom.Vec3{X: float64(f[0]), Y: float64(f[1]), Z: float64(f[2])}, Nearest)
		if cmplx.Abs(gotN-want) > 1e-12 {
			t.Fatalf("Nearest sample at lattice point %v mismatch", f)
		}
	}
}

func TestSampleBeyondNyquistIsZero(t *testing.T) {
	v := NewVolumeDFT(testGrid(8))
	if v.Sample(geom.Vec3{X: 5, Y: 0, Z: 0}, Trilinear) != 0 {
		t.Fatal("sample beyond Nyquist must be zero")
	}
}

func TestExtractSliceIdentityOrientation(t *testing.T) {
	// At the identity orientation the slice is the fz=0 plane of the
	// volume spectrum.
	l := 16
	g := testGrid(l)
	v := NewVolumeDFT(g)
	slice := v.ExtractSlice(geom.Euler{}, 6, Trilinear)
	for h := -6; h <= 6; h++ {
		for k := -6; k <= 6; k++ {
			if h*h+k*k > 36 {
				continue
			}
			want := v.Data[(wrapFreq(h, l)*l+wrapFreq(k, l))*l+0]
			got := slice.Data[wrapFreq(h, l)*l+wrapFreq(k, l)]
			if cmplx.Abs(got-want) > 1e-12 {
				t.Fatalf("slice(%d,%d) = %v, want %v", h, k, got, want)
			}
		}
	}
}

func TestExtractSliceBandLimit(t *testing.T) {
	l := 16
	v := NewVolumeDFT(testGrid(l))
	slice := v.ExtractSlice(geom.Euler{Theta: 30, Phi: 60, Omega: 10}, 3, Trilinear)
	for j := 0; j < l; j++ {
		h := j
		if h > l/2 {
			h -= l
		}
		for k := 0; k < l; k++ {
			kk := k
			if kk > l/2 {
				kk -= l
			}
			if h*h+kk*kk > 9 && slice.Data[j*l+k] != 0 {
				t.Fatalf("out-of-band coefficient (%d,%d) nonzero", h, kk)
			}
		}
	}
}

func TestExtractSliceHermitian(t *testing.T) {
	// The slice of a real map's spectrum must itself be Hermitian.
	l := 16
	v := NewVolumeDFT(testGrid(l))
	slice := v.ExtractSlice(geom.Euler{Theta: 47, Phi: 133, Omega: 71}, 6, Trilinear)
	for j := 0; j < l; j++ {
		for k := 0; k < l; k++ {
			a := slice.Data[j*l+k]
			b := slice.Data[((l-j)%l)*l+(l-k)%l]
			if cmplx.Abs(a-cmplx.Conj(b)) > 1e-9 {
				t.Fatalf("slice not Hermitian at (%d,%d): %v vs %v", j, k, a, b)
			}
		}
	}
}

func TestExtractSliceOmegaRotatesInPlane(t *testing.T) {
	// Changing ω rotates the slice within its plane: the set of
	// sampled 3-D frequencies is the same, so the slice energies
	// must match closely.
	v := NewVolumeDFT(testGrid(16))
	s0 := v.ExtractSlice(geom.Euler{Theta: 30, Phi: 40, Omega: 0}, 6, Trilinear)
	s90 := v.ExtractSlice(geom.Euler{Theta: 30, Phi: 40, Omega: 90}, 6, Trilinear)
	e0, e90 := s0.Energy(), s90.Energy()
	if math.Abs(e0-e90)/e0 > 0.05 {
		t.Fatalf("ω=90° slice energy differs: %g vs %g", e0, e90)
	}
}

func TestShiftPhaseMatchesRealShift(t *testing.T) {
	// Phase-ramp shift must agree with spatial-domain shifting for
	// integer offsets of a compact image.
	l := 32
	c := float64(l / 2)
	im := volume.NewImage(l)
	for j := 0; j < l; j++ {
		for k := 0; k < l; k++ {
			dx, dy := float64(j)-c, float64(k)-c
			im.Set(j, k, math.Exp(-(dx*dx+dy*dy)/8))
		}
	}
	f := ImageDFT(im)
	ShiftPhase(f, 3, -2)
	shifted := InverseImageDFT(f)
	want := im.Shift(3, -2)
	if cc := volume.ImageCorrelation(shifted, want); cc < 0.9999 {
		t.Fatalf("phase shift vs real shift correlation %g", cc)
	}
}

func TestShiftPhaseComposes(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	im := volume.NewImage(16)
	for i := range im.Data {
		im.Data[i] = r.NormFloat64()
	}
	a := ImageDFT(im)
	ShiftPhase(a, 1.3, -0.7)
	ShiftPhase(a, -1.3, 0.7)
	b := ImageDFT(im)
	for i := range a.Data {
		if cmplx.Abs(a.Data[i]-b.Data[i]) > 1e-9 {
			t.Fatal("shift composition not identity")
		}
	}
}

func TestLowPassRemovesHighFrequencies(t *testing.T) {
	v := NewVolumeDFT(testGrid(16))
	v.LowPass(4)
	l := 16
	if v.Data[(5*l+0)*l+0] != 0 {
		t.Fatal("coefficient beyond rmax survived LowPass")
	}
	if v.Data[0] == 0 {
		t.Fatal("DC removed by LowPass")
	}
}
