// Package fourier implements the Fourier-domain geometry of the
// orientation-refinement algorithm: centred 2-D/3-D DFTs of images and
// density maps, extraction of central-section cuts of the 3-D DFT at
// arbitrary orientations (the projection-slice theorem), phase-ramp
// image shifts for centre refinement, and the adjoint insertion
// operation used by the Fourier-inversion reconstruction.
//
// Centred transforms. The lab convention places the particle origin at
// voxel/pixel l/2. Package fft computes DFTs relative to index 0, so
// every transform here is "centred" by multiplying coefficient f by
// exp(+2πi·(Σf)·(l/2)/l), which removes the rapid phase ramp caused by
// the origin offset. Centred spectra are smooth for compact particles,
// which is what makes trilinear interpolation between lattice points
// accurate — the paper's "interpolation in the 3-D Fourier domain"
// (step f) depends on exactly this.
package fourier

import (
	"math"
	"math/cmplx"

	"repro/internal/fft"
	"repro/internal/geom"
	"repro/internal/volume"
)

// Interpolation selects how central sections sample the 3-D DFT
// lattice.
type Interpolation int

const (
	// Trilinear is 8-point linear interpolation, the production
	// choice.
	Trilinear Interpolation = iota
	// Nearest is nearest-neighbour sampling, kept as an ablation
	// baseline: cheaper but much less accurate.
	Nearest
)

// VolumeDFT is the centred 3-D DFT D̂ of an electron-density map, in
// standard DFT index layout. It is immutable once built and safe for
// concurrent reads, which is how the refinement distributes one
// replicated copy to every node.
//
// The spectrum may be oversampled: NewVolumeDFTPadded embeds the map
// in a larger box before transforming, which samples the same
// continuous spectrum on a Pad-times finer lattice and sharply reduces
// the interpolation error of central-section extraction. SrcL is
// always the original map (and view) size; L = Pad·SrcL is the lattice
// edge of Data.
type VolumeDFT struct {
	L    int
	SrcL int
	Data []complex128
}

// NewVolumeDFT computes the centred 3-D DFT of g with no oversampling.
func NewVolumeDFT(g *volume.Grid) *VolumeDFT {
	return NewVolumeDFTPadded(g, 1)
}

// NewVolumeDFTPadded embeds g centrally in a box pad times larger,
// then computes the centred 3-D DFT. pad = 2 is the usual production
// choice for accurate trilinear slice extraction.
func NewVolumeDFTPadded(g *volume.Grid, pad int) *VolumeDFT {
	if pad < 1 {
		panic("fourier: pad must be ≥ 1")
	}
	l := g.L
	bl := pad * l
	// The padded cube is purely real, so the transform runs through the
	// Hermitian-symmetry real-input path — half the floating-point work
	// of the complex 3-D FFT. NewVolumeDFTComplex keeps the complex
	// route as the reference implementation (and test oracle).
	src := make([]float64, bl*bl*bl)
	off := bl/2 - l/2 // maps voxel l/2 (particle origin) onto bl/2
	for x := 0; x < l; x++ {
		for y := 0; y < l; y++ {
			base := ((x+off)*bl + y + off) * bl
			srcBase := (x*l + y) * l
			copy(src[base+off:base+off+l], g.Data[srcBase:srcBase+l])
		}
	}
	data := make([]complex128, bl*bl*bl)
	fft.NewRealPlan3D(bl, bl, bl).Forward(src, data)
	applyCenterRamp3D(data, bl, +1)
	return &VolumeDFT{L: bl, SrcL: l, Data: data}
}

// NewVolumeDFTComplex is the pre-real-path construction of the centred
// padded spectrum, kept verbatim as the reference implementation for
// oracle tests of the Hermitian-symmetry route.
//
//repro:oracle
func NewVolumeDFTComplex(g *volume.Grid, pad int) *VolumeDFT {
	if pad < 1 {
		panic("fourier: pad must be ≥ 1")
	}
	l := g.L
	bl := pad * l
	data := make([]complex128, bl*bl*bl)
	off := bl/2 - l/2
	for x := 0; x < l; x++ {
		for y := 0; y < l; y++ {
			base := ((x+off)*bl + y + off) * bl
			srcBase := (x*l + y) * l
			for z := 0; z < l; z++ {
				data[base+z+off] = complex(g.Data[srcBase+z], 0)
			}
		}
	}
	fft.NewPlan3D(bl, bl, bl).Forward(data)
	applyCenterRamp3D(data, bl, +1)
	return &VolumeDFT{L: bl, SrcL: l, Data: data}
}

// Pad returns the oversampling factor L/SrcL.
func (v *VolumeDFT) Pad() int { return v.L / v.SrcL }

// Grid converts the centred spectrum back to a real-space density map
// of the original size (inverse of NewVolumeDFTPadded, cropping the
// padding). The imaginary residue is discarded.
func (v *VolumeDFT) Grid() *volume.Grid {
	bl := v.L
	data := append([]complex128(nil), v.Data...)
	applyCenterRamp3D(data, bl, -1)
	fft.NewPlan3D(bl, bl, bl).Inverse(data)
	l := v.SrcL
	off := bl/2 - l/2
	g := volume.NewGrid(l)
	for x := 0; x < l; x++ {
		for y := 0; y < l; y++ {
			for z := 0; z < l; z++ {
				g.Set(x, y, z, real(data[((x+off)*bl+y+off)*bl+z+off]))
			}
		}
	}
	return g
}

// CGrid returns the centred spectrum as a CGrid sharing the same
// backing array. Mutating it mutates the VolumeDFT.
func (v *VolumeDFT) CGrid() *volume.CGrid {
	return &volume.CGrid{L: v.L, Data: v.Data}
}

// LowPass zeroes all coefficients beyond frequency radius rmax (in
// image frequency units), mirroring the paper's restriction of D̂ to a
// sphere of radius r_map.
func (v *VolumeDFT) LowPass(rmax float64) {
	v.CGrid().LowPass(rmax * float64(v.Pad()))
}

// Sample returns the spectrum value at a continuous signed-frequency
// point f in *image* frequency units (cycles per SrcL-pixel box, so
// the view's Nyquist sphere has radius SrcL/2), using the given
// interpolation. An oversampled spectrum is addressed on its finer
// lattice transparently. Frequencies beyond Nyquist return zero.
//
// Sample is the scalar reference implementation; production sampling
// goes through the fused Sampler (NewSampler/At/SampleCut), which is
// bit-identical. Oracle tests hold the two together.
//
//repro:oracle
func (v *VolumeDFT) Sample(f geom.Vec3, interp Interpolation) complex128 {
	if pad := v.Pad(); pad != 1 {
		s := float64(pad)
		f = geom.Vec3{X: f.X * s, Y: f.Y * s, Z: f.Z * s}
	}
	l := v.L
	ny := float64(l) / 2
	if f.X < -ny || f.X > ny || f.Y < -ny || f.Y > ny || f.Z < -ny || f.Z > ny {
		return 0
	}
	if interp == Nearest {
		xi := wrapFreq(int(math.Round(f.X)), l)
		yi := wrapFreq(int(math.Round(f.Y)), l)
		zi := wrapFreq(int(math.Round(f.Z)), l)
		return v.Data[(xi*l+yi)*l+zi]
	}
	x0, y0, z0 := int(math.Floor(f.X)), int(math.Floor(f.Y)), int(math.Floor(f.Z))
	fx, fy, fz := f.X-float64(x0), f.Y-float64(y0), f.Z-float64(z0)
	var sum complex128
	for dx := 0; dx <= 1; dx++ {
		wx := 1 - fx
		if dx == 1 {
			wx = fx
		}
		if wx == 0 {
			continue
		}
		xi := wrapFreq(x0+dx, l)
		for dy := 0; dy <= 1; dy++ {
			wy := 1 - fy
			if dy == 1 {
				wy = fy
			}
			if wy == 0 {
				continue
			}
			yi := wrapFreq(y0+dy, l)
			for dz := 0; dz <= 1; dz++ {
				wz := 1 - fz
				if dz == 1 {
					wz = fz
				}
				if wz == 0 {
					continue
				}
				zi := wrapFreq(z0+dz, l)
				sum += complex(wx*wy*wz, 0) * v.Data[(xi*l+yi)*l+zi]
			}
		}
	}
	return sum
}

// wrapFreq maps a signed frequency to its DFT array index, wrapping
// modulo l (Nyquist-adjacent corners alias, which matches the
// periodicity of the DFT).
func wrapFreq(f, l int) int {
	f %= l
	if f < 0 {
		f += l
	}
	return f
}

// ExtractSlice computes the central section C of the volume spectrum
// at orientation o: C[h,k] = D̂(h·x̂' + k·ŷ') for all signed image
// frequencies (h,k) with h²+k² ≤ rmax², where x̂', ŷ' are the image
// axes of the view (columns 0 and 1 of the orientation matrix).
// Out-of-band coefficients are zero. The result is in the same
// centred convention as ImageDFT, so it can be compared directly with
// the transform of an experimental view.
func (v *VolumeDFT) ExtractSlice(o geom.Euler, rmax float64, interp Interpolation) *volume.CImage {
	out := volume.NewCImage(v.SrcL)
	v.ExtractSliceInto(out, o, rmax, interp)
	return out
}

// ExtractSliceInto is ExtractSlice writing into a caller-provided
// image, zeroing it first; it avoids per-cut allocation in the hot
// search loop.
func (v *VolumeDFT) ExtractSliceInto(dst *volume.CImage, o geom.Euler, rmax float64, interp Interpolation) {
	l := v.SrcL
	if dst.L != l {
		panic("fourier: slice destination size mismatch")
	}
	for i := range dst.Data {
		dst.Data[i] = 0
	}
	m := o.Matrix()
	xAxis, yAxis := m.Col(0), m.Col(1)
	rmax = math.Min(rmax, float64(l)/2)
	ri := int(rmax)
	r2 := rmax * rmax
	s := v.NewSampler(interp)
	for h := -ri; h <= ri; h++ {
		fh := float64(h)
		for k := -ri; k <= ri; k++ {
			fk := float64(k)
			if fh*fh+fk*fk > r2 {
				continue
			}
			f := xAxis.Scale(fh).Add(yAxis.Scale(fk))
			val := s.At(f.X, f.Y, f.Z)
			dst.Data[wrapFreq(h, l)*l+wrapFreq(k, l)] = val
		}
	}
}

// ImageDFT computes the centred 2-D DFT F of a view. Views are real,
// so the transform runs through the Hermitian-symmetry real-input path
// (about half the work of the complex 2-D FFT); ImageDFTComplex keeps
// the complex route as the reference implementation.
func ImageDFT(im *volume.Image) *volume.CImage {
	c := volume.NewCImage(im.L)
	ImageDFTInto(c, im)
	return c
}

// ImageDFTInto is ImageDFT writing into a caller-provided image,
// avoiding the per-view spectrum allocation in streaming paths. For
// repeated transforms of equally sized views prefer a ViewTransformer,
// which additionally reuses the plan scratch and ramp table.
func ImageDFTInto(dst *volume.CImage, im *volume.Image) {
	NewViewTransformer(im.L).Transform(im, dst)
}

// ImageDFTComplex is the pre-real-path view transform, kept verbatim
// as the reference implementation for oracle tests.
//
//repro:oracle
func ImageDFTComplex(im *volume.Image) *volume.CImage {
	l := im.L
	c := im.Complex()
	fft.NewPlan2D(l, l).Forward(c.Data)
	applyCenterRamp2D(c.Data, l, +1)
	return c
}

// ViewTransformer performs repeated centred 2-D DFTs of equally sized
// real views through the real-input FFT path, owning all scratch (plan
// buffers and the centring ramp) so steady-state transforms allocate
// nothing. Not safe for concurrent use; each worker should own one.
type ViewTransformer struct {
	l    int
	plan *fft.RealPlan2D
	ramp []complex128
}

// NewViewTransformer creates a transformer for l×l views.
func NewViewTransformer(l int) *ViewTransformer {
	return &ViewTransformer{l: l, plan: fft.NewRealPlan2D(l, l), ramp: centerRamp(l, +1)}
}

// Transform computes the centred 2-D DFT of im into dst (fully
// overwritten), in the same convention as ImageDFT.
func (t *ViewTransformer) Transform(im *volume.Image, dst *volume.CImage) {
	if im.L != t.l || dst.L != t.l {
		panic("fourier: ViewTransformer size mismatch")
	}
	t.plan.Forward(im.Data, dst.Data)
	for j := 0; j < t.l; j++ {
		rj := t.ramp[j]
		row := dst.Data[j*t.l : (j+1)*t.l]
		for k := range row {
			row[k] *= rj * t.ramp[k]
		}
	}
}

// InverseImageDFT converts a centred spectrum back to a real image.
func InverseImageDFT(f *volume.CImage) *volume.Image {
	l := f.L
	data := append([]complex128(nil), f.Data...)
	applyCenterRamp2D(data, l, -1)
	fft.NewPlan2D(l, l).Inverse(data)
	im := volume.NewImage(l)
	for i, v := range data {
		im.Data[i] = real(v)
	}
	return im
}

// ShiftPhase applies the Fourier shift theorem in place: the image is
// translated by (dx, dy) pixels, F[h,k] *= exp(−2πi(h·dx + k·dy)/l).
// This is how centre refinement (step k) moves the particle origin
// without resampling pixels.
func ShiftPhase(f *volume.CImage, dx, dy float64) {
	l := f.L
	for j := 0; j < l; j++ {
		h := float64(fft.FreqIndex(j, l))
		for k := 0; k < l; k++ {
			kk := float64(fft.FreqIndex(k, l))
			angle := -2 * math.Pi * (h*dx + kk*dy) / float64(l)
			f.Data[j*l+k] *= cmplx.Exp(complex(0, angle))
		}
	}
}

// applyCenterRamp3D multiplies coefficient (fx,fy,fz) by
// exp(sign·2πi·(fx+fy+fz)·c/l) with c = l/2, converting between
// index-0-origin and centred spectra.
func applyCenterRamp3D(data []complex128, l int, sign float64) {
	ramp := centerRamp(l, sign)
	for x := 0; x < l; x++ {
		rx := ramp[x]
		for y := 0; y < l; y++ {
			rxy := rx * ramp[y]
			base := (x*l + y) * l
			for z := 0; z < l; z++ {
				data[base+z] *= rxy * ramp[z]
			}
		}
	}
}

func applyCenterRamp2D(data []complex128, l int, sign float64) {
	ramp := centerRamp(l, sign)
	for j := 0; j < l; j++ {
		rj := ramp[j]
		for k := 0; k < l; k++ {
			data[j*l+k] *= rj * ramp[k]
		}
	}
}

// centerRamp tabulates exp(sign·2πi·f·(l/2)/l) for every array index.
func centerRamp(l int, sign float64) []complex128 {
	c := float64(l / 2)
	out := make([]complex128, l)
	for i := 0; i < l; i++ {
		f := float64(fft.FreqIndex(i, l))
		out[i] = cmplx.Exp(complex(0, sign*2*math.Pi*f*c/float64(l)))
	}
	return out
}
