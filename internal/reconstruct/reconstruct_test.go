package reconstruct

import (
	"math"
	"testing"

	"repro/internal/ctf"
	"repro/internal/geom"
	"repro/internal/micrograph"
	"repro/internal/phantom"
	"repro/internal/volume"
)

func dataset(t testing.TB, l, n int, gen micrograph.GenParams) *micrograph.Dataset {
	t.Helper()
	truth := phantom.Asymmetric(l, 8, 1)
	truth.SphericalMask(0.4 * float64(l))
	gen.NumViews = n
	if gen.PixelA == 0 {
		gen.PixelA = 2
	}
	return micrograph.Generate(truth, gen)
}

func TestReconstructionRecoversMap(t *testing.T) {
	l := 32
	ds := dataset(t, l, 120, micrograph.GenParams{Seed: 1})
	rec, err := FromViews(ds.Images(), ds.TrueOrientations(), nil, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Compare band-limited: mask both maps to the particle radius.
	a := ds.Truth.Clone()
	b := rec.Clone()
	a.SphericalMask(0.4 * float64(l))
	b.SphericalMask(0.4 * float64(l))
	if cc := volume.Correlation(a, b); cc < 0.9 {
		t.Fatalf("reconstruction correlation %.4f, want ≥0.9", cc)
	}
}

func TestReconstructionImprovesWithViews(t *testing.T) {
	l := 24
	ds := dataset(t, l, 100, micrograph.GenParams{Seed: 2, SNR: 1})
	few, err := FromViews(ds.Images()[:10], ds.TrueOrientations()[:10], nil, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	many, err := FromViews(ds.Images(), ds.TrueOrientations(), nil, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ccFew := volume.Correlation(ds.Truth, few)
	ccMany := volume.Correlation(ds.Truth, many)
	if ccMany <= ccFew {
		t.Fatalf("more views did not help: %d views %.4f vs %d views %.4f",
			10, ccFew, 100, ccMany)
	}
}

func TestReconstructionWithCenters(t *testing.T) {
	// Views with known centre offsets reconstructed with the matching
	// corrections must beat reconstruction that ignores the offsets.
	l := 24
	ds := dataset(t, l, 60, micrograph.GenParams{Seed: 3, CenterJitter: 2})
	centers := make([][2]float64, len(ds.Views))
	for i, v := range ds.Views {
		// The correction is the shift that undoes the jitter.
		centers[i] = [2]float64{-v.TrueCenter[0], -v.TrueCenter[1]}
	}
	good, err := FromViews(ds.Images(), ds.TrueOrientations(), centers, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	bad, err := FromViews(ds.Images(), ds.TrueOrientations(), nil, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ccGood := volume.Correlation(ds.Truth, good)
	ccBad := volume.Correlation(ds.Truth, bad)
	if ccGood <= ccBad {
		t.Fatalf("centre corrections did not help: %.4f vs %.4f", ccGood, ccBad)
	}
}

func TestReconstructionDegradesWithWrongOrientations(t *testing.T) {
	l := 24
	ds := dataset(t, l, 60, micrograph.GenParams{Seed: 4})
	good, _ := FromViews(ds.Images(), ds.TrueOrientations(), nil, nil, Options{})
	perturbed := ds.PerturbedOrientations(8, 5)
	bad, _ := FromViews(ds.Images(), perturbed, nil, nil, Options{})
	ccGood := volume.Correlation(ds.Truth, good)
	ccBad := volume.Correlation(ds.Truth, bad)
	// Global correlation is dominated by low frequencies, so the drop
	// is modest — but it must be a clear drop.
	if ccGood-ccBad < 0.01 {
		t.Fatalf("8° orientation errors barely hurt: %.4f vs %.4f", ccGood, ccBad)
	}
}

func TestWienerCTFReconstruction(t *testing.T) {
	l := 32
	ds := dataset(t, l, 100, micrograph.GenParams{Seed: 6, ApplyCTF: true, DefocusGroups: 3})
	var ctfs []ctf.Params
	for _, v := range ds.Views {
		ctfs = append(ctfs, v.CTF)
	}
	withCTF, err := FromViews(ds.Images(), ds.TrueOrientations(), nil, ctfs, Options{WienerCTF: true})
	if err != nil {
		t.Fatal(err)
	}
	withoutCTF, err := FromViews(ds.Images(), ds.TrueOrientations(), nil, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ccWith := volume.Correlation(ds.Truth, withCTF)
	ccWithout := volume.Correlation(ds.Truth, withoutCTF)
	if ccWith <= ccWithout {
		t.Fatalf("CTF-aware reconstruction (%.4f) no better than naive (%.4f)", ccWith, ccWithout)
	}
}

func TestWienerRequiresParams(t *testing.T) {
	l := 16
	ds := dataset(t, l, 4, micrograph.GenParams{Seed: 7})
	if _, err := FromViews(ds.Images(), ds.TrueOrientations(), nil, nil, Options{WienerCTF: true}); err == nil {
		t.Fatal("WienerCTF without params accepted")
	}
}

func TestSplitHalves(t *testing.T) {
	l := 24
	ds := dataset(t, l, 80, micrograph.GenParams{Seed: 8})
	odd, even, err := SplitHalves(ds.Images(), ds.TrueOrientations(), nil, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Both halves must resemble the truth and each other.
	if cc := volume.Correlation(odd, even); cc < 0.8 {
		t.Fatalf("half-maps correlation %.4f", cc)
	}
	if cc := volume.Correlation(ds.Truth, odd); cc < 0.7 {
		t.Fatalf("odd half vs truth %.4f", cc)
	}
}

func TestSplitHalvesTooFewViews(t *testing.T) {
	l := 16
	ds := dataset(t, l, 1, micrograph.GenParams{Seed: 9})
	if _, _, err := SplitHalves(ds.Images(), ds.TrueOrientations(), nil, nil, Options{}); err == nil {
		t.Fatal("split of a single view accepted")
	}
}

func TestInputValidation(t *testing.T) {
	if _, err := FromViews(nil, nil, nil, nil, Options{}); err == nil {
		t.Fatal("empty view list accepted")
	}
	im := volume.NewImage(8)
	if _, err := FromViews([]*volume.Image{im}, []geom.Euler{{}, {}}, nil, nil, Options{}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	rec := New(8, Options{})
	if err := rec.Insert(volume.NewImage(10), geom.Euler{}, [2]float64{}, ctf.Params{}); err == nil {
		t.Fatal("size mismatch accepted")
	}
}

func TestRMaxLimitsResolution(t *testing.T) {
	l := 24
	ds := dataset(t, l, 60, micrograph.GenParams{Seed: 10})
	full, _ := FromViews(ds.Images(), ds.TrueOrientations(), nil, nil, Options{})
	lim, _ := FromViews(ds.Images(), ds.TrueOrientations(), nil, nil, Options{RMax: 4})
	ccFull := volume.Correlation(ds.Truth, full)
	ccLim := volume.Correlation(ds.Truth, lim)
	if ccLim >= ccFull {
		t.Fatalf("band-limited reconstruction (%.4f) not worse than full (%.4f)", ccLim, ccFull)
	}
	if math.IsNaN(ccLim) || ccLim < 0.3 {
		t.Fatalf("band-limited reconstruction unreasonably bad: %.4f", ccLim)
	}
}

func TestFinishIsRepeatable(t *testing.T) {
	l := 16
	ds := dataset(t, l, 10, micrograph.GenParams{Seed: 11})
	rec := New(l, Options{})
	for i, im := range ds.Images() {
		if err := rec.Insert(im, ds.Views[i].TrueOrient, [2]float64{}, ctf.Params{}); err != nil {
			t.Fatal(err)
		}
	}
	a := rec.Finish()
	b := rec.Finish()
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("Finish mutated accumulation state")
		}
	}
	if rec.Views() != 10 {
		t.Fatalf("view count %d", rec.Views())
	}
}
