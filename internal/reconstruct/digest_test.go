package reconstruct

import (
	"math"
	"testing"

	"repro/internal/micrograph"
	"repro/internal/volume"
)

// TestMapDigestStable pins the property the cycle journal depends on:
// the digest of a parallel reconstruction is identical across worker
// counts and across the batch/stream entry points — i.e. "parallel and
// serial execution of the parallel kernel" digest identically. (The
// serial //repro:oracle sums in a different order and agrees only to
// ≤1e-12; see the MapDigest doc comment and
// TestShardedMatchesSerialOracle.)
func TestMapDigestStable(t *testing.T) {
	l := 16
	ds, centers, ctfs := ctfDataset(t, l, 18, 41)
	opt := Options{WienerCTF: true}
	build := func(workers int) string {
		m, err := FromViewsParallel(ds.Images(), ds.TrueOrientations(), centers, ctfs,
			ParallelOptions{Options: opt, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return MapDigest(m)
	}
	ref := build(1)
	for _, w := range []int{2, 4, 8} {
		if d := build(w); d != ref {
			t.Fatalf("digest differs between 1 and %d workers: %s vs %s", w, ref, d)
		}
	}

	// Stream entry point, different depth: same digest.
	s := NewSharded(l, ParallelOptions{Options: opt, Workers: 3})
	st := s.InsertStream(2)
	for i, v := range ds.Views {
		if err := st.Insert(ViewTask{Image: v.Image, Orient: v.TrueOrient, Center: centers[i], CTF: ctfs[i]}); err != nil {
			t.Fatal(err)
		}
	}
	st.Close()
	if d := MapDigest(s.Finish()); d != ref {
		t.Fatalf("stream digest %s differs from batch %s", d, ref)
	}
}

// TestMapDigestSensitivity: any single-bit perturbation of any voxel,
// or a different edge length, must change the digest.
func TestMapDigestSensitivity(t *testing.T) {
	g := volume.NewGrid(8)
	for i := range g.Data {
		g.Data[i] = float64(i) * 0.25
	}
	ref := MapDigest(g)

	mut := g.Clone()
	mut.Data[100] = math.Nextafter(mut.Data[100], math.Inf(1)) // one ulp
	if MapDigest(mut) == ref {
		t.Fatal("digest insensitive to voxel perturbation")
	}

	// ±0 differ in bit pattern and must digest differently — the digest
	// is over bits, not values.
	a, b := volume.NewGrid(4), volume.NewGrid(4)
	b.Data[0] = math.Copysign(0, -1) // the untyped constant -0.0 is +0
	if MapDigest(a) == MapDigest(b) {
		t.Fatal("digest conflates +0 and -0")
	}

	if MapDigest(volume.NewGrid(8)) == MapDigest(volume.NewGrid(9)) {
		t.Fatal("digest insensitive to edge length")
	}
}

// TestMapDigestRoundTrip: a grid serialized with WriteTo and reloaded
// with ReadGrid digests identically — the resume path's artifact check.
func TestMapDigestRoundTrip(t *testing.T) {
	l := 12
	ds := dataset(t, l, 8, micrograph.GenParams{Seed: 42})
	m, err := FromViews(ds.Images(), ds.TrueOrientations(), nil, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/map.bin"
	if err := volume.WriteGridFile(path, m); err != nil {
		t.Fatal(err)
	}
	back, err := volume.ReadGridFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if MapDigest(back) != MapDigest(m) {
		t.Fatal("digest changed across serialize/reload")
	}
}
