package reconstruct

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash"
	"math"

	"repro/internal/volume"
)

// MapDigest returns a stable content digest of a reconstructed map:
// sha256 over the edge length followed by every voxel's float64 bit
// pattern, little-endian, in flat storage order. Two grids digest
// identically iff they are bit-identical, so the digest is the
// journal's proof that a resumed cycle reloaded exactly the map the
// crashed run wrote.
//
// The sharded kernel accumulates in fixed shard-then-view order, so
// parallel reconstructions digest identically across worker counts and
// across the batch/stream entry points (pinned by TestMapDigestStable).
// The serial //repro:oracle path is NOT digest-identical to the
// parallel kernel: it sums contributions in global view order, and
// float addition does not commute at the last bit (the kernels agree
// to ≤1e-12, see TestParallelMatchesSerial). Compare serial and
// parallel maps with a tolerance, not with this digest.
func MapDigest(g *volume.Grid) string {
	h := sha256.New()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(g.L))
	writeHash(h, buf[:])
	// Chunk the voxel stream so the hasher sees long runs instead of
	// one syscall-sized Write per voxel.
	const chunk = 512
	var block [chunk * 8]byte
	for base := 0; base < len(g.Data); base += chunk {
		n := len(g.Data) - base
		if n > chunk {
			n = chunk
		}
		for i := 0; i < n; i++ {
			binary.LittleEndian.PutUint64(block[i*8:], math.Float64bits(g.Data[base+i]))
		}
		writeHash(h, block[:n*8])
	}
	return hex.EncodeToString(h.Sum(nil))
}

// writeHash feeds b into h.
func writeHash(h hash.Hash, b []byte) {
	h.Write(b) //replint:allow errsink a sha256 hash's Write cannot fail
}
