// Package reconstruct implements 3-D reconstruction of an electron
// density map from 2-D views with known orientations, by direct
// Fourier inversion in Cartesian coordinates — the reconstruction
// algorithm the paper's orientation refinement is used in conjunction
// with (its refs [18], [20]: "parallel algorithms for 3D
// reconstruction of asymmetric objects").
//
// Each view's centred 2-D DFT is a central section of the map's 3-D
// DFT (the projection-slice theorem), so reconstruction scatters every
// view coefficient back onto the 3-D Fourier lattice with trilinear
// spreading weights, normalizes by the accumulated weights, enforces
// Hermitian symmetry, and inverse-transforms.
package reconstruct

import (
	"fmt"
	"math"

	"repro/internal/ctf"
	"repro/internal/fft"
	"repro/internal/fourier"
	"repro/internal/geom"
	"repro/internal/volume"
)

// Options configures a reconstruction.
type Options struct {
	// RMax is the Fourier radius (frequency-index units) up to which
	// view coefficients are inserted; ≤0 means the Nyquist radius.
	RMax float64
	// WienerCTF enables per-view CTF weighting: coefficients are
	// accumulated as Σ CTF·F / (Σ CTF² + ε), the standard multi-view
	// Wiener inversion. Views must then be inserted with their CTF
	// parameters.
	WienerCTF bool
	// WienerEpsilon regularizes the CTF division; 0 selects 0.1.
	WienerEpsilon float64
}

// Reconstructor accumulates views into a 3-D Fourier volume.
type Reconstructor struct {
	l    int
	opt  Options
	num  []complex128
	den  []float64
	plan *fft.Plan2D
	n    int // views inserted
}

// New creates a reconstructor for l×l views and an l³ output map.
func New(l int, opt Options) *Reconstructor {
	if l < 2 {
		panic(fmt.Sprintf("reconstruct: invalid size %d", l))
	}
	if opt.RMax <= 0 || opt.RMax > float64(l)/2 {
		opt.RMax = float64(l) / 2
	}
	if opt.WienerEpsilon <= 0 {
		opt.WienerEpsilon = 0.1
	}
	return &Reconstructor{
		l:   l,
		opt: opt,
		num: make([]complex128, l*l*l),
		den: make([]float64, l*l*l),
	}
}

// Views returns how many views have been inserted.
func (r *Reconstructor) Views() int { return r.n }

// Insert adds one view at the given orientation. center is the centre
// correction in pixels as produced by the refiner (the shift that
// moves the particle origin onto the geometric image centre); it is
// applied as a phase ramp before insertion. p supplies the view's CTF
// parameters and is only consulted when Options.WienerCTF is set.
func (r *Reconstructor) Insert(im *volume.Image, o geom.Euler, center [2]float64, p ctf.Params) error {
	if im.L != r.l {
		return fmt.Errorf("reconstruct: view size %d, want %d", im.L, r.l)
	}
	f := fourier.ImageDFT(im)
	if center[0] != 0 || center[1] != 0 {
		fourier.ShiftPhase(f, center[0], center[1])
	}
	rot := o.Matrix()
	xa, ya := rot.Col(0), rot.Col(1)
	l := r.l
	ri := int(r.opt.RMax)
	r2 := r.opt.RMax * r.opt.RMax
	for h := -ri; h <= ri; h++ {
		for k := -ri; k <= ri; k++ {
			fh, fk := float64(h), float64(k)
			if fh*fh+fk*fk > r2 {
				continue
			}
			val := f.Data[wrap(h, l)*l+wrap(k, l)]
			w := 1.0
			if r.opt.WienerCTF {
				s := p.FreqOfBin(h, k, l)
				c := p.Eval(s)
				// Accumulate CTF·F in the numerator and CTF² in the
				// denominator.
				val *= complex(c, 0)
				w = c * c
			}
			pt := geom.Vec3{
				X: xa.X*fh + ya.X*fk,
				Y: xa.Y*fh + ya.Y*fk,
				Z: xa.Z*fh + ya.Z*fk,
			}
			r.spread(pt, val, w)
		}
	}
	r.n++
	return nil
}

// spread distributes val with overall weight w onto the 8 lattice
// neighbours of the continuous frequency point pt.
func (r *Reconstructor) spread(pt geom.Vec3, val complex128, w float64) {
	l := r.l
	ny := float64(l) / 2
	if pt.X < -ny || pt.X > ny || pt.Y < -ny || pt.Y > ny || pt.Z < -ny || pt.Z > ny {
		return
	}
	x0, y0, z0 := int(math.Floor(pt.X)), int(math.Floor(pt.Y)), int(math.Floor(pt.Z))
	fx, fy, fz := pt.X-float64(x0), pt.Y-float64(y0), pt.Z-float64(z0)
	for dx := 0; dx <= 1; dx++ {
		wx := 1 - fx
		if dx == 1 {
			wx = fx
		}
		if wx == 0 {
			continue
		}
		xi := wrap(x0+dx, l)
		for dy := 0; dy <= 1; dy++ {
			wy := 1 - fy
			if dy == 1 {
				wy = fy
			}
			if wy == 0 {
				continue
			}
			yi := wrap(y0+dy, l)
			for dz := 0; dz <= 1; dz++ {
				wz := 1 - fz
				if dz == 1 {
					wz = fz
				}
				if wz == 0 {
					continue
				}
				zi := wrap(z0+dz, l)
				ww := wx * wy * wz * w
				idx := (xi*l+yi)*l + zi
				r.num[idx] += val * complex(wx*wy*wz, 0)
				if r.opt.WienerCTF {
					r.den[idx] += ww
				} else {
					r.den[idx] += wx * wy * wz
				}
			}
		}
	}
}

func wrap(f, l int) int {
	f %= l
	if f < 0 {
		f += l
	}
	return f
}

// Finish normalizes the accumulated Fourier volume, enforces Hermitian
// symmetry, and inverse-transforms to a real-space density map. The
// reconstructor may continue accumulating views afterwards (Finish
// does not mutate the accumulation state).
func (r *Reconstructor) Finish() *volume.Grid {
	l := r.l
	eps := r.opt.WienerEpsilon
	spec := volume.NewCGrid(l)
	for i := range r.num {
		if r.opt.WienerCTF {
			spec.Data[i] = r.num[i] * complex(1/(r.den[i]+eps), 0)
		} else if r.den[i] > 1e-9 {
			spec.Data[i] = r.num[i] * complex(1/r.den[i], 0)
		}
	}
	spec.Hermitianize()
	vd := &fourier.VolumeDFT{L: l, SrcL: l, Data: spec.Data}
	return vd.Grid()
}

// FromViews reconstructs a map from views with per-view orientations
// and centre corrections in one call. ctfs may be nil when
// Options.WienerCTF is off.
func FromViews(views []*volume.Image, orients []geom.Euler, centers [][2]float64, ctfs []ctf.Params, opt Options) (*volume.Grid, error) {
	if len(views) == 0 {
		return nil, fmt.Errorf("reconstruct: no views")
	}
	if len(orients) != len(views) {
		return nil, fmt.Errorf("reconstruct: %d views but %d orientations", len(views), len(orients))
	}
	if centers != nil && len(centers) != len(views) {
		return nil, fmt.Errorf("reconstruct: %d views but %d centres", len(views), len(centers))
	}
	if opt.WienerCTF && len(ctfs) != len(views) {
		return nil, fmt.Errorf("reconstruct: WienerCTF needs per-view CTF params")
	}
	rec := New(views[0].L, opt)
	for i, im := range views {
		var c [2]float64
		if centers != nil {
			c = centers[i]
		}
		var p ctf.Params
		if ctfs != nil {
			p = ctfs[i]
		}
		if err := rec.Insert(im, orients[i], c, p); err != nil {
			return nil, err
		}
	}
	return rec.Finish(), nil
}

// SplitHalves reconstructs two independent maps from the odd- and
// even-numbered views (1-based, matching the paper's Fig. 4 procedure:
// "one using only odd numbered experimental views and the other, even
// numbered views"). The returned maps are (odd, even).
func SplitHalves(views []*volume.Image, orients []geom.Euler, centers [][2]float64, ctfs []ctf.Params, opt Options) (*volume.Grid, *volume.Grid, error) {
	var oddV, evenV []*volume.Image
	var oddO, evenO []geom.Euler
	var oddC, evenC [][2]float64
	var oddP, evenP []ctf.Params
	for i := range views {
		c := [2]float64{}
		if centers != nil {
			c = centers[i]
		}
		var p ctf.Params
		if ctfs != nil {
			p = ctfs[i]
		}
		if i%2 == 0 { // view 1, 3, 5... in 1-based numbering
			oddV = append(oddV, views[i])
			oddO = append(oddO, orients[i])
			oddC = append(oddC, c)
			oddP = append(oddP, p)
		} else {
			evenV = append(evenV, views[i])
			evenO = append(evenO, orients[i])
			evenC = append(evenC, c)
			evenP = append(evenP, p)
		}
	}
	if len(oddV) == 0 || len(evenV) == 0 {
		return nil, nil, fmt.Errorf("reconstruct: need at least 2 views to split")
	}
	var op, ep []ctf.Params
	if ctfs != nil {
		op, ep = oddP, evenP
	}
	odd, err := FromViews(oddV, oddO, oddC, op, opt)
	if err != nil {
		return nil, nil, err
	}
	even, err := FromViews(evenV, evenO, evenC, ep, opt)
	if err != nil {
		return nil, nil, err
	}
	return odd, even, nil
}
