// Package reconstruct implements 3-D reconstruction of an electron
// density map from 2-D views with known orientations, by direct
// Fourier inversion in Cartesian coordinates — the reconstruction
// algorithm the paper's orientation refinement is used in conjunction
// with (its refs [18], [20]: "parallel algorithms for 3D
// reconstruction of asymmetric objects").
//
// Each view's centred 2-D DFT is a central section of the map's 3-D
// DFT (the projection-slice theorem), so reconstruction scatters every
// view coefficient back onto the 3-D Fourier lattice with trilinear
// spreading weights, normalizes by the accumulated weights, enforces
// Hermitian symmetry, and inverse-transforms.
//
// Two implementations coexist. The production path is the parallel
// sharded-accumulator kernel (parallel.go): per-shard num/den volumes
// fed by a worker pool over views, with a fused per-view insert
// (real-input 2-D DFT, tabulated phase ramp, memoized CTF, wrap-free
// trilinear scatter) and a fixed-order shard merge that keeps the
// output bit-identical across worker counts. The serial Reconstructor
// in this file is the //repro:oracle reference the parallel kernel is
// equivalence-tested against (≤1e-12).
package reconstruct

import (
	"fmt"
	"math"

	"repro/internal/ctf"
	"repro/internal/fourier"
	"repro/internal/geom"
	"repro/internal/volume"
)

// Options configures a reconstruction.
type Options struct {
	// RMax is the Fourier radius (frequency-index units) up to which
	// view coefficients are inserted; ≤0 means the Nyquist radius.
	RMax float64
	// WienerCTF enables per-view CTF weighting: coefficients are
	// accumulated as Σ CTF·F / (Σ CTF² + ε), the standard multi-view
	// Wiener inversion. Views must then be inserted with their CTF
	// parameters.
	WienerCTF bool
	// WienerEpsilon regularizes the CTF division; 0 selects 0.1.
	WienerEpsilon float64
}

// normalized returns the options with RMax clamped to the Nyquist
// radius and the Wiener epsilon defaulted, so the serial and sharded
// reconstructors resolve identical effective settings.
func (o Options) normalized(l int) Options {
	if o.RMax <= 0 || o.RMax > float64(l)/2 {
		o.RMax = float64(l) / 2
	}
	if o.WienerEpsilon <= 0 {
		o.WienerEpsilon = 0.1
	}
	return o
}

// checkCenter rejects non-finite centre corrections before they are
// baked into a phase ramp: exp(iθ) of a NaN or Inf angle is NaN, and a
// single NaN coefficient spread onto the lattice silently corrupts
// every voxel it touches after normalization.
func checkCenter(center [2]float64) error {
	if math.IsNaN(center[0]) || math.IsInf(center[0], 0) ||
		math.IsNaN(center[1]) || math.IsInf(center[1], 0) {
		return fmt.Errorf("reconstruct: non-finite centre correction (%v, %v)", center[0], center[1])
	}
	return nil
}

// Reconstructor accumulates views into a 3-D Fourier volume, one view
// at a time on one goroutine. It is the reference implementation; new
// code should use the sharded parallel kernel via NewSharded or
// FromViews.
type Reconstructor struct {
	l   int
	opt Options
	num []complex128
	den []float64
	n   int // views inserted
}

// New creates a serial reconstructor for l×l views and an l³ output
// map.
func New(l int, opt Options) *Reconstructor {
	if l < 2 {
		panic(fmt.Sprintf("reconstruct: invalid size %d", l))
	}
	return &Reconstructor{
		l:   l,
		opt: opt.normalized(l),
		num: make([]complex128, l*l*l),
		den: make([]float64, l*l*l),
	}
}

// Views returns how many views have been inserted.
func (r *Reconstructor) Views() int { return r.n }

// Insert adds one view at the given orientation. center is the centre
// correction in pixels as produced by the refiner (the shift that
// moves the particle origin onto the geometric image centre); it is
// applied as a phase ramp before insertion. p supplies the view's CTF
// parameters and is only consulted when Options.WienerCTF is set.
//
//repro:oracle
func (r *Reconstructor) Insert(im *volume.Image, o geom.Euler, center [2]float64, p ctf.Params) error {
	if im.L != r.l {
		return fmt.Errorf("reconstruct: view size %d, want %d", im.L, r.l)
	}
	if err := checkCenter(center); err != nil {
		return err
	}
	f := fourier.ImageDFT(im)
	if center[0] != 0 || center[1] != 0 {
		fourier.ShiftPhase(f, center[0], center[1])
	}
	rot := o.Matrix()
	xa, ya := rot.Col(0), rot.Col(1)
	l := r.l
	ri := int(r.opt.RMax)
	r2 := r.opt.RMax * r.opt.RMax
	for h := -ri; h <= ri; h++ {
		for k := -ri; k <= ri; k++ {
			fh, fk := float64(h), float64(k)
			if fh*fh+fk*fk > r2 {
				continue
			}
			val := f.Data[wrap(h, l)*l+wrap(k, l)]
			w := 1.0
			if r.opt.WienerCTF {
				s := p.FreqOfBin(h, k, l)
				c := p.Eval(s)
				// Accumulate CTF·F in the numerator and CTF² in the
				// denominator.
				val *= complex(c, 0)
				w = c * c
			}
			pt := geom.Vec3{
				X: xa.X*fh + ya.X*fk,
				Y: xa.Y*fh + ya.Y*fk,
				Z: xa.Z*fh + ya.Z*fk,
			}
			r.spread(pt, val, w)
		}
	}
	r.n++
	return nil
}

// spread distributes val with overall weight w onto the 8 lattice
// neighbours of the continuous frequency point pt. Points outside the
// lattice (any component beyond the Nyquist radius) are dropped whole:
// a partially spread coefficient would bias the local weight sum.
//
//repro:oracle
func (r *Reconstructor) spread(pt geom.Vec3, val complex128, w float64) {
	l := r.l
	ny := float64(l) / 2
	if pt.X < -ny || pt.X > ny || pt.Y < -ny || pt.Y > ny || pt.Z < -ny || pt.Z > ny {
		return
	}
	x0, y0, z0 := int(math.Floor(pt.X)), int(math.Floor(pt.Y)), int(math.Floor(pt.Z))
	fx, fy, fz := pt.X-float64(x0), pt.Y-float64(y0), pt.Z-float64(z0)
	// Wrap indices and weight factors hoisted out of the 2×2×2 scatter:
	// six wraps per coefficient instead of the twelve the nested loops
	// paid, and no branch in the innermost pass.
	var (
		xi = [2]int{wrap(x0, l), wrap(x0+1, l)}
		yi = [2]int{wrap(y0, l), wrap(y0+1, l)}
		zi = [2]int{wrap(z0, l), wrap(z0+1, l)}
		wx = [2]float64{1 - fx, fx}
		wy = [2]float64{1 - fy, fy}
		wz = [2]float64{1 - fz, fz}
	)
	for dx := 0; dx <= 1; dx++ {
		if wx[dx] == 0 {
			continue
		}
		for dy := 0; dy <= 1; dy++ {
			if wy[dy] == 0 {
				continue
			}
			rowBase := (xi[dx]*l + yi[dy]) * l
			wxy := wx[dx] * wy[dy]
			for dz := 0; dz <= 1; dz++ {
				if wz[dz] == 0 {
					continue
				}
				www := wxy * wz[dz]
				idx := rowBase + zi[dz]
				r.num[idx] += val * complex(www, 0)
				r.den[idx] += www * w
			}
		}
	}
}

func wrap(f, l int) int {
	f %= l
	if f < 0 {
		f += l
	}
	return f
}

// Finish normalizes the accumulated Fourier volume, enforces Hermitian
// symmetry, and inverse-transforms to a real-space density map. The
// reconstructor may continue accumulating views afterwards (Finish
// does not mutate the accumulation state).
func (r *Reconstructor) Finish() *volume.Grid {
	return finishVolume(r.l, r.opt, r.num, r.den)
}

// finishVolume is the shared back half of both reconstructors:
// normalize the accumulated num/den pair, Hermitianize, and
// inverse-transform. The inputs are not mutated.
func finishVolume(l int, opt Options, num []complex128, den []float64) *volume.Grid {
	spec := volume.NewCGrid(l)
	if opt.WienerCTF {
		eps := opt.WienerEpsilon
		for i := range num {
			spec.Data[i] = num[i] * complex(1/(den[i]+eps), 0)
		}
	} else {
		for i := range num {
			if den[i] > 1e-9 {
				spec.Data[i] = num[i] * complex(1/den[i], 0)
			}
		}
	}
	spec.Hermitianize()
	vd := &fourier.VolumeDFT{L: l, SrcL: l, Data: spec.Data}
	return vd.Grid()
}

// validateSet checks the per-view argument slices of the batch entry
// points once, up front, so the parallel kernels never fail mid-insert.
func validateSet(views []*volume.Image, orients []geom.Euler, centers [][2]float64, ctfs []ctf.Params, opt Options) error {
	if len(views) == 0 {
		return fmt.Errorf("reconstruct: no views")
	}
	if len(orients) != len(views) {
		return fmt.Errorf("reconstruct: %d views but %d orientations", len(views), len(orients))
	}
	if centers != nil && len(centers) != len(views) {
		return fmt.Errorf("reconstruct: %d views but %d centres", len(views), len(centers))
	}
	if opt.WienerCTF && len(ctfs) != len(views) {
		return fmt.Errorf("reconstruct: WienerCTF needs per-view CTF params")
	}
	l := views[0].L
	for i, im := range views {
		if im.L != l {
			return fmt.Errorf("reconstruct: view %d size %d, want %d", i, im.L, l)
		}
	}
	for _, c := range centers {
		if err := checkCenter(c); err != nil {
			return err
		}
	}
	return nil
}

// taskAt assembles the i-th ViewTask of a batch call, tolerating nil
// centers/ctfs slices.
func taskAt(views []*volume.Image, orients []geom.Euler, centers [][2]float64, ctfs []ctf.Params, i int) ViewTask {
	t := ViewTask{Image: views[i], Orient: orients[i]}
	if centers != nil {
		t.Center = centers[i]
	}
	if ctfs != nil {
		t.CTF = ctfs[i]
	}
	return t
}

// FromViews reconstructs a map from views with per-view orientations
// and centre corrections in one call, on the parallel sharded kernel
// with default worker and shard counts. ctfs may be nil when
// Options.WienerCTF is off.
func FromViews(views []*volume.Image, orients []geom.Euler, centers [][2]float64, ctfs []ctf.Params, opt Options) (*volume.Grid, error) {
	return FromViewsParallel(views, orients, centers, ctfs, ParallelOptions{Options: opt})
}

// SplitHalves reconstructs two independent maps from the odd- and
// even-numbered views (1-based, matching the paper's Fig. 4 procedure:
// "one using only odd numbered experimental views and the other, even
// numbered views"). The returned maps are (odd, even).
func SplitHalves(views []*volume.Image, orients []geom.Euler, centers [][2]float64, ctfs []ctf.Params, opt Options) (*volume.Grid, *volume.Grid, error) {
	return SplitHalvesParallel(views, orients, centers, ctfs, ParallelOptions{Options: opt})
}
