package reconstruct

import (
	"math"
	"testing"

	"repro/internal/ctf"
	"repro/internal/geom"
	"repro/internal/micrograph"
	"repro/internal/volume"
)

// ctfDataset builds a dataset with centre jitter and CTF groups plus
// the matching correction/params slices — the full fused-path surface.
func ctfDataset(t testing.TB, l, n int, seed int64) (*micrograph.Dataset, [][2]float64, []ctf.Params) {
	t.Helper()
	ds := dataset(t, l, n, micrograph.GenParams{Seed: seed, CenterJitter: 2, ApplyCTF: true, DefocusGroups: 3})
	centers := make([][2]float64, len(ds.Views))
	ctfs := make([]ctf.Params, len(ds.Views))
	for i, v := range ds.Views {
		centers[i] = [2]float64{-v.TrueCenter[0], -v.TrueCenter[1]}
		ctfs[i] = v.CTF
	}
	return ds, centers, ctfs
}

// maxRelDiff returns max|a−b| scaled by max|a|.
func maxRelDiff(a, b *volume.Grid) float64 {
	var scale, diff float64
	for i := range a.Data {
		if m := math.Abs(a.Data[i]); m > scale {
			scale = m
		}
		if d := math.Abs(a.Data[i] - b.Data[i]); d > diff {
			diff = d
		}
	}
	if scale == 0 {
		return diff
	}
	return diff / scale
}

func gridsIdentical(a, b *volume.Grid) bool {
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			return false
		}
	}
	return true
}

// TestShardedMatchesSerialOracle pins the tentpole equivalence: the
// fused sharded kernel agrees with the serial oracle to ≤1e-12 on the
// full path (phase ramps, Wiener CTF weighting, trilinear scatter).
func TestShardedMatchesSerialOracle(t *testing.T) {
	l := 24
	ds, centers, ctfs := ctfDataset(t, l, 50, 21)
	opt := Options{WienerCTF: true}

	oracle := New(l, opt)
	for i, v := range ds.Views {
		if err := oracle.Insert(v.Image, v.TrueOrient, centers[i], ctfs[i]); err != nil {
			t.Fatal(err)
		}
	}
	serial := oracle.Finish()

	par, err := FromViewsParallel(ds.Images(), ds.TrueOrientations(), centers, ctfs,
		ParallelOptions{Options: opt, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if d := maxRelDiff(serial, par); d > 1e-12 {
		t.Fatalf("sharded kernel diverges from serial oracle: max rel diff %g", d)
	}
}

// TestShardedMatchesOracleNoCTF covers the plain (unweighted,
// uncentred) path separately, where the oracle skips both the phase
// ramp and the CTF branch.
func TestShardedMatchesOracleNoCTF(t *testing.T) {
	l := 24
	ds := dataset(t, l, 40, micrograph.GenParams{Seed: 22})
	oracle := New(l, Options{})
	for _, v := range ds.Views {
		if err := oracle.Insert(v.Image, v.TrueOrient, [2]float64{}, ctf.Params{}); err != nil {
			t.Fatal(err)
		}
	}
	par, err := FromViews(ds.Images(), ds.TrueOrientations(), nil, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if d := maxRelDiff(oracle.Finish(), par); d > 1e-12 {
		t.Fatalf("max rel diff %g", d)
	}
}

// TestShardedBitIdenticalAcrossWorkers is the determinism contract:
// the worker count must never move a single bit of the output.
func TestShardedBitIdenticalAcrossWorkers(t *testing.T) {
	l := 24
	ds, centers, ctfs := ctfDataset(t, l, 30, 23)
	build := func(workers int) *volume.Grid {
		m, err := FromViewsParallel(ds.Images(), ds.TrueOrientations(), centers, ctfs,
			ParallelOptions{Options: Options{WienerCTF: true}, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	ref := build(1)
	for _, w := range []int{4, 8} {
		if m := build(w); !gridsIdentical(ref, m) {
			t.Fatalf("output differs between 1 and %d workers", w)
		}
	}
}

// TestInsertStreamMatchesBatch pins the stream/batch stripe identity:
// the same view sequence through InsertStream and InsertViews lands in
// bit-identical accumulators.
func TestInsertStreamMatchesBatch(t *testing.T) {
	l := 16
	ds, centers, ctfs := ctfDataset(t, l, 20, 24)
	opt := ParallelOptions{Options: Options{WienerCTF: true}, Workers: 3}

	batch := NewSharded(l, opt)
	tasks := make([]ViewTask, len(ds.Views))
	for i, v := range ds.Views {
		tasks[i] = ViewTask{Image: v.Image, Orient: v.TrueOrient, Center: centers[i], CTF: ctfs[i]}
	}
	if err := batch.InsertViews(tasks); err != nil {
		t.Fatal(err)
	}

	streamed := NewSharded(l, opt)
	st := streamed.InsertStream(0)
	for _, task := range tasks {
		if err := st.Insert(task); err != nil {
			t.Fatal(err)
		}
	}
	st.Close()

	if streamed.Views() != batch.Views() {
		t.Fatalf("view counts differ: %d vs %d", streamed.Views(), batch.Views())
	}
	if !gridsIdentical(batch.Finish(), streamed.Finish()) {
		t.Fatal("streamed accumulation differs from batch")
	}
}

// TestStreamValidation: errors are synchronous, leave the stream
// usable, and a closed stream refuses inserts.
func TestStreamValidation(t *testing.T) {
	s := NewSharded(16, ParallelOptions{})
	st := s.InsertStream(0)
	if err := st.Insert(ViewTask{Image: volume.NewImage(8)}); err == nil {
		t.Fatal("size mismatch accepted by stream")
	}
	if err := st.Insert(ViewTask{Image: volume.NewImage(16), Center: [2]float64{math.NaN(), 0}}); err == nil {
		t.Fatal("non-finite centre accepted by stream")
	}
	if err := st.Insert(ViewTask{Image: volume.NewImage(16)}); err != nil {
		t.Fatalf("valid insert after errors failed: %v", err)
	}
	st.Close()
	st.Close() // idempotent
	if err := st.Insert(ViewTask{Image: volume.NewImage(16)}); err == nil {
		t.Fatal("insert on closed stream accepted")
	}
	if s.Views() != 1 {
		t.Fatalf("view count %d, want 1", s.Views())
	}
}

// TestSplitHalvesSinglePassUnchanged: the one-pass streaming split
// must reproduce, bit for bit, what reconstructing the two materialized
// subsets yields.
func TestSplitHalvesSinglePassUnchanged(t *testing.T) {
	l := 16
	ds, centers, ctfs := ctfDataset(t, l, 21, 25)
	opt := Options{WienerCTF: true}
	odd, even, err := SplitHalves(ds.Images(), ds.TrueOrientations(), centers, ctfs, opt)
	if err != nil {
		t.Fatal(err)
	}

	var oddV, evenV []*volume.Image
	var oddO, evenO []geom.Euler
	var oddC, evenC [][2]float64
	var oddP, evenP []ctf.Params
	for i, im := range ds.Images() {
		if i%2 == 0 {
			oddV = append(oddV, im)
			oddO = append(oddO, ds.Views[i].TrueOrient)
			oddC = append(oddC, centers[i])
			oddP = append(oddP, ctfs[i])
		} else {
			evenV = append(evenV, im)
			evenO = append(evenO, ds.Views[i].TrueOrient)
			evenC = append(evenC, centers[i])
			evenP = append(evenP, ctfs[i])
		}
	}
	oddRef, err := FromViews(oddV, oddO, oddC, oddP, opt)
	if err != nil {
		t.Fatal(err)
	}
	evenRef, err := FromViews(evenV, evenO, evenC, evenP, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !gridsIdentical(odd, oddRef) {
		t.Fatal("odd half differs from subset reconstruction")
	}
	if !gridsIdentical(even, evenRef) {
		t.Fatal("even half differs from subset reconstruction")
	}
}

// TestShardedFinishThenContinue: Finish is a checkpoint, not a
// terminator — continuing accumulation afterwards must match a fresh
// reconstructor fed the whole sequence.
func TestShardedFinishThenContinue(t *testing.T) {
	l := 16
	ds, centers, ctfs := ctfDataset(t, l, 12, 26)
	opt := ParallelOptions{Options: Options{WienerCTF: true}}
	tasks := make([]ViewTask, len(ds.Views))
	for i, v := range ds.Views {
		tasks[i] = ViewTask{Image: v.Image, Orient: v.TrueOrient, Center: centers[i], CTF: ctfs[i]}
	}

	split := NewSharded(l, opt)
	if err := split.InsertViews(tasks[:5]); err != nil {
		t.Fatal(err)
	}
	mid := split.Finish()
	midAgain := split.Finish()
	if !gridsIdentical(mid, midAgain) {
		t.Fatal("repeated Finish not identical")
	}
	if err := split.InsertViews(tasks[5:]); err != nil {
		t.Fatal(err)
	}

	whole := NewSharded(l, opt)
	if err := whole.InsertViews(tasks); err != nil {
		t.Fatal(err)
	}
	if !gridsIdentical(split.Finish(), whole.Finish()) {
		t.Fatal("Finish-then-continue diverged from single-shot accumulation")
	}
	if gridsIdentical(mid, split.Finish()) {
		t.Fatal("continued accumulation did not change the map")
	}
}

// TestRMaxExactlyNyquist: the band boundary case. Corner coefficients
// at |f| = l/2 alias through the wrap table; the kernel must neither
// panic nor produce non-finite output, and must still agree with the
// oracle.
func TestRMaxExactlyNyquist(t *testing.T) {
	l := 16
	ds, centers, ctfs := ctfDataset(t, l, 10, 27)
	opt := Options{RMax: float64(l) / 2, WienerCTF: true}
	oracle := New(l, opt)
	for i, v := range ds.Views {
		if err := oracle.Insert(v.Image, v.TrueOrient, centers[i], ctfs[i]); err != nil {
			t.Fatal(err)
		}
	}
	par, err := FromViews(ds.Images(), ds.TrueOrientations(), centers, ctfs, opt)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range par.Data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("non-finite voxel %d: %v", i, v)
		}
	}
	if d := maxRelDiff(oracle.Finish(), par); d > 1e-12 {
		t.Fatalf("Nyquist-band reconstruction: max rel diff %g", d)
	}
}

// TestSpreadOutsideLatticeIsNoOp: a rotated frequency point that
// leaves the lattice (possible only through direct use, since
// orthonormal rotations keep |pt| ≤ RMax) must be dropped whole, not
// partially wrapped.
func TestSpreadOutsideLatticeIsNoOp(t *testing.T) {
	r := New(8, Options{})
	for _, pt := range []geom.Vec3{
		{X: 5, Y: 0, Z: 0}, {X: -4.5, Y: 0, Z: 0},
		{X: 0, Y: 100, Z: 0}, {X: 0, Y: 0, Z: -7},
	} {
		r.spread(pt, complex(1, 1), 1)
	}
	for i := range r.den {
		if r.den[i] != 0 || r.num[i] != 0 {
			t.Fatalf("out-of-lattice spread touched voxel %d", i)
		}
	}
}

// TestNonFiniteCenterRejected: both paths refuse NaN/Inf centre
// corrections instead of silently corrupting the volume.
func TestNonFiniteCenterRejected(t *testing.T) {
	l := 8
	im := volume.NewImage(l)
	bad := [][2]float64{
		{math.NaN(), 0}, {0, math.NaN()}, {math.Inf(1), 0}, {0, math.Inf(-1)},
	}
	serial := New(l, Options{})
	sharded := NewSharded(l, ParallelOptions{})
	for _, c := range bad {
		if err := serial.Insert(im, geom.Euler{}, c, ctf.Params{}); err == nil {
			t.Fatalf("serial Insert accepted centre %v", c)
		}
		if err := sharded.Insert(im, geom.Euler{}, c, ctf.Params{}); err == nil {
			t.Fatalf("sharded Insert accepted centre %v", c)
		}
	}
	if serial.Views() != 0 || sharded.Views() != 0 {
		t.Fatal("rejected inserts still counted")
	}
	if _, err := FromViews([]*volume.Image{im, im}, make([]geom.Euler, 2),
		[][2]float64{{math.NaN(), 0}, {0, 0}}, nil, Options{}); err == nil {
		t.Fatal("FromViews accepted non-finite centre")
	}
}

// TestWienerZeroCrossingCTF: parameters whose CTF crosses zero inside
// the band drive the accumulated denominator towards the ε floor; the
// inversion must stay finite and still beat ignoring the CTF.
func TestWienerZeroCrossingCTF(t *testing.T) {
	l := 32
	ds := dataset(t, l, 60, micrograph.GenParams{Seed: 28, ApplyCTF: true, DefocusGroups: 1, PixelA: 3})
	ctfs := make([]ctf.Params, len(ds.Views))
	zeroCrossings := 0
	for i, v := range ds.Views {
		ctfs[i] = v.CTF
	}
	// Confirm the fixture really has sign changes inside the band.
	p := ctfs[0]
	prev := p.Eval(p.FreqOfBin(1, 0, l))
	for h := 2; h <= l/2; h++ {
		cur := p.Eval(p.FreqOfBin(h, 0, l))
		if prev*cur < 0 {
			zeroCrossings++
		}
		prev = cur
	}
	if zeroCrossings == 0 {
		t.Fatal("fixture CTF has no zero crossing inside the band; test is vacuous")
	}
	m, err := FromViews(ds.Images(), ds.TrueOrientations(), nil, ctfs, Options{WienerCTF: true, WienerEpsilon: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range m.Data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("non-finite voxel %d with near-zero Wiener denominators: %v", i, v)
		}
	}
	naive, err := FromViews(ds.Images(), ds.TrueOrientations(), nil, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ccW, ccN := volume.Correlation(ds.Truth, m), volume.Correlation(ds.Truth, naive); ccW <= ccN {
		t.Fatalf("Wiener inversion (%.4f) no better than naive (%.4f) despite zero crossings", ccW, ccN)
	}
}

// TestCTFMemoMatchesDirectEval: the per-shard radial CTF memo must be
// transparent — alternating parameter sets (cache thrash) and repeated
// sets (cache hits) both reproduce the oracle exactly.
func TestCTFMemoMatchesDirectEval(t *testing.T) {
	l := 16
	ds, centers, ctfs := ctfDataset(t, l, 9, 29)
	// Force every consecutive pair on one shard to differ: one shard,
	// alternating groups.
	opt := ParallelOptions{Options: Options{WienerCTF: true}, Shards: 1}
	oracle := New(l, Options{WienerCTF: true})
	sharded := NewSharded(l, opt)
	for i, v := range ds.Views {
		if err := oracle.Insert(v.Image, v.TrueOrient, centers[i], ctfs[i]); err != nil {
			t.Fatal(err)
		}
		if err := sharded.Insert(v.Image, v.TrueOrient, centers[i], ctfs[i]); err != nil {
			t.Fatal(err)
		}
	}
	// Single shard ⇒ same insertion order as the oracle ⇒ the only
	// tolerance needed is for the tabulated phase ramp.
	if d := maxRelDiff(oracle.Finish(), sharded.Finish()); d > 1e-12 {
		t.Fatalf("CTF memo path diverges: max rel diff %g", d)
	}
}

// TestShardCountPerturbsOnlyRounding: changing Shards regroups sums —
// the maps must agree to rounding but are not required to be
// bit-identical.
func TestShardCountPerturbsOnlyRounding(t *testing.T) {
	l := 16
	ds, centers, ctfs := ctfDataset(t, l, 16, 30)
	build := func(shards int) *volume.Grid {
		m, err := FromViewsParallel(ds.Images(), ds.TrueOrientations(), centers, ctfs,
			ParallelOptions{Options: Options{WienerCTF: true}, Shards: shards})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	if d := maxRelDiff(build(2), build(7)); d > 1e-12 {
		t.Fatalf("shard regrouping moved the result past rounding: %g", d)
	}
}

func BenchmarkShardedInsertView(b *testing.B) {
	l := 32
	ds, centers, ctfs := ctfDataset(b, l, 16, 31)
	rec := NewSharded(l, ParallelOptions{Workers: 1})
	// Warm the scratch so the steady state is measured.
	for i, v := range ds.Views {
		if err := rec.Insert(v.Image, v.TrueOrient, centers[i], ctfs[i]); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v := ds.Views[i%len(ds.Views)]
		if err := rec.Insert(v.Image, v.TrueOrient, centers[i%len(ds.Views)], ctfs[i%len(ds.Views)]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSerialInsertView(b *testing.B) {
	l := 32
	ds, centers, ctfs := ctfDataset(b, l, 16, 31)
	rec := New(l, Options{WienerCTF: true})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v := ds.Views[i%len(ds.Views)]
		if err := rec.Insert(v.Image, v.TrueOrient, centers[i%len(ds.Views)], ctfs[i%len(ds.Views)]); err != nil {
			b.Fatal(err)
		}
	}
}
