package reconstruct

import (
	"fmt"
	"math"
	"math/cmplx"
	"sync"
	"time"

	"repro/internal/ctf"
	"repro/internal/fft"
	"repro/internal/fourier"
	"repro/internal/geom"
	"repro/internal/obs"
	"repro/internal/pool"
	"repro/internal/volume"
)

// DefaultShards is the accumulator shard count used when
// ParallelOptions.Shards is not set. It is a fixed constant — not
// GOMAXPROCS — because the shard count determines the floating-point
// summation grouping: views are striped over shards by insertion
// index, each shard keeps its own running num/den sums, and Finish
// merges the shards in index order. With the count pinned, the output
// is bit-identical on every machine and at every worker count; only
// changing Shards (or the view order) can move the last bits.
const DefaultShards = 8

// ParallelOptions extends Options with the execution shape of the
// sharded kernel.
type ParallelOptions struct {
	Options
	// Workers bounds the insertion and merge parallelism; ≤0 selects
	// GOMAXPROCS. Workers never affects the result, only wall time.
	Workers int
	// Shards is the number of accumulator shards; ≤0 selects
	// DefaultShards. Each shard owns full num/den volumes (24·l³ bytes)
	// plus the per-view scratch, so memory grows linearly with Shards
	// while attainable speedup is capped at min(Shards, Workers).
	// Unlike Workers, changing Shards regroups the accumulation sums
	// and perturbs the output at the rounding level (~1e-16 relative).
	Shards int
}

// ViewTask is one view queued for insertion: the image, its refined
// orientation, the centre correction applied as a phase ramp, and the
// CTF parameters (consulted only under Options.WienerCTF).
type ViewTask struct {
	Image  *volume.Image
	Orient geom.Euler
	Center [2]float64
	CTF    ctf.Params
}

// Sharded is the parallel reconstruction kernel: views are striped
// over a fixed set of accumulator shards, each shard accumulates its
// views in arrival order through the fused insert path, and Finish
// merges the shards in index order. Results are bit-identical across
// GOMAXPROCS and across the batch/streaming entry points, and agree
// with the serial Reconstructor oracle to ≤1e-12.
//
// The batch entry points (Insert, InsertViews, Finish) may be called
// from one goroutine at a time; InsertStream returns a handle whose
// sends run concurrently with the shard workers.
type Sharded struct {
	l       int
	opt     Options
	workers int
	acc     []*shardAccum
	wrapTab []int32 // wrapTab[i+l] = wrap(i, l) for i ∈ [−l, l+1]
	n       int     // views dispatched (stripe counter)
}

// shardAccum is one accumulator shard plus the scratch the fused
// insert path reuses across views: the real-input FFT transformer, the
// spectrum buffer, the separable phase-ramp tables, and the memoized
// CTF profile of the last-seen parameter set.
type shardAccum struct {
	l       int
	ri      int
	r2      float64
	wiener  bool
	wrapTab []int32

	num []complex128
	den []float64

	tx           *fourier.ViewTransformer
	spec         *volume.CImage
	rampH, rampK []complex128

	// CTF memo: the CTF is radial, so within one parameter set the
	// value at bin (h,k) depends only on h²+k². Views from the same
	// defocus group (the common case: "views originated from the same
	// micrograph have the same CTF") reuse the table.
	ctfParams ctf.Params
	ctfValid  bool
	ctfTab    []float64
	ctfSet    []bool

	views  int64
	coeffs int64
}

// NewSharded creates a parallel reconstructor for l×l views and an l³
// output map.
func NewSharded(l int, opt ParallelOptions) *Sharded {
	if l < 2 {
		panic(fmt.Sprintf("reconstruct: invalid size %d", l))
	}
	shards := opt.Shards
	if shards <= 0 {
		shards = DefaultShards
	}
	o := opt.Options.normalized(l)
	wrapTab := make([]int32, 2*l+2)
	for i := range wrapTab {
		wrapTab[i] = int32(wrap(i-l, l))
	}
	s := &Sharded{
		l:       l,
		opt:     o,
		workers: opt.Workers,
		acc:     make([]*shardAccum, shards),
		wrapTab: wrapTab,
	}
	ri := int(o.RMax)
	maxSS := 2*ri*ri + 1
	for i := range s.acc {
		s.acc[i] = &shardAccum{
			l:       l,
			ri:      ri,
			r2:      o.RMax * o.RMax,
			wiener:  o.WienerCTF,
			wrapTab: wrapTab,
			num:     make([]complex128, l*l*l),
			den:     make([]float64, l*l*l),
			tx:      fourier.NewViewTransformer(l),
			spec:    volume.NewCImage(l),
			rampH:   make([]complex128, l),
			rampK:   make([]complex128, l),
			ctfTab:  make([]float64, maxSS),
			ctfSet:  make([]bool, maxSS),
		}
	}
	return s
}

// Views returns how many views have been inserted (or, with an open
// stream, dispatched).
func (s *Sharded) Views() int { return s.n }

// validate rejects a task the fused kernel cannot take; it runs on the
// caller's goroutine so errors are synchronous and deterministic.
func (s *Sharded) validate(t ViewTask) error {
	if t.Image.L != s.l {
		return fmt.Errorf("reconstruct: view size %d, want %d", t.Image.L, s.l)
	}
	return checkCenter(t.Center)
}

// Insert adds one view synchronously on the calling goroutine,
// striping it onto the next shard. Interleaving Insert and InsertViews
// calls is fine; both advance the same stripe counter.
func (s *Sharded) Insert(im *volume.Image, o geom.Euler, center [2]float64, p ctf.Params) error {
	t := ViewTask{Image: im, Orient: o, Center: center, CTF: p}
	if err := s.validate(t); err != nil {
		return err
	}
	s.acc[s.n%len(s.acc)].insert(t)
	s.n++
	return nil
}

// InsertViews adds a batch of views on a worker pool. Every task is
// validated before any is inserted, so a failed call leaves the
// accumulation state untouched. Tasks are striped over the shards by
// their position in the overall insertion sequence, and each shard
// processes its stripe in order on a single worker — which is what
// makes the result independent of scheduling.
func (s *Sharded) InsertViews(tasks []ViewTask) error {
	for i := range tasks {
		if err := s.validate(tasks[i]); err != nil {
			return fmt.Errorf("view %d: %w", i, err)
		}
	}
	shards := len(s.acc)
	base := s.n
	pool.RunIndexedLabeled("reconstruct.insert", shards, s.workers, func(_, sd int) {
		a := s.acc[sd]
		// The first batch index landing on shard sd: global index
		// base+i hits sd when (base+i) ≡ sd (mod shards).
		start := ((sd-base)%shards + shards) % shards
		for i := start; i < len(tasks); i += shards {
			a.insert(tasks[i])
		}
	})
	s.n += len(tasks)
	return nil
}

// Finish merges the shards in fixed index order and runs the shared
// normalize/Hermitianize/inverse-transform back half. Accumulation
// state is not mutated; the reconstructor may continue inserting views
// afterwards, and repeated calls return identical maps.
func (s *Sharded) Finish() *volume.Grid {
	l := s.l
	num := make([]complex128, l*l*l)
	den := make([]float64, l*l*l)
	var t0 time.Time
	tracing := obs.ActiveTrace() != nil
	if tracing {
		t0 = time.Now()
	}
	// Merge parallelism partitions voxels (by x-plane), never shards:
	// each voxel's sum runs over the shards in index order regardless
	// of which worker owns its plane.
	pool.RunIndexedLabeled("reconstruct.merge", l, s.workers, func(_, x int) {
		lo, hi := x*l*l, (x+1)*l*l
		dstN, dstD := num[lo:hi], den[lo:hi]
		for _, a := range s.acc {
			srcN, srcD := a.num[lo:hi], a.den[lo:hi]
			for i := range dstN {
				dstN[i] += srcN[i]
				dstD[i] += srcD[i]
			}
		}
	})
	if tracing {
		obs.Span(0, 0, "shard-merge", "reconstruct", wallSeconds(t0), wallSeconds(time.Now()))
	}
	return finishVolume(l, s.opt, num, den)
}

// insert is the fused per-view path: one real-input 2-D DFT into
// per-shard scratch, phase ramp and CTF weighting applied per used
// coefficient from tabulated values, and the trilinear scatter inlined
// with table-wrapped indices. It allocates nothing in steady state.
//
// The scatter needs no bounds check: the rotation is orthonormal, so
// |pt| = √(h²+k²) ≤ RMax ≤ l/2, and the wrap table covers the one-cell
// overshoot floor/+1 can produce at the Nyquist boundary.
//
//repro:hotpath
func (a *shardAccum) insert(t ViewTask) {
	l := a.l
	a.tx.Transform(t.Image, a.spec)
	shift := t.Center[0] != 0 || t.Center[1] != 0
	if shift {
		fillShiftRamp(a.rampH, t.Center[0], l)
		fillShiftRamp(a.rampK, t.Center[1], l)
	}
	if a.wiener && (!a.ctfValid || t.CTF != a.ctfParams) {
		for i := range a.ctfSet {
			a.ctfSet[i] = false
		}
		a.ctfParams, a.ctfValid = t.CTF, true
	}
	rot := t.Orient.Matrix()
	xa, ya := rot.Col(0), rot.Col(1)
	wt := a.wrapTab
	spec := a.spec.Data
	num, den := a.num, a.den
	ri, r2 := a.ri, a.r2
	cnt := 0
	for h := -ri; h <= ri; h++ {
		fh := float64(h)
		hw := int(wt[h+l])
		row := hw * l
		var rh complex128
		if shift {
			rh = a.rampH[hw]
		}
		hx, hy, hz := xa.X*fh, xa.Y*fh, xa.Z*fh
		for k := -ri; k <= ri; k++ {
			fk := float64(k)
			if fh*fh+fk*fk > r2 {
				continue
			}
			kw := int(wt[k+l])
			val := spec[row+kw]
			if shift {
				val *= rh * a.rampK[kw]
			}
			w := 1.0
			if a.wiener {
				ss := h*h + k*k
				c := a.ctfTab[ss]
				if !a.ctfSet[ss] {
					c = t.CTF.Eval(t.CTF.FreqOfBin(h, k, l))
					a.ctfTab[ss], a.ctfSet[ss] = c, true
				}
				val *= complex(c, 0)
				w = c * c
			}
			px := hx + ya.X*fk
			py := hy + ya.Y*fk
			pz := hz + ya.Z*fk
			x0 := int(math.Floor(px))
			y0 := int(math.Floor(py))
			z0 := int(math.Floor(pz))
			fx, fy, fz := px-float64(x0), py-float64(y0), pz-float64(z0)
			gx, gy, gz := 1-fx, 1-fy, 1-fz
			x0w, x1w := int(wt[x0+l]), int(wt[x0+1+l])
			y0w, y1w := int(wt[y0+l]), int(wt[y0+1+l])
			z0w, z1w := int(wt[z0+l]), int(wt[z0+1+l])
			b00 := (x0w*l + y0w) * l
			b01 := (x0w*l + y1w) * l
			b10 := (x1w*l + y0w) * l
			b11 := (x1w*l + y1w) * l
			w00, w01 := gx*gy, gx*fy
			w10, w11 := fx*gy, fx*fy
			// Unrolled 2×2×2 scatter. The weight products mirror the
			// oracle's (wx·wy)·wz association exactly, so the only
			// difference from the serial path is summation grouping.
			c000, c001 := w00*gz, w00*fz
			c010, c011 := w01*gz, w01*fz
			c100, c101 := w10*gz, w10*fz
			c110, c111 := w11*gz, w11*fz
			num[b00+z0w] += val * complex(c000, 0)
			den[b00+z0w] += c000 * w
			num[b00+z1w] += val * complex(c001, 0)
			den[b00+z1w] += c001 * w
			num[b01+z0w] += val * complex(c010, 0)
			den[b01+z0w] += c010 * w
			num[b01+z1w] += val * complex(c011, 0)
			den[b01+z1w] += c011 * w
			num[b10+z0w] += val * complex(c100, 0)
			den[b10+z0w] += c100 * w
			num[b10+z1w] += val * complex(c101, 0)
			den[b10+z1w] += c101 * w
			num[b11+z0w] += val * complex(c110, 0)
			den[b11+z0w] += c110 * w
			num[b11+z1w] += val * complex(c111, 0)
			den[b11+z1w] += c111 * w
			cnt++
		}
	}
	a.views++
	a.coeffs += int64(cnt)
	viewsInserted.Inc()
	coeffsSpread.Add(int64(cnt))
}

// fillShiftRamp tabulates exp(−2πi·f·d/l) for every array index, the
// separable factor of the Fourier shift theorem along one image axis.
// Two l-entry tables replace the l² complex exponentials the generic
// ShiftPhase pays per view.
func fillShiftRamp(dst []complex128, d float64, l int) {
	for j := range dst {
		f := float64(fft.FreqIndex(j, l))
		dst[j] = cmplx.Exp(complex(0, -2*math.Pi*f*d/float64(l)))
	}
}

// Stream is a bounded streaming inserter over a Sharded reconstructor:
// one goroutine per shard drains a per-shard queue, so insertion
// overlaps with whatever produces the views (decoding, refinement, an
// HTTP body). Views are striped over the shards by arrival index —
// exactly the stripe InsertViews uses — so a stream and a batch fed
// the same view sequence produce bit-identical accumulators.
//
// Insert must be called from a single producer goroutine; Close waits
// for the queues to drain. The parent Sharded must not be used until
// Close returns.
type Stream struct {
	s      *Sharded
	chs    []chan ViewTask
	wg     sync.WaitGroup
	closed bool
}

// InsertStream starts the shard workers and returns the stream handle.
// depth is the per-shard queue depth; ≤0 selects 2. Concurrency is
// min(Shards, GOMAXPROCS); the Workers option does not apply, since
// each shard's order-preserving queue needs a dedicated consumer.
func (s *Sharded) InsertStream(depth int) *Stream {
	if depth <= 0 {
		depth = 2
	}
	st := &Stream{s: s, chs: make([]chan ViewTask, len(s.acc))}
	for i := range st.chs {
		st.chs[i] = make(chan ViewTask, depth)
		st.wg.Add(1)
		go func(a *shardAccum, ch <-chan ViewTask) {
			defer st.wg.Done()
			for t := range ch {
				a.insert(t)
			}
		}(s.acc[i], st.chs[i])
	}
	return st
}

// Insert validates the task synchronously and queues it on its shard,
// blocking when the shard's queue is full (backpressure). A validation
// error leaves the stream usable.
func (st *Stream) Insert(t ViewTask) error {
	if st.closed {
		return fmt.Errorf("reconstruct: insert on closed stream")
	}
	if err := st.s.validate(t); err != nil {
		return err
	}
	st.chs[st.s.n%len(st.chs)] <- t
	st.s.n++
	return nil
}

// Close drains the shard queues and stops the workers. It is
// idempotent; the parent Sharded is safe to use (Finish, more inserts)
// once Close returns.
func (st *Stream) Close() {
	if st.closed {
		return
	}
	st.closed = true
	for _, ch := range st.chs {
		close(ch)
	}
	st.wg.Wait()
}

// FromViewsParallel reconstructs a map on the sharded kernel with an
// explicit execution shape. ctfs may be nil when Options.WienerCTF is
// off.
func FromViewsParallel(views []*volume.Image, orients []geom.Euler, centers [][2]float64, ctfs []ctf.Params, opt ParallelOptions) (*volume.Grid, error) {
	if err := validateSet(views, orients, centers, ctfs, opt.Options); err != nil {
		return nil, err
	}
	rec := NewSharded(views[0].L, opt)
	tasks := make([]ViewTask, len(views))
	for i := range views {
		tasks[i] = taskAt(views, orients, centers, ctfs, i)
	}
	if err := rec.InsertViews(tasks); err != nil {
		return nil, err
	}
	return rec.Finish(), nil
}

// SplitHalvesParallel builds the odd and even half-maps in one pass
// over the views: each view is routed to its half's streaming
// reconstructor as it is visited, so no per-half argument slices are
// materialized and both halves accumulate concurrently. Each half sees
// its views in dataset order, so the outputs are bit-identical to
// reconstructing the two subsets with FromViewsParallel.
func SplitHalvesParallel(views []*volume.Image, orients []geom.Euler, centers [][2]float64, ctfs []ctf.Params, opt ParallelOptions) (*volume.Grid, *volume.Grid, error) {
	if err := validateSet(views, orients, centers, ctfs, opt.Options); err != nil {
		return nil, nil, err
	}
	if len(views) < 2 {
		return nil, nil, fmt.Errorf("reconstruct: need at least 2 views to split")
	}
	odd := NewSharded(views[0].L, opt)
	even := NewSharded(views[0].L, opt)
	so := odd.InsertStream(0)
	se := even.InsertStream(0)
	for i := range views {
		t := taskAt(views, orients, centers, ctfs, i)
		var err error
		if i%2 == 0 { // view 1, 3, 5... in 1-based numbering
			err = so.Insert(t)
		} else {
			err = se.Insert(t)
		}
		if err != nil { // unreachable: validateSet vetted every task
			so.Close()
			se.Close()
			return nil, nil, err
		}
	}
	so.Close()
	se.Close()
	return odd.Finish(), even.Finish(), nil
}
