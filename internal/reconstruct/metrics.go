package reconstruct

import (
	"time"

	"repro/internal/obs"
)

// Reconstruction traffic (§10 conventions): views_inserted and
// coeffs_spread bump once per fused insert (one atomic add each, and
// nothing when instrumentation is off), and Finish brackets the shard
// merge with a "shard-merge" trace span. reconstruct is not one of the
// simulated-clock packages, so the span reads the wall clock relative
// to a process-local epoch — one timeline per run, lane pid 0.
var (
	viewsInserted = obs.NewCounter("reconstruct.views_inserted")
	coeffsSpread  = obs.NewCounter("reconstruct.coeffs_spread")
)

var epoch = time.Now()

// wallSeconds is the span time base: seconds since the package was
// initialized.
func wallSeconds(t time.Time) float64 { return t.Sub(epoch).Seconds() }
