package baseline

import (
	"math"

	"repro/internal/fourier"
	"repro/internal/geom"
	"repro/internal/volume"
)

// CommonLineResult is the outcome of a pairwise common-line search.
type CommonLineResult struct {
	// AlphaA and AlphaB are the in-plane angles (degrees, in [0,180))
	// of the common line in views A and B respectively.
	AlphaA, AlphaB float64
	// Score is the normalized correlation of the two central lines at
	// the optimum.
	Score float64
}

// CommonLine finds the common line between two views by exhaustive
// search over central-line angle pairs: the 2-D DFTs of two
// projections of the same object agree (up to noise) along the line
// where their central sections intersect in 3-D Fourier space. This is
// the geometric primitive of the classical common-lines method for
// ab-initio orientation determination (paper ref [2]); the paper's
// refinement replaces it because it is noise-sensitive — which the
// package tests demonstrate directly.
//
// nAngles is the angular sampling of [0°, 180°) per view; rmax bounds
// the radial extent of each line. Lines are sampled from the centred
// transforms by bilinear interpolation.
func CommonLine(a, b *volume.Image, nAngles int, rmax float64) CommonLineResult {
	fa := fourier.ImageDFT(a)
	fb := fourier.ImageDFT(b)
	la := extractLines(fa, nAngles, rmax)
	lb := extractLines(fb, nAngles, rmax)
	best := CommonLineResult{Score: math.Inf(-1)}
	for i := 0; i < nAngles; i++ {
		for j := 0; j < nAngles; j++ {
			s := lineCorrelation(la[i], lb[j])
			if s > best.Score {
				best = CommonLineResult{
					AlphaA: float64(i) * 180 / float64(nAngles),
					AlphaB: float64(j) * 180 / float64(nAngles),
					Score:  s,
				}
			}
		}
	}
	return best
}

// extractLines samples the central line of the transform at nAngles
// angles over [0°, 180°). Each line holds complex samples at radii
// 1..rmax (DC excluded: it is common to all lines and carries no
// angular information).
func extractLines(f *volume.CImage, nAngles int, rmax float64) [][]complex128 {
	nr := int(rmax)
	out := make([][]complex128, nAngles)
	for i := range out {
		angle := float64(i) * math.Pi / float64(nAngles)
		s, c := math.Sincos(angle)
		line := make([]complex128, 2*nr)
		for r := 1; r <= nr; r++ {
			// Sample at +r and −r: a central line is Hermitian, but
			// keeping both halves makes the correlation phase-aware.
			line[r-1] = sampleCImage(f, c*float64(r), s*float64(r))
			line[nr+r-1] = sampleCImage(f, -c*float64(r), -s*float64(r))
		}
		out[i] = line
	}
	return out
}

// sampleCImage bilinearly interpolates the centred transform at signed
// frequency (h, k).
func sampleCImage(f *volume.CImage, h, k float64) complex128 {
	l := f.L
	h0, k0 := int(math.Floor(h)), int(math.Floor(k))
	fh, fk := h-float64(h0), k-float64(k0)
	var sum complex128
	for dh := 0; dh <= 1; dh++ {
		wh := 1 - fh
		if dh == 1 {
			wh = fh
		}
		if wh == 0 {
			continue
		}
		hi := wrapFreqIdx(h0+dh, l)
		for dk := 0; dk <= 1; dk++ {
			wk := 1 - fk
			if dk == 1 {
				wk = fk
			}
			if wk == 0 {
				continue
			}
			ki := wrapFreqIdx(k0+dk, l)
			sum += complex(wh*wk, 0) * f.Data[hi*l+ki]
		}
	}
	return sum
}

func wrapFreqIdx(f, l int) int {
	f %= l
	if f < 0 {
		f += l
	}
	return f
}

// lineCorrelation is the normalized real correlation of two complex
// line samples.
func lineCorrelation(a, b []complex128) float64 {
	var cross, ea, eb float64
	for i := range a {
		cross += real(a[i])*real(b[i]) + imag(a[i])*imag(b[i])
		ea += real(a[i])*real(a[i]) + imag(a[i])*imag(a[i])
		eb += real(b[i])*real(b[i]) + imag(b[i])*imag(b[i])
	}
	den := math.Sqrt(ea * eb)
	if den == 0 {
		return 0
	}
	return cross / den
}

// TrueCommonLine computes the geometrically exact common-line angles
// for two known orientations: the central sections intersect along the
// direction d = ẑ'_A × ẑ'_B, whose in-plane angle in view V is the
// angle of (d·x̂'_V, d·ŷ'_V). Angles are reported in [0°, 180°).
// ok is false when the views are (anti-)parallel and no unique common
// line exists.
func TrueCommonLine(oa, ob geom.Euler) (alphaA, alphaB float64, ok bool) {
	ra, rb := oa.Matrix(), ob.Matrix()
	d := ra.Col(2).Cross(rb.Col(2))
	if d.Norm() < 1e-9 {
		return 0, 0, false
	}
	d = d.Unit()
	angleIn := func(r geom.Mat3) float64 {
		x := d.Dot(r.Col(0))
		y := d.Dot(r.Col(1))
		a := geom.RadToDeg(math.Atan2(y, x))
		a = math.Mod(a+360, 180)
		return a
	}
	return angleIn(ra), angleIn(rb), true
}
