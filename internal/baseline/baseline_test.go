package baseline

import (
	"math"
	"testing"

	"repro/internal/ctf"
	"repro/internal/fourier"
	"repro/internal/geom"
	"repro/internal/micrograph"
	"repro/internal/phantom"
)

func TestOldRefineImprovesButCoarsely(t *testing.T) {
	l := 32
	truth := phantom.SindbisLike(l)
	ds := micrograph.Generate(truth, micrograph.GenParams{NumViews: 4, PixelA: 2, Seed: 1})
	dft := fourier.NewVolumeDFTPadded(truth, 2)
	inits := ds.PerturbedOrientations(2, 2)
	cfg := DefaultOldConfig(l)
	results, err := OldRefine(dft, ds.Images(), nil, inits, cfg)
	if err != nil {
		t.Fatal(err)
	}
	g := cfg.Group
	for i, res := range results {
		// Results live in the asymmetric unit; compare against the
		// reduced truth.
		want := g.Reduce(ds.Views[i].TrueOrient)
		got := res.Orient
		// Compare as orbits: distance to the nearest symmetry mate.
		best := math.Inf(1)
		for _, mate := range g.Orbit(want) {
			if d := geom.AngularDistance(got, mate); d < best {
				best = d
			}
		}
		if best > 1.0 {
			t.Errorf("view %d: legacy refinement error %.3f°", i, best)
		}
	}
}

func TestOldRefineValidation(t *testing.T) {
	l := 16
	truth := phantom.Asymmetric(l, 4, 1)
	dft := fourier.NewVolumeDFT(truth)
	if _, err := OldRefine(dft, nil, nil, nil, OldConfig{FloorAngular: 0.1}); err == nil {
		t.Fatal("missing group accepted")
	}
	if _, err := OldRefine(dft, nil, nil, nil, OldConfig{Group: geom.Cyclic(1)}); err == nil {
		t.Fatal("zero floor accepted")
	}
}

func TestFlatSearchFindsOrientation(t *testing.T) {
	l := 24
	truth := phantom.Asymmetric(l, 8, 1)
	truth.SphericalMask(0.4 * float64(l))
	ds := micrograph.Generate(truth, micrograph.GenParams{NumViews: 1, PixelA: 2, Seed: 3})
	dft := fourier.NewVolumeDFTPadded(truth, 2)
	v := ds.Views[0]
	init := v.TrueOrient.Add(geom.Euler{Theta: 1.2, Phi: -0.8, Omega: 0.5})
	best, matchings, err := FlatSearch(dft, v.Image, ctf.Params{}, init, 2, 0.5, 9)
	if err != nil {
		t.Fatal(err)
	}
	if d := geom.AngularDistance(best, v.TrueOrient); d > 1.2 {
		t.Fatalf("flat search missed by %.2f°", d)
	}
	// ±2° at 0.5°: 9 samples per axis = 729 matchings.
	if matchings != 9*9*9 {
		t.Fatalf("flat search did %d matchings, want 729", matchings)
	}
}

func TestCommonLineOnCleanViews(t *testing.T) {
	l := 32
	truth := phantom.Asymmetric(l, 8, 1)
	truth.SphericalMask(0.4 * float64(l))
	ds := micrograph.Generate(truth, micrograph.GenParams{NumViews: 2, PixelA: 2, Seed: 4})
	a, b := ds.Views[0], ds.Views[1]
	wantA, wantB, ok := TrueCommonLine(a.TrueOrient, b.TrueOrient)
	if !ok {
		t.Skip("degenerate pair")
	}
	res := CommonLine(a.Image, b.Image, 180, 10)
	// Lines are axial (180° periodic); allow the wrap.
	angErr := func(got, want float64) float64 {
		d := math.Abs(got - want)
		if d > 90 {
			d = 180 - d
		}
		return d
	}
	if angErr(res.AlphaA, wantA) > 4 || angErr(res.AlphaB, wantB) > 4 {
		t.Fatalf("common line (%0.1f°, %0.1f°), want (%0.1f°, %0.1f°), score %.3f",
			res.AlphaA, res.AlphaB, wantA, wantB, res.Score)
	}
	if res.Score < 0.9 {
		t.Fatalf("clean common-line score %.3f", res.Score)
	}
}

func TestCommonLineDegradesWithNoise(t *testing.T) {
	// The paper motivates projection matching as "less sensitive to
	// the noise caused by experimental errors" than common lines:
	// verify that the common-line score collapses under noise.
	l := 32
	truth := phantom.Asymmetric(l, 8, 1)
	truth.SphericalMask(0.4 * float64(l))
	clean := micrograph.Generate(truth, micrograph.GenParams{NumViews: 2, PixelA: 2, Seed: 5})
	noisy := micrograph.Generate(truth, micrograph.GenParams{NumViews: 2, PixelA: 2, Seed: 5, SNR: 0.3})
	sClean := CommonLine(clean.Views[0].Image, clean.Views[1].Image, 90, 10).Score
	sNoisy := CommonLine(noisy.Views[0].Image, noisy.Views[1].Image, 90, 10).Score
	if sNoisy >= sClean {
		t.Fatalf("noise did not degrade common-line score: %.3f vs %.3f", sNoisy, sClean)
	}
}

func TestTrueCommonLineDegenerate(t *testing.T) {
	if _, _, ok := TrueCommonLine(geom.Euler{}, geom.Euler{Omega: 45}); ok {
		t.Fatal("parallel views should have no unique common line")
	}
}

func TestTrueCommonLineOrthogonalViews(t *testing.T) {
	// Views along Z and along X intersect along the Y axis.
	oa := geom.Euler{}          // view axis Z; image axes X, Y
	ob := geom.Euler{Theta: 90} // view axis X; image axes -Z?, Y
	alphaA, alphaB, ok := TrueCommonLine(oa, ob)
	if !ok {
		t.Fatal("orthogonal views must share a line")
	}
	// The common line is ±Y: in view A (axes X,Y) that is 90°.
	if math.Abs(alphaA-90) > 1e-6 {
		t.Fatalf("alphaA = %g, want 90", alphaA)
	}
	_ = alphaB // direction within view B depends on its axis convention
}
