// Package baseline implements the comparison methods the paper
// measures its contribution against:
//
//   - the "old" production refinement that exploits known icosahedral
//     symmetry but stops at a coarser angular accuracy (the source of
//     the paper's "old orientation" curves in Figs. 5 and 6);
//   - a flat single-resolution exhaustive search (the strawman whose
//     operation count §4 compares against);
//   - a common-lines estimator for initial pairwise orientation
//     geometry (the classical ab-initio method of the paper's ref [2]).
package baseline

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/ctf"
	"repro/internal/fourier"
	"repro/internal/geom"
	"repro/internal/volume"
)

// OldConfig configures the legacy symmetry-exploiting refinement.
type OldConfig struct {
	// Group is the assumed point symmetry (icosahedral for the
	// paper's datasets). Orientations are reduced into its asymmetric
	// unit, which is what symmetry-aware programs search.
	Group *geom.Group
	// FloorAngular is the finest angular resolution the legacy method
	// reaches (paper-era programs stopped near 0.1°).
	FloorAngular float64
	// FloorCenter is the finest centre step in pixels (legacy: whole
	// or half pixels).
	FloorCenter float64
	// RMap bounds the comparison band, as in core.Config.
	RMap float64
	// Interp selects cut interpolation.
	Interp fourier.Interpolation
}

// DefaultOldConfig returns the legacy setup for maps of size l:
// icosahedral symmetry, 0.1° angular floor, half-pixel centres.
func DefaultOldConfig(l int) OldConfig {
	return OldConfig{
		Group:        geom.Icosahedral(),
		FloorAngular: 0.1,
		FloorCenter:  0.5,
		RMap:         0.8 * float64(l) / 2,
		Interp:       fourier.Trilinear,
	}
}

// OldRefine runs the legacy refinement: the same Fourier matching
// machinery, but with the schedule truncated at the legacy accuracy
// floor and all orientations folded into the symmetry group's
// asymmetric unit. The result plays the role of the "previously
// determined orientations" of the paper's experiments.
func OldRefine(dft *fourier.VolumeDFT, views []*volume.Image, ctfs []ctf.Params, inits []geom.Euler, cfg OldConfig) ([]core.Result, error) {
	if cfg.Group == nil {
		return nil, fmt.Errorf("baseline: OldConfig.Group is required")
	}
	if cfg.FloorAngular <= 0 {
		return nil, fmt.Errorf("baseline: FloorAngular must be positive")
	}
	var schedule []core.Level
	for _, lv := range core.DefaultSchedule() {
		if lv.RAngular < cfg.FloorAngular {
			break
		}
		if lv.CenterDelta < cfg.FloorCenter {
			lv.CenterDelta = cfg.FloorCenter
		}
		schedule = append(schedule, lv)
	}
	ccfg := core.Config{
		RMap:           cfg.RMap,
		Schedule:       schedule,
		Interp:         cfg.Interp,
		MaxSlides:      10,
		NormalizeScale: true,
		// Legacy programs located centres on the search grid only.
		ParabolicCenter: false,
	}
	r, err := core.NewRefiner(dft, ccfg)
	if err != nil {
		return nil, err
	}
	results := make([]core.Result, len(views))
	for i, im := range views {
		var p ctf.Params
		if ctfs != nil {
			p = ctfs[i]
		}
		v, err := r.PrepareView(im, p)
		if err != nil {
			return nil, err
		}
		// The legacy program searches the asymmetric unit only.
		init := cfg.Group.Reduce(inits[i])
		res := r.RefineView(v, init)
		res.Orient = cfg.Group.Reduce(res.Orient)
		results[i] = res
	}
	return results, nil
}

// FlatSearch performs the naive single-resolution exhaustive search of
// §4's comparison: every orientation of the window around init at the
// final angular resolution, no multi-resolution laddering. Returns the
// best orientation and the number of matching operations — which is
// what makes the multi-resolution saving measurable.
func FlatSearch(dft *fourier.VolumeDFT, im *volume.Image, p ctf.Params, init geom.Euler, half, step float64, rmap float64) (geom.Euler, int, error) {
	cfg := core.Config{
		RMap:           rmap,
		Schedule:       []core.Level{{RAngular: step, WindowHalf: half}},
		Interp:         fourier.Trilinear,
		MaxSlides:      0,
		NormalizeScale: true,
	}
	r, err := core.NewRefiner(dft, cfg)
	if err != nil {
		return geom.Euler{}, 0, err
	}
	v, err := r.PrepareView(im, p)
	if err != nil {
		return geom.Euler{}, 0, err
	}
	res := r.RefineView(v, init)
	return res.Orient, res.TotalMatchings(), nil
}
