// Package symmetry detects the point-symmetry group of a refined
// electron-density map — the capability the paper highlights as a
// benefit of symmetry-agnostic refinement ("if the virus exhibits any
// symmetry this method allows us to determine its symmetry group").
//
// Detection scores each candidate group by the self-correlation of the
// map under every non-identity rotation of the group; a group is
// present exactly when all of its rotations leave the map invariant.
// The reported group is the largest candidate whose worst-element
// correlation clears a threshold, so a C2 particle is not misreported
// as C1, and an icosahedral particle (which also contains C2, C3 and
// C5 as subgroups) is reported as I.
package symmetry

import (
	"math"
	"sort"

	"repro/internal/geom"
	"repro/internal/volume"
)

// Score is the detection evidence for one candidate group.
type Score struct {
	Group *geom.Group
	// MinCC is the lowest self-correlation over the group's
	// non-identity elements — the group is present only if even its
	// worst rotation preserves the map.
	MinCC float64
	// MeanCC is the average self-correlation over non-identity
	// elements.
	MeanCC float64
}

// DefaultCandidates returns the candidate groups scanned by Detect:
// cyclic C2–C7, dihedral D2–D6, and the polyhedral groups T, O, I.
func DefaultCandidates() []*geom.Group {
	var gs []*geom.Group
	for n := 2; n <= 7; n++ {
		gs = append(gs, geom.Cyclic(n))
	}
	for n := 2; n <= 6; n++ {
		gs = append(gs, geom.Dihedral(n))
	}
	gs = append(gs, geom.Tetrahedral(), geom.Octahedral(), geom.Icosahedral())
	return gs
}

// ScoreGroup computes the self-correlation evidence for one group.
// The map is masked to a sphere first so box corners (which rotate out
// of the lattice) do not bias the correlation.
func ScoreGroup(m *volume.Grid, g *geom.Group) Score {
	masked := m.Clone()
	masked.SphericalMask(float64(m.L)/2 - 1)
	min, sum := math.Inf(1), 0.0
	n := 0
	for _, e := range g.Elements[1:] {
		rot := masked.Rotate([3][3]float64(e))
		cc := volume.Correlation(masked, rot)
		if cc < min {
			min = cc
		}
		sum += cc
		n++
	}
	if n == 0 {
		return Score{Group: g, MinCC: 1, MeanCC: 1}
	}
	return Score{Group: g, MinCC: min, MeanCC: sum / float64(n)}
}

// Detect scans the candidate groups and returns the largest group
// whose MinCC clears the threshold, together with every candidate's
// score (sorted by descending group order). If no candidate clears
// the threshold the particle is asymmetric and C1 is returned.
// A threshold around 0.8 tolerates the resampling error of rotating a
// discrete lattice; nil candidates selects DefaultCandidates.
func Detect(m *volume.Grid, candidates []*geom.Group, threshold float64) (*geom.Group, []Score) {
	if candidates == nil {
		candidates = DefaultCandidates()
	}
	scores := make([]Score, 0, len(candidates))
	for _, g := range candidates {
		scores = append(scores, ScoreGroup(m, g))
	}
	sort.SliceStable(scores, func(a, b int) bool {
		return scores[a].Group.Order() > scores[b].Group.Order()
	})
	for _, s := range scores {
		if s.MinCC >= threshold {
			return s.Group, scores
		}
	}
	return geom.Cyclic(1), scores
}

// AxisScan searches for individual rotational symmetry axes: it
// scores n-fold rotations about a grid of candidate axis directions
// and returns those clearing the threshold. This is the exploratory
// tool for particles whose symmetry is not one of the standard
// candidates (e.g. a single odd-order cyclic axis in an arbitrary
// direction).
type Axis struct {
	Direction geom.Vec3
	Fold      int
	CC        float64
}

// AxisScan samples axis directions at approximately stepDeg spacing
// and tests folds 2..maxFold, returning axes with correlation ≥
// threshold, strongest first.
func AxisScan(m *volume.Grid, stepDeg float64, maxFold int, threshold float64) []Axis {
	masked := m.Clone()
	masked.SphericalMask(float64(m.L)/2 - 1)
	var out []Axis
	for _, e := range geom.SphereGrid(stepDeg) {
		// Opposite directions define the same axis; keep one
		// hemisphere.
		d := e.ViewAxis()
		if d.Z < 0 || (d.Z == 0 && d.Y < 0) {
			continue
		}
		for fold := 2; fold <= maxFold; fold++ {
			rot := masked.Rotate([3][3]float64(geom.AxisAngle(d, 2*math.Pi/float64(fold))))
			cc := volume.Correlation(masked, rot)
			if cc >= threshold {
				out = append(out, Axis{Direction: d, Fold: fold, CC: cc})
			}
		}
	}
	sort.SliceStable(out, func(a, b int) bool { return out[a].CC > out[b].CC })
	return out
}
