package symmetry

import (
	"testing"

	"repro/internal/geom"
	"repro/internal/phantom"
)

func TestDetectIcosahedral(t *testing.T) {
	m := phantom.SindbisLike(32)
	g, scores := Detect(m, nil, 0.8)
	if g.Name != "I" {
		for _, s := range scores {
			t.Logf("%-4s min=%.3f mean=%.3f", s.Group.Name, s.MinCC, s.MeanCC)
		}
		t.Fatalf("detected %s, want I", g.Name)
	}
}

func TestDetectC1ForAsymmetric(t *testing.T) {
	m := phantom.Asymmetric(32, 10, 3)
	g, _ := Detect(m, nil, 0.8)
	if g.Name != "C1" {
		t.Fatalf("asymmetric particle detected as %s", g.Name)
	}
}

func TestDetectCyclic(t *testing.T) {
	m := phantom.CnSymmetric(32, 5, 7)
	g, scores := Detect(m, nil, 0.8)
	if g.Name != "C5" {
		for _, s := range scores {
			t.Logf("%-4s min=%.3f mean=%.3f", s.Group.Name, s.MinCC, s.MeanCC)
		}
		t.Fatalf("detected %s, want C5", g.Name)
	}
}

func TestDetectPrefersLargerGroup(t *testing.T) {
	// An icosahedral map also satisfies C2, C3, C5 — detection must
	// report the full group, not a subgroup.
	m := phantom.SindbisLike(32)
	_, scores := Detect(m, nil, 0.8)
	var c5, ico float64
	for _, s := range scores {
		switch s.Group.Name {
		case "C5":
			c5 = s.MinCC
		case "I":
			ico = s.MinCC
		}
	}
	// C5 about the Z axis is NOT an icosahedral subgroup in the 222
	// setting (the five-folds are off-axis), so C5-about-Z may fail;
	// the point is that I itself clears the threshold.
	if ico < 0.8 {
		t.Fatalf("icosahedral score %.3f below threshold", ico)
	}
	_ = c5
}

func TestScoreGroupPerfectForTrivial(t *testing.T) {
	m := phantom.Asymmetric(16, 4, 1)
	s := ScoreGroup(m, geom.Cyclic(1))
	if s.MinCC != 1 || s.MeanCC != 1 {
		t.Fatalf("trivial group score %+v", s)
	}
}

func TestAxisScanFindsCyclicAxis(t *testing.T) {
	m := phantom.CnSymmetric(32, 4, 9)
	axes := AxisScan(m, 30, 5, 0.9)
	if len(axes) == 0 {
		t.Fatal("no axes found for C4 particle")
	}
	// The strongest axis must be ±Z with fold 4 or 2 (C4 ⊃ C2).
	best := axes[0]
	if z := best.Direction.Z; z < 0.99 {
		t.Fatalf("best axis %v, want Z", best.Direction)
	}
	if best.Fold != 2 && best.Fold != 4 {
		t.Fatalf("best fold %d, want 2 or 4", best.Fold)
	}
}

func TestAxisScanQuietForAsymmetric(t *testing.T) {
	m := phantom.Asymmetric(32, 10, 11)
	axes := AxisScan(m, 30, 4, 0.9)
	if len(axes) != 0 {
		t.Fatalf("asymmetric particle produced %d spurious axes (best %+v)", len(axes), axes[0])
	}
}
