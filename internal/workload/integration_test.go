package workload

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/fourier"
	"repro/internal/fsc"
	"repro/internal/geom"
	"repro/internal/micrograph"
	"repro/internal/phantom"
	"repro/internal/reconstruct"
	"repro/internal/volume"
)

// TestFullPipelineFromMicrograph exercises the complete
// structure-determination procedure across module boundaries:
// micrograph synthesis → particle boxing with centre-of-mass
// pre-centring (step A) → orientation + centre refinement (step B) →
// 3-D reconstruction (step C) → odd/even FSC assessment (Fig. 4).
func TestFullPipelineFromMicrograph(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline integration test")
	}
	const l = 28
	truth := phantom.Asymmetric(l, 10, 1)
	truth.SphericalMask(0.38 * l)
	ds := micrograph.Generate(truth, micrograph.GenParams{
		NumViews: 16, PixelA: 2.5, SNR: 6, Seed: 41,
	})

	// Step A: micrograph, boxing, pre-centring.
	mg := micrograph.MakeMicrograph(ds, 4, 4, 1.2, 42)
	images, _, err := mg.BoxAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(images) != 16 {
		t.Fatalf("boxed %d particles, want 16", len(images))
	}

	// Step B: refinement from rough initial orientations. Boxed
	// particles carry residual positional error from the jitter, which
	// the centre refinement must absorb.
	dft := fourier.NewVolumeDFTPadded(truth, 2)
	cfg := core.DefaultConfig(l)
	cfg.Schedule = core.DefaultSchedule()[:2]
	r, err := core.NewRefiner(dft, cfg)
	if err != nil {
		t.Fatal(err)
	}
	inits := ds.PerturbedOrientations(2, 43)
	orients := make([]geom.Euler, len(images))
	centers := make([][2]float64, len(images))
	var angErr float64
	for i, im := range images {
		pv, err := r.PrepareView(im, ds.Views[i].CTF)
		if err != nil {
			t.Fatal(err)
		}
		res := r.RefineView(pv, inits[i])
		orients[i] = res.Orient
		centers[i] = res.Center
		angErr += geom.AngularDistance(res.Orient, ds.Views[i].TrueOrient)
	}
	angErr /= float64(len(images))
	if angErr > 1.5 {
		t.Fatalf("mean angular error after boxing+refinement: %.2f°", angErr)
	}

	// Step C: reconstruction from the boxed particles.
	rec, err := reconstruct.FromViews(images, orients, centers, nil, reconstruct.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if cc := volume.Correlation(truth, rec); cc < 0.6 {
		t.Fatalf("end-to-end reconstruction correlation %.3f", cc)
	}

	// Fig. 4: the resolution assessment must produce a usable curve.
	odd, even, err := reconstruct.SplitHalves(images, orients, centers, nil, reconstruct.Options{})
	if err != nil {
		t.Fatal(err)
	}
	curve, err := fsc.Compute(odd, even, 2.5)
	if err != nil {
		t.Fatal(err)
	}
	res := curve.ResolutionAt(0.5)
	if math.IsInf(res, 1) || res <= 0 {
		t.Fatalf("nonsensical resolution estimate %g", res)
	}
	if curve.Points[0].CC < 0.7 {
		t.Fatalf("low-frequency half-map agreement only %.3f", curve.Points[0].CC)
	}
}

// TestGlobalSearchIntegration checks that orientation assignment works
// with *no* initial estimates through the workload-scale pipeline.
func TestGlobalSearchIntegration(t *testing.T) {
	if testing.Short() {
		t.Skip("global search integration test")
	}
	const l = 24
	truth := phantom.Asymmetric(l, 8, 1)
	truth.SphericalMask(0.4 * l)
	ds := micrograph.Generate(truth, micrograph.GenParams{NumViews: 4, PixelA: 2.5, Seed: 44})
	dft := fourier.NewVolumeDFTPadded(truth, 2)
	cfg := core.DefaultConfig(l)
	cfg.Schedule = core.DefaultSchedule()[:2]
	r, err := core.NewRefiner(dft, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range ds.Views {
		pv, _ := r.PrepareView(v.Image, v.CTF)
		res, err := r.GlobalSearch(pv, core.DefaultGlobalSearchConfig())
		if err != nil {
			t.Fatal(err)
		}
		if d := geom.AngularDistance(res.Orient, v.TrueOrient); d > 2 {
			t.Errorf("view %d: ab-initio error %.2f°", i, d)
		}
	}
}
