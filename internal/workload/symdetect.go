package workload

import (
	"repro/internal/phantom"
	"repro/internal/symmetry"
	"repro/internal/volume"
)

// SymDetectCase is one symmetry-detection trial: a particle of known
// symmetry, the group Detect reported, and the full score table.
type SymDetectCase struct {
	Name     string
	Expected string
	Detected string
	Scores   []symmetry.Score
}

// Correct reports whether detection matched the expectation.
func (c SymDetectCase) Correct() bool { return c.Detected == c.Expected }

// RunSymmetryDetection exercises the §6 claim that the method "can be
// used to determine the symmetry group of a symmetric particle": it
// detects the point group of an icosahedral capsid, a C5 particle and
// an asymmetric particle. l is the map size (32 is adequate; larger is
// slower but sharper).
func RunSymmetryDetection(l int) []SymDetectCase {
	if l <= 0 {
		l = 32
	}
	builds := []struct {
		name, expected string
		build          func() *volume.Grid
	}{
		{"sindbis-like capsid", "I", func() *volume.Grid { return phantom.SindbisLike(l) }},
		{"reo-like capsid", "I", func() *volume.Grid { return phantom.ReoLike(l) }},
		{"C5 particle", "C5", func() *volume.Grid { return phantom.CnSymmetric(l, 5, 7) }},
		{"asymmetric particle", "C1", func() *volume.Grid { return phantom.Asymmetric(l, 12, 3) }},
	}
	out := make([]SymDetectCase, 0, len(builds))
	for _, b := range builds {
		g, scores := symmetry.Detect(b.build(), nil, 0.8)
		out = append(out, SymDetectCase{
			Name:     b.name,
			Expected: b.expected,
			Detected: g.Name,
			Scores:   scores,
		})
	}
	return out
}

// RunSymmetryDetectionOnMap detects the group of an arbitrary
// reconstructed map — the production entry point used after refining
// a particle of unknown symmetry.
func RunSymmetryDetectionOnMap(m *volume.Grid, threshold float64) SymDetectCase {
	g, scores := symmetry.Detect(m, nil, threshold)
	return SymDetectCase{Name: "reconstructed map", Detected: g.Name, Scores: scores}
}
