package workload

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/ctf"
	"repro/internal/fourier"
	"repro/internal/fsc"
	"repro/internal/geom"
	"repro/internal/micrograph"
	"repro/internal/reconstruct"
	"repro/internal/volume"
)

// FSCOptions tunes the Figs. 4–6 experiment.
type FSCOptions struct {
	// Cycles is the number of refine→reconstruct iterations (steps B
	// and C of the structure-determination procedure). The paper runs
	// "hundreds"; two cycles already separate the methods cleanly.
	Cycles int
	// Workers bounds refinement concurrency; ≤0 uses GOMAXPROCS.
	Workers int
	// OldFloorAngular / OldFloorCenter set the legacy method's
	// accuracy floor (see baseline.OldConfig). Zeros select 1° and
	// 1 px — the accuracy regime of symmetry-exploiting programs in
	// routine use before sub-degree refinement.
	OldFloorAngular, OldFloorCenter float64
	// Pad is the spectrum oversampling for matching; 0 selects 2.
	Pad int
	// RMapFracPerCycle optionally ladders the matching resolution
	// across cycles, per the paper's outer loop ("then we increase
	// the resolution and repeat the entire procedure"): cycle i
	// matches only up to RMapFracPerCycle[i]·(0.8·Nyquist). Cycles
	// beyond the slice length use the full band; empty disables
	// laddering.
	RMapFracPerCycle []float64
}

func (o *FSCOptions) setDefaults() {
	if o.Cycles <= 0 {
		o.Cycles = 2
	}
	if o.OldFloorAngular <= 0 {
		o.OldFloorAngular = 1.0
	}
	if o.OldFloorCenter <= 0 {
		o.OldFloorCenter = 1.0
	}
	if o.Pad <= 0 {
		o.Pad = 2
	}
}

// MethodOutcome holds one method's end-to-end result on a dataset.
type MethodOutcome struct {
	// Orients and Centers are the final per-view solutions.
	Orients []geom.Euler
	Centers [][2]float64
	// Map is the full reconstruction from all views.
	Map *volume.Grid
	// Curve is the odd/even half-map FSC (Fig. 4 procedure).
	Curve *fsc.Curve
	// ResolutionA is the curve's 0.5 crossing in Å.
	ResolutionA float64
	// TruthCC is the full map's correlation against the ground-truth
	// phantom — a measure the paper could not compute.
	TruthCC float64
	// MeanAngErr and MeanCenErr are mean errors against ground truth.
	MeanAngErr, MeanCenErr float64
	// PerLevel aggregates refinement work (final cycle only).
	PerLevel []LevelAgg
}

// LevelAgg aggregates per-level refinement statistics over all views.
type LevelAgg struct {
	RAngular       float64
	MeanMatchings  float64
	SlideViews     int // views whose window slid at least once
	TotalSlides    int
	MeanCenterEval float64
}

// FSCExperiment is the complete Figs. 2/3/5/6 result for one dataset:
// the old and new methods side by side.
type FSCExperiment struct {
	Spec     DatasetSpec
	Truth    *volume.Grid
	Old, New MethodOutcome
}

// RunFSC executes the full comparison on a dataset: synthesize views,
// hand both methods the same rough initial orientations, iterate
// refine→reconstruct for the configured cycles, and assess both with
// the odd/even FSC.
func RunFSC(spec DatasetSpec, opt FSCOptions) (*FSCExperiment, error) {
	opt.setDefaults()
	ds := spec.Build()
	inits := ds.PerturbedOrientations(spec.InitError, spec.Seed+1)

	exp := &FSCExperiment{Spec: spec, Truth: ds.Truth}

	oldOut, err := runMethod(ds, spec, inits, opt, legacySchedule(opt), false)
	if err != nil {
		return nil, fmt.Errorf("workload: old method: %w", err)
	}
	exp.Old = *oldOut
	newOut, err := runMethod(ds, spec, inits, opt, core.DefaultSchedule(), true)
	if err != nil {
		return nil, fmt.Errorf("workload: new method: %w", err)
	}
	exp.New = *newOut
	return exp, nil
}

// legacySchedule truncates the default schedule at the legacy floors,
// mirroring baseline.OldRefine.
func legacySchedule(opt FSCOptions) []core.Level {
	var out []core.Level
	for _, lv := range core.DefaultSchedule() {
		if lv.RAngular < opt.OldFloorAngular {
			break
		}
		if lv.CenterDelta < opt.OldFloorCenter {
			lv.CenterDelta = opt.OldFloorCenter
		}
		out = append(out, lv)
	}
	if len(out) == 0 {
		out = []core.Level{{RAngular: opt.OldFloorAngular, WindowHalf: 4 * opt.OldFloorAngular,
			CenterDelta: opt.OldFloorCenter, CenterHalf: 1, RMapFrac: 0.4}}
	}
	return out
}

// runMethod iterates refine→reconstruct with the given schedule; the
// legacy and new methods differ in how deep that schedule goes and in
// whether centres are interpolated below the search grid.
func runMethod(ds *micrograph.Dataset, spec DatasetSpec, inits []geom.Euler, opt FSCOptions, schedule []core.Level, parabolic bool) (*MethodOutcome, error) {
	l := ds.L
	orients := append([]geom.Euler(nil), inits...)
	centers := make([][2]float64, len(ds.Views))
	var perLevel []LevelAgg

	var ctfs []ctf.Params
	if ds.HasCTF {
		for _, v := range ds.Views {
			ctfs = append(ctfs, v.CTF)
		}
	}

	for cycle := 0; cycle < opt.Cycles; cycle++ {
		// Step C of the previous cycle: reconstruct the current map
		// from the current orientations and centres.
		ref, err := reconstruct.FromViews(ds.Images(), orients, centers, ctfs,
			reconstruct.Options{WienerCTF: ds.HasCTF})
		if err != nil {
			return nil, err
		}
		ref.SphericalMask(0.45 * float64(l))
		dft := fourier.NewVolumeDFTPadded(ref, opt.Pad)

		cfg := core.DefaultConfig(l)
		cfg.Schedule = schedule
		cfg.ParabolicCenter = parabolic
		if cycle < len(opt.RMapFracPerCycle) {
			f := opt.RMapFracPerCycle[cycle]
			if f > 0 && f <= 1 {
				cfg.RMap *= f
			}
		}
		if ds.HasCTF {
			cfg.CorrectCTF = true
			cfg.CTFMode = ctf.PhaseFlip
			cfg.CTFWeightCuts = true
		}
		r, err := core.NewRefiner(dft, cfg)
		if err != nil {
			return nil, err
		}
		// Prepare views already corrected to the centres found so far:
		// refinement then reports the *incremental* correction.
		views := make([]*core.View, len(ds.Views))
		for i, v := range ds.Views {
			im := v.Image
			if centers[i][0] != 0 || centers[i][1] != 0 {
				f := fourier.ImageDFT(im)
				fourier.ShiftPhase(f, centers[i][0], centers[i][1])
				im = fourier.InverseImageDFT(f)
			}
			var p ctf.Params
			if ctfs != nil {
				p = ctfs[i]
			}
			pv, err := r.PrepareView(im, p)
			if err != nil {
				return nil, err
			}
			views[i] = pv
		}
		results, err := r.RefineAll(views, orients, opt.Workers)
		if err != nil {
			return nil, err
		}
		perLevel = aggregate(schedule, results)
		for i, res := range results {
			orients[i] = res.Orient
			centers[i][0] += res.Center[0]
			centers[i][1] += res.Center[1]
		}
	}

	out := &MethodOutcome{Orients: orients, Centers: centers, PerLevel: perLevel}

	// Final full and half-map reconstructions.
	full, err := reconstruct.FromViews(ds.Images(), orients, centers, ctfs,
		reconstruct.Options{WienerCTF: ds.HasCTF})
	if err != nil {
		return nil, err
	}
	out.Map = full
	odd, even, err := reconstruct.SplitHalves(ds.Images(), orients, centers, ctfs,
		reconstruct.Options{WienerCTF: ds.HasCTF})
	if err != nil {
		return nil, err
	}
	curve, err := fsc.Compute(odd, even, spec.PixelA)
	if err != nil {
		return nil, err
	}
	out.Curve = curve
	out.ResolutionA = curve.ResolutionAt(0.5)
	out.TruthCC = volume.Correlation(ds.Truth, full)

	// Ground-truth errors (available only because the data is
	// synthetic).
	var angSum, cenSum float64
	for i, v := range ds.Views {
		angSum += geom.AngularDistance(orients[i], v.TrueOrient)
		dx := centers[i][0] + v.TrueCenter[0]
		dy := centers[i][1] + v.TrueCenter[1]
		cenSum += math.Hypot(dx, dy)
	}
	out.MeanAngErr = angSum / float64(len(ds.Views))
	out.MeanCenErr = cenSum / float64(len(ds.Views))
	return out, nil
}

func aggregate(schedule []core.Level, results []core.Result) []LevelAgg {
	aggs := make([]LevelAgg, len(schedule))
	for li := range schedule {
		aggs[li].RAngular = schedule[li].RAngular
	}
	for _, res := range results {
		for li, st := range res.PerLevel {
			if li >= len(aggs) {
				break
			}
			aggs[li].MeanMatchings += float64(st.Matchings)
			aggs[li].MeanCenterEval += float64(st.CenterEvals)
			if st.Slides > 0 {
				aggs[li].SlideViews++
			}
			aggs[li].TotalSlides += st.Slides
		}
	}
	n := float64(len(results))
	if n > 0 {
		for li := range aggs {
			aggs[li].MeanMatchings /= n
			aggs[li].MeanCenterEval /= n
		}
	}
	return aggs
}
