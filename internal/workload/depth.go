package workload

import (
	"io"
	"math"

	"repro/internal/core"
	"repro/internal/fourier"
	"repro/internal/fsc"
	"repro/internal/geom"
	"repro/internal/reconstruct"
)

// DepthRow is the outcome of refining with the schedule truncated at
// one depth.
type DepthRow struct {
	// Levels is the schedule depth (1 = 1° only ... 4 = down to 0.002°).
	Levels int
	// FinestDeg is the finest angular resolution refined to.
	FinestDeg float64
	// MeanAngErr and MeanCenErr are ground-truth errors.
	MeanAngErr, MeanCenErr float64
	// ResolutionA is the odd/even FSC 0.5 crossing.
	ResolutionA float64
	// MatchingsPerView is the measured matching cost.
	MatchingsPerView float64
}

// DepthStudy answers the question the paper closes §5 with: "How fine
// the angular resolution should be used ... does it make any sense to
// refine the angles beyond 0.01°?" It refines the same dataset with
// the schedule truncated at every depth and reports accuracy and cost
// per depth; where the error plateaus, deeper refinement buys nothing.
// Refinement runs against the ground-truth map so the answer isolates
// the schedule from reference quality.
func DepthStudy(spec DatasetSpec) ([]DepthRow, error) {
	ds := spec.Build()
	dft := fourier.NewVolumeDFTPadded(ds.Truth, 2)
	inits := ds.PerturbedOrientations(spec.InitError, spec.Seed+3)
	full := core.DefaultSchedule()

	var rows []DepthRow
	for depth := 1; depth <= len(full); depth++ {
		cfg := core.DefaultConfig(spec.L)
		cfg.Schedule = full[:depth]
		r, err := core.NewRefiner(dft, cfg)
		if err != nil {
			return nil, err
		}
		orients := make([]geom.Euler, len(ds.Views))
		centers := make([][2]float64, len(ds.Views))
		var angSum, cenSum, matchSum float64
		for i, v := range ds.Views {
			pv, err := r.PrepareView(v.Image, v.CTF)
			if err != nil {
				return nil, err
			}
			res := r.RefineView(pv, inits[i])
			orients[i] = res.Orient
			centers[i] = res.Center
			angSum += geom.AngularDistance(res.Orient, v.TrueOrient)
			cenSum += math.Hypot(res.Center[0]+v.TrueCenter[0], res.Center[1]+v.TrueCenter[1])
			matchSum += float64(res.TotalMatchings())
		}
		odd, even, err := reconstruct.SplitHalves(ds.Images(), orients, centers, nil, reconstruct.Options{})
		if err != nil {
			return nil, err
		}
		curve, err := fsc.Compute(odd, even, spec.PixelA)
		if err != nil {
			return nil, err
		}
		n := float64(len(ds.Views))
		rows = append(rows, DepthRow{
			Levels:           depth,
			FinestDeg:        full[depth-1].RAngular,
			MeanAngErr:       angSum / n,
			MeanCenErr:       cenSum / n,
			ResolutionA:      curve.ResolutionAt(0.5),
			MatchingsPerView: matchSum / n,
		})
	}
	return rows, nil
}

// WriteDepthStudy renders the §5-question table.
func WriteDepthStudy(w io.Writer, spec DatasetSpec, rows []DepthRow) error {
	pr := &printer{w: w}
	pr.printf("§5 question — schedule depth study, %s (refined against ground truth)\n", spec.Name)
	pr.printf("%8s %12s %12s %14s %12s %16s\n",
		"levels", "finest (°)", "ang err (°)", "cen err (px)", "res (Å)", "matchings/view")
	for _, r := range rows {
		pr.printf("%8d %12.4g %12.3f %14.3f %12.2f %16.0f\n",
			r.Levels, r.FinestDeg, r.MeanAngErr, r.MeanCenErr, r.ResolutionA, r.MatchingsPerView)
	}
	return pr.err
}
