package workload

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/ctf"
	"repro/internal/fourier"
	"repro/internal/fsc"
	"repro/internal/geom"
	"repro/internal/reconstruct"
	"repro/internal/volume"
)

// CycleOutcome records the state after one refine→reconstruct cycle.
type CycleOutcome struct {
	Cycle int
	// ResolutionA is the odd/even FSC 0.5 crossing after the cycle.
	ResolutionA float64
	// TruthCC is the full map's correlation with the ground truth.
	TruthCC float64
	// MeanAngErr / MeanCenErr are ground-truth errors of the current
	// orientations.
	MeanAngErr, MeanCenErr float64
}

// ConvergenceResult traces refinement across cycles — the paper's
// outer iteration ("steps B and C are executed iteratively until the
// 3D electron density map cannot be further improved").
type ConvergenceResult struct {
	Spec   DatasetSpec
	Cycles []CycleOutcome
}

// Converged reports whether the final cycles stopped improving the
// truth correlation by more than tol — the paper's stopping criterion
// made explicit.
func (c *ConvergenceResult) Converged(tol float64) bool {
	n := len(c.Cycles)
	if n < 2 {
		return false
	}
	return c.Cycles[n-1].TruthCC-c.Cycles[n-2].TruthCC < tol
}

// RunConvergence iterates refine→reconstruct for maxCycles cycles with
// the full schedule, recording the per-cycle assessment. Unlike
// RunFSC it traces the trajectory rather than comparing methods.
func RunConvergence(spec DatasetSpec, opt FSCOptions, maxCycles int) (*ConvergenceResult, error) {
	if maxCycles < 1 {
		return nil, fmt.Errorf("workload: maxCycles must be ≥ 1")
	}
	opt.setDefaults()
	ds := spec.Build()
	orients := ds.PerturbedOrientations(spec.InitError, spec.Seed+1)
	centers := make([][2]float64, len(ds.Views))
	var ctfs []ctf.Params
	if ds.HasCTF {
		for _, v := range ds.Views {
			ctfs = append(ctfs, v.CTF)
		}
	}
	out := &ConvergenceResult{Spec: spec}
	recOpt := reconstruct.Options{WienerCTF: ds.HasCTF}

	for cycle := 0; cycle < maxCycles; cycle++ {
		ref, err := reconstruct.FromViews(ds.Images(), orients, centers, ctfs, recOpt)
		if err != nil {
			return nil, err
		}
		ref.SphericalMask(0.45 * float64(ds.L))
		dft := fourier.NewVolumeDFTPadded(ref, opt.Pad)
		cfg := core.DefaultConfig(ds.L)
		if ds.HasCTF {
			cfg.CorrectCTF = true
			cfg.CTFMode = ctf.PhaseFlip
			cfg.CTFWeightCuts = true
		}
		r, err := core.NewRefiner(dft, cfg)
		if err != nil {
			return nil, err
		}
		views := make([]*core.View, len(ds.Views))
		for i, v := range ds.Views {
			im := v.Image
			if centers[i][0] != 0 || centers[i][1] != 0 {
				f := fourier.ImageDFT(im)
				fourier.ShiftPhase(f, centers[i][0], centers[i][1])
				im = fourier.InverseImageDFT(f)
			}
			var p ctf.Params
			if ctfs != nil {
				p = ctfs[i]
			}
			views[i], err = r.PrepareView(im, p)
			if err != nil {
				return nil, err
			}
		}
		results, err := r.RefineAll(views, orients, opt.Workers)
		if err != nil {
			return nil, err
		}
		for i, res := range results {
			orients[i] = res.Orient
			centers[i][0] += res.Center[0]
			centers[i][1] += res.Center[1]
		}

		// Assess the cycle.
		full, err := reconstruct.FromViews(ds.Images(), orients, centers, ctfs, recOpt)
		if err != nil {
			return nil, err
		}
		odd, even, err := reconstruct.SplitHalves(ds.Images(), orients, centers, ctfs, recOpt)
		if err != nil {
			return nil, err
		}
		curve, err := fsc.Compute(odd, even, spec.PixelA)
		if err != nil {
			return nil, err
		}
		var angSum, cenSum float64
		for i, v := range ds.Views {
			angSum += geom.AngularDistance(orients[i], v.TrueOrient)
			cenSum += math.Hypot(centers[i][0]+v.TrueCenter[0], centers[i][1]+v.TrueCenter[1])
		}
		out.Cycles = append(out.Cycles, CycleOutcome{
			Cycle:       cycle + 1,
			ResolutionA: curve.ResolutionAt(0.5),
			TruthCC:     volume.Correlation(ds.Truth, full),
			MeanAngErr:  angSum / float64(len(ds.Views)),
			MeanCenErr:  cenSum / float64(len(ds.Views)),
		})
	}
	return out, nil
}

// WriteConvergence renders the per-cycle trajectory.
func (c *ConvergenceResult) Write(w interface{ Write([]byte) (int, error) }) error {
	pr := &printer{w: w}
	pr.printf("refinement convergence, %s (%d views of %d px)\n",
		c.Spec.Name, c.Spec.NumViews, c.Spec.L)
	pr.printf("%6s %12s %10s %12s %12s\n", "cycle", "res (Å)", "truth cc", "ang err (°)", "cen err (px)")
	for _, cy := range c.Cycles {
		pr.printf("%6d %12.2f %10.4f %12.3f %12.3f\n",
			cy.Cycle, cy.ResolutionA, cy.TruthCC, cy.MeanAngErr, cy.MeanCenErr)
	}
	return pr.err
}
