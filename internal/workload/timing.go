package workload

import (
	"fmt"
	"math"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/fourier"
	"repro/internal/parfft"
)

// TimingRow is one column of the paper's Tables 1 and 2: the simulated
// time of each step of one orientation-refinement pass at one angular
// resolution.
type TimingRow struct {
	// RAngular is the pass's angular resolution in degrees.
	RAngular float64
	// SearchRange is the window extent per axis in grid points.
	SearchRange int
	// MeanMatchings is the measured matchings per view (windows,
	// slides and intra-level alternation included).
	MeanMatchings float64
	// SlideViews counts views whose window slid at least once.
	SlideViews int
	// Seconds of simulated time per step (the table rows).
	DFT3D, ReadImages, FFTAnalysis, Refinement, Total float64
	// RefinementShare is Refinement/Total — the paper's "99% of the
	// time is spent matching".
	RefinementShare float64
}

// TimingTable is the full Tables 1–2 reproduction for one dataset.
type TimingTable struct {
	Spec DatasetSpec
	// P is the number of simulated processors (the paper used 16).
	P int
	// Rows hold the measured small-scale run: real refinement work
	// counted by the simulator, priced by the SP2 cost model.
	Rows []TimingRow
	// PaperRows extrapolate the same pass analytically to the paper's
	// dataset dimensions (PaperL, PaperViews).
	PaperRows []TimingRow
	// ReconSecs is the modeled paper-scale 3-D reconstruction time,
	// for the §5 claim that reconstruction is <5% of a cycle.
	ReconSecs float64
}

// TimingOptions configures the timing experiment.
type TimingOptions struct {
	// P is the simulated processor count; 0 selects 16.
	P int
	// Model is the machine cost model; zero value selects cluster.SP2.
	Model cluster.CostModel
	// DiskBytesPerSec models the master's file reads; 0 selects 20 MB/s.
	DiskBytesPerSec float64
	// Pad is the matching spectrum oversampling; 0 selects 2.
	Pad int
}

func (o *TimingOptions) setDefaults() {
	if o.P <= 0 {
		o.P = 16
	}
	if o.Model == (cluster.CostModel{}) {
		o.Model = cluster.SP2
	}
	if o.DiskBytesPerSec <= 0 {
		o.DiskBytesPerSec = 20e6
	}
	if o.Pad <= 0 {
		o.Pad = 2
	}
}

// RunTiming reproduces Tables 1–2 for a dataset: it executes one
// refinement pass per angular resolution of the default schedule on
// the simulated cluster (each pass starting from the previous pass's
// orientations, exactly as consecutive production runs would), and
// reports per-step simulated times at both simulator and paper scale.
func RunTiming(spec DatasetSpec, opt TimingOptions) (*TimingTable, error) {
	opt.setDefaults()
	ds := spec.Build()
	truth := ds.Truth

	// Step a once per pass in the paper; the map transform is the
	// same for every pass here, so time it once and reuse.
	cl := cluster.New(opt.P, opt.Model)
	mapReadSecs := float64(8*spec.L*spec.L*spec.L) / opt.DiskBytesPerSec
	ft := parfft.Transform3D(cl, truth, mapReadSecs)
	dft3dSecs := ft.Elapsed
	// Matching uses an oversampled spectrum for accuracy (the timing
	// of step a is reported for the unpadded production transform).
	dft := fourier.NewVolumeDFTPadded(truth, opt.Pad)

	table := &TimingTable{Spec: spec, P: opt.P}
	orients := ds.PerturbedOrientations(spec.InitError, spec.Seed+2)
	images := ds.Images()

	for _, lv := range core.DefaultSchedule() {
		cfg := core.DefaultConfig(spec.L)
		cfg.Schedule = []core.Level{lv}
		// Tables 1–2 price the paper's exhaustive window scan; the
		// adaptive search would deflate MeanMatchings and with it every
		// extrapolated refinement time.
		cfg.Search = core.SearchExhaustive
		r, err := core.NewRefiner(dft, cfg)
		if err != nil {
			return nil, err
		}
		popt := core.DefaultParallelOptions()
		popt.ReadBytesPerSec = opt.DiskBytesPerSec
		popt.DFT3DSecs = dft3dSecs
		results, times, err := r.RefineOnCluster(cluster.New(opt.P, opt.Model), images, nil, orients, popt)
		if err != nil {
			return nil, err
		}
		row := TimingRow{
			RAngular:    lv.RAngular,
			SearchRange: 2*int(math.Round(lv.WindowHalf/lv.RAngular)) + 1,
			DFT3D:       times.DFT3D,
			ReadImages:  times.ReadImages,
			FFTAnalysis: times.FFTAnalysis,
			Refinement:  times.Refinement,
			Total:       times.Total,
		}
		var matchSum float64
		for i, res := range results {
			orients[i] = res.Orient
			st := res.PerLevel[0]
			matchSum += float64(st.Matchings)
			if st.Slides > 0 {
				row.SlideViews++
			}
		}
		row.MeanMatchings = matchSum / float64(len(results))
		if row.Total > 0 {
			row.RefinementShare = row.Refinement / row.Total
		}
		table.Rows = append(table.Rows, row)

		table.PaperRows = append(table.PaperRows,
			paperScaleRow(spec, opt, lv, row))
	}
	table.ReconSecs = paperReconSecs(spec, opt)
	return table.validate()
}

// paperScaleRow prices one pass at the paper's dataset dimensions: the
// measured matchings per view are kept, but the per-matching cost uses
// the paper-size comparison band, the view FFTs use the paper box, and
// I/O uses the paper file sizes.
func paperScaleRow(spec DatasetSpec, opt TimingOptions, lv core.Level, measured TimingRow) TimingRow {
	pl := spec.PaperL
	pm := float64(spec.PaperViews)
	perNode := math.Ceil(pm / float64(opt.P))
	cfg := core.Config{RMap: 0.8 * float64(pl) / 2, Schedule: []core.Level{lv}}
	band := float64(core.BandSize(pl, cfg))
	frac := lv.RMapFrac
	if frac == 0 {
		frac = 1
	}
	bandAtLevel := band * frac * frac

	row := TimingRow{
		RAngular:      lv.RAngular,
		SearchRange:   measured.SearchRange,
		MeanMatchings: measured.MeanMatchings,
		SlideViews:    measured.SlideViews,
	}
	row.DFT3D = parfft.ModelTime(opt.Model, pl, opt.P,
		float64(8*pl*pl*pl)/opt.DiskBytesPerSec)
	row.ReadImages = pm * float64(pl*pl) * 2 / opt.DiskBytesPerSec
	row.FFTAnalysis = perNode * core.EstimateViewFFTFlops(pl) / opt.Model.FlopsPerSec
	row.Refinement = perNode * measured.MeanMatchings *
		core.EstimateMatchFlops(int(bandAtLevel)) / opt.Model.FlopsPerSec
	row.Total = row.DFT3D + row.ReadImages + row.FFTAnalysis + row.Refinement
	if row.Total > 0 {
		row.RefinementShare = row.Refinement / row.Total
	}
	return row
}

// paperReconSecs models the paper-scale 3-D reconstruction (step C):
// each view scatters its band coefficients with 8-point spreading,
// plus one 3-D inverse FFT of the map.
func paperReconSecs(spec DatasetSpec, opt TimingOptions) float64 {
	pl := float64(spec.PaperL)
	pm := float64(spec.PaperViews)
	perNode := math.Ceil(pm / float64(opt.P))
	band := math.Pi * (0.8 * pl / 2) * (0.8 * pl / 2)
	insert := perNode * band * 8 * 12 / opt.Model.FlopsPerSec
	ifft := 3 * 5 * pl * pl * pl * math.Log2(pl) / opt.Model.FlopsPerSec
	return insert + ifft
}

func (t *TimingTable) validate() (*TimingTable, error) {
	if len(t.Rows) == 0 {
		return nil, fmt.Errorf("workload: timing produced no rows")
	}
	return t, nil
}

// CycleBreakdown summarizes the §5 cycle-economics claim at paper
// scale: the refinement time of the finest pass versus the
// reconstruction time.
type CycleBreakdown struct {
	RefinementSecs, ReconstructionSecs float64
	// ReconstructionShare is recon/(recon+refinement over all rows).
	ReconstructionShare float64
}

// Cycle computes the breakdown from a timing table.
func (t *TimingTable) Cycle() CycleBreakdown {
	var refine float64
	for _, r := range t.PaperRows {
		refine += r.Refinement
	}
	cb := CycleBreakdown{RefinementSecs: refine, ReconstructionSecs: t.ReconSecs}
	if total := refine + t.ReconSecs; total > 0 {
		cb.ReconstructionShare = t.ReconSecs / total
	}
	return cb
}
