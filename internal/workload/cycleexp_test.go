package workload

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/cycle"
)

// TestRunCycleDriverPlateau pins the outer loop's termination claim on
// the scaled sindbis phantom: the plateau rule stops the run before
// the hard cycle cap, every completed cycle carries an FSC record, and
// the report renders one row per cycle.
func TestRunCycleDriverPlateau(t *testing.T) {
	spec := SindbisSpec().Scaled(3)
	res, err := RunCycleDriver(spec, CycleOptions{
		MaxCycles: 8,
		Levels:    2,
		Stream:    core.StreamOptions{FFTWorkers: 2, RefineWorkers: 2, Depth: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stopped != cycle.StopPlateau {
		t.Errorf("stopped %q after %d cycles, want plateau before the cap", res.Stopped, len(res.History))
	}
	if len(res.History) >= 8 {
		t.Errorf("ran all %d cycles; plateau never fired", len(res.History))
	}
	for i, rec := range res.History {
		if rec.Cycle != i {
			t.Errorf("history[%d] has cycle %d", i, rec.Cycle)
		}
		if rec.ResolutionA <= 0 {
			t.Errorf("cycle %d has no 0.5 crossing", i)
		}
	}
	last := res.History[len(res.History)-1]
	if last.Plateau < 2 {
		t.Errorf("final plateau counter %d, want ≥ window (2)", last.Plateau)
	}

	var w strings.Builder
	if err := WritePlateau(&w, res); err != nil {
		t.Fatal(err)
	}
	out := w.String()
	if got := strings.Count(out, "\n"); got != len(res.History)+3 {
		t.Errorf("report has %d lines, want %d:\n%s", got, len(res.History)+3, out)
	}
	if !strings.Contains(out, "stopped: plateau") {
		t.Errorf("report missing stop verdict:\n%s", out)
	}
}
