// Package workload drives the paper's experiments end to end: it
// builds the synthetic stand-ins for the Sindbis and reovirus
// datasets, runs the legacy ("old") and the paper's ("new")
// refinements, reconstructs maps, computes FSC curves, assembles the
// timing tables, and evaluates the analytic operation-count claims of
// §3–§4. Every table and figure of the paper maps to one exported
// function here (see DESIGN.md for the index).
package workload

import (
	"fmt"
	"math"

	"repro/internal/micrograph"
	"repro/internal/phantom"
	"repro/internal/volume"
)

// DatasetSpec describes one experimental dataset, both at simulator
// scale (what we actually run) and at paper scale (what the analytic
// cost models extrapolate to).
type DatasetSpec struct {
	// Name identifies the dataset ("sindbis-like", "reo-like", ...).
	Name string
	// L is the simulator box size in pixels/voxels.
	L int
	// NumViews is the simulator view count.
	NumViews int
	// PixelA is the sampling in Å/pixel. The paper datasets were
	// boxed at ≈2.5–3 Å/px; we scale the pixel size so the particle
	// diameter in Å stays ballpark-correct at the smaller box.
	PixelA float64
	// SNR, CenterJitter, ApplyCTF, DefocusGroups and Seed configure
	// the synthetic corruption; see micrograph.GenParams.
	SNR           float64
	CenterJitter  float64
	ApplyCTF      bool
	DefocusGroups int
	Seed          int64
	// InitError is the per-axis error (degrees) of the initial
	// orientations handed to refinement.
	InitError float64
	// Phantom builds the ground-truth density.
	Phantom func(l int) *volume.Grid
	// PaperL and PaperViews are the real dataset's dimensions, used
	// by the paper-scale analytic timing model (221²×7,917 for
	// Sindbis; 511²×4,422 for reo).
	PaperL, PaperViews int
}

// SindbisSpec models the Sindbis dataset: an icosahedral single-shell
// alphavirus with surface spikes; 7,917 views of 221×221 pixels in the
// paper, scaled to a box the simulator refines in seconds.
func SindbisSpec() DatasetSpec {
	return DatasetSpec{
		Name:         "sindbis-like",
		L:            48,
		NumViews:     80,
		PixelA:       2.8,
		SNR:          1.5,
		CenterJitter: 1.0,
		Seed:         42,
		InitError:    2.0,
		Phantom:      phantom.SindbisLike,
		PaperL:       221,
		PaperViews:   7917,
	}
}

// ReoSpec models the reovirus dataset: a larger, double-shelled
// icosahedral particle; 4,422 views of 511×511 pixels in the paper.
func ReoSpec() DatasetSpec {
	return DatasetSpec{
		Name:         "reo-like",
		L:            56,
		NumViews:     70,
		PixelA:       3.0,
		SNR:          1.5,
		CenterJitter: 1.0,
		Seed:         77,
		InitError:    2.0,
		Phantom:      phantom.ReoLike,
		PaperL:       511,
		PaperViews:   4422,
	}
}

// AsymmetricSpec is the dataset class the method was designed to
// unlock: a particle with no symmetry at all.
func AsymmetricSpec() DatasetSpec {
	return DatasetSpec{
		Name:         "asymmetric",
		L:            40,
		NumViews:     60,
		PixelA:       3.0,
		SNR:          2.0,
		CenterJitter: 0.5,
		Seed:         11,
		InitError:    2.0,
		Phantom: func(l int) *volume.Grid {
			g := phantom.Asymmetric(l, 12, 5)
			g.SphericalMask(0.42 * float64(l))
			return g
		},
		PaperL:     221,
		PaperViews: 2000,
	}
}

// SpecByName resolves a dataset name to its spec — the single
// name→spec mapping shared by cmd/simulate and the refinement job
// service. Both the short names ("sindbis") and the spec's own Name
// field ("sindbis-like") are accepted.
func SpecByName(name string) (DatasetSpec, error) {
	switch name {
	case "sindbis", "sindbis-like":
		return SindbisSpec(), nil
	case "reo", "reo-like":
		return ReoSpec(), nil
	case "asymmetric":
		return AsymmetricSpec(), nil
	}
	return DatasetSpec{}, fmt.Errorf("workload: unknown dataset %q (want sindbis, reo or asymmetric)", name)
}

// Scaled returns a copy of the spec shrunk by the given factor on box
// size and view count (factor ≥ 1 shrinks), for quick tests and
// benchmarks. Box sizes are kept even and ≥ 16; view counts ≥ 8.
func (s DatasetSpec) Scaled(factor float64) DatasetSpec {
	if factor <= 1 {
		return s
	}
	out := s
	l := int(math.Round(float64(s.L) / factor))
	if l < 16 {
		l = 16
	}
	out.L = l &^ 1
	if out.L < 16 {
		out.L = 16
	}
	n := int(math.Round(float64(s.NumViews) / factor))
	if n < 8 {
		n = 8
	}
	out.NumViews = n
	return out
}

// Build synthesizes the dataset: the phantom density plus NumViews
// corrupted projections.
func (s DatasetSpec) Build() *micrograph.Dataset {
	truth := s.Phantom(s.L)
	return micrograph.Generate(truth, micrograph.GenParams{
		NumViews:      s.NumViews,
		PixelA:        s.PixelA,
		SNR:           s.SNR,
		CenterJitter:  s.CenterJitter,
		ApplyCTF:      s.ApplyCTF,
		DefocusGroups: s.DefocusGroups,
		Seed:          s.Seed,
	})
}
