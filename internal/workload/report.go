package workload

import (
	"fmt"
	"io"
	"strings"
)

// Report renders experiment results as the plain-text tables the
// command-line tools print; every method writes the same rows the
// paper's tables and figures report.

// WriteViewCounts renders the Fig. 1b table.
func WriteViewCounts(w io.Writer, rows []ViewCountRow) {
	fmt.Fprintln(w, "Fig. 1b — calculated views vs angular resolution")
	fmt.Fprintf(w, "%10s %14s %16s %8s %18s %s\n",
		"step(deg)", "full sphere", "icos asym unit", "ratio", "asym |P| (3 axes)", "counted")
	for _, r := range rows {
		mode := "enumerated"
		if !r.Measured {
			mode = "area est."
		}
		ratio := 0.0
		if r.IcosAsymUnit > 0 {
			ratio = float64(r.FullSphere) / float64(r.IcosAsymUnit)
		}
		fmt.Fprintf(w, "%10.3g %14d %16d %8.1f %18.3e %s\n",
			r.StepDeg, r.FullSphere, r.IcosAsymUnit, ratio, r.AsymSearchSpace, mode)
	}
}

// WriteOpCount renders the §4 operation-count comparison.
func WriteOpCount(w io.Writer, rep OpCountReport) {
	fmt.Fprintf(w, "§4 — multi-resolution vs flat search over a %.3g° domain to %.4g°\n",
		rep.DomainDeg, rep.FinalResDeg)
	fmt.Fprintf(w, "  flat search:  %d matchings/axis, %.3e for (θ,φ,ω)\n",
		rep.FlatPerAxis, rep.FlatTotal)
	levels := make([]string, len(rep.PerAxisLevels))
	for i, n := range rep.PerAxisLevels {
		levels[i] = fmt.Sprintf("%d", n)
	}
	fmt.Fprintf(w, "  multi-res:    %d matchings/axis (%s per level), %.3e for (θ,φ,ω)\n",
		rep.MultiPerAxis, strings.Join(levels, "+"), rep.MultiTotal)
	fmt.Fprintf(w, "  saving:       %.1fx per axis, %.3ex overall\n",
		float64(rep.FlatPerAxis)/float64(rep.MultiPerAxis), rep.SavingFactor)
}

// WriteFSC renders the Figs. 5/6 comparison: both curves plus the 0.5
// crossings and ground-truth scores.
func WriteFSC(w io.Writer, exp *FSCExperiment) {
	fmt.Fprintf(w, "Figs. 5/6 — correlation-coefficient curves, %s (l=%d, m=%d, SNR=%.2g)\n",
		exp.Spec.Name, exp.Spec.L, exp.Spec.NumViews, exp.Spec.SNR)
	fmt.Fprintf(w, "%8s %12s %10s %10s\n", "shell", "res (Å)", "cc old", "cc new")
	n := len(exp.New.Curve.Points)
	for i := 0; i < n; i++ {
		po := exp.Old.Curve.Points[i]
		pn := exp.New.Curve.Points[i]
		fmt.Fprintf(w, "%8d %12.2f %10.4f %10.4f\n", pn.Shell, pn.ResolutionA, po.CC, pn.CC)
	}
	fmt.Fprintf(w, "resolution at cc=0.5:  old %.2f Å   new %.2f Å\n",
		exp.Old.ResolutionA, exp.New.ResolutionA)
	fmt.Fprintf(w, "map cc vs ground truth: old %.4f   new %.4f\n",
		exp.Old.TruthCC, exp.New.TruthCC)
	fmt.Fprintf(w, "mean angular error:     old %.3f°   new %.3f°\n",
		exp.Old.MeanAngErr, exp.New.MeanAngErr)
	fmt.Fprintf(w, "mean centre error:      old %.3f px  new %.3f px\n",
		exp.Old.MeanCenErr, exp.New.MeanCenErr)
}

// WriteSliding renders the §5 sliding-window activation statistics.
func WriteSliding(w io.Writer, name string, aggs []LevelAgg) {
	fmt.Fprintf(w, "§5 — sliding-window statistics, %s (final cycle)\n", name)
	fmt.Fprintf(w, "%12s %16s %14s %14s %16s\n",
		"r_angular", "matchings/view", "views w/slide", "total slides", "centre evals")
	for _, a := range aggs {
		fmt.Fprintf(w, "%12.4g %16.1f %14d %14d %16.1f\n",
			a.RAngular, a.MeanMatchings, a.SlideViews, a.TotalSlides, a.MeanCenterEval)
	}
}

// WriteTiming renders a Tables 1/2 reproduction.
func WriteTiming(w io.Writer, t *TimingTable) {
	fmt.Fprintf(w, "Tables 1/2 — per-step times, %s, P=%d (simulated SP2 seconds)\n",
		t.Spec.Name, t.P)
	write := func(label string, rows []TimingRow) {
		fmt.Fprintf(w, "  %s\n", label)
		fmt.Fprintf(w, "%26s", "Angular resolution (deg)")
		for _, r := range rows {
			fmt.Fprintf(w, " %12.4g", r.RAngular)
		}
		fmt.Fprintln(w)
		fmt.Fprintf(w, "%26s", "Search range (pts/axis)")
		for _, r := range rows {
			fmt.Fprintf(w, " %12d", r.SearchRange)
		}
		fmt.Fprintln(w)
		fmt.Fprintf(w, "%26s", "Matchings per view")
		for _, r := range rows {
			fmt.Fprintf(w, " %12.0f", r.MeanMatchings)
		}
		fmt.Fprintln(w)
		for _, item := range []struct {
			name string
			get  func(TimingRow) float64
		}{
			{"3D DFT (s)", func(r TimingRow) float64 { return r.DFT3D }},
			{"Read image (s)", func(r TimingRow) float64 { return r.ReadImages }},
			{"FFT analysis (s)", func(r TimingRow) float64 { return r.FFTAnalysis }},
			{"Orientation refinement (s)", func(r TimingRow) float64 { return r.Refinement }},
			{"Total time (s)", func(r TimingRow) float64 { return r.Total }},
		} {
			fmt.Fprintf(w, "%26s", item.name)
			for _, r := range rows {
				fmt.Fprintf(w, " %12.4g", item.get(r))
			}
			fmt.Fprintln(w)
		}
		fmt.Fprintf(w, "%26s", "Refinement share")
		for _, r := range rows {
			fmt.Fprintf(w, " %11.1f%%", 100*r.RefinementShare)
		}
		fmt.Fprintln(w)
	}
	write("measured (simulator scale)", t.Rows)
	write(fmt.Sprintf("paper scale (%d views of %d², analytic)", t.Spec.PaperViews, t.Spec.PaperL), t.PaperRows)
	cb := t.Cycle()
	fmt.Fprintf(w, "  reconstruction: %.4g s per cycle = %.1f%% of refine+reconstruct (§5 says <5%%)\n",
		cb.ReconstructionSecs, 100*cb.ReconstructionShare)
}

// WriteSymDetect renders the symmetry-detection experiment.
func WriteSymDetect(w io.Writer, cases []SymDetectCase) {
	fmt.Fprintln(w, "§6 — symmetry-group detection from density maps")
	for _, c := range cases {
		status := "OK"
		if !c.Correct() {
			status = "MISMATCH"
		}
		fmt.Fprintf(w, "  %-22s expected %-3s detected %-3s [%s]\n",
			c.Name, c.Expected, c.Detected, status)
		for _, s := range c.Scores {
			if s.MinCC >= 0.5 {
				fmt.Fprintf(w, "      %-4s minCC=%.3f meanCC=%.3f\n", s.Group.Name, s.MinCC, s.MeanCC)
			}
		}
	}
}
