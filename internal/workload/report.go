package workload

import (
	"fmt"
	"io"
	"strings"
)

// Report renders experiment results as the plain-text tables the
// command-line tools print; every method writes the same rows the
// paper's tables and figures report.

// printer wraps a report's writer, remembering the first write error
// so the renderers can print unconditionally and return one error —
// a truncated table on a full disk must not pass silently (see the
// errsink analyzer in internal/analysis).
type printer struct {
	w   io.Writer
	err error
}

func (p *printer) printf(format string, args ...interface{}) {
	if p.err == nil {
		_, p.err = fmt.Fprintf(p.w, format, args...)
	}
}

func (p *printer) println(args ...interface{}) {
	if p.err == nil {
		_, p.err = fmt.Fprintln(p.w, args...)
	}
}

// WriteViewCounts renders the Fig. 1b table.
func WriteViewCounts(w io.Writer, rows []ViewCountRow) error {
	pr := &printer{w: w}
	pr.println("Fig. 1b — calculated views vs angular resolution")
	pr.printf("%10s %14s %16s %8s %18s %s\n",
		"step(deg)", "full sphere", "icos asym unit", "ratio", "asym |P| (3 axes)", "counted")
	for _, r := range rows {
		mode := "enumerated"
		if !r.Measured {
			mode = "area est."
		}
		ratio := 0.0
		if r.IcosAsymUnit > 0 {
			ratio = float64(r.FullSphere) / float64(r.IcosAsymUnit)
		}
		pr.printf("%10.3g %14d %16d %8.1f %18.3e %s\n",
			r.StepDeg, r.FullSphere, r.IcosAsymUnit, ratio, r.AsymSearchSpace, mode)
	}
	return pr.err
}

// WriteOpCount renders the §4 operation-count comparison.
func WriteOpCount(w io.Writer, rep OpCountReport) error {
	pr := &printer{w: w}
	pr.printf("§4 — multi-resolution vs flat search over a %.3g° domain to %.4g°\n",
		rep.DomainDeg, rep.FinalResDeg)
	pr.printf("  flat search:  %d matchings/axis, %.3e for (θ,φ,ω)\n",
		rep.FlatPerAxis, rep.FlatTotal)
	levels := make([]string, len(rep.PerAxisLevels))
	for i, n := range rep.PerAxisLevels {
		levels[i] = fmt.Sprintf("%d", n)
	}
	pr.printf("  multi-res:    %d matchings/axis (%s per level), %.3e for (θ,φ,ω)\n",
		rep.MultiPerAxis, strings.Join(levels, "+"), rep.MultiTotal)
	pr.printf("  saving:       %.1fx per axis, %.3ex overall\n",
		float64(rep.FlatPerAxis)/float64(rep.MultiPerAxis), rep.SavingFactor)
	return pr.err
}

// WriteFSC renders the Figs. 5/6 comparison: both curves plus the 0.5
// crossings and ground-truth scores.
func WriteFSC(w io.Writer, exp *FSCExperiment) error {
	pr := &printer{w: w}
	pr.printf("Figs. 5/6 — correlation-coefficient curves, %s (l=%d, m=%d, SNR=%.2g)\n",
		exp.Spec.Name, exp.Spec.L, exp.Spec.NumViews, exp.Spec.SNR)
	pr.printf("%8s %12s %10s %10s\n", "shell", "res (Å)", "cc old", "cc new")
	n := len(exp.New.Curve.Points)
	for i := 0; i < n; i++ {
		po := exp.Old.Curve.Points[i]
		pn := exp.New.Curve.Points[i]
		pr.printf("%8d %12.2f %10.4f %10.4f\n", pn.Shell, pn.ResolutionA, po.CC, pn.CC)
	}
	pr.printf("resolution at cc=0.5:  old %.2f Å   new %.2f Å\n",
		exp.Old.ResolutionA, exp.New.ResolutionA)
	pr.printf("map cc vs ground truth: old %.4f   new %.4f\n",
		exp.Old.TruthCC, exp.New.TruthCC)
	pr.printf("mean angular error:     old %.3f°   new %.3f°\n",
		exp.Old.MeanAngErr, exp.New.MeanAngErr)
	pr.printf("mean centre error:      old %.3f px  new %.3f px\n",
		exp.Old.MeanCenErr, exp.New.MeanCenErr)
	return pr.err
}

// WriteSliding renders the §5 sliding-window activation statistics.
func WriteSliding(w io.Writer, name string, aggs []LevelAgg) error {
	pr := &printer{w: w}
	pr.printf("§5 — sliding-window statistics, %s (final cycle)\n", name)
	pr.printf("%12s %16s %14s %14s %16s\n",
		"r_angular", "matchings/view", "views w/slide", "total slides", "centre evals")
	for _, a := range aggs {
		pr.printf("%12.4g %16.1f %14d %14d %16.1f\n",
			a.RAngular, a.MeanMatchings, a.SlideViews, a.TotalSlides, a.MeanCenterEval)
	}
	return pr.err
}

// WriteTiming renders a Tables 1/2 reproduction.
func WriteTiming(w io.Writer, t *TimingTable) error {
	pr := &printer{w: w}
	pr.printf("Tables 1/2 — per-step times, %s, P=%d (simulated SP2 seconds)\n",
		t.Spec.Name, t.P)
	write := func(label string, rows []TimingRow) {
		pr.printf("  %s\n", label)
		pr.printf("%26s", "Angular resolution (deg)")
		for _, r := range rows {
			pr.printf(" %12.4g", r.RAngular)
		}
		pr.println()
		pr.printf("%26s", "Search range (pts/axis)")
		for _, r := range rows {
			pr.printf(" %12d", r.SearchRange)
		}
		pr.println()
		pr.printf("%26s", "Matchings per view")
		for _, r := range rows {
			pr.printf(" %12.0f", r.MeanMatchings)
		}
		pr.println()
		for _, item := range []struct {
			name string
			get  func(TimingRow) float64
		}{
			{"3D DFT (s)", func(r TimingRow) float64 { return r.DFT3D }},
			{"Read image (s)", func(r TimingRow) float64 { return r.ReadImages }},
			{"FFT analysis (s)", func(r TimingRow) float64 { return r.FFTAnalysis }},
			{"Orientation refinement (s)", func(r TimingRow) float64 { return r.Refinement }},
			{"Total time (s)", func(r TimingRow) float64 { return r.Total }},
		} {
			pr.printf("%26s", item.name)
			for _, r := range rows {
				pr.printf(" %12.4g", item.get(r))
			}
			pr.println()
		}
		pr.printf("%26s", "Refinement share")
		for _, r := range rows {
			pr.printf(" %11.1f%%", 100*r.RefinementShare)
		}
		pr.println()
	}
	write("measured (simulator scale)", t.Rows)
	write(fmt.Sprintf("paper scale (%d views of %d², analytic)", t.Spec.PaperViews, t.Spec.PaperL), t.PaperRows)
	cb := t.Cycle()
	pr.printf("  reconstruction: %.4g s per cycle = %.1f%% of refine+reconstruct (§5 says <5%%)\n",
		cb.ReconstructionSecs, 100*cb.ReconstructionShare)
	return pr.err
}

// WriteSymDetect renders the symmetry-detection experiment.
func WriteSymDetect(w io.Writer, cases []SymDetectCase) error {
	pr := &printer{w: w}
	pr.println("§6 — symmetry-group detection from density maps")
	for _, c := range cases {
		status := "OK"
		if !c.Correct() {
			status = "MISMATCH"
		}
		pr.printf("  %-22s expected %-3s detected %-3s [%s]\n",
			c.Name, c.Expected, c.Detected, status)
		for _, s := range c.Scores {
			if s.MinCC >= 0.5 {
				pr.printf("      %-4s minCC=%.3f meanCC=%.3f\n", s.Group.Name, s.MinCC, s.MeanCC)
			}
		}
	}
	return pr.err
}
