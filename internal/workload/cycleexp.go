package workload

import (
	"context"
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/ctf"
	"repro/internal/cycle"
	"repro/internal/geom"
)

// CycleOptions tunes the cycles-to-plateau experiment: the paper's
// outer loop run "until the 3D electron density map cannot be further
// improved", with internal/cycle's plateau rule deciding when that is.
type CycleOptions struct {
	// MaxCycles is the hard cap (0 selects 8 — the plateau rule is
	// expected to fire well before it).
	MaxCycles int
	// Levels is the per-cycle schedule depth (0 selects 3).
	Levels int
	// PlateauEps / PlateauWindow tune the stopping rule (zeros select
	// the cycle package defaults: 0.01 Å over 2 cycles).
	PlateauEps    float64
	PlateauWindow int
	// Stream shapes each refinement pass (zero value: GOMAXPROCS).
	Stream core.StreamOptions
}

func (o *CycleOptions) setDefaults() {
	if o.MaxCycles <= 0 {
		o.MaxCycles = 8
	}
	if o.Levels <= 0 {
		o.Levels = 3
	}
}

// CycleDriverResult is the outer-loop trajectory on one dataset.
type CycleDriverResult struct {
	Spec DatasetSpec
	// History is the per-cycle FSC record, in cycle order.
	History []cycle.CycleFSC
	// Stopped is why the loop ended (cycle.StopPlateau or
	// cycle.StopMaxCycles).
	Stopped string
	// MeanAngErr is the final mean angular error against ground truth
	// (degrees) — a measure the paper could not compute.
	MeanAngErr float64
}

// RunCycleDriver executes the multi-cycle refine→reconstruct→FSC loop
// on the spec's dataset through internal/cycle — the same driver the
// job service runs, here fed directly for table generation.
func RunCycleDriver(spec DatasetSpec, opt CycleOptions) (*CycleDriverResult, error) {
	opt.setDefaults()
	ds := spec.Build()
	inits := ds.PerturbedOrientations(spec.InitError, spec.Seed+1)
	cds := cycle.Dataset{Views: ds.Images(), Inits: inits}
	if ds.HasCTF {
		cds.CTFs = make([]ctf.Params, len(ds.Views))
		for i, v := range ds.Views {
			cds.CTFs[i] = v.CTF
		}
	}
	cfg := cycle.Config{
		L:             ds.L,
		PixelA:        ds.PixelA,
		Levels:        opt.Levels,
		MaxCycles:     opt.MaxCycles,
		PlateauEps:    opt.PlateauEps,
		PlateauWindow: opt.PlateauWindow,
		CTF:           ds.HasCTF,
		Stream:        opt.Stream,
	}
	out, err := cycle.Run(context.Background(), cds, cfg, cycle.State{}, cycle.Hooks{})
	if err != nil {
		return nil, fmt.Errorf("workload: cycle driver: %w", err)
	}
	var angSum float64
	for i, res := range out.Results {
		angSum += geom.AngularDistance(res.Orient, ds.Views[i].TrueOrient)
	}
	return &CycleDriverResult{
		Spec:       spec,
		History:    out.History,
		Stopped:    out.Stopped,
		MeanAngErr: angSum / float64(len(out.Results)),
	}, nil
}

// WritePlateau renders the cycles-to-plateau table: one row per cycle
// with the FSC 0.5 crossing and the plateau counter, then the stop
// verdict.
func WritePlateau(w io.Writer, res *CycleDriverResult) error {
	if _, err := fmt.Fprintf(w, "Cycles to plateau — %s (L=%d, %d views)\n",
		res.Spec.Name, res.Spec.L, res.Spec.NumViews); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%-6s %12s %9s %9s %8s\n",
		"cycle", "FSC0.5 (Å)", "mean CC", "improved", "plateau"); err != nil {
		return err
	}
	for _, rec := range res.History {
		if _, err := fmt.Fprintf(w, "%-6d %12.2f %9.3f %9t %8d\n",
			rec.Cycle, rec.ResolutionA, rec.MeanCC, rec.Improved, rec.Plateau); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "stopped: %s after %d cycle(s); final mean angular error %.2f°\n",
		res.Stopped, len(res.History), res.MeanAngErr)
	return err
}
