package workload

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/cluster"
)

func TestViewCounts(t *testing.T) {
	rows := ViewCounts([]float64{3, 1, 0.1})
	if len(rows) != 3 {
		t.Fatal("row count")
	}
	// 3° and 1° are enumerated; 0.1° estimated.
	if !rows[0].Measured || !rows[1].Measured || rows[2].Measured {
		t.Fatalf("measured flags wrong: %+v", rows)
	}
	// Icosahedral reduction ≈ 60×.
	for _, r := range rows[:2] {
		ratio := float64(r.FullSphere) / float64(r.IcosAsymUnit)
		if ratio < 40 || ratio > 80 {
			t.Errorf("step %g: reduction ratio %.1f", r.StepDeg, ratio)
		}
	}
	// §3: the asymmetric search space at 0.1° is (1800)³ ≈ 5.8·10⁹.
	if got, want := rows[2].AsymSearchSpace, 1800.0*1800*1800; math.Abs(got-want)/want > 1e-9 {
		t.Errorf("asym search space %g, want %g", got, want)
	}
	// The paper's orders-of-magnitude claim: the asymmetric (θ,φ,ω)
	// search space dwarfs the icosahedral view count at the same
	// resolution. (Our uniform-AU enumeration gives ~7·10⁴ views at
	// 0.1° where the paper quotes "about 4,000", so the measured
	// blow-up lands near five orders rather than the paper's six —
	// see EXPERIMENTS.md.)
	blowup := rows[2].AsymSearchSpace / float64(rows[2].IcosAsymUnit)
	if blowup < 1e4 || blowup > 1e8 {
		t.Errorf("asymmetric blow-up %.2e, want ≥1e4", blowup)
	}
}

func TestOpCountPaperExample(t *testing.T) {
	// §4's example: 10° domain, 0.002° target.
	rep := OpCount(10, nil)
	if rep.FlatPerAxis != 5001 {
		t.Errorf("flat per axis %d, want 5001", rep.FlatPerAxis)
	}
	if rep.MultiPerAxis >= 100 {
		t.Errorf("multi per axis %d, want well under 100", rep.MultiPerAxis)
	}
	// Cubing both, the saving must reach at least four orders of
	// magnitude (the paper's claim).
	if rep.SavingFactor < 1e4 {
		t.Errorf("saving factor %.2e, want ≥1e4", rep.SavingFactor)
	}
}

func TestSpecScaled(t *testing.T) {
	s := SindbisSpec().Scaled(2)
	if s.L >= SindbisSpec().L || s.NumViews >= SindbisSpec().NumViews {
		t.Fatal("scaling did not shrink")
	}
	if s.L%2 != 0 || s.L < 16 || s.NumViews < 8 {
		t.Fatalf("scaled spec out of bounds: %+v", s)
	}
	if same := SindbisSpec().Scaled(1); same.L != SindbisSpec().L {
		t.Fatal("factor 1 must be identity")
	}
}

func TestRunFSCSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-cycle refinement experiment")
	}
	spec := SindbisSpec().Scaled(1.6) // l=30, m=50
	exp, err := RunFSC(spec, FSCOptions{Cycles: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Headline result: the new method beats the old everywhere that
	// matters.
	if exp.New.MeanAngErr >= exp.Old.MeanAngErr {
		t.Errorf("angular error: new %.3f° vs old %.3f°", exp.New.MeanAngErr, exp.Old.MeanAngErr)
	}
	if exp.New.MeanCenErr >= exp.Old.MeanCenErr {
		t.Errorf("centre error: new %.3f vs old %.3f px", exp.New.MeanCenErr, exp.Old.MeanCenErr)
	}
	if exp.New.ResolutionA > exp.Old.ResolutionA {
		t.Errorf("resolution: new %.2f Å vs old %.2f Å", exp.New.ResolutionA, exp.Old.ResolutionA)
	}
	if !exp.New.Curve.Dominates(exp.Old.Curve, 0.6) {
		t.Errorf("new FSC curve does not dominate old")
	}
	if exp.New.TruthCC <= exp.Old.TruthCC {
		t.Errorf("truth cc: new %.4f vs old %.4f", exp.New.TruthCC, exp.Old.TruthCC)
	}
	// Report rendering must not crash and must include the crossings.
	var buf bytes.Buffer
	WriteFSC(&buf, exp)
	WriteSliding(&buf, spec.Name, exp.New.PerLevel)
	if buf.Len() == 0 {
		t.Fatal("empty report")
	}
}

func TestRunTimingSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster timing experiment")
	}
	spec := SindbisSpec().Scaled(2) // l=24, m=40
	table, err := RunTiming(spec, TimingOptions{P: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 4 || len(table.PaperRows) != 4 {
		t.Fatalf("expected 4 resolutions, got %d/%d", len(table.Rows), len(table.PaperRows))
	}
	for i, r := range table.Rows {
		if r.Total <= 0 || r.Refinement <= 0 {
			t.Errorf("row %d: non-positive times %+v", i, r)
		}
	}
	// Paper-scale shape: orientation refinement dominates the cycle.
	for i, r := range table.PaperRows {
		if r.RefinementShare < 0.9 {
			t.Errorf("paper row %d: refinement share %.2f, want ≥0.9", i, r.RefinementShare)
		}
	}
	// §5: reconstruction is a small fraction of the cycle.
	cb := table.Cycle()
	if cb.ReconstructionShare > 0.25 {
		t.Errorf("reconstruction share %.2f, want small", cb.ReconstructionShare)
	}
	var buf bytes.Buffer
	WriteTiming(&buf, table)
	if buf.Len() == 0 {
		t.Fatal("empty timing report")
	}
}

func TestRunTimingCustomModel(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster timing experiment")
	}
	spec := AsymmetricSpec().Scaled(2.5)
	fast := cluster.CostModel{LatencySec: 1e-6, BytesPerSec: 1e9, FlopsPerSec: 1e9}
	table, err := RunTiming(spec, TimingOptions{P: 2, Model: fast})
	if err != nil {
		t.Fatal(err)
	}
	slow, err := RunTiming(spec, TimingOptions{P: 2})
	if err != nil {
		t.Fatal(err)
	}
	if table.Rows[0].Total >= slow.Rows[0].Total {
		t.Error("faster machine model did not reduce simulated time")
	}
}

func TestRunSymmetryDetection(t *testing.T) {
	cases := RunSymmetryDetection(32)
	for _, c := range cases {
		if !c.Correct() {
			t.Errorf("%s: expected %s, detected %s", c.Name, c.Expected, c.Detected)
		}
	}
	var buf bytes.Buffer
	WriteSymDetect(&buf, cases)
	if buf.Len() == 0 {
		t.Fatal("empty symmetry report")
	}
}

func TestReportViewCountsAndOpCount(t *testing.T) {
	var buf bytes.Buffer
	WriteViewCounts(&buf, ViewCounts([]float64{3, 0.1}))
	WriteOpCount(&buf, OpCount(10, nil))
	out := buf.String()
	if len(out) < 100 {
		t.Fatalf("report too short:\n%s", out)
	}
}

func TestRunFSCWithResolutionLadder(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-cycle refinement experiment")
	}
	spec := AsymmetricSpec().Scaled(1.6)
	exp, err := RunFSC(spec, FSCOptions{
		Cycles:           2,
		RMapFracPerCycle: []float64{0.6, 1.0},
	})
	if err != nil {
		t.Fatal(err)
	}
	// At this scale both methods are limited by reference noise (the
	// reference is reconstructed from imperfect orientations, not the
	// ground truth), so assert the method ordering and sanity rather
	// than absolute improvement.
	if exp.New.MeanAngErr >= exp.Old.MeanAngErr {
		t.Errorf("laddered: new %.2f° not better than old %.2f°",
			exp.New.MeanAngErr, exp.Old.MeanAngErr)
	}
	if exp.New.ResolutionA <= 0 || exp.New.TruthCC <= 0 {
		t.Errorf("invalid laddered outcome: res %.2f cc %.3f",
			exp.New.ResolutionA, exp.New.TruthCC)
	}
}

func TestRunConvergence(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-cycle convergence experiment")
	}
	spec := SindbisSpec().Scaled(1.8)
	res, err := RunConvergence(spec, FSCOptions{}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cycles) != 3 {
		t.Fatalf("%d cycles recorded, want 3", len(res.Cycles))
	}
	// The trajectory must be sane and must not collapse: the final
	// truth correlation stays within a whisker of the best cycle.
	best := 0.0
	for _, c := range res.Cycles {
		if c.ResolutionA <= 0 || c.TruthCC <= 0 {
			t.Fatalf("cycle %d produced nonsense: %+v", c.Cycle, c)
		}
		if c.TruthCC > best {
			best = c.TruthCC
		}
	}
	if last := res.Cycles[len(res.Cycles)-1].TruthCC; last < best-0.05 {
		t.Errorf("refinement diverged: final cc %.4f vs best %.4f", last, best)
	}
	var buf bytes.Buffer
	res.Write(&buf)
	if buf.Len() == 0 {
		t.Fatal("empty convergence report")
	}
	_ = res.Converged(0.01) // must not panic regardless of outcome
}

func TestRunConvergenceValidation(t *testing.T) {
	if _, err := RunConvergence(SindbisSpec().Scaled(3), FSCOptions{}, 0); err == nil {
		t.Fatal("zero cycles accepted")
	}
}

func TestDepthStudy(t *testing.T) {
	if testing.Short() {
		t.Skip("schedule-depth experiment")
	}
	spec := SindbisSpec().Scaled(2)
	spec.SNR = 4 // keep the depth effect visible above the noise floor
	rows, err := DepthStudy(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d depths, want 4", len(rows))
	}
	// Going from 1° to 0.1° must clearly reduce the angular error;
	// going beyond must never make it much worse, and cost rises.
	if rows[1].MeanAngErr >= rows[0].MeanAngErr {
		t.Errorf("0.1° (%.3f°) not better than 1° (%.3f°)", rows[1].MeanAngErr, rows[0].MeanAngErr)
	}
	last := rows[len(rows)-1]
	if last.MeanAngErr > rows[1].MeanAngErr*1.5 {
		t.Errorf("deep refinement regressed: %.3f° vs %.3f°", last.MeanAngErr, rows[1].MeanAngErr)
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].MatchingsPerView <= rows[i-1].MatchingsPerView {
			t.Errorf("depth %d not costlier than %d", rows[i].Levels, rows[i-1].Levels)
		}
	}
	var buf bytes.Buffer
	WriteDepthStudy(&buf, spec, rows)
	if buf.Len() == 0 {
		t.Fatal("empty depth report")
	}
}
