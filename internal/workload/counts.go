package workload

import (
	"math"

	"repro/internal/core"
	"repro/internal/geom"
)

// ViewCountRow is one row of the Fig. 1b / §3 search-space comparison:
// how many calculated views an orientation search must consider at a
// given angular resolution, with and without icosahedral symmetry.
type ViewCountRow struct {
	// StepDeg is the angular sampling of the view sphere.
	StepDeg float64
	// FullSphere is the number of (θ, φ) view directions on the whole
	// sphere at that sampling (counted on the actual grid when
	// feasible, else the 41253°²/step² area estimate).
	FullSphere int
	// IcosAsymUnit is the number of those directions inside the
	// icosahedral asymmetric unit.
	IcosAsymUnit int
	// Measured reports whether the two counts were enumerated on a
	// real grid (true) or area-estimated (false, for very fine steps
	// where the grid would have billions of points).
	Measured bool
	// AsymSearchSpace is |P| for an asymmetric particle over the full
	// (θ, φ, ω) ∈ [0, 180]³ domain at this resolution (§3's formula) —
	// the six-orders-of-magnitude blow-up the paper highlights.
	AsymSearchSpace float64
}

// sphereAreaDeg2 is the area of the unit sphere in square degrees.
const sphereAreaDeg2 = 4 * math.Pi * (180 / math.Pi) * (180 / math.Pi)

// ViewCounts evaluates the Fig. 1b comparison at the given samplings.
// Steps ≥ 1° are enumerated exactly on the sphere grid; finer steps
// use the area estimate (the 0.1° grid alone has ~4·10⁶ directions,
// and the paper's numbers at 0.1° are estimates too).
func ViewCounts(steps []float64) []ViewCountRow {
	ico := geom.Icosahedral()
	rows := make([]ViewCountRow, 0, len(steps))
	for _, step := range steps {
		row := ViewCountRow{StepDeg: step}
		if step >= 1 {
			row.FullSphere = len(geom.SphereGrid(step))
			row.IcosAsymUnit = geom.AsymmetricUnitViews(ico, step)
			row.Measured = true
		} else {
			full := sphereAreaDeg2 / (step * step)
			row.FullSphere = int(full)
			row.IcosAsymUnit = int(full / float64(ico.Order()))
		}
		row.AsymSearchSpace = geom.SearchSpaceSize(
			geom.Euler{}, geom.Euler{Theta: 180, Phi: 180, Omega: 180}, step)
		rows = append(rows, row)
	}
	return rows
}

// OpCountReport quantifies §4's multi-resolution saving for one Euler
// axis and for the full three-axis search.
type OpCountReport struct {
	// DomainDeg is the width of the search domain per axis (the
	// paper's example: initial θ = 65°, domain 60–70°, so 10°).
	DomainDeg float64
	// FinalResDeg is the target angular resolution (0.002°).
	FinalResDeg float64
	// FlatPerAxis is the single-step search's matchings per axis:
	// domain/resolution (the paper's "5000").
	FlatPerAxis int
	// MultiPerAxis is the multi-resolution ladder's matchings per
	// axis: the first level spans the domain at its step, and each
	// subsequent level spans ±1 step of its predecessor.
	MultiPerAxis int
	// PerAxisLevels breaks MultiPerAxis down by level.
	PerAxisLevels []int
	// FlatTotal and MultiTotal cube the per-axis counts for the full
	// (θ, φ, ω) search of one view.
	FlatTotal, MultiTotal float64
	// SavingFactor is FlatTotal/MultiTotal — "almost four orders of
	// magnitude" in the paper's arithmetic, more in ours because we
	// count all three axes.
	SavingFactor float64
}

// OpCount evaluates the §4 operation-count comparison for a search
// domain of the given width refined down the given schedule.
func OpCount(domainDeg float64, schedule []core.Level) OpCountReport {
	if len(schedule) == 0 {
		schedule = core.DefaultSchedule()
	}
	rep := OpCountReport{
		DomainDeg:   domainDeg,
		FinalResDeg: schedule[len(schedule)-1].RAngular,
	}
	rep.FlatPerAxis = int(math.Round(domainDeg/rep.FinalResDeg)) + 1
	prevStep := domainDeg
	for _, lv := range schedule {
		var n int
		if prevStep >= domainDeg {
			// First level spans the whole domain.
			n = int(math.Round(domainDeg/lv.RAngular)) + 1
		} else {
			// Later levels only resolve ±1 step of the previous level.
			n = 2*int(math.Round(prevStep/lv.RAngular)) + 1
		}
		rep.PerAxisLevels = append(rep.PerAxisLevels, n)
		rep.MultiPerAxis += n
		prevStep = lv.RAngular
	}
	cube := func(n int) float64 { f := float64(n); return f * f * f }
	rep.FlatTotal = cube(rep.FlatPerAxis)
	rep.MultiTotal = 0
	for _, n := range rep.PerAxisLevels {
		rep.MultiTotal += cube(n)
	}
	rep.SavingFactor = rep.FlatTotal / rep.MultiTotal
	return rep
}
