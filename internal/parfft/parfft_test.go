package parfft

import (
	"math/cmplx"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/cluster"
	"repro/internal/fourier"
	"repro/internal/volume"
)

func testModel() cluster.CostModel {
	return cluster.CostModel{LatencySec: 1e-5, BytesPerSec: 1e8, FlopsPerSec: 1e8}
}

func randomGrid(l int, seed int64) *volume.Grid {
	r := rand.New(rand.NewSource(seed))
	g := volume.NewGrid(l)
	for i := range g.Data {
		g.Data[i] = r.NormFloat64()
	}
	return g
}

func TestPartition(t *testing.T) {
	zs := Partition(10, 4)
	if zs[0] != 0 || zs[4] != 10 {
		t.Fatalf("partition endpoints wrong: %v", zs)
	}
	for i := 0; i < 4; i++ {
		n := zs[i+1] - zs[i]
		if n < 2 || n > 3 {
			t.Fatalf("uneven partition: %v", zs)
		}
	}
	// More parts than items: all sizes 0 or 1.
	zs = Partition(3, 5)
	for i := 0; i < 5; i++ {
		if n := zs[i+1] - zs[i]; n < 0 || n > 1 {
			t.Fatalf("partition %v has bad part size", zs)
		}
	}
}

func TestTransform3DMatchesSerial(t *testing.T) {
	for _, tc := range []struct{ l, p int }{
		{8, 1}, {8, 2}, {8, 3}, {8, 4}, {12, 5}, {16, 4}, {6, 8},
	} {
		g := randomGrid(tc.l, int64(tc.l*100+tc.p))
		want := fourier.NewVolumeDFT(g)
		c := cluster.New(tc.p, testModel())
		res := Transform3D(c, g, 0)
		if res.DFT.L != tc.l {
			t.Fatalf("l=%d p=%d: result size %d", tc.l, tc.p, res.DFT.L)
		}
		for i := range want.Data {
			if cmplx.Abs(res.DFT.Data[i]-want.Data[i]) > 1e-9 {
				t.Fatalf("l=%d p=%d: coefficient %d differs: %v vs %v",
					tc.l, tc.p, i, res.DFT.Data[i], want.Data[i])
			}
		}
	}
}

func TestTransform3DElapsedPositive(t *testing.T) {
	g := randomGrid(8, 1)
	c := cluster.New(4, testModel())
	res := Transform3D(c, g, 0.5)
	if res.Elapsed <= 0.5 {
		t.Fatalf("elapsed %g must exceed the modeled read time", res.Elapsed)
	}
	if len(res.Stats) != 4 {
		t.Fatalf("stats for %d ranks, want 4", len(res.Stats))
	}
	// Every node must have communicated (scatter + exchange + gather).
	for _, s := range res.Stats {
		if s.CommTime <= 0 {
			t.Errorf("rank %d has zero comm time", s.Rank)
		}
	}
}

func TestModelTimeScaling(t *testing.T) {
	m := cluster.SP2
	// Compute-dominated sizes: more nodes must reduce modeled time.
	t1 := ModelTime(m, 128, 1, 0)
	t4 := ModelTime(m, 128, 4, 0)
	t16 := ModelTime(m, 128, 16, 0)
	if !(t1 > t4 && t4 > t16) {
		t.Fatalf("model time not decreasing with nodes: %g %g %g", t1, t4, t16)
	}
	// Larger maps must cost more.
	if ModelTime(m, 64, 4, 0) >= ModelTime(m, 128, 4, 0) {
		t.Fatal("model time not increasing with map size")
	}
	// Read time passes straight through.
	if d := ModelTime(m, 64, 4, 10) - ModelTime(m, 64, 4, 0); d < 10-1e-9 {
		t.Fatalf("read time not accounted: delta %g", d)
	}
}

// TestTransform3DClockIndependentOfGOMAXPROCS: the real-core worker
// pools inside each node must not leak into the cost model — the
// simulated timing is charged in deterministic rank order, so Elapsed
// and every coefficient are bit-identical whether the host runs the
// slab work on one core or many.
func TestTransform3DClockIndependentOfGOMAXPROCS(t *testing.T) {
	g := randomGrid(12, 9)
	prev := runtime.GOMAXPROCS(1)
	serial := Transform3D(cluster.New(4, testModel()), g, 0.25)
	runtime.GOMAXPROCS(8)
	wide := Transform3D(cluster.New(4, testModel()), g, 0.25)
	runtime.GOMAXPROCS(prev)
	if serial.Elapsed != wide.Elapsed {
		t.Fatalf("simulated time depends on GOMAXPROCS: %g vs %g", serial.Elapsed, wide.Elapsed)
	}
	for r := range serial.Stats {
		if serial.Stats[r] != wide.Stats[r] {
			t.Fatalf("rank %d stats differ across GOMAXPROCS: %+v vs %+v",
				r, serial.Stats[r], wide.Stats[r])
		}
	}
	for i := range serial.DFT.Data {
		if serial.DFT.Data[i] != wide.DFT.Data[i] {
			t.Fatal("spectrum depends on GOMAXPROCS")
		}
	}
}

func TestTransform3DDeterministic(t *testing.T) {
	g := randomGrid(8, 42)
	a := Transform3D(cluster.New(3, testModel()), g, 0)
	b := Transform3D(cluster.New(3, testModel()), g, 0)
	for i := range a.DFT.Data {
		if a.DFT.Data[i] != b.DFT.Data[i] {
			t.Fatal("transform not deterministic")
		}
	}
	if a.Elapsed != b.Elapsed {
		t.Fatalf("simulated time not deterministic: %g vs %g", a.Elapsed, b.Elapsed)
	}
}
