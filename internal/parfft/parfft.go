// Package parfft implements the paper's parallel 3-D Discrete Fourier
// Transform (step a of the refinement algorithm) on the simulated
// message-passing cluster:
//
//	a.1  the master node reads all z-slabs of the density map D;
//	a.2  it sends each node a z-slab of l³/P voxels;
//	a.3  each node runs 2-D FFTs along x and y on its z-planes;
//	a.4  a global exchange converts z-slabs to y-slabs;
//	a.5  each node runs 1-D FFTs along z within its y-slab;
//	a.6  an all-gather replicates the full D̂ on every node.
//
// The data genuinely moves between goroutine "nodes"; the simulated
// clock model of package cluster reports what the communication and
// FLOPs would cost on the configured machine.
//
// Execution model. Each node's local work — the a.3 plane transforms,
// the a.4 pack/unpack, the a.5 z-line transforms and the a.6 assembly
// — runs on a real worker pool of GOMAXPROCS/P cores (pool.RunIndexed),
// so host wall time scales with the machine while the simulated clock
// is still charged deterministically: Node.Compute is called with the
// same analytic flop counts, outside the pools, exactly as the serial
// schedule would. Simulated timings are therefore bit-identical for
// any GOMAXPROCS (the same contract as core.RefineOnCluster). The a.3
// transforms additionally use the real-input 2-D FFT path — the slab
// planes of a density map are purely real — which roughly halves their
// host-side cost without touching the cost model.
package parfft

import (
	"math"
	"runtime"

	"repro/internal/cluster"
	"repro/internal/fft"
	"repro/internal/fourier"
	"repro/internal/obs"
	"repro/internal/pool"
	"repro/internal/volume"
)

const bytesPerComplex = 16

// Result carries the replicated transform and the simulated cost of
// producing it.
type Result struct {
	DFT   *fourier.VolumeDFT
	Stats []cluster.Stats
	// Elapsed is the simulated makespan in seconds (the "3D DFT" rows
	// of Tables 1 and 2).
	Elapsed float64
}

// Partition splits n items into p contiguous ranges as evenly as
// possible; range i is [starts[i], starts[i+1]).
func Partition(n, p int) []int {
	starts := make([]int, p+1)
	for i := 0; i <= p; i++ {
		starts[i] = i * n / p
	}
	return starts
}

// fftFlops is the standard 5·n·log₂n operation-count model for one
// complex FFT of length n.
func fftFlops(n int) float64 {
	if n < 2 {
		return 0
	}
	return 5 * float64(n) * math.Log2(float64(n))
}

// nodeWorkers is each node's share of the real machine: GOMAXPROCS/P
// cores, at least one.
func nodeWorkers(p int) int {
	w := runtime.GOMAXPROCS(0) / p
	if w < 1 {
		w = 1
	}
	return w
}

// Transform3D computes the centred 3-D DFT of g on the cluster,
// returning the replicated spectrum. The master node (rank 0) holds g;
// readSecs models the time it spends reading the map from disk (a.1)
// and may be zero.
func Transform3D(c *cluster.Cluster, g *volume.Grid, readSecs float64) Result {
	l := g.L
	p := c.P
	zs := Partition(l, p) // z-slab boundaries
	results := make([]*volume.CGrid, p)

	stats := c.Run(func(n *cluster.Node) {
		rank := n.Rank
		workers := nodeWorkers(p)

		// Stage spans tile [0, Elapsed] on the simulated clock: mark is
		// carried from each stage boundary to the next, so the spans are
		// contiguous by construction and their last end *is* the node's
		// Stats.Elapsed — the reconciliation tests exploit that.
		mark := n.Clock()
		stage := func(name string) {
			now := n.Clock()
			obs.Span(rank, 0, name, "parfft", mark, now)
			mark = now
		}

		// a.1–a.2: master reads the map and scatters z-slabs.
		var parts []interface{}
		if rank == 0 {
			n.Sleep(readSecs)
			parts = make([]interface{}, p)
			pool.RunIndexedLabeled("parfft.a2.pack", p, workers, func(_, i int) {
				z0, z1 := zs[i], zs[i+1]
				planes := make([][]complex128, 0, z1-z0)
				for z := z0; z < z1; z++ {
					plane := make([]complex128, l*l)
					for x := 0; x < l; x++ {
						for y := 0; y < l; y++ {
							plane[x*l+y] = complex(g.At(x, y, z), 0)
						}
					}
					planes = append(planes, plane)
				}
				parts[i] = planes
			})
		}
		stage("a.1 read")
		slabBytes := (zs[1] - zs[0]) * l * l * bytesPerComplex
		myPlanes := n.Scatter("zslab", 0, parts, slabBytes).([][]complex128)
		stage("a.2 scatter")

		// a.3: 2-D FFT along x and y on every owned z-plane. The planes
		// carry a real density map, so each worker runs the Hermitian
		// real-input path on a private plan; the clock is charged with
		// the same analytic count as before, in one deterministic call.
		type fftScratch struct {
			plan *fft.RealPlan2D
			re   []float64
		}
		w3 := pool.Workers(len(myPlanes), workers)
		scratch := make([]*fftScratch, w3)
		pool.RunIndexedLabeled("parfft.a3.fft2d", len(myPlanes), w3, func(w, i int) {
			sc := scratch[w]
			if sc == nil {
				sc = &fftScratch{plan: fft.NewRealPlan2D(l, l), re: make([]float64, l*l)}
				scratch[w] = sc
			}
			plane := myPlanes[i]
			for j, v := range plane {
				sc.re[j] = real(v)
			}
			sc.plan.Forward(sc.re, plane)
		})
		n.Compute(float64(len(myPlanes)) * 2 * float64(l) * fftFlops(l))
		stage("a.3 fft2d")

		// a.4: global exchange z-slabs -> y-slabs. The part destined
		// for rank j holds, for each owned z, the block of all x and
		// y ∈ Yj. Destination blocks are independent, so packing fans
		// out across the node's cores.
		exParts := make([]interface{}, p)
		pool.RunIndexedLabeled("parfft.a4.pack", p, workers, func(_, j int) {
			y0, y1 := zs[j], zs[j+1]
			ny := y1 - y0
			block := make([]complex128, len(myPlanes)*l*ny)
			idx := 0
			for _, plane := range myPlanes {
				for x := 0; x < l; x++ {
					copy(block[idx:idx+ny], plane[x*l+y0:x*l+y1])
					idx += ny
				}
			}
			exParts[j] = block
		})
		partBytes := (zs[1] - zs[0]) * l * (zs[1] - zs[0]) * bytesPerComplex
		recv := n.AllToAll("exchange", exParts, partBytes)
		stage("a.4 exchange")

		// Assemble the y-slab with z contiguous: (x·ny + yy)·l + z.
		// Source blocks write disjoint z ranges, so unpacking is
		// parallel over sources.
		myY0, myY1 := zs[rank], zs[rank+1]
		myNy := myY1 - myY0
		yslab := make([]complex128, l*myNy*l)
		pool.RunIndexedLabeled("parfft.a4.unpack", p, workers, func(_, src int) {
			block := recv[src].([]complex128)
			idx := 0
			for z := zs[src]; z < zs[src+1]; z++ {
				for x := 0; x < l; x++ {
					for yy := 0; yy < myNy; yy++ {
						yslab[(x*myNy+yy)*l+z] = block[idx]
						idx++
					}
				}
			}
		})

		// a.5: 1-D FFT along z within the y-slab, one private plan per
		// worker (plans share immutable tables through the global
		// cache, so this costs only scratch).
		lines := l * myNy
		w5 := pool.Workers(lines, workers)
		zplans := make([]*fft.Plan, w5)
		pool.RunIndexedLabeled("parfft.a5.fftz", lines, w5, func(w, line int) {
			if zplans[w] == nil {
				zplans[w] = fft.NewPlan(l)
			}
			zplans[w].Forward(yslab[line*l : (line+1)*l])
		})
		n.Compute(float64(lines) * fftFlops(l))
		stage("a.5 fftz")

		// a.6: all-gather replicates the full transform everywhere.
		gathered := n.AllGather("gather", yslab, l*myNy*l*bytesPerComplex)
		full := volume.NewCGrid(l)
		pool.RunIndexedLabeled("parfft.a6.assemble", p, workers, func(_, src int) {
			sl := gathered[src].([]complex128)
			y0 := zs[src]
			ny := zs[src+1] - y0
			for x := 0; x < l; x++ {
				for yy := 0; yy < ny; yy++ {
					copy(full.Data[(x*l+y0+yy)*l:(x*l+y0+yy)*l+l], sl[(x*ny+yy)*l:(x*ny+yy)*l+l])
				}
			}
		})
		results[rank] = full
		stage("a.6 allgather")
	})

	// Convert rank 0's replica to the centred convention used by the
	// rest of the pipeline.
	dft := results[0]
	centred := &fourier.VolumeDFT{L: l, SrcL: l, Data: dft.Data}
	applyRamp(centred)
	return Result{DFT: centred, Stats: stats, Elapsed: cluster.MaxElapsed(stats)}
}

// Transform3DPadded runs the cluster transform on g embedded centrally
// in a (pad·l)³ zero box, producing the oversampled spectrum the
// matcher samples (the counterpart of fourier.NewVolumeDFTPadded, but
// with the slab DFT's simulated cost of transforming the padded map).
// The returned DFT addresses image frequencies of the original l-box:
// SrcL is fixed to l.
func Transform3DPadded(c *cluster.Cluster, g *volume.Grid, pad int, readSecs float64) Result {
	if pad < 1 {
		panic("parfft: pad must be ≥ 1")
	}
	if pad == 1 {
		return Transform3D(c, g, readSecs)
	}
	l := g.L
	bl := pad * l
	pg := volume.NewGrid(bl)
	off := bl/2 - l/2 // maps voxel l/2 (particle origin) onto bl/2
	for x := 0; x < l; x++ {
		for y := 0; y < l; y++ {
			base := ((x+off)*bl + y + off) * bl
			srcBase := (x*l + y) * l
			copy(pg.Data[base+off:base+off+l], g.Data[srcBase:srcBase+l])
		}
	}
	r := Transform3D(c, pg, readSecs)
	r.DFT.SrcL = l
	return r
}

// applyRamp converts an origin-at-0 spectrum to the centred
// convention (multiply coefficient f by exp(+2πi·Σf·(l/2)/l)).
func applyRamp(v *fourier.VolumeDFT) {
	l := v.L
	ramp := make([]complex128, l)
	c := float64(l / 2)
	for i := 0; i < l; i++ {
		f := float64(fft.FreqIndex(i, l))
		angle := 2 * math.Pi * f * c / float64(l)
		ramp[i] = complex(math.Cos(angle), math.Sin(angle))
	}
	pool.RunIndexed(l, 0, func(_, x int) {
		for y := 0; y < l; y++ {
			base := (x*l + y) * l
			rxy := ramp[x] * ramp[y]
			for z := 0; z < l; z++ {
				v.Data[base+z] *= rxy * ramp[z]
			}
		}
	})
}

// ModelTime predicts the simulated seconds for Transform3D on a map of
// size l over p nodes with the given cost model, without running it.
// It mirrors the step costs: scatter of l³/p complex words per node,
// per-node 2-D and 1-D FFT flops, the all-to-all exchange, and the
// final all-gather of l³/p words from each of p−1 peers.
func ModelTime(model cluster.CostModel, l, p int, readSecs float64) float64 {
	n3 := float64(l) * float64(l) * float64(l)
	slabWords := n3 / float64(p)
	t := readSecs
	// Scatter: master sends p−1 slabs sequentially.
	t += float64(p-1) * model.MessageTime(int(slabWords)*bytesPerComplex)
	// 2-D FFTs on l/p planes of l² points: 2·l·fftFlops(l) each.
	t += (float64(l) / float64(p)) * 2 * float64(l) * fftFlops(l) / model.FlopsPerSec
	// Exchange: p−1 messages of slabWords/p words.
	t += float64(p-1) * model.MessageTime(int(slabWords/float64(p))*bytesPerComplex)
	// 1-D FFTs along z: l·(l/p) lines.
	t += float64(l) * (float64(l) / float64(p)) * fftFlops(l) / model.FlopsPerSec
	// All-gather: p−1 messages of slabWords words.
	t += float64(p-1) * model.MessageTime(int(slabWords)*bytesPerComplex)
	return t
}
