package parfft

import (
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/phantom"
)

// TestStageSpansTileNodeClock: the six stage spans of every node must
// tile [0, Stats.Elapsed] on the simulated clock — contiguous,
// in-order, and ending exactly (same float64) at the node's reported
// elapsed time. The stage marks telescope (each span starts at the
// previous span's end and reads n.Clock() for its own end), so this is
// an exact identity, not a tolerance check.
func TestStageSpansTileNodeClock(t *testing.T) {
	g := phantom.Asymmetric(16, 5, 1)
	c := cluster.New(4, cluster.SP2)

	tr := obs.StartTrace()
	defer obs.EndTrace()
	res := Transform3D(c, g, 0.25)
	obs.EndTrace()

	wantStages := []string{"a.1 read", "a.2 scatter", "a.3 fft2d", "a.4 exchange", "a.5 fftz", "a.6 allgather"}
	perNode := map[int][]obs.Event{}
	for _, e := range tr.Events() {
		if e.Cat != "parfft" {
			t.Fatalf("unexpected event category %q", e.Cat)
		}
		perNode[e.Pid] = append(perNode[e.Pid], e)
	}
	if len(perNode) != c.P {
		t.Fatalf("spans cover %d nodes, want %d", len(perNode), c.P)
	}
	for _, st := range res.Stats {
		ev := perNode[st.Rank]
		if len(ev) != len(wantStages) {
			t.Fatalf("rank %d: %d spans, want %d", st.Rank, len(ev), len(wantStages))
		}
		cursor := 0.0
		var sum float64
		for i, e := range ev {
			if e.Name != wantStages[i] {
				t.Fatalf("rank %d span %d = %q, want %q", st.Rank, i, e.Name, wantStages[i])
			}
			if e.Start != cursor {
				t.Fatalf("rank %d %q starts at %.17g, previous ended at %.17g (gap/overlap)",
					st.Rank, e.Name, e.Start, cursor)
			}
			if e.End < e.Start {
				t.Fatalf("rank %d %q runs backwards: [%g, %g]", st.Rank, e.Name, e.Start, e.End)
			}
			cursor = e.End
			sum += e.End - e.Start
		}
		if cursor != st.Elapsed {
			t.Fatalf("rank %d spans end at %.17g, cluster reports Elapsed %.17g",
				st.Rank, cursor, st.Elapsed)
		}
		// The telescoping sum equals Elapsed up to float addition order.
		if math.Abs(sum-st.Elapsed) > 1e-12*math.Max(1, st.Elapsed) {
			t.Fatalf("rank %d span durations sum to %.17g, want %.17g", st.Rank, sum, st.Elapsed)
		}
	}
	// Rank 0 pays the modeled read; its a.1 span must say so.
	if got := perNode[0][0].End - perNode[0][0].Start; got != 0.25 {
		t.Fatalf("rank 0 read span = %g s, want 0.25", got)
	}
}

// TestTracingLeavesTimingsIdentical: recording a trace must not change
// the simulated timings — spans only *read* the clock.
func TestTracingLeavesTimingsIdentical(t *testing.T) {
	g := phantom.Asymmetric(16, 5, 1)

	base := Transform3D(cluster.New(4, cluster.SP2), g, 0.1)
	obs.StartTrace()
	traced := Transform3D(cluster.New(4, cluster.SP2), g, 0.1)
	obs.EndTrace()

	if base.Elapsed != traced.Elapsed {
		t.Fatalf("tracing changed makespan: %.17g vs %.17g", base.Elapsed, traced.Elapsed)
	}
	for i := range base.Stats {
		if base.Stats[i] != traced.Stats[i] {
			t.Fatalf("rank %d stats changed under tracing:\n  base   %+v\n  traced %+v",
				i, base.Stats[i], traced.Stats[i])
		}
	}
	for i := range base.DFT.Data {
		if base.DFT.Data[i] != traced.DFT.Data[i] {
			t.Fatalf("tracing changed DFT output at %d", i)
		}
	}
}

// TestTransform3DPadded: the padded cluster transform must address
// image frequencies of the original box (SrcL = l) on a pad·l lattice.
func TestTransform3DPadded(t *testing.T) {
	g := phantom.Asymmetric(8, 3, 1)
	res := Transform3DPadded(cluster.New(2, cluster.SP2), g, 2, 0)
	if res.DFT.L != 16 || res.DFT.SrcL != 8 {
		t.Fatalf("padded DFT lattice L=%d SrcL=%d, want 16/8", res.DFT.L, res.DFT.SrcL)
	}
	if res.Elapsed <= 0 {
		t.Fatal("padded transform reported zero simulated time")
	}
}
