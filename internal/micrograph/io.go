package micrograph

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/ctf"
	"repro/internal/geom"
	"repro/internal/volume"
)

// On-disk dataset layout (plain files, mirroring the paper's "file
// containing the 2D views" + "orientation file" inputs):
//
//	truth.map           ground-truth density (volume binary format)
//	views.dat           concatenated view images (volume binary format)
//	orientations.txt    one line per view: θ φ ω dx dy group defocusA
//	meta.txt            box size, pixel size, view count, ctf flag

// writeFile creates path, hands the open file to fn, and closes it,
// returning the first error. A failed Close after a clean write still
// fails the caller: buffered data may never have reached disk, and a
// dataset that silently lost its tail is worse than no dataset.
func writeFile(path string, fn func(*os.File) error) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	return fn(f)
}

// Save writes the dataset under dir, creating it if needed.
func (ds *Dataset) Save(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	err := writeFile(filepath.Join(dir, "truth.map"), func(f *os.File) error {
		_, err := ds.Truth.WriteTo(f)
		return err
	})
	if err != nil {
		return err
	}

	err = writeFile(filepath.Join(dir, "views.dat"), func(f *os.File) error {
		bw := bufio.NewWriter(f)
		for _, v := range ds.Views {
			if _, err := v.Image.WriteTo(bw); err != nil {
				return err
			}
		}
		return bw.Flush()
	})
	if err != nil {
		return err
	}

	if err := WriteOrientations(filepath.Join(dir, "orientations.txt"), ds.Views); err != nil {
		return err
	}

	meta := fmt.Sprintf("l %d\npixelA %g\nviews %d\nctf %t\n", ds.L, ds.PixelA, len(ds.Views), ds.HasCTF)
	return os.WriteFile(filepath.Join(dir, "meta.txt"), []byte(meta), 0o644)
}

// Load reads a dataset saved by Save.
func Load(dir string) (*Dataset, error) {
	var l, nViews int
	var pixelA float64
	var hasCTF bool
	mf, err := os.ReadFile(filepath.Join(dir, "meta.txt"))
	if err != nil {
		return nil, err
	}
	if _, err := fmt.Sscanf(string(mf), "l %d\npixelA %g\nviews %d\nctf %t\n",
		&l, &pixelA, &nViews, &hasCTF); err != nil {
		return nil, fmt.Errorf("micrograph: parsing meta.txt: %w", err)
	}

	tf, err := os.Open(filepath.Join(dir, "truth.map"))
	if err != nil {
		return nil, err
	}
	truth, err := volume.ReadGrid(tf)
	if cerr := tf.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return nil, err
	}

	vf, err := os.Open(filepath.Join(dir, "views.dat"))
	if err != nil {
		return nil, err
	}
	defer vf.Close()
	br := bufio.NewReader(vf)
	ds := &Dataset{L: l, PixelA: pixelA, Truth: truth, HasCTF: hasCTF}
	for i := 0; i < nViews; i++ {
		im, err := volume.ReadImage(br)
		if err != nil {
			return nil, fmt.Errorf("micrograph: reading view %d: %w", i, err)
		}
		ds.Views = append(ds.Views, &View{Image: im})
	}
	if err := readOrientations(filepath.Join(dir, "orientations.txt"), ds.Views, pixelA); err != nil {
		return nil, err
	}
	return ds, nil
}

// WriteOrientations writes the per-view ground truth in the textual
// orientation-file format (the analogue of the paper's O^init /
// O^refined files).
func WriteOrientations(path string, views []*View) error {
	return writeFile(path, func(f *os.File) error {
		bw := bufio.NewWriter(f)
		if _, err := fmt.Fprintln(bw, "# theta phi omega dx dy group defocusA"); err != nil {
			return err
		}
		for _, v := range views {
			if _, err := fmt.Fprintf(bw, "%.17g %.17g %.17g %.17g %.17g %d %.17g\n",
				v.TrueOrient.Theta, v.TrueOrient.Phi, v.TrueOrient.Omega,
				v.TrueCenter[0], v.TrueCenter[1], v.Group, v.CTF.DefocusA); err != nil {
				return err
			}
		}
		return bw.Flush()
	})
}

// WriteOrientationList writes plain orientations (e.g. refined ones)
// one per line.
func WriteOrientationList(path string, orients []geom.Euler, centers [][2]float64) error {
	return writeFile(path, func(f *os.File) error {
		bw := bufio.NewWriter(f)
		if _, err := fmt.Fprintln(bw, "# theta phi omega dx dy"); err != nil {
			return err
		}
		for i, o := range orients {
			var c [2]float64
			if centers != nil {
				c = centers[i]
			}
			if _, err := fmt.Fprintf(bw, "%.17g %.17g %.17g %.17g %.17g\n",
				o.Theta, o.Phi, o.Omega, c[0], c[1]); err != nil {
				return err
			}
		}
		return bw.Flush()
	})
}

// ReadOrientationList reads a file written by WriteOrientationList.
func ReadOrientationList(path string) ([]geom.Euler, [][2]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	var orients []geom.Euler
	var centers [][2]float64
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if len(line) == 0 || line[0] == '#' {
			continue
		}
		var o geom.Euler
		var c [2]float64
		if _, err := fmt.Sscanf(line, "%g %g %g %g %g",
			&o.Theta, &o.Phi, &o.Omega, &c[0], &c[1]); err != nil {
			return nil, nil, fmt.Errorf("micrograph: parsing orientation line %q: %w", line, err)
		}
		orients = append(orients, o)
		centers = append(centers, c)
	}
	return orients, centers, sc.Err()
}

func readOrientations(path string, views []*View, pixelA float64) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	i := 0
	for sc.Scan() {
		line := sc.Text()
		if len(line) == 0 || line[0] == '#' {
			continue
		}
		if i >= len(views) {
			return fmt.Errorf("micrograph: more orientation lines than views")
		}
		v := views[i]
		var defocus float64
		if _, err := fmt.Sscanf(line, "%g %g %g %g %g %d %g",
			&v.TrueOrient.Theta, &v.TrueOrient.Phi, &v.TrueOrient.Omega,
			&v.TrueCenter[0], &v.TrueCenter[1], &v.Group, &defocus); err != nil {
			return fmt.Errorf("micrograph: parsing orientation line %q: %w", line, err)
		}
		v.CTF = ctf.Typical(pixelA)
		v.CTF.DefocusA = defocus
		i++
	}
	if i != len(views) {
		return fmt.Errorf("micrograph: %d orientation lines for %d views", i, len(views))
	}
	return sc.Err()
}
