package micrograph

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/phantom"
	"repro/internal/projection"
	"repro/internal/reconstruct"
	"repro/internal/volume"
)

func TestRandomOrientationUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	// The view axes must cover both hemispheres roughly evenly.
	north, total := 0, 5000
	var sumZ float64
	for i := 0; i < total; i++ {
		o := RandomOrientation(rng)
		z := o.ViewAxis().Z
		sumZ += z
		if z > 0 {
			north++
		}
	}
	if math.Abs(float64(north)/float64(total)-0.5) > 0.03 {
		t.Errorf("hemisphere balance off: %d/%d north", north, total)
	}
	if math.Abs(sumZ/float64(total)) > 0.03 {
		t.Errorf("mean z = %g, want ≈0", sumZ/float64(total))
	}
}

func TestGenerateNoiselessMatchesProjection(t *testing.T) {
	truth := phantom.Asymmetric(24, 6, 1)
	ds := Generate(truth, GenParams{NumViews: 3, PixelA: 2, Seed: 5})
	for _, v := range ds.Views {
		want := projection.Real(truth, v.TrueOrient)
		if cc := volume.ImageCorrelation(v.Image, want); cc < 1-1e-9 {
			t.Fatalf("noiseless uncorrupted view differs from projection (cc=%g)", cc)
		}
		if v.TrueCenter != [2]float64{0, 0} {
			t.Fatal("unexpected centre jitter")
		}
	}
}

func TestGenerateCenterJitter(t *testing.T) {
	truth := phantom.Asymmetric(24, 6, 1)
	ds := Generate(truth, GenParams{NumViews: 8, PixelA: 2, CenterJitter: 2, Seed: 6})
	sawNonzero := false
	for _, v := range ds.Views {
		if math.Abs(v.TrueCenter[0]) > 2 || math.Abs(v.TrueCenter[1]) > 2 {
			t.Fatalf("jitter %v exceeds bound", v.TrueCenter)
		}
		if v.TrueCenter[0] != 0 {
			sawNonzero = true
		}
	}
	if !sawNonzero {
		t.Fatal("jitter never applied")
	}
	// A jittered view should match the projection after shifting back.
	v := ds.Views[0]
	proj := projection.Real(truth, v.TrueOrient)
	shifted := proj.Shift(v.TrueCenter[0], v.TrueCenter[1])
	if cc := volume.ImageCorrelation(v.Image, shifted); cc < 0.98 {
		t.Fatalf("jittered view does not match shifted projection (cc=%g)", cc)
	}
}

func TestGenerateNoiseSNR(t *testing.T) {
	truth := phantom.Asymmetric(24, 6, 1)
	clean := Generate(truth, GenParams{NumViews: 1, PixelA: 2, Seed: 7})
	noisy := Generate(truth, GenParams{NumViews: 1, PixelA: 2, SNR: 1, Seed: 7})
	// Same seed => same orientation; noise power should be comparable
	// to signal power at SNR 1.
	var signal, noise float64
	for i := range clean.Views[0].Image.Data {
		s := clean.Views[0].Image.Data[i]
		d := noisy.Views[0].Image.Data[i] - s
		signal += s * s
		noise += d * d
	}
	_, _, mean, _ := clean.Views[0].Image.Stats()
	n := float64(len(clean.Views[0].Image.Data))
	signalVar := signal/n - mean*mean
	ratio := signalVar / (noise / n)
	if ratio < 0.5 || ratio > 2 {
		t.Fatalf("realized SNR %g, want ≈1", ratio)
	}
}

func TestGenerateDefocusGroups(t *testing.T) {
	truth := phantom.Asymmetric(24, 6, 1)
	ds := Generate(truth, GenParams{NumViews: 20, PixelA: 2, ApplyCTF: true, DefocusGroups: 3, Seed: 8})
	defoci := map[int]float64{}
	for _, v := range ds.Views {
		if prev, ok := defoci[v.Group]; ok && prev != v.CTF.DefocusA {
			t.Fatal("views in one group have different defocus")
		}
		defoci[v.Group] = v.CTF.DefocusA
	}
	if len(defoci) < 2 {
		t.Fatalf("only %d defocus groups realized", len(defoci))
	}
}

func TestPerturbedOrientationsBounded(t *testing.T) {
	truth := phantom.Asymmetric(16, 4, 1)
	ds := Generate(truth, GenParams{NumViews: 10, PixelA: 2, Seed: 9})
	inits := ds.PerturbedOrientations(3, 10)
	for i, o := range inits {
		d := ds.Views[i].TrueOrient
		if math.Abs(o.Theta-d.Theta) > 3 || math.Abs(o.Phi-d.Phi) > 3 || math.Abs(o.Omega-d.Omega) > 3 {
			t.Fatalf("view %d perturbed beyond bound: %v vs %v", i, o, d)
		}
	}
	// Must actually perturb.
	if inits[0] == ds.Views[0].TrueOrient {
		t.Fatal("no perturbation applied")
	}
}

func TestMicrographBoxing(t *testing.T) {
	// Use a centred, symmetric particle: centre-of-mass centring
	// assumes the density centroid coincides with the particle origin,
	// which holds for capsids but not for an arbitrary blob cluster.
	truth := phantom.SindbisLike(24)
	ds := Generate(truth, GenParams{NumViews: 4, PixelA: 2, Seed: 11})
	mg := MakeMicrograph(ds, 2, 2, 1.5, 12)
	if len(mg.Nominal) != 4 {
		t.Fatalf("placed %d particles, want 4", len(mg.Nominal))
	}
	images, centers, err := mg.BoxAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(images) != 4 {
		t.Fatalf("boxed %d images", len(images))
	}
	// Boxed particles must correlate with the original views.
	for i, im := range images {
		if cc := volume.ImageCorrelation(im, ds.Views[i].Image); cc < 0.7 {
			t.Errorf("boxed particle %d correlation %.3f", i, cc)
		}
	}
	// Centre-of-mass estimates should beat the nominal grid positions.
	nominal := make([][2]float64, len(mg.Nominal))
	for i, p := range mg.Nominal {
		nominal[i] = [2]float64{float64(p[0]), float64(p[1])}
	}
	comErr := CenteringError(centers, mg.Actual)
	nomErr := CenteringError(nominal, mg.Actual)
	if comErr >= nomErr {
		t.Errorf("centre-of-mass (%.3f px) no better than nominal (%.3f px)", comErr, nomErr)
	}
}

func TestBoxParticleOutOfBounds(t *testing.T) {
	truth := phantom.Asymmetric(16, 4, 1)
	ds := Generate(truth, GenParams{NumViews: 1, PixelA: 2, Seed: 13})
	mg := MakeMicrograph(ds, 1, 1, 0, 14)
	if _, err := mg.BoxParticle([2]int{0, 0}); err == nil {
		t.Fatal("box at field corner accepted")
	}
}

func TestDatasetAccessors(t *testing.T) {
	truth := phantom.Asymmetric(16, 4, 1)
	ds := Generate(truth, GenParams{NumViews: 5, PixelA: 2, Seed: 15})
	if len(ds.Images()) != 5 || len(ds.TrueOrientations()) != 5 {
		t.Fatal("accessor lengths wrong")
	}
	for i, o := range ds.TrueOrientations() {
		if o != ds.Views[i].TrueOrient {
			t.Fatal("TrueOrientations order mismatch")
		}
	}
}

func TestViewAxisPerturbationIsSmall(t *testing.T) {
	// A 3° per-axis Euler perturbation should stay within ~6° of
	// geodesic distance — sanity for refinement's initial window.
	truth := phantom.Asymmetric(16, 4, 1)
	ds := Generate(truth, GenParams{NumViews: 20, PixelA: 2, Seed: 16})
	inits := ds.PerturbedOrientations(3, 17)
	for i := range inits {
		if d := geom.AngularDistance(inits[i], ds.Views[i].TrueOrient); d > 7 {
			t.Fatalf("view %d initial orientation %g° off", i, d)
		}
	}
}

func TestTiltSeriesOrientationsExact(t *testing.T) {
	truth := phantom.Asymmetric(20, 5, 1)
	tilts := []float64{-60, -30, 0, 30, 60}
	ds := TiltSeries(truth, tilts, 2.5, 0, 1)
	if len(ds.Views) != len(tilts) {
		t.Fatalf("%d views, want %d", len(ds.Views), len(tilts))
	}
	for i, v := range ds.Views {
		if v.TrueOrient.Theta != tilts[i] || v.TrueOrient.Phi != 0 || v.TrueOrient.Omega != 0 {
			t.Fatalf("view %d orientation %v", i, v.TrueOrient)
		}
		if v.TrueCenter != [2]float64{0, 0} {
			t.Fatal("tilt series must have exact centres")
		}
		// The zero-tilt view is the straight z-projection.
		if tilts[i] == 0 {
			want := projection.Real(truth, geom.Euler{})
			if cc := volume.ImageCorrelation(v.Image, want); cc < 1-1e-9 {
				t.Fatalf("zero-tilt view is not the direct projection (cc=%g)", cc)
			}
		}
	}
}

func TestTiltSeriesMissingWedge(t *testing.T) {
	// §2: in CAT orientations are known, so reconstruction needs no
	// search — but a limited tilt range leaves a missing wedge that
	// degrades the map anisotropically. A full ±90° series must beat
	// a ±45° series against the ground truth.
	truth := phantom.Asymmetric(24, 8, 1)
	truth.SphericalMask(9)
	full := tiltRange(-90, 90, 5)
	limited := tiltRange(-45, 45, 5)
	recFull := reconstructTilt(t, truth, full)
	recLim := reconstructTilt(t, truth, limited)
	ccFull := volume.Correlation(truth, recFull)
	ccLim := volume.Correlation(truth, recLim)
	if ccFull <= ccLim {
		t.Fatalf("missing wedge did not hurt: full %.4f vs limited %.4f", ccFull, ccLim)
	}
	if ccFull < 0.9 {
		t.Fatalf("known-orientation tomographic reconstruction only %.4f", ccFull)
	}
}

func tiltRange(lo, hi, step float64) []float64 {
	var out []float64
	for a := lo; a <= hi+1e-9; a += step {
		out = append(out, a)
	}
	return out
}

func reconstructTilt(t *testing.T, truth *volume.Grid, tilts []float64) *volume.Grid {
	t.Helper()
	ds := TiltSeries(truth, tilts, 2.5, 0, 2)
	rec, err := reconstruct.FromViews(ds.Images(), ds.TrueOrientations(), nil, nil, reconstruct.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return rec
}
