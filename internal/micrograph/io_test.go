package micrograph

import (
	"path/filepath"
	"testing"

	"repro/internal/geom"
	"repro/internal/phantom"
)

func TestDatasetSaveLoadRoundTrip(t *testing.T) {
	truth := phantom.Asymmetric(16, 4, 1)
	ds := Generate(truth, GenParams{NumViews: 5, PixelA: 2.5, CenterJitter: 1, ApplyCTF: true, DefocusGroups: 2, Seed: 1})
	dir := t.TempDir()
	if err := ds.Save(dir); err != nil {
		t.Fatal(err)
	}
	got, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.L != ds.L || got.PixelA != ds.PixelA || got.HasCTF != ds.HasCTF {
		t.Fatalf("meta mismatch: %+v", got)
	}
	if len(got.Views) != len(ds.Views) {
		t.Fatalf("view count %d, want %d", len(got.Views), len(ds.Views))
	}
	for i := range ds.Views {
		a, b := ds.Views[i], got.Views[i]
		for j := range a.Image.Data {
			if a.Image.Data[j] != b.Image.Data[j] {
				t.Fatalf("view %d pixel %d mismatch", i, j)
			}
		}
		if geom.AngularDistance(a.TrueOrient, b.TrueOrient) > 1e-6 {
			t.Fatalf("view %d orientation mismatch", i)
		}
		if a.TrueCenter != b.TrueCenter || a.Group != b.Group {
			t.Fatalf("view %d metadata mismatch", i)
		}
		if a.CTF.DefocusA != b.CTF.DefocusA {
			t.Fatalf("view %d defocus mismatch", i)
		}
	}
	for i := range ds.Truth.Data {
		if ds.Truth.Data[i] != got.Truth.Data[i] {
			t.Fatal("truth map mismatch")
		}
	}
}

func TestOrientationListRoundTrip(t *testing.T) {
	orients := []geom.Euler{{Theta: 10, Phi: 20, Omega: 30}, {Theta: 1.5, Phi: 359, Omega: 0.25}}
	centers := [][2]float64{{0.5, -1.25}, {0, 0}}
	path := filepath.Join(t.TempDir(), "orients.txt")
	if err := WriteOrientationList(path, orients, centers); err != nil {
		t.Fatal(err)
	}
	gotO, gotC, err := ReadOrientationList(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotO) != 2 || gotO[1] != orients[1] || gotC[0] != centers[0] {
		t.Fatalf("round-trip mismatch: %v %v", gotO, gotC)
	}
}

func TestLoadMissingDir(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Fatal("missing dataset accepted")
	}
}
