package micrograph

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/fft"
	"repro/internal/volume"
)

// Pick is one detected particle.
type Pick struct {
	// X, Y is the detected particle centre in field coordinates.
	X, Y float64
	// Score is the normalized template correlation at the peak.
	Score float64
}

// PickParticles locates spherical particles in a micrograph field by
// matched filtering — the automated particle identification of the
// paper's ref. [22] ("Identification of spherical particles in
// digitized images of entire micrographs"). A soft disk template of
// the given diameter is cross-correlated with the locally normalized
// field via FFT; peaks above threshold, separated by at least minDist
// pixels (greedy non-maximum suppression), become picks. Coordinates
// are refined to sub-pixel precision by parabolic interpolation.
//
// threshold is in normalized correlation units (0..1); 0.3–0.5 works
// for the synthetic micrographs of this package. minDist ≤ 0 defaults
// to the particle diameter.
func PickParticles(field *volume.Image, diameter float64, threshold, minDist float64) ([]Pick, error) {
	if diameter < 2 || diameter > float64(field.L) {
		return nil, fmt.Errorf("micrograph: implausible particle diameter %g for a %d-px field", diameter, field.L)
	}
	if minDist <= 0 {
		minDist = diameter
	}
	l := field.L

	// Zero-mean field (the template is matched against contrast, not
	// baseline).
	_, _, mean, std := field.Stats()
	if std == 0 {
		return nil, nil
	}
	f := volume.NewCImage(l)
	for i, v := range field.Data {
		f.Data[i] = complex((v-mean)/std, 0)
	}

	// Soft disk template, zero-mean so flat regions score zero.
	tmpl := volume.NewCImage(l)
	r := diameter / 2
	var tsum float64
	var tn int
	for j := 0; j < l; j++ {
		for k := 0; k < l; k++ {
			// Template centred at the origin with wraparound, so the
			// correlation peak lands at the particle centre.
			dj := float64(fft.FreqIndex(j, l))
			dk := float64(fft.FreqIndex(k, l))
			d := math.Hypot(dj, dk)
			v := 0.0
			if d < r {
				v = 1
			} else if d < r+2 {
				v = (r + 2 - d) / 2 // soft edge
			}
			tmpl.Data[j*l+k] = complex(v, 0)
			tsum += v
			if v > 0 {
				tn++
			}
		}
	}
	if tn == 0 {
		return nil, nil
	}
	tmean := tsum / float64(l*l)
	var tenergy float64
	for i := range tmpl.Data {
		v := real(tmpl.Data[i]) - tmean
		tmpl.Data[i] = complex(v, 0)
		tenergy += v * v
	}

	// FFT cross-correlation: corr = IFFT(F · conj(T)).
	plan := fft.NewPlan2D(l, l)
	plan.Forward(f.Data)
	plan.Forward(tmpl.Data)
	for i := range f.Data {
		t := tmpl.Data[i]
		f.Data[i] *= complex(real(t), -imag(t))
	}
	plan.Inverse(f.Data)
	norm := 1 / (math.Sqrt(tenergy) * math.Sqrt(float64(tn)))

	// Collect local maxima above threshold.
	at := func(j, k int) float64 {
		return real(f.Data[((j+l)%l)*l+(k+l)%l]) * norm
	}
	var cands []Pick
	for j := 0; j < l; j++ {
		for k := 0; k < l; k++ {
			v := at(j, k)
			if v < threshold {
				continue
			}
			if v < at(j-1, k) || v < at(j+1, k) || v < at(j, k-1) || v < at(j, k+1) {
				continue
			}
			// Sub-pixel refinement.
			oj := vertex(at(j-1, k), v, at(j+1, k))
			ok := vertex(at(j, k-1), v, at(j, k+1))
			cands = append(cands, Pick{X: float64(j) + oj, Y: float64(k) + ok, Score: v})
		}
	}
	sort.Slice(cands, func(a, b int) bool { return cands[a].Score > cands[b].Score })

	// Greedy non-maximum suppression.
	var picks []Pick
	min2 := minDist * minDist
	for _, c := range cands {
		keep := true
		for _, p := range picks {
			dx, dy := c.X-p.X, c.Y-p.Y
			if dx*dx+dy*dy < min2 {
				keep = false
				break
			}
		}
		if keep {
			picks = append(picks, c)
		}
	}
	return picks, nil
}

// vertex is the parabolic sub-sample peak offset in [−0.5, 0.5].
func vertex(ym, y0, yp float64) float64 {
	den := ym - 2*y0 + yp
	if den >= 0 {
		return 0
	}
	off := 0.5 * (ym - yp) / den
	return math.Max(-0.5, math.Min(0.5, off))
}

// MatchPicks greedily pairs detected picks with true particle centres
// within tol pixels and reports recall (found true particles /
// total true particles) and precision (matched picks / total picks).
func MatchPicks(picks []Pick, actual [][2]float64, tol float64) (recall, precision float64) {
	if len(actual) == 0 || len(picks) == 0 {
		return 0, 0
	}
	used := make([]bool, len(actual))
	matched := 0
	for _, p := range picks {
		for i, a := range actual {
			if used[i] {
				continue
			}
			if math.Hypot(p.X-a[0], p.Y-a[1]) <= tol {
				used[i] = true
				matched++
				break
			}
		}
	}
	return float64(matched) / float64(len(actual)), float64(matched) / float64(len(picks))
}
