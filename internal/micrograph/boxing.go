package micrograph

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/volume"
)

// Micrograph is a large synthetic field image containing many particle
// projections at jittered positions — what the microscope's CCD
// records (one micrograph holds "real images of many identical virus
// particles frozen in the sample in different orientations").
type Micrograph struct {
	Field *volume.Image
	// Nominal are the intended particle positions (grid points); the
	// actual particles are jittered around them, which is what makes
	// boxing and centring non-trivial.
	Nominal [][2]int
	// Actual are the true particle centres after jitter.
	Actual [][2]float64
	// BoxSize is the particle image edge length used at synthesis.
	BoxSize int
}

// MakeMicrograph lays the dataset's views out on a rows×cols grid with
// the given spacing, adding jitter to the true particle positions.
// At most rows·cols views are placed.
func MakeMicrograph(ds *Dataset, rows, cols int, jitter float64, seed int64) *Micrograph {
	l := ds.L
	spacing := l + l/4
	field := volume.NewImage(rows*spacing + l)
	if field.L < cols*spacing+l {
		field = volume.NewImage(cols*spacing + l)
	}
	rng := rand.New(rand.NewSource(seed))
	mg := &Micrograph{Field: field, BoxSize: l}
	n := 0
	for r := 0; r < rows && n < len(ds.Views); r++ {
		for c := 0; c < cols && n < len(ds.Views); c++ {
			ox := r*spacing + l/2
			oy := c*spacing + l/2
			jx := (2*rng.Float64() - 1) * jitter
			jy := (2*rng.Float64() - 1) * jitter
			im := ds.Views[n].Image
			// Paste the view so its centre lands at (ox+jx, oy+jy).
			for j := 0; j < l; j++ {
				for k := 0; k < l; k++ {
					fx := ox + j - l/2
					fy := oy + k - l/2
					if fx >= 0 && fx < field.L && fy >= 0 && fy < field.L {
						field.Add(fx, fy, im.Interp(float64(j)-jx, float64(k)-jy))
					}
				}
			}
			mg.Nominal = append(mg.Nominal, [2]int{ox, oy})
			mg.Actual = append(mg.Actual, [2]float64{float64(ox) + jx, float64(oy) + jy})
			n++
		}
	}
	return mg
}

// BoxParticle extracts an l×l box centred on the given nominal
// position. Positions too close to the field edge return an error.
func (mg *Micrograph) BoxParticle(pos [2]int) (*volume.Image, error) {
	l := mg.BoxSize
	x0, y0 := pos[0]-l/2, pos[1]-l/2
	if x0 < 0 || y0 < 0 || x0+l > mg.Field.L || y0+l > mg.Field.L {
		return nil, fmt.Errorf("micrograph: box at (%d,%d) exceeds field", pos[0], pos[1])
	}
	out := volume.NewImage(l)
	for j := 0; j < l; j++ {
		for k := 0; k < l; k++ {
			out.Set(j, k, mg.Field.At(x0+j, y0+k))
		}
	}
	return out, nil
}

// BoxAll extracts every nominal particle and pre-centres each box by
// its centre of mass, returning the boxed images and the estimated
// particle centres in field coordinates (step A: "extract individual
// particle projections from micrographs and identify the center of
// each projection").
func (mg *Micrograph) BoxAll() ([]*volume.Image, [][2]float64, error) {
	var images []*volume.Image
	var centers [][2]float64
	for _, pos := range mg.Nominal {
		im, err := mg.BoxParticle(pos)
		if err != nil {
			return nil, nil, err
		}
		cx, cy := im.CenterOfMass()
		images = append(images, im)
		centers = append(centers, [2]float64{
			float64(pos[0]-mg.BoxSize/2) + cx,
			float64(pos[1]-mg.BoxSize/2) + cy,
		})
	}
	return images, centers, nil
}

// CenteringError reports the mean distance in pixels between estimated
// and true particle centres — the quality of step A's centring.
func CenteringError(estimated, actual [][2]float64) float64 {
	if len(estimated) != len(actual) {
		panic("micrograph: center list length mismatch")
	}
	var sum float64
	for i := range estimated {
		dx := estimated[i][0] - actual[i][0]
		dy := estimated[i][1] - actual[i][1]
		sum += math.Hypot(dx, dy)
	}
	return sum / float64(len(estimated))
}
