package micrograph

import (
	"math"
	"testing"

	"repro/internal/phantom"
	"repro/internal/volume"
)

func pickingField(t *testing.T, nViews int, snr float64) (*Micrograph, float64) {
	t.Helper()
	truth := phantom.SindbisLike(24)
	ds := Generate(truth, GenParams{NumViews: nViews, PixelA: 2.5, SNR: snr, Seed: 51})
	mg := MakeMicrograph(ds, 3, 3, 2.0, 52)
	// The particle's visible diameter: the capsid shell spans ~0.8·l.
	return mg, 0.8 * 24
}

func TestPickParticlesCleanField(t *testing.T) {
	mg, diam := pickingField(t, 9, 0)
	picks, err := PickParticles(mg.Field, diam, 0.3, 0)
	if err != nil {
		t.Fatal(err)
	}
	recall, precision := MatchPicks(picks, mg.Actual, 4)
	if recall < 0.99 {
		t.Fatalf("recall %.2f on a clean field (found %d of %d)", recall, len(picks), len(mg.Actual))
	}
	if precision < 0.99 {
		t.Fatalf("precision %.2f on a clean field (%d picks)", precision, len(picks))
	}
	// Positions must be accurate to a couple of pixels.
	var worst float64
	for _, a := range mg.Actual {
		best := math.Inf(1)
		for _, p := range picks {
			if d := math.Hypot(p.X-a[0], p.Y-a[1]); d < best {
				best = d
			}
		}
		if best > worst {
			worst = best
		}
	}
	if worst > 2.5 {
		t.Fatalf("worst pick position error %.2f px", worst)
	}
}

func TestPickParticlesNoisyField(t *testing.T) {
	mg, diam := pickingField(t, 9, 1.0)
	picks, err := PickParticles(mg.Field, diam, 0.25, 0)
	if err != nil {
		t.Fatal(err)
	}
	recall, _ := MatchPicks(picks, mg.Actual, 5)
	if recall < 0.8 {
		t.Fatalf("recall %.2f on a noisy field", recall)
	}
}

func TestPickParticlesEmptyField(t *testing.T) {
	field := volume.NewImage(96)
	picks, err := PickParticles(field, 20, 0.3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(picks) != 0 {
		t.Fatalf("flat field produced %d picks", len(picks))
	}
}

func TestPickParticlesSuppression(t *testing.T) {
	mg, diam := pickingField(t, 9, 0)
	picks, err := PickParticles(mg.Field, diam, 0.15, 0)
	if err != nil {
		t.Fatal(err)
	}
	// No two surviving picks may be closer than the particle diameter.
	for i := range picks {
		for j := i + 1; j < len(picks); j++ {
			if d := math.Hypot(picks[i].X-picks[j].X, picks[i].Y-picks[j].Y); d < diam {
				t.Fatalf("picks %d and %d only %.1f px apart", i, j, d)
			}
		}
	}
}

func TestPickParticlesValidation(t *testing.T) {
	field := volume.NewImage(32)
	if _, err := PickParticles(field, 1, 0.3, 0); err == nil {
		t.Fatal("tiny diameter accepted")
	}
	if _, err := PickParticles(field, 64, 0.3, 0); err == nil {
		t.Fatal("oversized diameter accepted")
	}
}

func TestMatchPicksDegenerate(t *testing.T) {
	if r, p := MatchPicks(nil, [][2]float64{{1, 1}}, 2); r != 0 || p != 0 {
		t.Fatal("empty picks should score zero")
	}
	if r, p := MatchPicks([]Pick{{X: 1, Y: 1}}, nil, 2); r != 0 || p != 0 {
		t.Fatal("empty actual should score zero")
	}
}
