// Package micrograph simulates the experimental data-acquisition side
// of the pipeline that cannot be reproduced from the paper: cryo-TEM
// micrographs of frozen-hydrated virus particles. It generates
// synthetic particle views by projecting a known ground-truth density
// at random orientations, shifting them off-centre, corrupting them
// with the microscope CTF and additive Gaussian noise — and it can lay
// those views out on a large synthetic micrograph and box them back
// out (step A of the structure-determination procedure), including
// centre-of-mass pre-centring.
//
// Because the particles come from a known map at known orientations,
// every downstream experiment can report true angular and centre
// errors, something the original work could only infer indirectly.
package micrograph

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/ctf"
	"repro/internal/fourier"
	"repro/internal/geom"
	"repro/internal/projection"
	"repro/internal/volume"
)

// View is one synthetic "experimental" particle image with its ground
// truth attached.
type View struct {
	Image *volume.Image
	// TrueOrient is the orientation the projection was made at.
	TrueOrient geom.Euler
	// TrueCenter is the applied centre offset in pixels (dx, dy): the
	// particle origin sits at (l/2 + dx, l/2 + dy).
	TrueCenter [2]float64
	// CTF holds the microscope parameters of the view's micrograph
	// (views from the same defocus group share identical values).
	CTF ctf.Params
	// Group is the defocus-group (micrograph) index.
	Group int
}

// Dataset is a full synthetic single-particle dataset.
type Dataset struct {
	L      int
	PixelA float64
	Truth  *volume.Grid
	Views  []*View
	// HasCTF records whether views were CTF-corrupted.
	HasCTF bool
}

// GenParams controls dataset synthesis.
type GenParams struct {
	NumViews int
	// PixelA is the sampling in Å/pixel (sets the resolution scale of
	// FSC plots).
	PixelA float64
	// SNR is the per-pixel signal-to-noise power ratio; <=0 disables
	// noise.
	SNR float64
	// CenterJitter is the maximum |dx|,|dy| centre offset in pixels.
	CenterJitter float64
	// ApplyCTF corrupts views with the microscope transfer function.
	ApplyCTF bool
	// DefocusGroups is the number of distinct micrographs (defocus
	// values) when ApplyCTF is set; minimum 1.
	DefocusGroups int
	// Seed makes generation reproducible.
	Seed int64
}

// RandomOrientation draws an orientation uniformly over SO(3): the
// view axis uniform on the sphere, ω uniform in [0, 360).
func RandomOrientation(rng *rand.Rand) geom.Euler {
	cos := 2*rng.Float64() - 1
	return geom.Euler{
		Theta: geom.RadToDeg(math.Acos(cos)),
		Phi:   rng.Float64() * 360,
		Omega: rng.Float64() * 360,
	}
}

// Generate synthesizes a dataset of p.NumViews views of the truth map.
func Generate(truth *volume.Grid, p GenParams) *Dataset {
	if p.NumViews < 1 {
		panic(fmt.Sprintf("micrograph: invalid view count %d", p.NumViews))
	}
	groups := p.DefocusGroups
	if groups < 1 {
		groups = 1
	}
	rng := rand.New(rand.NewSource(p.Seed))
	l := truth.L
	ds := &Dataset{L: l, PixelA: p.PixelA, Truth: truth, HasCTF: p.ApplyCTF}
	// Per-group defocus spread around the typical value.
	params := make([]ctf.Params, groups)
	for i := range params {
		params[i] = ctf.Typical(p.PixelA)
		params[i].DefocusA *= 0.8 + 0.4*rng.Float64()
	}
	for i := 0; i < p.NumViews; i++ {
		o := RandomOrientation(rng)
		var dx, dy float64
		if p.CenterJitter > 0 {
			dx = (2*rng.Float64() - 1) * p.CenterJitter
			dy = (2*rng.Float64() - 1) * p.CenterJitter
		}
		g := rng.Intn(groups)
		im := synthesize(truth, o, dx, dy, params[g], p.ApplyCTF)
		if p.SNR > 0 {
			addNoise(im, p.SNR, rng)
		}
		ds.Views = append(ds.Views, &View{
			Image:      im,
			TrueOrient: o,
			TrueCenter: [2]float64{dx, dy},
			CTF:        params[g],
			Group:      g,
		})
	}
	return ds
}

// synthesize projects, shifts, and optionally CTF-corrupts one view.
func synthesize(truth *volume.Grid, o geom.Euler, dx, dy float64, p ctf.Params, applyCTF bool) *volume.Image {
	im := projection.Real(truth, o)
	if dx == 0 && dy == 0 && !applyCTF {
		return im
	}
	f := fourier.ImageDFT(im)
	if dx != 0 || dy != 0 {
		fourier.ShiftPhase(f, dx, dy)
	}
	if applyCTF {
		ctf.Apply(f, p)
	}
	return fourier.InverseImageDFT(f)
}

// addNoise adds white Gaussian noise at the requested power SNR
// relative to the image variance.
func addNoise(im *volume.Image, snr float64, rng *rand.Rand) {
	_, _, _, std := im.Stats()
	sigma := std / math.Sqrt(snr)
	for i := range im.Data {
		im.Data[i] += sigma * rng.NormFloat64()
	}
}

// PerturbedOrientations returns each view's true orientation displaced
// by up to maxAngle degrees per Euler axis — the "rough estimation of
// the orientation, say at 3° angular resolution" that refinement
// starts from.
func (ds *Dataset) PerturbedOrientations(maxAngle float64, seed int64) []geom.Euler {
	rng := rand.New(rand.NewSource(seed))
	out := make([]geom.Euler, len(ds.Views))
	for i, v := range ds.Views {
		out[i] = geom.Euler{
			Theta: v.TrueOrient.Theta + (2*rng.Float64()-1)*maxAngle,
			Phi:   v.TrueOrient.Phi + (2*rng.Float64()-1)*maxAngle,
			Omega: v.TrueOrient.Omega + (2*rng.Float64()-1)*maxAngle,
		}
	}
	return out
}

// TrueOrientations returns the ground-truth orientation of every view.
func (ds *Dataset) TrueOrientations() []geom.Euler {
	out := make([]geom.Euler, len(ds.Views))
	for i, v := range ds.Views {
		out[i] = v.TrueOrient
	}
	return out
}

// Images returns the view images in dataset order.
func (ds *Dataset) Images() []*volume.Image {
	out := make([]*volume.Image, len(ds.Views))
	for i, v := range ds.Views {
		out[i] = v.Image
	}
	return out
}

// TiltSeries synthesizes a single-axis tilt series of the truth map:
// views at the given tilt angles (degrees) about the Y axis, exactly
// as computed tomography acquires them. This is the §2 contrast case —
// "the orientations and centers of the 2D images are known in CAT" —
// so the views carry exact orientations and no centre jitter, and
// reconstruction needs no orientation search at all. Real tilt stages
// cannot reach ±90°, so a limited angular range leaves the classical
// missing wedge in Fourier space.
func TiltSeries(truth *volume.Grid, tiltsDeg []float64, pixelA, snr float64, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	ds := &Dataset{L: truth.L, PixelA: pixelA, Truth: truth}
	for _, tilt := range tiltsDeg {
		o := geom.Euler{Theta: tilt, Phi: 0, Omega: 0}
		im := projection.Real(truth, o)
		if snr > 0 {
			addNoise(im, snr, rng)
		}
		ds.Views = append(ds.Views, &View{
			Image:      im,
			TrueOrient: o,
			CTF:        ctf.Typical(pixelA),
		})
	}
	return ds
}
