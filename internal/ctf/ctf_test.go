package ctf

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/fourier"
	"repro/internal/volume"
)

func TestWavelength(t *testing.T) {
	// Known values: 300 kV -> 0.0197 Å, 200 kV -> 0.0251 Å, 100 kV -> 0.0370 Å.
	cases := []struct{ kv, want float64 }{
		{300, 0.0197}, {200, 0.0251}, {100, 0.0370},
	}
	for _, c := range cases {
		p := Params{VoltageKV: c.kv}
		if got := p.Wavelength(); math.Abs(got-c.want) > 5e-4 {
			t.Errorf("λ(%g kV) = %.4f, want ≈%.4f", c.kv, got, c.want)
		}
	}
}

func TestEvalAtDC(t *testing.T) {
	p := Typical(2.0)
	// At s=0, γ=0: CTF = −A (pure amplitude contrast).
	if got := p.Eval(0); math.Abs(got+p.AmplitudeContrast) > 1e-12 {
		t.Fatalf("CTF(0) = %g, want %g", got, -p.AmplitudeContrast)
	}
}

func TestEvalOscillatesAndDecays(t *testing.T) {
	p := Typical(2.0)
	// The CTF must change sign at least twice below Nyquist (0.25 1/Å
	// at 2 Å/px) for typical defocus.
	signChanges := 0
	prev := p.Eval(0.001)
	for s := 0.002; s < 0.25; s += 0.001 {
		v := p.Eval(s)
		if (v > 0) != (prev > 0) {
			signChanges++
		}
		prev = v
	}
	if signChanges < 2 {
		t.Fatalf("CTF changed sign only %d times below Nyquist", signChanges)
	}
	// The B-factor envelope must attenuate high frequencies.
	if math.Abs(p.Eval(0.24)) > 1.0 {
		t.Fatal("envelope not attenuating")
	}
}

func TestFirstZeroReasonable(t *testing.T) {
	p := Typical(2.0)
	s0 := p.FirstZero()
	// 1.8 µm underfocus at 300 kV: first zero near 1/√(λ·Δf) ≈ 0.053
	// 1/Å (≈19 Å).
	if s0 < 0.03 || s0 > 0.08 {
		t.Fatalf("first zero at %g 1/Å, expected ≈0.053", s0)
	}
}

func TestPhaseFlipSquares(t *testing.T) {
	// Applying the CTF then phase flipping must leave every
	// coefficient with the sign it had before the microscope:
	// flip(c)·c = |c| ≥ 0.
	r := rand.New(rand.NewSource(1))
	l := 32
	im := volume.NewImage(l)
	for i := range im.Data {
		im.Data[i] = r.NormFloat64()
	}
	clean := fourier.ImageDFT(im)
	seen := clean.Clone()
	p := Typical(2.0)
	Apply(seen, p)
	if err := Correct(seen, p, PhaseFlip); err != nil {
		t.Fatal(err)
	}
	// Every corrected coefficient must be a non-negative multiple of
	// the clean one: Re(corrected·conj(clean)) ≥ 0.
	for i := range clean.Data {
		dot := real(seen.Data[i] * complex(real(clean.Data[i]), -imag(clean.Data[i])))
		if dot < -1e-9 {
			t.Fatalf("coefficient %d still phase-reversed after flip", i)
		}
	}
}

func TestWienerRestoresImage(t *testing.T) {
	// Wiener correction of a CTF-corrupted image must be closer to
	// the clean image than the corrupted one is.
	l := 32
	c := float64(l / 2)
	im := volume.NewImage(l)
	for j := 0; j < l; j++ {
		for k := 0; k < l; k++ {
			dx, dy := float64(j)-c, float64(k)-c
			im.Set(j, k, math.Exp(-(dx*dx+dy*dy)/20)+0.5*math.Exp(-((dx-5)*(dx-5)+dy*dy)/6))
		}
	}
	p := Typical(2.0)
	f := fourier.ImageDFT(im)
	Apply(f, p)
	corrupted := fourier.InverseImageDFT(f)
	if err := Correct(f, p, Wiener); err != nil {
		t.Fatal(err)
	}
	restored := fourier.InverseImageDFT(f)
	ccBad := volume.ImageCorrelation(im, corrupted)
	ccGood := volume.ImageCorrelation(im, restored)
	if ccGood <= ccBad {
		t.Fatalf("Wiener did not help: corrupted cc=%.4f restored cc=%.4f", ccBad, ccGood)
	}
	if ccGood < 0.9 {
		t.Fatalf("Wiener restoration too weak: cc=%.4f", ccGood)
	}
}

func TestCorrectUnknownMode(t *testing.T) {
	f := volume.NewCImage(4)
	if err := Correct(f, Typical(2), Correction(99)); err == nil {
		t.Fatal("unknown mode accepted")
	}
}

func TestFreqOfBin(t *testing.T) {
	p := Params{PixelSizeA: 2}
	// Nyquist bin of a 64-pixel image at 2 Å/px: 32/(64·2) = 0.25 1/Å.
	if got := p.FreqOfBin(32, 0, 64); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("Nyquist frequency %g, want 0.25", got)
	}
	if p.FreqOfBin(0, 0, 64) != 0 {
		t.Fatal("DC frequency not zero")
	}
}

func TestApplyPreservesHermitian(t *testing.T) {
	// The CTF is radially symmetric and real, so it preserves the
	// Hermitian symmetry of a real image's transform.
	r := rand.New(rand.NewSource(2))
	l := 16
	im := volume.NewImage(l)
	for i := range im.Data {
		im.Data[i] = r.NormFloat64()
	}
	f := fourier.ImageDFT(im)
	Apply(f, Typical(3))
	for j := 0; j < l; j++ {
		for k := 0; k < l; k++ {
			a := f.Data[j*l+k]
			b := f.Data[((l-j)%l)*l+(l-k)%l]
			if math.Abs(real(a)-real(b)) > 1e-9 || math.Abs(imag(a)+imag(b)) > 1e-9 {
				t.Fatalf("Hermitian symmetry broken at (%d,%d)", j, k)
			}
		}
	}
}
