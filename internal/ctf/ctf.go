// Package ctf models the contrast transfer function of a transmission
// electron microscope and the corrections applied to experimental
// views before orientation matching (paper step e).
//
// The CTF is the oscillatory function that multiplies the Fourier
// transform of a TEM image: defocusing, used to generate phase
// contrast for unstained specimens, reverses phases and attenuates
// amplitudes in alternating resolution zones, and must be compensated
// before comparing experimental transforms with cuts of the reference
// map. The standard weak-phase-object model is
//
//	CTF(s) = −[√(1−A²)·sin γ(s) + A·cos γ(s)]·exp(−B·s²/4)
//	γ(s)   = π·λ·Δf·s² − (π/2)·Cs·λ³·s⁴
//
// with spatial frequency s in 1/Å, electron wavelength λ from the
// accelerating voltage, defocus Δf (positive = underfocus), spherical
// aberration Cs, amplitude-contrast fraction A, and B-factor envelope.
package ctf

import (
	"fmt"
	"math"

	"repro/internal/fft"
	"repro/internal/volume"
)

// Params describes one microscope/micrograph setting. All views boxed
// from the same micrograph share one Params (the paper: "views
// originated from the same micrograph have the same CTF").
type Params struct {
	// VoltageKV is the accelerating voltage in kilovolts.
	VoltageKV float64
	// DefocusA is the defocus in Ångström (positive = underfocus).
	DefocusA float64
	// CsMM is the spherical-aberration coefficient in millimetres.
	CsMM float64
	// AmplitudeContrast is the amplitude-contrast fraction A ∈ [0,1).
	AmplitudeContrast float64
	// BFactor is the envelope decay in Å².
	BFactor float64
	// PixelSizeA is the sampling of the image in Å/pixel.
	PixelSizeA float64
}

// Typical returns microscope settings typical of the cryo-TEM data the
// paper used: 300 kV, 1.8 µm underfocus, Cs 2.0 mm, 7 % amplitude
// contrast, mild envelope, at the given pixel size.
func Typical(pixelA float64) Params {
	return Params{
		VoltageKV:         300,
		DefocusA:          18000,
		CsMM:              2.0,
		AmplitudeContrast: 0.07,
		BFactor:           100,
		PixelSizeA:        pixelA,
	}
}

// Wavelength returns the relativistic electron wavelength in Å.
func (p Params) Wavelength() float64 {
	v := p.VoltageKV * 1e3
	return 12.2639 / math.Sqrt(v*(1+0.97845e-6*v))
}

// Eval returns the CTF value at spatial frequency s (1/Å).
func (p Params) Eval(s float64) float64 {
	lambda := p.Wavelength()
	cs := p.CsMM * 1e7 // mm -> Å
	s2 := s * s
	gamma := math.Pi*lambda*p.DefocusA*s2 - 0.5*math.Pi*cs*lambda*lambda*lambda*s2*s2
	a := p.AmplitudeContrast
	env := math.Exp(-p.BFactor * s2 / 4)
	return -(math.Sqrt(1-a*a)*math.Sin(gamma) + a*math.Cos(gamma)) * env
}

// FreqOfBin returns the spatial frequency in 1/Å of Fourier bin
// (h, k) of an l×l image sampled at the params' pixel size, where h
// and k are signed frequency indices.
func (p Params) FreqOfBin(h, k, l int) float64 {
	r := math.Hypot(float64(h), float64(k))
	return r / (float64(l) * p.PixelSizeA)
}

// Correction selects how Correct compensates the transfer function.
type Correction int

const (
	// PhaseFlip multiplies each coefficient by the sign of the CTF,
	// undoing phase reversals but leaving amplitudes attenuated —
	// the cheap classical correction.
	PhaseFlip Correction = iota
	// Wiener divides by the CTF with regularization,
	// c/(c²+ε), restoring amplitudes where the signal allows.
	Wiener
)

// wienerEpsilon regularizes the Wiener filter near CTF zeros.
const wienerEpsilon = 0.1

// Apply multiplies the centred image transform f by the CTF —
// simulating the microscope's effect on a clean projection.
func Apply(f *volume.CImage, p Params) {
	mapCTF(f, p, func(c float64) float64 { return c })
}

// Correct compensates the CTF on the centred image transform f using
// the chosen correction mode.
func Correct(f *volume.CImage, p Params, mode Correction) error {
	switch mode {
	case PhaseFlip:
		mapCTF(f, p, func(c float64) float64 {
			if c < 0 {
				return -1
			}
			if c > 0 {
				return 1
			}
			return 0
		})
	case Wiener:
		mapCTF(f, p, func(c float64) float64 {
			return c / (c*c + wienerEpsilon)
		})
	default:
		return fmt.Errorf("ctf: unknown correction mode %d", mode)
	}
	return nil
}

// mapCTF multiplies every coefficient of f by fn(CTF(s)) at the bin's
// spatial frequency.
func mapCTF(f *volume.CImage, p Params, fn func(float64) float64) {
	l := f.L
	for j := 0; j < l; j++ {
		h := fft.FreqIndex(j, l)
		for k := 0; k < l; k++ {
			kk := fft.FreqIndex(k, l)
			s := p.FreqOfBin(h, kk, l)
			f.Data[j*l+k] *= complex(fn(p.Eval(s)), 0)
		}
	}
}

// FirstZero returns the spatial frequency (1/Å) of the first CTF zero
// beyond DC, found numerically. Reported resolutions finer than this
// require correction across zones.
func (p Params) FirstZero() float64 {
	prev := p.Eval(1e-6)
	const step = 1e-5
	for s := step; s < 2; s += step {
		v := p.Eval(s)
		if (v > 0) != (prev > 0) && s > 1e-4 {
			return s
		}
		if v != 0 {
			prev = v
		}
	}
	return math.Inf(1)
}
