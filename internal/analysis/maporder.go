package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MapOrder protects the bit-reproducibility of floating-point results
// (the (radius,h,k) band sort of PR 1 and the rank-ordered charging of
// PR 2 exist for exactly this): Go randomizes map iteration order, so
// a `range` over a map that feeds a float accumulation, a slice
// append, or a channel send makes the resulting float sum, slice
// layout or message order differ run to run. In numeric packages the
// fix is to iterate a sorted key slice (or collect keys
// deterministically at insert time) instead.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc: "in numeric packages, ranging over a map may not feed float accumulations, " +
		"slice appends or channel sends — map order is randomized; iterate sorted keys",
	Run: runMapOrder,
}

func runMapOrder(pass *Pass) {
	for _, pkg := range pass.Pkgs {
		if !pass.Config.matches(pass.Config.NumericPaths, pkg.Path) {
			continue
		}
		info := pkg.Info
		for _, file := range pkg.Files {
			if isTestFile(pass.Fset, file) {
				continue
			}
			ast.Inspect(file, func(n ast.Node) bool {
				rs, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				tv, ok := info.Types[rs.X]
				if !ok {
					return true
				}
				if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
					return true
				}
				checkMapRangeBody(pass, info, rs.Body)
				return true
			})
		}
	}
}

// checkMapRangeBody reports order-sensitive operations inside the body
// of a map range.
func checkMapRangeBody(pass *Pass, info *types.Info, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.SendStmt:
			pass.Reportf(s.Pos(), "channel send inside a map range: receive order depends on randomized map iteration")
		case *ast.AssignStmt:
			switch s.Tok {
			case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
				for _, lhs := range s.Lhs {
					if tv, ok := info.Types[lhs]; ok && isFloatOrComplex(tv.Type) {
						pass.Reportf(s.Pos(), "float accumulation inside a map range: the sum depends on randomized map iteration order")
						break
					}
				}
			case token.ASSIGN, token.DEFINE:
				for _, rhs := range s.Rhs {
					if call, ok := rhs.(*ast.CallExpr); ok && isBuiltinAppend(info, call) {
						pass.Reportf(s.Pos(), "slice append inside a map range: element order depends on randomized map iteration")
					}
				}
			}
		}
		return true
	})
}

func isFloatOrComplex(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	return b.Info()&(types.IsFloat|types.IsComplex) != 0
}

func isBuiltinAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}
