package analysis

import (
	"os"
	"testing"
)

// TestLiveTreeClean runs the full suite over the real module — the same
// invocation as `go run ./cmd/replint ./...` — and requires it to come
// back empty. This is the gate that keeps the production tree honest:
// any new violation must either be fixed or carry a reasoned
// //replint:allow before tests pass.
func TestLiveTreeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root, err := FindModuleRoot(wd)
	if err != nil {
		t.Fatal(err)
	}
	modPath, err := ModulePath(root)
	if err != nil {
		t.Fatal(err)
	}
	loader, err := NewLoader(root, modPath)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	findings := Run(loader.Fset, pkgs, All(), DefaultConfig())
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}
