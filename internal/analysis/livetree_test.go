package analysis

import (
	"os"
	"testing"
)

// loadLiveTree loads the real module — the same invocation as
// `go run ./cmd/replint ./...`.
func loadLiveTree(t *testing.T) *Loader {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root, err := FindModuleRoot(wd)
	if err != nil {
		t.Fatal(err)
	}
	modPath, err := ModulePath(root)
	if err != nil {
		t.Fatal(err)
	}
	loader, err := NewLoader(root, modPath)
	if err != nil {
		t.Fatal(err)
	}
	return loader
}

// TestLiveTreeClean runs the full suite over the real module and
// requires it to come back empty — load diagnostics included, so a
// package that stops type-checking fails this test rather than
// silently shrinking the analyzed tree. This is the gate that keeps
// the production tree honest: any new violation must either be fixed
// or carry a reasoned //replint:allow before tests pass.
func TestLiveTreeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	loader := loadLiveTree(t)
	pkgs, err := loader.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	findings := Run(loader.Fset, pkgs, All(), DefaultConfig())
	findings = append(findings, DiagnosticFindings(loader.Diagnostics())...)
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}

// TestPoolCtxLeakNegative pins ctxleak's WaitGroup exemption against
// the real bounded fan-out/fan-in loop: internal/pool launches plain
// counting workers with no channel or context in sight, and only the
// launcher-side wg.Wait makes that legal.
func TestPoolCtxLeakNegative(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks part of the module")
	}
	loader := loadLiveTree(t)
	pkg, err := loader.Load("repro/internal/pool")
	if err != nil {
		t.Fatal(err)
	}
	findings := Run(loader.Fset, []*Package{pkg}, []*Analyzer{CtxLeak}, DefaultConfig())
	for _, f := range findings {
		t.Errorf("unexpected ctxleak finding in internal/pool: %s", f)
	}
}
