package analysis

import (
	"encoding/json"
	"path/filepath"
	"sort"
	"strings"
)

// SARIF (Static Analysis Results Interchange Format) 2.1.0 export,
// the interchange shape GitHub code scanning ingests for inline PR
// annotations. Only the stdlib-expressible subset is emitted: one run,
// one tool driver ("replint") with a reportingDescriptor per analyzer,
// and one result per finding with a physical location relative to the
// module root.

const (
	sarifVersion   = "2.1.0"
	sarifSchemaURI = "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json"
)

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// SARIF renders findings as a SARIF 2.1.0 log. root, when non-empty,
// is stripped from file paths so URIs come out repo-relative with
// forward slashes — the form GitHub's annotation mapper needs. The
// rules table lists every analyzer given (typically All()), plus
// pseudo-rules for any finding whose analyzer is not in the list
// ("suppression", "load"), so every result's ruleId resolves.
func SARIF(findings []Finding, analyzers []*Analyzer, root string) ([]byte, error) {
	rules := make([]sarifRule, 0, len(analyzers)+2)
	seen := map[string]bool{}
	for _, a := range analyzers {
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifMessage{Text: a.Doc}})
		seen[a.Name] = true
	}
	var extra []string
	for _, f := range findings {
		if !seen[f.Analyzer] {
			seen[f.Analyzer] = true
			extra = append(extra, f.Analyzer)
		}
	}
	sort.Strings(extra)
	for _, name := range extra {
		doc := "replint pseudo-rule"
		switch name {
		case "suppression":
			doc = "a //replint:allow comment without an analyzer name or a written reason"
		case "load":
			doc = "a package the loader had to skip; the analysis of the module is partial"
		}
		rules = append(rules, sarifRule{ID: name, ShortDescription: sarifMessage{Text: doc}})
	}
	sort.Slice(rules, func(a, b int) bool { return rules[a].ID < rules[b].ID })

	results := make([]sarifResult, 0, len(findings))
	for _, f := range findings {
		uri := relPath(root, f.Pos.Filename)
		line := f.Pos.Line
		if line < 1 {
			line = 1 // SARIF requires startLine ≥ 1; diagnostics may lack one
		}
		results = append(results, sarifResult{
			RuleID:  f.Analyzer,
			Level:   "error",
			Message: sarifMessage{Text: f.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{URI: uri},
					Region:           sarifRegion{StartLine: line, StartColumn: f.Pos.Column},
				},
			}},
		})
	}

	log := sarifLog{
		Schema:  sarifSchemaURI,
		Version: sarifVersion,
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "replint", Rules: rules}},
			Results: results,
		}},
	}
	return json.MarshalIndent(log, "", "  ")
}

// relPath renders filename relative to root with forward slashes;
// files outside root (or with an unknown root) keep their absolute
// path, still slash-normalized.
func relPath(root, filename string) string {
	if filename == "" {
		return "unknown"
	}
	if root != "" {
		if r, err := filepath.Rel(root, filename); err == nil && !strings.HasPrefix(r, "..") {
			return filepath.ToSlash(r)
		}
	}
	return filepath.ToSlash(filename)
}
