package analysis

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeTree lays out a fixture module in a temp dir. Broken sources
// are generated here rather than checked in under testdata, where they
// would trip gofmt and editor tooling.
func writeTree(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// TestLoadDiagnostics pins the partial-module contract: packages that
// fail to parse or type-check do not vanish — each surfaces as a
// LoadDiagnostic with a file:line, convertible to a "load" finding —
// while healthy packages still load and get analyzed.
func TestLoadDiagnostics(t *testing.T) {
	dir := writeTree(t, map[string]string{
		"good/good.go":         "package good\n\nfunc Fine() int { return 1 }\n",
		"badparse/badparse.go": "package badparse\n\nfunc Broken( {\n",
		"badtypes/badtypes.go": "package badtypes\n\nvar X int = \"not an int\"\n",
	})
	loader, err := NewLoader(dir, "m")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 || pkgs[0].Path != "m/good" {
		t.Fatalf("loaded packages = %v, want just m/good", pkgs)
	}

	diags := loader.Diagnostics()
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics, want 2: %v", len(diags), diags)
	}
	if diags[0].Path != "m/badparse" || diags[1].Path != "m/badtypes" {
		t.Fatalf("diagnostic order = %s, %s; want m/badparse, m/badtypes", diags[0].Path, diags[1].Path)
	}
	for _, d := range diags {
		if d.Pos.Filename == "" || d.Pos.Line == 0 {
			t.Errorf("diagnostic for %s has no file:line: %s", d.Path, d)
		}
	}

	findings := DiagnosticFindings(diags)
	if len(findings) != 2 {
		t.Fatalf("got %d load findings, want 2", len(findings))
	}
	for _, f := range findings {
		if f.Analyzer != "load" {
			t.Errorf("finding analyzer = %q, want load", f.Analyzer)
		}
		if !strings.Contains(f.Message, "analysis is partial") {
			t.Errorf("finding message %q does not state the analysis is partial", f.Message)
		}
	}
}

// TestLoadDiagnosticsCachedFailure pins that a failed package stays
// failed (one diagnostic, not one per retry) when re-requested, e.g.
// as an import of a healthy package.
func TestLoadDiagnosticsCachedFailure(t *testing.T) {
	dir := writeTree(t, map[string]string{
		"broken/broken.go": "package broken\n\nvar X int = \"s\"\n",
		"user/user.go":     "package user\n\nimport \"m/broken\"\n\nvar Y = broken.X\n",
	})
	loader, err := NewLoader(dir, "m")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := loader.LoadAll(); err != nil {
		t.Fatal(err)
	}
	diags := loader.Diagnostics()
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics, want 2 (broken once, user once): %v", len(diags), diags)
	}
	if diags[0].Path != "m/broken" || diags[1].Path != "m/user" {
		t.Fatalf("diagnostic paths = %s, %s", diags[0].Path, diags[1].Path)
	}
}
