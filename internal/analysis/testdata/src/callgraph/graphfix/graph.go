// Package graphfix exercises every edge-resolution rule of the module
// call graph. TestCallGraphResolution asserts the edge set directly,
// so this fixture carries no want comments — and must stay free of
// anything the regular analyzers would flag.
package graphfix

type Counter struct{ n int }

func (c *Counter) Inc() { c.n++ }

func (c Counter) Get() int { return c.n }

type Incer interface{ Inc() }

func helper() int { return 1 }

func other() int { return 2 }

// Direct: plain call of a declared function.
func Direct() int { return helper() }

// MethodCall: method call through a concrete receiver.
func MethodCall(c *Counter) { c.Inc() }

// MethodValue: a method value bound to a single-assignment local.
func MethodValue(c *Counter) {
	f := c.Inc
	f()
}

// MethodExpr: a method expression through a single-assignment local.
func MethodExpr(c Counter) int {
	g := Counter.Get
	return g(c)
}

// StoredFunc: a function value stored once, then called.
func StoredFunc() int {
	h := helper
	return h()
}

// Reassigned: two assignments — resolution must refuse to guess, so
// neither helper nor other gets an edge.
func Reassigned(flag bool) int {
	h := helper
	if flag {
		h = other
	}
	return h()
}

// Iface: interface dispatch has no static callee, so no edge.
func Iface(i Incer) { i.Inc() }

// Loop: self-recursion is a self-edge.
func Loop(n int) int {
	if n == 0 {
		return 0
	}
	return Loop(n - 1)
}
