// Package cycle is a simclock fixture: its import path contains
// "internal/cycle", the outer-loop driver scope — wall-clock reads and
// the global rand source are banned there just as in the refinement
// core, because the multi-cycle resume contract is bit-identity.
package cycle

import (
	"math/rand"
	"time"
)

// Stamp reads the wall clock — the canonical violation.
func Stamp() int64 {
	return time.Now().UnixNano() // want simclock "time.Now reads the wall clock"
}

// Jitter draws from the process-global source, whose state depends on
// every other draw in the process.
func Jitter() float64 {
	return rand.Float64() // want simclock "rand.Float64 draws from the global source"
}

// SeededJitter is the compliant randomness shape: an explicitly seeded
// source, whose method calls are exempt.
func SeededJitter(seed int64) float64 {
	r := rand.New(rand.NewSource(seed))
	return r.Float64()
}

// TickOf is the injectable-clock shape the production driver uses: the
// caller supplies the clock reading, so the function stays pure.
func TickOf(clock func() float64) float64 {
	return clock() * 2
}
