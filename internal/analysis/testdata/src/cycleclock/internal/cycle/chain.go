// chain.go is the interprocedural half of the fixture: the driver
// reaching the kernel's trace-span clock transitively, and the
// reasoned waiver the production fullMap/halfMaps wrappers carry.
package cycle

import "recon"

// FullMap reaches the wall clock through the out-of-scope kernel.
func FullMap() int64 {
	return recon.Finish() // want simclock "call chain cycle.FullMap → recon.Finish"
}

// WaivedMap carries the same chain but waives it with a reasoned
// same-line suppression — the production driver's shape, where the
// span is observability-only and the map bytes are clock-independent.
func WaivedMap() int64 {
	return recon.Finish() //replint:allow simclock trace span reads wall time only for observability
}
