// Package recon stands in for the reconstruction kernel: it is outside
// the simclock scope, so its trace-span wall-clock read is legal where
// it lives — and becomes a laundering path the moment driver code
// calls it.
package recon

import "time"

// Finish stamps a trace span with the wall clock, the shape of
// reconstruct.Sharded.Finish.
func Finish() int64 {
	return time.Now().UnixNano()
}
