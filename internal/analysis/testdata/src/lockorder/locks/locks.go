// Package locks is the lockorder fixture: pair demonstrates the
// direct A→B / B→A conflict, tree the same conflict where one side
// acquires through a callee, and ordered the compliant shape — one
// module-wide order, deferred unlocks included.
package locks

import "sync"

type pair struct {
	a sync.Mutex
	b sync.Mutex
}

// AB takes a then b.
func (p *pair) AB() {
	p.a.Lock()
	p.b.Lock() // want lockorder "acquires locks.b while holding locks.a"
	p.b.Unlock()
	p.a.Unlock()
}

// BA takes b then a — the conflicting order.
func (p *pair) BA() {
	p.b.Lock()
	p.a.Lock() // want lockorder "acquires locks.a while holding locks.b"
	p.a.Unlock()
	p.b.Unlock()
}

type tree struct {
	root sync.Mutex
	leaf sync.Mutex
}

func (t *tree) lockLeaf() {
	t.leaf.Lock()
	t.leaf.Unlock()
}

// Down holds root and takes leaf through a callee — the call graph
// charges the acquisition to the call site.
func (t *tree) Down() {
	t.root.Lock()
	t.lockLeaf() // want lockorder "through locks.tree.lockLeaf"
	t.root.Unlock()
}

// Up takes them directly in the opposite order.
func (t *tree) Up() {
	t.leaf.Lock()
	t.root.Lock() // want lockorder "acquires locks.root while holding locks.leaf"
	t.root.Unlock()
	t.leaf.Unlock()
}

type ordered struct {
	first  sync.Mutex
	second sync.Mutex
}

// Fill and Drain agree on first→second, so neither is reported; the
// deferred unlocks keep first held across the second acquisition,
// which is exactly the pair the scan records — consistently.
func (o *ordered) Fill() {
	o.first.Lock()
	defer o.first.Unlock()
	o.second.Lock()
	defer o.second.Unlock()
}

func (o *ordered) Drain() {
	o.first.Lock()
	o.second.Lock()
	o.second.Unlock()
	o.first.Unlock()
}
