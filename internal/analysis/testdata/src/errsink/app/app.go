// Package app is an errsink fixture: every way of silently dropping an
// error return, next to the excluded idioms.
package app

import (
	"bytes"
	"fmt"
	"os"
)

// Flush discards errors three ways: bare statement, blank single
// assign, blank in a multi-value assign.
func Flush(f *os.File, data []byte) int {
	f.Close()             // want errsink "f.Close returns an error that is discarded"
	_ = f.Sync()          // want errsink "error result of f.Sync assigned to _"
	n, _ := f.Write(data) // want errsink "error result of f.Write assigned to _"
	return n
}

// Report exercises the pragmatic exclusions: stdout/stderr printing and
// in-memory writers cannot fail meaningfully, and deferred closes on
// read paths are accepted idiom.
func Report(f *os.File) string {
	defer f.Close()
	var buf bytes.Buffer
	buf.WriteString("report")
	fmt.Println("done")
	fmt.Fprintf(os.Stderr, "done\n")
	return buf.String()
}

// Save checks everything — the compliant shape.
func Save(f *os.File, data []byte) error {
	if _, err := f.Write(data); err != nil {
		return err
	}
	return f.Close()
}
