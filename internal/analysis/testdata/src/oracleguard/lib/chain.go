// chain.go is the interprocedural half of the oracleguard fixture: the
// oracle reference hides behind one production hop, so the direct scan
// cannot see it from Report — only the call-graph pass can follow
// Report → BuildMap → SlowInsert.
package lib

// Report aggregates through BuildMap, which itself leans on the
// reference scatter — production code two hops from an oracle.
func Report(vals []float64) float64 {
	acc := BuildMap(vals) // want oracleguard "call chain lib.Report → lib.BuildMap → lib.SlowInsert"
	var total float64
	for _, v := range acc {
		total += v
	}
	return total
}

// CleanReport is the compliant mirror: the production path all the way
// down, no finding.
func CleanReport(vals []float64) float64 {
	acc := CleanBuildMap(vals)
	var total float64
	for _, v := range acc {
		total += v
	}
	return total
}
