// Package lib is an oracleguard fixture: SlowSpectrum registers as an
// oracle, so only _test.go files and other oracles may reference it.
package lib

// SlowSpectrum is the reference construction kept for equivalence
// tests.
//
//repro:oracle
func SlowSpectrum(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = float64(i)
	}
	return out
}

// SlowPower builds on the reference path; oracle→oracle references are
// legal.
//
//repro:oracle
func SlowPower(n int) float64 {
	var total float64
	for _, v := range SlowSpectrum(n) {
		total += v * v
	}
	return total
}

// FastSpectrum is the production equivalent.
func FastSpectrum(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = float64(i)
	}
	return out
}

// Pipeline wrongly reaches for the oracle in production code.
func Pipeline(n int) float64 {
	s := SlowSpectrum(n) // want oracleguard "SlowSpectrum is a //repro:oracle reference implementation"
	var total float64
	for _, v := range s {
		total += v
	}
	return total
}

// CleanPipeline is the compliant shape, calling the production path.
func CleanPipeline(n int) float64 {
	s := FastSpectrum(n)
	var total float64
	for _, v := range s {
		total += v
	}
	return total
}
