// recon.go mirrors the reconstruction split: SlowInsert is the serial
// reference scatter kept for equivalence tests, FastInsert the
// production kernel, and BuildMap/CleanBuildMap the wrong and right
// ways to accumulate a map outside a test.
package lib

// SlowInsert is the reference scatter the fused kernel is
// equivalence-tested against.
//
//repro:oracle
func SlowInsert(acc, vals []float64) {
	for i, v := range vals {
		acc[i%len(acc)] += v
	}
}

// FastInsert is the production equivalent.
func FastInsert(acc, vals []float64) {
	for i, v := range vals {
		acc[i%len(acc)] += v
	}
}

// BuildMap wrongly accumulates through the reference scatter in
// production code.
func BuildMap(vals []float64) []float64 {
	acc := make([]float64, 8)
	SlowInsert(acc, vals) // want oracleguard "SlowInsert is a //repro:oracle reference implementation"
	return acc
}

// CleanBuildMap is the compliant shape, calling the production kernel.
func CleanBuildMap(vals []float64) []float64 {
	acc := make([]float64, 8)
	FastInsert(acc, vals)
	return acc
}
