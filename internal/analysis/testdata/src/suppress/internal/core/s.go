// Package core exercises the suppression machinery: a well-formed
// //replint:allow waives the finding on the next line, a reason-less
// one is itself reported and waives nothing.
package core

import "time"

// Stamp is properly suppressed: analyzer name plus a written reason.
func Stamp() int64 {
	//replint:allow simclock fixture demonstrates a reasoned waiver
	return time.Now().UnixNano()
}

// BadStamp carries a malformed suppression (no reason), which is
// reported as a finding of the pseudo-analyzer "suppression" and does
// not waive the simclock finding below it.
func BadStamp() int64 {
	//replint:allow simclock
	return time.Now().UnixNano()
}
