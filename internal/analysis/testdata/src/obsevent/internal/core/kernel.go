// Package core is the obsevent fixture: event emission belongs to the
// job/level lifecycle layer, never inside //repro:hotpath kernels.
// Counters stay allowed in kernels (they are one atomic add); Emit —
// whether the package function or the EventLog method, direct or
// through a transitive callee — is a finding.
package core

import "obs"

var evals obs.Counter

var noFields [obs.EventFieldsMax]obs.EventField

// MatchKernel is compliant: a counter bump per evaluation, no events.
//
//repro:hotpath
func MatchKernel(xs []float64) float64 {
	var best float64
	for i := 0; i < len(xs); i++ {
		evals.Inc()
		if xs[i] > best {
			best = xs[i]
		}
	}
	return best
}

// ChattyKernel narrates its inner loop with events — the exact misuse
// the analyzer bans: per-candidate emission would build a record and
// take the ring lock millions of times per refinement pass.
//
//repro:hotpath
func ChattyKernel(xs []float64) float64 {
	var best float64
	for i := 0; i < len(xs); i++ {
		obs.Emit("candidate", "", 0, 0, noFields) // want hotpathalloc "obs event emission in a hot path"
		if xs[i] > best {
			best = xs[i]
		}
	}
	return best
}

// MethodKernel emits through an EventLog handle instead of the package
// function; same contract, same finding.
//
//repro:hotpath
func MethodKernel(l *obs.EventLog, xs []float64) float64 {
	var best float64
	for _, v := range xs {
		l.Emit("candidate", "", 0, 0, noFields) // want hotpathalloc "obs event emission in a hot path"
		if v > best {
			best = v
		}
	}
	return best
}

// narrate hides the emission one call deep; the transitive walk
// reports narrate at the kernel's call site, and — because obs.Emit
// itself forwards to the EventLog method — the chain one hop further
// is reported here, where narrate pulls obs.Emit into the hot path.
func narrate(v float64) {
	obs.Emit("step", "", 0, v, noFields) // want hotpathalloc "obs.Emit allocates per call inside a //repro:hotpath path"
}

// IndirectKernel reaches narrate through the call graph.
//
//repro:hotpath
func IndirectKernel(xs []float64) float64 {
	var total float64
	for _, v := range xs {
		total += v
		narrate(v) // want hotpathalloc "narrate allocates per call inside a //repro:hotpath path"
	}
	return total
}

// LevelDone is the lifecycle layer: not tagged, so emitting here is
// exactly what events are for.
func LevelDone(level int, ts float64) {
	obs.Emit("level_end", "job-000001", level, ts, noFields)
}
