// Package obs is a miniature of the real instrumentation package's
// event layer: a package-level Emit that forwards to an active log,
// and the EventLog method behind it — the two call shapes hotpathalloc
// must recognise inside tagged kernels.
package obs

import "sync"

// EventField is one integer annotation on an event record.
type EventField struct {
	Key   string
	Value int64
}

// EventFieldsMax is the fixed per-record field capacity.
const EventFieldsMax = 4

// EventLog is a bounded event ring (ring omitted — the fixture only
// needs the call signatures).
type EventLog struct {
	mu   sync.Mutex
	next uint64
}

var active *EventLog

// Emit records one event on the active log, if any.
func Emit(kind, job string, level int, ts float64, fields [EventFieldsMax]EventField) {
	if active == nil {
		return
	}
	active.Emit(kind, job, level, ts, fields)
}

// Emit appends one record to the log.
func (l *EventLog) Emit(kind, job string, level int, ts float64, fields [EventFieldsMax]EventField) {
	l.mu.Lock()
	l.next++
	_ = kind
	_ = fields
	l.mu.Unlock()
}

// Counter is the metric shape that stays allowed in kernels.
type Counter struct{ v int64 }

// Inc bumps the counter (atomics omitted; the analyzer only needs the
// call shape).
func (c *Counter) Inc() { c.v++ }
