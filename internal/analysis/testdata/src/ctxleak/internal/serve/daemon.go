// Package serve is the ctxleak fixture: its import path contains
// "internal/serve", so every goroutine launched here needs a
// termination path — a WaitGroup join in the launcher, or (anywhere in
// the launched call graph) a channel receive or a context read.
package serve

import (
	"context"
	"sync"
)

// spin burns forever with no way to observe shutdown.
func spin(n *int) {
	for {
		*n++
	}
}

// churn is one clean hop in front of spin; the leak survives the
// indirection.
func churn(n *int) {
	spin(n)
}

// LaunchLeaky fires an unjoined, uncancellable goroutine.
func LaunchLeaky(n *int) {
	go spin(n) // want ctxleak "goroutine has no cancellation path"
}

// LaunchLeakyDeep is the same leak two hops down the call graph.
func LaunchLeakyDeep(n *int) {
	go churn(n) // want ctxleak "goroutine has no cancellation path"
}

// Pump is cancellable: closing ch terminates the range loop.
func Pump(ch chan int, out *int) {
	go func() {
		for v := range ch {
			*out += v
		}
	}()
}

// WatchCtx delegates the context read two hops down; the call-graph
// pass finds it, so this stays clean.
func WatchCtx(ctx context.Context, out *int) {
	go tick(ctx, out)
}

func tick(ctx context.Context, out *int) {
	await(ctx)
	*out++
}

func await(ctx context.Context) {
	<-ctx.Done()
}

// Fan is the bounded fan-out/fan-in shape internal/pool uses: the
// launcher joins every worker before returning, so the workers need no
// cancellation path of their own.
func Fan(work []int, out *int) {
	var wg sync.WaitGroup
	for range work {
		wg.Add(1)
		go func() {
			*out++
			wg.Done()
		}()
	}
	wg.Wait()
}
