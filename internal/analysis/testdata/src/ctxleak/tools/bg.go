// Package tools sits outside the concurrency-scoped paths, so its
// goroutines are not ctxleak's business (asserted by the absence of
// want comments).
package tools

// Background launches an unjoined helper; legal out of scope.
func Background(n *int) {
	go run(n)
}

func run(n *int) {
	for {
		*n++
	}
}
