// Package core is the obsspan fixture: its import path contains
// "internal/core", so simclock is in force, and MatchKernel carries
// the //repro:hotpath tag. Together they pin the instrumentation
// contract — the pooled-span + counter pattern is allocation-compliant
// inside tagged kernels (asserted by the absence of want comments),
// while feeding spans from the wall clock stays banned in simulated
// packages.
package core

import (
	"time"

	"obs"
)

var distanceEvals obs.Counter

// MatchKernel is the instrumented hot path: a pooled span brackets the
// candidate loop and an atomic counter bumps per evaluation. The span
// start/end come in as simulated-clock readings.
//
//repro:hotpath
func MatchKernel(simStart, simEnd float64, xs []float64) float64 {
	sp := obs.StartSpan("match", simStart)
	var best float64
	for i := 0; i < len(xs); i++ {
		distanceEvals.Inc()
		if xs[i] > best {
			best = xs[i]
		}
	}
	sp.SetArg("evals", int64(len(xs)))
	sp.End(simEnd)
	return best
}

// WallClockSpan times an obs span with the wall clock — exactly the
// violation simclock exists to catch: instrumentation must read the
// simulated clock, never real time, or timings stop being
// reproducible.
func WallClockSpan(xs []float64) float64 {
	start := time.Now() // want simclock "time.Now reads the wall clock"
	sp := obs.StartSpan("sum", 0)
	var total float64
	for _, v := range xs {
		total += v
	}
	sp.End(time.Since(start).Seconds()) // want simclock "time.Since reads the wall clock"
	return total
}
