// Package obs is a miniature of the real instrumentation package:
// pooled span handles and an atomic counter, exactly the shapes the
// production kernels use. Its import path is "obs" — outside the
// simulated-clock scope, as the real package is.
package obs

import (
	"sync"
	"sync/atomic"
)

// Counter is a monotonic atomic counter.
type Counter struct{ v int64 }

func (c *Counter) Inc()         { atomic.AddInt64(&c.v, 1) }
func (c *Counter) Add(d int64)  { atomic.AddInt64(&c.v, d) }
func (c *Counter) Value() int64 { return atomic.LoadInt64(&c.v) }

// SpanHandle is a pooled in-flight span. All methods are nil-safe so
// callers need no branch when tracing is off.
type SpanHandle struct {
	name  string
	start float64
	key   string
	val   int64
}

var spanPool = sync.Pool{New: func() interface{} { return new(SpanHandle) }}

// StartSpan draws a handle from the pool; the caller recycles it by
// calling End.
func StartSpan(name string, start float64) *SpanHandle {
	sp := spanPool.Get().(*SpanHandle)
	sp.name, sp.start = name, start
	return sp
}

// SetArg attaches one key/value pair.
func (sp *SpanHandle) SetArg(key string, v int64) {
	if sp == nil {
		return
	}
	sp.key, sp.val = key, v
}

// End closes the span and returns the handle to the pool.
func (sp *SpanHandle) End(end float64) {
	if sp == nil {
		return
	}
	_ = end
	*sp = SpanHandle{}
	spanPool.Put(sp)
}
