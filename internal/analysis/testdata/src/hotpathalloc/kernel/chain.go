// chain.go is the interprocedural half of the hotpathalloc fixture:
// Drive carries the //repro:hotpath tag and allocates nothing itself —
// the banned allocation hides two calls down in gather, so only the
// call-graph pass can see it. The finding lands on the call edge into
// the allocating helper, with the whole chain spelled out.
package kernel

// Drive is the tagged entry point; every function it reaches inherits
// the no-alloc contract.
//
//repro:hotpath
func Drive(xs, buf []float64) float64 {
	return stage(xs, buf)
}

// stage is alloc-free and merely forwards into the allocating tail;
// the finding is reported here, at the edge into gather.
func stage(xs, buf []float64) float64 {
	return gather(xs, buf) // want hotpathalloc "call chain kernel.Drive → kernel.stage → kernel.gather"
}

// gather grows its scratch per call — fine on a cold path, a contract
// violation once a tagged kernel can reach it.
func gather(xs, buf []float64) float64 {
	var out []float64
	for _, v := range xs {
		out = append(out, v)
	}
	var total float64
	for i, v := range out {
		total += v * buf[i%len(buf)]
	}
	return total
}

// reshape allocates the same way but is reachable from no tagged
// function, so it stays legal (asserted by the absence of a want
// comment).
func reshape(xs []float64) []float64 {
	var out []float64
	for _, v := range xs {
		out = append(out, 2*v)
	}
	return out
}

var _ = reshape
