// scatter.go mirrors the reconstruction insert kernel: ScatterView is
// the compliant fused shape (preallocated accumulators, wrap lookup
// table, unrolled 2×2 scatter over same-function scratch) and
// ScatterViewLeaky is the same loop with the allocations the real
// kernel must never make.
package kernel

type accum struct {
	num  []complex128
	den  []float64
	wrap []int32
}

// ScatterView is the compliant kernel: every index comes out of the
// preallocated wrap table, the weights live in stack arrays, and the
// accumulators were sized at construction.
//
//repro:hotpath
func (a *accum) ScatterView(vals []complex128, pos []float64, l int) {
	for i := range vals {
		px, py := pos[2*i], pos[2*i+1]
		x0, y0 := int(px), int(py)
		fx, fy := px-float64(x0), py-float64(y0)
		xi := [2]int{int(a.wrap[x0+l]), int(a.wrap[x0+1+l])}
		yi := [2]int{int(a.wrap[y0+l]), int(a.wrap[y0+1+l])}
		wx := [2]float64{1 - fx, fx}
		wy := [2]float64{1 - fy, fy}
		for dx := 0; dx <= 1; dx++ {
			row := xi[dx] * l
			for dy := 0; dy <= 1; dy++ {
				w := wx[dx] * wy[dy]
				a.num[row+yi[dy]] += vals[i] * complex(w, 0)
				a.den[row+yi[dy]] += w
			}
		}
	}
}

// ScatterViewLeaky commits the allocations the fused insert exists to
// avoid: growing a touch list per call and boxing the position slice
// into an interface for ad-hoc tracing.
//
//repro:hotpath
func (a *accum) ScatterViewLeaky(vals []complex128, pos []float64, l int) []int {
	var touched []int
	for i := range vals {
		x := int(a.wrap[int(pos[2*i])+l])
		touched = append(touched, x) // want hotpathalloc "append in hot path without a same-function make"
		a.den[x*l] += real(vals[i])
	}
	sink(pos) // want hotpathalloc "numeric slice passed to interface parameter"
	return touched
}
