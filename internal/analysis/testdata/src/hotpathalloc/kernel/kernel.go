// Package kernel is a hotpathalloc fixture: Accumulate carries the
// //repro:hotpath tag and commits every banned per-call allocation;
// Preallocated and Setup show the compliant shapes.
package kernel

type point struct{ x, y float64 }

func sink(v interface{}) {}

// Accumulate is a tagged kernel with one of each violation.
//
//repro:hotpath
func Accumulate(xs []float64) float64 {
	var out []float64
	var total float64
	for i := 0; i < len(xs); i++ {
		out = append(out, xs[i])             // want hotpathalloc "append in hot path without a same-function make"
		f := func() float64 { return xs[i] } // want hotpathalloc "closure over loop variable"
		total += f()
	}
	p := &point{x: 1}           // want hotpathalloc "composite literal escapes to the heap"
	ws := []float64{0.25, 0.75} // want hotpathalloc "slice/map literal allocates in a hot path"
	sink(xs)                    // want hotpathalloc "numeric slice passed to interface parameter"
	return total + p.x + ws[0] + out[0]
}

// Preallocated is the compliant kernel: scratch made with explicit
// capacity in the same function, no escapes, no boxing.
//
//repro:hotpath
func Preallocated(xs []float64) float64 {
	buf := make([]float64, 0, len(xs))
	for _, v := range xs {
		buf = append(buf, v)
	}
	var total float64
	for _, v := range buf {
		total += v
	}
	return total
}

// Setup is untagged: per-call allocation outside the kernels is not
// this analyzer's business.
func Setup(xs []float64) []float64 {
	var out []float64
	for _, v := range xs {
		out = append(out, v)
	}
	return out
}
