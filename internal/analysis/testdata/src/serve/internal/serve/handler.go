// Package serve is a combined fixture for the serving layer's replint
// contract: its import path contains "internal/serve", so the simclock
// analyzer bans wall-clock reads in it — job timestamps must come from
// the manager's injected logical clock — and errsink (which is
// tree-wide) bans the classic HTTP-handler sin of dropping the error
// from a response write. A local ResponseWriter stand-in keeps the
// fixture free of a net/http import, which the source-level loader
// would otherwise have to typecheck wholesale.
package serve

import (
	"errors"
	"time"
)

// ResponseWriter mirrors the error-returning write surface of
// net/http.ResponseWriter.
type ResponseWriter interface {
	Write([]byte) (int, error)
	WriteHeader(statusCode int)
}

// journal mirrors the checkpoint journal's fallible append.
type journal struct{}

func (journal) Level(id string, level int) error { return errors.New("disk full") }

// handleStatusLeaky stamps the response with the wall clock and drops
// the write error — both banned: the timestamp breaks reproducible
// job scheduling, and a client that has gone away looks like success.
func handleStatusLeaky(w ResponseWriter, j journal) {
	stamp := time.Now().UnixNano() // want simclock "time.Now reads the wall clock"
	body := []byte(`{"stamped_at":` + string(rune(stamp)) + `}`)
	w.WriteHeader(200)
	w.Write(body)       // want errsink "w.Write returns an error that is discarded"
	j.Level("job-1", 0) // want errsink "j.Level returns an error that is discarded"
	_ = j.Level("j", 1) // want errsink "error result of j.Level assigned to _"
}

// handleStatusClean is the compliant shape: the logical clock is
// injected, and every fallible write is checked.
func handleStatusClean(w ResponseWriter, j journal, clock func() float64, logf func(string, ...any)) {
	_ = clock()
	if err := j.Level("job-1", 0); err != nil {
		w.WriteHeader(500)
	}
	w.WriteHeader(200)
	if _, err := w.Write([]byte(`{}`)); err != nil {
		logf("write: %v", err)
	}
}

// retryAfter is pure duration arithmetic, which stays legal in a
// simclock package.
func retryAfter(backoff time.Duration) time.Duration {
	return backoff * 2
}
