// Package pkgother is outside the configured numeric paths, so the
// accumulation sum.go flags is legal here.
package pkgother

// SumShells may accumulate in map order: this package makes no
// bit-reproducibility promise.
func SumShells(m map[int]float64) float64 {
	var total float64
	for _, v := range m {
		total += v
	}
	return total
}
