package fsc

import "sort"

// CountShells only counts — integer bookkeeping over a map range is
// order-insensitive and stays legal.
func CountShells(m map[int]float64) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// SortedSum is the compliant accumulation shape: iterate a sorted key
// slice, not the map.
func SortedSum(m map[int]float64, keys []int) float64 {
	sort.Ints(keys)
	var total float64
	for _, k := range keys {
		total += m[k]
	}
	return total
}
