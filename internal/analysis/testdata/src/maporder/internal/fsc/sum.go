// Package fsc is a maporder fixture: its import path contains
// "internal/fsc", one of the numeric packages where map-iteration
// order must not influence results.
package fsc

// SumShells accumulates floats in map order — the sum's rounding
// differs run to run.
func SumShells(m map[int]float64) float64 {
	var total float64
	for _, v := range m {
		total += v // want maporder "float accumulation inside a map range"
	}
	return total
}

// Keys builds a slice in map order.
func Keys(m map[int]float64) []int {
	var keys []int
	for k := range m {
		keys = append(keys, k) // want maporder "slice append inside a map range"
	}
	return keys
}

// Stream sends in map order.
func Stream(m map[int]float64, ch chan float64) {
	for _, v := range m {
		ch <- v // want maporder "channel send inside a map range"
	}
}
