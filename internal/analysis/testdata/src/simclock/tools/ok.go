// Package tools sits outside the configured simulated-clock paths, so
// the same wall-clock read that clock.go flags is legal here.
package tools

import "time"

// Stamp may read the wall clock: tools are not simulation code.
func Stamp() int64 {
	return time.Now().UnixNano()
}
