// relay.go gives the wall-clock read a second hop: Relay is legal
// where it lives (tools is out of scope) but becomes a laundering path
// the moment simulated-clock code calls it.
package tools

// Relay forwards to the wall-clock read.
func Relay() int64 {
	return Stamp()
}
