// Package core is a simclock fixture: its import path contains
// "internal/core", so the analyzer treats it as a simulated-clock
// package where wall-clock reads and the global rand source are banned.
package core

import (
	"math/rand"
	"time"
)

// Stamp reads the wall clock — the canonical violation.
func Stamp() int64 {
	return time.Now().UnixNano() // want simclock "time.Now reads the wall clock"
}

// Elapsed measures real elapsed time, which varies run to run.
func Elapsed(start time.Time) time.Duration {
	return time.Since(start) // want simclock "time.Since reads the wall clock"
}

// Draw uses the shared global source, whose state depends on every
// other draw in the process.
func Draw() float64 {
	return rand.Float64() // want simclock "rand.Float64 draws from the global source"
}

// SeededDraw is the compliant shape: an explicitly seeded source, whose
// method calls are exempt.
func SeededDraw(seed int64) float64 {
	r := rand.New(rand.NewSource(seed))
	return r.Float64()
}

// Scale uses only pure time arithmetic, which stays legal.
func Scale(d time.Duration) time.Duration {
	return d * 2
}
