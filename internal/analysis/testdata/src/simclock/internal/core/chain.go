// chain.go is the interprocedural half of the simclock fixture: the
// wall-clock read is perfectly legal where it lives (tools is out of
// scope), but a simulated-clock package reaching it through helpers is
// still nondeterministic — the call-graph pass follows the laundering.
package core

import "tools"

// StampVia launders a wall-clock read through two out-of-scope hops.
func StampVia() int64 {
	return tools.Relay() // want simclock "call chain core.StampVia → tools.Relay → tools.Stamp"
}
