package analysis

import (
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/scanner"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package of the tree under
// analysis.
type Package struct {
	// Path is the import path ("repro/internal/core", or the
	// testdata-relative path for fixture packages).
	Path string
	// Dir is the absolute directory the files were read from.
	Dir   string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks every package of a module (or fixture
// tree) using only the standard library: local import paths resolve to
// module directories, everything else falls through to the stdlib
// source importer. Test files are not loaded — the invariants replint
// enforces concern production code, and every analyzer exempts
// _test.go by construction.
type Loader struct {
	Fset *token.FileSet

	root    string            // absolute root directory of the tree
	base    string            // import path corresponding to root
	dirs    map[string]string // import path -> absolute dir
	std     types.Importer
	pkgs    map[string]*Package
	typed   map[string]*types.Package
	loading map[string]bool
	failed  map[string]error // packages that did not load, by path
	diags   []LoadDiagnostic
}

// LoadDiagnostic records one package the loader had to skip — a parse
// or type-check failure — so the caller can surface it instead of
// analyzing a partial module as if it were clean. Pos carries the
// file:line of the first underlying error when one is known.
type LoadDiagnostic struct {
	Path string
	Pos  token.Position
	Msg  string
}

func (d LoadDiagnostic) String() string {
	if d.Pos.Filename != "" {
		return fmt.Sprintf("%s:%d:%d: package %s skipped: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Path, d.Msg)
	}
	return fmt.Sprintf("package %s skipped: %s", d.Path, d.Msg)
}

// NewLoader prepares a loader for the tree rooted at root, whose
// packages have import paths base + "/" + relative-dir (or just the
// relative dir when base is empty, as for test fixtures).
func NewLoader(root, base string) (*Loader, error) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	l := &Loader{
		Fset:    fset,
		root:    abs,
		base:    base,
		dirs:    map[string]string{},
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    map[string]*Package{},
		typed:   map[string]*types.Package{},
		loading: map[string]bool{},
		failed:  map[string]error{},
	}
	if err := l.discover(); err != nil {
		return nil, err
	}
	return l, nil
}

// ModulePath reads the module path from the go.mod at root. It exists
// so callers can map a directory to the import-path namespace without
// invoking the go tool.
func ModulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("analysis: no module directive in %s/go.mod", root)
}

// discover walks the tree and records every directory holding
// non-test Go files as a package.
func (l *Loader) discover() error {
	return filepath.WalkDir(l.root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
			return filepath.SkipDir
		}
		ents, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		hasGo := false
		for _, e := range ents {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
				hasGo = true
				break
			}
		}
		if !hasGo {
			return nil
		}
		rel, err := filepath.Rel(l.root, path)
		if err != nil {
			return err
		}
		ip := filepath.ToSlash(rel)
		if ip == "." {
			ip = ""
		}
		switch {
		case l.base != "" && ip != "":
			ip = l.base + "/" + ip
		case l.base != "":
			ip = l.base
		}
		if ip == "" {
			return nil // rootless fixture files directly under testdata/src
		}
		l.dirs[ip] = path
		return nil
	})
}

// Paths returns the discovered package paths, sorted.
func (l *Loader) Paths() []string {
	out := make([]string, 0, len(l.dirs))
	for p := range l.dirs {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// LoadAll loads every discovered package and returns the ones that
// parsed and type-checked, sorted by import path. Packages that fail
// to load are NOT silent: each is recorded as a LoadDiagnostic
// (retrievable via Diagnostics, convertible to findings with
// DiagnosticFindings) so callers can report the partial-module
// analysis instead of pretending the skipped code was clean.
func (l *Loader) LoadAll() ([]*Package, error) {
	for _, p := range l.Paths() {
		if _, err := l.load(p); err != nil {
			continue // recorded as a diagnostic by load
		}
	}
	out := make([]*Package, 0, len(l.pkgs))
	for _, p := range l.pkgs {
		out = append(out, p)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Path < out[b].Path })
	return out, nil
}

// Load loads (or returns the cached) package with the given import
// path. Unlike LoadAll it propagates the load error, though the
// diagnostic is recorded either way.
func (l *Loader) Load(path string) (*Package, error) {
	if _, ok := l.dirs[path]; !ok {
		return nil, fmt.Errorf("analysis: package %q not in tree", path)
	}
	return l.load(path)
}

// Diagnostics returns one entry per package the loader skipped,
// sorted by import path.
func (l *Loader) Diagnostics() []LoadDiagnostic {
	out := make([]LoadDiagnostic, len(l.diags))
	copy(out, l.diags)
	sort.Slice(out, func(a, b int) bool { return out[a].Path < out[b].Path })
	return out
}

// DiagnosticFindings converts load diagnostics into findings of the
// pseudo-analyzer "load", so every replint output mode (text, JSON,
// SARIF, baseline) carries them and a partial analysis can never pass
// as a clean one.
func DiagnosticFindings(diags []LoadDiagnostic) []Finding {
	out := make([]Finding, 0, len(diags))
	for _, d := range diags {
		out = append(out, Finding{
			Pos:      d.Pos,
			Analyzer: "load",
			Message:  fmt.Sprintf("package %s skipped (analysis is partial): %s", d.Path, d.Msg),
		})
	}
	return out
}

// recordFailure notes a skipped package exactly once, extracting the
// first file:line the underlying error points at.
func (l *Loader) recordFailure(path string, err error) {
	if _, dup := l.failed[path]; dup {
		return
	}
	l.failed[path] = err
	d := LoadDiagnostic{Path: path, Msg: err.Error()}
	var list scanner.ErrorList
	var terr types.Error
	switch {
	case errors.As(err, &list) && len(list) > 0:
		d.Pos = list[0].Pos
		d.Msg = list[0].Msg
	case errors.As(err, &terr):
		d.Pos = terr.Fset.Position(terr.Pos)
		d.Msg = terr.Msg
	}
	l.diags = append(l.diags, d)
}

// Import implements types.Importer: local paths load (and cache) from
// the tree, everything else delegates to the stdlib source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if _, ok := l.dirs[path]; ok {
		p, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.Import(path)
}

func (l *Loader) load(path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if err, ok := l.failed[path]; ok {
		return nil, err
	}
	if l.loading[path] {
		return nil, fmt.Errorf("analysis: import cycle through %q", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir := l.dirs[path]
	ents, err := os.ReadDir(dir)
	if err != nil {
		l.recordFailure(path, err)
		return nil, err
	}
	var names []string
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			l.recordFailure(path, err)
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	cfg := types.Config{Importer: l}
	tpkg, err := cfg.Check(path, l.Fset, files, info)
	if err != nil {
		err = fmt.Errorf("analysis: type-checking %s: %w", path, err)
		l.recordFailure(path, err)
		return nil, err
	}
	p := &Package{Path: path, Dir: dir, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = p
	l.typed[path] = tpkg
	return p, nil
}

// FindModuleRoot walks upward from dir to the nearest directory
// containing go.mod.
func FindModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(abs, "go.mod")); err == nil {
			return abs, nil
		}
		parent := filepath.Dir(abs)
		if parent == abs {
			return "", fmt.Errorf("analysis: no go.mod found above %s", dir)
		}
		abs = parent
	}
}
