package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package of the tree under
// analysis.
type Package struct {
	// Path is the import path ("repro/internal/core", or the
	// testdata-relative path for fixture packages).
	Path string
	// Dir is the absolute directory the files were read from.
	Dir   string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks every package of a module (or fixture
// tree) using only the standard library: local import paths resolve to
// module directories, everything else falls through to the stdlib
// source importer. Test files are not loaded — the invariants replint
// enforces concern production code, and every analyzer exempts
// _test.go by construction.
type Loader struct {
	Fset *token.FileSet

	root    string            // absolute root directory of the tree
	base    string            // import path corresponding to root
	dirs    map[string]string // import path -> absolute dir
	std     types.Importer
	pkgs    map[string]*Package
	typed   map[string]*types.Package
	loading map[string]bool
}

// NewLoader prepares a loader for the tree rooted at root, whose
// packages have import paths base + "/" + relative-dir (or just the
// relative dir when base is empty, as for test fixtures).
func NewLoader(root, base string) (*Loader, error) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	l := &Loader{
		Fset:    fset,
		root:    abs,
		base:    base,
		dirs:    map[string]string{},
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    map[string]*Package{},
		typed:   map[string]*types.Package{},
		loading: map[string]bool{},
	}
	if err := l.discover(); err != nil {
		return nil, err
	}
	return l, nil
}

// ModulePath reads the module path from the go.mod at root. It exists
// so callers can map a directory to the import-path namespace without
// invoking the go tool.
func ModulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("analysis: no module directive in %s/go.mod", root)
}

// discover walks the tree and records every directory holding
// non-test Go files as a package.
func (l *Loader) discover() error {
	return filepath.WalkDir(l.root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
			return filepath.SkipDir
		}
		ents, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		hasGo := false
		for _, e := range ents {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
				hasGo = true
				break
			}
		}
		if !hasGo {
			return nil
		}
		rel, err := filepath.Rel(l.root, path)
		if err != nil {
			return err
		}
		ip := filepath.ToSlash(rel)
		if ip == "." {
			ip = ""
		}
		switch {
		case l.base != "" && ip != "":
			ip = l.base + "/" + ip
		case l.base != "":
			ip = l.base
		}
		if ip == "" {
			return nil // rootless fixture files directly under testdata/src
		}
		l.dirs[ip] = path
		return nil
	})
}

// Paths returns the discovered package paths, sorted.
func (l *Loader) Paths() []string {
	out := make([]string, 0, len(l.dirs))
	for p := range l.dirs {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// LoadAll loads every discovered package and returns them sorted by
// import path.
func (l *Loader) LoadAll() ([]*Package, error) {
	for _, p := range l.Paths() {
		if _, err := l.load(p); err != nil {
			return nil, err
		}
	}
	out := make([]*Package, 0, len(l.pkgs))
	for _, p := range l.pkgs {
		out = append(out, p)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Path < out[b].Path })
	return out, nil
}

// Import implements types.Importer: local paths load (and cache) from
// the tree, everything else delegates to the stdlib source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if _, ok := l.dirs[path]; ok {
		p, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.Import(path)
}

func (l *Loader) load(path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("analysis: import cycle through %q", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir := l.dirs[path]
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	cfg := types.Config{Importer: l}
	tpkg, err := cfg.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
	}
	p := &Package{Path: path, Dir: dir, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = p
	l.typed[path] = tpkg
	return p, nil
}

// FindModuleRoot walks upward from dir to the nearest directory
// containing go.mod.
func FindModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(abs, "go.mod")); err == nil {
			return abs, nil
		}
		parent := filepath.Dir(abs)
		if parent == abs {
			return "", fmt.Errorf("analysis: no go.mod found above %s", dir)
		}
		abs = parent
	}
}
